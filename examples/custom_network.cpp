// custom_network - the deployment workflow a downstream user follows:
//
//   1. describe their own DSC network (here: EdeaNet-64 from the model zoo),
//   2. run the design space exploration to confirm the dataflow choice,
//   3. quantize and serialize the network to a parameter blob,
//   4. load the blob back (as firmware would) and run it on the
//      cycle-accurate accelerator,
//   5. verify bit-exactness and inspect per-layer statistics.
#include <iostream>

#include "core/accelerator.hpp"
#include "dse/explorer.hpp"
#include "nn/model_zoo.hpp"
#include "nn/serialize.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  // 1. The custom network.
  const std::vector<nn::DscLayerSpec> specs = nn::edeanet_specs();
  std::cout << "=== EdeaNet-64: a custom 6-layer DSC network ===\n";
  for (const auto& s : specs) std::cout << "  " << s.to_string() << "\n";

  // 2. DSE: does the paper's configuration fit this network too?
  dse::Explorer explorer(specs);
  const auto dse_result = explorer.explore();
  std::cout << "\nDSE winner: " << dse_result.best().label() << " ("
            << dse_result.best().pe.total() << " PEs)\n";

  // 3. Quantize and serialize.
  const auto layers = nn::make_random_quant_network(specs, 31337);
  const std::string blob = "/tmp/edeanet64.edea";
  nn::save_network_file(blob, layers);
  std::cout << "serialized to " << blob << " ("
            << TextTable::num(nn::serialized_size(layers)) << " bytes)\n";

  // 4. Load and run (the "firmware" side).
  const auto loaded = nn::load_network_file(blob);
  Rng rng(55);
  nn::Int8Tensor input(nn::Shape{64, 64, 16});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.45)
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  core::EdeaAccelerator accel;
  const core::NetworkRunResult run = accel.run_network(loaded, input);

  // 5. Verify against the in-memory network and report.
  nn::Int8Tensor ref = input;
  for (const auto& l : layers) ref = l.forward(ref);
  std::cout << "loaded network bit-exact vs in-memory reference: "
            << (run.output == ref ? "YES" : "NO !!") << "\n\n";

  TextTable t({"layer", "cycles", "GOPS", "DWC duty", "PWC duty",
               "ext act", "ext wt"});
  for (const auto& r : run.layers) {
    t.add_row({std::to_string(r.spec.index),
               TextTable::num(r.timing.total_cycles),
               TextTable::num(r.throughput_gops(1.0), 1),
               TextTable::percent(r.dwc_duty(), 1),
               TextTable::percent(r.pwc_duty(), 1),
               TextTable::num(r.external.accesses(
                   arch::TrafficClass::kActivation)),
               TextTable::num(r.external.accesses(
                   arch::TrafficClass::kWeight))});
  }
  t.render(std::cout);
  std::cout << "\ntotal: " << TextTable::num(run.total_cycles())
            << " cycles ("
            << TextTable::num(static_cast<double>(run.total_cycles()) / 1000.0,
                              1)
            << " us @ 1 GHz), average "
            << TextTable::num(run.average_throughput_gops(1.0), 1)
            << " GOPS\n";
  return run.output == ref ? 0 : 1;
}
