// parallel_sweep - the parallel simulation runtime end to end:
//   1. sweeps (network x accelerator config) jobs through core::SweepRunner
//      serially and in parallel, verifying the outcomes are bit-identical,
//   2. repeats the Sec. II design space exploration serially and in
//      parallel with the same check,
//   3. reports wall-clock times and the parallel speedup on this machine.
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_runner.hpp"
#include "dse/explorer.hpp"
#include "nn/mobilenet.hpp"
#include "nn/model_zoo.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

edea::nn::Int8Tensor random_input(const edea::nn::DscLayerSpec& spec,
                                  std::uint64_t seed) {
  edea::Rng rng(seed);
  edea::nn::Int8Tensor input(
      edea::nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return input;
}

bool identical(const std::vector<edea::core::SweepOutcome>& a,
               const std::vector<edea::core::SweepOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].ok != b[i].ok || a[i].error != b[i].error) return false;
    if (!a[i].ok) continue;
    if (a[i].result.total_cycles() != b[i].result.total_cycles()) return false;
    if (a[i].result.output.storage() != b[i].result.output.storage()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace edea;

  // --- workloads: three DSC networks from the model zoo ---------------------
  struct Workload {
    std::string name;
    std::vector<nn::QuantDscLayer> layers;
    nn::Int8Tensor input;
  };
  std::vector<Workload> workloads;
  {
    const auto mobilenet = nn::mobilenet_dsc_specs();
    const std::vector<nn::DscLayerSpec> specs(mobilenet.begin(),
                                              mobilenet.end());
    workloads.push_back({"mobilenet-cifar",
                         nn::make_random_quant_network(specs, 11),
                         random_input(specs.front(), 11)});
  }
  {
    const auto specs = nn::edeanet_specs();
    workloads.push_back({"edeanet-64",
                         nn::make_random_quant_network(specs, 22),
                         random_input(specs.front(), 22)});
  }
  {
    const auto specs = nn::mobilenet_variant_specs(
        nn::MobileNetVariant{0.5, 32, 32});
    workloads.push_back({"mobilenet-0.5x",
                         nn::make_random_quant_network(specs, 33),
                         random_input(specs.front(), 33)});
  }

  // --- accelerator configs: the paper point plus scaled engines -------------
  struct Variant {
    std::string name;
    int td, tk;
  };
  const std::vector<Variant> variants = {
      {"paper", 8, 16},
      {"2x-kernels", 8, 32},
      {"2x-channels", 16, 16},
      {"4x", 16, 32},
  };

  std::vector<core::SweepJob> jobs;
  for (const Workload& w : workloads) {
    for (const Variant& v : variants) {
      core::SweepJob job;
      job.name = w.name + "/" + v.name;
      job.config.td = v.td;
      job.config.tk = v.tk;
      job.layers = &w.layers;
      job.input = &w.input;
      jobs.push_back(std::move(job));
    }
  }

  std::cout << "=== Parallel sweep: " << jobs.size() << " jobs ("
            << workloads.size() << " networks x " << variants.size()
            << " configs), " << std::thread::hardware_concurrency()
            << " hardware threads ===\n";

  const auto serial_start = Clock::now();
  const auto serial =
      core::SweepRunner(core::SweepRunner::Options{1}).run(jobs);
  const double serial_s = seconds_since(serial_start);

  const auto parallel_start = Clock::now();
  const auto parallel = core::SweepRunner().run(jobs);
  const double parallel_s = seconds_since(parallel_start);

  {
    TextTable t({"job", "status", "cycles", "GOPS"});
    for (const core::SweepOutcome& o : parallel) {
      t.add_row({o.name, o.ok ? "ok" : "infeasible",
                 o.ok ? TextTable::num(o.result.total_cycles()) : "-",
                 o.ok ? TextTable::num(o.result.average_throughput_gops(
                            o.config.clock_ghz))
                      : "-"});
    }
    t.render(std::cout);
  }

  const bool sweep_identical = identical(serial, parallel);
  std::cout << "\nserial   " << serial_s << " s\n"
            << "parallel " << parallel_s << " s  ("
            << (parallel_s > 0.0 ? serial_s / parallel_s : 0.0)
            << "x speedup)\n"
            << "bit-identical to serial: "
            << (sweep_identical ? "yes" : "NO - BUG") << "\n";

  // --- the Sec. II DSE, serial vs parallel ---------------------------------
  bool dse_identical = true;
  {
    const auto mobilenet = nn::mobilenet_dsc_specs();
    dse::Explorer explorer(
        std::vector<nn::DscLayerSpec>(mobilenet.begin(), mobilenet.end()));

    const auto dse_serial_start = Clock::now();
    const dse::ExplorationResult s = explorer.explore(/*parallelism=*/1);
    const double dse_serial_s = seconds_since(dse_serial_start);

    const auto dse_parallel_start = Clock::now();
    const dse::ExplorationResult p = explorer.explore();
    const double dse_parallel_s = seconds_since(dse_parallel_start);

    bool same = s.best_index == p.best_index &&
                s.points.size() == p.points.size();
    for (std::size_t i = 0; same && i < s.points.size(); ++i) {
      same = s.points[i].access.total() == p.points[i].access.total() &&
             s.points[i].pe.total() == p.points[i].pe.total();
    }
    std::cout << "\n=== DSE (" << s.points.size() << " design points) ===\n"
              << "selected: " << p.best().label() << "\n"
              << "serial   " << dse_serial_s << " s\n"
              << "parallel " << dse_parallel_s << " s\n"
              << "identical to serial: " << (same ? "yes" : "NO - BUG")
              << "\n";
    dse_identical = same;
  }

  // Nonzero exit on any mismatch so CI's determinism smoke actually gates.
  return sweep_identical && dse_identical ? 0 : 1;
}
