// dse_explorer - applies the paper's design space exploration (Sec. II) to
// a user-definable DSC network. Without arguments it explores
// MobileNetV1-CIFAR10 (reproducing the paper's Case-6 choice); with
// arguments it explores a custom stack:
//
//   dse_explorer [R D K stride]...
//
// e.g.  dse_explorer 56 32 64 1 56 64 128 2   explores a two-layer stack.
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/backend.hpp"
#include "dse/explorer.hpp"
#include "nn/mobilenet.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace edea;

  std::vector<nn::DscLayerSpec> specs;
  if (argc > 1) {
    if ((argc - 1) % 4 != 0) {
      std::cerr << "usage: " << argv[0] << " [R D K stride]...\n";
      return 2;
    }
    for (int i = 1; i + 3 < argc; i += 4) {
      nn::DscLayerSpec s;
      s.index = (i - 1) / 4;
      s.in_rows = std::atoi(argv[i]);
      s.in_cols = s.in_rows;
      s.in_channels = std::atoi(argv[i + 1]);
      s.out_channels = std::atoi(argv[i + 2]);
      s.stride = std::atoi(argv[i + 3]);
      specs.push_back(s);
      std::cout << "layer " << s.index << ": " << s.to_string() << "\n";
    }
  } else {
    const auto arr = nn::mobilenet_dsc_specs();
    specs.assign(arr.begin(), arr.end());
    std::cout << "exploring MobileNetV1-CIFAR10 (13 DSC layers)\n";
  }

  dse::Explorer explorer(specs);
  const dse::ExplorationResult result = explorer.explore();

  std::cout << "\n";
  TextTable t({"design point", "PEs", "activation", "weight", "total",
               "best"});
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const dse::DesignPoint& p = result.points[i];
    t.add_row({p.label(), TextTable::num(p.pe.total()),
               TextTable::num(p.access.activation()),
               TextTable::num(p.access.weight()),
               TextTable::num(p.access.total()),
               i == result.best_index ? "<== selected" : ""});
  }
  t.render(std::cout);

  const dse::DesignPoint& best = result.best();
  std::cout << "\nselected configuration: " << best.label() << "\n"
            << "  PE array: " << best.pe.dwc << " DWC + " << best.pe.pwc
            << " PWC multipliers\n"
            << "  (the paper selects La, Tn=Tm=2, Case6 for MobileNetV1)\n";

  // Intermediate-access analysis for the explored network (Fig. 3 logic).
  const dse::IntermediateAccessTotals totals =
      dse::intermediate_access_totals(specs);
  std::cout << "\ndirect DWC->PWC transfer would eliminate "
            << TextTable::percent(totals.reduction(), 1)
            << " of external activation accesses on this network\n";

  // The dataflow dimension: simulate the network on every registered
  // backend (EDEA vs the serialized baseline) at the selected config.
  std::cout << "\n=== cross-backend sweep (simulated, seed 1) ===\n";
  const dse::BackendSweepResult backends =
      explorer.explore_backends(core::backend_ids());
  TextTable b({"backend", "cycles", "ext. accesses", "output hash",
               "fastest"});
  for (std::size_t i = 0; i < backends.outcomes.size(); ++i) {
    const core::SweepOutcome& o = backends.outcomes[i];
    if (!o.ok) {
      b.add_row({o.backend, "infeasible: " + o.error, "", "", ""});
      continue;
    }
    std::int64_t ext = 0;
    for (const auto& layer : o.result.layers) {
      ext += layer.external.total_accesses();
    }
    std::ostringstream hash;
    hash << std::hex << o.summary.output_hash;
    b.add_row({o.backend, TextTable::num(o.summary.total_cycles),
               TextTable::num(ext), "0x" + hash.str(),
               i == backends.fastest_index ? "<== fastest" : ""});
  }
  b.render(std::cout);
  std::cout << "(output hashes agree across backends - the arithmetic is "
               "shared; only cycles and traffic diverge)\n";
  return 0;
}
