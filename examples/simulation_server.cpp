// simulation_server - the simulation service driven end to end over the
// line protocol, with no network stack: requests come from stdin, one per
// line, responses go to stdout in request order. The whole stream is read
// to EOF first and served as one concurrent batch (this is a scripted
// batch driver, not an interactive shell), so `stats` lines report the
// post-batch counters.
//
//   ./example_simulation_server [--verify] [--workers N] [--cache N]
//       [--tile-parallelism N] < requests.txt
//
// Requests (see service/protocol.hpp):
//   run <network> [seed=N] [td=N] [tk=N] [...]
//   stats
//
// All `run` requests are submitted to the SimulationService concurrently
// (batch submission), so a multi-core host simulates distinct requests in
// parallel while duplicates coalesce into cache hits.
//
// --tile-parallelism N additionally splits each layer's buffer tiles over
// N shared-pool workers inside every simulated request (results are
// bit-identical by contract; the CI gate runs --verify with N > 1 to
// enforce exactly that end to end).
//
// --verify recomputes every request with a strictly serial
// core::SweepRunner (sweep and tile level both serial) and exits nonzero
// unless (a) every service outcome is bit-identical to its serial
// reference and (b) the cache counters equal the duplicate structure of
// the request stream. This is the CI gate.
#include <cstdint>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/sweep_runner.hpp"
#include "nn/model_zoo.hpp"
#include "service/protocol.hpp"
#include "service/simulation_service.hpp"
#include "util/random.hpp"

namespace {

using edea::core::SweepJob;
using edea::core::SweepOutcome;

/// A materialized workload: the quantized network and input behind one
/// (zoo name, seed) pair. Stored in a std::map so addresses stay stable
/// while jobs reference them.
struct Workload {
  std::vector<edea::nn::QuantDscLayer> layers;
  edea::nn::Int8Tensor input;
};

edea::nn::Int8Tensor random_input(const edea::nn::DscLayerSpec& spec,
                                  std::uint64_t seed) {
  edea::Rng rng(seed ^ 0xA5A5A5A5A5A5A5A5ull);
  edea::nn::Int8Tensor input(
      edea::nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return input;
}

bool outcome_identical(const SweepOutcome& a, const SweepOutcome& b) {
  if (a.ok != b.ok || a.error != b.error) return false;
  if (!a.ok) return true;
  return a.result.total_cycles() == b.result.total_cycles() &&
         a.result.output.storage() == b.result.output.storage();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edea;

  bool verify = false;
  bool usage_error = false;
  service::ServiceOptions options;
  const auto parse_count = [&](const char* text, std::size_t* out) {
    const std::string s = text;
    try {
      std::size_t consumed = 0;
      const unsigned long value = std::stoul(s, &consumed);
      // stoul silently wraps negatives ("-2" -> huge); reject them.
      if (consumed != s.size() || s.empty() || s.front() == '-') return false;
      *out = value;
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };
  for (int i = 1; i < argc && !usage_error; ++i) {
    const std::string arg = argv[i];
    std::size_t count = 0;
    if (arg == "--verify") {
      verify = true;
    } else if (arg == "--workers" && i + 1 < argc &&
               parse_count(argv[i + 1], &count)) {
      options.worker_threads = static_cast<unsigned>(count);
      ++i;
    } else if (arg == "--cache" && i + 1 < argc &&
               parse_count(argv[i + 1], &count)) {
      options.cache_capacity = count;
      ++i;
    } else if (arg == "--tile-parallelism" && i + 1 < argc &&
               parse_count(argv[i + 1], &count) && count >= 1 &&
               count <= static_cast<std::size_t>(
                            std::numeric_limits<int>::max())) {
      options.tile_parallelism = static_cast<int>(count);
      ++i;
    } else {
      usage_error = true;
    }
  }
  if (usage_error) {
    std::cerr << "usage: simulation_server [--verify] [--workers N] "
                 "[--cache N] [--tile-parallelism N] < requests\n";
    return 2;
  }

  // --- phase 1: read and parse the whole request stream ---------------------
  struct PendingRun {
    service::Request request;
    std::size_t response_slot;  ///< index into `responses`
  };
  std::vector<std::string> responses;  // one per input line that answers
  std::vector<PendingRun> runs;
  std::vector<std::size_t> stats_slots;  // response slots of `stats` lines
  bool protocol_clean = true;

  std::string line;
  while (std::getline(std::cin, line)) {
    const service::ParsedLine parsed = service::parse_request_line(line);
    switch (parsed.kind) {
      case service::ParsedLine::Kind::kEmpty:
        break;
      case service::ParsedLine::Kind::kStats:
        responses.emplace_back();  // filled with post-batch counters
        stats_slots.push_back(responses.size() - 1);
        break;
      case service::ParsedLine::Kind::kError:
        responses.push_back("protocol-error " + parsed.error);
        protocol_clean = false;
        break;
      case service::ParsedLine::Kind::kRun:
        responses.emplace_back();  // filled once the outcome is known
        runs.push_back(PendingRun{parsed.request, responses.size() - 1});
        break;
    }
  }

  // --- phase 2: materialize workloads (shared across duplicate requests) ---
  std::map<std::pair<std::string, std::uint64_t>, Workload> workloads;
  std::vector<SweepJob> jobs;           // resolved requests, stream order
  std::vector<std::size_t> job_slots;   // response slot of jobs[i]
  for (const PendingRun& run : runs) {
    const auto key = std::make_pair(run.request.network, run.request.seed);
    auto it = workloads.find(key);
    if (it == workloads.end()) {
      std::vector<nn::DscLayerSpec> specs;
      try {
        specs = nn::zoo_specs(run.request.network);
      } catch (const std::exception& e) {
        SweepOutcome unresolved;  // same line shape as served error outcomes
        unresolved.name = run.request.job_name();
        unresolved.config = run.request.config;
        unresolved.error = e.what();
        responses[run.response_slot] = service::format_outcome_line(unresolved);
        continue;
      }
      Workload w;
      w.layers = nn::make_random_quant_network(specs, run.request.seed);
      w.input = random_input(specs.front(), run.request.seed);
      it = workloads.emplace(key, std::move(w)).first;
    }
    SweepJob job;
    job.name = run.request.job_name();
    job.config = run.request.config;
    job.layers = &it->second.layers;
    job.input = &it->second.input;
    job_slots.push_back(run.response_slot);
    jobs.push_back(std::move(job));
  }

  // --- phase 3: serve the whole batch concurrently --------------------------
  service::SimulationService svc(options);
  const std::vector<SweepOutcome> outcomes = svc.serve(jobs);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    responses[job_slots[i]] = service::format_outcome_line(outcomes[i]);
  }
  const service::CacheStats stats = svc.cache_stats();
  for (const std::size_t slot : stats_slots) {
    responses[slot] = service::format_stats_line(stats);
  }

  for (const std::string& response : responses) std::cout << response << "\n";

  std::cerr << "served " << jobs.size() << " requests (" << stats.hits
            << " cache hits, " << stats.misses << " misses, "
            << stats.evictions << " evictions)\n";

  if (!verify) return protocol_clean ? 0 : 1;

  // --- phase 4 (--verify): serial reference + exact cache accounting -------
  bool all_ok = protocol_clean;

  // Every scripted request must have resolved to a real simulation - if a
  // zoo network is renamed (or the script has a typo), serving 0 requests
  // must fail the gate, not silently pass it.
  if (jobs.size() != runs.size() || jobs.empty()) {
    std::cerr << "VERIFY FAIL: only " << jobs.size() << " of " << runs.size()
              << " run requests resolved to servable networks\n";
    all_ok = false;
  }

  const std::vector<SweepOutcome> serial =
      core::SweepRunner(core::SweepRunner::Options{1}).run(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!outcome_identical(outcomes[i], serial[i])) {
      std::cerr << "VERIFY FAIL: request " << i << " (" << outcomes[i].name
                << ") differs from the serial SweepRunner reference\n";
      all_ok = false;
    }
  }

  // Expected counters: first occurrence of each (workload, config) key is
  // a miss, every repeat is a hit - independent of scheduling because the
  // service coalesces in-flight duplicates. This prediction only holds
  // when nothing gets evicted, i.e. the capacity covers every distinct
  // key; with a smaller --cache, eviction timing decides which repeats
  // re-simulate, so only bit-identity is checked.
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> seen;
  std::uint64_t expect_misses = 0;
  for (const SweepJob& job : jobs) {
    const auto key =
        std::make_pair(core::network_fingerprint(*job.layers, *job.input),
                       job.config.hash());
    if (seen[key]++ == 0) ++expect_misses;
  }
  if (options.cache_capacity >= seen.size()) {
    const std::uint64_t expect_hits = jobs.size() - expect_misses;
    if (stats.misses != expect_misses || stats.hits != expect_hits) {
      std::cerr << "VERIFY FAIL: cache stats hits=" << stats.hits
                << " misses=" << stats.misses << ", expected hits="
                << expect_hits << " misses=" << expect_misses << "\n";
      all_ok = false;
    }

    // Cached repeats must also be bit-identical to their first occurrence
    // (outcome_identical against serial already proves this transitively,
    // but assert the hit flags landed on the repeats).
    std::uint64_t flagged_hits = 0;
    for (const SweepOutcome& o : outcomes) flagged_hits += o.cache_hit ? 1 : 0;
    if (flagged_hits != expect_hits) {
      std::cerr << "VERIFY FAIL: " << flagged_hits
                << " outcomes flagged cache=hit, expected " << expect_hits
                << "\n";
      all_ok = false;
    }
  }

  std::cerr << (all_ok ? "verify OK: all outcomes bit-identical to serial, "
                         "cache accounting exact\n"
                       : "verify FAILED\n");
  return all_ok ? 0 : 1;
}
