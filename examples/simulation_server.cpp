// simulation_server - the simulation service composed from its three
// layers (see docs/ARCHITECTURE.md "Service layering"):
//
//   transport  StdioTransport (default) or SocketTransport (--listen):
//              where request lines come from and response lines go to
//   session    Session + WorkloadCatalog: framing, request ids, ordered
//              write-back, error replies - one session per connection
//   dispatch   SimulationService: concurrent simulation, memoizing LRU
//              cache, optional persistence (--cache-file) so repeated
//              design points survive restarts
//
// Stdio mode serves one session over stdin/stdout; --listen PORT serves
// concurrent TCP sessions on 127.0.0.1:PORT (one thread per connection,
// all sharing one service and one catalog). Responses over TCP are
// bit-identical to the stdio driver for the same request stream - the CI
// loopback leg and examples/simulation_client.cpp enforce exactly that.
//
// Run `simulation_server --help` for every flag; see
// service/server_cli.hpp for the parsed grammar.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/sweep_runner.hpp"
#include "service/protocol.hpp"
#include "service/server_cli.hpp"
#include "service/session.hpp"
#include "service/simulation_service.hpp"
#include "service/transport.hpp"

namespace {

using edea::core::SweepJob;
using edea::core::SweepOutcome;

bool outcome_identical(const SweepOutcome& served, const SweepOutcome& serial) {
  if (served.ok != serial.ok || served.error != serial.error) return false;
  if (!served.ok) return true;
  if (served.summary_only) {
    // Cache-served outcomes (warm hits, coalesced duplicates, persisted
    // replays) carry no per-layer result; the summary - which includes
    // the output hash and total cycles - is the protocol-visible
    // contract and must match the serial run exactly. Each distinct
    // workload still gets the full per-layer comparison once, at the
    // miss that simulated it.
    return served.summary == serial.summary;
  }
  return served.result.total_cycles() == serial.result.total_cycles() &&
         served.result.output.storage() == serial.result.output.storage() &&
         served.summary == serial.summary;
}

/// The --verify gate: serial bit-identity plus exact cache accounting.
/// Returns true when everything checks out.
bool verify_session(const edea::service::SessionStats& stats,
                    const edea::service::CacheStats& cache,
                    std::size_t cache_capacity) {
  bool all_ok = true;

  // Every scripted request must have resolved to a real simulation - if a
  // zoo network is renamed (or the script has a typo), serving 0 requests
  // must fail the gate, not silently pass it.
  if (stats.jobs.size() != stats.runs || stats.jobs.empty()) {
    std::cerr << "VERIFY FAIL: only " << stats.jobs.size() << " of "
              << stats.runs << " run requests resolved to servable networks\n";
    all_ok = false;
  }

  const std::vector<SweepOutcome> serial =
      edea::core::SweepRunner(edea::core::SweepRunner::Options{1})
          .run(stats.jobs);
  for (std::size_t i = 0; i < stats.jobs.size(); ++i) {
    if (!outcome_identical(stats.outcomes[i], serial[i])) {
      std::cerr << "VERIFY FAIL: request " << i << " ("
                << stats.outcomes[i].name
                << ") differs from the serial SweepRunner reference\n";
      all_ok = false;
    }
  }

  // Structural cache accounting: within one session, the first occurrence
  // of each (workload, config, backend, batch, dilation, depth_multiplier)
  // key either simulates (a miss) or lands in the preloaded persisted
  // cache (a hit); every repeat is a hit.
  // This prediction only holds when nothing gets evicted, i.e. the
  // capacity covers every distinct key; with a smaller --cache, eviction
  // timing decides which repeats re-simulate, so only bit-identity is
  // checked.
  std::map<
      std::tuple<std::uint64_t, std::uint64_t, std::string, int, int, int>,
      int>
      seen;
  std::uint64_t expect_misses = 0;
  for (std::size_t i = 0; i < stats.jobs.size(); ++i) {
    const SweepJob& job = stats.jobs[i];
    const auto key = std::make_tuple(
        edea::core::network_fingerprint(*job.layers, *job.input),
        job.config.hash(), stats.outcomes[i].backend, job.batch, job.dilation,
        job.depth_multiplier);
    if (seen[key]++ == 0 && !stats.outcomes[i].summary_only) ++expect_misses;
  }
  if (cache_capacity >= seen.size()) {
    const std::uint64_t expect_hits = stats.jobs.size() - expect_misses;
    if (cache.misses != expect_misses || cache.hits != expect_hits) {
      std::cerr << "VERIFY FAIL: cache stats hits=" << cache.hits
                << " misses=" << cache.misses << ", expected hits="
                << expect_hits << " misses=" << expect_misses << "\n";
      all_ok = false;
    }
    std::uint64_t flagged_hits = 0;
    for (const SweepOutcome& o : stats.outcomes) {
      flagged_hits += o.cache_hit ? 1 : 0;
    }
    if (flagged_hits != expect_hits) {
      std::cerr << "VERIFY FAIL: " << flagged_hits
                << " outcomes flagged cache=hit, expected " << expect_hits
                << "\n";
      all_ok = false;
    }
    // Summary-only delivery is exclusively a cache phenomenon (warm
    // hits, coalesced duplicates, persisted replays) - a summary-only
    // outcome not flagged as a hit means a fresh simulation lost its
    // per-layer result somewhere.
    for (const SweepOutcome& o : stats.outcomes) {
      if (o.summary_only && !o.cache_hit) {
        std::cerr << "VERIFY FAIL: " << o.name
                  << " served summary-only but not flagged cache=hit\n";
        all_ok = false;
      }
    }
  }

  std::cerr << (all_ok ? "verify OK: all outcomes bit-identical to serial, "
                         "cache accounting exact\n"
                       : "verify FAILED\n");
  return all_ok;
}

/// SIGINT/SIGTERM stop accepting so serve() returns and the cache is
/// flushed - ::shutdown(2) is async-signal-safe, so this is the whole
/// handler. Set only while socket mode is serving.
edea::service::SocketTransport* g_transport = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_transport != nullptr) g_transport->shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edea;

  const service::ServerConfig config =
      service::parse_server_args(argc - 1, argv + 1);
  if (!config.error.empty()) {
    std::cerr << "simulation_server: " << config.error << "\n\n"
              << service::server_usage();
    return 2;
  }
  if (config.help) {
    std::cout << service::server_usage();
    return 0;
  }

  service::SimulationService svc(config.service);
  if (!config.cache_file.empty()) {
    try {
      const std::size_t loaded = svc.load_cache(config.cache_file);
      std::cerr << "cache: loaded " << loaded << " persisted entries from "
                << config.cache_file << "\n";
    } catch (const std::exception& e) {
      std::cerr << "simulation_server: refusing corrupt cache file: "
                << e.what() << "\n";
      return 2;
    }
  }
  service::WorkloadCatalog catalog;
  int exit_code = 0;

  if (config.listen) {
    // --- socket mode: concurrent sessions over loopback TCP --------------
    service::SocketTransportOptions transport_options;
    transport_options.port = config.port;
    transport_options.max_sessions = config.max_sessions;
    service::SocketTransport transport(transport_options);
    std::cerr << "listening on 127.0.0.1:" << transport.port()
              << (config.max_sessions != 0
                      ? " for " + std::to_string(config.max_sessions) +
                            " session(s)\n"
                      : "\n");
    g_transport = &transport;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    service::SessionOptions session_options;
    session_options.backend = config.backend;
    session_options.batch = config.batch;
    session_options.dilation = config.dilation;
    session_options.depth_multiplier = config.depth_multiplier;
    session_options.allow_unordered = !config.ordered;
    session_options.busy_retry_ms = config.busy_retry_ms;
    transport.serve([&](service::Stream& stream) {
      service::Session(svc, catalog, session_options).serve(stream);
    });
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_transport = nullptr;
  } else {
    // --- stdio mode: one session over stdin/stdout ------------------------
    service::SessionOptions session_options;
    session_options.record_traffic = config.verify;
    session_options.backend = config.backend;
    session_options.batch = config.batch;
    session_options.dilation = config.dilation;
    session_options.depth_multiplier = config.depth_multiplier;
    session_options.allow_unordered = !config.ordered;
    session_options.busy_retry_ms = config.busy_retry_ms;
    service::StdioStream stream(std::cin, std::cout);
    service::Session session(svc, catalog, session_options);
    const service::SessionStats stats = session.serve(stream);

    const service::CacheStats cache = svc.cache_stats();
    std::cerr << "served " << stats.jobs.size() << " requests (" << cache.hits
              << " cache hits, " << cache.misses << " misses, "
              << cache.evictions << " evictions)\n";

    if (stats.protocol_errors != 0) exit_code = 1;
    if (config.verify &&
        !verify_session(stats, cache, config.service.cache_capacity)) {
      exit_code = 1;
    }
  }

  if (!config.cache_file.empty()) {
    try {
      const std::size_t saved = svc.save_cache(config.cache_file);
      std::cerr << "cache: saved " << saved << " entries to "
                << config.cache_file << "\n";
    } catch (const std::exception& e) {
      std::cerr << "simulation_server: failed to save cache: " << e.what()
                << "\n";
      return 1;
    }
  }
  return exit_code;
}
