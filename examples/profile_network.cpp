// profile_network - the profiler workflow: run a network on the
// cycle-accurate accelerator and render the full engineering report
// (timing, utilization, sparsity, power, energy, traffic, accumulator
// envelope). Profiles MobileNetV1 by default; pass "edeanet" to profile
// the custom 6-layer network instead.
#include <cstring>
#include <iostream>

#include "core/accelerator.hpp"
#include "model/report.hpp"
#include "nn/dataset.hpp"
#include "nn/mobilenet.hpp"
#include "nn/model_zoo.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace edea;

  const bool edeanet = argc > 1 && std::strcmp(argv[1], "edeanet") == 0;

  core::EdeaAccelerator accel;
  core::NetworkRunResult run;

  if (edeanet) {
    std::cout << "profiling EdeaNet-64 (custom DSC network)\n\n";
    const auto layers = nn::make_random_quant_network(nn::edeanet_specs(),
                                                      1234);
    Rng rng(1);
    nn::Int8Tensor input(nn::Shape{64, 64, 16});
    for (auto& v : input.storage()) {
      v = rng.bernoulli(0.4)
              ? std::int8_t{0}
              : static_cast<std::int8_t>(rng.uniform_int(0, 127));
    }
    run = accel.run_network(layers, input);
  } else {
    std::cout << "profiling MobileNetV1-CIFAR10 (one real inference, "
                 "synthetic image)\n\n";
    nn::FloatMobileNet net(20240101);
    nn::SyntheticCifar data(5);
    std::vector<nn::FloatTensor> images;
    for (int i = 0; i < 4; ++i) images.push_back(data.sample(i).image);
    const nn::CalibrationResult cal = nn::calibrate(net, images);
    const nn::QuantMobileNet qnet(net, cal);
    // Fully-integer path: int8 stem feeding the accelerated DSC stack.
    const nn::Int8Tensor stem_q =
        qnet.forward_stem_q(qnet.quantize_image(images[0]));
    run = accel.run_network(qnet.blocks(), stem_q);
  }

  const model::PowerModel power = model::PowerModel::paper_calibrated();
  const model::EnergyModel energy;  // default 22 nm-class event energies
  model::render_network_report(std::cout, run, power, energy);
  return 0;
}
