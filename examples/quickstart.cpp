// quickstart - smallest end-to-end use of the EDEA library:
//   1. define one depthwise-separable layer,
//   2. build random float parameters and quantize them to int8,
//   3. run the layer on the cycle-accurate accelerator,
//   4. verify bit-exactness against the golden quantized reference,
//   5. print latency / throughput / utilization / traffic statistics.
#include <iostream>

#include "core/accelerator.hpp"
#include "nn/layers.hpp"
#include "nn/metrics.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  // A mid-network MobileNetV1 layer: 8x8x256 ifmap, stride 1, 256 kernels.
  nn::DscLayerSpec spec;
  spec.index = 4;
  spec.in_rows = 8;
  spec.in_cols = 8;
  spec.in_channels = 256;
  spec.stride = 1;
  spec.out_channels = 256;

  // Random float layer -> int8 (calibration scales chosen for the demo).
  Rng rng(2024);
  const nn::FloatDscLayer float_layer = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      float_layer, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});

  // A random int8 input feature map (post-ReLU domain: [0, 127]).
  nn::Int8Tensor input(nn::Shape{spec.in_rows, spec.in_cols,
                                 spec.in_channels});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
    if (rng.bernoulli(0.4)) v = 0;  // realistic post-ReLU sparsity
  }

  // Run on the accelerator and on the golden reference.
  core::EdeaAccelerator accel;
  const core::LayerRunResult result = accel.run_layer(layer, input);
  const nn::Int8Tensor golden = layer.forward(input);

  std::cout << "EDEA quickstart - " << spec.to_string() << "\n\n";
  std::cout << "bit-exact vs reference : "
            << (result.output == golden ? "YES" : "NO !!") << "\n\n";

  const double clock = accel.config().clock_ghz;
  TextTable t({"metric", "value"});
  t.add_row({"total cycles", TextTable::num(result.timing.total_cycles)});
  t.add_row({"latency (ns @ 1 GHz)", TextTable::num(result.time_ns(clock))});
  t.add_row({"throughput (GOPS)",
             TextTable::num(result.throughput_gops(clock), 2)});
  t.add_row({"DWC lane utilization",
             TextTable::percent(result.dwc_lane_utilization(), 1)});
  t.add_row({"PWC lane utilization",
             TextTable::percent(result.pwc_lane_utilization(), 1)});
  t.add_row({"DWC duty (active/total)",
             TextTable::percent(result.dwc_duty(), 1)});
  t.add_row({"PWC duty (active/total)",
             TextTable::percent(result.pwc_duty(), 1)});
  t.add_row({"PWC input zero fraction",
             TextTable::percent(result.pwc_input_zero_fraction, 1)});
  t.add_row({"ext. activation accesses",
             TextTable::num(result.external.accesses(
                 arch::TrafficClass::kActivation))});
  t.add_row({"ext. weight accesses",
             TextTable::num(result.external.accesses(
                 arch::TrafficClass::kWeight))});
  t.render(std::cout);

  return result.output == golden ? 0 : 1;
}
