// simulation_router - the cluster tier front end (see docs/ARCHITECTURE.md
// "Cluster tier"):
//
//   router     service::ClusterRouter: consistent-hash routing of every
//              request's cache key across worker servers, reply merging
//              (byte-identical to one server in ordered mode), stats
//              fan-out, failover with bounded jittered retries
//   workers    ordinary example_simulation_server processes - spawned on
//              ephemeral ports (--spawn N) or attached (--worker
//              HOST:PORT, repeatable)
//
// Stdio mode serves one routed session over stdin/stdout; --listen PORT
// serves concurrent TCP sessions, each routed across the same worker
// fleet. With --spawn and --cache-file BASE, worker i persists its shard
// cache to BASE.shard<i>; on shutdown the router drains the workers
// (SIGTERM, so each saves its shard) and merges the shards into BASE.
//
// Run `simulation_router --help` for every flag; see
// service/router_cli.hpp for the parsed grammar.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/router.hpp"
#include "service/router_cli.hpp"
#include "service/transport.hpp"

namespace {

/// One spawned worker server process.
struct SpawnedWorker {
  std::string shard_id;
  pid_t pid = -1;
  int stderr_fd = -1;  ///< read end of the child's stderr pipe
  std::uint16_t port = 0;
  std::thread drain;  ///< forwards the child's stderr, prefixed
};

/// Reads one '\n'-terminated line from a raw fd (the child stderr pipe).
/// Returns false on EOF with nothing buffered.
bool read_fd_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      return true;
    }
    char chunk[512];
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      if (buffer.empty()) return false;
      line = std::move(buffer);
      buffer.clear();
      return true;
    }
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
}

/// The worker binary expected next to this one when --server-bin is not
/// given.
std::string default_server_bin() {
  char path[4096];
  const ssize_t got = ::readlink("/proc/self/exe", path, sizeof(path) - 1);
  if (got <= 0) return "./example_simulation_server";
  path[got] = '\0';
  std::string self(path);
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/example_simulation_server";
}

/// Forks one worker server on an ephemeral port, scraping the bound port
/// from its "listening on 127.0.0.1:PORT" stderr line. Returns false (with
/// the reason on stderr) when the worker dies before announcing a port.
bool spawn_worker(const edea::service::RouterCliConfig& config,
                  const std::string& server_bin, int index,
                  SpawnedWorker* out) {
  out->shard_id = "shard" + std::to_string(index);

  int fds[2];
  if (::pipe(fds) != 0) {
    std::cerr << "simulation_router: pipe() failed: " << std::strerror(errno)
              << "\n";
    return false;
  }

  std::vector<std::string> args = {server_bin, "--listen", "0",
                                   "--backend", config.backend,
                                   "--batch", std::to_string(config.batch),
                                   "--dilation",
                                   std::to_string(config.dilation),
                                   "--depth-multiplier",
                                   std::to_string(config.depth_multiplier)};
  if (!config.cache_file.empty()) {
    args.push_back("--cache-file");
    args.push_back(config.cache_file + "." + out->shard_id);
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "simulation_router: fork() failed: " << std::strerror(errno)
              << "\n";
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    // Child: stderr into the pipe, then become the worker server.
    ::dup2(fds[1], 2);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    // Only reached when exec failed; stderr already points at the pipe.
    std::cerr << "simulation_router: cannot exec worker binary '" << args[0]
              << "': " << std::strerror(errno) << "\n";
    ::_exit(127);
  }

  ::close(fds[1]);
  out->pid = pid;
  out->stderr_fd = fds[0];

  // Scrape the bound port. Lines before the announcement (cache load
  // reports) forward to our stderr, prefixed with the shard id.
  constexpr const char* kPrefix = "listening on 127.0.0.1:";
  std::string buffer;
  std::string line;
  while (read_fd_line(out->stderr_fd, buffer, line)) {
    if (line.rfind(kPrefix, 0) == 0) {
      std::uint64_t port = 0;
      std::size_t pos = std::string(kPrefix).size();
      while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
        port = port * 10 + static_cast<std::uint64_t>(line[pos] - '0');
        ++pos;
      }
      if (port == 0 || port > 65535) break;
      out->port = static_cast<std::uint16_t>(port);
      std::cerr << "[" << out->shard_id << "] " << line << "\n";
      return true;
    }
    std::cerr << "[" << out->shard_id << "] " << line << "\n";
  }
  std::cerr << "simulation_router: worker " << out->shard_id
            << " exited before announcing its port\n";
  return false;
}

/// SIGINT/SIGTERM stop accepting so serve() returns, workers get drained,
/// and shard caches merge - ::shutdown(2) is async-signal-safe, so this is
/// the whole handler. Set only while socket mode is serving.
edea::service::SocketTransport* g_transport = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_transport != nullptr) g_transport->shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edea;

  const service::RouterCliConfig config =
      service::parse_router_args(argc - 1, argv + 1);
  if (!config.error.empty()) {
    std::cerr << "simulation_router: " << config.error << "\n\n"
              << service::router_usage();
    return 2;
  }
  if (config.help) {
    std::cout << service::router_usage();
    return 0;
  }

  // --- membership: spawn a fleet or attach to one ------------------------
  std::vector<SpawnedWorker> spawned;
  service::RouterOptions router_options;
  router_options.replicas = config.replicas;
  router_options.max_attempts = config.max_attempts;
  router_options.backend = config.backend;
  router_options.batch = config.batch;
  router_options.dilation = config.dilation;
  router_options.depth_multiplier = config.depth_multiplier;
  router_options.allow_unordered = !config.ordered;

  const auto reap_workers = [&spawned]() {
    int failures = 0;
    for (SpawnedWorker& worker : spawned) {
      if (worker.pid > 0) ::kill(worker.pid, SIGTERM);
    }
    for (SpawnedWorker& worker : spawned) {
      if (worker.pid <= 0) continue;
      int status = 0;
      while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
      }
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::cerr << "simulation_router: worker " << worker.shard_id
                  << " exited abnormally\n";
        ++failures;
      }
      if (worker.drain.joinable()) worker.drain.join();
      if (worker.stderr_fd >= 0) ::close(worker.stderr_fd);
      worker.pid = -1;
    }
    return failures;
  };

  if (config.spawn > 0) {
    const std::string server_bin =
        config.server_bin.empty() ? default_server_bin() : config.server_bin;
    spawned.resize(static_cast<std::size_t>(config.spawn));
    for (int i = 0; i < config.spawn; ++i) {
      if (!spawn_worker(config, server_bin, i, &spawned[static_cast<std::size_t>(i)])) {
        reap_workers();
        return 1;
      }
    }
    for (SpawnedWorker& worker : spawned) {
      router_options.workers.push_back(service::WorkerEndpoint{
          worker.shard_id, "127.0.0.1", worker.port});
      // Keep forwarding worker stderr (cache saves, crashes) for the rest
      // of its life, prefixed so shard logs stay attributable.
      worker.drain = std::thread([&worker] {
        std::string buffer;
        std::string line;
        while (read_fd_line(worker.stderr_fd, buffer, line)) {
          std::cerr << "[" + worker.shard_id + "] " + line + "\n";
        }
      });
    }
  } else {
    router_options.workers = config.workers;
  }

  int exit_code = 0;
  {
    service::ClusterRouter router(std::move(router_options));

    if (config.listen) {
      // --- socket mode: concurrent routed sessions over loopback TCP ----
      service::SocketTransportOptions transport_options;
      transport_options.port = config.port;
      transport_options.max_sessions = config.max_sessions;
      service::SocketTransport transport(transport_options);
      std::cerr << "listening on 127.0.0.1:" << transport.port()
                << (config.max_sessions != 0
                        ? " for " + std::to_string(config.max_sessions) +
                              " session(s)\n"
                        : "\n");
      g_transport = &transport;
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);
      transport.serve(
          [&](service::Stream& stream) { router.serve(stream); });
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      g_transport = nullptr;
    } else {
      // --- stdio mode: one routed session over stdin/stdout -------------
      service::StdioStream stream(std::cin, std::cout);
      const service::RouterSessionStats stats = router.serve(stream);
      std::cerr << "routed " << stats.runs << " requests across "
                << router.live_workers().size() << " live worker(s) ("
                << stats.retries << " retries, " << stats.failovers
                << " failovers)\n";
      if (stats.protocol_errors != 0) exit_code = 1;
    }
  }

  // --- drain: stop workers (each saves its shard cache), then merge ------
  if (!spawned.empty()) {
    if (reap_workers() != 0) exit_code = 1;
    if (!config.cache_file.empty()) {
      std::vector<std::string> shard_paths;
      shard_paths.reserve(spawned.size());
      for (const SpawnedWorker& worker : spawned) {
        shard_paths.push_back(config.cache_file + "." + worker.shard_id);
      }
      try {
        const std::size_t merged =
            service::merge_cache_files(shard_paths, config.cache_file);
        std::cerr << "cache: merged " << spawned.size() << " shard file(s), "
                  << merged << " entries into " << config.cache_file << "\n";
      } catch (const std::exception& e) {
        std::cerr << "simulation_router: failed to merge shard caches: "
                  << e.what() << "\n";
        exit_code = 1;
      }
    }
  }
  return exit_code;
}
