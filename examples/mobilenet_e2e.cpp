// mobilenet_e2e - the paper's full workload, end to end:
//
//   synthetic CIFAR10 -> float MobileNetV1 stem -> int8 DSC layers
//   (quantized exactly like the accelerator computes them) -> features ->
//   linear classifier head trained on the frozen random backbone.
//
// Demonstrates:
//   - post-training int8 calibration (the LSQ substitute),
//   - classification well above chance on the 10-class synthetic set,
//   - float-vs-quantized top-1 agreement,
//   - bit-exactness of the cycle-accurate accelerator on sample images,
//   - per-layer accelerator statistics for one inference.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/accelerator.hpp"
#include "nn/dataset.hpp"
#include "nn/metrics.hpp"
#include "nn/mobilenet.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace edea;

/// Extracts the classifier feature vector (global average pool over the
/// dequantized final DSC activations).
nn::FloatTensor quantized_features(const nn::FloatMobileNet& net,
                                   const nn::QuantMobileNet& qnet,
                                   const nn::FloatTensor& image) {
  const nn::FloatTensor stem = net.forward_stem(image);
  const nn::Int8Tensor out = qnet.forward_dsc(qnet.quantize_input(stem));
  return nn::global_avg_pool(qnet.dequantize_output(out));
}

/// Simple softmax-regression trainer for the 1024 -> 10 head.
class LinearHead {
 public:
  LinearHead(int in_dim, int classes, Rng& rng)
      : in_dim_(in_dim),
        classes_(classes),
        w_(nn::Shape{classes, in_dim}),
        b_(nn::Shape{classes}, 0.0f) {
    for (auto& v : w_.storage()) {
      v = static_cast<float>(rng.normal(0.0, 0.01));
    }
  }

  [[nodiscard]] nn::FloatTensor logits(const nn::FloatTensor& x) const {
    return nn::linear(x, w_, b_);
  }

  /// One SGD step on a single example; returns the cross-entropy loss.
  double step(const nn::FloatTensor& x, int label, float lr) {
    const nn::FloatTensor p = nn::softmax(logits(x));
    double loss = -std::log(std::max(
        1e-9, static_cast<double>(p(label))));
    for (int k = 0; k < classes_; ++k) {
      const float grad = p(k) - (k == label ? 1.0f : 0.0f);
      b_(k) -= lr * grad;
      for (int c = 0; c < in_dim_; ++c) {
        w_(k, c) -= lr * grad * x(c);
      }
    }
    return loss;
  }

 private:
  int in_dim_;
  int classes_;
  nn::FloatTensor w_;
  nn::FloatTensor b_;
};

}  // namespace

int main() {
  std::cout << "=== MobileNetV1 on synthetic CIFAR10, int8, end to end ===\n";

  // 1. Build and calibrate the network.
  nn::FloatMobileNet net(20240601);
  nn::SyntheticCifar data(11);
  std::vector<nn::FloatTensor> cal_images;
  for (int i = 0; i < 8; ++i) cal_images.push_back(data.sample(i % 10).image);
  const nn::CalibrationResult cal = nn::calibrate(net, cal_images);
  const nn::QuantMobileNet qnet(net, cal);
  std::cout << "network: " << TextTable::num(net.parameter_count())
            << " parameters, 13 DSC layers quantized to int8\n\n";

  // 2. Extract features for train/test splits.
  constexpr int kTrain = 200;
  constexpr int kTest = 100;
  std::cout << "extracting features for " << kTrain << " train / " << kTest
            << " test images...\n";
  std::vector<nn::FloatTensor> train_x, test_x;
  std::vector<int> train_y, test_y;
  for (const auto& ex : data.batch(kTrain)) {
    train_x.push_back(quantized_features(net, qnet, ex.image));
    train_y.push_back(ex.label);
  }
  for (const auto& ex : data.batch(kTest)) {
    test_x.push_back(quantized_features(net, qnet, ex.image));
    test_y.push_back(ex.label);
  }

  // 3. Train the head on the frozen random backbone's features.
  Rng rng(7);
  LinearHead head(1024, 10, rng);
  for (int epoch = 0; epoch < 12; ++epoch) {
    double loss = 0.0;
    for (std::size_t i = 0; i < train_x.size(); ++i) {
      loss += head.step(train_x[i], train_y[i], 0.05f);
    }
    if (epoch % 4 == 3) {
      std::cout << "  epoch " << epoch + 1
                << " mean loss: " << TextTable::num(loss / kTrain, 3) << "\n";
    }
  }

  // 4. Evaluate: accuracy and float-vs-quantized agreement.
  nn::AccuracyMeter train_acc, test_acc;
  nn::AgreementMeter agreement;
  for (std::size_t i = 0; i < train_x.size(); ++i) {
    train_acc.add(nn::argmax(head.logits(train_x[i])), train_y[i]);
  }
  nn::SyntheticCifar eval_data(77);
  for (std::size_t i = 0; i < test_x.size(); ++i) {
    test_acc.add(nn::argmax(head.logits(test_x[i])), test_y[i]);
  }
  // Agreement between float-backbone and int8-backbone predictions.
  for (int i = 0; i < 40; ++i) {
    const nn::LabeledImage ex = eval_data.sample(i % 10);
    const nn::FloatTensor stem = net.forward_stem(ex.image);
    const nn::FloatTensor float_feat =
        nn::global_avg_pool(net.forward_dsc(stem));
    const nn::FloatTensor quant_feat = quantized_features(net, qnet,
                                                          ex.image);
    agreement.add(nn::argmax(head.logits(float_feat)),
                  nn::argmax(head.logits(quant_feat)));
  }

  std::cout << "\n";
  TextTable results({"metric", "value"});
  results.add_row({"train accuracy", TextTable::percent(train_acc.accuracy(),
                                                        1)});
  results.add_row({"test accuracy (chance = 10%)",
                   TextTable::percent(test_acc.accuracy(), 1)});
  results.add_row({"float vs int8 top-1 agreement",
                   TextTable::percent(agreement.agreement(), 1)});
  results.render(std::cout);

  // 5. Run one image through the cycle-accurate accelerator and verify
  //    bit-exactness against the reference used for training.
  std::cout << "\n=== accelerator verification on one inference ===\n";
  core::EdeaAccelerator accel;
  const nn::LabeledImage probe = eval_data.sample(3);
  const nn::FloatTensor stem = net.forward_stem(probe.image);
  const nn::Int8Tensor q_in = qnet.quantize_input(stem);
  const core::NetworkRunResult run = accel.run_network(qnet.blocks(), q_in);
  const nn::Int8Tensor ref = qnet.forward_dsc(q_in);
  std::cout << "accelerator output bit-exact vs reference: "
            << (run.output == ref ? "YES" : "NO !!") << "\n";
  std::cout << "DSC inference latency: "
            << TextTable::num(static_cast<double>(run.total_cycles()) / 1000.0,
                              2)
            << " us @ 1 GHz,  average throughput: "
            << TextTable::num(run.average_throughput_gops(1.0), 1)
            << " GOPS\n\n";

  TextTable layers({"layer", "cycles", "GOPS", "DWC zero%", "PWC zero%"});
  for (const auto& r : run.layers) {
    layers.add_row({std::to_string(r.spec.index),
                    TextTable::num(r.timing.total_cycles),
                    TextTable::num(r.throughput_gops(1.0), 1),
                    TextTable::percent(r.dwc_input_zero_fraction, 1),
                    TextTable::percent(r.pwc_input_zero_fraction, 1)});
  }
  layers.render(std::cout);

  return run.output == ref ? 0 : 1;
}
