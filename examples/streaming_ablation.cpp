// streaming_ablation - a guided walk through the paper's central idea:
// what the direct DWC->PWC data transfer and the parallel dual engines
// buy, on one layer, with full statistics from both architectures.
//
// Both architectures are instantiated by id through the backend registry
// (core/backend.hpp) - the same selection path sweeps, the DSE, and the
// simulation service use - so this example doubles as the smallest
// possible cross-backend experiment: one layer, two dataflows, bit-exact
// outputs, divergent measurements.
#include <iostream>
#include <memory>
#include <vector>

#include "core/backend.hpp"
#include "nn/layers.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  // Layer 6 of MobileNetV1: the PWC-dominated steady-state workload.
  nn::DscLayerSpec spec;
  spec.index = 6;
  spec.in_rows = 4;
  spec.in_cols = 4;
  spec.in_channels = 512;
  spec.out_channels = 512;

  Rng rng(2468);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const std::vector<nn::QuantDscLayer> network{nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f})};
  nn::Int8Tensor input(nn::Shape{4, 4, 512});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.5) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }

  std::cout << "registered backends: " << core::known_backends_string()
            << "\n";
  const std::unique_ptr<core::AcceleratorBackend> edea_backend =
      core::make_backend("edea");
  const std::unique_ptr<core::AcceleratorBackend> serial_backend =
      core::make_backend("serialized");
  const core::NetworkRunResult fast_net =
      edea_backend->run_network(network, input);
  const core::NetworkRunResult slow_net =
      serial_backend->run_network(network, input);
  const core::LayerRunResult& fast = fast_net.layers.front();
  const core::LayerRunResult& slow = slow_net.layers.front();

  std::cout << "=== " << spec.to_string() << " ===\n\n";
  const bool bit_exact =
      fast_net.output.storage() == slow_net.output.storage();
  std::cout << "both architectures produce bit-identical int8 outputs: "
            << (bit_exact ? "YES" : "NO !!") << "\n\n";

  TextTable t({"metric", "EDEA (dual engine)", "serialized baseline"});
  t.add_row({"total cycles", TextTable::num(fast.timing.total_cycles),
             TextTable::num(slow.timing.total_cycles)});
  t.add_row({"DWC-active cycles", TextTable::num(fast.timing.dwc_active_cycles),
             TextTable::num(slow.timing.dwc_active_cycles)});
  t.add_row({"PWC-active cycles", TextTable::num(fast.timing.pwc_active_cycles),
             TextTable::num(slow.timing.pwc_active_cycles)});
  t.add_row({"  engine overlap", "DWC runs in the PWC shadow",
             "phases strictly serial"});
  t.add_row({"ext. activation accesses",
             TextTable::num(fast.external.accesses(
                 arch::TrafficClass::kActivation)),
             TextTable::num(slow.external.accesses(
                 arch::TrafficClass::kActivation))});
  t.add_row({"intermediate buffer traffic",
             TextTable::num(fast.buffers.intermediate.total_accesses()),
             "n/a (round-trips through external memory)"});
  t.render(std::cout);

  const double speedup =
      static_cast<double>(slow.timing.total_cycles) /
      static_cast<double>(fast.timing.total_cycles);
  const double traffic_saving =
      1.0 - static_cast<double>(fast.external.accesses(
                arch::TrafficClass::kActivation)) /
                static_cast<double>(slow.external.accesses(
                    arch::TrafficClass::kActivation));

  std::cout << "\nEDEA speedup: " << TextTable::num(speedup, 3)
            << "x, external activation traffic saved: "
            << TextTable::percent(traffic_saving, 1)
            << "\n(the intermediate tile moves through the 64-byte "
               "double-buffered on-chip intermediate buffer instead of "
               "external memory; the DWC engine works in the PWC engine's "
               "shadow, cf. Fig. 7)\n";
  return bit_exact ? 0 : 1;
}
