// streaming_ablation - a guided walk through the paper's central idea:
// what the direct DWC->PWC data transfer and the parallel dual engines
// buy, on one layer, with full statistics from both architectures.
#include <iostream>

#include "baseline/serialized_accelerator.hpp"
#include "core/accelerator.hpp"
#include "nn/layers.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  // Layer 6 of MobileNetV1: the PWC-dominated steady-state workload.
  nn::DscLayerSpec spec;
  spec.index = 6;
  spec.in_rows = 4;
  spec.in_cols = 4;
  spec.in_channels = 512;
  spec.out_channels = 512;

  Rng rng(2468);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{4, 4, 512});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.5) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }

  core::EdeaAccelerator edea;
  baseline::SerializedDscAccelerator serial;
  const core::LayerRunResult fast = edea.run_layer(layer, input);
  const baseline::SerializedLayerResult slow = serial.run_layer(layer, input);

  std::cout << "=== " << spec.to_string() << " ===\n\n";
  std::cout << "both architectures produce bit-identical int8 outputs: "
            << (fast.output == slow.common.output ? "YES" : "NO !!")
            << "\n\n";

  TextTable t({"metric", "EDEA (dual engine)", "serialized baseline"});
  t.add_row({"total cycles", TextTable::num(fast.timing.total_cycles),
             TextTable::num(slow.common.timing.total_cycles)});
  t.add_row({"  DWC phase", "overlapped with PWC",
             TextTable::num(slow.dwc_phase_cycles)});
  t.add_row({"  PWC phase", TextTable::num(fast.timing.total_cycles),
             TextTable::num(slow.pwc_phase_cycles)});
  t.add_row({"ext. activation accesses",
             TextTable::num(fast.external.accesses(
                 arch::TrafficClass::kActivation)),
             TextTable::num(slow.common.external.accesses(
                 arch::TrafficClass::kActivation))});
  t.add_row({"  intermediate round trip", "0 (on-chip buffer)",
             TextTable::num(slow.intermediate_external_writes +
                            slow.intermediate_external_reads)});
  t.add_row({"intermediate buffer traffic",
             TextTable::num(fast.buffers.intermediate.total_accesses()),
             "n/a (external)"});
  t.render(std::cout);

  const double speedup =
      static_cast<double>(slow.common.timing.total_cycles) /
      static_cast<double>(fast.timing.total_cycles);
  const double traffic_saving =
      1.0 - static_cast<double>(fast.external.accesses(
                arch::TrafficClass::kActivation)) /
                static_cast<double>(slow.common.external.accesses(
                    arch::TrafficClass::kActivation));

  std::cout << "\nEDEA speedup: " << TextTable::num(speedup, 3)
            << "x, external activation traffic saved: "
            << TextTable::percent(traffic_saving, 1)
            << "\n(the intermediate tile moves through the 64-byte "
               "double-buffered on-chip intermediate buffer instead of "
               "external memory; the DWC engine works in the PWC engine's "
               "shadow, cf. Fig. 7)\n";
  return fast.output == slow.common.output ? 0 : 1;
}
