// simulation_client - loopback driver for the socket mode of the
// simulation server: reads a request stream from stdin, replays it over
// TCP, and prints the server's responses to stdout in request order.
//
//   simulation_server --listen 47163 &
//   simulation_client --connect 127.0.0.1:47163 [--verify]
//       [--expect-all-hits] [--backend ID] [--batch N] [--dilation N]
//       [--depth-multiplier N] < examples/simulation_requests.txt
//
// Run `simulation_client --help` for every flag; see
// service/client_cli.hpp for the parsed grammar. --backend mirrors the
// server's default backend in the in-process --verify reference.
//
// --verify recomputes the reference responses *in process* by running the
// same request lines through the same Session + SimulationService code
// path the stdio server uses (fresh service, default options) and fails
// unless the server's responses are bit-identical - this is the
// acceptance check that a TCP client sees exactly what the stdio driver
// prints. Cache flags are compared separately from content: a server
// restarted with a persisted cache (--cache-file) serves the same
// *content* but flags every run response cache=hit, which is what
// --expect-all-hits asserts (the CI persistence leg).
//
// Exit codes: 0 verified/served, 1 verification failure, 2 usage or
// connection error.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "service/client_cli.hpp"
#include "service/pipeline_client.hpp"
#include "service/session.hpp"
#include "service/simulation_service.hpp"
#include "service/transport.hpp"

namespace {

/// Splits a response line into (content with the cache token blanked,
/// cache token). Lines without a cache token come back unchanged with an
/// empty token (stats, protocol-error).
std::pair<std::string, std::string> split_cache_token(
    const std::string& line) {
  for (const char* token : {" cache=hit", " cache=miss"}) {
    const std::size_t at = line.find(token);
    if (at != std::string::npos) {
      std::string content = line;
      const std::string value = token + 7;  // past " cache="
      content.replace(at, std::string(token).size(), " cache=?");
      return {content, value};
    }
  }
  return {line, ""};
}

/// The in-process reference: the exact stdio code path (Session over
/// string streams against a fresh default service), producing the
/// response lines the stdio driver would print for `request_lines`.
/// `default_backend` mirrors the server's --backend ("" = protocol
/// default); `default_batch` its --batch, `default_dilation` its
/// --dilation, `default_depth_multiplier` its --depth-multiplier (0 =
/// protocol default).
std::vector<std::string> reference_responses(
    const std::vector<std::string>& request_lines,
    const std::string& default_backend, int default_batch,
    int default_dilation, int default_depth_multiplier) {
  std::ostringstream joined;
  for (const std::string& line : request_lines) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;

  edea::service::SimulationService svc;
  edea::service::WorkloadCatalog catalog;
  edea::service::StdioStream stream(in, out);
  edea::service::SessionOptions options;
  if (!default_backend.empty()) options.backend = default_backend;
  if (default_batch != 0) options.batch = default_batch;
  if (default_dilation != 0) options.dilation = default_dilation;
  if (default_depth_multiplier != 0) {
    options.depth_multiplier = default_depth_multiplier;
  }
  (void)edea::service::Session(svc, catalog, options).serve(stream);

  std::vector<std::string> lines;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) lines.push_back(line);
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edea;

  const service::ClientConfig config =
      service::parse_client_args(argc - 1, argv + 1);
  if (!config.error.empty()) {
    std::cerr << "simulation_client: " << config.error << "\n\n"
              << service::client_usage();
    return 2;
  }
  if (config.help) {
    std::cout << service::client_usage();
    return 0;
  }

  std::vector<std::string> request_lines;
  std::string line;
  while (std::getline(std::cin, line)) request_lines.push_back(line);

  std::vector<std::string> responses;
  try {
    // The server may still be binding when we start (the CI leg launches
    // both concurrently) - retry the connection for a few seconds.
    std::unique_ptr<service::Stream> stream =
        service::connect_socket(config.host, config.port,
                                /*retry_ms=*/10000);
    if (config.pipeline > 0) {
      // Pipelined mode: up to --pipeline requests in flight in batch
      // frames, busy rejections retried with jittered backoff, responses
      // reassembled into request order (so --verify below still applies).
      service::PipelineOptions options;
      options.window = config.pipeline;
      options.ordered = config.ordered;
      service::PipelineReport report =
          service::run_pipelined(*stream, request_lines, options);
      if (!report.complete) {
        std::cerr << "simulation_client: " << report.error << "\n";
        return 2;
      }
      std::cerr << "pipelined " << request_lines.size() << " requests ("
                << (report.unordered ? "unordered" : "ordered") << ", "
                << report.frames_sent << " frames, " << report.busy_replies
                << " busy retries)\n";
      responses = std::move(report.responses);
      // Blank/comment request lines hold empty response slots; the
      // server never answers them, so the legacy sender (and the
      // --verify reference) have no lines for them either.
      responses.erase(
          std::remove(responses.begin(), responses.end(), std::string()),
          responses.end());
    } else {
      // Send everything, half-close, then read to EOF. The session's
      // split reader/writer threads guarantee the server keeps reading
      // while it writes, so a one-shot scripted stream cannot deadlock.
      for (const std::string& request : request_lines) {
        if (!stream->write_line(request)) {
          std::cerr << "simulation_client: connection broke while sending\n";
          return 2;
        }
      }
      stream->close_write();
      std::string response;
      while (stream->read_line(response)) responses.push_back(response);
    }
  } catch (const std::exception& e) {
    std::cerr << "simulation_client: " << e.what() << "\n";
    return 2;
  }

  for (const std::string& response : responses) {
    std::cout << response << "\n";
  }

  if (!config.verify) return 0;

  const std::vector<std::string> expected =
      reference_responses(request_lines, config.backend, config.batch,
                          config.dilation, config.depth_multiplier);
  bool all_ok = true;
  if (responses.size() != expected.size()) {
    std::cerr << "VERIFY FAIL: " << responses.size() << " responses, expected "
              << expected.size() << "\n";
    all_ok = false;
  }
  const std::size_t common = std::min(responses.size(), expected.size());
  std::size_t run_responses = 0;
  std::size_t hit_responses = 0;
  for (std::size_t i = 0; i < common; ++i) {
    const auto [served_content, served_cache] =
        split_cache_token(responses[i]);
    const auto [expected_content, expected_cache] =
        split_cache_token(expected[i]);

    const bool is_stats = expected[i].rfind("stats ", 0) == 0;
    if (config.expect_all_hits && is_stats) {
      // A persisted-cache replay reports different counters than a cold
      // reference run; check the semantic claim instead of the bytes.
      if (responses[i].find(" misses=0 ") == std::string::npos) {
        std::cerr << "VERIFY FAIL: response " << i
                  << " should report zero misses: " << responses[i] << "\n";
        all_ok = false;
      }
      continue;
    }
    if (served_content != expected_content) {
      std::cerr << "VERIFY FAIL: response " << i << " differs\n  served:   "
                << responses[i] << "\n  expected: " << expected[i] << "\n";
      all_ok = false;
      continue;
    }
    if (!expected_cache.empty()) {
      ++run_responses;
      if (served_cache == "hit") ++hit_responses;
      if (config.expect_all_hits) {
        if (served_cache != "hit") {
          std::cerr << "VERIFY FAIL: response " << i
                    << " should be a cache hit: " << responses[i] << "\n";
          all_ok = false;
        }
      } else if (served_cache != expected_cache) {
        std::cerr << "VERIFY FAIL: response " << i << " cache flag '"
                  << served_cache << "', expected '" << expected_cache
                  << "'\n";
        all_ok = false;
      }
    }
  }

  if (all_ok) {
    std::cerr << "verify OK: " << responses.size()
              << " responses bit-identical to the stdio reference ("
              << hit_responses << "/" << run_responses << " cache hits)\n";
  } else {
    std::cerr << "verify FAILED\n";
  }
  return all_ok ? 0 : 1;
}
