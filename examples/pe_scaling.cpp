// pe_scaling - demonstrates the paper's scaling claim (Sec. III-B) on the
// real simulator: the engines scale in Td (channels) and Tk (kernels)
// without losing lane utilization or bit-exactness, and latency shrinks
// proportionally.
#include <iostream>

#include "core/accelerator.hpp"
#include "nn/layers.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  // A representative mid-network layer.
  nn::DscLayerSpec spec;
  spec.in_rows = 8;
  spec.in_cols = 8;
  spec.in_channels = 128;
  spec.out_channels = 128;

  Rng rng(99);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{8, 8, 128});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  const nn::Int8Tensor golden = layer.forward(input);

  std::cout << "=== PE scaling study on " << spec.to_string() << " ===\n";
  TextTable t({"config", "PEs", "cycles", "speedup", "DWC util", "PWC util",
               "bit-exact"});

  struct Variant {
    const char* name;
    int td, tk;
  };
  const Variant variants[] = {
      {"half kernels (Tk=8)", 8, 8},
      {"paper (Td=8, Tk=16)", 8, 16},
      {"2x kernels (Tk=32)", 8, 32},
      {"2x channels (Td=16)", 16, 16},
      {"4x (Td=16, Tk=32)", 16, 32},
  };

  std::int64_t base_cycles = 0;
  for (const Variant& v : variants) {
    core::EdeaConfig cfg = core::EdeaConfig::paper();
    cfg.td = v.td;
    cfg.tk = v.tk;
    core::EdeaAccelerator accel(cfg);
    const core::LayerRunResult r = accel.run_layer(layer, input);
    if (v.td == 8 && v.tk == 16) base_cycles = r.timing.total_cycles;
    t.add_row({v.name,
               TextTable::num(static_cast<std::int64_t>(
                   cfg.total_mac_count())),
               TextTable::num(r.timing.total_cycles),
               base_cycles == 0
                   ? "-"
                   : TextTable::num(static_cast<double>(base_cycles) /
                                        static_cast<double>(
                                            r.timing.total_cycles),
                                    2) +
                         "x",
               TextTable::percent(r.dwc_lane_utilization(), 1),
               TextTable::percent(r.pwc_lane_utilization(), 1),
               r.output == golden ? "yes" : "NO !!"});
  }
  t.render(std::cout);

  std::cout << "\nEvery variant computes the identical int8 result; scaling "
               "Td/Tk trades silicon area for latency at constant 100% lane "
               "utilization (layer channels are multiples of the tile "
               "sizes).\n";
  return 0;
}
