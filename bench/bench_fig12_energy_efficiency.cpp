// bench_fig12_energy_efficiency - regenerates Fig. 12: per-layer energy
// efficiency in TOPS/W, in both paper-calibrated and measured-sparsity
// modes, plus the headline numbers (peak 13.43, average 11.13 TOPS/W).
#include <iostream>

#include "bench_common.hpp"
#include "model/paper_data.hpp"
#include "model/power_model.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const bench::MobileNetRun& run = bench::run_mobilenet_on_accelerator();
  const model::PowerModel pm = model::PowerModel::paper_calibrated();
  const auto cal_points = model::paper_calibrated_operating_points();

  std::cout << "=== Fig. 12: energy efficiency per layer (TOPS/W) ===\n";
  TextTable t({"layer", "paper", "paper-calibrated", "measured-sparsity"});
  double ops_sum = 0.0;
  double pj_cal = 0.0, pj_meas = 0.0;
  double peak_cal = 0.0, peak_meas = 0.0;
  for (const auto& r : run.result.layers) {
    const auto i = static_cast<std::size_t>(r.spec.index);
    const double t_ns = r.time_ns(1.0);
    const double ops = static_cast<double>(r.spec.total_ops());

    const double p_cal = pm.power_mw(cal_points[i]);
    model::OperatingPoint op;
    op.duty_dwc = r.dwc_duty();
    op.duty_pwc = r.pwc_duty();
    op.act_dwc = 1.0 - r.dwc_input_zero_fraction;
    op.act_pwc = 1.0 - r.pwc_input_zero_fraction;
    const double p_meas = pm.power_mw(op);

    const double eff_cal =
        model::PowerModel::efficiency_tops_w(r.spec.total_ops(), t_ns, p_cal);
    const double eff_meas = model::PowerModel::efficiency_tops_w(
        r.spec.total_ops(), t_ns, p_meas);
    ops_sum += ops;
    pj_cal += p_cal * t_ns;
    pj_meas += p_meas * t_ns;
    peak_cal = std::max(peak_cal, eff_cal);
    peak_meas = std::max(peak_meas, eff_meas);

    t.add_row({std::to_string(r.spec.index),
               TextTable::num(model::kPaperEfficiencyTopsW[i], 2),
               TextTable::num(eff_cal, 2), TextTable::num(eff_meas, 2)});
  }
  t.render(std::cout);

  std::cout << "\n=== headline numbers ===\n";
  TextTable h({"metric", "paper", "paper-calibrated", "measured"});
  h.add_row({"peak efficiency (TOPS/W)",
             TextTable::num(model::kPaperPeakEfficiencyTopsW, 2),
             TextTable::num(peak_cal, 2), TextTable::num(peak_meas, 2)});
  h.add_row({"average efficiency (TOPS/W)",
             TextTable::num(model::kPaperAvgEfficiencyTopsW, 2),
             TextTable::num(ops_sum / pj_cal, 2),
             TextTable::num(ops_sum / pj_meas, 2)});
  h.render(std::cout);
  std::cout << "(average = total ops / total energy across all DSC layers; "
               "the paper's 11.13 is ~2% above the energy-weighted value of "
               "its own per-layer series - see EXPERIMENTS.md)\n";
  return 0;
}
