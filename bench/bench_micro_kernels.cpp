// bench_micro_kernels - google-benchmark microbenchmarks of the simulator
// hot paths: engine steps, the Non-Conv unit, quantization, and the golden
// reference convolutions. These measure *simulator* (host) performance,
// not modeled hardware performance - useful when extending the library.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "core/dwc_engine.hpp"
#include "core/pwc_engine.hpp"
#include "core/sweep_runner.hpp"
#include "nn/layers.hpp"
#include "nn/model_zoo.hpp"
#include "nn/ops.hpp"
#include "nn/quant.hpp"
#include "service/simulation_service.hpp"
#include "util/random.hpp"

namespace {

using namespace edea;

void BM_DwcEngineStep(benchmark::State& state) {
  const core::EdeaConfig cfg = core::EdeaConfig::paper();
  core::DwcEngine engine(cfg);
  Rng rng(1);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * cfg.td));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  engine.load_weights(w, cfg.td);
  core::DwcWindow window;
  window.extent = 4;
  window.channels = cfg.td;
  window.values.resize(static_cast<std::size_t>(16 * cfg.td));
  for (auto& v : window.values) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(window, 1));
  }
  state.SetItemsProcessed(state.iterations() * engine.mac_count());
}
BENCHMARK(BM_DwcEngineStep);

void BM_PwcEngineStep(benchmark::State& state) {
  const core::EdeaConfig cfg = core::EdeaConfig::paper();
  core::PwcEngine engine(cfg);
  Rng rng(2);
  core::PwcStepInput pin;
  pin.rows = cfg.tn;
  pin.cols = cfg.tm;
  pin.channels = cfg.td;
  pin.kernels = cfg.tk;
  pin.activations.resize(static_cast<std::size_t>(4 * cfg.td));
  pin.weights.resize(static_cast<std::size_t>(cfg.tk * cfg.td));
  for (auto& v : pin.activations) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto& v : pin.weights) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(pin));
  }
  state.SetItemsProcessed(state.iterations() * engine.mac_count());
}
BENCHMARK(BM_PwcEngineStep);

void BM_NonConvAffine(benchmark::State& state) {
  const auto k = arch::Q8_16::from_double(0.73);
  const auto b = arch::Q8_16::from_double(-1.25);
  std::int32_t acc = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::nonconv_affine(acc, k, b));
    acc = (acc * 1103515245 + 12345) & 0xFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NonConvAffine);

void BM_QuantizeTensor(benchmark::State& state) {
  Rng rng(3);
  nn::FloatTensor t(nn::Shape{32, 32, 32});
  for (auto& v : t.storage()) v = static_cast<float>(rng.normal(0.0, 1.0));
  const nn::QuantScale s{0.02f};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::quantize_tensor(t, s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_QuantizeTensor);

void BM_ReferenceDepthwise(benchmark::State& state) {
  Rng rng(4);
  const int ch = static_cast<int>(state.range(0));
  nn::Int8Tensor input(nn::Shape{16, 16, ch});
  nn::Int8Tensor kernel(nn::Shape{3, 3, ch});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto& v : kernel.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::depthwise_conv2d_q(input, kernel, {3, 1, 1}));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * ch * 9);
}
BENCHMARK(BM_ReferenceDepthwise)->Arg(32)->Arg(128);

void BM_ReferencePointwise(benchmark::State& state) {
  Rng rng(5);
  const int ch = static_cast<int>(state.range(0));
  nn::Int8Tensor input(nn::Shape{8, 8, ch});
  nn::Int8Tensor weights(nn::Shape{ch, ch});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto& v : weights.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::pointwise_conv2d_q(input, weights));
  }
  state.SetItemsProcessed(state.iterations() * 8 * 8 * ch * ch);
}
BENCHMARK(BM_ReferencePointwise)->Arg(64)->Arg(256);

void BM_AcceleratorLayerTileParallel(benchmark::State& state) {
  // Serial vs tile-parallel single-layer latency: a 32x32x64 layer is 16
  // buffer tiles under the paper config, so tile_parallelism 1/2/4/8
  // exercises the full chunking range. Results are bit-identical at every
  // width (tests/tile_parallel_test.cpp); this measures only the host
  // wall-clock effect. Speedup tracks physical cores - on a single-core
  // host all widths cost the same (docs/BENCHMARKS.md records both).
  nn::DscLayerSpec spec;
  spec.in_rows = 32;
  spec.in_cols = 32;
  spec.in_channels = 64;
  spec.out_channels = 64;
  Rng rng(7);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{32, 32, 64});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  core::EdeaAccelerator accel;
  accel.set_tile_parallelism(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run_layer(layer, input));
  }
  state.SetItemsProcessed(state.iterations() * spec.total_macs());
}
BENCHMARK(BM_AcceleratorLayerTileParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();  // work runs on pool threads; wall clock is the metric

void BM_AcceleratorLayer(benchmark::State& state) {
  nn::DscLayerSpec spec;
  spec.in_rows = 8;
  spec.in_cols = 8;
  spec.in_channels = 64;
  spec.out_channels = 64;
  Rng rng(6);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{8, 8, 64});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  core::EdeaAccelerator accel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run_layer(layer, input));
  }
  state.SetItemsProcessed(state.iterations() * spec.total_macs());
}
BENCHMARK(BM_AcceleratorLayer);

// --- simulation service: cache-hit vs cache-miss request latency ----------
//
// The service exists because DSE refinement revisits design points; these
// measure what a revisit saves. One small two-layer DSC network:
//   - miss: cache_capacity 0 forces every submission down the full
//     simulate-on-the-pool path (what a cold point costs),
//   - hit: the same key resubmitted against a warm cache (a hash lookup
//     plus one outcome deep-copy),
//   - persisted hit: the key served from a cache file loaded by a
//     restarted service (summary-only - no result tensors to copy).
// Numbers are recorded in docs/BENCHMARKS.md.

/// The tiny workload shared by the service benches (static: one
/// materialization per process, like the memoized MobileNet run).
struct ServiceBenchWorkload {
  std::vector<nn::QuantDscLayer> layers;
  nn::Int8Tensor input;

  ServiceBenchWorkload() : input(nn::Shape{8, 8, 16}) {
    nn::DscLayerSpec a;
    a.index = 0;
    a.in_rows = 8;
    a.in_cols = 8;
    a.in_channels = 16;
    a.out_channels = 32;
    nn::DscLayerSpec b = a;
    b.index = 1;
    b.in_channels = 32;
    b.stride = 2;
    layers = nn::make_random_quant_network({a, b}, 77);
    Rng rng(78);
    for (auto& v : input.storage()) {
      v = static_cast<std::int8_t>(rng.uniform_int(-64, 64));
    }
  }

  [[nodiscard]] core::SweepJob job() const {
    core::SweepJob j;
    j.name = "bench";
    j.layers = &layers;
    j.input = &input;
    return j;
  }

  static const ServiceBenchWorkload& instance() {
    static ServiceBenchWorkload workload;
    return workload;
  }
};

void BM_ServiceCacheMiss(benchmark::State& state) {
  const ServiceBenchWorkload& workload = ServiceBenchWorkload::instance();
  service::ServiceOptions options;
  options.cache_capacity = 0;  // memoization off: every submission simulates
  service::SimulationService svc(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(workload.job()).get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceCacheMiss)->UseRealTime();

void BM_ServiceCacheHit(benchmark::State& state) {
  const ServiceBenchWorkload& workload = ServiceBenchWorkload::instance();
  service::SimulationService svc;
  if (!svc.submit(workload.job()).get().ok) {
    state.SkipWithError("priming simulation failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(workload.job()).get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceCacheHit)->UseRealTime();

void BM_ServiceCachePersistedHit(benchmark::State& state) {
  const ServiceBenchWorkload& workload = ServiceBenchWorkload::instance();
  const std::string path = "/tmp/edea_bench_cache.bin";
  {
    service::SimulationService primer;
    if (!primer.submit(workload.job()).get().ok) {
      state.SkipWithError("priming simulation failed");
      return;
    }
    (void)primer.save_cache(path);
  }
  service::SimulationService svc;  // a "restarted" service
  (void)svc.load_cache(path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(workload.job()).get());
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_ServiceCachePersistedHit)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
