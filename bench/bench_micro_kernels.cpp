// bench_micro_kernels - google-benchmark microbenchmarks of the simulator
// hot paths: engine steps, the Non-Conv unit, quantization, the golden
// reference convolutions, backend-level network runs, and the simulation
// service's request latencies. These measure *simulator* (host)
// performance, not modeled hardware performance - useful when extending
// the library.
//
// `--json PATH` (ours, consumed before Google Benchmark sees argv) also
// emits a machine-readable summary - one object per benchmark with its
// real/cpu time and iteration count - which is what CI archives as
// BENCH_micro.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "core/backend.hpp"
#include "core/dwc_engine.hpp"
#include "core/pwc_engine.hpp"
#include "core/sweep_runner.hpp"
#include "nn/arena.hpp"
#include "nn/layers.hpp"
#include "nn/model_zoo.hpp"
#include "nn/ops.hpp"
#include "nn/quant.hpp"
#include "service/simulation_service.hpp"
#include "util/random.hpp"

namespace {

using namespace edea;

void BM_DwcEngineStep(benchmark::State& state) {
  const core::EdeaConfig cfg = core::EdeaConfig::paper();
  core::DwcEngine engine(cfg);
  Rng rng(1);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * cfg.td));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  engine.load_weights(w, cfg.td);
  core::DwcWindow window;
  window.extent = 4;
  window.channels = cfg.td;
  window.values.resize(static_cast<std::size_t>(16 * cfg.td));
  for (auto& v : window.values) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(window, 1));
  }
  state.SetItemsProcessed(state.iterations() * engine.mac_count());
}
BENCHMARK(BM_DwcEngineStep);

void BM_PwcEngineStep(benchmark::State& state) {
  const core::EdeaConfig cfg = core::EdeaConfig::paper();
  core::PwcEngine engine(cfg);
  Rng rng(2);
  core::PwcStepInput pin;
  pin.rows = cfg.tn;
  pin.cols = cfg.tm;
  pin.channels = cfg.td;
  pin.kernels = cfg.tk;
  pin.activations.resize(static_cast<std::size_t>(4 * cfg.td));
  pin.weights.resize(static_cast<std::size_t>(cfg.tk * cfg.td));
  for (auto& v : pin.activations) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto& v : pin.weights) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(pin));
  }
  state.SetItemsProcessed(state.iterations() * engine.mac_count());
}
BENCHMARK(BM_PwcEngineStep);

// --- kernel-dispatch fast paths: specialized vs generic, per shape --------
//
// One engine step per hot shape, once through the dispatch registry's
// specialized kernel (kAuto) and once forced onto the generic reference
// loops (kForceGeneric). Both variants are bit-identical in outputs and
// MacActivity (tests/kernel_dispatch_test.cpp, differential_test.cpp);
// this pair measures only the host-time gap. main() derives a
// "kernel_speedup/<shape>" ratio per pair into the --json summary, and
// --require-speedup X turns a ratio below X into a nonzero exit - the
// regression gate CI runs.

void BM_DwcShapeStep(benchmark::State& state, int stride,
                     core::KernelPolicy policy) {
  const core::EdeaConfig cfg = core::EdeaConfig::paper();
  core::DwcEngine engine(cfg);
  engine.set_kernel_policy(policy);
  Rng rng(21);
  std::vector<std::int8_t> w(
      static_cast<std::size_t>(cfg.kernel * cfg.kernel * cfg.td));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  engine.load_weights(w, cfg.td);
  core::DwcWindow window;
  window.extent = (cfg.tn - 1) * stride + cfg.kernel;
  window.channels = cfg.td;
  window.values.resize(
      static_cast<std::size_t>(window.extent * window.extent * cfg.td));
  for (auto& v : window.values) {
    v = rng.bernoulli(0.3) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(-128,
                                                                      127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(window, stride));
  }
  state.SetItemsProcessed(state.iterations() * engine.mac_count());
}
BENCHMARK_CAPTURE(BM_DwcShapeStep, dwc3x3_s1_specialized, 1,
                  core::KernelPolicy::kAuto);
BENCHMARK_CAPTURE(BM_DwcShapeStep, dwc3x3_s1_generic, 1,
                  core::KernelPolicy::kForceGeneric);
BENCHMARK_CAPTURE(BM_DwcShapeStep, dwc3x3_s2_specialized, 2,
                  core::KernelPolicy::kAuto);
BENCHMARK_CAPTURE(BM_DwcShapeStep, dwc3x3_s2_generic, 2,
                  core::KernelPolicy::kForceGeneric);

void BM_PwcShapeStep(benchmark::State& state, core::KernelPolicy policy) {
  const core::EdeaConfig cfg = core::EdeaConfig::paper();
  core::PwcEngine engine(cfg);
  engine.set_kernel_policy(policy);
  Rng rng(22);
  core::PwcStepInput pin;
  pin.rows = cfg.tn;
  pin.cols = cfg.tm;
  pin.channels = cfg.td;
  pin.kernels = cfg.tk;
  pin.activations.resize(
      static_cast<std::size_t>(cfg.tn * cfg.tm * cfg.td));
  pin.weights.resize(static_cast<std::size_t>(cfg.tk * cfg.td));
  for (auto& v : pin.activations) {
    v = rng.bernoulli(0.3) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(-128,
                                                                      127));
  }
  for (auto& v : pin.weights) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(pin));
  }
  state.SetItemsProcessed(state.iterations() * engine.mac_count());
}
BENCHMARK_CAPTURE(BM_PwcShapeStep, pwc1x1_specialized,
                  core::KernelPolicy::kAuto);
BENCHMARK_CAPTURE(BM_PwcShapeStep, pwc1x1_generic,
                  core::KernelPolicy::kForceGeneric);

void BM_NonConvAffine(benchmark::State& state) {
  const auto k = arch::Q8_16::from_double(0.73);
  const auto b = arch::Q8_16::from_double(-1.25);
  std::int32_t acc = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::nonconv_affine(acc, k, b));
    acc = (acc * 1103515245 + 12345) & 0xFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NonConvAffine);

void BM_QuantizeTensor(benchmark::State& state) {
  Rng rng(3);
  nn::FloatTensor t(nn::Shape{32, 32, 32});
  for (auto& v : t.storage()) v = static_cast<float>(rng.normal(0.0, 1.0));
  const nn::QuantScale s{0.02f};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::quantize_tensor(t, s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_QuantizeTensor);

void BM_ReferenceDepthwise(benchmark::State& state) {
  Rng rng(4);
  const int ch = static_cast<int>(state.range(0));
  nn::Int8Tensor input(nn::Shape{16, 16, ch});
  nn::Int8Tensor kernel(nn::Shape{3, 3, ch});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto& v : kernel.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::depthwise_conv2d_q(input, kernel, {3, 1, 1}));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * ch * 9);
}
BENCHMARK(BM_ReferenceDepthwise)->Arg(32)->Arg(128);

void BM_ReferencePointwise(benchmark::State& state) {
  Rng rng(5);
  const int ch = static_cast<int>(state.range(0));
  nn::Int8Tensor input(nn::Shape{8, 8, ch});
  nn::Int8Tensor weights(nn::Shape{ch, ch});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto& v : weights.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::pointwise_conv2d_q(input, weights));
  }
  state.SetItemsProcessed(state.iterations() * 8 * 8 * ch * ch);
}
BENCHMARK(BM_ReferencePointwise)->Arg(64)->Arg(256);

void BM_AcceleratorLayerTileParallel(benchmark::State& state) {
  // Serial vs tile-parallel single-layer latency: a 32x32x64 layer is 16
  // buffer tiles under the paper config, so tile_parallelism 1/2/4/8
  // exercises the full chunking range. Results are bit-identical at every
  // width (tests/tile_parallel_test.cpp); this measures only the host
  // wall-clock effect. Speedup tracks physical cores - on a single-core
  // host all widths cost the same (docs/BENCHMARKS.md records both).
  nn::DscLayerSpec spec;
  spec.in_rows = 32;
  spec.in_cols = 32;
  spec.in_channels = 64;
  spec.out_channels = 64;
  Rng rng(7);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{32, 32, 64});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  core::EdeaAccelerator accel;
  accel.set_tile_parallelism(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run_layer(layer, input));
  }
  state.SetItemsProcessed(state.iterations() * spec.total_macs());
}
BENCHMARK(BM_AcceleratorLayerTileParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();  // work runs on pool threads; wall clock is the metric

void BM_AcceleratorLayer(benchmark::State& state) {
  nn::DscLayerSpec spec;
  spec.in_rows = 8;
  spec.in_cols = 8;
  spec.in_channels = 64;
  spec.out_channels = 64;
  Rng rng(6);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{8, 8, 64});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  core::EdeaAccelerator accel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run_layer(layer, input));
  }
  state.SetItemsProcessed(state.iterations() * spec.total_macs());
}
BENCHMARK(BM_AcceleratorLayer);

// --- backend-level network runs: the dataflow dimension -------------------
//
// One small DSC layer through each registered backend via the registry -
// what a cross-backend sweep pays per design point. The serialized
// baseline simulates *more* modeled work (the external round trip), so
// its host cost differs from EDEA's; docs/BENCHMARKS.md records both.

void BM_BackendNetwork(benchmark::State& state, const char* backend_id) {
  nn::DscLayerSpec spec;
  spec.in_rows = 8;
  spec.in_cols = 8;
  spec.in_channels = 64;
  spec.out_channels = 64;
  Rng rng(9);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const std::vector<nn::QuantDscLayer> network{nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f})};
  nn::Int8Tensor input(nn::Shape{8, 8, 64});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  const auto backend = core::make_backend(backend_id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->run_network(network, input));
  }
  state.SetItemsProcessed(state.iterations() * spec.total_macs());
}
BENCHMARK_CAPTURE(BM_BackendNetwork, edea, "edea");
BENCHMARK_CAPTURE(BM_BackendNetwork, serialized, "serialized");

// --- arena planning and batched execution ---------------------------------
//
// What the planned-memory runtime costs and saves: BM_ArenaPlanSetup is
// the pure planning overhead (blob registration + first-fit offsets) a
// run_network call pays before any arithmetic; BM_BatchedNetworkRun
// divides one batch=N run's wall clock by N, so the per-image latency
// falling with N is the amortization of that setup (plus worker/buffer
// construction) across images. docs/BENCHMARKS.md records both.

void BM_ArenaPlanSetup(benchmark::State& state) {
  const std::vector<nn::DscLayerSpec> specs = nn::zoo_specs("edeanet-64");
  const std::vector<nn::QuantDscLayer> network =
      nn::make_random_quant_network(specs, 7);
  const nn::Shape input_shape{specs.front().in_rows, specs.front().in_cols,
                              specs.front().in_channels};
  for (auto _ : state) {
    nn::MemoryPlanner planner;
    const nn::NetworkActivationPlan acts =
        nn::plan_network_activations(planner, network, input_shape, 4);
    benchmark::DoNotOptimize(acts);
    benchmark::DoNotOptimize(planner.plan());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(network.size()));
}
BENCHMARK(BM_ArenaPlanSetup);

void BM_BatchedNetworkRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const std::vector<nn::DscLayerSpec> specs = nn::zoo_specs("edeanet-64");
  const std::vector<nn::QuantDscLayer> network =
      nn::make_random_quant_network(specs, 7);
  nn::Int8Tensor input(nn::Shape{specs.front().in_rows,
                                 specs.front().in_cols,
                                 specs.front().in_channels});
  Rng rng(11);
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  for (auto _ : state) {
    // A fresh backend per run so construction + planning are inside the
    // measurement - that is exactly the cost batching amortizes.
    const auto backend = core::make_backend("edea");
    benchmark::DoNotOptimize(
        backend->run_network_batch(network, input, batch));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedNetworkRun)->Arg(1)->Arg(4)->Arg(16);

// --- simulation service: cache-hit vs cache-miss request latency ----------
//
// The service exists because DSE refinement revisits design points; these
// measure what a revisit saves. One small two-layer DSC network:
//   - miss: cache_capacity 0 forces every submission down the full
//     simulate-on-the-pool path (what a cold point costs),
//   - hit: the same key resubmitted against a warm cache (a hash lookup
//     plus one outcome deep-copy),
//   - persisted hit: the key served from a cache file loaded by a
//     restarted service (summary-only - no result tensors to copy).
// Numbers are recorded in docs/BENCHMARKS.md.

/// The tiny workload shared by the service benches (static: one
/// materialization per process, like the memoized MobileNet run).
struct ServiceBenchWorkload {
  std::vector<nn::QuantDscLayer> layers;
  nn::Int8Tensor input;

  ServiceBenchWorkload() : input(nn::Shape{8, 8, 16}) {
    nn::DscLayerSpec a;
    a.index = 0;
    a.in_rows = 8;
    a.in_cols = 8;
    a.in_channels = 16;
    a.out_channels = 32;
    nn::DscLayerSpec b = a;
    b.index = 1;
    b.in_channels = 32;
    b.stride = 2;
    layers = nn::make_random_quant_network({a, b}, 77);
    Rng rng(78);
    for (auto& v : input.storage()) {
      v = static_cast<std::int8_t>(rng.uniform_int(-64, 64));
    }
  }

  [[nodiscard]] core::SweepJob job(const char* backend = "edea") const {
    core::SweepJob j;
    j.name = "bench";
    j.backend = backend;
    j.layers = &layers;
    j.input = &input;
    return j;
  }

  static const ServiceBenchWorkload& instance() {
    static ServiceBenchWorkload workload;
    return workload;
  }
};

void BM_ServiceCacheMiss(benchmark::State& state, const char* backend) {
  const ServiceBenchWorkload& workload = ServiceBenchWorkload::instance();
  service::ServiceOptions options;
  options.cache_capacity = 0;  // memoization off: every submission simulates
  service::SimulationService svc(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(workload.job(backend)).get());
  }
  state.SetItemsProcessed(state.iterations());
}
// The EDEA-vs-serialized service latency pair docs/BENCHMARKS.md records:
// what one cold request costs on each dataflow.
BENCHMARK_CAPTURE(BM_ServiceCacheMiss, edea, "edea")->UseRealTime();
BENCHMARK_CAPTURE(BM_ServiceCacheMiss, serialized, "serialized")
    ->UseRealTime();

void BM_ServiceCacheHit(benchmark::State& state) {
  const ServiceBenchWorkload& workload = ServiceBenchWorkload::instance();
  service::SimulationService svc;
  if (!svc.submit(workload.job()).get().ok) {
    state.SkipWithError("priming simulation failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(workload.job()).get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceCacheHit)->UseRealTime();

void BM_ServiceCachePersistedHit(benchmark::State& state) {
  const ServiceBenchWorkload& workload = ServiceBenchWorkload::instance();
  const std::string path = "/tmp/edea_bench_cache.bin";
  {
    service::SimulationService primer;
    if (!primer.submit(workload.job()).get().ok) {
      state.SkipWithError("priming simulation failed");
      return;
    }
    (void)primer.save_cache(path);
  }
  service::SimulationService svc;  // a "restarted" service
  (void)svc.load_cache(path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(workload.job()).get());
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_ServiceCachePersistedHit)->UseRealTime();

// --- --json reporting ------------------------------------------------------

/// Console reporter that also collects every finished run, so main() can
/// emit the machine-readable summary CI archives. Collection happens in
/// ReportRuns (after each benchmark finishes), display is delegated to
/// the stock console reporter - the human-readable output is unchanged.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double real_time_ns = 0.0;
    double cpu_time_ns = 0.0;
    std::int64_t iterations = 0;
  };

  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    // No skip filtering: the skip-marker field was renamed across Google
    // Benchmark versions (error_occurred -> skipped), and a skipped run's
    // zero timings in the JSON are harmless next to a broken build.
    for (const Run& run : runs) {
      Row row;
      row.name = run.benchmark_name();
      row.real_time_ns = run.GetAdjustedRealTime();
      row.cpu_time_ns = run.GetAdjustedCPUTime();
      row.iterations = static_cast<std::int64_t>(run.iterations);
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<Row>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<Row> rows_;
};

/// JSON string escaping for benchmark names (quotes/backslashes only -
/// names are ASCII identifiers plus '/' and ':').
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// One specialized/generic kernel pair with its derived host-time ratio
/// (generic cpu time over specialized cpu time - >1 means the fast path
/// is actually fast).
struct SpeedupRow {
  std::string shape;  ///< e.g. "dwc3x3_s1"
  double specialized_cpu_time_ns = 0.0;
  double generic_cpu_time_ns = 0.0;
  double ratio = 0.0;
};

/// Pairs every "..._specialized" benchmark with its "..._generic" twin by
/// name and derives the speedup ratio. Shapes whose twin did not run
/// (e.g. filtered out) are skipped - the --require-speedup gate treats an
/// empty result as a failure, so filtering cannot silently pass the gate.
std::vector<SpeedupRow> derive_speedups(
    const std::vector<CollectingReporter::Row>& rows) {
  const std::string spec_tag = "_specialized";
  const std::string gen_tag = "_generic";
  std::vector<SpeedupRow> speedups;
  for (const auto& row : rows) {
    if (row.name.size() < spec_tag.size() ||
        row.name.compare(row.name.size() - spec_tag.size(), spec_tag.size(),
                         spec_tag) != 0) {
      continue;
    }
    const std::string stem =
        row.name.substr(0, row.name.size() - spec_tag.size());
    const std::string partner = stem + gen_tag;
    for (const auto& other : rows) {
      if (other.name != partner) continue;
      SpeedupRow s;
      const std::size_t slash = stem.rfind('/');
      s.shape = slash == std::string::npos ? stem : stem.substr(slash + 1);
      s.specialized_cpu_time_ns = row.cpu_time_ns;
      s.generic_cpu_time_ns = other.cpu_time_ns;
      s.ratio = row.cpu_time_ns > 0.0
                    ? other.cpu_time_ns / row.cpu_time_ns
                    : 0.0;
      speedups.push_back(std::move(s));
      break;
    }
  }
  return speedups;
}

/// Writes the collected rows as a JSON object: benchmark name -> its
/// timings, then one "kernel_speedup/<shape>" entry per specialized/
/// generic pair. Returns false (with a message on stderr) when the file
/// cannot be written - CI must fail loudly, not archive nothing.
bool write_json(const std::string& path,
                const std::vector<CollectingReporter::Row>& rows,
                const std::vector<SpeedupRow>& speedups) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::cerr << "bench_micro_kernels: cannot write --json file '" << path
              << "'\n";
    return false;
  }
  out << "{\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "  \"" << json_escape(r.name) << "\": {"
        << "\"real_time_ns\": " << r.real_time_ns << ", "
        << "\"cpu_time_ns\": " << r.cpu_time_ns << ", "
        << "\"iterations\": " << r.iterations << "}"
        << (i + 1 < rows.size() || !speedups.empty() ? "," : "") << "\n";
  }
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    const auto& s = speedups[i];
    out << "  \"kernel_speedup/" << json_escape(s.shape) << "\": {"
        << "\"specialized_cpu_time_ns\": " << s.specialized_cpu_time_ns
        << ", \"generic_cpu_time_ns\": " << s.generic_cpu_time_ns
        << ", \"ratio\": " << s.ratio << "}"
        << (i + 1 < speedups.size() ? "," : "") << "\n";
  }
  out << "}\n";
  out.flush();
  if (!out.good()) {
    std::cerr << "bench_micro_kernels: failed writing '" << path << "'\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Consume our own flags (--json PATH, --require-speedup X) before
  // Google Benchmark validates the remaining ones (it rejects options it
  // does not know).
  std::string json_path;
  double require_speedup = 0.0;  // 0 = gate off
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "bench_micro_kernels: --json needs a file path\n";
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    if (std::string(argv[i]) == "--require-speedup") {
      if (i + 1 >= argc) {
        std::cerr << "bench_micro_kernels: --require-speedup needs a "
                     "minimum ratio\n";
        return 2;
      }
      char* end = nullptr;
      require_speedup = std::strtod(argv[i + 1], &end);
      if (end == argv[i + 1] || *end != '\0' || require_speedup <= 0.0) {
        std::cerr << "bench_micro_kernels: bad --require-speedup value '"
                  << argv[i + 1] << "' (want a ratio > 0)\n";
        return 2;
      }
      ++i;
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int pass_argc = static_cast<int>(passthrough.size());

  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                             passthrough.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const std::vector<SpeedupRow> speedups = derive_speedups(reporter.rows());
  for (const SpeedupRow& s : speedups) {
    std::cerr << "kernel_speedup/" << s.shape << ": " << s.ratio
              << "x (specialized " << s.specialized_cpu_time_ns
              << " ns vs generic " << s.generic_cpu_time_ns << " ns)\n";
  }

  if (!json_path.empty() &&
      !write_json(json_path, reporter.rows(), speedups)) {
    return 1;
  }

  if (require_speedup > 0.0) {
    if (speedups.empty()) {
      std::cerr << "bench_micro_kernels: --require-speedup "
                << require_speedup
                << " but no specialized/generic pairs ran (filtered "
                   "out?)\n";
      return 1;
    }
    bool ok = true;
    for (const SpeedupRow& s : speedups) {
      if (s.ratio < require_speedup) {
        std::cerr << "bench_micro_kernels: kernel_speedup/" << s.shape
                  << " = " << s.ratio << "x is below the required "
                  << require_speedup << "x floor\n";
        ok = false;
      }
    }
    if (!ok) return 1;
  }
  return 0;
}
