// bench_ablation_init_cycles - sensitivity of the per-layer and average
// throughput to the pipeline initiation depth (the paper's is 9 cycles,
// Fig. 7). Shows why the initiation matters most for the small late
// layers (Fig. 13's drop to 905.6 GOPS at layers 11/12).
#include <iostream>

#include "core/timing.hpp"
#include "nn/mobilenet.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const auto specs = nn::mobilenet_dsc_specs();

  std::cout << "=== Ablation: initiation depth vs throughput (GOPS) ===\n";
  TextTable t({"init cycles", "layer0", "layer6", "layer12", "average",
               "peak"});
  for (const int init : {0, 4, 9, 16, 32}) {
    core::EdeaConfig cfg = core::EdeaConfig::paper();
    cfg.init_cycles = init;
    const core::TimingModel tm(cfg);

    std::int64_t ops = 0, cycles = 0;
    double peak = 0.0;
    for (const auto& spec : specs) {
      ops += spec.total_ops();
      cycles += tm.layer_timing(spec).total_cycles;
      peak = std::max(peak, tm.layer_throughput_gops(spec));
    }
    t.add_row({std::to_string(init),
               TextTable::num(tm.layer_throughput_gops(specs[0]), 1),
               TextTable::num(tm.layer_throughput_gops(specs[6]), 1),
               TextTable::num(tm.layer_throughput_gops(specs[12]), 1),
               TextTable::num(static_cast<double>(ops) /
                                  static_cast<double>(cycles),
                              1),
               TextTable::num(peak, 1)});
  }
  t.render(std::cout);

  std::cout << "\nAt the paper's 9 cycles the averages reproduce Fig. 13; "
               "with 0 initiation the PWC engine bound of 1024 GOPS would "
               "be exceeded only by the DWC engine's parallel contribution "
               "(up to 1098 GOPS on 8x8 tiles).\n";
  return 0;
}
