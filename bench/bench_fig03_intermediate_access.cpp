// bench_fig03_intermediate_access - regenerates Fig. 3: per-layer
// activation access count with and without eliminating the intermediate
// (DWC->PWC) external round trip, plus the reduction percentage. The paper
// reports 15.4% .. 46.9% per layer and 34.7% in total.
//
// Two views are printed:
//   1. the analytic footprint model (matches the paper's numbers exactly),
//   2. traffic measured by the cycle simulator - both dataflows run
//      through the backend registry ("edea" vs "serialized",
//      core/backend.hpp) on the identical quantized network, which
//      includes halo re-fetches at tile borders.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "dse/access_model.hpp"
#include "nn/mobilenet.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const auto spec_array = nn::mobilenet_dsc_specs();
  const std::vector<nn::DscLayerSpec> specs(spec_array.begin(),
                                            spec_array.end());

  std::cout << "=== Fig. 3 (analytic): activation access count and "
               "reduction per layer ===\n";
  {
    TextTable t({"layer", "baseline", "w/o inter. access", "reduction",
                 "paper"});
    for (const auto& spec : specs) {
      const dse::IntermediateAccessAnalysis a =
          dse::intermediate_access(spec);
      std::string paper_note;
      if (spec.index == 2) paper_note = "46.9% (max)";
      if (spec.index == 11) paper_note = "15.4% (min)";
      t.add_row({std::to_string(spec.index),
                 TextTable::num(a.baseline_total()),
                 TextTable::num(a.streaming_total()),
                 TextTable::percent(a.reduction(), 1), paper_note});
    }
    const dse::IntermediateAccessTotals totals =
        dse::intermediate_access_totals(specs);
    t.add_row({"total", TextTable::num(totals.baseline),
               TextTable::num(totals.streaming),
               TextTable::percent(totals.reduction(), 1), "34.7%"});
    t.render(std::cout);
  }

  std::cout << "\n=== Fig. 3 (simulated): external activation traffic, "
               "EDEA vs serialized baseline ===\n";
  {
    // Both dataflows run through the one registry path on the identical
    // quantized network; the baseline chains its own layer outputs inside
    // run_network, so per-layer rows align index for index.
    const bench::MobileNetRun& run = bench::run_mobilenet_on_backend("edea");
    const bench::MobileNetRun& base_run =
        bench::run_mobilenet_on_backend("serialized");

    TextTable t({"layer", "EDEA ext. act", "baseline ext. act", "reduction"});
    std::int64_t edea_total = 0, base_total = 0;
    for (std::size_t i = 0; i < run.result.layers.size(); ++i) {
      const auto& fast = run.result.layers[i];
      const auto& base = base_run.result.layers[i];
      const auto fast_act =
          fast.external.accesses(arch::TrafficClass::kActivation);
      const auto base_act =
          base.external.accesses(arch::TrafficClass::kActivation);
      edea_total += fast_act;
      base_total += base_act;
      t.add_row({std::to_string(i), TextTable::num(fast_act),
                 TextTable::num(base_act),
                 TextTable::percent(1.0 - static_cast<double>(fast_act) /
                                              static_cast<double>(base_act),
                                    1)});
    }
    t.add_row({"total", TextTable::num(edea_total),
               TextTable::num(base_total),
               TextTable::percent(1.0 - static_cast<double>(edea_total) /
                                            static_cast<double>(base_total),
                                  1)});
    t.render(std::cout);
  }

  std::cout << "\nPaper reference: reduction 15.4%..46.9% per layer, "
               "34.7% total.\n";
  return 0;
}
