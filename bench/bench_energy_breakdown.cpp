// bench_energy_breakdown - bottom-up (event-level) energy accounting of a
// full MobileNetV1 inference, calibrated so its on-chip total matches the
// top-down model at the paper operating point, then broken down by
// component for comparison with Fig. 9 (right).
#include <iostream>

#include "bench_common.hpp"
#include "model/energy_model.hpp"
#include "model/paper_data.hpp"
#include "model/power_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const bench::MobileNetRun& run = bench::run_mobilenet_on_accelerator();
  const model::PowerModel pm = model::PowerModel::paper_calibrated();
  const auto points = model::paper_calibrated_operating_points();

  // Top-down on-chip energy of the whole network at the calibrated points.
  double target_pj = 0.0;
  for (const auto& r : run.result.layers) {
    target_pj +=
        pm.power_mw(points[static_cast<std::size_t>(r.spec.index)]) *
        r.time_ns(1.0);
  }

  // Calibrate the event model on the total (use a representative layer
  // aggregation: calibrate against the summed breakdown).
  model::EnergyModel base;
  model::EnergyBreakdown raw_total;
  for (const auto& r : run.result.layers) raw_total += base.account(r);
  // Scale all on-chip event energies by target / raw on-chip.
  const double scale = target_pj / raw_total.on_chip_pj();
  model::EnergyParams params = base.params();
  params.mac_pj *= scale;
  params.mac_gated_pj *= scale;
  params.sram_access_pj *= scale;
  params.nonconv_pj *= scale;
  const model::EnergyModel cal(params);

  std::cout << "=== Event-level energy breakdown (MobileNetV1, one "
               "inference) ===\n";
  model::EnergyBreakdown total;
  TextTable t({"layer", "DWC MAC (nJ)", "PWC MAC (nJ)", "NonConv (nJ)",
               "SRAM (nJ)", "external (nJ)"});
  for (const auto& r : run.result.layers) {
    const model::EnergyBreakdown e = cal.account(r);
    total += e;
    t.add_row({std::to_string(r.spec.index),
               TextTable::num(e.dwc_mac_pj / 1000.0, 2),
               TextTable::num(e.pwc_mac_pj / 1000.0, 2),
               TextTable::num(e.nonconv_pj / 1000.0, 2),
               TextTable::num(e.sram_pj / 1000.0, 2),
               TextTable::num(e.external_pj / 1000.0, 2)});
  }
  t.render(std::cout);

  std::cout << "\n=== on-chip share vs Fig. 9 (right) ===\n";
  TextTable s({"component", "bottom-up share", "paper"});
  const double on = total.on_chip_pj();
  s.add_row({"PWC engine", TextTable::percent(total.pwc_mac_pj / on, 2),
             "66.23% (incl. clock load)"});
  s.add_row({"DWC engine", TextTable::percent(total.dwc_mac_pj / on, 2),
             "15.70% (incl. clock load)"});
  s.add_row({"Non-Conv units", TextTable::percent(total.nonconv_pj / on, 2),
             "6.14%"});
  s.add_row({"buffers (all)", TextTable::percent(total.sram_pj / on, 2),
             "8.17% (intermediate+weight+offline)"});
  s.render(std::cout);

  std::cout << "\ntotals: on-chip "
            << TextTable::num(on / 1e6, 3) << " uJ ("
            << TextTable::num(target_pj / 1e6, 3)
            << " uJ top-down target), external "
            << TextTable::num(total.external_pj / 1e6, 3)
            << " uJ at " << cal.params().external_access_pj
            << " pJ/element\nThe bottom-up split attributes idle/clock power "
               "to the units doing the work; Fig. 9's engine shares include "
               "their clock loads, so PWC/DWC land lower here while the "
               "SRAM share lands higher (see EXPERIMENTS.md).\n";
  return 0;
}
