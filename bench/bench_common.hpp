// bench_common.hpp - shared setup for the reproduction benches: builds the
// synthetic-weight quantized MobileNetV1 and runs it through the
// cycle-accurate accelerator once, caching per-layer results.
#pragma once

#include <memory>
#include <vector>

#include "core/accelerator.hpp"
#include "nn/dataset.hpp"
#include "nn/mobilenet.hpp"

namespace edea::bench {

/// Deterministic seed used by every bench so their outputs agree.
inline constexpr std::uint64_t kBenchSeed = 20240101;

struct MobileNetRun {
  std::unique_ptr<nn::FloatMobileNet> net;
  std::unique_ptr<nn::QuantMobileNet> qnet;
  core::NetworkRunResult result;
};

/// Builds the network, calibrates on a small synthetic batch, quantizes,
/// and runs all 13 DSC layers on the accelerator.
inline MobileNetRun run_mobilenet_on_accelerator(
    std::uint64_t seed = kBenchSeed) {
  MobileNetRun out;
  out.net = std::make_unique<nn::FloatMobileNet>(seed);
  nn::SyntheticCifar data(seed ^ 0x5eed);
  std::vector<nn::FloatTensor> images;
  for (int i = 0; i < 4; ++i) images.push_back(data.sample(i).image);
  const nn::CalibrationResult cal = nn::calibrate(*out.net, images);
  out.qnet = std::make_unique<nn::QuantMobileNet>(*out.net, cal);

  core::EdeaAccelerator accel;
  const nn::FloatTensor stem = out.net->forward_stem(images[0]);
  out.result = accel.run_network(out.qnet->blocks(),
                                 out.qnet->quantize_input(stem));
  return out;
}

}  // namespace edea::bench
