// bench_common.hpp - shared setup for the reproduction benches: builds the
// synthetic-weight quantized MobileNetV1, runs it through the
// cycle-accurate accelerator, and memoizes the whole run per seed so the
// ~20 benches (and any bench that consults the result more than once)
// never redundantly re-simulate the same 13-layer network in one process.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/accelerator.hpp"
#include "nn/dataset.hpp"
#include "nn/mobilenet.hpp"

namespace edea::bench {

/// Deterministic seed used by every bench so their outputs agree.
inline constexpr std::uint64_t kBenchSeed = 20240101;

struct MobileNetRun {
  std::unique_ptr<nn::FloatMobileNet> net;
  std::unique_ptr<nn::QuantMobileNet> qnet;
  core::NetworkRunResult result;
};

namespace detail {

/// Builds the network, calibrates on a small synthetic batch, quantizes,
/// and runs all 13 DSC layers on the accelerator.
inline std::unique_ptr<MobileNetRun> build_mobilenet_run(std::uint64_t seed) {
  auto out = std::make_unique<MobileNetRun>();
  out->net = std::make_unique<nn::FloatMobileNet>(seed);
  nn::SyntheticCifar data(seed ^ 0x5eed);
  std::vector<nn::FloatTensor> images;
  for (int i = 0; i < 4; ++i) images.push_back(data.sample(i).image);
  const nn::CalibrationResult cal = nn::calibrate(*out->net, images);
  out->qnet = std::make_unique<nn::QuantMobileNet>(*out->net, cal);

  core::EdeaAccelerator accel;
  const nn::FloatTensor stem = out->net->forward_stem(images[0]);
  out->result = accel.run_network(out->qnet->blocks(),
                                  out->qnet->quantize_input(stem));
  return out;
}

}  // namespace detail

/// Returns the (immutable) memoized MobileNetV1 accelerator run for `seed`.
/// The first call per seed simulates; later calls are lookups. Thread-safe:
/// the global lock covers only the slot lookup, so distinct seeds build
/// concurrently and cache hits never wait behind another seed's build.
inline const MobileNetRun& run_mobilenet_on_accelerator(
    std::uint64_t seed = kBenchSeed) {
  struct Entry {
    std::once_flag once;
    std::unique_ptr<MobileNetRun> run;
  };
  static std::mutex mutex;
  static std::map<std::uint64_t, std::shared_ptr<Entry>> cache;

  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    std::shared_ptr<Entry>& slot = cache[seed];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    entry = slot;
  }
  std::call_once(entry->once,
                 [&entry, seed] { entry->run = detail::build_mobilenet_run(seed); });
  return *entry->run;
}

}  // namespace edea::bench
