// bench_common.hpp - shared setup for the reproduction benches: builds the
// synthetic-weight quantized MobileNetV1, runs it through a selected
// accelerator backend (core/backend.hpp registry), and memoizes the whole
// run per (backend, seed) so the ~20 benches (and any bench that consults
// the result more than once) never redundantly re-simulate the same
// 13-layer network in one process.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.hpp"
#include "nn/dataset.hpp"
#include "nn/mobilenet.hpp"

namespace edea::bench {

/// Deterministic seed used by every bench so their outputs agree.
inline constexpr std::uint64_t kBenchSeed = 20240101;

/// Tile parallelism of the memoized reference build. Tile-parallel runs
/// are bit-identical to serial (the simulator's contract, enforced by
/// tests/tile_parallel_test.cpp and CI --verify), so building the shared
/// reference with parallel tiles only shortens every bench's startup on
/// multi-core hosts - and routes all ~20 paper-number benches through
/// the tile-parallel path, which would fail their exact assertions if it
/// ever diverged. Pass 1 explicitly to force a serial-tile build.
inline constexpr int kBenchTileParallelism = 4;

struct MobileNetRun {
  std::unique_ptr<nn::FloatMobileNet> net;
  std::unique_ptr<nn::QuantMobileNet> qnet;
  core::NetworkRunResult result;
};

namespace detail {

/// Builds the network, calibrates on a small synthetic batch, quantizes,
/// and runs all 13 DSC layers on the `backend` registered under that id
/// (core/backend.hpp). `tile_parallelism` splits each layer's buffer
/// tiles over that many shared-pool workers; the result is bit-identical
/// at every width (the simulator's contract, enforced by
/// tests/tile_parallel_test.cpp), so it only changes how fast the
/// reference run materializes.
inline std::unique_ptr<MobileNetRun> build_mobilenet_run(
    const std::string& backend, std::uint64_t seed,
    int tile_parallelism = kBenchTileParallelism) {
  auto out = std::make_unique<MobileNetRun>();
  out->net = std::make_unique<nn::FloatMobileNet>(seed);
  nn::SyntheticCifar data(seed ^ 0x5eed);
  std::vector<nn::FloatTensor> images;
  for (int i = 0; i < 4; ++i) images.push_back(data.sample(i).image);
  const nn::CalibrationResult cal = nn::calibrate(*out->net, images);
  out->qnet = std::make_unique<nn::QuantMobileNet>(*out->net, cal);

  std::unique_ptr<core::AcceleratorBackend> accel =
      core::make_backend(backend);
  accel->set_tile_parallelism(tile_parallelism);
  const nn::FloatTensor stem = out->net->forward_stem(images[0]);
  out->result = accel->run_network(out->qnet->blocks(),
                                   out->qnet->quantize_input(stem));
  return out;
}

}  // namespace detail

/// Returns the (immutable) memoized MobileNetV1 run for (backend, seed).
/// The first call per key simulates; later calls are lookups. Thread-safe:
/// the global lock covers only the slot lookup, so distinct keys build
/// concurrently and cache hits never wait behind another key's build.
/// `tile_parallelism` (default kBenchTileParallelism) only affects the
/// building call's wall clock, never the result (bit-identity contract),
/// so it is not part of the memo key - whichever caller builds first wins
/// and everyone shares the run.
inline const MobileNetRun& run_mobilenet_on_backend(
    const std::string& backend, std::uint64_t seed = kBenchSeed,
    int tile_parallelism = kBenchTileParallelism) {
  struct Entry {
    std::once_flag once;
    std::unique_ptr<MobileNetRun> run;
  };
  static std::mutex mutex;
  static std::map<std::pair<std::string, std::uint64_t>,
                  std::shared_ptr<Entry>>
      cache;

  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    std::shared_ptr<Entry>& slot = cache[std::make_pair(backend, seed)];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    entry = slot;
  }
  std::call_once(entry->once, [&entry, &backend, seed, tile_parallelism] {
    entry->run = detail::build_mobilenet_run(backend, seed, tile_parallelism);
  });
  return *entry->run;
}

/// The EDEA-backend run - what most paper-figure benches tabulate.
inline const MobileNetRun& run_mobilenet_on_accelerator(
    std::uint64_t seed = kBenchSeed,
    int tile_parallelism = kBenchTileParallelism) {
  return run_mobilenet_on_backend(std::string(core::kDefaultBackendId), seed,
                                  tile_parallelism);
}

}  // namespace edea::bench
