// bench_table3_comparison - regenerates Table III: comparison with
// state-of-the-art works, including precision and technology/voltage
// normalization, plus the advantage multipliers the paper quotes. The
// "This Work (simulated)" row is derived live from the cycle simulator
// and the calibrated power/area models, and a closing section pits the
// two in-tree dataflows ("edea" vs "serialized", both through the backend
// registry) against each other on the identical workload - the
// architectural half of the paper's comparison, isolated.
#include <iostream>

#include "bench_common.hpp"
#include "model/area_model.hpp"
#include "model/comparison.hpp"
#include "model/power_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  // Derive the simulated row.
  const bench::MobileNetRun& run = bench::run_mobilenet_on_accelerator();
  const model::PowerModel pm = model::PowerModel::paper_calibrated();
  const auto points = model::paper_calibrated_operating_points();

  model::SimulatedThisWork sim;
  sim.pe_count = core::EdeaConfig::paper().total_mac_count();
  sim.area_mm2 = model::AreaModel::paper().estimate_mm2(
      core::EdeaConfig::paper());
  double e_total = 0.0, t_total = 0.0;
  double peak_eff = 0.0, peak_tp = 0.0;
  for (const auto& r : run.result.layers) {
    const auto i = static_cast<std::size_t>(r.spec.index);
    const double p = pm.power_mw(points[i]);
    const double t_ns = r.time_ns(1.0);
    e_total += p * t_ns;
    t_total += t_ns;
    const double eff = model::PowerModel::efficiency_tops_w(
        r.spec.total_ops(), t_ns, p);
    if (eff > peak_eff) {
      peak_eff = eff;
      peak_tp = r.throughput_gops(1.0);
    }
  }
  sim.avg_power_mw = e_total / t_total;
  sim.peak_energy_eff_tops_w = peak_eff;
  sim.peak_throughput_gops = peak_tp;

  const auto table = model::build_comparison_table(sim);

  std::cout << "=== Table III: comparison with state-of-the-art works ===\n";
  TextTable t({"work", "tech", "bits", "V", "PEs", "conv", "P (mW)",
               "f (MHz)", "area", "GOPS", "TOPS/W", "GOPS/mm2"});
  for (const auto& e : table) {
    t.add_row({e.label, std::to_string(e.technology_nm),
               std::to_string(e.precision_bits),
               TextTable::num(e.voltage_v, 2), std::to_string(e.pe_count),
               e.conv_type, TextTable::num(e.power_mw, 1),
               TextTable::num(e.frequency_mhz, 0),
               TextTable::num(e.area_mm2, 3),
               TextTable::num(e.throughput_gops, 1),
               TextTable::num(e.energy_eff_tops_w, 2),
               TextTable::num(e.area_eff_gops_mm2, 1)});
  }
  t.render(std::cout);

  std::cout << "\n=== normalized to 22 nm / 0.8 V / 8 bit ===\n";
  TextTable n({"work", "TOPS/W (ours)", "TOPS/W (paper's [19])",
               "GOPS/mm2 (ours)", "GOPS/mm2 (paper's [19])"});
  for (const auto& e : table) {
    n.add_row({e.label, TextTable::num(e.norm_energy_eff, 2),
               TextTable::num(e.paper_norm_energy_eff, 2),
               TextTable::num(e.norm_area_eff, 1),
               TextTable::num(e.paper_norm_area_eff, 1)});
  }
  n.render(std::cout);

  std::cout << "\n=== advantage of EDEA (paper row) over each work ===\n";
  TextTable a({"versus", "raw energy", "normalized energy",
               "normalized area"});
  for (const auto& f : model::advantage_factors(table, 5)) {
    a.add_row({f.versus, TextTable::num(f.raw_energy, 2) + "x",
               TextTable::num(f.normalized_energy, 2) + "x",
               TextTable::num(f.normalized_area, 2) + "x"});
  }
  a.render(std::cout);
  std::cout << "paper quotes: 14.6x/9.87x/2.72x/2.65x raw and "
               "1.74x/3.11x/1.37x/2.65x normalized energy efficiency; "
               "6.29x/7.79x/6.58x/3.23x normalized area efficiency.\n";

  // --- dataflow ablation row: EDEA vs the serialized baseline, both
  // simulated through the backend registry on the identical network ------
  const bench::MobileNetRun& slow = bench::run_mobilenet_on_backend(
      "serialized");
  std::int64_t fast_cycles = 0, slow_cycles = 0;
  std::int64_t fast_ext = 0, slow_ext = 0;
  for (std::size_t i = 0; i < run.result.layers.size(); ++i) {
    fast_cycles += run.result.layers[i].timing.total_cycles;
    slow_cycles += slow.result.layers[i].timing.total_cycles;
    fast_ext += run.result.layers[i].external.total_accesses();
    slow_ext += slow.result.layers[i].external.total_accesses();
  }
  std::cout << "\n=== simulated dataflow ablation (identical workload, "
               "bit-exact outputs) ===\n";
  TextTable d({"backend", "cycles", "GOPS @1GHz", "ext. accesses"});
  d.add_row({"edea", TextTable::num(fast_cycles),
             TextTable::num(run.result.average_throughput_gops(1.0), 2),
             TextTable::num(fast_ext)});
  d.add_row({"serialized", TextTable::num(slow_cycles),
             TextTable::num(slow.result.average_throughput_gops(1.0), 2),
             TextTable::num(slow_ext)});
  d.render(std::cout);
  std::cout << "EDEA speedup over the serialized dataflow: "
            << TextTable::num(static_cast<double>(slow_cycles) /
                                  static_cast<double>(fast_cycles),
                              3)
            << "x at "
            << TextTable::percent(1.0 - static_cast<double>(fast_ext) /
                                            static_cast<double>(slow_ext),
                                  1)
            << " less external-memory traffic\n";
  return 0;
}
