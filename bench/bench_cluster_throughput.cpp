// bench_cluster_throughput - shard-scaling benchmark for the cluster tier
// (service/router.hpp).
//
// Spins up a worker fleet in process - one SocketTransport + Session +
// SimulationService per shard, each pinned to worker_threads=1 so a
// shard's capacity is one core and scaling across shards is real compute
// parallelism, not pool oversubscription - and drives a ClusterRouter over
// it with a scripted stdio stream, sweeping
//
//   shard count {1, 2, 4}   x   {cache-hit, cache-miss}
//
// The cache-miss workload is all fresh simulations: each lands on its
// key's owner and runs there, so requests/sec should scale with the shard
// count (minus consistent-hash imbalance) on a multi-core host. The
// cache-hit workload replays a warmed key set, so the router + wire
// protocol is the whole cost and shard count mostly should not hurt -
// the routing overhead the cluster tier pays for its capacity.
//
// Headline number: miss-workload requests/sec at 4 shards vs 1 shard.
// --require-speedup X turns a ratio below X into a nonzero exit (the CI
// gate demands >= 2x on its multi-core runner; the flag stays off by
// default because a single-core host has no parallelism to measure).
// --json PATH archives every cell as BENCH_cluster.json, the CI artifact
// docs/BENCHMARKS.md tabulates.
//
// --check-failover runs the fault-injection leg instead: one of three
// shards sits behind a ChaosProxy that is killed mid-serve, and the leg
// asserts the routed output is still byte-identical to the single-process
// reference (no reply lost, duplicated, or reordered) with exactly one
// failover observed.
//
// Usage:
//   bench_cluster_throughput [--json PATH] [--require-speedup X]
//                            [--requests N] [--miss-requests N]
//   bench_cluster_throughput --check-failover
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/chaos_proxy.hpp"
#include "service/router.hpp"
#include "service/session.hpp"
#include "service/simulation_service.hpp"
#include "service/transport.hpp"

namespace {

using edea::service::ChaosProxy;
using edea::service::ClusterRouter;
using edea::service::RouterOptions;
using edea::service::RouterSessionStats;
using edea::service::SimulationService;
using edea::service::SocketTransport;
using edea::service::SocketTransportOptions;
using edea::service::WorkerEndpoint;
using edea::service::WorkloadCatalog;

/// One in-process shard: transport + accept thread + single-core service.
class LoopbackWorker {
 public:
  LoopbackWorker() {
    edea::service::ServiceOptions service_options;
    service_options.worker_threads = 1;  // one core per shard, by design
    service_ = std::make_unique<SimulationService>(service_options);
    SocketTransportOptions transport_options;
    transport_options.port = 0;  // ephemeral: no CI port collisions
    transport_ = std::make_unique<SocketTransport>(transport_options);
    serve_thread_ = std::thread([this] {
      transport_->serve([this](edea::service::Stream& stream) {
        edea::service::Session(*service_, catalog_).serve(stream);
      });
    });
  }

  ~LoopbackWorker() {
    transport_->shutdown();
    serve_thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return transport_->port(); }

 private:
  std::unique_ptr<SimulationService> service_;
  WorkloadCatalog catalog_;
  std::unique_ptr<SocketTransport> transport_;
  std::thread serve_thread_;
};

/// A fleet of `shards` workers plus a router over them.
struct Cluster {
  std::vector<std::unique_ptr<LoopbackWorker>> workers;
  std::unique_ptr<ClusterRouter> router;

  explicit Cluster(std::size_t shards) {
    RouterOptions options;
    for (std::size_t s = 0; s < shards; ++s) {
      workers.push_back(std::make_unique<LoopbackWorker>());
      options.workers.push_back(WorkerEndpoint{
          "shard" + std::to_string(s), "127.0.0.1", workers.back()->port()});
    }
    router = std::make_unique<ClusterRouter>(std::move(options));
  }
};

/// Serves `lines` through the router over string streams and returns the
/// response lines.
std::vector<std::string> serve(ClusterRouter& router,
                               const std::vector<std::string>& lines,
                               RouterSessionStats* stats_out = nullptr) {
  std::ostringstream joined;
  for (const std::string& line : lines) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;
  edea::service::StdioStream stream(in, out);
  const RouterSessionStats stats = router.serve(stream);
  if (stats_out != nullptr) *stats_out = stats;
  std::vector<std::string> responses;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) responses.push_back(line);
  return responses;
}

std::vector<std::string> miss_requests(std::size_t n, std::uint64_t base) {
  std::vector<std::string> lines;
  lines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lines.push_back("run edeanet-64 seed=" + std::to_string(base + i));
  }
  return lines;
}

/// `n` requests cycling a set of `distinct` warmed keys: every reply is a
/// shard-cache hit, so the cell times the router + wire, not simulation.
std::vector<std::string> hit_requests(std::size_t n, std::size_t distinct) {
  std::vector<std::string> lines;
  lines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lines.push_back("run edeanet-64 seed=" + std::to_string(1 + i % distinct));
  }
  return lines;
}

struct Cell {
  std::string workload;  ///< "hit" or "miss"
  std::size_t shards = 0;
  std::size_t requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
};

/// Runs one timed cell against a fresh fleet. Exits the process on any
/// non-ok reply (a broken benchmark must not report a number).
Cell run_cell(const std::string& workload, std::size_t shards,
              const std::vector<std::string>& warmup,
              const std::vector<std::string>& timed) {
  Cluster cluster(shards);
  if (!warmup.empty()) {
    const std::vector<std::string> warmed = serve(*cluster.router, warmup);
    if (warmed.size() != warmup.size()) {
      std::cerr << "bench_cluster_throughput: warmup answered "
                << warmed.size() << " of " << warmup.size() << " requests\n";
      std::exit(1);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const std::vector<std::string> responses = serve(*cluster.router, timed);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  if (responses.size() != timed.size()) {
    std::cerr << "bench_cluster_throughput: " << responses.size() << " of "
              << timed.size() << " requests answered\n";
    std::exit(1);
  }
  for (const std::string& response : responses) {
    if (response.rfind("ok ", 0) != 0) {
      std::cerr << "bench_cluster_throughput: unexpected response '"
                << response << "'\n";
      std::exit(1);
    }
  }

  Cell cell;
  cell.workload = workload;
  cell.shards = shards;
  cell.requests = timed.size();
  cell.seconds = elapsed.count();
  cell.rps = cell.seconds > 0.0
                 ? static_cast<double>(cell.requests) / cell.seconds
                 : 0.0;
  return cell;
}

/// The --check-failover leg. Returns the process exit code.
int check_failover() {
  constexpr std::size_t kRequests = 48;

  // Single-process reference for the same stream (all distinct keys, so
  // rerouted re-runs cannot change a byte of any reply).
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < kRequests; ++i) {
    lines.push_back("run mobilenet-0.25x seed=" + std::to_string(500 + i) +
                    " td=16");
  }
  std::vector<std::string> expected;
  {
    SimulationService service;
    WorkloadCatalog catalog;
    std::ostringstream joined;
    for (const std::string& line : lines) joined << line << "\n";
    std::istringstream in(joined.str());
    std::ostringstream out;
    edea::service::StdioStream stream(in, out);
    (void)edea::service::Session(service, catalog).serve(stream);
    std::istringstream replay(out.str());
    std::string line;
    while (std::getline(replay, line)) expected.push_back(line);
  }

  LoopbackWorker w0, w1, w2;
  ChaosProxy proxy("127.0.0.1", w2.port());
  RouterOptions options;
  options.workers.push_back(WorkerEndpoint{"shard0", "127.0.0.1", w0.port()});
  options.workers.push_back(WorkerEndpoint{"shard1", "127.0.0.1", w1.port()});
  options.workers.push_back(
      WorkerEndpoint{"shard2", "127.0.0.1", proxy.port()});
  options.retry_base_ms = 1;
  ClusterRouter router(std::move(options));

  // Kill the proxied shard as soon as the router has connected through the
  // proxy (plus a beat, so requests are genuinely in flight through it).
  std::atomic<bool> done{false};
  std::thread killer([&] {
    while (!done.load() && proxy.connections() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    proxy.kill();
  });

  RouterSessionStats stats;
  const std::vector<std::string> responses = serve(router, lines, &stats);
  done.store(true);
  killer.join();

  bool ok = true;
  if (responses != expected) {
    std::cerr << "FAILOVER FAIL: routed output differs from the "
                 "single-process reference ("
              << responses.size() << " vs " << expected.size() << " lines)\n";
    for (std::size_t i = 0; i < responses.size() && i < expected.size();
         ++i) {
      if (responses[i] != expected[i]) {
        std::cerr << "  first diff at line " << i << ":\n    served:   "
                  << responses[i] << "\n    expected: " << expected[i] << "\n";
        break;
      }
    }
    ok = false;
  }
  if (stats.failovers != 1) {
    std::cerr << "FAILOVER FAIL: expected exactly 1 failover, observed "
              << stats.failovers << "\n";
    ok = false;
  }
  if (router.live_workers().size() != 2) {
    std::cerr << "FAILOVER FAIL: expected 2 survivors, have "
              << router.live_workers().size() << "\n";
    ok = false;
  }
  if (ok) {
    std::cerr << "failover OK: shard2 killed mid-serve, " << stats.retries
              << " retries rerouted its traffic, all " << kRequests
              << " replies byte-identical to the single-process reference\n";
  }
  return ok ? 0 : 1;
}

std::string cell_key(const Cell& cell) {
  return "cluster_throughput/" + cell.workload +
         "/shards=" + std::to_string(cell.shards);
}

bool write_json(const std::string& path, const std::vector<Cell>& cells,
                double one_shard_rps, double four_shard_rps, double ratio) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::cerr << "bench_cluster_throughput: cannot write --json file '"
              << path << "'\n";
    return false;
  }
  out << "{\n";
  for (const Cell& cell : cells) {
    out << "  \"" << cell_key(cell) << "\": {"
        << "\"requests\": " << cell.requests << ", "
        << "\"seconds\": " << cell.seconds << ", "
        << "\"requests_per_sec\": " << cell.rps << "},\n";
  }
  out << "  \"cluster_speedup/miss_4_shards_vs_1\": {"
      << "\"one_shard_rps\": " << one_shard_rps << ", "
      << "\"four_shard_rps\": " << four_shard_rps << ", "
      << "\"ratio\": " << ratio << "}\n";
  out << "}\n";
  out.flush();
  if (!out.good()) {
    std::cerr << "bench_cluster_throughput: failed writing '" << path
              << "'\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double require_speedup = 0.0;   // 0 = gate off (single-core hosts)
  std::size_t hit_count = 512;    // timed hit requests per cell
  std::size_t miss_count = 64;    // timed miss requests per cell
  bool failover = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto number = [&](const char* flag) -> long {
      if (i + 1 >= argc) {
        std::cerr << "bench_cluster_throughput: " << flag
                  << " needs a value\n";
        std::exit(2);
      }
      char* end = nullptr;
      const long value = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || value < 1) {
        std::cerr << "bench_cluster_throughput: bad " << flag << " value '"
                  << argv[i] << "'\n";
        std::exit(2);
      }
      return value;
    };
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "bench_cluster_throughput: --json needs a file path\n";
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--require-speedup") {
      if (i + 1 >= argc) {
        std::cerr << "bench_cluster_throughput: --require-speedup needs a "
                     "minimum ratio\n";
        return 2;
      }
      char* end = nullptr;
      require_speedup = std::strtod(argv[i + 1], &end);
      if (end == argv[i + 1] || *end != '\0' || require_speedup <= 0.0) {
        std::cerr << "bench_cluster_throughput: bad --require-speedup value '"
                  << argv[i + 1] << "' (want a ratio > 0)\n";
        return 2;
      }
      ++i;
    } else if (arg == "--requests") {
      hit_count = static_cast<std::size_t>(number("--requests"));
    } else if (arg == "--miss-requests") {
      miss_count = static_cast<std::size_t>(number("--miss-requests"));
    } else if (arg == "--check-failover") {
      failover = true;
    } else {
      std::cerr << "bench_cluster_throughput: unknown option '" << arg
                << "'\n";
      return 2;
    }
  }

  if (failover) return check_failover();

  const std::vector<std::size_t> shard_counts = {1, 2, 4};
  constexpr std::size_t kDistinctHitKeys = 64;
  std::vector<Cell> cells;

  for (const std::size_t shards : shard_counts) {
    // Miss cell: fresh fleet, fresh seeds - all simulation, split across
    // the shards by the ring.
    cells.push_back(run_cell("miss", shards, {},
                             miss_requests(miss_count, 20000)));
    // Hit cell: warm the key set once (untimed misses), then replay -
    // all protocol + routing.
    cells.push_back(run_cell("hit", shards,
                             hit_requests(kDistinctHitKeys, kDistinctHitKeys),
                             hit_requests(hit_count, kDistinctHitKeys)));
  }

  double one_shard_rps = 0.0;
  double four_shard_rps = 0.0;
  for (const Cell& cell : cells) {
    std::cerr << cell_key(cell) << ": " << static_cast<long>(cell.rps)
              << " req/s (" << cell.requests << " requests in "
              << cell.seconds << " s)\n";
    if (cell.workload == "miss" && cell.shards == 1) one_shard_rps = cell.rps;
    if (cell.workload == "miss" && cell.shards == shard_counts.back()) {
      four_shard_rps = cell.rps;
    }
  }
  const double ratio =
      one_shard_rps > 0.0 ? four_shard_rps / one_shard_rps : 0.0;
  std::cerr << "cluster_speedup/miss_4_shards_vs_1: " << ratio << "x ("
            << static_cast<long>(four_shard_rps) << " vs "
            << static_cast<long>(one_shard_rps) << " req/s)\n";

  if (!json_path.empty() &&
      !write_json(json_path, cells, one_shard_rps, four_shard_rps, ratio)) {
    return 1;
  }

  if (require_speedup > 0.0 && ratio < require_speedup) {
    std::cerr << "bench_cluster_throughput: miss_4_shards_vs_1 = " << ratio
              << "x is below the required " << require_speedup << "x floor\n";
    return 1;
  }
  return 0;
}
