// bench_ablation_nonconv_precision - why Q8.16? Sweeps the fractional bit
// width of the Non-Conv k/b parameters and measures the int8 output error
// against the exact float rescale chain, over realistic accumulator and
// parameter distributions. The paper chose 24-bit (8 integer + 16
// fraction) "to cover all possible ranges ... without losing precision".
#include <algorithm>
#include <cmath>
#include <iostream>

#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

/// Emulates an fxp encode with `frac_bits` fractional bits.
double quantize_param(double v, int frac_bits) {
  const double one = static_cast<double>(1 << frac_bits);
  return std::nearbyint(v * one) / one;
}

/// Non-Conv with parameters rounded to the given fractional precision.
int apply(double k, double b, std::int32_t acc, int frac_bits) {
  const double kq = quantize_param(k, frac_bits);
  const double bq = quantize_param(b, frac_bits);
  const double y = std::nearbyint(kq * acc + bq);
  return static_cast<int>(std::clamp(y, 0.0, 127.0));
}

}  // namespace

int main() {
  using namespace edea;

  Rng rng(424242);
  constexpr int kTrials = 200000;

  // Realistic distributions: k spans the folded-scale range, b the folded
  // BN shift range, accumulators the DWC/PWC int24 envelope.
  std::vector<double> ks(kTrials), bs(kTrials);
  std::vector<std::int32_t> accs(kTrials);
  for (int i = 0; i < kTrials; ++i) {
    ks[static_cast<std::size_t>(i)] = rng.uniform(-2.0, 2.0);
    bs[static_cast<std::size_t>(i)] = rng.uniform(-16.0, 16.0);
    accs[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(rng.uniform_int(-2000000, 2000000));
  }

  std::cout << "=== Ablation: Non-Conv parameter precision vs output error "
               "===\n";
  TextTable t({"frac bits", "total bits (8 int)", "max |err| (LSB)",
               "mean |err|", "exact match"});
  for (const int frac : {4, 6, 8, 10, 12, 14, 16, 20}) {
    int max_err = 0;
    std::int64_t err_sum = 0;
    std::int64_t exact = 0;
    for (int i = 0; i < kTrials; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const int approx = apply(ks[idx], bs[idx], accs[idx], frac);
      const double yref = std::nearbyint(ks[idx] * accs[idx] + bs[idx]);
      const int ref =
          static_cast<int>(std::clamp(yref, 0.0, 127.0));
      const int err = std::abs(approx - ref);
      max_err = std::max(max_err, err);
      err_sum += err;
      if (err == 0) ++exact;
    }
    t.add_row({std::to_string(frac), std::to_string(8 + frac + 1),
               TextTable::num(std::int64_t{max_err}),
               TextTable::num(static_cast<double>(err_sum) / kTrials, 4),
               TextTable::percent(static_cast<double>(exact) / kTrials, 2)});
  }
  t.render(std::cout);

  std::cout << "\nWith 16 fractional bits (the paper's Q8.16) the rescale "
               "is exact for >99% of samples even at int24-scale "
               "accumulators; fewer bits visibly corrupt the int8 output. "
               "More bits than 16 buy nothing at int8 output precision.\n";
  return 0;
}
