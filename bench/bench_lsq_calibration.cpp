// bench_lsq_calibration - compares the two LSQ substitutes: naive max/127
// calibration vs learned-step-size (MSE-optimized) calibration, per layer
// and end to end. The paper trains with LSQ; this bench quantifies how
// much of LSQ's benefit the offline optimizer recovers.
#include <iostream>

#include "nn/dataset.hpp"
#include "nn/lsq.hpp"
#include "nn/metrics.hpp"
#include "nn/mobilenet.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  nn::FloatMobileNet net(20240101);
  nn::SyntheticCifar data(5);
  std::vector<nn::FloatTensor> images;
  for (int i = 0; i < 4; ++i) images.push_back(data.sample(i).image);

  const nn::CalibrationResult naive = nn::calibrate(net, images);
  const nn::CalibrationResult lsq = nn::lsq_calibrate(net, images);
  const nn::CalibrationResult lsq_aggr =
      nn::lsq_calibrate(net, images, nn::LsqOptions::aggressive());

  std::cout << "=== activation scales: max/127 vs MSE-optimized (LSQ "
               "substitute) ===\n";
  TextTable t({"tensor", "naive scale", "LSQ scale", "ratio"});
  for (std::size_t i = 0; i < naive.block_input_scales.size(); ++i) {
    const float a = naive.block_input_scales[i].scale;
    const float b = lsq.block_input_scales[i].scale;
    t.add_row({"block input " + std::to_string(i), TextTable::num(a, 5),
               TextTable::num(b, 5), TextTable::num(b / a, 3)});
  }
  t.render(std::cout);

  // End-to-end fidelity on held-out images.
  const nn::QuantMobileNet qnet_naive(net, naive);
  const nn::QuantMobileNet qnet_lsq(net, lsq);
  const nn::QuantMobileNet qnet_aggr(net, lsq_aggr);
  nn::SyntheticCifar held_out(31);
  RunningStats cos_naive, cos_lsq, cos_aggr;
  for (int i = 0; i < 10; ++i) {
    const nn::FloatTensor probe = held_out.sample(i).image;
    const nn::FloatTensor stem = net.forward_stem(probe);
    const nn::FloatTensor float_feats = net.forward_dsc(stem);
    auto fidelity = [&](const nn::QuantMobileNet& q) {
      const nn::FloatTensor f = q.dequantize_output(
          q.forward_dsc(q.quantize_input(stem)));
      return nn::cosine_similarity(f, float_feats);
    };
    cos_naive.add(fidelity(qnet_naive));
    cos_lsq.add(fidelity(qnet_lsq));
    cos_aggr.add(fidelity(qnet_aggr));
  }

  std::cout << "\n=== end-to-end feature fidelity vs float network (10 "
               "held-out images) ===\n";
  TextTable e({"calibration", "mean cosine", "min cosine"});
  e.add_row({"naive max/127", TextTable::num(cos_naive.mean(), 4),
             TextTable::num(cos_naive.min(), 4)});
  e.add_row({"LSQ substitute (conservative)",
             TextTable::num(cos_lsq.mean(), 4),
             TextTable::num(cos_lsq.min(), 4)});
  e.add_row({"LSQ substitute (aggressive MSE)",
             TextTable::num(cos_aggr.mean(), 4),
             TextTable::num(cos_aggr.min(), 4)});
  e.render(std::cout);

  std::cout << "\nFinding: per-tensor MSE-optimal steps (aggressive) always "
               "reduce layer-local error but can *hurt* end-to-end fidelity "
               "by clipping informative outliers that later layers depend "
               "on; trained LSQ escapes this by adapting the weights "
               "alongside the steps - which is why the paper trains with "
               "LSQ instead of post-hoc calibration. The conservative "
               "bracket recovers most of the resolution benefit without "
               "the clipping damage. All calibrations feed the identical "
               "accelerator datapath.\n";
  return 0;
}
