// bench_ablation_scaling - the paper's scaling argument (Sec. III-B): "PE
// arrays are friendly to scaling... without reducing utilization". Sweeps
// Td (DWC/PWC channel parallelism) and Tk (PWC kernel parallelism),
// reporting PE count, per-image DSC latency, throughput, estimated area
// and area efficiency. Utilization stays 100% as long as layer channels
// remain multiples of the tile sizes.
#include <iostream>

#include "core/timing.hpp"
#include "model/area_model.hpp"
#include "nn/mobilenet.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const auto specs = nn::mobilenet_dsc_specs();
  const model::AreaModel area = model::AreaModel::paper();

  struct Variant {
    const char* name;
    int td;
    int tk;
  };
  const Variant variants[] = {
      {"half (Td=4,Tk=8)", 4, 8},    {"paper (Td=8,Tk=16)", 8, 16},
      {"2x kernels (Tk=32)", 8, 32}, {"2x channels (Td=16)", 16, 16},
      {"4x (Td=16,Tk=32)", 16, 32},
  };

  std::cout << "=== Scaling study: PE array size vs performance ===\n";
  TextTable t({"variant", "PEs", "DSC latency/img (us)", "avg GOPS",
               "est. area (mm2)", "GOPS/mm2", "lane util"});
  for (const Variant& v : variants) {
    core::EdeaConfig cfg = core::EdeaConfig::paper();
    cfg.td = v.td;
    cfg.tk = v.tk;
    const core::TimingModel tm(cfg);

    std::int64_t cycles = 0, ops = 0;
    bool aligned = true;
    for (const auto& spec : specs) {
      cycles += tm.layer_timing(spec).total_cycles;
      ops += spec.total_ops();
      aligned = aligned && spec.in_channels % cfg.td == 0 &&
                spec.out_channels % cfg.tk == 0;
    }
    const double gops = static_cast<double>(ops) /
                        static_cast<double>(cycles);
    const double mm2 = area.estimate_mm2(cfg);
    t.add_row({v.name,
               TextTable::num(static_cast<std::int64_t>(cfg.total_mac_count())),
               TextTable::num(static_cast<double>(cycles) / 1000.0, 2),
               TextTable::num(gops, 1), TextTable::num(mm2, 3),
               TextTable::num(gops / mm2, 1),
               aligned ? "100%" : "<100% (misaligned)"});
  }
  t.render(std::cout);

  std::cout << "\nDoubling Tk halves the kernel-group loop (Eq. 1); "
               "doubling Td halves the slice loop (Eq. 2). Both preserve "
               "100% lane utilization on MobileNetV1 because its channel "
               "counts are multiples of the tile sizes - the paper's "
               "scaling-friendliness claim.\n";
  return 0;
}
