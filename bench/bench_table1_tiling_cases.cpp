// bench_table1_tiling_cases - regenerates Table I (the six selected tiling
// cases) together with the per-case structural consequences: PE array
// sizes for both Tn=Tm choices and the tile shapes each case implies.
#include <iostream>

#include "dse/access_model.hpp"
#include "dse/loop_order.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  std::cout << "=== Table I: selected tiling sizes ===\n";
  TextTable t({"case", "Td", "Tk", "PEs (Tn=Tm=1)", "PEs (Tn=Tm=2)",
               "DWC tile (s1)", "PWC tile"});
  for (const dse::TilingCase& c : dse::kTableICases) {
    const auto pe1 = dse::pe_array_size(c, 1, 1);
    const auto pe2 = dse::pe_array_size(c, 2, 2);
    t.add_row({"Case" + std::to_string(c.id), std::to_string(c.td),
               std::to_string(c.tk), TextTable::num(pe1.total()),
               TextTable::num(pe2.total()),
               "3x3x" + std::to_string(c.td) + " / 4x4x" +
                   std::to_string(c.td),
               "1x1x" + std::to_string(c.td) + "x" + std::to_string(c.tk)});
  }
  t.render(std::cout);

  std::cout << "\nThe paper constrains Tn=Tm to 1 or 2 because layers 11/12 "
               "have 2x2 ifmaps; Case 6 with Tn=Tm=2 is the selected design "
               "(800 PEs: 288 DWC + 512 PWC).\n";
  return 0;
}
