// bench_fig02_dse_sweep - regenerates Fig. 2 (design space exploration):
//   (a) PE array size per tiling case and exploration group,
//   (b) activation / weight access counts over all MobileNetV1 DSC layers,
// and reports the selected design point (paper: La, Tn=Tm=2, Case 6).
#include <iostream>
#include <vector>

#include "dse/explorer.hpp"
#include "nn/mobilenet.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const auto spec_array = nn::mobilenet_dsc_specs();
  const std::vector<nn::DscLayerSpec> specs(spec_array.begin(),
                                            spec_array.end());
  dse::Explorer explorer(specs);
  const dse::ExplorationResult result = explorer.explore();

  std::cout << "=== Fig. 2a: PE array size per design point ===\n";
  {
    TextTable t({"group", "case", "Td", "Tk", "DWC PEs", "PWC PEs",
                 "total PEs"});
    for (const dse::DesignPoint& p : result.points) {
      t.add_row({std::string(dse::loop_order_name(p.group.order)) +
                     ", Tn=Tm=" + std::to_string(p.group.tn),
                 "Case" + std::to_string(p.tcase.id),
                 std::to_string(p.tcase.td), std::to_string(p.tcase.tk),
                 TextTable::num(p.pe.dwc), TextTable::num(p.pe.pwc),
                 TextTable::num(p.pe.total())});
    }
    t.render(std::cout);
  }

  std::cout << "\n=== Fig. 2b: access counts over all 13 DSC layers ===\n";
  {
    TextTable t({"group", "case", "activation", "weight", "total"});
    for (const dse::DesignPoint& p : result.points) {
      t.add_row({std::string(dse::loop_order_name(p.group.order)) +
                     ", Tn=Tm=" + std::to_string(p.group.tn),
                 "Case" + std::to_string(p.tcase.id),
                 TextTable::num(p.access.activation()),
                 TextTable::num(p.access.weight()),
                 TextTable::num(p.access.total())});
    }
    t.render(std::cout);
  }

  std::cout << "\nSelected design point: " << result.best().label() << "\n";
  std::cout << "  total PEs: " << result.best().pe.total()
            << " (paper: 800)\n";
  std::cout << "  paper's choice: La, Tn=Tm=2, Case6 (Td=8, Tk=16)\n";
  return 0;
}
