// bench_fig11_power_zero - regenerates Fig. 11: per-layer power and input
// zero percentages of both engines. Two modes are printed side by side:
//
//   paper-calibrated : activities inverted from the published per-layer
//                      power (reproduces the silicon numbers exactly;
//                      layer 12 uses its published 97.4% / 95.3%),
//   measured         : zero percentages of the synthetic quantized
//                      MobileNetV1 as simulated by the accelerator
//                      (the LSQ-trained-network substitute).
#include <iostream>

#include "bench_common.hpp"
#include "model/paper_data.hpp"
#include "model/power_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const bench::MobileNetRun& run = bench::run_mobilenet_on_accelerator();
  const model::PowerModel pm = model::PowerModel::paper_calibrated();
  const auto cal_points = model::paper_calibrated_operating_points();

  std::cout << "=== Fig. 11: power and zero percentage per layer ===\n";
  TextTable t({"layer", "P paper (mW)", "P measured (mW)",
               "DWC zero% (meas)", "PWC zero% (meas)",
               "zero% (paper-cal)"});
  double e_meas = 0.0, t_total = 0.0;
  for (const auto& r : run.result.layers) {
    const auto i = static_cast<std::size_t>(r.spec.index);
    model::OperatingPoint op;
    op.duty_dwc = r.dwc_duty();
    op.duty_pwc = r.pwc_duty();
    op.act_dwc = 1.0 - r.dwc_input_zero_fraction;
    op.act_pwc = 1.0 - r.pwc_input_zero_fraction;
    const double p_meas = pm.power_mw(op);
    e_meas += p_meas * r.time_ns(1.0);
    t_total += r.time_ns(1.0);
    t.add_row({std::to_string(r.spec.index),
               TextTable::num(model::paper_layer_power_mw(r.spec.index), 1),
               TextTable::num(p_meas, 1),
               TextTable::percent(r.dwc_input_zero_fraction, 1),
               TextTable::percent(r.pwc_input_zero_fraction, 1),
               TextTable::percent(1.0 - cal_points[i].act_pwc, 1)});
  }
  t.render(std::cout);

  std::cout << "\naverage measured power: "
            << TextTable::num(e_meas / t_total, 1) << " mW\n";
  std::cout << "paper anchors: layer 1 highest at 117.7 mW; layer 12 lowest "
               "at 67.7 mW with 97.4% (DWC) / 95.3% (PWC) zeros\n";
  std::cout << "model: P = " << TextTable::num(pm.c_idle_mw(), 2) << " + "
            << TextTable::num(pm.c_dwc_mw(), 2) << "*duty_dwc*act_dwc + "
            << TextTable::num(pm.c_pwc_mw(), 2) << "*duty_pwc*act_pwc  [mW]\n";
  return 0;
}
