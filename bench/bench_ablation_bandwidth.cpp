// bench_ablation_bandwidth - an analysis the paper does not publish but
// its architecture implies: the external-memory bandwidth each layer
// demands at 1 GHz. With weight-stationary La dataflow, PWC weight
// streaming dominates traffic (Fig. 2b's observation); this bench
// quantifies the resulting GB/s per layer, splits it by traffic class, and
// shows how the direct-transfer path keeps activations a minor consumer.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const bench::MobileNetRun& run = bench::run_mobilenet_on_accelerator();

  std::cout << "=== External bandwidth demand per layer (1 GHz clock, "
               "1 byte/element) ===\n";
  TextTable t({"layer", "act bytes", "wt bytes", "param bytes", "total GB/s",
               "wt share"});
  double worst = 0.0;
  int worst_layer = 0;
  std::int64_t total_bytes = 0, total_cycles = 0;
  for (const auto& r : run.result.layers) {
    const auto act =
        r.external.counter(arch::TrafficClass::kActivation).total_bytes();
    const auto wt =
        r.external.counter(arch::TrafficClass::kWeight).total_bytes();
    // Parameters are 24-bit (3-byte) words; counters carry element counts.
    const auto prm =
        r.external.counter(arch::TrafficClass::kParameter).total_accesses() *
        3;
    const auto bytes = act + wt + prm;
    total_bytes += bytes;
    total_cycles += r.timing.total_cycles;
    // bytes per ns at 1 GHz == GB/s.
    const double gbps = static_cast<double>(bytes) /
                        static_cast<double>(r.timing.total_cycles);
    if (gbps > worst) {
      worst = gbps;
      worst_layer = r.spec.index;
    }
    t.add_row({std::to_string(r.spec.index), TextTable::num(act),
               TextTable::num(wt), TextTable::num(prm),
               TextTable::num(gbps, 2),
               TextTable::percent(static_cast<double>(wt) /
                                      static_cast<double>(bytes),
                                  1)});
  }
  t.add_row({"avg", "", "", "",
             TextTable::num(static_cast<double>(total_bytes) /
                                static_cast<double>(total_cycles),
                            2),
             ""});
  t.render(std::cout);

  std::cout << "\npeak demand: " << TextTable::num(worst, 2)
            << " GB/s at layer " << worst_layer
            << " - dominated by PWC weight streaming (D*K bytes per layer "
               "with no reuse across slices), which is why the DSE picks "
               "the weight-minimal La order and why the paper reports "
               "weight accesses outweighing activation accesses.\n";
  return 0;
}
