// bench_fig07_pipeline_trace - regenerates Fig. 7: the pipeline timing of
// the dual convolution units. Prints the traced stage schedule of the
// first (tile, slice) pass and validates Eq. 1 / Eq. 2 for a set of layer
// shapes, including the 9-cycle initiation.
#include <iostream>

#include "core/accelerator.hpp"
#include "nn/layers.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  nn::DscLayerSpec spec;
  spec.in_rows = 8;
  spec.in_cols = 8;
  spec.in_channels = 16;
  spec.out_channels = 32;

  Rng rng(7);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{8, 8, 16});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }

  core::EdeaAccelerator accel;
  core::PipelineTrace trace;
  accel.set_trace(&trace);
  const core::LayerRunResult result = accel.run_layer(layer, input);
  accel.set_trace(nullptr);

  std::cout << "=== Fig. 7: pipeline stages of the first pass ("
            << spec.to_string() << ") ===\n";
  TextTable t({"cycle", "stage", "detail"});
  for (const auto& e : trace.events) {
    t.add_row({TextTable::num(e.cycle), e.stage, e.detail});
  }
  t.render(std::cout);

  std::cout << "\n=== Eq. 1 / Eq. 2 check across layer shapes ===\n";
  TextTable eq({"layer", "init/pass", "Lat_tile (cycles)", "passes",
                "Lat_total (cycles)", "simulated"});
  const core::TimingModel tm(accel.config());
  struct Case {
    int rows, d, s, k;
  };
  for (const Case c : {Case{8, 16, 1, 32}, Case{16, 32, 2, 64},
                       Case{4, 512, 1, 512}, Case{2, 1024, 1, 1024}}) {
    nn::DscLayerSpec s;
    s.in_rows = c.rows;
    s.in_cols = c.rows;
    s.in_channels = c.d;
    s.stride = c.s;
    s.out_channels = c.k;
    const core::LayerTiming lt = tm.layer_timing(s);
    const std::int64_t per_pass = lt.total_cycles / lt.passes;

    Rng r2(c.rows * 131 + c.k);
    const nn::FloatDscLayer fl2 = nn::make_random_float_layer(s, r2);
    const nn::QuantDscLayer l2 = nn::quantize_layer(
        fl2, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
        nn::QuantScale{0.03f});
    nn::Int8Tensor in2(nn::Shape{s.in_rows, s.in_cols, s.in_channels});
    for (auto& v : in2.storage()) {
      v = static_cast<std::int8_t>(r2.uniform_int(0, 127));
    }
    const core::LayerRunResult rr = accel.run_layer(l2, in2);
    eq.add_row({s.to_string(), "9", TextTable::num(per_pass),
                TextTable::num(lt.passes), TextTable::num(lt.total_cycles),
                TextTable::num(rr.timing.total_cycles)});
  }
  eq.render(std::cout);

  std::cout << "\nInitiation takes 9 cycles before the first PWC output "
               "(paper Fig. 7); simulated == Eq. 1/2 for every shape.\n";
  return result.timing.total_cycles > 0 ? 0 : 1;
}
