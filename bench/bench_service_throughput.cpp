// bench_service_throughput - saturation benchmark for the pipelined wire
// protocol (service/protocol.hpp "Pipelining", service/pipeline_client.hpp).
//
// Spins up the real service stack in process - SocketTransport on an
// ephemeral loopback port, one Session per connection, a shared
// SimulationService - and drives it with multi-client load, sweeping
//
//   in-flight depth   x   session count   x   {cache-hit, cache-miss}
//
// where depth 1 is the one-line-per-RTT baseline (run_serial: write a
// request, wait for its reply, repeat) and deeper cells pipeline batch
// frames with run_pipelined. The cache-hit workload repeats one design
// point, so the server side is almost pure protocol + transport work -
// the regime where keeping the wire full matters most; the cache-miss
// workload is all fresh simulations, so throughput saturates at the
// worker pool and pipelining mostly hides the protocol overhead.
//
// Headline number: requests/sec pipelined vs serial on the single-session
// cache-hit workload. --require-speedup X turns a ratio below X into a
// nonzero exit (the CI gate demands >= 2x); --json PATH archives every
// cell plus the ratio as BENCH_service.json, the CI artifact that
// docs/BENCHMARKS.md tabulates.
//
// --check-overload runs the admission-control validation leg instead of
// the sweep: a bounded service (--max-queue semantics, max_queue=2) is
// flooded with more in-flight requests than it admits, and the leg
// asserts that busy replies were actually issued, that every request
// still completed after jittered backoff, that peak_queue never exceeded
// the bound, and that the drained reply set is byte-identical to the
// single-line stdio reference in ordered mode.
//
// Usage:
//   bench_service_throughput [--json PATH] [--require-speedup X]
//                            [--requests N] [--miss-requests N]
//   bench_service_throughput --check-overload
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/pipeline_client.hpp"
#include "service/session.hpp"
#include "service/simulation_service.hpp"
#include "service/transport.hpp"

namespace {

using edea::service::PipelineOptions;
using edea::service::PipelineReport;
using edea::service::SessionOptions;
using edea::service::SimulationService;
using edea::service::SocketTransport;
using edea::service::SocketTransportOptions;
using edea::service::WorkloadCatalog;

/// An in-process server: transport + accept thread + shared service.
/// Clients connect to 127.0.0.1:port() like any external process would -
/// the benchmark measures the full socket code path, not a shortcut.
class LoopbackServer {
 public:
  explicit LoopbackServer(edea::service::ServiceOptions service_options,
                          SessionOptions session_options = SessionOptions())
      : service_(service_options) {
    SocketTransportOptions transport_options;
    transport_options.port = 0;  // ephemeral: no CI port collisions
    transport_ = std::make_unique<SocketTransport>(transport_options);
    serve_thread_ = std::thread([this, session_options] {
      transport_->serve([this, session_options](edea::service::Stream& s) {
        edea::service::Session(service_, catalog_, session_options).serve(s);
      });
    });
  }

  ~LoopbackServer() {
    transport_->shutdown();
    serve_thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return transport_->port(); }
  [[nodiscard]] SimulationService& service() { return service_; }

 private:
  SimulationService service_;
  WorkloadCatalog catalog_;
  std::unique_ptr<SocketTransport> transport_;
  std::thread serve_thread_;
};

std::vector<std::string> hit_requests(std::size_t n) {
  // One design point, n times: after the first miss everything is served
  // from cache, so the measured cost is protocol + transport.
  return std::vector<std::string>(n, "run edeanet-64 seed=1");
}

std::vector<std::string> miss_requests(std::size_t n, std::uint64_t base) {
  // Distinct seeds: every request is a fresh simulation.
  std::vector<std::string> lines;
  lines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lines.push_back("run edeanet-64 seed=" + std::to_string(base + i));
  }
  return lines;
}

struct Cell {
  std::string workload;  ///< "hit" or "miss"
  std::size_t sessions = 0;
  std::size_t depth = 0;  ///< 1 = serial one-line-per-RTT baseline
  std::size_t requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
};

/// Runs one sweep cell: `sessions` concurrent clients, each replaying its
/// own request list with the given in-flight depth. Returns requests/sec;
/// exits the process on any incomplete replay (a broken benchmark must
/// not report a number).
Cell run_cell(const std::string& workload, std::uint16_t port,
              const std::vector<std::vector<std::string>>& per_session,
              std::size_t depth) {
  std::vector<std::thread> clients;
  std::vector<PipelineReport> reports(per_session.size());

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < per_session.size(); ++s) {
    clients.emplace_back([&, s] {
      std::unique_ptr<edea::service::Stream> stream =
          edea::service::connect_socket("127.0.0.1", port, /*retry_ms=*/5000);
      PipelineOptions options;
      options.window = depth > 1 ? depth : 1;
      options.backoff_seed = 0xB0FF + s;  // decorrelate client backoff
      reports[s] = depth > 1
                       ? edea::service::run_pipelined(*stream, per_session[s],
                                                      options)
                       : edea::service::run_serial(*stream, per_session[s],
                                                   options);
    });
  }
  for (std::thread& t : clients) t.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  Cell cell;
  cell.workload = workload;
  cell.sessions = per_session.size();
  cell.depth = depth;
  for (std::size_t s = 0; s < per_session.size(); ++s) {
    if (!reports[s].complete) {
      std::cerr << "bench_service_throughput: session " << s
                << " did not complete: " << reports[s].error << "\n";
      std::exit(1);
    }
    for (const std::string& response : reports[s].responses) {
      if (!response.empty() && response.rfind("ok ", 0) != 0) {
        std::cerr << "bench_service_throughput: unexpected response '"
                  << response << "'\n";
        std::exit(1);
      }
    }
    cell.requests += per_session[s].size();
  }
  cell.seconds = elapsed.count();
  cell.rps = cell.seconds > 0.0
                 ? static_cast<double>(cell.requests) / cell.seconds
                 : 0.0;
  return cell;
}

/// The single-line stdio reference: the same request lines through the
/// same Session code path over string streams against a fresh unbounded
/// service - what the overload leg's drained reply set must match.
std::vector<std::string> stdio_reference(
    const std::vector<std::string>& requests) {
  std::ostringstream joined;
  for (const std::string& line : requests) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;
  SimulationService service;
  WorkloadCatalog catalog;
  edea::service::StdioStream stream(in, out);
  (void)edea::service::Session(service, catalog).serve(stream);
  std::vector<std::string> lines;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) lines.push_back(line);
  return lines;
}

/// The --check-overload leg. Returns the process exit code.
int check_overload() {
  constexpr std::size_t kMaxQueue = 2;
  constexpr std::size_t kWindow = 16;
  constexpr std::size_t kRequests = 48;

  edea::service::ServiceOptions service_options;
  service_options.max_queue = kMaxQueue;
  service_options.worker_threads = 2;
  SessionOptions session_options;
  session_options.busy_retry_ms = 1;
  LoopbackServer server(service_options, session_options);

  const std::vector<std::string> requests = miss_requests(kRequests, 9000);
  std::unique_ptr<edea::service::Stream> stream =
      edea::service::connect_socket("127.0.0.1", server.port(),
                                    /*retry_ms=*/5000);
  PipelineOptions options;
  options.window = kWindow;
  options.ordered = true;  // the byte-exact reference mode
  const PipelineReport report =
      edea::service::run_pipelined(*stream, requests, options);

  bool ok = true;
  if (!report.complete) {
    std::cerr << "OVERLOAD FAIL: replay incomplete: " << report.error << "\n";
    ok = false;
  }
  if (report.busy_replies == 0) {
    std::cerr << "OVERLOAD FAIL: " << kWindow << " in flight against "
              << "max_queue=" << kMaxQueue
              << " never drew a busy reply - admission control did not "
                 "engage\n";
    ok = false;
  }
  const edea::service::CacheStats stats = server.service().cache_stats();
  if (stats.peak_queue > kMaxQueue) {
    std::cerr << "OVERLOAD FAIL: peak_queue=" << stats.peak_queue
              << " exceeded max_queue=" << kMaxQueue << "\n";
    ok = false;
  }
  if (stats.rejected != report.busy_replies) {
    std::cerr << "OVERLOAD FAIL: service counted " << stats.rejected
              << " rejections but the client saw " << report.busy_replies
              << " busy replies\n";
    ok = false;
  }

  const std::vector<std::string> expected = stdio_reference(requests);
  if (report.responses.size() != expected.size()) {
    std::cerr << "OVERLOAD FAIL: " << report.responses.size()
              << " responses, stdio reference has " << expected.size() << "\n";
    ok = false;
  } else {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (report.responses[i] != expected[i]) {
        std::cerr << "OVERLOAD FAIL: response " << i
                  << " differs from the stdio reference\n  served:   "
                  << report.responses[i] << "\n  expected: " << expected[i]
                  << "\n";
        ok = false;
      }
    }
  }

  if (ok) {
    std::cerr << "overload OK: " << report.busy_replies
              << " busy replies absorbed by backoff, all " << kRequests
              << " requests completed, peak_queue=" << stats.peak_queue
              << " <= max_queue=" << kMaxQueue
              << ", drained replies byte-identical to the stdio reference\n";
  }
  return ok ? 0 : 1;
}

std::string cell_key(const Cell& cell) {
  return "service_throughput/" + cell.workload +
         "/sessions=" + std::to_string(cell.sessions) +
         (cell.depth > 1 ? "/depth=" + std::to_string(cell.depth)
                         : "/depth=serial");
}

bool write_json(const std::string& path, const std::vector<Cell>& cells,
                double serial_rps, double pipelined_rps, double ratio) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::cerr << "bench_service_throughput: cannot write --json file '"
              << path << "'\n";
    return false;
  }
  out << "{\n";
  for (const Cell& cell : cells) {
    out << "  \"" << cell_key(cell) << "\": {"
        << "\"requests\": " << cell.requests << ", "
        << "\"seconds\": " << cell.seconds << ", "
        << "\"requests_per_sec\": " << cell.rps << "},\n";
  }
  out << "  \"service_speedup/pipelined_vs_serial_hit\": {"
      << "\"serial_rps\": " << serial_rps << ", "
      << "\"pipelined_rps\": " << pipelined_rps << ", "
      << "\"ratio\": " << ratio << "}\n";
  out << "}\n";
  out.flush();
  if (!out.good()) {
    std::cerr << "bench_service_throughput: failed writing '" << path
              << "'\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double require_speedup = 0.0;  // 0 = gate off
  std::size_t hit_count = 1024;  // per session
  std::size_t miss_count = 24;   // per session
  bool overload = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto number = [&](const char* flag) -> long {
      if (i + 1 >= argc) {
        std::cerr << "bench_service_throughput: " << flag
                  << " needs a value\n";
        std::exit(2);
      }
      char* end = nullptr;
      const long value = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || value < 1) {
        std::cerr << "bench_service_throughput: bad " << flag << " value '"
                  << argv[i] << "'\n";
        std::exit(2);
      }
      return value;
    };
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "bench_service_throughput: --json needs a file path\n";
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--require-speedup") {
      if (i + 1 >= argc) {
        std::cerr << "bench_service_throughput: --require-speedup needs a "
                     "minimum ratio\n";
        return 2;
      }
      char* end = nullptr;
      require_speedup = std::strtod(argv[i + 1], &end);
      if (end == argv[i + 1] || *end != '\0' || require_speedup <= 0.0) {
        std::cerr << "bench_service_throughput: bad --require-speedup value '"
                  << argv[i + 1] << "' (want a ratio > 0)\n";
        return 2;
      }
      ++i;
    } else if (arg == "--requests") {
      hit_count = static_cast<std::size_t>(number("--requests"));
    } else if (arg == "--miss-requests") {
      miss_count = static_cast<std::size_t>(number("--miss-requests"));
    } else if (arg == "--check-overload") {
      overload = true;
    } else {
      std::cerr << "bench_service_throughput: unknown option '" << arg
                << "'\n";
      return 2;
    }
  }

  if (overload) return check_overload();

  const std::vector<std::size_t> depths = {1, 8, 32};
  const std::vector<std::size_t> session_counts = {1, 4};
  std::vector<Cell> cells;

  // --- cache-hit sweep: one shared warm service -------------------------
  {
    LoopbackServer server((edea::service::ServiceOptions()));
    // Warm the single design point so every timed cell is pure hits.
    {
      std::unique_ptr<edea::service::Stream> stream =
          edea::service::connect_socket("127.0.0.1", server.port(),
                                        /*retry_ms=*/5000);
      const PipelineReport warm =
          edea::service::run_serial(*stream, hit_requests(1), {});
      if (!warm.complete) {
        std::cerr << "bench_service_throughput: warmup failed: " << warm.error
                  << "\n";
        return 1;
      }
    }
    for (const std::size_t sessions : session_counts) {
      for (const std::size_t depth : depths) {
        const std::vector<std::vector<std::string>> per_session(
            sessions, hit_requests(hit_count));
        cells.push_back(
            run_cell("hit", server.port(), per_session, depth));
      }
    }
  }

  // --- cache-miss sweep: fresh seeds per cell ---------------------------
  {
    LoopbackServer server((edea::service::ServiceOptions()));
    std::uint64_t seed_base = 100000;
    for (const std::size_t sessions : session_counts) {
      for (const std::size_t depth : depths) {
        std::vector<std::vector<std::string>> per_session;
        for (std::size_t s = 0; s < sessions; ++s) {
          per_session.push_back(miss_requests(miss_count, seed_base));
          seed_base += 1000;
        }
        cells.push_back(
            run_cell("miss", server.port(), per_session, depth));
      }
    }
  }

  double serial_rps = 0.0;
  double pipelined_rps = 0.0;
  for (const Cell& cell : cells) {
    std::cerr << cell_key(cell) << ": " << static_cast<long>(cell.rps)
              << " req/s (" << cell.requests << " requests in "
              << cell.seconds << " s)\n";
    if (cell.workload == "hit" && cell.sessions == 1) {
      if (cell.depth == 1) serial_rps = cell.rps;
      if (cell.depth == depths.back()) pipelined_rps = cell.rps;
    }
  }
  const double ratio = serial_rps > 0.0 ? pipelined_rps / serial_rps : 0.0;
  std::cerr << "service_speedup/pipelined_vs_serial_hit: " << ratio
            << "x (" << static_cast<long>(pipelined_rps) << " vs "
            << static_cast<long>(serial_rps) << " req/s)\n";

  if (!json_path.empty() &&
      !write_json(json_path, cells, serial_rps, pipelined_rps, ratio)) {
    return 1;
  }

  if (require_speedup > 0.0 && ratio < require_speedup) {
    std::cerr << "bench_service_throughput: pipelined_vs_serial_hit = "
              << ratio << "x is below the required " << require_speedup
              << "x floor\n";
    return 1;
  }
  return 0;
}
