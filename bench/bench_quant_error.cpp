// bench_quant_error - int8 quantization error propagation through the 13
// DSC layers: cosine similarity and mean absolute error between the float
// reference activations and the dequantized int8 activations, layer by
// layer, plus the Non-Conv fixed-point-vs-float error at each layer. This
// is the fidelity budget behind using LSQ-style 8-bit inference at all.
#include <iostream>

#include "nn/dataset.hpp"
#include "nn/metrics.hpp"
#include "nn/mobilenet.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  nn::FloatMobileNet net(20240101);
  nn::SyntheticCifar data(5);
  std::vector<nn::FloatTensor> images;
  for (int i = 0; i < 4; ++i) images.push_back(data.sample(i).image);
  const nn::CalibrationResult cal = nn::calibrate(net, images);
  const nn::QuantMobileNet qnet(net, cal);

  const nn::FloatTensor probe = data.sample(7).image;
  const nn::FloatTensor stem_f = net.forward_stem(probe);

  std::cout << "=== int8 quantization error propagation (one inference) "
               "===\n";
  TextTable t({"layer", "cosine(float, int8)", "mean |err|", "act scale",
               "interm. zero% (f)", "interm. zero% (q)"});

  nn::FloatTensor x_f = stem_f;
  nn::Int8Tensor x_q = qnet.quantize_input(stem_f);
  for (std::size_t i = 0; i < qnet.blocks().size(); ++i) {
    const auto& fblock = net.blocks()[i];
    const auto& qblock = qnet.blocks()[i];

    nn::FloatTensor inter_f;
    x_f = fblock.forward(x_f, &inter_f);
    nn::Int8Tensor inter_q;
    x_q = qblock.forward(x_q, &inter_q);

    const nn::FloatTensor x_q_deq =
        nn::dequantize_tensor(x_q, qblock.output_scale);
    t.add_row({std::to_string(i),
               TextTable::num(nn::cosine_similarity(x_q_deq, x_f), 4),
               TextTable::num(nn::mean_abs_error(x_q_deq, x_f), 4),
               TextTable::num(qblock.output_scale.scale, 4),
               TextTable::percent(inter_f.zero_fraction(), 1),
               TextTable::percent(inter_q.zero_fraction(), 1)});
  }
  t.render(std::cout);

  // Head-level effect.
  const nn::FloatTensor logits_f = net.forward_head(x_f);
  const nn::FloatTensor logits_q =
      net.forward_head(nn::dequantize_tensor(
          x_q, qnet.blocks().back().output_scale));
  std::cout << "\nfinal logits cosine similarity: "
            << TextTable::num(nn::cosine_similarity(logits_f, logits_q), 4)
            << ", top-1 "
            << (nn::argmax(logits_f) == nn::argmax(logits_q) ? "agrees"
                                                             : "differs")
            << "\n";
  std::cout << "13 layers of int8 accumulate error gradually (cosine stays "
               "high); the quantized sparsity tracks the float sparsity "
               "closely, which is what the Fig. 11 power argument rests "
               "on.\n";
  return 0;
}
