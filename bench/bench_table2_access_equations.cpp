// bench_table2_access_equations - validates Table II (the closed-form
// access equations for loop order La with Tn=Tm=2) against the
// cycle-accurate simulator's dataflow counters, for every MobileNetV1
// layer. The analytic and simulated element counts must agree exactly on
// single-tile layers; multi-tile layers re-fetch weights per buffer tile
// (Eq. 2's N_tiles factor), which the table also quantifies.
#include <iostream>

#include "bench_common.hpp"
#include "dse/access_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const bench::MobileNetRun& run = bench::run_mobilenet_on_accelerator();
  const dse::TilingCase case6{6, 8, 16};

  std::cout << "=== Table II check: analytic vs simulated operand "
               "consumption (La, Tn=Tm=2, Case 6) ===\n";
  TextTable t({"layer", "quantity", "Table II", "simulated", "match"});
  bool all_ok = true;
  for (const auto& r : run.result.layers) {
    const dse::AccessCount a =
        dse::layer_access(r.spec, dse::LoopOrder::kLa, 2, 2, case6);
    const core::TimingModel tm{core::EdeaConfig::paper()};
    const std::int64_t n_tiles = tm.buffer_tile_count(r.spec);

    struct Row {
      const char* name;
      std::int64_t analytic;
      std::int64_t simulated;
    };
    const Row rows[] = {
        {"DWC act (Tr*Tc*D*NM/4)", a.dwc_activation,
         r.dataflow.dwc_window_elements},
        {"DWC wt (H*W*D)", a.dwc_weight * n_tiles,
         r.dataflow.dwc_weight_elements},
        {"PWC act (NM*D*K/16)", a.pwc_activation,
         r.dataflow.pwc_activation_elements},
        {"PWC wt (D*K)", a.pwc_weight * n_tiles,
         r.dataflow.pwc_weight_elements},
    };
    for (const Row& row : rows) {
      const bool ok = row.analytic == row.simulated;
      all_ok = all_ok && ok;
      t.add_row({std::to_string(r.spec.index), row.name,
                 TextTable::num(row.analytic), TextTable::num(row.simulated),
                 ok ? "yes" : "NO"});
    }
  }
  t.render(std::cout);

  std::cout << "\n(weight rows include the x N_tiles re-fetch factor for "
               "layers 0-2, whose 8x8-output buffer tiles force weight "
               "reloads; Table II itself assumes a single tile)\n";
  std::cout << (all_ok ? "ALL EQUATIONS MATCH THE SIMULATOR\n"
                       : "MISMATCH DETECTED\n");
  return all_ok ? 0 : 1;
}
