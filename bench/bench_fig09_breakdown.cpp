// bench_fig09_breakdown - regenerates Fig. 9: area (left) and power
// (right) breakdown of the accelerator, plus the Fig. 8 layout-level
// sanity checks (total area, PWC:DWC area ratio vs PE ratio).
#include <iostream>

#include "core/config.hpp"
#include "model/area_model.hpp"
#include "model/paper_data.hpp"
#include "model/power_model.hpp"
#include "nn/mobilenet.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;
  using model::AreaModel;

  const AreaModel area = AreaModel::paper();
  const core::EdeaConfig cfg = core::EdeaConfig::paper();

  std::cout << "=== Fig. 8: layout ===\n";
  std::cout << "die: " << model::kPaperDieWidthUm << " um x "
            << model::kPaperDieHeightUm << " um = "
            << TextTable::num(model::kPaperDieWidthUm *
                                  model::kPaperDieHeightUm / 1e6,
                              3)
            << " mm^2 (paper total: 0.58 mm^2)\n";
  std::cout << "PWC:DWC area ratio: "
            << TextTable::num(area.pwc_engine_mm2() / area.dwc_engine_mm2(),
                              2)
            << "x vs PE ratio "
            << TextTable::num(static_cast<double>(cfg.pwc_mac_count()) /
                                  cfg.dwc_mac_count(),
                              2)
            << "x (paper: ~1.7x vs 1.8x)\n\n";

  std::cout << "=== Fig. 9 (left): area breakdown ===\n";
  {
    const model::AreaBreakdown& b = area.breakdown();
    TextTable t({"component", "share", "area (mm^2)"});
    t.add_row({"PWC engine", TextTable::percent(b.pwc_engine, 2),
               TextTable::num(area.pwc_engine_mm2(), 4)});
    t.add_row({"DWC engine", TextTable::percent(b.dwc_engine, 2),
               TextTable::num(area.dwc_engine_mm2(), 4)});
    t.add_row({"Non-Conv units", TextTable::percent(b.nonconv, 2),
               TextTable::num(area.nonconv_mm2(), 4)});
    t.add_row({"on-chip buffers", TextTable::percent(b.buffers, 2),
               TextTable::num(area.total_mm2() * b.buffers, 4)});
    t.add_row({"control/interconnect", TextTable::percent(b.control, 2),
               TextTable::num(area.total_mm2() * b.control, 4)});
    t.add_row({"clock", TextTable::percent(b.clock, 2),
               TextTable::num(area.total_mm2() * b.clock, 4)});
    t.render(std::cout);
  }

  std::cout << "\n=== Fig. 9 (right): power breakdown ===\n";
  {
    const model::PowerBreakdown p{};
    TextTable t({"component", "share (paper)"});
    t.add_row({"PWC engine", TextTable::percent(p.pwc_engine, 2)});
    t.add_row({"DWC engine", TextTable::percent(p.dwc_engine, 2)});
    t.add_row({"Non-Conv units", TextTable::percent(p.nonconv, 2)});
    t.add_row({"intermediate buffer", TextTable::percent(
                                          p.intermediate_buffer, 2)});
    t.add_row({"weight buffers", TextTable::percent(p.weight_buffers, 2)});
    t.add_row({"clock tree (others)", TextTable::percent(p.clock_tree, 2)});
    t.add_row({"offline buffer", TextTable::percent(p.offline_buffer, 2)});
    t.render(std::cout);
  }

  std::cout << "\n=== model cross-check: average power decomposition ===\n";
  {
    // Our calibrated model splits average power into an idle floor plus
    // per-engine switching; compare the engine shares against Fig. 9.
    const model::PowerModel pm = model::PowerModel::paper_calibrated();
    const auto points = model::paper_calibrated_operating_points();
    const core::TimingModel tm(cfg);
    const auto specs = nn::mobilenet_dsc_specs();
    double t_total = 0.0, e_total = 0.0, e_dwc = 0.0, e_pwc = 0.0;
    for (int i = 0; i < model::kPaperLayerCount; ++i) {
      const auto& op = points[static_cast<std::size_t>(i)];
      const double t_ns =
          tm.layer_timing(specs[static_cast<std::size_t>(i)]).time_ns(1.0);
      t_total += t_ns;
      e_total += pm.power_mw(op) * t_ns;
      e_dwc += pm.c_dwc_mw() * op.duty_dwc * op.act_dwc * t_ns;
      e_pwc += pm.c_pwc_mw() * op.duty_pwc * op.act_pwc * t_ns;
    }
    TextTable t({"quantity", "model", "paper"});
    t.add_row({"average power (mW)", TextTable::num(e_total / t_total, 2),
               "~90 (derived from Figs. 12/13)"});
    t.add_row({"PWC switching share", TextTable::percent(e_pwc / e_total, 2),
               "66.23% (incl. engine clock load)"});
    t.add_row({"DWC switching share", TextTable::percent(e_dwc / e_total, 2),
               "15.70% (incl. engine clock load)"});
    t.add_row({"idle floor share",
               TextTable::percent(1.0 - (e_dwc + e_pwc) / e_total, 2),
               "registers/buffers/clock"});
    t.render(std::cout);
    std::cout << "note: Fig. 9 attributes each engine's clock/register load "
                 "to the engine; our model lumps activity-independent power "
                 "into the idle floor (see EXPERIMENTS.md).\n";
  }
  return 0;
}
