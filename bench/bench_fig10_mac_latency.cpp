// bench_fig10_mac_latency - regenerates Fig. 10: per-layer MAC operations
// and total latency for all 13 DSC layers of MobileNetV1, from the
// cycle-accurate simulator (cross-checked against Eq. 1/2).
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const bench::MobileNetRun& run = bench::run_mobilenet_on_accelerator();

  std::cout << "=== Fig. 10: MAC operations and latency per layer ===\n";
  TextTable t({"layer", "ifmap", "stride", "MACs", "latency (ns)",
               "init share"});
  std::int64_t total_macs = 0, total_cycles = 0;
  for (const auto& r : run.result.layers) {
    total_macs += r.spec.total_macs();
    total_cycles += r.timing.total_cycles;
    t.add_row({std::to_string(r.spec.index),
               std::to_string(r.spec.in_rows) + "x" +
                   std::to_string(r.spec.in_cols) + "x" +
                   std::to_string(r.spec.in_channels),
               std::to_string(r.spec.stride),
               TextTable::num(r.spec.total_macs()),
               TextTable::num(r.time_ns(1.0), 0),
               TextTable::percent(
                   static_cast<double>(r.timing.init_cycles) /
                       static_cast<double>(r.timing.total_cycles),
                   1)});
  }
  t.add_row({"total", "", "", TextTable::num(total_macs),
             TextTable::num(static_cast<double>(total_cycles), 0), ""});
  t.render(std::cout);

  std::cout << "\nPaper observations reproduced:\n"
            << "  - layers 1, 3, 5, 11 dip in MACs (stride 2)\n"
            << "  - latency tracks MACs; layer 12 is the longest ("
            << TextTable::num(run.result.layers[12].time_ns(1.0), 0)
            << " ns) because the 9-cycle initiation amortizes worst there\n";
  return 0;
}
