// bench_ablation_networks - the paper's closing claim ("the accelerator is
// also suitable for other DSC-based networks"), quantified: runs MobileNetV1
// width-multiplier variants and a custom 6-layer DSC network through the
// cycle-accurate accelerator, and re-runs the Sec. II design space
// exploration per network to confirm the Case-6 configuration stays optimal.
#include <iostream>

#include "core/accelerator.hpp"
#include "dse/explorer.hpp"
#include "nn/model_zoo.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace edea;

struct NetReport {
  std::string name;
  std::int64_t macs = 0;
  std::int64_t cycles = 0;
  double avg_gops = 0.0;
  double min_util = 1.0;
  bool bit_exact = false;
  std::string dse_choice;
};

NetReport run_network(const std::string& name,
                      const std::vector<nn::DscLayerSpec>& specs,
                      std::uint64_t seed) {
  NetReport rep;
  rep.name = name;

  const auto layers = nn::make_random_quant_network(specs, seed);
  Rng rng(seed ^ 0xABCD);
  nn::Int8Tensor input(nn::Shape{specs.front().in_rows,
                                 specs.front().in_cols,
                                 specs.front().in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }

  core::EdeaAccelerator accel;
  const core::NetworkRunResult run = accel.run_network(layers, input);

  nn::Int8Tensor ref = input;
  for (const auto& l : layers) ref = l.forward(ref);
  rep.bit_exact = run.output == ref;

  for (const auto& r : run.layers) {
    rep.macs += r.spec.total_macs();
    rep.cycles += r.timing.total_cycles;
    rep.min_util = std::min(rep.min_util, r.dwc_lane_utilization());
    rep.min_util = std::min(rep.min_util, r.pwc_lane_utilization());
  }
  rep.avg_gops = run.average_throughput_gops(1.0);

  dse::Explorer explorer(specs);
  rep.dse_choice = explorer.explore().best().label();
  return rep;
}

}  // namespace

int main() {
  std::cout << "=== Other DSC networks on the EDEA configuration ===\n";
  TextTable t({"network", "MACs", "cycles", "avg GOPS", "min lane util",
               "bit-exact", "DSE winner"});

  std::vector<std::pair<std::string, std::vector<nn::DscLayerSpec>>> nets;
  for (const double alpha : {0.25, 0.5, 1.0}) {
    nn::MobileNetVariant v;
    v.width_multiplier = alpha;
    nets.emplace_back(v.name(), nn::mobilenet_variant_specs(v));
  }
  nets.emplace_back("EdeaNet-64 (custom)", nn::edeanet_specs());
  // ImageNet geometry (112x112 post-stem) at quarter width: exercises the
  // many-buffer-tile regime (196 tiles on the first layer).
  nets.emplace_back("MobileNetV1-0.25x @112 (ImageNet)",
                    nn::mobilenet_variant_specs(nn::MobileNetVariant{
                        0.25, 112, 32}));

  std::uint64_t seed = 1000;
  for (const auto& [name, specs] : nets) {
    const NetReport rep = run_network(name, specs, seed++);
    t.add_row({rep.name, TextTable::num(rep.macs), TextTable::num(rep.cycles),
               TextTable::num(rep.avg_gops, 1),
               TextTable::percent(rep.min_util, 1),
               rep.bit_exact ? "yes" : "NO !!", rep.dse_choice});
  }
  t.render(std::cout);

  std::cout << "\nEvery 8/16-aligned DSC network keeps 100% lane "
               "utilization; smaller variants lose throughput only to the "
               "9-cycle initiation (their K/16 loops are shorter). The DSE "
               "winner stays La/Tn=Tm=2/Case6 across all of them.\n";
  return 0;
}
