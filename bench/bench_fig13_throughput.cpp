// bench_fig13_throughput - regenerates Fig. 13: per-layer throughput in
// GOPS. The paper's series is exactly 1024 (layers 0-4), 973.5 (5-10) and
// 905.6 (11-12); the cycle-accurate simulator reproduces it bit-for-bit
// because throughput is a pure function of Eq. 1/2.
#include <iostream>

#include "bench_common.hpp"
#include "model/paper_data.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const bench::MobileNetRun& run = bench::run_mobilenet_on_accelerator();

  std::cout << "=== Fig. 13: throughput per layer (GOPS @ 1 GHz) ===\n";
  TextTable t({"layer", "simulated", "paper", "rel. error"});
  for (const auto& r : run.result.layers) {
    const double sim = r.throughput_gops(1.0);
    const double paper =
        model::kPaperThroughputGops[static_cast<std::size_t>(r.spec.index)];
    t.add_row({std::to_string(r.spec.index), TextTable::num(sim, 2),
               TextTable::num(paper, 1),
               TextTable::percent(relative_error(sim, paper), 3)});
  }
  const double avg = run.result.average_throughput_gops(1.0);
  t.add_row({"average", TextTable::num(avg, 2),
             TextTable::num(model::kPaperAvgThroughputGops, 2),
             TextTable::percent(
                 relative_error(avg, model::kPaperAvgThroughputGops), 3)});
  t.render(std::cout);

  std::cout << "\nPeak throughput: "
            << TextTable::num(
                   [&] {
                     double peak = 0.0;
                     for (const auto& r : run.result.layers) {
                       peak = std::max(peak, r.throughput_gops(1.0));
                     }
                     return peak;
                   }(),
                   2)
            << " GOPS (paper: 1024 GOPS; 512 PWC MACs x 2 ops @ 1 GHz)\n";
  return 0;
}
