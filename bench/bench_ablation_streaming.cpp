// bench_ablation_streaming - ablation of the paper's two architectural
// choices, run layer by layer over MobileNetV1:
//   1. direct data transfer (on-chip intermediate buffer) vs external
//      round trip  -> external activation traffic,
//   2. parallel dual engines vs serialized DWC-then-PWC -> latency.
#include <iostream>

#include "baseline/serialized_accelerator.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const bench::MobileNetRun& run = bench::run_mobilenet_on_accelerator();
  baseline::SerializedDscAccelerator serial;

  // Reconstruct the chain input for the baseline run.
  nn::SyntheticCifar data(bench::kBenchSeed ^ 0x5eed);
  nn::Int8Tensor x =
      run.qnet->quantize_input(run.net->forward_stem(data.sample(0).image));

  std::cout << "=== Ablation: dual-engine streaming vs serialized "
               "round-trip ===\n";
  TextTable t({"layer", "EDEA cycles", "serial cycles", "speedup",
               "EDEA ext act", "serial ext act", "traffic saved"});
  std::int64_t c_fast = 0, c_slow = 0, a_fast = 0, a_slow = 0;
  for (std::size_t i = 0; i < run.result.layers.size(); ++i) {
    const auto& fast = run.result.layers[i];
    const auto slow = serial.run_layer(run.qnet->blocks()[i], x);
    x = slow.common.output;

    const auto fast_act =
        fast.external.accesses(arch::TrafficClass::kActivation);
    const auto slow_act =
        slow.common.external.accesses(arch::TrafficClass::kActivation);
    c_fast += fast.timing.total_cycles;
    c_slow += slow.common.timing.total_cycles;
    a_fast += fast_act;
    a_slow += slow_act;
    t.add_row(
        {std::to_string(i), TextTable::num(fast.timing.total_cycles),
         TextTable::num(slow.common.timing.total_cycles),
         TextTable::num(static_cast<double>(slow.common.timing.total_cycles) /
                            static_cast<double>(fast.timing.total_cycles),
                        3) +
             "x",
         TextTable::num(fast_act), TextTable::num(slow_act),
         TextTable::percent(1.0 - static_cast<double>(fast_act) /
                                      static_cast<double>(slow_act),
                            1)});
  }
  t.add_row({"total", TextTable::num(c_fast), TextTable::num(c_slow),
             TextTable::num(static_cast<double>(c_slow) /
                                static_cast<double>(c_fast),
                            3) +
                 "x",
             TextTable::num(a_fast), TextTable::num(a_slow),
             TextTable::percent(1.0 - static_cast<double>(a_fast) /
                                          static_cast<double>(a_slow),
                                1)});
  t.render(std::cout);

  std::cout << "\nBoth designs are bit-exact; the differences above are "
               "purely architectural (parallel engines hide the whole DWC "
               "phase; the intermediate buffer removes 2*N*M*D external "
               "accesses per layer, cf. Fig. 3).\n";
  return 0;
}
