// bench_ablation_streaming - ablation of the paper's two architectural
// choices, run layer by layer over MobileNetV1:
//   1. direct data transfer (on-chip intermediate buffer) vs external
//      round trip  -> external activation traffic,
//   2. parallel dual engines vs serialized DWC-then-PWC -> latency.
//
// Both dataflows are driven through the backend registry ("edea" vs
// "serialized", core/backend.hpp) on the identical quantized network -
// outputs are bit-exact across the two (the backend contract), so every
// difference below is purely architectural.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace edea;

  const bench::MobileNetRun& fast_run = bench::run_mobilenet_on_backend("edea");
  const bench::MobileNetRun& slow_run =
      bench::run_mobilenet_on_backend("serialized");

  std::cout << "=== Ablation: dual-engine streaming vs serialized "
               "round-trip ===\n";
  const bool bit_exact = fast_run.result.output.storage() ==
                         slow_run.result.output.storage();
  std::cout << "final outputs bit-identical across backends: "
            << (bit_exact ? "YES" : "NO !!") << "\n";

  TextTable t({"layer", "EDEA cycles", "serial cycles", "speedup",
               "EDEA ext act", "serial ext act", "traffic saved"});
  std::int64_t c_fast = 0, c_slow = 0, a_fast = 0, a_slow = 0;
  for (std::size_t i = 0; i < fast_run.result.layers.size(); ++i) {
    const auto& fast = fast_run.result.layers[i];
    const auto& slow = slow_run.result.layers[i];

    const auto fast_act =
        fast.external.accesses(arch::TrafficClass::kActivation);
    const auto slow_act =
        slow.external.accesses(arch::TrafficClass::kActivation);
    c_fast += fast.timing.total_cycles;
    c_slow += slow.timing.total_cycles;
    a_fast += fast_act;
    a_slow += slow_act;
    t.add_row(
        {std::to_string(i), TextTable::num(fast.timing.total_cycles),
         TextTable::num(slow.timing.total_cycles),
         TextTable::num(static_cast<double>(slow.timing.total_cycles) /
                            static_cast<double>(fast.timing.total_cycles),
                        3) +
             "x",
         TextTable::num(fast_act), TextTable::num(slow_act),
         TextTable::percent(1.0 - static_cast<double>(fast_act) /
                                      static_cast<double>(slow_act),
                            1)});
  }
  t.add_row({"total", TextTable::num(c_fast), TextTable::num(c_slow),
             TextTable::num(static_cast<double>(c_slow) /
                                static_cast<double>(c_fast),
                            3) +
                 "x",
             TextTable::num(a_fast), TextTable::num(a_slow),
             TextTable::percent(1.0 - static_cast<double>(a_fast) /
                                          static_cast<double>(a_slow),
                                1)});
  t.render(std::cout);

  std::cout << "\nBoth designs are bit-exact; the differences above are "
               "purely architectural (parallel engines hide the whole DWC "
               "phase; the intermediate buffer removes 2*N*M*D external "
               "accesses per layer, cf. Fig. 3).\n";
  return bit_exact ? 0 : 1;
}
