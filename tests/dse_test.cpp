// Tests for the design space exploration (Sec. II): Table I cases, Table II
// equations, Fig. 2 orderings, Fig. 3 reduction percentages (15.4%, 46.9%,
// 34.7%), and the selection of the paper's configuration.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "dse/explorer.hpp"
#include "nn/mobilenet.hpp"
#include "nn/model_zoo.hpp"
#include "util/check.hpp"

namespace edea::dse {
namespace {

std::vector<nn::DscLayerSpec> mobilenet_specs() {
  const auto arr = nn::mobilenet_dsc_specs();
  return {arr.begin(), arr.end()};
}

nn::DscLayerSpec spec_of(int rows, int ch, int stride, int out_ch) {
  nn::DscLayerSpec s;
  s.in_rows = rows;
  s.in_cols = rows;
  s.in_channels = ch;
  s.stride = stride;
  s.out_channels = out_ch;
  return s;
}

// ---------------------------------------------------------------- Table I ---

TEST(TableI, SixCasesAsPublished) {
  ASSERT_EQ(kTableICases.size(), 6u);
  EXPECT_EQ(kTableICases[0].td, 4);
  EXPECT_EQ(kTableICases[0].tk, 4);
  EXPECT_EQ(kTableICases[2].td, 4);
  EXPECT_EQ(kTableICases[2].tk, 16);
  EXPECT_EQ(kTableICases[5].td, 8);
  EXPECT_EQ(kTableICases[5].tk, 16);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(kTableICases[i].id, static_cast<int>(i) + 1);
  }
}

TEST(ExplorationGroups, FourGroups) {
  ASSERT_EQ(kExplorationGroups.size(), 4u);
  EXPECT_EQ(loop_order_name(LoopOrder::kLa), "La");
  EXPECT_EQ(loop_order_name(LoopOrder::kLb), "Lb");
}

// --------------------------------------------------------- PE array sizes ---

TEST(PeArraySize, TableIIEquations) {
  // DWC = Td*H*W*Tn*Tm, PWC = Td*Tk*Tn*Tm.
  const PeArraySize s = pe_array_size(TilingCase{6, 8, 16}, 2, 2);
  EXPECT_EQ(s.dwc, 288);
  EXPECT_EQ(s.pwc, 512);
  EXPECT_EQ(s.total(), 800);  // the fabricated configuration
}

TEST(PeArraySize, LinearInTilingParameters) {
  // Fig. 2a: "linear relationship with the tiling size Tn, Tm, Td, Tk".
  const PeArraySize base = pe_array_size(TilingCase{1, 4, 4}, 1, 1);
  EXPECT_EQ(pe_array_size(TilingCase{1, 8, 4}, 1, 1).total(),
            2 * base.total());
  EXPECT_EQ(pe_array_size(TilingCase{1, 4, 4}, 2, 2).total(),
            4 * base.total());
  const PeArraySize tk2 = pe_array_size(TilingCase{1, 4, 8}, 1, 1);
  EXPECT_EQ(tk2.pwc, 2 * base.pwc);
  EXPECT_EQ(tk2.dwc, base.dwc);
}

TEST(PeArraySize, MaximumIs800AcrossTheSweep) {
  std::int64_t mx = 0;
  for (const auto& g : kExplorationGroups) {
    for (const auto& c : kTableICases) {
      mx = std::max(mx, pe_array_size(c, g.tn, g.tn).total());
    }
  }
  EXPECT_EQ(mx, 800);  // Fig. 2a's y-axis tops out at 800
}

// ----------------------------------------------------- Table II accesses ---

TEST(LayerAccess, TableIIEquationsForLaTn2) {
  // Layer 6 (4x4x512 s1 -> 512), La, Tn=Tm=2, Case 6:
  const nn::DscLayerSpec spec = spec_of(4, 512, 1, 512);
  const AccessCount a =
      layer_access(spec, LoopOrder::kLa, 2, 2, TilingCase{6, 8, 16});
  // DWC activation: Tr*Tc*D*NM/(TnTm) = 4*4*512*(16/4).
  EXPECT_EQ(a.dwc_activation, 4LL * 4 * 512 * 4);
  // DWC weight: H*W*D.
  EXPECT_EQ(a.dwc_weight, 9LL * 512);
  // PWC activation: N*M*D*K/Tk.
  EXPECT_EQ(a.pwc_activation, 16LL * 512 * 32);
  // PWC weight: D*K.
  EXPECT_EQ(a.pwc_weight, 512LL * 512);
}

TEST(LayerAccess, StrideTwoUsesLargerWindow) {
  const nn::DscLayerSpec s2 = spec_of(8, 64, 2, 64);
  const AccessCount a =
      layer_access(s2, LoopOrder::kLa, 2, 2, TilingCase{6, 8, 16});
  // Tr = Tc = (2-1)*2+3 = 5; spatial tiles = (4/2)^2 = 4.
  EXPECT_EQ(a.dwc_activation, 5LL * 5 * 4 * 64);
}

TEST(LayerAccess, LaHasHigherActivationLbHigherWeight) {
  // The paper's Fig. 2b observation, for every case and both tile sizes.
  const auto specs = mobilenet_specs();
  for (const auto& tcase : kTableICases) {
    for (const int tn : {1, 2}) {
      const AccessCount la =
          network_access(specs, LoopOrder::kLa, tn, tn, tcase);
      const AccessCount lb =
          network_access(specs, LoopOrder::kLb, tn, tn, tcase);
      EXPECT_GE(la.activation(), lb.activation())
          << "case " << tcase.id << " tn " << tn;
      EXPECT_GE(lb.weight(), la.weight())
          << "case " << tcase.id << " tn " << tn;
    }
  }
}

TEST(LayerAccess, WeightAccessDominatesForMobileNetUnderLa) {
  // "For the MobileNetV1 architecture, weight access count significantly
  // outweighs activation access count" - under the weight-minimal order
  // La this shows up as weights being the larger share for the deep
  // layers; network-wide Lb weight traffic dwarfs everything.
  const auto specs = mobilenet_specs();
  const AccessCount lb =
      network_access(specs, LoopOrder::kLb, 2, 2, TilingCase{6, 8, 16});
  EXPECT_GT(lb.weight(), lb.activation());
  // Deep layers (K = D = 512...1024): weights outweigh activations even
  // under La.
  const AccessCount deep = layer_access(spec_of(2, 1024, 1, 1024),
                                        LoopOrder::kLa, 2, 2,
                                        TilingCase{6, 8, 16});
  EXPECT_GT(deep.weight(), deep.activation());
}

TEST(LayerAccess, LargerTkReducesLaActivationTraffic) {
  const auto specs = mobilenet_specs();
  const AccessCount tk4 =
      network_access(specs, LoopOrder::kLa, 2, 2, TilingCase{4, 8, 4});
  const AccessCount tk16 =
      network_access(specs, LoopOrder::kLa, 2, 2, TilingCase{6, 8, 16});
  EXPECT_GT(tk4.activation(), tk16.activation());
}

TEST(LayerAccess, AccumulationOperator) {
  AccessCount a;
  a.dwc_activation = 1;
  a.pwc_weight = 2;
  AccessCount b;
  b.dwc_weight = 3;
  b.pwc_activation = 4;
  a += b;
  EXPECT_EQ(a.total(), 10);
  EXPECT_EQ(a.activation(), 5);
  EXPECT_EQ(a.weight(), 5);
}

// ---------------------------------------------------------------- explorer ---

TEST(Explorer, SelectsThePaperConfiguration) {
  // "Overall, loop order La with Tn=Tm=2, in Case6 (Td=8, Tk=16) achieves
  // the lowest access count being our preferred choice."
  Explorer explorer(mobilenet_specs());
  const ExplorationResult r = explorer.explore();
  EXPECT_EQ(r.points.size(), 24u);
  const DesignPoint& best = r.best();
  EXPECT_EQ(best.group.order, LoopOrder::kLa);
  EXPECT_EQ(best.group.tn, 2);
  EXPECT_EQ(best.tcase.id, 6);
  EXPECT_EQ(best.pe.total(), 800);
}

TEST(Explorer, BestPointHasMinimalAccessCount) {
  Explorer explorer(mobilenet_specs());
  const ExplorationResult r = explorer.explore();
  for (const DesignPoint& p : r.points) {
    EXPECT_GE(p.access.total(), r.best().access.total());
  }
}

TEST(Explorer, LabelIsHumanReadable) {
  Explorer explorer(mobilenet_specs());
  const ExplorationResult r = explorer.explore();
  EXPECT_NE(r.best().label().find("La"), std::string::npos);
  EXPECT_NE(r.best().label().find("Case6"), std::string::npos);
}

TEST(Explorer, RejectsEmptyNetwork) {
  EXPECT_THROW(Explorer({}), PreconditionError);
}

// ---------------------------------------------------- model monotonicity ---

TEST(LayerAccess, MonotoneInOutputChannels) {
  // More kernels -> strictly more PWC traffic, identical DWC traffic.
  const TilingCase c6{6, 8, 16};
  const AccessCount k64 =
      layer_access(spec_of(8, 64, 1, 64), LoopOrder::kLa, 2, 2, c6);
  const AccessCount k256 =
      layer_access(spec_of(8, 64, 1, 256), LoopOrder::kLa, 2, 2, c6);
  EXPECT_GT(k256.pwc_activation, k64.pwc_activation);
  EXPECT_GT(k256.pwc_weight, k64.pwc_weight);
  EXPECT_EQ(k256.dwc_activation, k64.dwc_activation);
  EXPECT_EQ(k256.dwc_weight, k64.dwc_weight);
}

TEST(LayerAccess, MonotoneInSpatialExtent) {
  const TilingCase c6{6, 8, 16};
  const AccessCount small =
      layer_access(spec_of(8, 64, 1, 64), LoopOrder::kLa, 2, 2, c6);
  const AccessCount large =
      layer_access(spec_of(16, 64, 1, 64), LoopOrder::kLa, 2, 2, c6);
  EXPECT_GT(large.activation(), small.activation());
  // Weight-stationary La: weights are independent of the spatial extent.
  EXPECT_EQ(large.weight(), small.weight());
}

TEST(LayerAccess, MonotoneInInputChannels) {
  const TilingCase c6{6, 8, 16};
  const AccessCount d64 =
      layer_access(spec_of(8, 64, 1, 64), LoopOrder::kLa, 2, 2, c6);
  const AccessCount d128 =
      layer_access(spec_of(8, 128, 1, 64), LoopOrder::kLa, 2, 2, c6);
  EXPECT_GT(d128.total(), d64.total());
}

TEST(LayerAccess, DwcSideIdenticalAcrossOrders) {
  // Both orders consume the same windows; they differ in residency only.
  const TilingCase c6{6, 8, 16};
  for (const int stride : {1, 2}) {
    const auto spec = spec_of(16, 32, stride, 64);
    const AccessCount la = layer_access(spec, LoopOrder::kLa, 2, 2, c6);
    const AccessCount lb = layer_access(spec, LoopOrder::kLb, 2, 2, c6);
    EXPECT_EQ(la.dwc_activation, lb.dwc_activation) << "stride " << stride;
  }
}

TEST(PeArraySize, ConsistentWithEdeaConfigCounts) {
  // The DSE PE model and the engine structural counts must agree for any
  // (Td, Tk, Tn, Tm) - they describe the same silicon.
  for (const auto& tcase : kTableICases) {
    for (const int tn : {1, 2}) {
      const PeArraySize pe = pe_array_size(tcase, tn, tn);
      core::EdeaConfig cfg;
      cfg.td = tcase.td;
      cfg.tk = tcase.tk;
      cfg.tn = tn;
      cfg.tm = tn;
      cfg.max_tile_out = 8;  // keep valid; irrelevant to MAC counts
      EXPECT_EQ(pe.dwc, cfg.dwc_mac_count());
      EXPECT_EQ(pe.pwc, cfg.pwc_mac_count());
    }
  }
}

// -------------------------------------------------------- Fig. 3 analysis ---

TEST(IntermediateAccess, PerLayerModel) {
  // Layer 2 of MobileNetV1 (16x16x128 s1 -> 128): the paper's 46.9% peak.
  const IntermediateAccessAnalysis a =
      intermediate_access(spec_of(16, 128, 1, 128));
  EXPECT_EQ(a.dwc_input, 18LL * 18 * 128);
  EXPECT_EQ(a.intermediate, 2LL * 16 * 16 * 128);
  EXPECT_EQ(a.pwc_output, 16LL * 16 * 128);
  EXPECT_NEAR(a.reduction(), 0.469, 0.0005);
}

TEST(IntermediateAccess, Layer11IsTheMinimum15_4Percent) {
  const IntermediateAccessAnalysis a =
      intermediate_access(spec_of(4, 512, 2, 1024));
  EXPECT_NEAR(a.reduction(), 0.154, 0.0005);
}

TEST(IntermediateAccess, MobileNetRangeMatchesPaper) {
  // "an access count reduction ranging from 15.4% to 46.9%".
  double lo = 1.0, hi = 0.0;
  for (const auto& spec : mobilenet_specs()) {
    const double red = intermediate_access(spec).reduction();
    lo = std::min(lo, red);
    hi = std::max(hi, red);
  }
  EXPECT_NEAR(lo, 0.154, 0.0005);
  EXPECT_NEAR(hi, 0.469, 0.0005);
}

TEST(IntermediateAccess, TotalReductionIs34_7Percent) {
  // "with a total access reduction of 34.7%".
  const IntermediateAccessTotals t =
      intermediate_access_totals(mobilenet_specs());
  EXPECT_NEAR(t.reduction(), 0.347, 0.0015);
}

TEST(IntermediateAccess, StreamingNeverIncreasesAccesses) {
  for (const auto& spec : mobilenet_specs()) {
    const IntermediateAccessAnalysis a = intermediate_access(spec);
    EXPECT_LT(a.streaming_total(), a.baseline_total());
    EXPECT_EQ(a.baseline_total() - a.streaming_total(), a.intermediate);
  }
}

// ------------------------------------------------ cross-backend sweeps ---

TEST(BackendSweep, SimulatesEveryRequestedDataflowAndPicksTheFastest) {
  // The compact zoo network keeps the simulated sweep quick; the ordering
  // claims are the same ones backend_test pins on every network.
  Explorer explorer(nn::edeanet_specs());
  const BackendSweepResult result =
      explorer.explore_backends({"edea", "serialized"});

  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_EQ(result.outcomes[0].backend, "edea");
  EXPECT_EQ(result.outcomes[1].backend, "serialized");
  ASSERT_TRUE(result.outcomes[0].ok) << result.outcomes[0].error;
  ASSERT_TRUE(result.outcomes[1].ok) << result.outcomes[1].error;

  // Bit-exact outputs, the Fig. 3 latency ordering, EDEA selected.
  EXPECT_EQ(result.outcomes[0].summary.output_hash,
            result.outcomes[1].summary.output_hash);
  EXPECT_LT(result.outcomes[0].summary.total_cycles,
            result.outcomes[1].summary.total_cycles);
  EXPECT_EQ(result.fastest_index, 0u);

  // Deterministic: a parallel sweep returns the identical outcomes.
  const BackendSweepResult parallel =
      explorer.explore_backends({"edea", "serialized"},
                                core::EdeaConfig::paper(), 1, 2);
  ASSERT_EQ(parallel.outcomes.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parallel.outcomes[i].summary,
              result.outcomes[i].summary);
  }
  EXPECT_EQ(parallel.fastest_index, result.fastest_index);
}

TEST(BackendSweep, InfeasibleConfigurationsAreDataNotErrors) {
  Explorer explorer(nn::edeanet_specs());
  core::EdeaConfig config;
  config.kernel = 5;  // cannot map the 3x3 network on either dataflow
  const BackendSweepResult result =
      explorer.explore_backends({"edea", "serialized"}, config);
  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_FALSE(result.outcomes[0].ok);
  EXPECT_FALSE(result.outcomes[1].ok);
  EXPECT_FALSE(result.outcomes[0].error.empty());
}

TEST(BackendSweep, RejectsUnknownIdsAndEmptyLists) {
  Explorer explorer(nn::edeanet_specs());
  EXPECT_THROW((void)explorer.explore_backends({}), PreconditionError);
  EXPECT_THROW((void)explorer.explore_backends({"edea", "warp-drive"}),
               PreconditionError);
}

}  // namespace
}  // namespace edea::dse
