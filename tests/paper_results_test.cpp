// The reproduction gate: end-to-end checks that the full simulated system
// regenerates the paper's published results (within the tolerances recorded
// in EXPERIMENTS.md). This test runs the real quantized MobileNetV1 through
// the cycle-accurate accelerator - it is the slowest suite in the repo.
#include <gtest/gtest.h>

#include <memory>

#include "core/accelerator.hpp"
#include "model/paper_data.hpp"
#include "model/power_model.hpp"
#include "nn/dataset.hpp"
#include "nn/mobilenet.hpp"

namespace edea {
namespace {

/// Shared fixture: one quantized MobileNetV1 and one accelerated run.
class PaperReproduction : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new nn::FloatMobileNet(20240101);
    nn::SyntheticCifar data(7);
    std::vector<nn::FloatTensor> images;
    for (int i = 0; i < 4; ++i) images.push_back(data.sample(i).image);
    cal_ = new nn::CalibrationResult(nn::calibrate(*net_, images));
    qnet_ = new nn::QuantMobileNet(*net_, *cal_);

    accel_ = new core::EdeaAccelerator();
    const nn::FloatTensor stem = net_->forward_stem(images[0]);
    const nn::Int8Tensor q_in = qnet_->quantize_input(stem);
    run_ = new core::NetworkRunResult(
        accel_->run_network(qnet_->blocks(), q_in));
    golden_input_ = new nn::Int8Tensor(q_in);
  }

  static void TearDownTestSuite() {
    delete run_;
    delete accel_;
    delete qnet_;
    delete cal_;
    delete net_;
    delete golden_input_;
    run_ = nullptr;
    accel_ = nullptr;
    qnet_ = nullptr;
    cal_ = nullptr;
    net_ = nullptr;
    golden_input_ = nullptr;
  }

  static nn::FloatMobileNet* net_;
  static nn::CalibrationResult* cal_;
  static nn::QuantMobileNet* qnet_;
  static core::EdeaAccelerator* accel_;
  static core::NetworkRunResult* run_;
  static nn::Int8Tensor* golden_input_;
};

nn::FloatMobileNet* PaperReproduction::net_ = nullptr;
nn::CalibrationResult* PaperReproduction::cal_ = nullptr;
nn::QuantMobileNet* PaperReproduction::qnet_ = nullptr;
core::EdeaAccelerator* PaperReproduction::accel_ = nullptr;
core::NetworkRunResult* PaperReproduction::run_ = nullptr;
nn::Int8Tensor* PaperReproduction::golden_input_ = nullptr;

TEST_F(PaperReproduction, AcceleratorBitExactOnAllThirteenLayers) {
  const nn::Int8Tensor ref = qnet_->forward_dsc(*golden_input_);
  EXPECT_EQ(run_->output, ref);
}

TEST_F(PaperReproduction, PerLayerLatencyMatchesFig10) {
  const std::array<std::int64_t, 13> expected_ns{
      4672, 4384, 8768, 4240, 8480, 4384, 8768,
      8768, 8768, 8768, 8768, 4672, 9344};
  ASSERT_EQ(run_->layers.size(), 13u);
  for (std::size_t i = 0; i < 13; ++i) {
    EXPECT_EQ(run_->layers[i].timing.total_cycles, expected_ns[i])
        << "layer " << i;
  }
}

TEST_F(PaperReproduction, PerLayerThroughputMatchesFig13) {
  for (std::size_t i = 0; i < 13; ++i) {
    EXPECT_NEAR(run_->layers[i].throughput_gops(1.0),
                model::kPaperThroughputGops[i], 0.1)
        << "layer " << i;
  }
}

TEST_F(PaperReproduction, AverageThroughputNearPaper) {
  EXPECT_NEAR(run_->average_throughput_gops(1.0),
              model::kPaperAvgThroughputGops,
              model::kPaperAvgThroughputGops * 0.005);
}

TEST_F(PaperReproduction, AllLayersKeepFullLaneUtilization) {
  // The headline architectural claim ("100% PE utilization in all DSC
  // layers") - every MobileNetV1 layer is aligned, so both engines never
  // idle a lane during an active cycle.
  for (std::size_t i = 0; i < 13; ++i) {
    EXPECT_DOUBLE_EQ(run_->layers[i].dwc_lane_utilization(), 1.0)
        << "layer " << i;
    EXPECT_DOUBLE_EQ(run_->layers[i].pwc_lane_utilization(), 1.0)
        << "layer " << i;
  }
}

TEST_F(PaperReproduction, MacCountsMatchLayerSpecs) {
  for (std::size_t i = 0; i < 13; ++i) {
    const auto& r = run_->layers[i];
    EXPECT_EQ(r.dwc_activity.useful_macs, r.spec.dwc_macs()) << "layer " << i;
    EXPECT_EQ(r.pwc_activity.useful_macs, r.spec.pwc_macs()) << "layer " << i;
  }
}

TEST_F(PaperReproduction, NoIntermediateActivationLeavesTheChip) {
  // Direct-transfer property at network scale: activation writes ==
  // ofmap volumes only.
  for (std::size_t i = 0; i < 13; ++i) {
    const auto& r = run_->layers[i];
    const std::int64_t ofmap = std::int64_t{1} * r.spec.out_rows() *
                               r.spec.out_cols() * r.spec.out_channels;
    EXPECT_EQ(r.external.counter(arch::TrafficClass::kActivation).writes,
              ofmap)
        << "layer " << i;
  }
}

TEST_F(PaperReproduction, AccumulatorsStayWithin24BitsOnEveryLayer) {
  // Fig. 6 carries int24 partial sums; on the realistic quantized network
  // every layer (including the 1024-deep dot products of layers 11/12)
  // must respect that envelope.
  for (std::size_t i = 0; i < 13; ++i) {
    EXPECT_TRUE(run_->layers[i].within_24bit_accumulator())
        << "layer " << i << " max |psum| = " << run_->layers[i].max_abs_psum;
    EXPECT_GT(run_->layers[i].max_abs_psum, 0) << "layer " << i;
  }
}

TEST_F(PaperReproduction, SparsityGrowsWithDepth) {
  // Fig. 11's qualitative trend: deeper layers have more zeros. Compare
  // the mean of the first three layers against the last three.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 3; ++i) {
    early += run_->layers[static_cast<std::size_t>(i)]
                 .pwc_input_zero_fraction;
    late += run_->layers[static_cast<std::size_t>(10 + i)]
                .pwc_input_zero_fraction;
  }
  EXPECT_GT(late, early);
}

TEST_F(PaperReproduction, SimulatedPowerSeriesHasPaperShape) {
  // Measured-sparsity mode: power must fall within the silicon's range and
  // follow the sparsity trend (earlier layers hotter than the sparsest
  // deep layers).
  const model::PowerModel pm = model::PowerModel::paper_calibrated();
  std::array<double, 13> power{};
  for (std::size_t i = 0; i < 13; ++i) {
    const auto& r = run_->layers[i];
    model::OperatingPoint op;
    op.duty_dwc = r.dwc_duty();
    op.duty_pwc = r.pwc_duty();
    op.act_dwc = 1.0 - r.dwc_input_zero_fraction;
    op.act_pwc = 1.0 - r.pwc_input_zero_fraction;
    power[i] = pm.power_mw(op);
    EXPECT_GT(power[i], pm.c_idle_mw());
    EXPECT_LT(power[i], 160.0) << "layer " << i;
  }
}

TEST_F(PaperReproduction, QuantizedClassifierAgreesWithFloat) {
  // End-to-end fidelity: the dequantized accelerated features drive the
  // same head as the float network; logits must correlate strongly.
  nn::SyntheticCifar data(99);
  const nn::LabeledImage img = data.sample(2);
  const nn::FloatTensor stem = net_->forward_stem(img.image);
  const nn::FloatTensor float_feats = net_->forward_dsc(stem);
  const nn::Int8Tensor q = qnet_->forward_dsc(qnet_->quantize_input(stem));
  const nn::FloatTensor deq = qnet_->dequantize_output(q);
  const nn::FloatTensor logits_f = net_->forward_head(float_feats);
  const nn::FloatTensor logits_q = net_->forward_head(deq);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int i = 0; i < 10; ++i) {
    dot += logits_f(i) * logits_q(i);
    na += logits_f(i) * logits_f(i);
    nb += logits_q(i) * logits_q(i);
  }
  EXPECT_GT(dot / std::sqrt(na * nb), 0.8);
}

}  // namespace
}  // namespace edea
