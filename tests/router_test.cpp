// router_test - the cluster tier (service/router.hpp): consistent-hash
// routing across worker simulation servers. The acceptance criteria of
// the cluster PR are pinned directly:
//
//   * a routed ordered serve is byte-identical to a single-process stdio
//     serve of the same stream, for every versioned request corpus the
//     examples ship;
//   * unordered mode answers every request id exactly once with the same
//     payloads, in some completion order;
//   * killing a worker mid-stream (through a ChaosProxy) loses no reply,
//     duplicates no reply, and leaves the output byte-identical - failover
//     reroutes the dead worker's in-flight requests to the survivors;
//   * merged `stats` equals the single-process stats line and is
//     deterministic across identical runs;
//   * per-shard persisted caches merge into one file equal to what a
//     single process would have persisted.
#include "service/router.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/chaos_proxy.hpp"
#include "service/hash_ring.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/transport.hpp"
#include "util/check.hpp"

namespace edea::service {
namespace {

/// An in-process worker: a real SocketTransport serving real Sessions, so
/// the router talks to exactly the wire a spawned server process exposes.
struct LoopbackWorker {
  SimulationService svc;
  WorkloadCatalog catalog;
  SocketTransport transport;
  std::thread thread;

  explicit LoopbackWorker(SessionOptions session_options = SessionOptions())
      : transport(SocketTransportOptions{}) {
    thread = std::thread([this, session_options] {
      transport.serve([this, session_options](Stream& stream) {
        Session(svc, catalog, session_options).serve(stream);
      });
    });
  }

  ~LoopbackWorker() {
    transport.shutdown();
    if (thread.joinable()) thread.join();
  }
};

/// Routes `lines` through a ClusterRouter over a stdio stream and returns
/// the response lines.
std::vector<std::string> serve_routed(ClusterRouter& router,
                                      const std::vector<std::string>& lines,
                                      RouterSessionStats* stats_out = nullptr,
                                      Stream* custom_stream = nullptr) {
  std::ostringstream joined;
  for (const std::string& line : lines) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;
  StdioStream stdio(in, out);
  RouterSessionStats stats =
      router.serve(custom_stream != nullptr ? *custom_stream : stdio);
  if (stats_out != nullptr) *stats_out = stats;

  std::vector<std::string> responses;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) responses.push_back(line);
  return responses;
}

/// The single-process reference: one stdio Session against a fresh
/// service, the bytes every routed serve is compared to.
std::vector<std::string> serve_reference(
    const std::vector<std::string>& lines) {
  SimulationService svc;
  WorkloadCatalog catalog;
  std::ostringstream joined;
  for (const std::string& line : lines) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;
  StdioStream stream(in, out);
  Session(svc, catalog).serve(stream);

  std::vector<std::string> responses;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) responses.push_back(line);
  return responses;
}

std::vector<std::string> read_corpus(const std::string& name) {
  const std::string path = std::string(EDEA_EXAMPLES_DIR) + "/" + name;
  std::ifstream file(path);
  EDEA_REQUIRE(file.good(), "cannot open request corpus " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  return lines;
}

RouterOptions attach(const std::vector<const LoopbackWorker*>& workers) {
  RouterOptions options;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    options.workers.push_back(WorkerEndpoint{
        "shard" + std::to_string(i), "127.0.0.1", workers[i]->transport.port()});
  }
  return options;
}

/// N cheap distinct-key run lines (every one a miss wherever it lands, so
/// placement and rerouting cannot change a byte of any reply).
std::vector<std::string> distinct_runs(int count) {
  std::vector<std::string> lines;
  for (int i = 0; i < count; ++i) {
    lines.push_back("run mobilenet-0.25x seed=" + std::to_string(100 + i) +
                    " td=16");
  }
  return lines;
}

TEST(RouteKeyTest, PartitionsByEveryCacheKeyDimension) {
  const auto key_of = [](const std::string& line) {
    const ParsedLine parsed = parse_request_line(line, "edea", 1, 1, 1);
    EDEA_REQUIRE(parsed.kind == ParsedLine::Kind::kRun, "want a run line");
    return route_key(parsed.request);
  };
  const std::uint64_t base = key_of("run mobilenet-0.25x seed=3 td=16");
  EXPECT_EQ(key_of("run mobilenet-0.25x seed=3 td=16"), base)
      << "identical requests must land on the same shard";
  EXPECT_NE(key_of("run mobilenet-0.25x seed=4 td=16"), base);
  EXPECT_NE(key_of("run mobilenet-0.25x seed=3 td=32"), base);
  EXPECT_NE(key_of("run mobilenet-0.25x seed=3 td=16 batch=2"), base);
  EXPECT_NE(key_of("run mobilenet-0.25x seed=3 td=16 dilation=2"), base);
  EXPECT_NE(key_of("run mobilenet-0.25x seed=3 td=16 depth_multiplier=2"),
            base);
  EXPECT_NE(key_of("run mobilenet-0.25x seed=3 td=16 backend=serialized"),
            base);
  EXPECT_NE(key_of("run edeanet-64 seed=3 td=16"), base);
}

TEST(ClusterRouterTest, OrderedServeIsByteIdenticalToStdioForEveryCorpus) {
  // The tentpole acceptance criterion, over the same versioned request
  // corpora the CI loopback legs replay.
  for (const char* corpus :
       {"simulation_requests.txt", "simulation_requests_backends.txt",
        "simulation_requests_transforms.txt"}) {
    SCOPED_TRACE(corpus);
    const std::vector<std::string> lines = read_corpus(corpus);
    const std::vector<std::string> expected = serve_reference(lines);

    LoopbackWorker w0, w1, w2;
    ClusterRouter router(attach({&w0, &w1, &w2}));
    RouterSessionStats stats;
    EXPECT_EQ(serve_routed(router, lines, &stats), expected);
    EXPECT_EQ(stats.failovers, 0u);
    EXPECT_EQ(stats.retries, 0u);
  }
}

TEST(ClusterRouterTest, RepeatedServesAgainstWarmShardsTurnIntoHits) {
  // Same-key -> same-shard routing means a second identical session hits
  // every shard cache, mirroring a warm single process.
  const std::vector<std::string> lines = read_corpus("simulation_requests.txt");
  LoopbackWorker w0, w1;
  ClusterRouter router(attach({&w0, &w1}));
  (void)serve_routed(router, lines);

  std::vector<std::string> warm_lines = lines;
  warm_lines.push_back("stats");
  const std::vector<std::string> warm = serve_routed(router, warm_lines);
  ASSERT_FALSE(warm.empty());
  const std::string stats_line = warm.back();
  CacheStats merged;
  ASSERT_TRUE(parse_stats_line(stats_line, &merged)) << stats_line;
  EXPECT_EQ(merged.misses, 10u) << "all misses happened in the cold session";
  EXPECT_GE(merged.hits, 15u) << "warm session answers from shard caches";
}

TEST(ClusterRouterTest, UnorderedModeAnswersEveryIdExactlyOnce) {
  const std::vector<std::string> runs = distinct_runs(12);
  const std::vector<std::string> expected = serve_reference(runs);

  std::vector<std::string> lines;
  lines.push_back("mode unordered");
  lines.insert(lines.end(), runs.begin(), runs.end());
  lines.push_back("walk nowhere");  // protocol error, answered locally

  LoopbackWorker w0, w1, w2;
  ClusterRouter router(attach({&w0, &w1, &w2}));
  const std::vector<std::string> responses = serve_routed(router, lines);

  // Every line is id-prefixed; ids 1..14 appear exactly once.
  ASSERT_EQ(responses.size(), lines.size());
  std::map<std::uint64_t, std::string> by_id;
  for (const std::string& response : responses) {
    std::uint64_t id = 0;
    std::string rest;
    ASSERT_TRUE(parse_unordered_line(response, &id, &rest)) << response;
    EXPECT_TRUE(by_id.emplace(id, rest).second)
        << "id " << id << " answered twice";
  }
  ASSERT_EQ(by_id.size(), lines.size());
  EXPECT_EQ(by_id.at(1), "mode unordered");
  EXPECT_EQ(by_id.at(14).rfind("protocol-error ", 0), 0u) << by_id.at(14);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(by_id.at(i + 2), expected[i])
        << "unordered payloads must match the ordered reference";
  }
}

TEST(ClusterRouterTest, OrderedOptionRefusesUnorderedSwitch) {
  const std::vector<std::string> runs = distinct_runs(3);
  std::vector<std::string> lines;
  lines.push_back("mode unordered");
  lines.insert(lines.end(), runs.begin(), runs.end());

  LoopbackWorker w0, w1;
  RouterOptions options = attach({&w0, &w1});
  options.allow_unordered = false;
  ClusterRouter router(std::move(options));
  const std::vector<std::string> responses = serve_routed(router, lines);

  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0], "mode ordered") << "the switch is refused";
  EXPECT_EQ(std::vector<std::string>(responses.begin() + 1, responses.end()),
            serve_reference(runs));
}

TEST(ClusterRouterTest, BatchFramesAndProtocolErrorsMatchSessionBytes) {
  // Frames, frame violations, and malformed lines are all answered by the
  // router locally; the bytes must still equal the single-process serve.
  const std::vector<std::string> lines = {
      "batch-begin 2",
      "run mobilenet-0.25x seed=201 td=16",
      "run mobilenet-0.25x seed=202 td=16",
      "batch-end",
      "batch-end",                           // outside a frame
      "batch-begin 3",
      "run mobilenet-0.25x seed=203 td=16",
      "batch-end",                           // early: 1 of 3
      "walk nowhere",
      "batch-begin 1",
      "batch-begin 1",                       // nested
      "batch-end",
      "batch-begin 2",
      "run mobilenet-0.25x seed=204 td=16",  // truncated by EOF
  };
  const std::vector<std::string> expected = serve_reference(lines);
  LoopbackWorker w0, w1;
  ClusterRouter router(attach({&w0, &w1}));
  RouterSessionStats stats;
  EXPECT_EQ(serve_routed(router, lines, &stats), expected);
  EXPECT_EQ(stats.frames, 4u);
  EXPECT_EQ(stats.protocol_errors, 5u);
}

TEST(ClusterRouterTest, MergedStatsAreDeterministicAndMatchSingleProcess) {
  std::vector<std::string> lines = read_corpus("simulation_requests.txt");
  lines.push_back("stats");
  const std::vector<std::string> expected = serve_reference(lines);

  for (int repeat = 0; repeat < 2; ++repeat) {
    SCOPED_TRACE(repeat);
    LoopbackWorker w0, w1;
    ClusterRouter router(attach({&w0, &w1}));
    EXPECT_EQ(serve_routed(router, lines), expected)
        << "per-shard counters must merge to the single-process stats line";
  }
}

/// A stdio stream that fires a kill switch when the reader asks for line
/// `kill_before` - after every earlier line was read AND forwarded (the
/// router routes each request before reading the next line), so requests
/// routed to the killed worker are verifiably in flight or already
/// answered, never silently unread.
class KillSwitchStream : public Stream {
 public:
  KillSwitchStream(std::vector<std::string> lines, std::size_t kill_before,
                   ChaosProxy& proxy, std::ostringstream& out)
      : lines_(std::move(lines)),
        kill_before_(kill_before),
        proxy_(proxy),
        out_(out) {}

  bool read_line(std::string& line) override {
    if (next_ == kill_before_) proxy_.kill();
    if (next_ >= lines_.size()) return false;
    line = lines_[next_++];
    return true;
  }

  bool write_line(const std::string& line) override {
    out_ << line << "\n";
    return true;
  }

  bool write_lines(const std::vector<std::string>& lines) override {
    for (const std::string& line : lines) out_ << line << "\n";
    return true;
  }

 private:
  std::vector<std::string> lines_;
  std::size_t kill_before_;
  ChaosProxy& proxy_;
  std::ostringstream& out_;
  std::size_t next_ = 0;
};

TEST(ClusterRouterTest, KillingAWorkerMidStreamLosesAndDuplicatesNothing) {
  // Three workers; shard2 is reached through a chaos proxy that dies after
  // every request line has been read and routed. shard2's in-flight
  // requests are reroute onto the survivors; with all-distinct keys every
  // reply is a miss wherever it runs, so the output must still be
  // byte-identical to the single-process reference - which simultaneously
  // proves no reply was lost, duplicated, or reordered.
  const std::vector<std::string> lines = distinct_runs(48);
  const std::vector<std::string> expected = serve_reference(lines);

  LoopbackWorker w0, w1, w2;
  ChaosProxy proxy("127.0.0.1", w2.transport.port());

  RouterOptions options = attach({&w0, &w1});
  options.workers.push_back(WorkerEndpoint{"shard2", "127.0.0.1",
                                           proxy.port()});
  options.retry_base_ms = 1;  // keep the failover pause test-fast

  // Sanity: the ring must actually route something through the proxy,
  // otherwise the kill would test nothing. Mirrors the router's ring.
  HashRing ring(options.replicas);
  ring.add_node("shard0");
  ring.add_node("shard1");
  ring.add_node("shard2");
  std::size_t proxied = 0;
  for (const std::string& line : lines) {
    const ParsedLine parsed = parse_request_line(line, "edea", 1, 1, 1);
    if (ring.owner(route_key(parsed.request)) == "shard2") ++proxied;
  }
  ASSERT_GT(proxied, 0u) << "pick seeds that hash onto the proxied shard";

  ClusterRouter router(std::move(options));
  std::ostringstream out;
  KillSwitchStream stream(lines, lines.size(), proxy, out);
  const RouterSessionStats stats = router.serve(stream);

  std::vector<std::string> responses;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) responses.push_back(line);

  EXPECT_EQ(responses, expected);
  EXPECT_EQ(stats.failovers, 1u) << "exactly one worker died";
  EXPECT_EQ(router.live_workers(),
            (std::vector<std::string>{"shard0", "shard1"}));
  EXPECT_GE(stats.forwarded, lines.size());
}

TEST(ClusterRouterTest, AllWorkersDeadAnswersBoundedErrorLines) {
  // Grab an ephemeral port with nothing behind it: every connect is
  // refused, the lone worker is marked dead, and each request must come
  // back as a bounded error line instead of hanging or crashing.
  std::uint16_t dead_port = 0;
  {
    SocketTransport probe{SocketTransportOptions{}};
    dead_port = probe.port();
    probe.shutdown();
  }
  RouterOptions options;
  options.workers.push_back(WorkerEndpoint{"gone", "127.0.0.1", dead_port});
  options.connect_timeout_ms = 50;
  options.max_attempts = 2;
  ClusterRouter router(std::move(options));

  RouterSessionStats stats;
  const std::vector<std::string> responses =
      serve_routed(router, distinct_runs(2), &stats);
  ASSERT_EQ(responses.size(), 2u);
  for (const std::string& response : responses) {
    EXPECT_EQ(response.rfind("error mobilenet-0.25x@", 0), 0u) << response;
    EXPECT_NE(response.find("cluster: no live workers"), std::string::npos)
        << response;
  }
  EXPECT_TRUE(router.live_workers().empty());
  EXPECT_EQ(stats.failovers, 1u) << "one death, however many requests";
}

TEST(ClusterRouterTest, ValidatesItsOptions) {
  const auto with = [](auto mutate) {
    RouterOptions options;
    options.workers.push_back(WorkerEndpoint{"w", "127.0.0.1", 1});
    mutate(options);
    return options;
  };
  EXPECT_THROW(ClusterRouter(RouterOptions{}), PreconditionError)
      << "no workers";
  EXPECT_THROW(
      ClusterRouter(with([](RouterOptions& o) { o.batch = 0; })),
      PreconditionError);
  EXPECT_THROW(
      ClusterRouter(with([](RouterOptions& o) { o.backend = "nope"; })),
      PreconditionError);
  EXPECT_THROW(
      ClusterRouter(with([](RouterOptions& o) { o.max_attempts = 0; })),
      PreconditionError);
  EXPECT_THROW(
      ClusterRouter(with([](RouterOptions& o) { o.replicas = 0; })),
      PreconditionError);
  EXPECT_THROW(ClusterRouter(with([](RouterOptions& o) {
                 o.workers.push_back(o.workers.front());
               })),
               PreconditionError)
      << "duplicate worker ids";
}

TEST(MergeCacheFilesTest, MergesShardsSkipsMissingAndMatchesSinglePersist) {
  const std::string dir = ::testing::TempDir();
  const std::string shard_a = dir + "router_shard_a.cache";
  const std::string shard_b = dir + "router_shard_b.cache";
  const std::string merged = dir + "router_merged.cache";
  const std::string reference = dir + "router_reference.cache";

  // Two disjoint halves of one workload, persisted separately - exactly
  // what two spawned workers leave behind.
  const std::vector<std::string> half_a = distinct_runs(6);
  const std::vector<std::string> all = distinct_runs(10);
  const std::vector<std::string> half_b(all.begin() + 6, all.end());
  const auto persist = [](const std::vector<std::string>& lines,
                          const std::string& path) {
    SimulationService svc;
    WorkloadCatalog catalog;
    std::ostringstream joined;
    for (const std::string& line : lines) joined << line << "\n";
    std::istringstream in(joined.str());
    std::ostringstream out;
    StdioStream stream(in, out);
    Session(svc, catalog).serve(stream);
    return svc.save_cache(path);
  };
  ASSERT_EQ(persist(half_a, shard_a), 6u);
  ASSERT_EQ(persist(half_b, shard_b), 4u);
  ASSERT_EQ(persist(all, reference), 10u);

  const std::string missing = dir + "router_never_written.cache";
  EXPECT_EQ(merge_cache_files({shard_a, shard_b, missing}, merged), 10u)
      << "disjoint shards merge losslessly; absent shard files are skipped";

  // The merged file must be byte-identical to what one process serving
  // the whole stream would have persisted (save_cache writes entries in
  // deterministic sorted order).
  const auto slurp = [](const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    std::ostringstream content;
    content << file.rdbuf();
    return content.str();
  };
  EXPECT_EQ(slurp(merged), slurp(reference));

  std::remove(shard_a.c_str());
  std::remove(shard_b.c_str());
  std::remove(merged.c_str());
  std::remove(reference.c_str());
}

}  // namespace
}  // namespace edea::service
