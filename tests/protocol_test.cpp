// protocol_test - the simulation service's line protocol: request parsing
// (grammar, overrides, malformed input never throws) and response
// formatting (outcome and stats lines are deterministic and complete).
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/sweep_runner.hpp"

namespace edea::service {
namespace {

TEST(ProtocolParseTest, MinimalRunRequestUsesPaperDefaults) {
  const ParsedLine p = parse_request_line("run mobilenet-cifar");
  ASSERT_EQ(p.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(p.request.network, "mobilenet-cifar");
  EXPECT_EQ(p.request.seed, 1u);
  EXPECT_EQ(p.request.config, core::EdeaConfig::paper());
  EXPECT_EQ(p.request.job_name(), "mobilenet-cifar@1");
}

TEST(ProtocolParseTest, OverridesApplyToConfigAndSeed) {
  const ParsedLine p = parse_request_line(
      "run edeanet-64 seed=42 tn=4 tm=4 td=16 tk=32 kernel=5 init_cycles=3 "
      "max_tile_out=16 clock_ghz=0.8");
  ASSERT_EQ(p.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(p.request.seed, 42u);
  EXPECT_EQ(p.request.config.tn, 4);
  EXPECT_EQ(p.request.config.tm, 4);
  EXPECT_EQ(p.request.config.td, 16);
  EXPECT_EQ(p.request.config.tk, 32);
  EXPECT_EQ(p.request.config.kernel, 5);
  EXPECT_EQ(p.request.config.init_cycles, 3);
  EXPECT_EQ(p.request.config.max_tile_out, 16);
  EXPECT_DOUBLE_EQ(p.request.config.clock_ghz, 0.8);
}

TEST(ProtocolParseTest, BlankAndCommentLinesAreEmpty) {
  EXPECT_EQ(parse_request_line("").kind, ParsedLine::Kind::kEmpty);
  EXPECT_EQ(parse_request_line("   \t ").kind, ParsedLine::Kind::kEmpty);
  EXPECT_EQ(parse_request_line("# run nothing").kind,
            ParsedLine::Kind::kEmpty);
}

TEST(ProtocolParseTest, StatsLine) {
  EXPECT_EQ(parse_request_line("stats").kind, ParsedLine::Kind::kStats);
  EXPECT_EQ(parse_request_line("stats now").kind, ParsedLine::Kind::kError);
}

TEST(ProtocolParseTest, MalformedLinesAreErrorsNotExceptions) {
  for (const char* bad : {
           "walk mobilenet-cifar",        // unknown verb
           "run",                         // missing network
           "run net foo",                 // not key=value
           "run net =3",                  // empty key
           "run net td=",                 // empty value
           "run net td=abc",              // non-numeric
           "run net td=3x",               // trailing junk
           "run net seed=-4",             // negative seed
           "run net volume=11",           // unknown key
           "run net clock_ghz=fast",      // non-numeric double
           "run net clock_ghz=nan",       // NaN would poison the cache key
           "run net clock_ghz=inf",       // non-finite, physically absurd
       }) {
    SCOPED_TRACE(bad);
    const ParsedLine p = parse_request_line(bad);
    EXPECT_EQ(p.kind, ParsedLine::Kind::kError);
    EXPECT_FALSE(p.error.empty());
  }
}

TEST(ProtocolParseTest, BatchKeyParsesStrictly) {
  // Default: single image.
  const ParsedLine def = parse_request_line("run edeanet-64");
  ASSERT_EQ(def.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(def.request.batch, 1);

  const ParsedLine batched = parse_request_line("run edeanet-64 batch=16");
  ASSERT_EQ(batched.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(batched.request.batch, 16);

  // Everything std::stoi would shrug at is a protocol error naming the
  // key: zero/negative batches, sign prefixes, whitespace, trailing junk.
  for (const char* bad : {
           "run edeanet-64 batch=0",     // no images is not a run
           "run edeanet-64 batch=-1",    // negative
           "run edeanet-64 batch=-16",   // negative, multi-digit
           "run edeanet-64 batch=abc",   // non-numeric
           "run edeanet-64 batch=+2",    // stoi would accept the '+'
           "run edeanet-64 batch= 2",    // tokenizes as an empty value
           "run edeanet-64 batch=2x",    // trailing junk
           "run edeanet-64 batch=1.5",   // not an integer
       }) {
    SCOPED_TRACE(bad);
    const ParsedLine p = parse_request_line(bad);
    EXPECT_EQ(p.kind, ParsedLine::Kind::kError);
    EXPECT_FALSE(p.error.empty());
  }
  // The errors the batch parser itself produces name the offending key.
  const ParsedLine zero = parse_request_line("run edeanet-64 batch=0");
  EXPECT_NE(zero.error.find("bad batch '0'"), std::string::npos)
      << zero.error;
}

TEST(ProtocolParseTest, CallerDefaultBatchAppliesWhenLineNamesNone) {
  // The server's --batch: requests without batch= resolve to it ...
  const ParsedLine def = parse_request_line("run edeanet-64", "edea", 4);
  ASSERT_EQ(def.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(def.request.batch, 4);
  // ... and an explicit key still wins.
  const ParsedLine exp =
      parse_request_line("run edeanet-64 batch=2", "edea", 4);
  ASSERT_EQ(exp.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(exp.request.batch, 2);
  // A non-positive *default* is caller configuration gone wrong.
  EXPECT_THROW((void)parse_request_line("run edeanet-64", "edea", 0),
               PreconditionError);
  EXPECT_THROW((void)parse_request_line("run edeanet-64", "edea", -3),
               PreconditionError);
}

TEST(ProtocolFormatTest, OutcomeLinesEchoBatchOnlyWhenBatched) {
  // batch=1 lines must stay byte-identical to the pre-batch protocol.
  core::SweepOutcome outcome;
  outcome.name = "edeanet-64@7";
  outcome.ok = true;
  EXPECT_EQ(format_outcome_line(outcome).find("batch="), std::string::npos)
      << format_outcome_line(outcome);
  outcome.batch = 8;
  EXPECT_NE(format_outcome_line(outcome).find(" backend=edea batch=8 "),
            std::string::npos)
      << format_outcome_line(outcome);
  outcome.ok = false;
  outcome.error = "boom";
  EXPECT_NE(format_outcome_line(outcome).find(" batch=8 cache="),
            std::string::npos)
      << format_outcome_line(outcome);
}

TEST(ProtocolParseTest, DilationAndDepthMultiplierKeysParseStrictly) {
  // Defaults: the untransformed workload.
  const ParsedLine def = parse_request_line("run edeanet-64");
  ASSERT_EQ(def.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(def.request.dilation, 1);
  EXPECT_EQ(def.request.depth_multiplier, 1);

  const ParsedLine both = parse_request_line(
      "run edeanet-64 dilation=2 depth_multiplier=3");
  ASSERT_EQ(both.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(both.request.dilation, 2);
  EXPECT_EQ(both.request.depth_multiplier, 3);

  // The same strict-integer discipline as batch=: zero, sign prefixes,
  // whitespace, trailing junk and non-integers are protocol errors.
  for (const char* bad : {
           "run edeanet-64 dilation=0",           // dense is dilation=1
           "run edeanet-64 dilation=-2",          // negative
           "run edeanet-64 dilation=+2",          // stoi would accept '+'
           "run edeanet-64 dilation= 2",          // empty value token
           "run edeanet-64 dilation=2x",          // trailing junk
           "run edeanet-64 dilation=1.5",         // not an integer
           "run edeanet-64 depth_multiplier=0",   // no output channels
           "run edeanet-64 depth_multiplier=-1",  // negative
           "run edeanet-64 depth_multiplier=+3",  // sign prefix
           "run edeanet-64 depth_multiplier= 3",  // empty value token
           "run edeanet-64 depth_multiplier=3x",  // trailing junk
           "run edeanet-64 depth_multiplier=abc", // non-numeric
       }) {
    SCOPED_TRACE(bad);
    const ParsedLine p = parse_request_line(bad);
    EXPECT_EQ(p.kind, ParsedLine::Kind::kError);
    EXPECT_FALSE(p.error.empty());
  }
  // The errors name the offending key and value.
  const ParsedLine zero = parse_request_line("run edeanet-64 dilation=0");
  EXPECT_NE(zero.error.find("bad dilation '0'"), std::string::npos)
      << zero.error;
  const ParsedLine junk =
      parse_request_line("run edeanet-64 depth_multiplier=3x");
  EXPECT_NE(junk.error.find("bad depth_multiplier '3x'"), std::string::npos)
      << junk.error;
}

TEST(ProtocolParseTest, CallerDefaultTransformsApplyWhenLineNamesNone) {
  // The server's --dilation / --depth-multiplier: requests without the
  // keys resolve to the caller defaults ...
  const ParsedLine def = parse_request_line("run edeanet-64", "edea", 1, 2, 3);
  ASSERT_EQ(def.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(def.request.dilation, 2);
  EXPECT_EQ(def.request.depth_multiplier, 3);
  // ... and explicit keys still win.
  const ParsedLine exp = parse_request_line(
      "run edeanet-64 dilation=4 depth_multiplier=1", "edea", 1, 2, 3);
  ASSERT_EQ(exp.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(exp.request.dilation, 4);
  EXPECT_EQ(exp.request.depth_multiplier, 1);
  // Non-positive *defaults* are caller configuration gone wrong.
  EXPECT_THROW((void)parse_request_line("run edeanet-64", "edea", 1, 0, 1),
               PreconditionError);
  EXPECT_THROW((void)parse_request_line("run edeanet-64", "edea", 1, 1, -2),
               PreconditionError);
}

TEST(ProtocolFormatTest, OutcomeLinesEchoTransformsOnlyWhenTransformed) {
  // Default-valued knobs stay silent, so pre-dilation response streams
  // (and the golden file) are byte-identical.
  core::SweepOutcome outcome;
  outcome.name = "edeanet-64@7";
  outcome.ok = true;
  EXPECT_EQ(format_outcome_line(outcome).find("dilation="), std::string::npos)
      << format_outcome_line(outcome);
  EXPECT_EQ(format_outcome_line(outcome).find("depth_multiplier="),
            std::string::npos)
      << format_outcome_line(outcome);
  // Echoed after batch, each only when > 1, on ok and error lines alike.
  outcome.batch = 8;
  outcome.dilation = 2;
  outcome.depth_multiplier = 3;
  EXPECT_NE(format_outcome_line(outcome).find(
                " backend=edea batch=8 dilation=2 depth_multiplier=3 "),
            std::string::npos)
      << format_outcome_line(outcome);
  outcome.batch = 1;
  outcome.depth_multiplier = 1;
  EXPECT_NE(format_outcome_line(outcome).find(" backend=edea dilation=2 "),
            std::string::npos)
      << format_outcome_line(outcome);
  outcome.ok = false;
  outcome.error = "boom";
  EXPECT_NE(format_outcome_line(outcome).find(" dilation=2 cache="),
            std::string::npos)
      << format_outcome_line(outcome);
}

TEST(ProtocolParseTest, ConfigKeysShareTheStrictIntegerGrammar) {
  // Every EdeaConfig override key now parses with the same strict grammar
  // as batch=: signs, whitespace, trailing junk, and negatives are
  // protocol errors naming the value - not values smuggled through to
  // fail (or worse, not fail) in config validation.
  for (const char* key : {"tn", "tm", "td", "tk", "kernel", "init_cycles",
                          "max_tile_out"}) {
    for (const char* value : {"+4", "4x", "-8", "1.5", "0x4", ""}) {
      const std::string line =
          std::string("run edeanet-64 ") + key + "=" + value;
      SCOPED_TRACE(line);
      const ParsedLine p = parse_request_line(line);
      EXPECT_EQ(p.kind, ParsedLine::Kind::kError);
      EXPECT_FALSE(p.error.empty());
    }
    const ParsedLine junk =
        parse_request_line(std::string("run edeanet-64 ") + key + "=+4");
    EXPECT_NE(junk.error.find("bad value '+4' for key '" + std::string(key) +
                              "'"),
              std::string::npos)
        << junk.error;
  }
  // Zero still parses - semantic ranges (e.g. tn >= 1, init_cycles >= 0)
  // are EdeaConfig::validate's job, reported in the outcome line.
  const ParsedLine zero = parse_request_line("run edeanet-64 init_cycles=0");
  ASSERT_EQ(zero.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(zero.request.config.init_cycles, 0);
}

TEST(ProtocolParseTest, StrictParsersRejectWhitespaceDirectly) {
  // " 4" can never arrive through the whitespace-splitting tokenizer, so
  // the guarantee is probed at the parser seam the line parser uses.
  int iv = -1;
  std::uint64_t uv = 0;
  for (const char* bad : {" 4", "4 ", "\t4", "+4", "-4", "4x", ""}) {
    SCOPED_TRACE(std::string("'") + bad + "'");
    EXPECT_FALSE(parse_strict_int(bad, &iv));
    EXPECT_FALSE(parse_strict_count(bad, &iv));
    EXPECT_FALSE(parse_strict_u64(bad, &uv));
  }
  EXPECT_EQ(iv, -1);  // rejected parses never touch *out
  // The boundary between the two int flavors: 0 is a valid config value
  // but not a valid count.
  EXPECT_TRUE(parse_strict_int("0", &iv));
  EXPECT_EQ(iv, 0);
  EXPECT_FALSE(parse_strict_count("0", &iv));
  EXPECT_TRUE(parse_strict_count("1", &iv));
  EXPECT_EQ(iv, 1);
}

TEST(ProtocolParseTest, OutOfRangeValuesAreProtocolErrorsNamingTheValue) {
  // Overflow is detected by digit accumulation with an explicit range
  // check - never via std::stoi exception behavior. Every numeric key is
  // covered: INT_MAX+1 for the int keys, UINT64_MAX+1 for seed.
  const std::string big_int = "99999999999999";           // > INT_MAX
  const std::string int_edge = "2147483648";              // INT_MAX + 1
  const std::string big_u64 = "18446744073709551616";     // UINT64_MAX + 1
  for (const char* key : {"batch", "dilation", "depth_multiplier", "tn",
                          "tm", "td", "tk", "kernel", "init_cycles",
                          "max_tile_out"}) {
    for (const std::string& value : {big_int, int_edge}) {
      const std::string line =
          std::string("run edeanet-64 ") + key + "=" + value;
      SCOPED_TRACE(line);
      const ParsedLine p = parse_request_line(line);
      EXPECT_EQ(p.kind, ParsedLine::Kind::kError);
      // The error names the offending value.
      EXPECT_NE(p.error.find("'" + value + "'"), std::string::npos)
          << p.error;
    }
  }
  const ParsedLine seed =
      parse_request_line("run edeanet-64 seed=" + big_u64);
  ASSERT_EQ(seed.kind, ParsedLine::Kind::kError);
  EXPECT_NE(seed.error.find("bad seed '" + big_u64 + "'"),
            std::string::npos)
      << seed.error;
  // The exact boundary values still parse.
  const ParsedLine max_int =
      parse_request_line("run edeanet-64 init_cycles=2147483647");
  ASSERT_EQ(max_int.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(max_int.request.config.init_cycles, 2147483647);
  const ParsedLine max_seed =
      parse_request_line("run edeanet-64 seed=18446744073709551615");
  ASSERT_EQ(max_seed.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(max_seed.request.seed, 18446744073709551615ull);
}

TEST(ProtocolParseTest, SeedSharesTheStrictGrammar) {
  // ("seed=" with no value at all is rejected earlier, at key=value shape.)
  for (const char* bad : {"+7", "7x", "-7", "7.0"}) {
    const std::string line = std::string("run edeanet-64 seed=") + bad;
    SCOPED_TRACE(line);
    const ParsedLine p = parse_request_line(line);
    EXPECT_EQ(p.kind, ParsedLine::Kind::kError);
    EXPECT_NE(p.error.find("bad seed"), std::string::npos) << p.error;
  }
}

TEST(ProtocolFormatTest, OkOutcomeLineCarriesSummaryAndCacheFlag) {
  core::SweepOutcome outcome;
  outcome.name = "edeanet-64@7";
  outcome.ok = true;
  outcome.cache_hit = true;
  const std::string line = format_outcome_line(outcome);
  EXPECT_EQ(line.rfind("ok edeanet-64@7 ", 0), 0u) << line;
  EXPECT_NE(line.find("cycles=0"), std::string::npos) << line;
  EXPECT_NE(line.find("gops=0.00"), std::string::npos) << line;
  EXPECT_NE(line.find("out=0x"), std::string::npos) << line;
  EXPECT_NE(line.find("cache=hit"), std::string::npos) << line;
}

TEST(ProtocolFormatTest, ErrorOutcomeLineCarriesMessage) {
  core::SweepOutcome outcome;
  outcome.name = "edeanet-64@7";
  outcome.ok = false;
  outcome.error = "engine kernel mismatch";
  const std::string line = format_outcome_line(outcome);
  EXPECT_EQ(line.rfind("error edeanet-64@7 ", 0), 0u) << line;
  EXPECT_NE(line.find("msg=engine kernel mismatch"), std::string::npos)
      << line;
  EXPECT_NE(line.find("cache=miss"), std::string::npos) << line;
}

TEST(ProtocolFormatTest, StatsLineIsExact) {
  CacheStats stats;
  stats.hits = 3;
  stats.misses = 9;
  stats.evictions = 1;
  stats.entries = 8;
  stats.in_flight = 2;
  EXPECT_EQ(format_stats_line(stats),
            "stats hits=3 misses=9 evictions=1 entries=8 inflight=2");
}

TEST(ProtocolFormatTest, SummaryOnlyOutcomeFormatsLikeTheLiveOne) {
  // A persisted-cache hit after a restart carries only the RunSummary;
  // its line must be byte-identical to the live cached line.
  core::SweepOutcome live;
  live.name = "edeanet-64@7";
  live.ok = true;
  live.cache_hit = true;
  live.summary.layer_count = 6;
  live.summary.total_cycles = 4242;
  live.summary.total_ops = 990;
  live.summary.average_gops = 1.23456;
  live.summary.output_hash = 0xDEADBEEFull;

  core::SweepOutcome persisted = live;  // same summary, but no result
  persisted.summary_only = true;
  persisted.result = core::NetworkRunResult{};

  EXPECT_EQ(format_outcome_line(live), format_outcome_line(persisted));
  EXPECT_NE(format_outcome_line(live).find("cycles=4242"),
            std::string::npos);
}

TEST(ProtocolParseTest, BackendKeyResolvesAgainstTheRegistry) {
  // Default: the protocol default backend.
  const ParsedLine def = parse_request_line("run edeanet-64");
  ASSERT_EQ(def.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(def.request.backend, "edea");

  // Explicit override to another registered dataflow.
  const ParsedLine serialized =
      parse_request_line("run edeanet-64 backend=serialized");
  ASSERT_EQ(serialized.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(serialized.request.backend, "serialized");

  // Unknown ids are protocol errors naming the known vocabulary - a
  // typo'd dataflow must never silently simulate something else.
  const ParsedLine unknown =
      parse_request_line("run edeanet-64 backend=warp-drive");
  ASSERT_EQ(unknown.kind, ParsedLine::Kind::kError);
  EXPECT_NE(unknown.error.find("unknown backend 'warp-drive'"),
            std::string::npos)
      << unknown.error;
  EXPECT_NE(unknown.error.find("edea"), std::string::npos) << unknown.error;
  EXPECT_NE(unknown.error.find("serialized"), std::string::npos)
      << unknown.error;
}

TEST(ProtocolParseTest, CallerDefaultBackendAppliesWhenLineNamesNone) {
  // The server's --backend: requests without backend= resolve to it ...
  const ParsedLine def = parse_request_line("run edeanet-64", "serialized");
  ASSERT_EQ(def.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(def.request.backend, "serialized");
  // ... and an explicit key still wins.
  const ParsedLine exp =
      parse_request_line("run edeanet-64 backend=edea", "serialized");
  ASSERT_EQ(exp.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(exp.request.backend, "edea");
  // An unregistered *default* is caller configuration gone wrong, not a
  // client's malformed line - precondition, not protocol error.
  EXPECT_THROW((void)parse_request_line("run edeanet-64", "warp-drive"),
               PreconditionError);
}

TEST(ProtocolFormatTest, OutcomeLinesEchoTheBackend) {
  core::SweepOutcome outcome;
  outcome.name = "edeanet-64@7";
  outcome.ok = true;
  EXPECT_NE(format_outcome_line(outcome).find(" backend=edea "),
            std::string::npos)
      << format_outcome_line(outcome);
  outcome.backend = "serialized";
  EXPECT_NE(format_outcome_line(outcome).find(" backend=serialized "),
            std::string::npos);
  outcome.ok = false;
  outcome.error = "boom";
  EXPECT_NE(format_outcome_line(outcome).find(" backend=serialized "),
            std::string::npos);
}

TEST(ProtocolParseTest, ModeLineParsesStrictly) {
  const ParsedLine ordered = parse_request_line("mode ordered");
  ASSERT_EQ(ordered.kind, ParsedLine::Kind::kMode);
  EXPECT_FALSE(ordered.unordered);
  const ParsedLine unordered = parse_request_line("mode unordered");
  ASSERT_EQ(unordered.kind, ParsedLine::Kind::kMode);
  EXPECT_TRUE(unordered.unordered);
  // The tokenizer's usual whitespace tolerance applies.
  EXPECT_EQ(parse_request_line("  mode \t unordered ").kind,
            ParsedLine::Kind::kMode);
  // Anything else is a protocol error naming the legal vocabulary.
  for (const char* bad :
       {"mode", "mode sideways", "mode unordered now", "mode ORDERED"}) {
    SCOPED_TRACE(bad);
    const ParsedLine p = parse_request_line(bad);
    EXPECT_EQ(p.kind, ParsedLine::Kind::kError);
    EXPECT_NE(p.error.find("ordered|unordered"), std::string::npos)
        << p.error;
  }
}

TEST(ProtocolParseTest, BatchFrameLinesParseStrictly) {
  const ParsedLine begin = parse_request_line("batch-begin 32");
  ASSERT_EQ(begin.kind, ParsedLine::Kind::kBatchBegin);
  EXPECT_EQ(begin.frame_size, 32u);
  // The full frame limit is itself a legal count ...
  const ParsedLine top = parse_request_line("batch-begin 4096");
  ASSERT_EQ(top.kind, ParsedLine::Kind::kBatchBegin);
  EXPECT_EQ(top.frame_size, kMaxFrameLines);
  // ... and one past it is rejected naming the limit, so a client bug
  // cannot make a session buffer unboundedly.
  const ParsedLine over = parse_request_line("batch-begin 4097");
  ASSERT_EQ(over.kind, ParsedLine::Kind::kError);
  EXPECT_NE(over.error.find("4096"), std::string::npos) << over.error;

  EXPECT_EQ(parse_request_line("batch-end").kind,
            ParsedLine::Kind::kBatchEnd);
  EXPECT_EQ(parse_request_line("  batch-end  ").kind,
            ParsedLine::Kind::kBatchEnd);

  // The count shares the strict digit-first integer grammar.
  for (const char* bad :
       {"batch-begin", "batch-begin 0", "batch-begin -1", "batch-begin +4",
        "batch-begin 4x", "batch-begin abc", "batch-begin 2 2",
        "batch-begin 99999999999999999999", "batch-end now"}) {
    SCOPED_TRACE(bad);
    const ParsedLine p = parse_request_line(bad);
    EXPECT_EQ(p.kind, ParsedLine::Kind::kError);
    EXPECT_FALSE(p.error.empty());
  }
}

TEST(ProtocolFormatTest, BusyLineIsSelfIdentifying) {
  // Busy replies carry their own id= even in ordered mode - the client
  // must be able to match the rejection to the request it has to retry
  // without counting reply positions.
  EXPECT_EQ(format_busy_line(7, 25), "busy id=7 retry_ms=25");
  EXPECT_EQ(format_busy_line(18446744073709551615ull, 1),
            "busy id=18446744073709551615 retry_ms=1");
}

TEST(ProtocolFormatTest, UnorderedPrefixWrapsAnyReplyLine) {
  core::SweepOutcome outcome;
  outcome.name = "edeanet-64@7";
  outcome.ok = true;
  const std::string bare = format_outcome_line(outcome);
  const std::string framed = format_unordered_line(42, bare);
  EXPECT_EQ(framed, "id=42 " + bare);
  // Error replies ride the same prefix, so out-of-order error delivery
  // is still attributable.
  EXPECT_EQ(format_unordered_line(3, "error ! msg=bad verb cache=miss"),
            "id=3 error ! msg=bad verb cache=miss");
}

TEST(ProtocolFormatTest, StatsLineGrowsAdmissionFieldsOnlyWhenBounded) {
  // Unbounded services keep the pre-admission stats line byte-identical.
  CacheStats stats;
  stats.hits = 3;
  stats.misses = 9;
  stats.evictions = 1;
  stats.entries = 8;
  stats.in_flight = 2;
  EXPECT_EQ(format_stats_line(stats),
            "stats hits=3 misses=9 evictions=1 entries=8 inflight=2");
  // With a bounded queue the admission trio appears, zeros included -
  // an operator watching an overloaded server needs to see rejected=0
  // explicitly to know the bound was never hit.
  stats.max_queue = 4;
  stats.queued = 1;
  stats.rejected = 37;
  stats.peak_queue = 2;
  EXPECT_EQ(format_stats_line(stats),
            "stats hits=3 misses=9 evictions=1 entries=8 inflight=2 "
            "queued=1 rejected=37 peak_queue=2");
  stats.queued = 0;
  stats.rejected = 0;
  stats.peak_queue = 0;
  EXPECT_EQ(format_stats_line(stats),
            "stats hits=3 misses=9 evictions=1 entries=8 inflight=2 "
            "queued=0 rejected=0 peak_queue=0");
}

TEST(ProtocolParseTest, BusyLineParsesStrictlyAsTheFormatterInverse) {
  std::uint64_t id = 0;
  int retry_ms = 0;
  ASSERT_TRUE(parse_busy_line("busy id=7 retry_ms=25", &id, &retry_ms));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(retry_ms, 25);
  ASSERT_TRUE(parse_busy_line(format_busy_line(18446744073709551615ull, 1),
                              &id, &retry_ms));
  EXPECT_EQ(id, 18446744073709551615ull);
  EXPECT_EQ(retry_ms, 1);

  // Strictness: the grammar is exactly what format_busy_line emits.
  for (const char* bad :
       {"busy", "busy id=7", "busy id=7 retry_ms=", "busy id= retry_ms=25",
        "busy id=7 retry_ms=25 extra", "busy id=7  retry_ms=25",
        "busy id=x retry_ms=25", "busy id=7 retry_ms=2.5",
        "busy id=7 retry_ms=-1", "Busy id=7 retry_ms=25",
        "busy id=18446744073709551616 retry_ms=25",
        "busy id=7 retry_ms=9999999999999"}) {
    SCOPED_TRACE(bad);
    EXPECT_FALSE(parse_busy_line(bad, &id, &retry_ms));
  }
}

TEST(ProtocolParseTest, UnorderedLineParsesStrictlyAsThePrefixInverse) {
  std::uint64_t id = 0;
  std::string rest;
  ASSERT_TRUE(parse_unordered_line("id=42 ok edeanet-64@7 cache=hit", &id,
                                   &rest));
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(rest, "ok edeanet-64@7 cache=hit");
  ASSERT_TRUE(
      parse_unordered_line(format_unordered_line(3, "stats hits=0"), &id,
                           &rest));
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(rest, "stats hits=0");

  for (const char* bad :
       {"", "id=", "id=7", "id=7x ok", "id= ok", "id =7 ok", "Id=7 ok",
        "7 ok", "id=18446744073709551616 ok"}) {
    SCOPED_TRACE(bad);
    EXPECT_FALSE(parse_unordered_line(bad, &id, &rest));
  }
  // The payload may itself be empty-ish after the single separator space.
  ASSERT_TRUE(parse_unordered_line("id=7 x", &id, &rest));
  EXPECT_EQ(rest, "x");
}

TEST(ProtocolParseTest, StatsLineParsesBothShapesAsTheFormatterInverse) {
  CacheStats stats;
  ASSERT_TRUE(parse_stats_line(
      "stats hits=3 misses=9 evictions=1 entries=8 inflight=2", &stats));
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 9u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 8u);
  EXPECT_EQ(stats.in_flight, 2u);
  EXPECT_EQ(stats.max_queue, 0u) << "no admission trio, no bound";
  EXPECT_EQ(stats.queued, 0u);

  ASSERT_TRUE(parse_stats_line(
      "stats hits=3 misses=9 evictions=1 entries=8 inflight=2 "
      "queued=1 rejected=37 peak_queue=2",
      &stats));
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.rejected, 37u);
  EXPECT_EQ(stats.peak_queue, 2u);
  // The wire does not carry the bound itself; max_queue=1 is the parser's
  // presence flag, so a format -> parse -> format round trip keeps the
  // admission trio (format emits it whenever max_queue != 0).
  EXPECT_EQ(stats.max_queue, 1u);
  EXPECT_EQ(format_stats_line(stats),
            "stats hits=3 misses=9 evictions=1 entries=8 inflight=2 "
            "queued=1 rejected=37 peak_queue=2");

  for (const char* bad :
       {"stats", "stats hits=3", "stat hits=3 misses=9 evictions=1 entries=8",
        "stats hits=3 misses=9 evictions=1 entries=8 inflight=2 queued=1",
        "stats hits=3 misses=9 evictions=1 entries=8 inflight=2 queued=1 "
        "rejected=2",
        "stats hits=3 misses=9 evictions=1 entries=8 inflight=2 extra=1",
        "stats hits=-1 misses=9 evictions=1 entries=8 inflight=2",
        "stats hits=3 misses=9 evictions=1 entries=8 inflight=2 ",
        "stats misses=9 hits=3 evictions=1 entries=8 inflight=2"}) {
    SCOPED_TRACE(bad);
    EXPECT_FALSE(parse_stats_line(bad, &stats));
  }
}

TEST(ProtocolRoundTripTest, ReplyParsersInvertTheFormattersForAnyCounts) {
  // Round-trip a spread of values through each formatter/parser pair.
  for (const std::uint64_t id : {1ull, 999ull, 1ull << 40}) {
    for (const int retry : {1, 25, 10000}) {
      std::uint64_t got_id = 0;
      int got_retry = 0;
      ASSERT_TRUE(parse_busy_line(format_busy_line(id, retry), &got_id,
                                  &got_retry));
      EXPECT_EQ(got_id, id);
      EXPECT_EQ(got_retry, retry);
    }
    std::uint64_t got_id = 0;
    std::string rest;
    ASSERT_TRUE(parse_unordered_line(
        format_unordered_line(id, "error x@1 msg=boom cache=miss"), &got_id,
        &rest));
    EXPECT_EQ(got_id, id);
    EXPECT_EQ(rest, "error x@1 msg=boom cache=miss");
  }
}

TEST(ProtocolRoundTripTest, IdenticalRequestLinesYieldIdenticalKeys) {
  const ParsedLine a = parse_request_line("run edeanet-64 seed=7 td=16");
  const ParsedLine b = parse_request_line("run edeanet-64 td=16 seed=7");
  ASSERT_EQ(a.kind, ParsedLine::Kind::kRun);
  ASSERT_EQ(b.kind, ParsedLine::Kind::kRun);
  EXPECT_EQ(a.request.network, b.request.network);
  EXPECT_EQ(a.request.seed, b.request.seed);
  EXPECT_EQ(a.request.config, b.request.config);
  EXPECT_EQ(a.request.config.hash(), b.request.config.hash());
}

}  // namespace
}  // namespace edea::service
