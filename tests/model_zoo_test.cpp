// Tests for the model zoo (src/nn/model_zoo.*): variant geometry, width
// scaling, chaining, and accelerator compatibility - the paper's closing
// claim that the design "is also suitable for other DSC-based networks".
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "core/tiler.hpp"
#include "nn/mobilenet.hpp"
#include "nn/model_zoo.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::nn {
namespace {

TEST(ModelZoo, DefaultVariantMatchesPaperTable) {
  MobileNetVariant v;  // 1.0x @ 32
  const auto specs = mobilenet_variant_specs(v);
  const auto paper = mobilenet_dsc_specs();
  ASSERT_EQ(specs.size(), paper.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].in_rows, paper[i].in_rows) << i;
    EXPECT_EQ(specs[i].in_channels, paper[i].in_channels) << i;
    EXPECT_EQ(specs[i].out_channels, paper[i].out_channels) << i;
    EXPECT_EQ(specs[i].stride, paper[i].stride) << i;
  }
}

TEST(ModelZoo, WidthMultiplierScalesChannels) {
  MobileNetVariant half;
  half.width_multiplier = 0.5;
  const auto specs = mobilenet_variant_specs(half);
  EXPECT_EQ(specs[0].in_channels, 16);
  EXPECT_EQ(specs[0].out_channels, 32);
  EXPECT_EQ(specs[12].out_channels, 512);
}

TEST(ModelZoo, ChannelRoundingKeepsTdAlignment) {
  MobileNetVariant v;
  v.width_multiplier = 0.75;
  const auto specs = mobilenet_variant_specs(v, /*channel_round=*/8);
  for (const auto& s : specs) {
    EXPECT_EQ(s.in_channels % 8, 0) << s.to_string();
    EXPECT_EQ(s.out_channels % 8, 0) << s.to_string();
  }
}

TEST(ModelZoo, VariantsChainGeometrically) {
  for (const double alpha : {0.25, 0.5, 0.75, 1.0}) {
    MobileNetVariant v;
    v.width_multiplier = alpha;
    const auto specs = mobilenet_variant_specs(v);
    for (std::size_t i = 0; i + 1 < specs.size(); ++i) {
      EXPECT_EQ(specs[i].out_rows(), specs[i + 1].in_rows);
      EXPECT_EQ(specs[i].out_channels, specs[i + 1].in_channels);
    }
  }
}

TEST(ModelZoo, ImageNetGeometry) {
  const auto specs = mobilenet_imagenet_specs();
  EXPECT_EQ(specs[0].in_rows, 112);  // after the stride-2 stem
  EXPECT_EQ(specs[12].in_rows, 7);   // the classic 7x7x1024 tail
  EXPECT_EQ(specs[12].out_channels, 1024);
}

TEST(ModelZoo, EdeaNetChainsAndEndsAt4x4x256) {
  const auto specs = edeanet_specs();
  ASSERT_EQ(specs.size(), 6u);
  for (std::size_t i = 0; i + 1 < specs.size(); ++i) {
    EXPECT_EQ(specs[i].out_rows(), specs[i + 1].in_rows);
    EXPECT_EQ(specs[i].out_channels, specs[i + 1].in_channels);
  }
  EXPECT_EQ(specs.back().out_rows(), 4);
  EXPECT_EQ(specs.back().out_channels, 256);
}

TEST(ModelZoo, RejectsBadParameters) {
  MobileNetVariant v;
  v.width_multiplier = 0.0;
  EXPECT_THROW((void)mobilenet_variant_specs(v), PreconditionError);
  v.width_multiplier = 1.0;
  v.input_resolution = 2;
  EXPECT_THROW((void)mobilenet_variant_specs(v), PreconditionError);
}

TEST(ModelZoo, RandomQuantNetworkIsDeterministic) {
  const auto specs = edeanet_specs();
  const auto a = make_random_quant_network(specs, 42);
  const auto b = make_random_quant_network(specs, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dwc_weights, b[i].dwc_weights);
    EXPECT_EQ(a[i].pwc_weights, b[i].pwc_weights);
  }
  const auto c = make_random_quant_network(specs, 43);
  EXPECT_NE(a[0].dwc_weights, c[0].dwc_weights);
}

// ------------------------ accelerator compatibility (the paper's claim) ---

TEST(ModelZoo, AcceleratorRunsEdeaNetBitExact) {
  const auto layers = make_random_quant_network(edeanet_specs(), 7);
  core::EdeaAccelerator accel;
  Rng rng(9);
  Int8Tensor input(Shape{64, 64, 16});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  const core::NetworkRunResult run = accel.run_network(layers, input);
  Int8Tensor ref = input;
  for (const auto& l : layers) ref = l.forward(ref);
  EXPECT_EQ(run.output, ref);
  // Utilization stays 100%: every EdeaNet channel count is Td/Tk aligned.
  for (const auto& r : run.layers) {
    EXPECT_DOUBLE_EQ(r.dwc_lane_utilization(), 1.0) << r.spec.to_string();
    EXPECT_DOUBLE_EQ(r.pwc_lane_utilization(), 1.0) << r.spec.to_string();
  }
}

TEST(ModelZoo, AcceleratorRunsQuarterWidthMobileNet) {
  MobileNetVariant v;
  v.width_multiplier = 0.25;
  const auto specs = mobilenet_variant_specs(v);
  const auto layers = make_random_quant_network(specs, 11);
  core::EdeaAccelerator accel;
  Rng rng(13);
  Int8Tensor input(Shape{32, 32, specs[0].in_channels});
  for (auto& v8 : input.storage()) {
    v8 = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  const core::NetworkRunResult run = accel.run_network(layers, input);
  Int8Tensor ref = input;
  for (const auto& l : layers) ref = l.forward(ref);
  EXPECT_EQ(run.output, ref);
}

TEST(ModelZoo, EveryVariantLayerFitsTheModeledBuffers) {
  // The fixed silicon buffers must hold every layer of every supported
  // CIFAR-scale variant (K <= 1024 is the modeled PWC weight buffer bound).
  const core::EdeaConfig cfg = core::EdeaConfig::paper();
  for (const double alpha : {0.25, 0.5, 0.75, 1.0}) {
    MobileNetVariant v;
    v.width_multiplier = alpha;
    for (const auto& spec : mobilenet_variant_specs(v)) {
      const core::Tiler tiler(cfg, spec);
      EXPECT_LE(tiler.max_tile_input_bytes(), cfg.dwc_ifmap_buffer_bytes())
          << spec.to_string();
      EXPECT_LE(std::int64_t{spec.out_channels} * cfg.td,
                cfg.pwc_weight_buffer_bytes())
          << spec.to_string();
    }
  }
}

// ----------------------- inverted-residual networks (V2 / EfficientNet) ---

TEST(ModelZoo, MobileNetV2GeometryAndExpansionMultipliers) {
  const auto specs = mobilenet_v2_specs();
  ASSERT_EQ(specs.size(), 17u);  // 1+2+3+4+3+3+1 bottleneck blocks
  // The stem feeds 32 channels at full resolution into the first block,
  // whose expansion factor is 1; every later stage expands by 6, carried
  // as the depthwise stage's depth multiplier.
  EXPECT_EQ(specs[0].in_rows, 32);
  EXPECT_EQ(specs[0].in_channels, 32);
  EXPECT_EQ(specs[0].depth_multiplier, 1);
  EXPECT_EQ(specs[0].out_channels, 16);
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].depth_multiplier, 6) << specs[i].to_string();
    EXPECT_EQ(specs[i].intermediate_channels(), specs[i].in_channels * 6);
  }
  // Geometric chaining: each block consumes its predecessor's output.
  for (std::size_t i = 0; i + 1 < specs.size(); ++i) {
    EXPECT_EQ(specs[i].out_rows(), specs[i + 1].in_rows) << i;
    EXPECT_EQ(specs[i].out_cols(), specs[i + 1].in_cols) << i;
    EXPECT_EQ(specs[i].out_channels, specs[i + 1].in_channels) << i;
  }
  // Three stride-2 stages take 32x32 to the classic 4x4x320 tail.
  EXPECT_EQ(specs.back().out_rows(), 4);
  EXPECT_EQ(specs.back().out_channels, 320);
}

TEST(ModelZoo, EfficientNetB0GeometryAndExpansionMultipliers) {
  const auto specs = efficientnet_b0_specs();
  ASSERT_EQ(specs.size(), 16u);  // 1+2+2+3+3+4+1 MBConv blocks
  EXPECT_EQ(specs[0].in_rows, 32);
  EXPECT_EQ(specs[0].in_channels, 32);
  EXPECT_EQ(specs[0].depth_multiplier, 1);
  EXPECT_EQ(specs[0].out_channels, 16);
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].depth_multiplier, 6) << specs[i].to_string();
    // The 5x5 MBConv stages are clamped to the 3x3 datapath.
    EXPECT_EQ(specs[i].kernel, 3) << specs[i].to_string();
  }
  for (std::size_t i = 0; i + 1 < specs.size(); ++i) {
    EXPECT_EQ(specs[i].out_rows(), specs[i + 1].in_rows) << i;
    EXPECT_EQ(specs[i].out_channels, specs[i + 1].in_channels) << i;
  }
  // Four stride-2 stages take 32x32 down to the 2x2x320 tail.
  EXPECT_EQ(specs.back().out_rows(), 2);
  EXPECT_EQ(specs.back().out_channels, 320);
}

TEST(ModelZoo, InvertedResidualNetworksRunBitExactOnTheAccelerator) {
  // The paper's closing claim extended to multiplied depthwise stages:
  // the simulated accelerator reproduces the golden quantized forward
  // pass of the V2 geometry exactly.
  const auto specs = mobilenet_v2_specs();
  const auto layers = make_random_quant_network(specs, 19);
  core::EdeaAccelerator accel;
  Rng rng(23);
  Int8Tensor input(Shape{32, 32, specs[0].in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  const core::NetworkRunResult run = accel.run_network(layers, input);
  Int8Tensor ref = input;
  for (const auto& l : layers) ref = l.forward(ref);
  EXPECT_EQ(run.output, ref);
}

TEST(ModelZoo, LookupByNameResolvesEveryListedNetwork) {
  const auto names = zoo_network_names();
  ASSERT_GE(names.size(), 4u);
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    const auto specs = zoo_specs(name);
    EXPECT_FALSE(specs.empty());
  }
}

TEST(ModelZoo, LookupByNameMatchesDirectBuilders) {
  const auto cifar = zoo_specs("mobilenet-cifar");
  const auto paper = mobilenet_dsc_specs();
  ASSERT_EQ(cifar.size(), paper.size());
  for (std::size_t i = 0; i < cifar.size(); ++i) {
    EXPECT_EQ(cifar[i].in_channels, paper[i].in_channels) << i;
    EXPECT_EQ(cifar[i].out_channels, paper[i].out_channels) << i;
  }
  EXPECT_EQ(zoo_specs("edeanet-64").size(), edeanet_specs().size());
  EXPECT_EQ(zoo_specs("mobilenet-0.5x")[0].in_channels,
            mobilenet_variant_specs(MobileNetVariant{0.5, 32, 32})[0]
                .in_channels);
}

TEST(ModelZoo, UnknownNameIsAPreconditionErrorListingKnownNames) {
  try {
    (void)zoo_specs("resnet-50");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("resnet-50"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mobilenet-cifar"), std::string::npos) << msg;
  }
}

TEST(ModelZoo, ImageNetVariantNeedsMoreTiles) {
  // 112x112 feature maps split into many 8x8-output buffer tiles - Eq. 2
  // at scale. Cross-check one layer's tile count.
  const auto specs = mobilenet_imagenet_specs();
  const core::Tiler tiler(core::EdeaConfig::paper(), specs[0]);
  EXPECT_EQ(tiler.tiles().size(), 14u * 14u);  // 112/8 squared
}

}  // namespace
}  // namespace edea::nn
