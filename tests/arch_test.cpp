// Tests for the hardware primitives (src/arch): SRAM buffers, external
// memory traffic accounting, MAC lanes and adder trees.
#include <gtest/gtest.h>

#include <array>

#include "arch/counters.hpp"
#include "arch/ext_memory.hpp"
#include "arch/pe.hpp"
#include "arch/sram.hpp"
#include "util/check.hpp"

namespace edea::arch {
namespace {

// ----------------------------------------------------------------- SRAM ---

TEST(SramBuffer, StoreLoadRoundTrip) {
  SramBuffer buf("test", 64);
  buf.store<std::int8_t>(3, -7);
  EXPECT_EQ(buf.load<std::int8_t>(3), -7);
  buf.store<std::int32_t>(4, 123456);
  EXPECT_EQ(buf.load<std::int32_t>(4), 123456);
}

TEST(SramBuffer, CountsAccesses) {
  SramBuffer buf("test", 64);
  buf.store<std::int8_t>(0, 1);
  buf.store<std::int8_t>(1, 2);
  (void)buf.load<std::int8_t>(0);
  EXPECT_EQ(buf.counter().writes, 2);
  EXPECT_EQ(buf.counter().reads, 1);
  EXPECT_EQ(buf.counter().write_bytes, 2);
  EXPECT_EQ(buf.counter().read_bytes, 1);
  buf.reset_counters();
  EXPECT_EQ(buf.counter().total_accesses(), 0);
}

TEST(SramBuffer, CapacityIsEnforced) {
  SramBuffer buf("tiny", 8);
  EXPECT_NO_THROW(buf.store<std::int32_t>(1, 42));  // bytes 4..7
  EXPECT_THROW(buf.store<std::int8_t>(8, 1), ResourceError);
  EXPECT_THROW(buf.store<std::int32_t>(2, 1), ResourceError);
  std::int8_t dst = 0;
  EXPECT_THROW(buf.read(-1, &dst, 1), ResourceError);
}

TEST(SramBuffer, ErrorMessageNamesTheBuffer) {
  SramBuffer buf("dwc_ifmap", 4);
  try {
    buf.store<std::int8_t>(100, 1);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_NE(std::string(e.what()).find("dwc_ifmap"), std::string::npos);
  }
}

TEST(SramBuffer, ClearContentsPreservesCounters) {
  SramBuffer buf("test", 16);
  buf.store<std::int8_t>(0, 9);
  buf.clear_contents();
  EXPECT_EQ(buf.load<std::int8_t>(0), 0);
  EXPECT_EQ(buf.counter().writes, 1);  // clear is not a counted write
}

TEST(SramBuffer, RejectsNonPositiveCapacity) {
  EXPECT_THROW(SramBuffer("bad", 0), PreconditionError);
  EXPECT_THROW(SramBuffer("bad", -5), PreconditionError);
}

// ------------------------------------------------------- external memory ---

TEST(ExternalMemory, SeparatesTrafficClasses) {
  ExternalMemory mem;
  mem.record_read(TrafficClass::kActivation, 100);
  mem.record_write(TrafficClass::kActivation, 50);
  mem.record_read(TrafficClass::kWeight, 30);
  mem.record_read(TrafficClass::kParameter, 7);
  EXPECT_EQ(mem.accesses(TrafficClass::kActivation), 150);
  EXPECT_EQ(mem.accesses(TrafficClass::kWeight), 30);
  EXPECT_EQ(mem.accesses(TrafficClass::kParameter), 7);
  EXPECT_EQ(mem.total_accesses(), 187);
  mem.reset();
  EXPECT_EQ(mem.total_accesses(), 0);
}

TEST(ExternalMemory, NegativeCountRejected) {
  ExternalMemory mem;
  EXPECT_THROW(mem.record_read(TrafficClass::kWeight, -1),
               PreconditionError);
}

TEST(ExternalMemory, TrafficClassNames) {
  EXPECT_EQ(traffic_class_name(TrafficClass::kActivation), "activation");
  EXPECT_EQ(traffic_class_name(TrafficClass::kWeight), "weight");
  EXPECT_EQ(traffic_class_name(TrafficClass::kParameter), "parameter");
}

// ------------------------------------------------------------- counters ---

TEST(AccessCounter, Accumulates) {
  AccessCounter a;
  a.record_read(10, 2);
  a.record_write(4);
  AccessCounter b;
  b.record_read(1);
  a += b;
  EXPECT_EQ(a.reads, 3);
  EXPECT_EQ(a.writes, 1);
  EXPECT_EQ(a.read_bytes, 11);
  EXPECT_EQ(a.total_accesses(), 4);
  EXPECT_EQ(a.total_bytes(), 15);
}

TEST(MacActivity, UtilizationAndZeroFraction) {
  MacActivity m;
  m.lane_cycles = 100;
  m.useful_macs = 80;
  m.zero_operand_macs = 20;
  EXPECT_DOUBLE_EQ(m.utilization(), 0.8);
  EXPECT_DOUBLE_EQ(m.zero_operand_fraction(), 0.25);
  MacActivity empty;
  EXPECT_DOUBLE_EQ(empty.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(empty.zero_operand_fraction(), 0.0);
}

// ------------------------------------------------------------- MAC lane ---

TEST(MacLane, MultiplyAndTrack) {
  MacLane lane;
  MacActivity act;
  EXPECT_EQ(lane.multiply(3, -4, act), -12);
  EXPECT_EQ(lane.multiply(0, 100, act), 0);
  EXPECT_EQ(act.lane_cycles, 2);
  EXPECT_EQ(act.useful_macs, 2);
  EXPECT_EQ(act.zero_operand_macs, 1);  // only the zero *activation* counts
  EXPECT_EQ(lane.multiply(5, 0, act), 0);
  EXPECT_EQ(act.zero_operand_macs, 1);  // zero weight is not gated
  lane.idle(act);
  EXPECT_EQ(act.lane_cycles, 4);
  EXPECT_EQ(act.useful_macs, 3);
}

TEST(MacLane, FullInt8Range) {
  MacLane lane;
  MacActivity act;
  EXPECT_EQ(lane.multiply(-128, -128, act), 16384);
  EXPECT_EQ(lane.multiply(-128, 127, act), -16256);
  EXPECT_EQ(lane.multiply(127, 127, act), 16129);
}

// ------------------------------------------------------------ adder tree ---

TEST(AdderTree, DepthMatchesFanIn) {
  EXPECT_EQ(AdderTree(9).depth(), 4);  // DWC engine: 9-input tree
  EXPECT_EQ(AdderTree(8).depth(), 3);  // PWC engine: 8-input tree
  EXPECT_EQ(AdderTree(2).depth(), 1);
  EXPECT_EQ(AdderTree(1).depth(), 0);
}

TEST(AdderTree, SumsExactly) {
  AdderTree tree(9);
  std::array<std::int32_t, 9> products{1, -2, 3, -4, 5, -6, 7, -8, 9};
  EXPECT_EQ(tree.sum(products), 5);
}

TEST(AdderTree, MatchesNaiveSummationOnRandomData) {
  AdderTree tree(8);
  std::array<std::int32_t, 8> p{};
  std::uint32_t state = 12345;
  for (int trial = 0; trial < 200; ++trial) {
    std::int64_t naive = 0;
    for (auto& v : p) {
      state = state * 1664525u + 1013904223u;
      v = static_cast<std::int32_t>(state % 40000u) - 20000;
      naive += v;
    }
    EXPECT_EQ(tree.sum(p), static_cast<std::int32_t>(naive));
  }
}

TEST(AdderTree, WrongOperandCountThrows) {
  AdderTree tree(9);
  std::array<std::int32_t, 8> p{};
  EXPECT_THROW((void)tree.sum(p), PreconditionError);
}

TEST(AdderTree, RejectsNonPositiveFanIn) {
  EXPECT_THROW(AdderTree(0), PreconditionError);
}

}  // namespace
}  // namespace edea::arch
