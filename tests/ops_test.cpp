// Tests for the golden operator library (src/nn/ops.*): float and integer
// convolutions, BN, ReLU, pooling, FC. Includes the core DSC identity:
// depthwise + pointwise == standard convolution with factorized kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/fixed_point.hpp"
#include "nn/ops.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::nn {
namespace {

FloatTensor random_tensor(Shape shape, Rng& rng, double stddev = 1.0) {
  FloatTensor t(shape);
  for (auto& v : t.storage()) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

// ------------------------------------------------------------ depthwise ---

TEST(DepthwiseConv, IdentityKernelPassesThrough) {
  // A 3x3 kernel with 1 at the center reproduces the input (stride 1).
  FloatTensor input(Shape{4, 4, 2});
  Rng rng(1);
  for (auto& v : input.storage()) v = static_cast<float>(rng.uniform());
  FloatTensor kernel(Shape{3, 3, 2});
  kernel(1, 1, 0) = 1.0f;
  kernel(1, 1, 1) = 1.0f;

  const FloatTensor out = depthwise_conv2d(input, kernel, {3, 1, 1});
  ASSERT_EQ(out.shape(), input.shape());
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int c = 0; c < 2; ++c) {
        EXPECT_FLOAT_EQ(out(i, j, c), input(i, j, c));
      }
    }
  }
}

TEST(DepthwiseConv, ChannelsAreIndependent) {
  Rng rng(2);
  FloatTensor input = random_tensor(Shape{6, 6, 3}, rng);
  FloatTensor kernel = random_tensor(Shape{3, 3, 3}, rng);
  const FloatTensor out = depthwise_conv2d(input, kernel, {3, 1, 1});

  // Zeroing channel 2 of the input must not affect channels 0/1.
  FloatTensor input2 = input;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) input2(i, j, 2) = 0.0f;
  }
  const FloatTensor out2 = depthwise_conv2d(input2, kernel, {3, 1, 1});
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_FLOAT_EQ(out(i, j, 0), out2(i, j, 0));
      EXPECT_FLOAT_EQ(out(i, j, 1), out2(i, j, 1));
    }
  }
}

TEST(DepthwiseConv, Stride2HalvesSpatialExtent) {
  Rng rng(3);
  FloatTensor input = random_tensor(Shape{8, 8, 4}, rng);
  FloatTensor kernel = random_tensor(Shape{3, 3, 4}, rng);
  const FloatTensor out = depthwise_conv2d(input, kernel, {3, 2, 1});
  EXPECT_EQ(out.shape(), (Shape{4, 4, 4}));
}

TEST(DepthwiseConv, ZeroPaddingAtBorders) {
  // All-ones input and all-ones kernel: interior output = 9, corner = 4.
  FloatTensor input(Shape{5, 5, 1}, 1.0f);
  FloatTensor kernel(Shape{3, 3, 1}, 1.0f);
  const FloatTensor out = depthwise_conv2d(input, kernel, {3, 1, 1});
  EXPECT_FLOAT_EQ(out(2, 2, 0), 9.0f);
  EXPECT_FLOAT_EQ(out(0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out(0, 2, 0), 6.0f);
}

TEST(DepthwiseConv, RejectsMismatchedChannels) {
  FloatTensor input(Shape{4, 4, 2});
  FloatTensor kernel(Shape{3, 3, 3});
  EXPECT_THROW((void)depthwise_conv2d(input, kernel, {3, 1, 1}),
               PreconditionError);
}

// ------------------------------------------------------------ pointwise ---

TEST(PointwiseConv, ComputesChannelMix) {
  FloatTensor input(Shape{1, 1, 3});
  input(0, 0, 0) = 1.0f;
  input(0, 0, 1) = 2.0f;
  input(0, 0, 2) = 3.0f;
  FloatTensor weights(Shape{2, 3});
  weights(0, 0) = 1.0f;
  weights(0, 1) = 0.0f;
  weights(0, 2) = -1.0f;
  weights(1, 0) = 0.5f;
  weights(1, 1) = 0.5f;
  weights(1, 2) = 0.5f;
  const FloatTensor out = pointwise_conv2d(input, weights);
  EXPECT_FLOAT_EQ(out(0, 0, 0), -2.0f);
  EXPECT_FLOAT_EQ(out(0, 0, 1), 3.0f);
}

TEST(PointwiseConv, IsSpatiallyLocal) {
  Rng rng(4);
  FloatTensor input = random_tensor(Shape{3, 3, 4}, rng);
  FloatTensor weights = random_tensor(Shape{2, 4}, rng);
  const FloatTensor out = pointwise_conv2d(input, weights);
  // Changing pixel (0,0) must only change output pixel (0,0).
  FloatTensor input2 = input;
  input2(0, 0, 1) += 1.0f;
  const FloatTensor out2 = pointwise_conv2d(input2, weights);
  EXPECT_NE(out(0, 0, 0), out2(0, 0, 0));
  EXPECT_FLOAT_EQ(out(1, 1, 0), out2(1, 1, 0));
  EXPECT_FLOAT_EQ(out(2, 2, 1), out2(2, 2, 1));
}

// --------------------------------------------- DSC factorization identity ---

TEST(DscIdentity, DepthwisePlusPointwiseEqualsFactorizedStandardConv) {
  // A standard conv whose kernel factorizes as W[k][i][j][d] =
  // pw[k][d] * dw[i][j][d] equals DWC followed by PWC. This is the
  // algebraic foundation of the paper's whole workload.
  Rng rng(5);
  const int D = 3, K = 4;
  FloatTensor input = random_tensor(Shape{6, 6, D}, rng);
  FloatTensor dw = random_tensor(Shape{3, 3, D}, rng);
  FloatTensor pw = random_tensor(Shape{K, D}, rng);

  FloatTensor full(Shape{K, 3, 3, D});
  for (int k = 0; k < K; ++k) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        for (int d = 0; d < D; ++d) {
          full(k, i, j, d) = pw(k, d) * dw(i, j, d);
        }
      }
    }
  }

  const FloatTensor via_dsc =
      pointwise_conv2d(depthwise_conv2d(input, dw, {3, 1, 1}), pw);
  const FloatTensor via_std = conv2d(input, full, {3, 1, 1});
  ASSERT_EQ(via_dsc.shape(), via_std.shape());
  for (std::size_t i = 0; i < via_dsc.size(); ++i) {
    EXPECT_NEAR(via_dsc.data()[i], via_std.data()[i], 1e-3f);
  }
}

// ------------------------------------------------------------------- BN ---

TEST(BatchNorm, EffectiveAffineForm) {
  BatchNormParams bn;
  bn.gamma = {2.0f};
  bn.beta = {1.0f};
  bn.mean = {3.0f};
  bn.var = {4.0f};
  bn.epsilon = 0.0f;
  // scale = 2/sqrt(4) = 1, shift = 1 - 2*3/2 = -2.
  EXPECT_FLOAT_EQ(bn.effective_scale(0), 1.0f);
  EXPECT_FLOAT_EQ(bn.effective_shift(0), -2.0f);

  FloatTensor x(Shape{1, 1, 1});
  x(0, 0, 0) = 5.0f;
  const FloatTensor y = batch_norm(x, bn);
  EXPECT_FLOAT_EQ(y(0, 0, 0), 3.0f);
}

TEST(BatchNorm, MatchesDefinitionElementwise) {
  Rng rng(6);
  const int C = 5;
  FloatTensor x = random_tensor(Shape{2, 2, C}, rng);
  BatchNormParams bn;
  for (int c = 0; c < C; ++c) {
    bn.gamma.push_back(static_cast<float>(rng.uniform(0.5, 1.5)));
    bn.beta.push_back(static_cast<float>(rng.normal(0.0, 0.3)));
    bn.mean.push_back(static_cast<float>(rng.normal(0.0, 0.3)));
    bn.var.push_back(static_cast<float>(rng.uniform(0.5, 2.0)));
  }
  const FloatTensor y = batch_norm(x, bn);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int c = 0; c < C; ++c) {
        const auto cc = static_cast<std::size_t>(c);
        const float expected =
            bn.gamma[cc] * (x(i, j, c) - bn.mean[cc]) /
                std::sqrt(bn.var[cc] + bn.epsilon) +
            bn.beta[cc];
        EXPECT_NEAR(y(i, j, c), expected, 1e-5f);
      }
    }
  }
}

TEST(Relu, ClampsNegatives) {
  FloatTensor x(Shape{3});
  x(0) = -1.0f;
  x(1) = 0.0f;
  x(2) = 2.0f;
  const FloatTensor y = relu(x);
  EXPECT_FLOAT_EQ(y(0), 0.0f);
  EXPECT_FLOAT_EQ(y(1), 0.0f);
  EXPECT_FLOAT_EQ(y(2), 2.0f);
}

// ------------------------------------------------------- pooling and FC ---

TEST(GlobalAvgPool, AveragesEachChannel) {
  FloatTensor x(Shape{2, 2, 2});
  x(0, 0, 0) = 1.0f;
  x(0, 1, 0) = 2.0f;
  x(1, 0, 0) = 3.0f;
  x(1, 1, 0) = 4.0f;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) x(i, j, 1) = 10.0f;
  }
  const FloatTensor y = global_avg_pool(x);
  EXPECT_FLOAT_EQ(y(0), 2.5f);
  EXPECT_FLOAT_EQ(y(1), 10.0f);
}

TEST(Linear, MatrixVectorPlusBias) {
  FloatTensor x(Shape{2});
  x(0) = 1.0f;
  x(1) = 2.0f;
  FloatTensor w(Shape{2, 2});
  w(0, 0) = 1.0f;
  w(0, 1) = 1.0f;
  w(1, 0) = -1.0f;
  w(1, 1) = 1.0f;
  FloatTensor b(Shape{2});
  b(0) = 0.5f;
  b(1) = -0.5f;
  const FloatTensor y = linear(x, w, b);
  EXPECT_FLOAT_EQ(y(0), 3.5f);
  EXPECT_FLOAT_EQ(y(1), 0.5f);
}

TEST(Softmax, SumsToOneAndOrdersPreserved) {
  FloatTensor x(Shape{3});
  x(0) = 1.0f;
  x(1) = 3.0f;
  x(2) = 2.0f;
  const FloatTensor p = softmax(x);
  EXPECT_NEAR(p(0) + p(1) + p(2), 1.0f, 1e-6f);
  EXPECT_GT(p(1), p(2));
  EXPECT_GT(p(2), p(0));
  EXPECT_EQ(argmax(x), 1);
}

TEST(Softmax, StableForLargeLogits) {
  FloatTensor x(Shape{2});
  x(0) = 1000.0f;
  x(1) = 999.0f;
  const FloatTensor p = softmax(x);
  EXPECT_FALSE(std::isnan(p(0)));
  EXPECT_GT(p(0), p(1));
}

// ------------------------------------------------------ integer variants ---

TEST(IntegerConv, DepthwiseMatchesFloatOnIntegerData) {
  // With integer-valued float inputs, the int8 path must agree exactly.
  Rng rng(7);
  const int D = 4;
  Int8Tensor input_q(Shape{5, 5, D});
  Int8Tensor kernel_q(Shape{3, 3, D});
  FloatTensor input_f(Shape{5, 5, D});
  FloatTensor kernel_f(Shape{3, 3, D});
  for (std::size_t i = 0; i < input_q.size(); ++i) {
    const auto v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    input_q.storage()[i] = v;
    input_f.storage()[i] = static_cast<float>(v);
  }
  for (std::size_t i = 0; i < kernel_q.size(); ++i) {
    const auto v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    kernel_q.storage()[i] = v;
    kernel_f.storage()[i] = static_cast<float>(v);
  }
  for (const int stride : {1, 2}) {
    const Int32Tensor out_q =
        depthwise_conv2d_q(input_q, kernel_q, {3, stride, 1});
    const FloatTensor out_f =
        depthwise_conv2d(input_f, kernel_f, {3, stride, 1});
    ASSERT_EQ(out_q.shape(), out_f.shape());
    for (std::size_t i = 0; i < out_q.size(); ++i) {
      EXPECT_FLOAT_EQ(static_cast<float>(out_q.storage()[i]),
                      out_f.storage()[i]);
    }
  }
}

TEST(IntegerConv, PointwiseMatchesFloatOnIntegerData) {
  Rng rng(8);
  const int D = 8, K = 5;
  Int8Tensor input_q(Shape{3, 3, D});
  Int8Tensor w_q(Shape{K, D});
  FloatTensor input_f(Shape{3, 3, D});
  FloatTensor w_f(Shape{K, D});
  for (std::size_t i = 0; i < input_q.size(); ++i) {
    const auto v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    input_q.storage()[i] = v;
    input_f.storage()[i] = static_cast<float>(v);
  }
  for (std::size_t i = 0; i < w_q.size(); ++i) {
    const auto v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    w_q.storage()[i] = v;
    w_f.storage()[i] = static_cast<float>(v);
  }
  const Int32Tensor out_q = pointwise_conv2d_q(input_q, w_q);
  const FloatTensor out_f = pointwise_conv2d(input_f, w_f);
  for (std::size_t i = 0; i < out_q.size(); ++i) {
    EXPECT_FLOAT_EQ(static_cast<float>(out_q.storage()[i]),
                    out_f.storage()[i]);
  }
}

TEST(IntegerConv, DepthwiseAccumulatorStaysWithin24Bits) {
  // Worst-case 3x3 depthwise accumulation: 9 * 127 * (-128) - well inside
  // the silicon's 24-bit accumulator (Sec. III-C / Fig. 6).
  Int8Tensor input(Shape{3, 3, 1}, static_cast<std::int8_t>(-128));
  Int8Tensor kernel(Shape{3, 3, 1}, static_cast<std::int8_t>(127));
  const Int32Tensor out = depthwise_conv2d_q(input, kernel, {3, 1, 1});
  EXPECT_TRUE(arch::fits_signed_bits(max_abs_acc(out), 24));
}

TEST(IntegerConv, MaxAbsAcc) {
  Int32Tensor t(Shape{2, 1, 1});
  t(0, 0, 0) = -500;
  t(1, 0, 0) = 200;
  EXPECT_EQ(max_abs_acc(t), 500);
}

TEST(Conv2dStandard, KnownSmallCase) {
  FloatTensor input(Shape{3, 3, 1});
  float v = 1.0f;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) input(i, j, 0) = v++;
  }
  FloatTensor w(Shape{1, 3, 3, 1}, 1.0f);
  const FloatTensor out = conv2d(input, w, {3, 1, 1});
  // Center output = sum of all inputs = 45.
  EXPECT_FLOAT_EQ(out(1, 1, 0), 45.0f);
}

}  // namespace
}  // namespace edea::nn
