// Tests for the golden operator library (src/nn/ops.*): float and integer
// convolutions, BN, ReLU, pooling, FC. Includes the core DSC identity:
// depthwise + pointwise == standard convolution with factorized kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/fixed_point.hpp"
#include "nn/ops.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::nn {
namespace {

FloatTensor random_tensor(Shape shape, Rng& rng, double stddev = 1.0) {
  FloatTensor t(shape);
  for (auto& v : t.storage()) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

// ------------------------------------------------------------ depthwise ---

TEST(DepthwiseConv, IdentityKernelPassesThrough) {
  // A 3x3 kernel with 1 at the center reproduces the input (stride 1).
  FloatTensor input(Shape{4, 4, 2});
  Rng rng(1);
  for (auto& v : input.storage()) v = static_cast<float>(rng.uniform());
  FloatTensor kernel(Shape{3, 3, 2});
  kernel(1, 1, 0) = 1.0f;
  kernel(1, 1, 1) = 1.0f;

  const FloatTensor out = depthwise_conv2d(input, kernel, {3, 1, 1});
  ASSERT_EQ(out.shape(), input.shape());
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int c = 0; c < 2; ++c) {
        EXPECT_FLOAT_EQ(out(i, j, c), input(i, j, c));
      }
    }
  }
}

TEST(DepthwiseConv, ChannelsAreIndependent) {
  Rng rng(2);
  FloatTensor input = random_tensor(Shape{6, 6, 3}, rng);
  FloatTensor kernel = random_tensor(Shape{3, 3, 3}, rng);
  const FloatTensor out = depthwise_conv2d(input, kernel, {3, 1, 1});

  // Zeroing channel 2 of the input must not affect channels 0/1.
  FloatTensor input2 = input;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) input2(i, j, 2) = 0.0f;
  }
  const FloatTensor out2 = depthwise_conv2d(input2, kernel, {3, 1, 1});
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_FLOAT_EQ(out(i, j, 0), out2(i, j, 0));
      EXPECT_FLOAT_EQ(out(i, j, 1), out2(i, j, 1));
    }
  }
}

TEST(DepthwiseConv, Stride2HalvesSpatialExtent) {
  Rng rng(3);
  FloatTensor input = random_tensor(Shape{8, 8, 4}, rng);
  FloatTensor kernel = random_tensor(Shape{3, 3, 4}, rng);
  const FloatTensor out = depthwise_conv2d(input, kernel, {3, 2, 1});
  EXPECT_EQ(out.shape(), (Shape{4, 4, 4}));
}

TEST(DepthwiseConv, ZeroPaddingAtBorders) {
  // All-ones input and all-ones kernel: interior output = 9, corner = 4.
  FloatTensor input(Shape{5, 5, 1}, 1.0f);
  FloatTensor kernel(Shape{3, 3, 1}, 1.0f);
  const FloatTensor out = depthwise_conv2d(input, kernel, {3, 1, 1});
  EXPECT_FLOAT_EQ(out(2, 2, 0), 9.0f);
  EXPECT_FLOAT_EQ(out(0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out(0, 2, 0), 6.0f);
}

TEST(DepthwiseConv, RejectsMismatchedChannels) {
  FloatTensor input(Shape{4, 4, 2});
  FloatTensor kernel(Shape{3, 3, 3});
  EXPECT_THROW((void)depthwise_conv2d(input, kernel, {3, 1, 1}),
               PreconditionError);
}

// ------------------------------------------------- dilation / multiplier ---

TEST(DepthwiseConv, DilationSkipsTapsHandComputed) {
  // input(i, j) = 10i + j on a 5x5 single-channel map; an all-ones 3x3
  // kernel at dilation 2 (no padding) reads the taps at rows/cols
  // {0, 2, 4} exactly once:
  //   (0+2+4) + (20+22+24) + (40+42+44) = 198.
  FloatTensor input(Shape{5, 5, 1});
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) input(i, j, 0) = static_cast<float>(10 * i + j);
  }
  FloatTensor kernel(Shape{3, 3, 1}, 1.0f);
  const FloatTensor out =
      depthwise_conv2d(input, kernel, {3, 1, /*padding=*/0, /*dilation=*/2});
  ASSERT_EQ(out.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(out(0, 0, 0), 198.0f);
}

TEST(DepthwiseConv, DilatedCenterTapWithScaledPaddingIsIdentity) {
  // padding = dilation keeps the 'same' geometry of a 3x3 kernel, and a
  // 1-at-the-center kernel passes the input through at any dilation.
  Rng rng(4);
  FloatTensor input = random_tensor(Shape{4, 4, 2}, rng);
  FloatTensor kernel(Shape{3, 3, 2});
  kernel(1, 1, 0) = 1.0f;
  kernel(1, 1, 1) = 1.0f;
  const FloatTensor out =
      depthwise_conv2d(input, kernel, {3, 1, /*padding=*/2, /*dilation=*/2});
  ASSERT_EQ(out.shape(), input.shape());
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(out(i, j, 0), input(i, j, 0));
      EXPECT_FLOAT_EQ(out(i, j, 1), input(i, j, 1));
    }
  }
}

TEST(DepthwiseConv, DilatedZeroPaddingCountsInBoundsTaps) {
  // All-ones operands at dilation 2, padding 2: the output counts how many
  // dilated taps land inside the 5x5 map. Corner taps sit at {-2, 0, 2} in
  // each axis -> 2x2 = 4; an edge sees 2x3 = 6; the center all 9.
  FloatTensor input(Shape{5, 5, 1}, 1.0f);
  FloatTensor kernel(Shape{3, 3, 1}, 1.0f);
  const FloatTensor out =
      depthwise_conv2d(input, kernel, {3, 1, /*padding=*/2, /*dilation=*/2});
  ASSERT_EQ(out.shape(), (Shape{5, 5, 1}));
  EXPECT_FLOAT_EQ(out(0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out(0, 2, 0), 6.0f);
  EXPECT_FLOAT_EQ(out(2, 2, 0), 9.0f);
}

TEST(DepthwiseConv, DepthMultiplierHandComputed) {
  // D = 2 inputs, 4 kernel channels -> multiplier 2: output channel c
  // reads input channel c / 2. With a 1x1 kernel the arithmetic is bare:
  // in = [5, 7], w = [2, 3, 4, -1] -> out = [10, 15, 28, -7].
  FloatTensor input(Shape{1, 1, 2});
  input(0, 0, 0) = 5.0f;
  input(0, 0, 1) = 7.0f;
  FloatTensor kernel(Shape{1, 1, 4});
  kernel(0, 0, 0) = 2.0f;
  kernel(0, 0, 1) = 3.0f;
  kernel(0, 0, 2) = 4.0f;
  kernel(0, 0, 3) = -1.0f;
  const FloatTensor out =
      depthwise_conv2d(input, kernel, {1, 1, /*padding=*/0});
  ASSERT_EQ(out.shape(), (Shape{1, 1, 4}));
  EXPECT_FLOAT_EQ(out(0, 0, 0), 10.0f);
  EXPECT_FLOAT_EQ(out(0, 0, 1), 15.0f);
  EXPECT_FLOAT_EQ(out(0, 0, 2), 28.0f);
  EXPECT_FLOAT_EQ(out(0, 0, 3), -7.0f);
}

TEST(DepthwiseConv, DepthMultiplierChannelsStayIndependent) {
  // At multiplier 2, zeroing input channel 1 may only move output
  // channels 2 and 3 (the ones that read it).
  Rng rng(5);
  FloatTensor input = random_tensor(Shape{4, 4, 2}, rng);
  FloatTensor kernel = random_tensor(Shape{3, 3, 4}, rng);
  const FloatTensor out = depthwise_conv2d(input, kernel, {3, 1, 1});
  FloatTensor zeroed = input;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) zeroed(i, j, 1) = 0.0f;
  }
  const FloatTensor out2 = depthwise_conv2d(zeroed, kernel, {3, 1, 1});
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(out2(i, j, 0), out(i, j, 0));
      EXPECT_FLOAT_EQ(out2(i, j, 1), out(i, j, 1));
    }
  }
}

TEST(DepthwiseConv, RejectsNonDividingMultiplier) {
  // 6 kernel channels over 4 input channels: no integer multiplier.
  FloatTensor input(Shape{4, 4, 4});
  FloatTensor kernel(Shape{3, 3, 6});
  EXPECT_THROW((void)depthwise_conv2d(input, kernel, {3, 1, 1}),
               PreconditionError);
}

TEST(IntegerConv, DilatedMultipliedDepthwiseHandComputed) {
  // The integer path with both knobs at once: D = 2, multiplier 2,
  // dilation 2 on a 5x5 map, no padding -> a single output position whose
  // accumulator sums nine dilated taps of the selected input channel.
  Int8Tensor input(Shape{5, 5, 2});
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      input(i, j, 0) = static_cast<std::int8_t>(i + j);
      input(i, j, 1) = static_cast<std::int8_t>(2 * i - j);
    }
  }
  Int8Tensor kernel(Shape{3, 3, 4});
  for (auto& v : kernel.storage()) v = 1;
  const Int32Tensor acc =
      depthwise_conv2d_q(input, kernel, {3, 1, /*padding=*/0, /*dilation=*/2});
  ASSERT_EQ(acc.shape(), (Shape{1, 1, 4}));
  // Channel 0 taps (i, j) in {0,2,4}^2 of input channel 0: sum(i+j) = 36.
  // Input channel 1 over the same taps: sum(2i - j) = 18.
  EXPECT_EQ(acc(0, 0, 0), 36);
  EXPECT_EQ(acc(0, 0, 1), 36);
  EXPECT_EQ(acc(0, 0, 2), 18);
  EXPECT_EQ(acc(0, 0, 3), 18);
}

// ------------------------------------------------------------ pointwise ---

TEST(PointwiseConv, ComputesChannelMix) {
  FloatTensor input(Shape{1, 1, 3});
  input(0, 0, 0) = 1.0f;
  input(0, 0, 1) = 2.0f;
  input(0, 0, 2) = 3.0f;
  FloatTensor weights(Shape{2, 3});
  weights(0, 0) = 1.0f;
  weights(0, 1) = 0.0f;
  weights(0, 2) = -1.0f;
  weights(1, 0) = 0.5f;
  weights(1, 1) = 0.5f;
  weights(1, 2) = 0.5f;
  const FloatTensor out = pointwise_conv2d(input, weights);
  EXPECT_FLOAT_EQ(out(0, 0, 0), -2.0f);
  EXPECT_FLOAT_EQ(out(0, 0, 1), 3.0f);
}

TEST(PointwiseConv, IsSpatiallyLocal) {
  Rng rng(4);
  FloatTensor input = random_tensor(Shape{3, 3, 4}, rng);
  FloatTensor weights = random_tensor(Shape{2, 4}, rng);
  const FloatTensor out = pointwise_conv2d(input, weights);
  // Changing pixel (0,0) must only change output pixel (0,0).
  FloatTensor input2 = input;
  input2(0, 0, 1) += 1.0f;
  const FloatTensor out2 = pointwise_conv2d(input2, weights);
  EXPECT_NE(out(0, 0, 0), out2(0, 0, 0));
  EXPECT_FLOAT_EQ(out(1, 1, 0), out2(1, 1, 0));
  EXPECT_FLOAT_EQ(out(2, 2, 1), out2(2, 2, 1));
}

// --------------------------------------------- DSC factorization identity ---

TEST(DscIdentity, DepthwisePlusPointwiseEqualsFactorizedStandardConv) {
  // A standard conv whose kernel factorizes as W[k][i][j][d] =
  // pw[k][d] * dw[i][j][d] equals DWC followed by PWC. This is the
  // algebraic foundation of the paper's whole workload.
  Rng rng(5);
  const int D = 3, K = 4;
  FloatTensor input = random_tensor(Shape{6, 6, D}, rng);
  FloatTensor dw = random_tensor(Shape{3, 3, D}, rng);
  FloatTensor pw = random_tensor(Shape{K, D}, rng);

  FloatTensor full(Shape{K, 3, 3, D});
  for (int k = 0; k < K; ++k) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        for (int d = 0; d < D; ++d) {
          full(k, i, j, d) = pw(k, d) * dw(i, j, d);
        }
      }
    }
  }

  const FloatTensor via_dsc =
      pointwise_conv2d(depthwise_conv2d(input, dw, {3, 1, 1}), pw);
  const FloatTensor via_std = conv2d(input, full, {3, 1, 1});
  ASSERT_EQ(via_dsc.shape(), via_std.shape());
  for (std::size_t i = 0; i < via_dsc.size(); ++i) {
    EXPECT_NEAR(via_dsc.data()[i], via_std.data()[i], 1e-3f);
  }
}

// ------------------------------------------------------------------- BN ---

TEST(BatchNorm, EffectiveAffineForm) {
  BatchNormParams bn;
  bn.gamma = {2.0f};
  bn.beta = {1.0f};
  bn.mean = {3.0f};
  bn.var = {4.0f};
  bn.epsilon = 0.0f;
  // scale = 2/sqrt(4) = 1, shift = 1 - 2*3/2 = -2.
  EXPECT_FLOAT_EQ(bn.effective_scale(0), 1.0f);
  EXPECT_FLOAT_EQ(bn.effective_shift(0), -2.0f);

  FloatTensor x(Shape{1, 1, 1});
  x(0, 0, 0) = 5.0f;
  const FloatTensor y = batch_norm(x, bn);
  EXPECT_FLOAT_EQ(y(0, 0, 0), 3.0f);
}

TEST(BatchNorm, MatchesDefinitionElementwise) {
  Rng rng(6);
  const int C = 5;
  FloatTensor x = random_tensor(Shape{2, 2, C}, rng);
  BatchNormParams bn;
  for (int c = 0; c < C; ++c) {
    bn.gamma.push_back(static_cast<float>(rng.uniform(0.5, 1.5)));
    bn.beta.push_back(static_cast<float>(rng.normal(0.0, 0.3)));
    bn.mean.push_back(static_cast<float>(rng.normal(0.0, 0.3)));
    bn.var.push_back(static_cast<float>(rng.uniform(0.5, 2.0)));
  }
  const FloatTensor y = batch_norm(x, bn);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int c = 0; c < C; ++c) {
        const auto cc = static_cast<std::size_t>(c);
        const float expected =
            bn.gamma[cc] * (x(i, j, c) - bn.mean[cc]) /
                std::sqrt(bn.var[cc] + bn.epsilon) +
            bn.beta[cc];
        EXPECT_NEAR(y(i, j, c), expected, 1e-5f);
      }
    }
  }
}

TEST(Relu, ClampsNegatives) {
  FloatTensor x(Shape{3});
  x(0) = -1.0f;
  x(1) = 0.0f;
  x(2) = 2.0f;
  const FloatTensor y = relu(x);
  EXPECT_FLOAT_EQ(y(0), 0.0f);
  EXPECT_FLOAT_EQ(y(1), 0.0f);
  EXPECT_FLOAT_EQ(y(2), 2.0f);
}

// ------------------------------------------------------- pooling and FC ---

TEST(GlobalAvgPool, AveragesEachChannel) {
  FloatTensor x(Shape{2, 2, 2});
  x(0, 0, 0) = 1.0f;
  x(0, 1, 0) = 2.0f;
  x(1, 0, 0) = 3.0f;
  x(1, 1, 0) = 4.0f;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) x(i, j, 1) = 10.0f;
  }
  const FloatTensor y = global_avg_pool(x);
  EXPECT_FLOAT_EQ(y(0), 2.5f);
  EXPECT_FLOAT_EQ(y(1), 10.0f);
}

TEST(Linear, MatrixVectorPlusBias) {
  FloatTensor x(Shape{2});
  x(0) = 1.0f;
  x(1) = 2.0f;
  FloatTensor w(Shape{2, 2});
  w(0, 0) = 1.0f;
  w(0, 1) = 1.0f;
  w(1, 0) = -1.0f;
  w(1, 1) = 1.0f;
  FloatTensor b(Shape{2});
  b(0) = 0.5f;
  b(1) = -0.5f;
  const FloatTensor y = linear(x, w, b);
  EXPECT_FLOAT_EQ(y(0), 3.5f);
  EXPECT_FLOAT_EQ(y(1), 0.5f);
}

TEST(Softmax, SumsToOneAndOrdersPreserved) {
  FloatTensor x(Shape{3});
  x(0) = 1.0f;
  x(1) = 3.0f;
  x(2) = 2.0f;
  const FloatTensor p = softmax(x);
  EXPECT_NEAR(p(0) + p(1) + p(2), 1.0f, 1e-6f);
  EXPECT_GT(p(1), p(2));
  EXPECT_GT(p(2), p(0));
  EXPECT_EQ(argmax(x), 1);
}

TEST(Softmax, StableForLargeLogits) {
  FloatTensor x(Shape{2});
  x(0) = 1000.0f;
  x(1) = 999.0f;
  const FloatTensor p = softmax(x);
  EXPECT_FALSE(std::isnan(p(0)));
  EXPECT_GT(p(0), p(1));
}

// ------------------------------------------------------ integer variants ---

TEST(IntegerConv, DepthwiseMatchesFloatOnIntegerData) {
  // With integer-valued float inputs, the int8 path must agree exactly.
  Rng rng(7);
  const int D = 4;
  Int8Tensor input_q(Shape{5, 5, D});
  Int8Tensor kernel_q(Shape{3, 3, D});
  FloatTensor input_f(Shape{5, 5, D});
  FloatTensor kernel_f(Shape{3, 3, D});
  for (std::size_t i = 0; i < input_q.size(); ++i) {
    const auto v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    input_q.storage()[i] = v;
    input_f.storage()[i] = static_cast<float>(v);
  }
  for (std::size_t i = 0; i < kernel_q.size(); ++i) {
    const auto v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    kernel_q.storage()[i] = v;
    kernel_f.storage()[i] = static_cast<float>(v);
  }
  for (const int stride : {1, 2}) {
    const Int32Tensor out_q =
        depthwise_conv2d_q(input_q, kernel_q, {3, stride, 1});
    const FloatTensor out_f =
        depthwise_conv2d(input_f, kernel_f, {3, stride, 1});
    ASSERT_EQ(out_q.shape(), out_f.shape());
    for (std::size_t i = 0; i < out_q.size(); ++i) {
      EXPECT_FLOAT_EQ(static_cast<float>(out_q.storage()[i]),
                      out_f.storage()[i]);
    }
  }
}

TEST(IntegerConv, PointwiseMatchesFloatOnIntegerData) {
  Rng rng(8);
  const int D = 8, K = 5;
  Int8Tensor input_q(Shape{3, 3, D});
  Int8Tensor w_q(Shape{K, D});
  FloatTensor input_f(Shape{3, 3, D});
  FloatTensor w_f(Shape{K, D});
  for (std::size_t i = 0; i < input_q.size(); ++i) {
    const auto v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    input_q.storage()[i] = v;
    input_f.storage()[i] = static_cast<float>(v);
  }
  for (std::size_t i = 0; i < w_q.size(); ++i) {
    const auto v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    w_q.storage()[i] = v;
    w_f.storage()[i] = static_cast<float>(v);
  }
  const Int32Tensor out_q = pointwise_conv2d_q(input_q, w_q);
  const FloatTensor out_f = pointwise_conv2d(input_f, w_f);
  for (std::size_t i = 0; i < out_q.size(); ++i) {
    EXPECT_FLOAT_EQ(static_cast<float>(out_q.storage()[i]),
                    out_f.storage()[i]);
  }
}

TEST(IntegerConv, DepthwiseAccumulatorStaysWithin24Bits) {
  // Worst-case 3x3 depthwise accumulation: 9 * 127 * (-128) - well inside
  // the silicon's 24-bit accumulator (Sec. III-C / Fig. 6).
  Int8Tensor input(Shape{3, 3, 1}, static_cast<std::int8_t>(-128));
  Int8Tensor kernel(Shape{3, 3, 1}, static_cast<std::int8_t>(127));
  const Int32Tensor out = depthwise_conv2d_q(input, kernel, {3, 1, 1});
  EXPECT_TRUE(arch::fits_signed_bits(max_abs_acc(out), 24));
}

TEST(IntegerConv, MaxAbsAcc) {
  Int32Tensor t(Shape{2, 1, 1});
  t(0, 0, 0) = -500;
  t(1, 0, 0) = 200;
  EXPECT_EQ(max_abs_acc(t), 500);
}

TEST(Conv2dStandard, KnownSmallCase) {
  FloatTensor input(Shape{3, 3, 1});
  float v = 1.0f;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) input(i, j, 0) = v++;
  }
  FloatTensor w(Shape{1, 3, 3, 1}, 1.0f);
  const FloatTensor out = conv2d(input, w, {3, 1, 1});
  // Center output = sum of all inputs = 45.
  EXPECT_FLOAT_EQ(out(1, 1, 0), 45.0f);
}

}  // namespace
}  // namespace edea::nn
