// thread_pool_test - the parallel runtime's contract: correct results
// written by index, clean behavior on empty ranges, exception propagation
// with cancellation, and progress under nesting (tasks that submit or
// parallelize from inside the pool).
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace edea::util {
namespace {

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  EXPECT_GE(ThreadPool::shared().size(), 1u);
  ThreadPool one(1);
  EXPECT_EQ(one.size(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, NestedSubmitMakesProgress) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 10; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 11);
}

TEST(ParallelForTest, ComputesEveryIndexExactlyOnce) {
  constexpr std::int64_t kN = 1000;
  std::vector<int> hits(kN, 0);
  parallel_for(0, kN, [&hits](std::int64_t i) {
    hits[static_cast<std::size_t>(i)] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), kN);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, RespectsNonZeroBegin) {
  std::vector<std::int64_t> values(8, -1);
  parallel_for(3, 11, [&values](std::int64_t i) {
    values[static_cast<std::size_t>(i - 3)] = i * i;
  });
  for (std::int64_t i = 3; i < 11; ++i) {
    EXPECT_EQ(values[static_cast<std::size_t>(i - 3)], i * i);
  }
}

TEST(ParallelForTest, EmptyRangeInvokesNothing) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&calls](std::int64_t) { ++calls; });
  parallel_for(7, 3, [&calls](std::int64_t) { ++calls; });  // inverted
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleIterationRunsOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  parallel_for(0, 1, [&ran_on](std::int64_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ParallelForTest, PropagatesFirstExceptionAndCancelsTail) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> ran{0};
  EXPECT_THROW(
      parallel_for(
          0, 100000,
          [&ran](std::int64_t i) {
            ++ran;
            if (i == 3) throw std::runtime_error("iteration failed");
          },
          &pool),
      std::runtime_error);
  // Cancellation: nowhere near the full range should have run.
  EXPECT_LT(ran.load(), 100000);
  // The pool is intact afterwards.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ParallelForTest, PreconditionErrorsCrossThreads) {
  EXPECT_THROW(parallel_for(0, 64,
                            [](std::int64_t) {
                              EDEA_REQUIRE(false, "always fails");
                            }),
               PreconditionError);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // Every outer iteration issues an inner parallel_for on the same pool;
  // caller participation guarantees progress even with one worker.
  ThreadPool pool(1);
  std::atomic<std::int64_t> total{0};
  parallel_for(
      0, 8,
      [&total, &pool](std::int64_t) {
        parallel_for(0, 16, [&total](std::int64_t) { ++total; }, &pool);
      },
      &pool);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelForTest, DeterministicWhenWritingByIndex) {
  constexpr std::int64_t kN = 513;
  std::vector<std::int64_t> reference(kN);
  for (std::int64_t i = 0; i < kN; ++i) reference[i] = i * 31 + 7;

  for (int repeat = 0; repeat < 5; ++repeat) {
    std::vector<std::int64_t> out(kN, 0);
    parallel_for(0, kN, [&out](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = i * 31 + 7;
    });
    EXPECT_EQ(out, reference);
  }
}

}  // namespace
}  // namespace edea::util
