// server_cli_test - the simulation server's and client's command lines as
// library contracts: the --help texts document every flag (the satellite
// acceptance: each documented option appears in the output), and the
// parsers accept the documented grammar while rejecting malformed or
// contradictory invocations with a reason.
#include "service/server_cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/client_cli.hpp"
#include "service/router_cli.hpp"

namespace edea::service {
namespace {

ServerConfig parse(const std::vector<const char*>& args) {
  return parse_server_args(static_cast<int>(args.size()), args.data());
}

ClientConfig parse_client(const std::vector<const char*>& args) {
  return parse_client_args(static_cast<int>(args.size()), args.data());
}

TEST(ServerCliTest, HelpTextMentionsEveryDocumentedFlag) {
  const std::string usage = server_usage();
  for (const char* flag :
       {"--help", "--listen", "--max-sessions", "--cache-file", "--workers",
        "--cache", "--tile-parallelism", "--backend", "--batch",
        "--dilation", "--depth-multiplier", "--verify", "--max-queue",
        "--busy-retry-ms", "--ordered"}) {
    SCOPED_TRACE(flag);
    EXPECT_NE(usage.find(flag), std::string::npos)
        << "flag missing from simulation_server --help output";
  }
  // Both serving modes are shown as invocation forms.
  EXPECT_NE(usage.find("stdio mode"), std::string::npos);
  EXPECT_NE(usage.find("TCP socket mode"), std::string::npos);
}

TEST(ServerCliTest, DefaultsMatchTheServiceDefaults) {
  const ServerConfig config = parse({});
  EXPECT_TRUE(config.error.empty()) << config.error;
  EXPECT_FALSE(config.help);
  EXPECT_FALSE(config.verify);
  EXPECT_FALSE(config.listen);
  EXPECT_EQ(config.max_sessions, 0u);
  EXPECT_TRUE(config.cache_file.empty());
  EXPECT_EQ(config.service.worker_threads, 0u);
  EXPECT_EQ(config.service.cache_capacity, ServiceOptions().cache_capacity);
  EXPECT_EQ(config.service.tile_parallelism, 1);
  EXPECT_EQ(config.backend, "edea");
  EXPECT_EQ(config.batch, 1);
  EXPECT_EQ(config.dilation, 1);
  EXPECT_EQ(config.depth_multiplier, 1);
  EXPECT_EQ(config.service.max_queue, 0u);
  EXPECT_EQ(config.busy_retry_ms, 25);
  EXPECT_FALSE(config.ordered);
}

TEST(ServerCliTest, EveryFlagParses) {
  const ServerConfig config =
      parse({"--listen", "47163", "--max-sessions", "2", "--cache-file",
             "/tmp/edea.cache", "--workers", "3", "--cache", "64",
             "--tile-parallelism", "4", "--backend", "serialized",
             "--batch", "8", "--dilation", "2", "--depth-multiplier", "3",
             "--max-queue", "2", "--busy-retry-ms", "5", "--ordered"});
  ASSERT_TRUE(config.error.empty()) << config.error;
  EXPECT_TRUE(config.listen);
  EXPECT_EQ(config.port, 47163);
  EXPECT_EQ(config.max_sessions, 2u);
  EXPECT_EQ(config.cache_file, "/tmp/edea.cache");
  EXPECT_EQ(config.service.worker_threads, 3u);
  EXPECT_EQ(config.service.cache_capacity, 64u);
  EXPECT_EQ(config.service.tile_parallelism, 4);
  EXPECT_EQ(config.backend, "serialized");
  EXPECT_EQ(config.batch, 8);
  EXPECT_EQ(config.dilation, 2);
  EXPECT_EQ(config.depth_multiplier, 3);
  EXPECT_EQ(config.service.max_queue, 2u);
  EXPECT_EQ(config.busy_retry_ms, 5);
  EXPECT_TRUE(config.ordered);
}

TEST(ServerCliTest, ListenPortMustBeNumericAndInRange) {
  // The satellite bugfix contract: a port outside [0, 65535] or a
  // non-numeric string answers a clear range-naming error, never
  // whatever std::stoi would have done.
  for (const char* bad :
       {"65536", "70000", "99999999999999999999", "-1", "-0", "8080x",
        "abc", "0x1F90", " 80", ""}) {
    SCOPED_TRACE(std::string("port '") + bad + "'");
    const ServerConfig config = parse({"--listen", bad});
    EXPECT_FALSE(config.error.empty());
    EXPECT_NE(config.error.find("[0, 65535]"), std::string::npos)
        << config.error;
    EXPECT_FALSE(config.listen);
  }
  // The boundary values themselves are fine.
  EXPECT_TRUE(parse({"--listen", "0"}).error.empty());
  const ServerConfig top = parse({"--listen", "65535"});
  EXPECT_TRUE(top.error.empty());
  EXPECT_EQ(top.port, 65535);
}

TEST(ServerCliTest, UnknownBackendIsRejectedNamingTheRegistry) {
  const ServerConfig config = parse({"--backend", "warp-drive"});
  ASSERT_FALSE(config.error.empty());
  EXPECT_NE(config.error.find("warp-drive"), std::string::npos);
  EXPECT_NE(config.error.find("edea"), std::string::npos);
  EXPECT_NE(config.error.find("serialized"), std::string::npos);
  EXPECT_FALSE(parse({"--backend"}).error.empty());  // missing value
}

TEST(ServerCliTest, HelpAndVerifyFlagsParse) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"--verify"}).verify);
}

TEST(ServerCliTest, MalformedValuesAreRejectedWithAReason) {
  for (const std::vector<const char*>& args :
       std::vector<std::vector<const char*>>{
           {"--listen"},                     // missing value
           {"--listen", "65536"},            // port out of range
           {"--listen", "-1"},               // negative
           {"--listen", "4x"},               // trailing junk
           {"--max-sessions", "two"},        // non-numeric
           {"--workers", "-3"},              // negative wraps in stoul
           {"--cache", "10bb"},              // trailing junk
           {"--tile-parallelism", "0"},      // zero width is a caller bug
           {"--tile-parallelism", "-4"},     // negative width
           {"--batch", "0"},                 // no images is not a run
           {"--batch", "-2"},                // negative
           {"--batch", "+4"},                // stoul would accept the '+'
           {"--batch", "4x"},                // trailing junk
           {"--batch"},                      // missing value
           {"--dilation", "0"},              // a window needs a pitch
           {"--dilation", "-2"},             // negative
           {"--dilation", "2x"},             // trailing junk
           {"--dilation"},                   // missing value
           {"--depth-multiplier", "0"},      // zero drops all channels
           {"--depth-multiplier", "+3"},     // stoul would accept the '+'
           {"--depth-multiplier"},           // missing value
           {"--cache-file"},                 // missing value
           {"--max-queue", "abc"},           // non-numeric
           {"--max-queue", "-1"},            // negative wraps in stoul
           {"--max-queue"},                  // missing value
           {"--busy-retry-ms", "0"},         // a 0 ms hint is a busy loop
           {"--busy-retry-ms", "-5"},        // negative
           {"--busy-retry-ms", "5x"},        // trailing junk
           {"--busy-retry-ms"},              // missing value
           {"--wat"},                        // unknown flag
       }) {
    SCOPED_TRACE(args.front());
    const ServerConfig config = parse(args);
    EXPECT_FALSE(config.error.empty());
  }
}

TEST(ServerCliTest, ContradictoryModesAreRejected) {
  // --verify compares against an in-process serial reference; in socket
  // mode that is the client's job (simulation_client --verify).
  EXPECT_FALSE(parse({"--verify", "--listen", "0"}).error.empty());
  // --max-sessions is meaningless without a socket to accept on.
  EXPECT_FALSE(parse({"--max-sessions", "1"}).error.empty());
  // ... but fine together with --listen.
  EXPECT_TRUE(parse({"--listen", "0", "--max-sessions", "1"}).error.empty());
  // Persistence with memoization disabled would save an empty cache over
  // the file at shutdown, destroying every persisted design point.
  EXPECT_FALSE(
      parse({"--cache", "0", "--cache-file", "/tmp/c.bin"}).error.empty());
  EXPECT_TRUE(
      parse({"--cache", "8", "--cache-file", "/tmp/c.bin"}).error.empty());
  // The retry hint is what busy replies advertise; without a bounded
  // queue no reply will ever carry it, so stating it is a config error.
  EXPECT_FALSE(parse({"--busy-retry-ms", "5"}).error.empty());
  EXPECT_TRUE(
      parse({"--max-queue", "2", "--busy-retry-ms", "5"}).error.empty());
}

// --- the client's command line (service/client_cli.hpp) --------------------

TEST(ClientCliTest, HelpTextMentionsEveryDocumentedFlag) {
  const std::string usage = client_usage();
  for (const char* flag :
       {"--help", "--connect", "--verify", "--expect-all-hits", "--backend",
        "--batch", "--dilation", "--depth-multiplier", "--pipeline",
        "--ordered"}) {
    SCOPED_TRACE(flag);
    EXPECT_NE(usage.find(flag), std::string::npos)
        << "flag missing from simulation_client --help output";
  }
  EXPECT_NE(usage.find("HOST:PORT"), std::string::npos);
}

TEST(ClientCliTest, EveryFlagParses) {
  const ClientConfig config =
      parse_client({"--connect", "127.0.0.1:47163", "--verify",
                    "--expect-all-hits", "--backend", "serialized",
                    "--batch", "4", "--dilation", "2",
                    "--depth-multiplier", "3", "--pipeline", "32",
                    "--ordered"});
  ASSERT_TRUE(config.error.empty()) << config.error;
  EXPECT_TRUE(config.connect_given);
  EXPECT_EQ(config.host, "127.0.0.1");
  EXPECT_EQ(config.port, 47163);
  EXPECT_TRUE(config.verify);
  EXPECT_TRUE(config.expect_all_hits);
  EXPECT_EQ(config.backend, "serialized");
  EXPECT_EQ(config.batch, 4);
  EXPECT_EQ(config.dilation, 2);
  EXPECT_EQ(config.depth_multiplier, 3);
  EXPECT_EQ(config.pipeline, 32u);
  EXPECT_TRUE(config.ordered);
}

TEST(ClientCliTest, TransformFlagsDefaultToNotGiven) {
  // 0 means "the line protocol's own defaults apply" - the client only
  // overrides the reference run when a flag was explicitly passed, so it
  // cannot drift from a server that was started without the flags.
  const ClientConfig config = parse_client({"--connect", "h:1"});
  ASSERT_TRUE(config.error.empty()) << config.error;
  EXPECT_EQ(config.dilation, 0);
  EXPECT_EQ(config.depth_multiplier, 0);
  // pipeline 0 selects the legacy send-everything-then-read mode.
  EXPECT_EQ(config.pipeline, 0u);
  EXPECT_FALSE(config.ordered);
}

TEST(ClientCliTest, HelpNeedsNoConnect) {
  const ClientConfig config = parse_client({"--help"});
  EXPECT_TRUE(config.error.empty()) << config.error;
  EXPECT_TRUE(config.help);
}

TEST(ClientCliTest, ConnectIsRequiredAndValidated) {
  EXPECT_FALSE(parse_client({}).error.empty());
  EXPECT_FALSE(parse_client({"--verify"}).error.empty());
  for (const char* bad :
       {"localhost", ":80", "host:", "host:abc", "host:65536", "host:-1",
        "host:80x", "host:+80", "host: 80"}) {
    SCOPED_TRACE(std::string("target '") + bad + "'");
    EXPECT_FALSE(parse_client({"--connect", bad}).error.empty());
  }
  const ClientConfig ok = parse_client({"--connect", "localhost:0"});
  EXPECT_TRUE(ok.error.empty()) << ok.error;
  EXPECT_EQ(ok.host, "localhost");
  EXPECT_EQ(ok.port, 0);
}

TEST(ClientCliTest, ContradictionsAndUnknownsAreRejected) {
  // --expect-all-hits asserts a property of the --verify comparison.
  EXPECT_FALSE(parse_client({"--connect", "h:1", "--expect-all-hits"})
                   .error.empty());
  EXPECT_FALSE(parse_client({"--connect", "h:1", "--wat"}).error.empty());
  const ClientConfig bad_backend =
      parse_client({"--connect", "h:1", "--backend", "warp-drive"});
  ASSERT_FALSE(bad_backend.error.empty());
  EXPECT_NE(bad_backend.error.find("warp-drive"), std::string::npos);
  EXPECT_FALSE(
      parse_client({"--connect", "h:1", "--backend"}).error.empty());
  for (const char* bad : {"0", "-2", "+4", "4x", "abc"}) {
    SCOPED_TRACE(std::string("batch '") + bad + "'");
    EXPECT_FALSE(
        parse_client({"--connect", "h:1", "--batch", bad}).error.empty());
  }
  EXPECT_FALSE(parse_client({"--connect", "h:1", "--batch"}).error.empty());
  for (const char* flag : {"--dilation", "--depth-multiplier"}) {
    for (const char* bad : {"0", "-2", "+4", "4x", "abc"}) {
      SCOPED_TRACE(std::string(flag) + " '" + bad + "'");
      EXPECT_FALSE(
          parse_client({"--connect", "h:1", flag, bad}).error.empty());
    }
    EXPECT_FALSE(parse_client({"--connect", "h:1", flag}).error.empty());
  }
}

TEST(ClientCliTest, PipelineWindowIsBoundedByTheFrameLimit) {
  // The window rides inside batch frames, so it can never exceed the
  // protocol's own frame limit; the error names the legal range.
  for (const char* bad : {"0", "-1", "+8", "8x", "abc", "4097", ""}) {
    SCOPED_TRACE(std::string("window '") + bad + "'");
    const ClientConfig config =
        parse_client({"--connect", "h:1", "--pipeline", bad});
    EXPECT_FALSE(config.error.empty());
    EXPECT_NE(config.error.find("4096"), std::string::npos) << config.error;
  }
  EXPECT_FALSE(parse_client({"--connect", "h:1", "--pipeline"}).error.empty());
  const ClientConfig top =
      parse_client({"--connect", "h:1", "--pipeline", "4096"});
  EXPECT_TRUE(top.error.empty()) << top.error;
  EXPECT_EQ(top.pipeline, 4096u);
  // --ordered shapes how the pipelined sender negotiates; the one-shot
  // sender is ordered by construction, so alone it is a silent no-op.
  EXPECT_FALSE(parse_client({"--connect", "h:1", "--ordered"}).error.empty());
  EXPECT_TRUE(parse_client({"--connect", "h:1", "--pipeline", "8",
                            "--ordered"})
                  .error.empty());
}

RouterCliConfig parse_router(const std::vector<const char*>& args) {
  return parse_router_args(static_cast<int>(args.size()), args.data());
}

TEST(RouterCliTest, HelpTextMentionsEveryDocumentedFlag) {
  const std::string usage = router_usage();
  for (const char* flag :
       {"--help", "--spawn", "--worker", "--server-bin", "--cache-file",
        "--replicas", "--retry-attempts", "--listen", "--max-sessions",
        "--backend", "--batch", "--dilation", "--depth-multiplier",
        "--ordered"}) {
    SCOPED_TRACE(flag);
    EXPECT_NE(usage.find(flag), std::string::npos)
        << "flag missing from simulation_router --help output";
  }
}

TEST(RouterCliTest, DefaultsMatchTheRouterDefaults) {
  const RouterCliConfig config = parse_router({"--spawn", "2"});
  EXPECT_TRUE(config.error.empty()) << config.error;
  EXPECT_EQ(config.spawn, 2);
  EXPECT_TRUE(config.workers.empty());
  EXPECT_TRUE(config.server_bin.empty());
  EXPECT_TRUE(config.cache_file.empty());
  EXPECT_EQ(config.replicas, HashRing::kDefaultReplicas);
  EXPECT_EQ(config.max_attempts, RouterOptions().max_attempts);
  EXPECT_FALSE(config.listen);
  EXPECT_EQ(config.max_sessions, 0u);
  EXPECT_EQ(config.backend, "edea");
  EXPECT_EQ(config.batch, 1);
  EXPECT_EQ(config.dilation, 1);
  EXPECT_EQ(config.depth_multiplier, 1);
  EXPECT_FALSE(config.ordered);
}

TEST(RouterCliTest, EveryFlagParses) {
  const RouterCliConfig config = parse_router(
      {"--spawn", "4", "--server-bin", "/opt/bin/worker", "--cache-file",
       "/tmp/cluster.cache", "--replicas", "128", "--retry-attempts", "9",
       "--listen", "47167", "--max-sessions", "3", "--backend", "edea",
       "--batch", "2", "--dilation", "2", "--depth-multiplier", "3",
       "--ordered"});
  EXPECT_TRUE(config.error.empty()) << config.error;
  EXPECT_EQ(config.spawn, 4);
  EXPECT_EQ(config.server_bin, "/opt/bin/worker");
  EXPECT_EQ(config.cache_file, "/tmp/cluster.cache");
  EXPECT_EQ(config.replicas, 128);
  EXPECT_EQ(config.max_attempts, 9);
  EXPECT_TRUE(config.listen);
  EXPECT_EQ(config.port, 47167);
  EXPECT_EQ(config.max_sessions, 3u);
  EXPECT_EQ(config.batch, 2);
  EXPECT_EQ(config.dilation, 2);
  EXPECT_EQ(config.depth_multiplier, 3);
  EXPECT_TRUE(config.ordered);
}

TEST(RouterCliTest, WorkerEndpointsParseStrictlyAsHostColonPort) {
  const RouterCliConfig two = parse_router(
      {"--worker", "127.0.0.1:4000", "--worker", "localhost:4001"});
  EXPECT_TRUE(two.error.empty()) << two.error;
  ASSERT_EQ(two.workers.size(), 2u);
  EXPECT_EQ(two.workers[0].id, "127.0.0.1:4000")
      << "the given string is the stable ring id";
  EXPECT_EQ(two.workers[0].host, "127.0.0.1");
  EXPECT_EQ(two.workers[0].port, 4000);
  EXPECT_EQ(two.workers[1].host, "localhost");
  EXPECT_EQ(two.workers[1].port, 4001);

  for (const char* bad :
       {"", "noport", "host:", ":4000", "host:0", "host:65536", "host:-1",
        "host:40x0", "host: 4000", "host:4000x"}) {
    SCOPED_TRACE(std::string("endpoint '") + bad + "'");
    const RouterCliConfig config = parse_router({"--worker", bad});
    EXPECT_FALSE(config.error.empty());
    EXPECT_NE(config.error.find("HOST:PORT"), std::string::npos)
        << config.error;
  }
  EXPECT_FALSE(parse_router({"--worker"}).error.empty());

  const RouterCliConfig dup = parse_router(
      {"--worker", "h:4000", "--worker", "h:4000"});
  EXPECT_NE(dup.error.find("given twice"), std::string::npos) << dup.error;
}

TEST(RouterCliTest, SpawnAndReplicasShareTheDigitFirstBoundedGrammar) {
  for (const char* bad : {"0", "-1", "+2", "2x", "abc", "65", ""}) {
    SCOPED_TRACE(std::string("spawn '") + bad + "'");
    EXPECT_FALSE(parse_router({"--spawn", bad}).error.empty());
  }
  EXPECT_FALSE(parse_router({"--spawn"}).error.empty());
  EXPECT_TRUE(parse_router({"--spawn", "64"}).error.empty());

  for (const char* bad : {"0", "-1", "+64", "64x", "65537", ""}) {
    SCOPED_TRACE(std::string("replicas '") + bad + "'");
    EXPECT_FALSE(
        parse_router({"--spawn", "2", "--replicas", bad}).error.empty());
  }
  EXPECT_TRUE(
      parse_router({"--spawn", "2", "--replicas", "65536"}).error.empty());
  for (const char* bad : {"0", "-1", "3x", ""}) {
    SCOPED_TRACE(std::string("retry-attempts '") + bad + "'");
    EXPECT_FALSE(parse_router({"--spawn", "2", "--retry-attempts", bad})
                     .error.empty());
  }
}

TEST(RouterCliTest, ContradictoryAndIncompleteInvocationsAreRejected) {
  // Two membership sources would make ring ids ambiguous.
  const RouterCliConfig both = parse_router(
      {"--spawn", "2", "--worker", "h:4000"});
  EXPECT_NE(both.error.find("mutually exclusive"), std::string::npos)
      << both.error;

  // No membership source at all.
  const RouterCliConfig none = parse_router({});
  EXPECT_NE(none.error.find("need workers"), std::string::npos) << none.error;

  // Spawn-only flags without --spawn.
  EXPECT_FALSE(parse_router({"--worker", "h:4000", "--server-bin", "/b"})
                   .error.empty());
  EXPECT_FALSE(parse_router({"--worker", "h:4000", "--cache-file", "/c"})
                   .error.empty());

  // --max-sessions is a socket-mode knob.
  EXPECT_FALSE(parse_router({"--spawn", "2", "--max-sessions", "1"})
                   .error.empty());
  EXPECT_TRUE(parse_router({"--spawn", "2", "--listen", "0",
                            "--max-sessions", "1"})
                  .error.empty());

  const RouterCliConfig unknown = parse_router({"--spawn", "2", "--nope"});
  EXPECT_NE(unknown.error.find("unknown option"), std::string::npos)
      << unknown.error;

  // --help short-circuits validation, like the server CLI.
  EXPECT_TRUE(parse_router({"--help"}).error.empty());
  EXPECT_TRUE(parse_router({"--help"}).help);
}

}  // namespace
}  // namespace edea::service
