// server_cli_test - the simulation server's command line as a library
// contract: the --help text documents every flag (the satellite
// acceptance: each documented option appears in the output), and the
// parser accepts the documented grammar while rejecting malformed or
// contradictory invocations with a reason.
#include "service/server_cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace edea::service {
namespace {

ServerConfig parse(const std::vector<const char*>& args) {
  return parse_server_args(static_cast<int>(args.size()), args.data());
}

TEST(ServerCliTest, HelpTextMentionsEveryDocumentedFlag) {
  const std::string usage = server_usage();
  for (const char* flag :
       {"--help", "--listen", "--max-sessions", "--cache-file", "--workers",
        "--cache", "--tile-parallelism", "--verify"}) {
    SCOPED_TRACE(flag);
    EXPECT_NE(usage.find(flag), std::string::npos)
        << "flag missing from simulation_server --help output";
  }
  // Both serving modes are shown as invocation forms.
  EXPECT_NE(usage.find("stdio mode"), std::string::npos);
  EXPECT_NE(usage.find("TCP socket mode"), std::string::npos);
}

TEST(ServerCliTest, DefaultsMatchTheServiceDefaults) {
  const ServerConfig config = parse({});
  EXPECT_TRUE(config.error.empty()) << config.error;
  EXPECT_FALSE(config.help);
  EXPECT_FALSE(config.verify);
  EXPECT_FALSE(config.listen);
  EXPECT_EQ(config.max_sessions, 0u);
  EXPECT_TRUE(config.cache_file.empty());
  EXPECT_EQ(config.service.worker_threads, 0u);
  EXPECT_EQ(config.service.cache_capacity, ServiceOptions().cache_capacity);
  EXPECT_EQ(config.service.tile_parallelism, 1);
}

TEST(ServerCliTest, EveryFlagParses) {
  const ServerConfig config =
      parse({"--listen", "47163", "--max-sessions", "2", "--cache-file",
             "/tmp/edea.cache", "--workers", "3", "--cache", "64",
             "--tile-parallelism", "4"});
  ASSERT_TRUE(config.error.empty()) << config.error;
  EXPECT_TRUE(config.listen);
  EXPECT_EQ(config.port, 47163);
  EXPECT_EQ(config.max_sessions, 2u);
  EXPECT_EQ(config.cache_file, "/tmp/edea.cache");
  EXPECT_EQ(config.service.worker_threads, 3u);
  EXPECT_EQ(config.service.cache_capacity, 64u);
  EXPECT_EQ(config.service.tile_parallelism, 4);
}

TEST(ServerCliTest, HelpAndVerifyFlagsParse) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"--verify"}).verify);
}

TEST(ServerCliTest, MalformedValuesAreRejectedWithAReason) {
  for (const std::vector<const char*>& args :
       std::vector<std::vector<const char*>>{
           {"--listen"},                     // missing value
           {"--listen", "65536"},            // port out of range
           {"--listen", "-1"},               // negative
           {"--listen", "4x"},               // trailing junk
           {"--max-sessions", "two"},        // non-numeric
           {"--workers", "-3"},              // negative wraps in stoul
           {"--cache", "10bb"},              // trailing junk
           {"--tile-parallelism", "0"},      // zero width is a caller bug
           {"--tile-parallelism", "-4"},     // negative width
           {"--cache-file"},                 // missing value
           {"--wat"},                        // unknown flag
       }) {
    SCOPED_TRACE(args.front());
    const ServerConfig config = parse(args);
    EXPECT_FALSE(config.error.empty());
  }
}

TEST(ServerCliTest, ContradictoryModesAreRejected) {
  // --verify compares against an in-process serial reference; in socket
  // mode that is the client's job (simulation_client --verify).
  EXPECT_FALSE(parse({"--verify", "--listen", "0"}).error.empty());
  // --max-sessions is meaningless without a socket to accept on.
  EXPECT_FALSE(parse({"--max-sessions", "1"}).error.empty());
  // ... but fine together with --listen.
  EXPECT_TRUE(parse({"--listen", "0", "--max-sessions", "1"}).error.empty());
  // Persistence with memoization disabled would save an empty cache over
  // the file at shutdown, destroying every persisted design point.
  EXPECT_FALSE(
      parse({"--cache", "0", "--cache-file", "/tmp/c.bin"}).error.empty());
  EXPECT_TRUE(
      parse({"--cache", "8", "--cache-file", "/tmp/c.bin"}).error.empty());
}

}  // namespace
}  // namespace edea::service
