// Property-based tests: for *any* layer geometry and input, the
// cycle-accurate accelerator must (1) be bit-exact against the golden
// quantized reference and (2) agree with the Eq. 1/2 analytic timing
// model. Parameterized sweeps cover strides, ragged channels/kernels,
// ragged spatial extents, sparsity levels and seeds.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/accelerator.hpp"
#include "nn/layers.hpp"
#include "util/random.hpp"

namespace edea::core {
namespace {

struct Geometry {
  int rows;
  int channels;
  int stride;
  int out_channels;
};

std::string geometry_name(const Geometry& g) {
  // Built with appends: the temporary-chain form trips GCC 12's spurious
  // -Wrestrict at -O3 (PR105651).
  std::string name = "r";
  name += std::to_string(g.rows);
  name += "_d";
  name += std::to_string(g.channels);
  name += "_s";
  name += std::to_string(g.stride);
  name += "_k";
  name += std::to_string(g.out_channels);
  return name;
}

class AcceleratorGeometrySweep
    : public ::testing::TestWithParam<Geometry> {};

TEST_P(AcceleratorGeometrySweep, BitExactAndCycleExact) {
  const Geometry g = GetParam();
  nn::DscLayerSpec spec;
  spec.in_rows = g.rows;
  spec.in_cols = g.rows;
  spec.in_channels = g.channels;
  spec.stride = g.stride;
  spec.out_channels = g.out_channels;

  Rng rng(0xC0FFEE ^ (static_cast<std::uint64_t>(g.rows) << 32) ^
          (static_cast<std::uint64_t>(g.channels) << 16) ^
          (static_cast<std::uint64_t>(g.stride) << 8) ^
          static_cast<std::uint64_t>(g.out_channels));
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.04f},
      nn::QuantScale{0.03f});

  nn::Int8Tensor input(nn::Shape{spec.in_rows, spec.in_cols,
                                 spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.35)
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }

  EdeaAccelerator accel;
  const LayerRunResult result = accel.run_layer(layer, input);

  // Property 1: bit-exact functional equivalence.
  EXPECT_EQ(result.output, layer.forward(input));

  // Property 2: cycle agreement with Eq. 1/2 (also asserted internally;
  // repeated here so the property is part of the public contract).
  const TimingModel tm(accel.config());
  EXPECT_EQ(result.timing.total_cycles,
            tm.layer_timing(spec).total_cycles);

  // Property 3: conservation - DWC useful MACs equal the layer's nominal
  // DWC MAC count whenever the geometry is aligned (even output extents,
  // channels a multiple of Td - no dummy edge or idle lanes).
  const bool aligned = spec.out_rows() % accel.config().tn == 0 &&
                       spec.out_cols() % accel.config().tm == 0 &&
                       spec.in_channels % accel.config().td == 0;
  if (aligned) {
    EXPECT_EQ(result.dwc_activity.useful_macs, spec.dwc_macs())
        << "DWC useful MACs diverged from N*M*D*9";
  }

  // Property 4: output writes equal the ofmap volume exactly.
  EXPECT_EQ(result.external.counter(arch::TrafficClass::kActivation).writes,
            std::int64_t{1} * spec.out_rows() * spec.out_cols() *
                spec.out_channels);
}

INSTANTIATE_TEST_SUITE_P(
    AlignedGeometries, AcceleratorGeometrySweep,
    ::testing::Values(Geometry{8, 8, 1, 16}, Geometry{8, 16, 1, 16},
                      Geometry{16, 8, 1, 32}, Geometry{16, 16, 2, 32},
                      Geometry{32, 8, 1, 16}, Geometry{32, 16, 2, 32},
                      Geometry{8, 32, 1, 48}, Geometry{4, 64, 1, 64},
                      Geometry{2, 128, 1, 128}, Geometry{4, 96, 2, 32}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return geometry_name(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    RaggedGeometries, AcceleratorGeometrySweep,
    ::testing::Values(Geometry{6, 8, 1, 16},   // output not multiple of 8
                      Geometry{7, 8, 1, 16},   // odd output
                      Geometry{10, 8, 1, 16},  // 8 + 2 edge tile
                      Geometry{12, 8, 2, 16},  // stride-2 ragged
                      Geometry{9, 8, 2, 16},   // odd stride-2
                      Geometry{8, 5, 1, 16},   // channels < Td
                      Geometry{8, 12, 1, 16},  // channels % Td != 0
                      Geometry{8, 8, 1, 7},    // kernels < Tk
                      Geometry{8, 8, 1, 25},   // kernels % Tk != 0
                      Geometry{5, 3, 2, 5},    // everything ragged
                      Geometry{3, 1, 1, 1},    // minimal
                      Geometry{11, 13, 2, 19}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return geometry_name(info.param);
    });

// --------------------------- sparsity sweep (Fig. 11's driving variable) ---

class AcceleratorSparsitySweep : public ::testing::TestWithParam<int> {};

TEST_P(AcceleratorSparsitySweep, ZeroFractionsPropagateToResults) {
  const double target = GetParam() / 100.0;
  nn::DscLayerSpec spec;
  spec.in_rows = 8;
  spec.in_cols = 8;
  spec.in_channels = 16;
  spec.out_channels = 32;

  Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.04f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{8, 8, 16});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(target)
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(1, 127));
  }

  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(layer, input);
  EXPECT_NEAR(r.dwc_input_zero_fraction, target, 0.12);
  // Bit-exactness must hold at every sparsity level.
  EXPECT_EQ(r.output, layer.forward(input));
  // The MAC-lane zero counter must be consistent with the input sparsity:
  // padding can only add zeros, never remove them.
  EXPECT_GE(r.dwc_activity.zero_operand_fraction(),
            r.dwc_input_zero_fraction - 0.12);
}

INSTANTIATE_TEST_SUITE_P(ZeroPercentages, AcceleratorSparsitySweep,
                         ::testing::Values(0, 25, 50, 75, 95, 100));

// ------------------------------- seed sweep (same geometry, many nets) ---

class AcceleratorSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(AcceleratorSeedSweep, BitExactAcrossRandomNetworks) {
  nn::DscLayerSpec spec;
  spec.in_rows = 16;
  spec.in_cols = 16;
  spec.in_channels = 24;
  spec.stride = (GetParam() % 2 == 0) ? 1 : 2;
  spec.out_channels = 40;

  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.015f}, nn::QuantScale{0.035f},
      nn::QuantScale{0.025f});
  nn::Int8Tensor input(nn::Shape{16, 16, 24});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4)
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  EdeaAccelerator accel;
  EXPECT_EQ(accel.run_layer(layer, input).output, layer.forward(input));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcceleratorSeedSweep,
                         ::testing::Range(0, 8));

// -------------------- scaled-configuration sweep (Sec. III-B property) ---

struct ScaledConfig {
  int td;
  int tk;
  int max_tile;
};

class AcceleratorConfigSweep
    : public ::testing::TestWithParam<ScaledConfig> {};

TEST_P(AcceleratorConfigSweep, ScaledEnginesStayBitExactAndCycleExact) {
  // The paper's scaling claim as a hard property: any valid (Td, Tk,
  // buffer-tile) configuration computes the identical int8 result and
  // agrees with its own Eq. 1/2 instance.
  const ScaledConfig sc = GetParam();
  EdeaConfig cfg = EdeaConfig::paper();
  cfg.td = sc.td;
  cfg.tk = sc.tk;
  cfg.max_tile_out = sc.max_tile;

  nn::DscLayerSpec spec;
  spec.in_rows = spec.in_cols = 12;
  spec.in_channels = 24;
  spec.stride = 1;
  spec.out_channels = 40;

  Rng rng(0x5CA1E ^ (static_cast<std::uint64_t>(sc.td) << 16) ^
          static_cast<std::uint64_t>(sc.tk));
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.04f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{12, 12, 24});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.35)
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }

  EdeaAccelerator accel(cfg);
  const LayerRunResult r = accel.run_layer(layer, input);
  EXPECT_EQ(r.output, layer.forward(input));
  EXPECT_EQ(r.timing.total_cycles,
            TimingModel(cfg).layer_timing(spec).total_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AcceleratorConfigSweep,
    ::testing::Values(ScaledConfig{4, 8, 8}, ScaledConfig{8, 8, 8},
                      ScaledConfig{8, 16, 8}, ScaledConfig{8, 32, 8},
                      ScaledConfig{16, 16, 8}, ScaledConfig{16, 32, 8},
                      ScaledConfig{8, 16, 4}, ScaledConfig{8, 16, 16},
                      ScaledConfig{4, 4, 2}),
    [](const ::testing::TestParamInfo<ScaledConfig>& info) {
      return "td" + std::to_string(info.param.td) + "_tk" +
             std::to_string(info.param.tk) + "_tile" +
             std::to_string(info.param.max_tile);
    });

// ------------------------ random network chains (compositional property) ---

class AcceleratorChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(AcceleratorChainSweep, RandomChainsStayBitExact) {
  // Build a random 2-4 layer DSC chain with random (possibly ragged)
  // geometry and verify the accelerator end to end. Exercises the
  // composition property: each layer's output domain is the next layer's
  // input domain, including edge tiles and partial slices mid-chain.
  Rng rng(0xBEEF0000 + static_cast<std::uint64_t>(GetParam()));
  const int depth = static_cast<int>(rng.uniform_int(2, 4));

  int rows = static_cast<int>(rng.uniform_int(6, 20));
  int channels = static_cast<int>(rng.uniform_int(4, 24));
  std::vector<nn::QuantDscLayer> layers;
  for (int i = 0; i < depth; ++i) {
    nn::DscLayerSpec spec;
    spec.index = i;
    spec.in_rows = rows;
    spec.in_cols = rows;
    spec.in_channels = channels;
    spec.stride = rng.bernoulli(0.4) && rows >= 8 ? 2 : 1;
    spec.out_channels = static_cast<int>(rng.uniform_int(4, 40));
    const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
    layers.push_back(nn::quantize_layer(fl, nn::QuantScale{0.03f},
                                        nn::QuantScale{0.03f},
                                        nn::QuantScale{0.03f}));
    rows = spec.out_rows();
    channels = spec.out_channels;
  }

  nn::Int8Tensor input(nn::Shape{layers[0].spec.in_rows,
                                 layers[0].spec.in_cols,
                                 layers[0].spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4)
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }

  EdeaAccelerator accel;
  const NetworkRunResult run = accel.run_network(layers, input);
  nn::Int8Tensor ref = input;
  for (const auto& l : layers) ref = l.forward(ref);
  EXPECT_EQ(run.output, ref);

  // Cycle totals compose additively.
  const TimingModel tm(accel.config());
  std::int64_t expected = 0;
  for (const auto& l : layers) {
    expected += tm.layer_timing(l.spec).total_cycles;
  }
  EXPECT_EQ(run.total_cycles(), expected);
}

INSTANTIATE_TEST_SUITE_P(Chains, AcceleratorChainSweep,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace edea::core
