// transport_session_test - the transport and session layers of the
// service tier: stdio and socket streams, the accept loop, and the
// session's framing/ordering/stats-barrier contracts. The load-bearing
// property throughout is the acceptance criterion of the layering: a TCP
// client receives byte-identical responses to the stdio driver for the
// same request stream.
#include "service/session.hpp"
#include "service/transport.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "util/check.hpp"

namespace edea::service {
namespace {

/// Serves `lines` through one stdio session against `svc` and returns the
/// response lines - the reference code path everything is compared to.
std::vector<std::string> serve_stdio(SimulationService& svc,
                                     WorkloadCatalog& catalog,
                                     const std::vector<std::string>& lines,
                                     SessionStats* stats_out = nullptr,
                                     bool record_traffic = false) {
  std::ostringstream joined;
  for (const std::string& line : lines) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;
  StdioStream stream(in, out);
  SessionOptions options;
  options.record_traffic = record_traffic;
  SessionStats stats = Session(svc, catalog, options).serve(stream);
  if (stats_out != nullptr) *stats_out = std::move(stats);

  std::vector<std::string> responses;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) responses.push_back(line);
  return responses;
}

/// A cheap request stream: mobilenet-0.25x with td=16 is the fastest zoo
/// simulation, so session tests stay quick on a single-core host.
std::vector<std::string> scripted_stream() {
  return {
      "# scripted session",
      "run mobilenet-0.25x seed=3 td=16",
      "run mobilenet-0.25x seed=3 td=16 tk=32",
      "",
      "run mobilenet-0.25x seed=3 td=16",   // repeat -> hit
      "walk nowhere",                        // protocol error
      "run no-such-network seed=1",          // unresolvable zoo name
      "run mobilenet-0.25x seed=3 kernel=5", // infeasible -> error outcome
      "stats",
  };
}

TEST(StdioStreamTest, ReadsLinesAndWritesWithNewline) {
  std::istringstream in("alpha\nbeta\n");
  std::ostringstream out;
  StdioStream stream(in, out);

  std::string line;
  ASSERT_TRUE(stream.read_line(line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(stream.read_line(line));
  EXPECT_EQ(line, "beta");
  EXPECT_FALSE(stream.read_line(line));

  EXPECT_TRUE(stream.write_line("ok first"));
  EXPECT_TRUE(stream.write_line("ok second"));
  EXPECT_EQ(out.str(), "ok first\nok second\n");
}

TEST(SessionTest, ResponsesArriveInRequestOrderWithExactShapes) {
  SimulationService svc;
  WorkloadCatalog catalog;
  SessionStats stats;
  const std::vector<std::string> responses =
      serve_stdio(svc, catalog, scripted_stream(), &stats);

  ASSERT_EQ(responses.size(), 7u);  // comments/blank lines answer nothing
  EXPECT_EQ(responses[0].rfind("ok mobilenet-0.25x@3 ", 0), 0u);
  EXPECT_NE(responses[0].find("cache=miss"), std::string::npos);
  EXPECT_EQ(responses[1].rfind("ok mobilenet-0.25x@3 ", 0), 0u);
  EXPECT_EQ(responses[2], responses[0].substr(0, responses[0].size() - 4) +
                              "hit")
      << "the repeat must be the first response with cache=miss -> hit";
  EXPECT_EQ(responses[3].rfind("protocol-error ", 0), 0u);
  EXPECT_EQ(responses[4].rfind("error no-such-network@1 ", 0), 0u);
  EXPECT_EQ(responses[5].rfind("error mobilenet-0.25x@3 ", 0), 0u);
  EXPECT_EQ(responses[6].rfind("stats ", 0), 0u);

  EXPECT_EQ(stats.requests, 7u);
  EXPECT_EQ(stats.runs, 5u);  // incl. the unresolvable network
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.responses_written, 7u);
}

TEST(SessionTest, IdenticalStreamsServeIdenticalBytesFromFreshServices) {
  // Determinism across service instances is what makes golden comparisons
  // (and the CI socket-vs-stdio diff) meaningful.
  SimulationService svc_a, svc_b;
  WorkloadCatalog catalog_a, catalog_b;
  EXPECT_EQ(serve_stdio(svc_a, catalog_a, scripted_stream()),
            serve_stdio(svc_b, catalog_b, scripted_stream()));
}

TEST(SessionTest, StatsIsABarrierOverPrecedingRequestsOnly) {
  SimulationService svc;
  WorkloadCatalog catalog;
  const std::vector<std::string> responses = serve_stdio(
      svc, catalog,
      {"run mobilenet-0.25x seed=3 td=16", "stats",
       "run mobilenet-0.25x seed=3 td=16", "stats"});

  ASSERT_EQ(responses.size(), 4u);
  // First stats: exactly the one preceding request, completed; nothing
  // later leaked in. Deterministic because the reader holds the barrier.
  EXPECT_EQ(responses[1],
            "stats hits=0 misses=1 evictions=0 entries=1 inflight=0");
  EXPECT_EQ(responses[3],
            "stats hits=1 misses=1 evictions=0 entries=1 inflight=0");
}

TEST(SessionTest, BatchedRunsEchoBatchAndKeySeparatelyInTheCache) {
  SimulationService svc;
  WorkloadCatalog catalog;
  const std::vector<std::string> responses = serve_stdio(
      svc, catalog,
      {"run mobilenet-0.25x seed=3 td=16",
       "run mobilenet-0.25x seed=3 td=16 batch=3",  // distinct key -> miss
       "run mobilenet-0.25x seed=3 td=16 batch=3",  // repeat -> hit
       "run mobilenet-0.25x seed=3 td=16 batch=0",  // protocol error
       "stats"});

  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(responses[0].find("batch="), std::string::npos) << responses[0];
  EXPECT_NE(responses[1].find(" batch=3 "), std::string::npos)
      << responses[1];
  EXPECT_NE(responses[1].find("cache=miss"), std::string::npos);
  EXPECT_NE(responses[2].find("cache=hit"), std::string::npos);
  EXPECT_EQ(responses[3].rfind("protocol-error bad batch '0'", 0), 0u)
      << responses[3];
  EXPECT_EQ(responses[4],
            "stats hits=1 misses=2 evictions=0 entries=2 inflight=0");

  // Batching amortizes setup, never arithmetic: every measurement token
  // of the batched line except the batch echo matches the batch=1 line.
  std::istringstream single(responses[0]), batched(responses[1]);
  std::string s, b;
  while (single >> s) {
    ASSERT_TRUE(static_cast<bool>(batched >> b));
    if (b == "batch=3") {
      ASSERT_TRUE(static_cast<bool>(batched >> b));
    }
    EXPECT_EQ(s, b);
  }
}

TEST(SessionTest, RecordedTrafficAlignsJobsWithOutcomes) {
  SimulationService svc;
  WorkloadCatalog catalog;
  SessionStats stats;
  (void)serve_stdio(svc, catalog, scripted_stream(), &stats,
                    /*record_traffic=*/true);

  // 5 run lines, 1 unresolvable -> 4 submitted jobs with outcomes.
  ASSERT_EQ(stats.jobs.size(), 4u);
  ASSERT_EQ(stats.outcomes.size(), 4u);
  for (std::size_t i = 0; i < stats.jobs.size(); ++i) {
    EXPECT_EQ(stats.jobs[i].name, stats.outcomes[i].name) << i;
  }
  EXPECT_TRUE(stats.outcomes[2].cache_hit);   // the repeat
  EXPECT_FALSE(stats.outcomes[3].ok);         // the infeasible point
}

TEST(WorkloadCatalogTest, ResolvesOncePerKeyAndThrowsForUnknownNames) {
  WorkloadCatalog catalog;
  const WorkloadCatalog::Workload& a = catalog.resolve("edeanet-64", 7);
  const WorkloadCatalog::Workload& b = catalog.resolve("edeanet-64", 7);
  EXPECT_EQ(&a, &b) << "same key must materialize exactly once";
  const WorkloadCatalog::Workload& c = catalog.resolve("edeanet-64", 8);
  EXPECT_NE(&a, &c) << "different seed is a different workload";
  EXPECT_THROW((void)catalog.resolve("not-a-network", 1), PreconditionError);
}

TEST(SocketTransportTest, LoopbackSessionIsBitIdenticalToStdio) {
  // The acceptance criterion of the layering refactor, in process: a TCP
  // client and the stdio driver see byte-identical responses for the
  // same request stream against equally fresh services.
  SimulationService stdio_svc;
  WorkloadCatalog stdio_catalog;
  const std::vector<std::string> expected =
      serve_stdio(stdio_svc, stdio_catalog, scripted_stream());

  SimulationService socket_svc;
  WorkloadCatalog socket_catalog;
  SocketTransportOptions options;
  options.max_sessions = 1;
  SocketTransport transport(options);
  std::thread server([&] {
    transport.serve([&](Stream& stream) {
      Session(socket_svc, socket_catalog).serve(stream);
    });
  });

  std::vector<std::string> responses;
  {
    std::unique_ptr<Stream> client =
        connect_socket("127.0.0.1", transport.port(), /*retry_ms=*/5000);
    for (const std::string& line : scripted_stream()) {
      ASSERT_TRUE(client->write_line(line));
    }
    client->close_write();
    std::string line;
    while (client->read_line(line)) responses.push_back(line);
  }
  server.join();

  EXPECT_EQ(responses, expected);
}

TEST(SocketTransportTest, ConcurrentSessionsServeDisjointClientsCorrectly) {
  SimulationService svc;
  WorkloadCatalog catalog;
  SocketTransportOptions options;
  options.max_sessions = 3;
  SocketTransport transport(options);
  std::thread server([&] {
    transport.serve(
        [&](Stream& stream) { Session(svc, catalog).serve(stream); });
  });

  // Three clients with disjoint design points (different seeds), each
  // with an internal duplicate. Within a session the duplicate is always
  // a hit (coalesced or cached); across sessions nothing is shared, so
  // every client's response set is deterministic despite concurrency.
  std::vector<std::vector<std::string>> responses(3);
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      const std::string seed = std::to_string(100 + c);
      std::unique_ptr<Stream> client =
          connect_socket("localhost", transport.port(), /*retry_ms=*/5000);
      const std::vector<std::string> lines = {
          "run mobilenet-0.25x seed=" + seed + " td=16",
          "run mobilenet-0.25x seed=" + seed + " td=16",
      };
      for (const std::string& line : lines) {
        if (!client->write_line(line)) return;
      }
      client->close_write();
      std::string line;
      while (client->read_line(line)) {
        responses[static_cast<std::size_t>(c)].push_back(line);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.join();

  for (int c = 0; c < 3; ++c) {
    const auto& mine = responses[static_cast<std::size_t>(c)];
    const std::string name =
        "ok mobilenet-0.25x@" + std::to_string(100 + c) + " ";
    ASSERT_EQ(mine.size(), 2u) << "client " << c;
    EXPECT_EQ(mine[0].rfind(name, 0), 0u) << mine[0];
    EXPECT_NE(mine[0].find("cache=miss"), std::string::npos) << mine[0];
    EXPECT_EQ(mine[1].rfind(name, 0), 0u) << mine[1];
    EXPECT_NE(mine[1].find("cache=hit"), std::string::npos) << mine[1];
  }
  // 3 distinct points, each requested twice: exactly 3 simulations.
  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 3u);
}

TEST(SocketTransportTest, ShutdownUnblocksServe) {
  SocketTransport transport(SocketTransportOptions{});
  std::thread server([&] {
    transport.serve([](Stream&) { FAIL() << "no connection was made"; });
  });
  transport.shutdown();
  server.join();  // hangs forever if shutdown() cannot wake accept()
  SUCCEED();
}

TEST(SocketTransportTest, EphemeralPortIsReported) {
  SocketTransport transport(SocketTransportOptions{});
  EXPECT_NE(transport.port(), 0);
  transport.shutdown();
}

TEST(ConnectSocketTest, RejectsBadHostsAndRefusedConnections) {
  EXPECT_THROW((void)connect_socket("not a host", 1), PreconditionError);

  // Grab an ephemeral port, release it, then connect: refused (nothing
  // listens), surfaced as ResourceError once the (zero) retry budget ends.
  std::uint16_t dead_port = 0;
  {
    SocketTransport probe(SocketTransportOptions{});
    dead_port = probe.port();
    probe.shutdown();
  }
  EXPECT_THROW((void)connect_socket("127.0.0.1", dead_port), ResourceError);
}

}  // namespace
}  // namespace edea::service
