// Tests for the profiling report module (src/model/report.*).
#include <gtest/gtest.h>

#include <sstream>

#include "core/accelerator.hpp"
#include "model/report.hpp"
#include "nn/model_zoo.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::model {
namespace {

core::NetworkRunResult sample_run() {
  const auto layers = nn::make_random_quant_network(nn::edeanet_specs(), 21);
  Rng rng(22);
  nn::Int8Tensor input(nn::Shape{64, 64, 16});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  core::EdeaAccelerator accel;
  return accel.run_network(layers, input);
}

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    run_ = new core::NetworkRunResult(sample_run());
  }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }
  static core::NetworkRunResult* run_;
};

core::NetworkRunResult* ReportTest::run_ = nullptr;

TEST_F(ReportTest, SummaryTotalsAreConsistent) {
  const PowerModel power = PowerModel::paper_calibrated();
  const EnergyModel energy;
  const NetworkSummary s = summarize(*run_, power, energy);

  std::int64_t macs = 0, cycles = 0;
  for (const auto& r : run_->layers) {
    macs += r.spec.total_macs();
    cycles += r.timing.total_cycles;
  }
  EXPECT_EQ(s.total_macs, macs);
  EXPECT_EQ(s.total_cycles, cycles);
  EXPECT_NEAR(s.total_time_us, static_cast<double>(cycles) / 1000.0, 1e-9);
  EXPECT_NEAR(s.average_gops, run_->average_throughput_gops(1.0), 1e-9);
  EXPECT_GT(s.average_power_mw, 0.0);
  EXPECT_GT(s.average_efficiency_tops_w, 0.0);
  EXPECT_TRUE(s.all_layers_bit_envelope_ok);
}

TEST_F(ReportTest, EfficiencyConsistentWithPowerAndTime) {
  // efficiency == ops / (avg_power * time), in TOPS/W = ops/pJ.
  const PowerModel power = PowerModel::paper_calibrated();
  const EnergyModel energy;
  const NetworkSummary s = summarize(*run_, power, energy);
  const double pj = s.average_power_mw *
                    static_cast<double>(s.total_cycles);
  EXPECT_NEAR(s.average_efficiency_tops_w,
              static_cast<double>(run_->total_ops()) / pj, 1e-6);
}

TEST_F(ReportTest, RendersAllSections) {
  const PowerModel power = PowerModel::paper_calibrated();
  const EnergyModel energy;
  std::ostringstream os;
  render_network_report(os, *run_, power, energy);
  const std::string text = os.str();
  EXPECT_NE(text.find("per-layer profile"), std::string::npos);
  EXPECT_NE(text.find("external traffic"), std::string::npos);
  EXPECT_NE(text.find("energy"), std::string::npos);
  EXPECT_NE(text.find("network totals"), std::string::npos);
  EXPECT_NE(text.find("respected"), std::string::npos);
}

TEST_F(ReportTest, SectionsCanBeDisabled) {
  const PowerModel power = PowerModel::paper_calibrated();
  const EnergyModel energy;
  ReportOptions opt;
  opt.per_layer = false;
  opt.traffic = false;
  opt.power = false;
  std::ostringstream os;
  render_network_report(os, *run_, power, energy, opt);
  const std::string text = os.str();
  EXPECT_EQ(text.find("per-layer profile"), std::string::npos);
  EXPECT_EQ(text.find("external traffic"), std::string::npos);
  EXPECT_NE(text.find("network totals"), std::string::npos);
}

TEST_F(ReportTest, ClockScalesTime) {
  const PowerModel power = PowerModel::paper_calibrated();
  const EnergyModel energy;
  const NetworkSummary at1 = summarize(*run_, power, energy, 1.0);
  const NetworkSummary at2 = summarize(*run_, power, energy, 2.0);
  EXPECT_NEAR(at1.total_time_us, 2.0 * at2.total_time_us, 1e-9);
  EXPECT_NEAR(2.0 * at1.average_gops, at2.average_gops, 1e-6);
}

TEST(Report, RejectsEmptyRun) {
  const PowerModel power = PowerModel::paper_calibrated();
  const EnergyModel energy;
  core::NetworkRunResult empty;
  EXPECT_THROW((void)summarize(empty, power, energy), PreconditionError);
}

}  // namespace
}  // namespace edea::model
