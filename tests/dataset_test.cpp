// Tests for the synthetic CIFAR10-like dataset (src/nn/dataset.*).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dataset.hpp"
#include "nn/metrics.hpp"
#include "util/check.hpp"

namespace edea::nn {
namespace {

TEST(SyntheticCifar, ImageShapeAndRange) {
  SyntheticCifar data(1);
  for (int c = 0; c < SyntheticCifar::kClasses; ++c) {
    const LabeledImage img = data.sample(c);
    EXPECT_EQ(img.label, c);
    EXPECT_EQ(img.image.shape(), (Shape{32, 32, 3}));
    for (const float v : img.image.storage()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(SyntheticCifar, RejectsBadLabel) {
  SyntheticCifar data(2);
  EXPECT_THROW((void)data.sample(-1), PreconditionError);
  EXPECT_THROW((void)data.sample(10), PreconditionError);
}

TEST(SyntheticCifar, DeterministicInSeed) {
  SyntheticCifar a(42), b(42);
  const LabeledImage ia = a.sample(5);
  const LabeledImage ib = b.sample(5);
  EXPECT_EQ(ia.image, ib.image);
}

TEST(SyntheticCifar, SamplesOfSameClassDiffer) {
  // Phase/noise jitter: two draws of the same class are distinct images.
  SyntheticCifar data(7);
  const LabeledImage a = data.sample(3);
  const LabeledImage b = data.sample(3);
  EXPECT_NE(a.image, b.image);
}

TEST(SyntheticCifar, ClassesAreVisuallyDistinct) {
  // Same-class images must correlate more strongly than cross-class ones
  // on average - the property that makes the classifier example work.
  SyntheticCifar data(11);
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  constexpr int kReps = 6;
  std::vector<LabeledImage> imgs;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int c = 0; c < 4; ++c) imgs.push_back(data.sample(c));
  }
  for (std::size_t i = 0; i < imgs.size(); ++i) {
    for (std::size_t j = i + 1; j < imgs.size(); ++j) {
      const double cos = cosine_similarity(imgs[i].image, imgs[j].image);
      if (imgs[i].label == imgs[j].label) {
        same += cos;
        ++same_n;
      } else {
        cross += cos;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.05);
}

TEST(SyntheticCifar, BatchIsClassBalanced) {
  SyntheticCifar data(13);
  const auto batch = data.batch(30);
  ASSERT_EQ(batch.size(), 30u);
  std::array<int, 10> counts{};
  for (const auto& ex : batch) {
    counts[static_cast<std::size_t>(ex.label)]++;
  }
  for (const int c : counts) EXPECT_EQ(c, 3);
}

TEST(SyntheticCifar, BatchRejectsNonPositiveCount) {
  SyntheticCifar data(17);
  EXPECT_THROW((void)data.batch(0), PreconditionError);
}

// ------------------------------------------------------------- metrics ---

TEST(Metrics, CosineSimilarityIdenticalIsOne) {
  FloatTensor a(Shape{4}, 2.0f);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, a), 1.0);
}

TEST(Metrics, CosineSimilarityOrthogonal) {
  FloatTensor a(Shape{2});
  FloatTensor b(Shape{2});
  a(0) = 1.0f;
  b(1) = 1.0f;
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-9);
}

TEST(Metrics, CosineSimilarityZeroTensor) {
  FloatTensor a(Shape{3}, 0.0f);
  FloatTensor b(Shape{3}, 1.0f);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(Metrics, ShapeMismatchThrows) {
  FloatTensor a(Shape{3});
  FloatTensor b(Shape{4});
  EXPECT_THROW((void)cosine_similarity(a, b), PreconditionError);
  EXPECT_THROW((void)mean_abs_error(a, b), PreconditionError);
}

TEST(Metrics, MeanAbsError) {
  FloatTensor a(Shape{2});
  FloatTensor b(Shape{2});
  a(0) = 1.0f;
  a(1) = -1.0f;
  b(0) = 2.0f;
  b(1) = 1.0f;
  EXPECT_DOUBLE_EQ(mean_abs_error(a, b), 1.5);
}

TEST(Metrics, MaxAbsDiffAndExactMatch) {
  Int8Tensor a(Shape{4});
  Int8Tensor b(Shape{4});
  a(0) = 10;
  b(0) = 10;
  a(1) = -5;
  b(1) = -8;
  EXPECT_EQ(max_abs_diff(a, b), 3);
  EXPECT_DOUBLE_EQ(exact_match_fraction(a, b), 0.75);
}

TEST(Metrics, AgreementMeter) {
  AgreementMeter m;
  m.add(1, 1);
  m.add(2, 3);
  m.add(0, 0);
  m.add(5, 5);
  EXPECT_EQ(m.total(), 4);
  EXPECT_DOUBLE_EQ(m.agreement(), 0.75);
}

TEST(Metrics, AccuracyMeter) {
  AccuracyMeter m;
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  m.add(1, 1);
  m.add(2, 0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.5);
  EXPECT_EQ(m.total(), 2);
}

}  // namespace
}  // namespace edea::nn
