// service_stream_test - the pipelined wire protocol end to end: batch
// frames, reply framing modes, bounded admission, the summary-only result
// contract of the streaming dispatch path, and the client-side pipeline
// driver. The load-bearing property throughout mirrors the transport
// tests: whatever the wire mode, the logical response stream stays
// byte-comparable to the ordered stdio reference.
#include "service/pipeline_client.hpp"
#include "service/session.hpp"
#include "service/transport.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_runner.hpp"
#include "service/protocol.hpp"
#include "service/simulation_service.hpp"
#include "util/check.hpp"

namespace edea::service {
namespace {

/// Serves `lines` through one stdio session and returns the response
/// lines - the reference code path everything is compared to.
std::vector<std::string> serve_stdio(SimulationService& svc,
                                     WorkloadCatalog& catalog,
                                     const std::vector<std::string>& lines,
                                     SessionOptions options = SessionOptions(),
                                     SessionStats* stats_out = nullptr) {
  std::ostringstream joined;
  for (const std::string& line : lines) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;
  StdioStream stream(in, out);
  SessionStats stats = Session(svc, catalog, options).serve(stream);
  if (stats_out != nullptr) *stats_out = std::move(stats);

  std::vector<std::string> responses;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) responses.push_back(line);
  return responses;
}

/// Builds a submittable job from a protocol line against `catalog`.
/// Mirrors exactly what Session does between parse and submit.
core::SweepJob make_job(WorkloadCatalog& catalog, const std::string& line) {
  const ParsedLine parsed = parse_request_line(line);
  EDEA_REQUIRE(parsed.kind == ParsedLine::Kind::kRun,
               "make_job needs a run line");
  const Request& request = parsed.request;
  const WorkloadCatalog::Workload& workload = catalog.resolve(
      request.network, request.seed, request.dilation,
      request.depth_multiplier);
  core::SweepJob job;
  job.name = request.job_name();
  job.config = request.config;
  job.backend = request.backend;
  job.batch = request.batch;
  job.dilation = request.dilation;
  job.depth_multiplier = request.depth_multiplier;
  job.layers = &workload.layers;
  job.input = &workload.input;
  job.fingerprint = workload.fingerprint;
  return job;
}

/// mobilenet-0.25x with td=16 is the fastest zoo simulation - the same
/// cheap workload the transport tests script.
const char* kFastRun = "run mobilenet-0.25x seed=3 td=16";

// --- batch frames at the session level --------------------------------------

TEST(SessionFrameTest, FramedStreamIsByteIdenticalToBareLines) {
  const std::vector<std::string> bare = {
      kFastRun,
      "run mobilenet-0.25x seed=3 td=16 tk=32",
      kFastRun,  // repeat -> hit
      "stats",
  };
  const std::vector<std::string> framed = {
      "batch-begin 3",
      bare[0],
      bare[1],
      bare[2],
      "batch-end",
      "stats",
  };
  SimulationService svc_a, svc_b;
  WorkloadCatalog catalog_a, catalog_b;
  SessionStats stats;
  const std::vector<std::string> framed_responses =
      serve_stdio(svc_a, catalog_a, framed, SessionOptions(), &stats);
  EXPECT_EQ(framed_responses,
            serve_stdio(svc_b, catalog_b, bare));
  // The control lines answered nothing and took no ids ...
  EXPECT_EQ(stats.requests, 4u);
  // ... but the frame itself was counted.
  EXPECT_EQ(stats.frames, 1u);
}

TEST(SessionFrameTest, BlankAndCommentLinesDoNotConsumeFrameSlots) {
  // Only answering lines count against the declared frame size, so a
  // commented request file can be framed wholesale.
  SimulationService svc;
  WorkloadCatalog catalog;
  const std::vector<std::string> responses = serve_stdio(
      svc, catalog,
      {"batch-begin 1", "", "# a comment", "stats", "batch-end"});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].rfind("stats ", 0), 0u) << responses[0];
}

TEST(SessionFrameTest, FramingViolationsAnswerProtocolErrors) {
  SimulationService svc;
  WorkloadCatalog catalog;

  // batch-end with no open frame.
  {
    const std::vector<std::string> r =
        serve_stdio(svc, catalog, {"batch-end"});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], "protocol-error batch-end outside a frame");
  }
  // A frame closed before its declared count names the shortfall.
  {
    const std::vector<std::string> r =
        serve_stdio(svc, catalog, {"batch-begin 2", "stats", "batch-end"});
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[1], "protocol-error batch-end after 1 of 2 frame lines");
  }
  // Frames do not nest; the inner begin burns one of the outer's slots.
  {
    const std::vector<std::string> r = serve_stdio(
        svc, catalog, {"batch-begin 1", "batch-begin 1", "batch-end"});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], "protocol-error nested batch-begin inside a frame");
  }
  // An answering line past the declared count is an error (and drops the
  // frame state, so the stray batch-end is then outside any frame).
  {
    const std::vector<std::string> r = serve_stdio(
        svc, catalog, {"batch-begin 1", "stats", "stats", "batch-end"});
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0].rfind("stats ", 0), 0u);
    EXPECT_EQ(r[1],
              "protocol-error expected batch-end after 1 frame lines, "
              "got 'stats'");
    EXPECT_EQ(r[2], "protocol-error batch-end outside a frame");
  }
  // EOF inside a frame is the peer breaking its own framing promise.
  {
    SessionStats stats;
    const std::vector<std::string> r =
        serve_stdio(svc, catalog, {"batch-begin 3", "stats"},
                    SessionOptions(), &stats);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[1],
              "protocol-error batch frame truncated: got 1 of 3 lines "
              "before EOF (missing batch-end)");
    EXPECT_EQ(stats.protocol_errors, 1u);
  }
}

// --- reply framing modes ----------------------------------------------------

TEST(SessionModeTest, UnorderedRepliesCarryIdsAndCoverEveryRequest) {
  SimulationService svc;
  WorkloadCatalog catalog;
  const std::vector<std::string> responses = serve_stdio(
      svc, catalog,
      {"mode unordered", kFastRun, kFastRun, "walk nowhere", "stats"});

  ASSERT_EQ(responses.size(), 5u);
  // The mode echo itself is the first unordered reply.
  EXPECT_EQ(responses[0], "id=1 mode unordered");
  // stats is a barrier, so it is last on the wire even in unordered mode.
  EXPECT_EQ(responses[4].rfind("id=5 stats ", 0), 0u) << responses[4];

  // In between, completion order is the server's choice - but every id
  // answers exactly once, and reordering by id reproduces the ordered
  // reference stream.
  std::vector<std::pair<std::uint64_t, std::string>> framed;
  for (const std::string& line : responses) {
    const std::size_t space = line.find(' ');
    ASSERT_EQ(line.rfind("id=", 0), 0u) << line;
    framed.emplace_back(std::stoull(line.substr(3, space - 3)),
                        line.substr(space + 1));
  }
  std::sort(framed.begin(), framed.end());
  SimulationService reference_svc;
  WorkloadCatalog reference_catalog;
  const std::vector<std::string> expected =
      serve_stdio(reference_svc, reference_catalog,
                  {kFastRun, kFastRun, "walk nowhere", "stats"});
  ASSERT_EQ(framed.size(), expected.size() + 1);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(framed[i + 1].first, i + 2);
    EXPECT_EQ(framed[i + 1].second, expected[i]) << "id " << i + 2;
  }
}

TEST(SessionModeTest, OrderedServerRefusesTheSwitchStatingTheMode) {
  SimulationService svc;
  WorkloadCatalog catalog;
  SessionOptions options;
  options.allow_unordered = false;  // the server's --ordered flag
  const std::vector<std::string> responses = serve_stdio(
      svc, catalog, {"mode unordered", kFastRun, "stats"}, options);

  ASSERT_EQ(responses.size(), 3u);
  // The reply states what is actually in effect, formatted in that mode:
  // a bare line, no id prefix - byte-exact reference behavior throughout.
  EXPECT_EQ(responses[0], "mode ordered");
  EXPECT_EQ(responses[1].rfind("ok mobilenet-0.25x@3 ", 0), 0u);
  EXPECT_EQ(responses[2].rfind("stats ", 0), 0u);
}

TEST(SessionModeTest, SwitchingBackToOrderedRestoresBareReplies) {
  SimulationService svc;
  WorkloadCatalog catalog;
  const std::vector<std::string> responses = serve_stdio(
      svc, catalog, {"mode unordered", "mode ordered", kFastRun, "stats"});
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0], "id=1 mode unordered");
  // The switch-back is answered in the mode it established.
  EXPECT_EQ(responses[1], "mode ordered");
  EXPECT_EQ(responses[2].rfind("ok mobilenet-0.25x@3 ", 0), 0u);
  EXPECT_EQ(responses[3].rfind("stats ", 0), 0u);
}

// --- bounded admission ------------------------------------------------------

TEST(ServiceAdmissionTest, BoundedQueueRejectsOnlyFreshSimulations) {
  // One dedicated worker and a queue bound of 1: the first fresh job
  // occupies the whole admission budget for the milliseconds it
  // simulates, so fresh jobs submitted in the microseconds after it are
  // rejected; a retry after the drain is admitted. Hits never compete.
  ServiceOptions options;
  options.worker_threads = 1;
  options.max_queue = 1;
  SimulationService svc(options);
  WorkloadCatalog catalog;
  const std::uint64_t session = svc.new_session_id();

  std::promise<core::SweepOutcome> first;
  ASSERT_EQ(svc.submit_streaming(
                make_job(catalog, "run mobilenet-0.25x seed=50 td=16"),
                session,
                [&](core::SweepOutcome o) { first.set_value(std::move(o)); }),
            Admission::kAdmitted);

  std::size_t busy = 0;
  for (int seed = 51; seed < 55; ++seed) {
    const Admission verdict = svc.submit_streaming(
        make_job(catalog, "run mobilenet-0.25x seed=" + std::to_string(seed) +
                              " td=16"),
        session, [](core::SweepOutcome) {});
    if (verdict == Admission::kBusy) ++busy;
  }
  EXPECT_GE(busy, 1u) << "four fresh submissions within microseconds of a "
                         "multi-millisecond simulation must hit the bound";
  EXPECT_TRUE(first.get_future().get().ok);
  svc.wait_idle();

  const CacheStats mid = svc.cache_stats();
  EXPECT_EQ(mid.rejected, busy);
  EXPECT_LE(mid.peak_queue, mid.max_queue);
  EXPECT_EQ(mid.max_queue, 1u);
  EXPECT_EQ(mid.queued, 0u);

  // A rejected job was never simulated - retrying it now both admits and
  // misses (busy dropped it without side effects) ...
  std::promise<core::SweepOutcome> retried;
  ASSERT_EQ(svc.submit_streaming(
                make_job(catalog, "run mobilenet-0.25x seed=51 td=16"),
                session,
                [&](core::SweepOutcome o) { retried.set_value(std::move(o)); }),
            Admission::kAdmitted);
  EXPECT_TRUE(retried.get_future().get().ok);
  // ... and a repeat of a completed job is a hit even at the bound: it
  // starts no fresh work, so admission never rejects it.
  std::promise<core::SweepOutcome> hit;
  ASSERT_EQ(svc.submit_streaming(
                make_job(catalog, "run mobilenet-0.25x seed=50 td=16"),
                session,
                [&](core::SweepOutcome o) { hit.set_value(std::move(o)); }),
            Admission::kAdmitted);
  EXPECT_TRUE(hit.get_future().get().cache_hit);
}

TEST(SessionAdmissionTest, BusyRepliesAreSelfIdentifyingAndAccounted) {
  ServiceOptions service_options;
  service_options.worker_threads = 1;
  service_options.max_queue = 1;
  SimulationService svc(service_options);
  WorkloadCatalog catalog;
  SessionOptions session_options;
  session_options.busy_retry_ms = 7;

  SessionStats stats;
  const std::vector<std::string> responses = serve_stdio(
      svc, catalog,
      {"run mobilenet-0.25x seed=60 td=16",
       "run mobilenet-0.25x seed=61 td=16",
       "run mobilenet-0.25x seed=62 td=16", "stats"},
      session_options, &stats);
  ASSERT_EQ(responses.size(), 4u);

  // Busy replies are well-formed and carry the session's configured
  // retry hint; every rejected run answered busy in its own slot.
  std::size_t busy_lines = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (responses[i].rfind("busy id=", 0) == 0) {
      ++busy_lines;
      EXPECT_EQ(responses[i],
                "busy id=" + std::to_string(i + 1) + " retry_ms=7");
    } else {
      EXPECT_EQ(responses[i].rfind("ok mobilenet-0.25x@6", 0), 0u)
          << responses[i];
    }
  }
  EXPECT_EQ(stats.busy_replies, busy_lines);
  EXPECT_GE(busy_lines, 1u);

  // The stats barrier drained first, so the line reports a quiet queue
  // and the admission trio (max_queue > 0 makes it appear).
  EXPECT_NE(responses[3].find(" queued=0 "), std::string::npos)
      << responses[3];
  EXPECT_NE(responses[3].find(" rejected=" + std::to_string(busy_lines)),
            std::string::npos)
      << responses[3];
  EXPECT_NE(responses[3].find(" peak_queue="), std::string::npos)
      << responses[3];
  const CacheStats cache = svc.cache_stats();
  EXPECT_EQ(cache.rejected, busy_lines);
  EXPECT_LE(cache.peak_queue, cache.max_queue);
}

// --- the summary-only result contract ---------------------------------------

TEST(ServiceStreamingTest, OnlyFreshSimulationsDeliverPerLayerResults) {
  SimulationService svc;
  WorkloadCatalog catalog;
  const std::uint64_t session = svc.new_session_id();

  // The miss simulates and delivers the full per-layer result.
  std::promise<core::SweepOutcome> miss_p;
  ASSERT_EQ(svc.submit_streaming(
                make_job(catalog, kFastRun), session,
                [&](core::SweepOutcome o) { miss_p.set_value(std::move(o)); }),
            Admission::kAdmitted);
  const core::SweepOutcome miss = miss_p.get_future().get();
  ASSERT_TRUE(miss.ok);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_FALSE(miss.summary_only);
  EXPECT_FALSE(miss.result.layers.empty());

  // The warm hit on the streaming path arrives summary-only: same
  // protocol-visible summary, no per-layer tensors to deep-copy.
  std::promise<core::SweepOutcome> hit_p;
  ASSERT_EQ(svc.submit_streaming(
                make_job(catalog, kFastRun), session,
                [&](core::SweepOutcome o) { hit_p.set_value(std::move(o)); }),
            Admission::kAdmitted);
  const core::SweepOutcome hit = hit_p.get_future().get();
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.summary_only);
  EXPECT_TRUE(hit.result.layers.empty());
  EXPECT_EQ(hit.summary, miss.summary);
  // The wire line is nevertheless byte-identical to the full outcome's.
  core::SweepOutcome full_flagged = miss;
  full_flagged.cache_hit = true;
  EXPECT_EQ(format_outcome_line(hit), format_outcome_line(full_flagged));

  // The legacy promise path keeps delivering full outcomes for in-memory
  // hits - in-process batch callers may want the tensors.
  const core::SweepOutcome submit_hit =
      svc.submit(make_job(catalog, kFastRun)).get();
  EXPECT_TRUE(submit_hit.cache_hit);
  EXPECT_FALSE(submit_hit.summary_only);
  ASSERT_FALSE(submit_hit.result.layers.empty());
  EXPECT_EQ(submit_hit.result.total_cycles(), miss.result.total_cycles());
}

TEST(ServiceStreamingTest, CoalescedDuplicatesAreSummaryOnlyHits) {
  // Two streaming submissions of the same fresh point: the second
  // coalesces onto the in-flight simulation and is delivered as a
  // summary-only hit when it completes; the submitter keeps the full
  // result.
  SimulationService svc;
  WorkloadCatalog catalog;
  const std::uint64_t session = svc.new_session_id();
  std::promise<core::SweepOutcome> first_p, second_p;
  ASSERT_EQ(svc.submit_streaming(
                make_job(catalog, "run mobilenet-0.25x seed=70 td=16"),
                session,
                [&](core::SweepOutcome o) { first_p.set_value(std::move(o)); }),
            Admission::kAdmitted);
  ASSERT_EQ(
      svc.submit_streaming(
          make_job(catalog, "run mobilenet-0.25x seed=70 td=16"), session,
          [&](core::SweepOutcome o) { second_p.set_value(std::move(o)); }),
      Admission::kAdmitted);
  const core::SweepOutcome first = first_p.get_future().get();
  const core::SweepOutcome second = second_p.get_future().get();
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(first.summary_only);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(second.summary_only);
  EXPECT_EQ(second.summary, first.summary);
  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

// --- corked writes ----------------------------------------------------------

TEST(StdioStreamTest, WriteLinesCorksIntoOneNewlineTerminatedBlock) {
  std::istringstream in;
  std::ostringstream out;
  StdioStream stream(in, out);
  EXPECT_TRUE(stream.write_lines({"alpha", "beta", "gamma"}));
  EXPECT_EQ(out.str(), "alpha\nbeta\ngamma\n");
  EXPECT_TRUE(stream.write_lines({}));
  EXPECT_EQ(out.str(), "alpha\nbeta\ngamma\n");
}

// --- the client-side pipeline driver over loopback TCP ----------------------

/// The request stream the pipeline tests replay: misses, a coalescable
/// repeat, a protocol error, an unresolvable network, an infeasible
/// point, a blank line and a comment (never sent), and a stats barrier.
std::vector<std::string> pipeline_requests() {
  return {
      "# pipelined session",
      kFastRun,
      "run mobilenet-0.25x seed=3 td=16 tk=32",
      "",
      kFastRun,  // repeat -> hit (cached or coalesced)
      "walk nowhere",
      "run no-such-network seed=1",
      "run mobilenet-0.25x seed=3 kernel=5",
      "stats",
  };
}

/// The ordered stdio reference for `requests`, served by a fresh service.
std::vector<std::string> stdio_reference(
    const std::vector<std::string>& requests) {
  SimulationService svc;
  WorkloadCatalog catalog;
  return serve_stdio(svc, catalog, requests);
}

/// Non-empty response slots, in logical request order - what the stdio
/// reference emits for the same stream (blank/comment lines answer
/// nothing there and keep empty slots here).
std::vector<std::string> answered(const PipelineReport& report) {
  std::vector<std::string> lines;
  for (const std::string& line : report.responses) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Runs `client` against a one-session loopback server and returns its
/// report. `service_options`/`session_options` shape the server side.
PipelineReport loopback_run(
    const std::vector<std::string>& requests, const PipelineOptions& options,
    bool serial = false,
    ServiceOptions service_options = ServiceOptions(),
    SessionOptions session_options = SessionOptions()) {
  SimulationService svc(service_options);
  WorkloadCatalog catalog;
  SocketTransportOptions transport_options;
  transport_options.max_sessions = 1;
  SocketTransport transport(transport_options);
  std::thread server([&] {
    transport.serve([&](Stream& stream) {
      Session(svc, catalog, session_options).serve(stream);
    });
  });
  PipelineReport report;
  {
    std::unique_ptr<Stream> stream =
        connect_socket("127.0.0.1", transport.port(), /*retry_ms=*/5000);
    report = serial ? run_serial(*stream, requests, options)
                    : run_pipelined(*stream, requests, options);
  }
  server.join();
  return report;
}

TEST(PipelineClientTest, UnorderedPipelineMatchesTheStdioReference) {
  PipelineOptions options;
  options.window = 4;
  const PipelineReport report = loopback_run(pipeline_requests(), options);
  ASSERT_TRUE(report.complete) << report.error;
  EXPECT_TRUE(report.unordered);
  EXPECT_GE(report.frames_sent, 1u);
  EXPECT_EQ(answered(report), stdio_reference(pipeline_requests()));
}

TEST(PipelineClientTest, OrderedPipelineIsByteExactWithoutNegotiation) {
  PipelineOptions options;
  options.window = 4;
  options.ordered = true;
  const PipelineReport report = loopback_run(pipeline_requests(), options);
  ASSERT_TRUE(report.complete) << report.error;
  EXPECT_FALSE(report.unordered);
  EXPECT_EQ(answered(report), stdio_reference(pipeline_requests()));
}

TEST(PipelineClientTest, ServerOrderedRefusalDegradesToOrderedReplies) {
  // An unordered-requesting client against a --ordered server: the
  // refused negotiation leaves the wire ordered, and the driver carries
  // on - logical responses unchanged.
  PipelineOptions options;
  options.window = 4;
  SessionOptions session_options;
  session_options.allow_unordered = false;
  const PipelineReport report =
      loopback_run(pipeline_requests(), options, /*serial=*/false,
                   ServiceOptions(), session_options);
  ASSERT_TRUE(report.complete) << report.error;
  EXPECT_FALSE(report.unordered);
  EXPECT_EQ(answered(report), stdio_reference(pipeline_requests()));
}

TEST(PipelineClientTest, SerialBaselineMatchesTheSameReference) {
  const PipelineReport report =
      loopback_run(pipeline_requests(), PipelineOptions(), /*serial=*/true);
  ASSERT_TRUE(report.complete) << report.error;
  EXPECT_FALSE(report.unordered);
  EXPECT_EQ(report.frames_sent, 0u);
  EXPECT_EQ(answered(report), stdio_reference(pipeline_requests()));
}

TEST(PipelineClientTest, BusyRejectionsAreRetriedToCompletion) {
  // A saturating window against a single worker with a queue bound of 1:
  // most requests bounce at least once, the driver absorbs every busy
  // line with backoff, and the final logical stream still matches an
  // unbounded reference byte for byte (distinct seeds -> all misses, so
  // no cache-flag divergence between the runs).
  std::vector<std::string> requests;
  for (int seed = 80; seed < 86; ++seed) {
    requests.push_back("run mobilenet-0.25x seed=" + std::to_string(seed) +
                       " td=16");
  }
  PipelineOptions options;
  options.window = 6;
  ServiceOptions service_options;
  service_options.worker_threads = 1;
  service_options.max_queue = 1;
  SessionOptions session_options;
  session_options.busy_retry_ms = 1;  // keep the test's backoff short
  const PipelineReport report =
      loopback_run(requests, options, /*serial=*/false, service_options,
                   session_options);
  ASSERT_TRUE(report.complete) << report.error;
  EXPECT_GE(report.busy_replies, 1u)
      << "six fresh requests in one burst against max_queue=1 must bounce";
  for (const std::string& line : report.responses) {
    EXPECT_EQ(line.rfind("busy ", 0), std::string::npos)
        << "retried busy lines must be absorbed, not reported: " << line;
  }
  EXPECT_EQ(answered(report), stdio_reference(requests));
}

TEST(PipelineClientTest, RequestStreamsMayNotCarryFrameOrModeLines) {
  // The driver owns framing and negotiation; a stream that smuggles its
  // own control lines is a caller bug, refused before anything is sent.
  std::istringstream in;
  std::ostringstream out;
  StdioStream stream(in, out);
  EXPECT_THROW((void)run_pipelined(stream, {"mode unordered"}, {}),
               PreconditionError);
  EXPECT_THROW((void)run_pipelined(stream, {"batch-begin 4"}, {}),
               PreconditionError);
  EXPECT_THROW((void)run_serial(stream, {"batch-end"}, {}),
               PreconditionError);
  EXPECT_EQ(out.str(), "");
}

}  // namespace
}  // namespace edea::service
