// cache_persistence_test - the restart-surviving result cache of the
// simulation service: save -> load -> hit round trips (including error
// outcomes), bit-identical protocol lines from persisted summaries,
// merge-on-resave, and loud rejection of corrupted, truncated, or
// version-skewed cache files.
#include "service/simulation_service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep_runner.hpp"
#include "nn/model_zoo.hpp"
#include "service/protocol.hpp"
#include "util/binary.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"

namespace edea::service {
namespace {

/// Small two-layer DSC network (fast enough to simulate many times).
std::vector<nn::DscLayerSpec> tiny_specs() {
  nn::DscLayerSpec a;
  a.index = 0;
  a.in_rows = 8;
  a.in_cols = 8;
  a.in_channels = 16;
  a.out_channels = 32;
  nn::DscLayerSpec b;
  b.index = 1;
  b.in_rows = 8;
  b.in_cols = 8;
  b.in_channels = 32;
  b.stride = 2;
  b.out_channels = 32;
  return {a, b};
}

nn::Int8Tensor tiny_input(std::uint64_t seed) {
  Rng rng(seed);
  nn::Int8Tensor input(nn::Shape{8, 8, 16});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-64, 64));
  }
  return input;
}

struct Fixture {
  std::vector<nn::QuantDscLayer> layers =
      nn::make_random_quant_network(tiny_specs(), 77);
  nn::Int8Tensor input = tiny_input(78);

  [[nodiscard]] core::SweepJob job(const std::string& name, int td = 8,
                                   int tk = 16) const {
    core::SweepJob j;
    j.name = name;
    j.config.td = td;
    j.config.tk = tk;
    j.layers = &layers;
    j.input = &input;
    return j;
  }

  [[nodiscard]] core::SweepJob infeasible(const std::string& name) const {
    core::SweepJob j = job(name);
    j.config.kernel = 5;  // cannot map 3x3 layers -> error outcome
    return j;
  }
};

std::string temp_cache_path(const std::string& name) {
  return testing::TempDir() + "edea_" + name + ".cache";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << bytes;
}

TEST(CachePersistenceTest, SaveLoadRoundTripServesHitsBitIdentically) {
  const std::string path = temp_cache_path("roundtrip");
  Fixture fx;

  // First life: simulate three points (one infeasible), persist.
  core::SweepOutcome first_ok, first_err;
  {
    SimulationService svc;
    first_ok = svc.submit(fx.job("a", 8, 16)).get();
    ASSERT_TRUE(first_ok.ok) << first_ok.error;
    ASSERT_TRUE(svc.submit(fx.job("b", 16, 32)).get().ok);
    first_err = svc.submit(fx.infeasible("bad")).get();
    ASSERT_FALSE(first_err.ok);
    EXPECT_EQ(svc.save_cache(path), 3u);
  }

  // Second life: every point is a hit, no simulation, summary-only, and
  // the protocol line matches the first life's byte for byte.
  SimulationService svc;
  EXPECT_EQ(svc.load_cache(path), 3u);
  EXPECT_EQ(svc.cache_stats().entries, 3u);

  core::SweepOutcome replay = svc.submit(fx.job("a", 8, 16)).get();
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_TRUE(replay.summary_only);
  EXPECT_TRUE(replay.ok);
  EXPECT_EQ(replay.summary, first_ok.summary);
  core::SweepOutcome first_as_hit = first_ok;
  first_as_hit.cache_hit = true;
  EXPECT_EQ(format_outcome_line(replay), format_outcome_line(first_as_hit));

  core::SweepOutcome replay_err = svc.submit(fx.infeasible("bad")).get();
  EXPECT_TRUE(replay_err.cache_hit);
  EXPECT_FALSE(replay_err.ok);
  EXPECT_EQ(replay_err.error, first_err.error);

  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 0u);
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, EntriesAreKeyedPerBackendAcrossRestarts) {
  const std::string path = temp_cache_path("backends");
  Fixture fx;

  // Same workload and config on both dataflows: two distinct keys, two
  // distinct summaries (cycles diverge; outputs hash identically).
  core::SweepOutcome edea_first, serial_first;
  {
    SimulationService svc;
    core::SweepJob fast = fx.job("fast");
    fast.backend = "edea";
    core::SweepJob slow = fx.job("slow");
    slow.backend = "serialized";
    edea_first = svc.submit(fast).get();
    serial_first = svc.submit(slow).get();
    ASSERT_TRUE(edea_first.ok) << edea_first.error;
    ASSERT_TRUE(serial_first.ok) << serial_first.error;
    EXPECT_EQ(svc.cache_stats().misses, 2u);  // no aliasing between keys
    EXPECT_EQ(svc.save_cache(path), 2u);
  }
  EXPECT_EQ(edea_first.summary.output_hash, serial_first.summary.output_hash);
  EXPECT_NE(edea_first.summary.total_cycles, serial_first.summary.total_cycles);

  // Restart: each backend's request hits its own persisted entry and
  // reproduces that backend's summary, not the other's.
  SimulationService svc;
  EXPECT_EQ(svc.load_cache(path), 2u);
  core::SweepJob fast = fx.job("fast");
  fast.backend = "edea";
  core::SweepJob slow = fx.job("slow");
  slow.backend = "serialized";
  const core::SweepOutcome edea_replay = svc.submit(fast).get();
  const core::SweepOutcome serial_replay = svc.submit(slow).get();
  EXPECT_TRUE(edea_replay.cache_hit);
  EXPECT_TRUE(serial_replay.cache_hit);
  EXPECT_TRUE(edea_replay.summary_only);
  EXPECT_EQ(edea_replay.backend, "edea");
  EXPECT_EQ(serial_replay.backend, "serialized");
  EXPECT_EQ(edea_replay.summary, edea_first.summary);
  EXPECT_EQ(serial_replay.summary, serial_first.summary);
  EXPECT_EQ(svc.cache_stats().misses, 0u);
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, ResaveMergesPersistedAndLiveEntries) {
  const std::string path = temp_cache_path("merge");
  Fixture fx;
  {
    SimulationService svc;
    ASSERT_TRUE(svc.submit(fx.job("a", 8, 16)).get().ok);
    EXPECT_EQ(svc.save_cache(path), 1u);
  }
  {
    // Second life serves the old point from persistence and simulates a
    // new one; the resave must carry both.
    SimulationService svc;
    EXPECT_EQ(svc.load_cache(path), 1u);
    EXPECT_TRUE(svc.submit(fx.job("a", 8, 16)).get().cache_hit);
    ASSERT_TRUE(svc.submit(fx.job("b", 16, 32)).get().ok);
    EXPECT_EQ(svc.save_cache(path), 2u);
  }
  SimulationService svc;
  EXPECT_EQ(svc.load_cache(path), 2u);
  EXPECT_TRUE(svc.submit(fx.job("a", 8, 16)).get().cache_hit);
  EXPECT_TRUE(svc.submit(fx.job("b", 16, 32)).get().cache_hit);
  EXPECT_EQ(svc.cache_stats().misses, 0u);
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, SavedFileBytesAreDeterministic) {
  const std::string path_a = temp_cache_path("det_a");
  const std::string path_b = temp_cache_path("det_b");
  Fixture fx;
  for (const std::string& path : {path_a, path_b}) {
    SimulationService svc;
    // Insertion orders differ; the file must not.
    if (path == path_a) {
      ASSERT_TRUE(svc.submit(fx.job("x", 8, 16)).get().ok);
      ASSERT_TRUE(svc.submit(fx.job("y", 16, 32)).get().ok);
    } else {
      ASSERT_TRUE(svc.submit(fx.job("y", 16, 32)).get().ok);
      ASSERT_TRUE(svc.submit(fx.job("x", 8, 16)).get().ok);
    }
    EXPECT_EQ(svc.save_cache(path), 2u);
  }
  EXPECT_EQ(read_file(path_a), read_file(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(CachePersistenceTest, MissingFileIsAFreshStartNotAnError) {
  SimulationService svc;
  EXPECT_EQ(svc.load_cache(temp_cache_path("does_not_exist")), 0u);
  EXPECT_EQ(svc.cache_stats().entries, 0u);
}

TEST(CachePersistenceTest, CorruptedFileIsRejectedAndCacheUnchanged) {
  const std::string path = temp_cache_path("corrupt");
  Fixture fx;
  {
    SimulationService svc;
    ASSERT_TRUE(svc.submit(fx.job("a")).get().ok);
    EXPECT_EQ(svc.save_cache(path), 1u);
  }
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5A);
  write_file(path, bytes);

  SimulationService svc;
  EXPECT_THROW((void)svc.load_cache(path), PreconditionError);
  EXPECT_EQ(svc.cache_stats().entries, 0u);
  // The service stays fully functional: the point simulates as a miss.
  const core::SweepOutcome out = svc.submit(fx.job("a")).get();
  EXPECT_TRUE(out.ok);
  EXPECT_FALSE(out.cache_hit);
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, TruncatedFileIsRejected) {
  const std::string path = temp_cache_path("truncated");
  Fixture fx;
  {
    SimulationService svc;
    ASSERT_TRUE(svc.submit(fx.job("a")).get().ok);
    EXPECT_EQ(svc.save_cache(path), 1u);
  }
  const std::string bytes = read_file(path);
  // Every proper prefix must be rejected - the checksum trails the file,
  // so truncation at any point loses or garbles it.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, bytes.size() / 2,
        bytes.size() - 1}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    write_file(path, bytes.substr(0, keep));
    SimulationService svc;
    EXPECT_THROW((void)svc.load_cache(path), PreconditionError);
    EXPECT_EQ(svc.cache_stats().entries, 0u);
  }
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, VersionSkewAndTrailingGarbageAreRejected) {
  const std::string path = temp_cache_path("skew");
  Fixture fx;
  {
    SimulationService svc;
    ASSERT_TRUE(svc.submit(fx.job("a")).get().ok);
    EXPECT_EQ(svc.save_cache(path), 1u);
  }
  const std::string bytes = read_file(path);

  // Flipping the version (bytes 8..11, after the 8-byte magic) while
  // leaving everything else intact fails the checksum; a file that also
  // "fixed" its checksum would still fail the version gate - either way
  // the load must throw.
  std::string skewed = bytes;
  skewed[8] = static_cast<char>(skewed[8] + 1);
  write_file(path, skewed);
  {
    SimulationService svc;
    EXPECT_THROW((void)svc.load_cache(path), PreconditionError);
  }

  // Appending bytes invalidates the trailing checksum too.
  write_file(path, bytes + "garbage");
  {
    SimulationService svc;
    EXPECT_THROW((void)svc.load_cache(path), PreconditionError);
  }
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, BatchSizesAreDistinctKeysAcrossRestarts) {
  const std::string path = temp_cache_path("batches");
  Fixture fx;

  // Same workload, config, and backend at batch 1 and batch 4: two keys,
  // two summaries (the batched arena plan has a larger peak).
  core::SweepOutcome single_first, batched_first;
  {
    SimulationService svc;
    core::SweepJob single = fx.job("single");
    core::SweepJob batched = fx.job("batched");
    batched.batch = 4;
    single_first = svc.submit(single).get();
    batched_first = svc.submit(batched).get();
    ASSERT_TRUE(single_first.ok) << single_first.error;
    ASSERT_TRUE(batched_first.ok) << batched_first.error;
    EXPECT_EQ(svc.cache_stats().misses, 2u);  // no aliasing between keys
    EXPECT_EQ(svc.save_cache(path), 2u);
  }
  EXPECT_EQ(single_first.summary.output_hash,
            batched_first.summary.output_hash);
  EXPECT_GT(batched_first.summary.peak_arena_bytes,
            single_first.summary.peak_arena_bytes);

  SimulationService svc;
  EXPECT_EQ(svc.load_cache(path), 2u);
  core::SweepJob single = fx.job("single");
  core::SweepJob batched = fx.job("batched");
  batched.batch = 4;
  const core::SweepOutcome single_replay = svc.submit(single).get();
  const core::SweepOutcome batched_replay = svc.submit(batched).get();
  EXPECT_TRUE(single_replay.cache_hit);
  EXPECT_TRUE(batched_replay.cache_hit);
  EXPECT_EQ(single_replay.batch, 1);
  EXPECT_EQ(batched_replay.batch, 4);
  EXPECT_EQ(single_replay.summary, single_first.summary);
  EXPECT_EQ(batched_replay.summary, batched_first.summary);
  EXPECT_EQ(svc.cache_stats().misses, 0u);
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, TransformKnobsAreDistinctKeysAcrossRestarts) {
  const std::string path = temp_cache_path("transforms");
  Fixture fx;

  // Same workload, config, backend, and batch at three transform points:
  // (1,1), (2,1), (1,2) - three keys, no aliasing, each echoing its own
  // knobs after the file round trip (the format-v4 fields).
  core::SweepOutcome plain_first, dilated_first, multiplied_first;
  {
    SimulationService svc;
    core::SweepJob plain = fx.job("plain");
    core::SweepJob dilated = fx.job("dilated");
    dilated.dilation = 2;
    core::SweepJob multiplied = fx.job("multiplied");
    multiplied.depth_multiplier = 2;
    plain_first = svc.submit(plain).get();
    dilated_first = svc.submit(dilated).get();
    multiplied_first = svc.submit(multiplied).get();
    ASSERT_TRUE(plain_first.ok) << plain_first.error;
    EXPECT_EQ(svc.cache_stats().misses, 3u);  // no aliasing between keys
    EXPECT_EQ(svc.save_cache(path), 3u);
  }

  SimulationService svc;
  EXPECT_EQ(svc.load_cache(path), 3u);
  core::SweepJob plain = fx.job("plain");
  core::SweepJob dilated = fx.job("dilated");
  dilated.dilation = 2;
  core::SweepJob multiplied = fx.job("multiplied");
  multiplied.depth_multiplier = 2;
  const core::SweepOutcome plain_replay = svc.submit(plain).get();
  const core::SweepOutcome dilated_replay = svc.submit(dilated).get();
  const core::SweepOutcome multiplied_replay = svc.submit(multiplied).get();
  EXPECT_TRUE(plain_replay.cache_hit);
  EXPECT_TRUE(dilated_replay.cache_hit);
  EXPECT_TRUE(multiplied_replay.cache_hit);
  EXPECT_EQ(plain_replay.dilation, 1);
  EXPECT_EQ(dilated_replay.dilation, 2);
  EXPECT_EQ(dilated_replay.depth_multiplier, 1);
  EXPECT_EQ(multiplied_replay.depth_multiplier, 2);
  EXPECT_EQ(plain_replay.summary, plain_first.summary);
  EXPECT_EQ(dilated_replay.summary, dilated_first.summary);
  EXPECT_EQ(multiplied_replay.summary, multiplied_first.summary);
  EXPECT_EQ(svc.cache_stats().misses, 0u);

  // The persisted-line contract holds for transformed entries too: the
  // replayed (summary-only) outcome formats byte-identically to the live
  // one served as a hit, dilation= echo included.
  core::SweepOutcome dilated_as_hit = dilated_first;
  dilated_as_hit.cache_hit = true;
  EXPECT_EQ(format_outcome_line(dilated_replay),
            format_outcome_line(dilated_as_hit));

  // Byte-determinism extends to the v4 fields: a second service reaching
  // the same entries in another order persists the identical file.
  const std::string path_b = temp_cache_path("transforms_b");
  {
    SimulationService reordered;
    ASSERT_TRUE(reordered.submit(multiplied).get().ok);
    ASSERT_TRUE(reordered.submit(dilated).get().ok);
    ASSERT_TRUE(reordered.submit(plain).get().ok);
    EXPECT_EQ(reordered.save_cache(path_b), 3u);
  }
  EXPECT_EQ(read_file(path), read_file(path_b));
  std::remove(path.c_str());
  std::remove(path_b.c_str());
}

TEST(CachePersistenceTest, VersionThreeFilesAreRejectedByTheVersionGate) {
  // A well-formed v3 file (correct magic, correct checksum, zero entries)
  // must trip the *version* check, not the checksum: v3 predates the
  // dilation / depth-multiplier key fields, so a v3 file cannot say which
  // workload transform its fingerprints were computed over - reject
  // loudly, never guess.
  const std::string path = temp_cache_path("v3");
  util::ByteWriter w;
  w.pod(std::uint64_t{0x0053414341454445ull});  // "EDEACAS\0" magic
  w.pod(std::uint32_t{3});                      // the superseded version
  w.pod(std::uint64_t{0});                      // entry count
  const std::uint64_t digest =
      util::Fnv1a64().bytes(w.buffer().data(), w.buffer().size()).digest();
  std::string bytes(w.buffer().data(), w.buffer().size());
  bytes.append(reinterpret_cast<const char*>(&digest), sizeof(digest));
  write_file(path, bytes);

  SimulationService svc;
  try {
    (void)svc.load_cache(path);
    FAIL() << "a v3 cache file must be rejected";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version 3"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(svc.cache_stats().entries, 0u);
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, VersionTwoFilesAreRejectedByTheVersionGate) {
  // A well-formed v2 file (correct magic, correct checksum, zero entries)
  // must trip the *version* check, not the checksum: v2 predates
  // batch-keyed entries and the summary's peak_arena_bytes field, so its
  // entries can never decode correctly - reject loudly, never migrate.
  const std::string path = temp_cache_path("v2");
  util::ByteWriter w;
  w.pod(std::uint64_t{0x0053414341454445ull});  // "EDEACAS\0" magic
  w.pod(std::uint32_t{2});                      // the superseded version
  w.pod(std::uint64_t{0});                      // entry count
  const std::uint64_t digest =
      util::Fnv1a64().bytes(w.buffer().data(), w.buffer().size()).digest();
  std::string bytes(w.buffer().data(), w.buffer().size());
  bytes.append(reinterpret_cast<const char*>(&digest), sizeof(digest));
  write_file(path, bytes);

  SimulationService svc;
  try {
    (void)svc.load_cache(path);
    FAIL() << "a v2 cache file must be rejected";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version 2"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(svc.cache_stats().entries, 0u);
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, ZeroCapacityServiceIgnoresPersistence) {
  const std::string path = temp_cache_path("nocache");
  Fixture fx;
  {
    SimulationService svc;
    ASSERT_TRUE(svc.submit(fx.job("a")).get().ok);
    EXPECT_EQ(svc.save_cache(path), 1u);
  }
  ServiceOptions options;
  options.cache_capacity = 0;  // memoization disabled disables persistence
  SimulationService svc(options);
  EXPECT_EQ(svc.load_cache(path), 0u);
  EXPECT_FALSE(svc.submit(fx.job("a")).get().cache_hit);
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, UnwritablePathThrowsResourceError) {
  SimulationService svc;
  EXPECT_THROW((void)svc.save_cache("/nonexistent-dir/edea.cache"),
               ResourceError);
}

}  // namespace
}  // namespace edea::service
