// tile_parallel_test - determinism and property tests of tile-level
// parallelism inside one network run (the dual-engine simulator's hot
// path). The contract under test: for every (network, configuration,
// tile_parallelism) the run is *bit-identical* to the serial reference -
// the final output tensor, the RunSummary digest, and every counter the
// simulator keeps (timing, buffer accesses, dataflow, external traffic,
// MAC activity, Non-Conv ops, sparsity tallies, psum envelope). Also
// covers the nested case (sweep-level x tile-level workers sharing one
// pool) and the deterministic tile partition itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "core/sweep_runner.hpp"
#include "nn/model_zoo.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::core {
namespace {

nn::Int8Tensor random_input(const nn::DscLayerSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  nn::Int8Tensor input(
      nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return input;
}

/// Every field of a LayerRunResult, bit for bit. A failure names the field
/// so a determinism regression is immediately attributable.
void expect_layer_identical(const LayerRunResult& a, const LayerRunResult& b) {
  EXPECT_EQ(a.output.storage(), b.output.storage()) << "output tensor";
  EXPECT_EQ(a.timing, b.timing) << "timing";
  EXPECT_EQ(a.buffers, b.buffers) << "buffer access counters";
  EXPECT_EQ(a.dataflow, b.dataflow) << "dataflow counters";
  EXPECT_EQ(a.external, b.external) << "external traffic";
  EXPECT_EQ(a.dwc_activity, b.dwc_activity) << "DWC MAC activity";
  EXPECT_EQ(a.pwc_activity, b.pwc_activity) << "PWC MAC activity";
  EXPECT_EQ(a.nonconv_transfer_ops, b.nonconv_transfer_ops);
  EXPECT_EQ(a.nonconv_writeback_ops, b.nonconv_writeback_ops);
  EXPECT_EQ(a.max_abs_psum, b.max_abs_psum);
  // The fractions derive from identical integer tallies, so they must be
  // exactly equal, not approximately.
  EXPECT_EQ(a.dwc_input_zero_fraction, b.dwc_input_zero_fraction);
  EXPECT_EQ(a.pwc_input_zero_fraction, b.pwc_input_zero_fraction);
}

void expect_network_identical(const NetworkRunResult& a,
                              const NetworkRunResult& b, double clock_ghz) {
  ASSERT_EQ(a.layers.size(), b.layers.size());
  EXPECT_EQ(a.output.storage(), b.output.storage());
  // The wire-level digest (incl. the output content hash) must match too -
  // this is what the service protocol ships and what CI's --verify checks.
  EXPECT_EQ(a.summary(clock_ghz), b.summary(clock_ghz));
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    SCOPED_TRACE("layer " + std::to_string(l));
    expect_layer_identical(a.layers[l], b.layers[l]);
  }
}

NetworkRunResult run_with(const std::vector<nn::QuantDscLayer>& layers,
                          const nn::Int8Tensor& input,
                          const EdeaConfig& config, int tile_parallelism) {
  EdeaAccelerator accel(config);
  accel.set_tile_parallelism(tile_parallelism);
  return accel.run_network(layers, input);
}

constexpr int kParallelisms[] = {2, 4, 8};

// --- the headline property: every zoo network, parallelism 1/2/4/8 --------

TEST(TileParallelTest, EveryZooNetworkBitIdenticalAcrossParallelism) {
  for (const std::string& name : nn::zoo_network_names()) {
    SCOPED_TRACE("network " + name);
    EdeaConfig config;  // paper defaults
    if (name == "mobilenet-imagenet") {
      // The paper accumulator cannot hold K=512 kernels under 8x8 output
      // tiles; 4x4 tiles keep the ImageNet geometry servable (and exercise
      // a much larger tile count, which is the point here).
      config.max_tile_out = 4;
    }
    const auto specs = nn::zoo_specs(name);
    const auto layers = nn::make_random_quant_network(specs, 2024);
    const nn::Int8Tensor input = random_input(specs.front(), 4242);

    const NetworkRunResult serial = run_with(layers, input, config, 1);
    for (const int p : kParallelisms) {
      SCOPED_TRACE("tile_parallelism " + std::to_string(p));
      expect_network_identical(serial, run_with(layers, input, config, p),
                               config.clock_ghz);
    }
  }
}

// --- configuration sweep on a compact network -----------------------------

/// A 2-layer network whose geometry produces ragged tiles, ragged channel
/// slices, and a stride-2 layer - the shapes that would expose a wrong
/// partition or merge.
std::vector<nn::DscLayerSpec> ragged_specs() {
  nn::DscLayerSpec a;
  a.index = 0;
  a.in_rows = 20;  // 20 = 2*8 + 4: ragged edge tiles in both axes
  a.in_cols = 20;
  a.in_channels = 12;  // ragged Td slice (12 = 8 + 4)
  a.out_channels = 24;  // ragged Tk group (24 = 16 + 8)
  nn::DscLayerSpec b;
  b.index = 1;
  b.in_rows = 20;
  b.in_cols = 20;
  b.in_channels = 24;
  b.stride = 2;
  b.out_channels = 32;
  return {a, b};
}

TEST(TileParallelTest, ConfigSweepBitIdenticalAcrossParallelism) {
  const auto specs = ragged_specs();
  const auto layers = nn::make_random_quant_network(specs, 99);
  const nn::Int8Tensor input = random_input(specs.front(), 100);

  std::vector<EdeaConfig> variants;
  variants.push_back(EdeaConfig::paper());
  {
    EdeaConfig c;  // wider engines
    c.td = 16;
    c.tk = 32;
    variants.push_back(c);
  }
  {
    EdeaConfig c;  // smaller buffer tiles -> more tiles than workers
    c.max_tile_out = 4;
    variants.push_back(c);
  }
  {
    EdeaConfig c;  // narrow engines -> many slices and groups per tile
    c.td = 4;
    c.tk = 4;
    c.max_tile_out = 2;
    variants.push_back(c);
  }

  for (const EdeaConfig& config : variants) {
    SCOPED_TRACE(config.to_string());
    const NetworkRunResult serial = run_with(layers, input, config, 1);
    for (const int p : kParallelisms) {
      SCOPED_TRACE("tile_parallelism " + std::to_string(p));
      expect_network_identical(serial, run_with(layers, input, config, p),
                               config.clock_ghz);
    }
  }
}

TEST(TileParallelTest, SingleTileLayerAndMoreWorkersThanTiles) {
  // An 8x8 layer is exactly one buffer tile: every parallelism collapses
  // to the serial path and must still be bit-identical.
  nn::DscLayerSpec spec;
  spec.index = 0;
  spec.in_rows = 8;
  spec.in_cols = 8;
  spec.in_channels = 16;
  spec.out_channels = 16;
  const auto layers =
      nn::make_random_quant_network(std::vector<nn::DscLayerSpec>{spec}, 7);
  const nn::Int8Tensor input = random_input(spec, 8);

  const EdeaConfig config;
  const NetworkRunResult serial = run_with(layers, input, config, 1);
  for (const int p : {2, 8, 64}) {
    SCOPED_TRACE("tile_parallelism " + std::to_string(p));
    expect_network_identical(serial, run_with(layers, input, config, p),
                             config.clock_ghz);
  }
}

TEST(TileParallelTest, RepeatedParallelRunsAreStable) {
  // Scheduling may differ run to run; results must not.
  const auto specs = ragged_specs();
  const auto layers = nn::make_random_quant_network(specs, 13);
  const nn::Int8Tensor input = random_input(specs.front(), 14);
  const EdeaConfig config;

  const NetworkRunResult first = run_with(layers, input, config, 4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    expect_network_identical(first, run_with(layers, input, config, 4),
                             config.clock_ghz);
  }
}

TEST(TileParallelTest, AcceleratorReuseAcrossParallelismChanges) {
  // One accelerator instance, reconfigured between runs: worker state must
  // never leak across layers or parallelism settings.
  const auto specs = ragged_specs();
  const auto layers = nn::make_random_quant_network(specs, 21);
  const nn::Int8Tensor input = random_input(specs.front(), 22);

  EdeaAccelerator accel;
  accel.set_tile_parallelism(1);
  const NetworkRunResult serial = accel.run_network(layers, input);
  for (const int p : {8, 2, 4, 1}) {
    SCOPED_TRACE("tile_parallelism " + std::to_string(p));
    accel.set_tile_parallelism(p);
    expect_network_identical(serial, accel.run_network(layers, input),
                             accel.config().clock_ghz);
  }
}

// --- nested: sweep-level x tile-level workers on one shared pool ----------

TEST(TileParallelTest, NestedSweepAndTileParallelismMatchesSerial) {
  const auto specs = ragged_specs();
  const auto layers = nn::make_random_quant_network(specs, 31);
  const nn::Int8Tensor input = random_input(specs.front(), 32);

  std::vector<SweepJob> jobs;
  const int tds[] = {8, 16, 8, 4};
  const int tks[] = {16, 32, 8, 16};
  for (int i = 0; i < 4; ++i) {
    SweepJob job;
    job.name = "job" + std::to_string(i);
    job.config.td = tds[i];
    job.config.tk = tks[i];
    job.layers = &layers;
    job.input = &input;
    jobs.push_back(std::move(job));
  }

  SweepOptions serial_options;
  serial_options.parallelism = 1;
  const auto serial = SweepRunner(serial_options).run(jobs);
  ASSERT_EQ(serial.size(), jobs.size());
  for (const SweepOutcome& o : serial) {
    ASSERT_TRUE(o.ok) << o.name << ": " << o.error;
  }

  struct Nested {
    int parallelism;
    int tile_parallelism;
  };
  for (const Nested n : {Nested{0, 4}, Nested{2, 2}, Nested{3, 8}}) {
    SCOPED_TRACE("sweep parallelism " + std::to_string(n.parallelism) +
                 " x tile parallelism " + std::to_string(n.tile_parallelism));
    SweepOptions options;
    options.parallelism = n.parallelism;
    options.tile_parallelism = n.tile_parallelism;
    const auto nested = SweepRunner(options).run(jobs);
    ASSERT_EQ(nested.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("outcome " + std::to_string(i));
      EXPECT_EQ(nested[i].name, serial[i].name);
      EXPECT_EQ(nested[i].ok, serial[i].ok);
      EXPECT_EQ(nested[i].error, serial[i].error);
      expect_network_identical(serial[i].result, nested[i].result,
                               serial[i].config.clock_ghz);
    }
  }
}

// --- the deterministic tile partition itself ------------------------------

TEST(TileParallelTest, TileChunkPartitionCoversBalancedAndContiguous) {
  nn::DscLayerSpec spec;
  spec.in_rows = 20;  // 3x3 = 9 buffer tiles under the paper config
  spec.in_cols = 20;
  spec.in_channels = 8;
  spec.out_channels = 8;
  const Tiler tiler(EdeaConfig::paper(), spec);
  const std::size_t n = tiler.tiles().size();
  ASSERT_EQ(n, 9u);

  for (const int chunks : {1, 2, 3, 4, 8, 9, 16}) {
    SCOPED_TRACE("chunks " + std::to_string(chunks));
    std::size_t expect_begin = 0;
    std::size_t largest = 0;
    std::size_t smallest = n;
    for (int w = 0; w < chunks; ++w) {
      const auto [first, last] = tiler.tile_chunk(chunks, w);
      EXPECT_EQ(first, expect_begin);  // contiguous, in tile order
      EXPECT_LE(first, last);
      expect_begin = last;
      const std::size_t size = last - first;
      largest = std::max(largest, size);
      smallest = std::min(smallest, size);
    }
    EXPECT_EQ(expect_begin, n);  // full cover, no overlap
    if (chunks <= static_cast<int>(n)) {
      EXPECT_LE(largest - smallest, 1u);  // balanced to within one tile
    }
  }

  EXPECT_THROW((void)tiler.tile_chunk(0, 0), PreconditionError);
  EXPECT_THROW((void)tiler.tile_chunk(-2, 0), PreconditionError);
  EXPECT_THROW((void)tiler.tile_chunk(4, 4), PreconditionError);
  EXPECT_THROW((void)tiler.tile_chunk(4, -1), PreconditionError);
}

// --- knob validation: zero/negative widths fail loudly --------------------

TEST(TileParallelTest, ZeroOrNegativeTileParallelismIsAPreconditionError) {
  // Mirrors the negative-parallelism tests: a zero or negative width is
  // caller arithmetic gone wrong, and unlike sweep parallelism there is no
  // 0 = auto policy at tile level, so 0 must fail too.
  for (const int bad : {0, -1, -7, -1000000}) {
    SCOPED_TRACE("tile_parallelism=" + std::to_string(bad));
    SweepOptions options;
    options.tile_parallelism = bad;
    EXPECT_THROW(options.validate(), PreconditionError);
    EXPECT_THROW(SweepRunner{options}, PreconditionError);

    EdeaAccelerator accel;
    EXPECT_THROW(accel.set_tile_parallelism(bad), PreconditionError);

    SweepJob job;
    job.name = "j";
    const auto layers = nn::make_random_quant_network(
        std::vector<nn::DscLayerSpec>{ragged_specs().front()}, 3);
    const nn::Int8Tensor input = random_input(ragged_specs().front(), 4);
    job.layers = &layers;
    job.input = &input;
    EXPECT_THROW((void)evaluate_job(job, bad), PreconditionError);
  }
  SweepOptions ok;
  ok.tile_parallelism = 1;
  EXPECT_NO_THROW(ok.validate());
  ok.tile_parallelism = 8;
  EXPECT_NO_THROW(ok.validate());
}

}  // namespace
}  // namespace edea::core
