// Tests for the quantization layer (src/nn/quant.*): scale selection,
// round-trip error, Non-Conv folding correctness against the float
// definition of dequant + BN + ReLU + requant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "nn/quant.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::nn {
namespace {

TEST(QuantScale, QuantizeRoundsAndSaturates) {
  const QuantScale s{0.5f};
  EXPECT_EQ(s.quantize(1.0f), 2);
  EXPECT_EQ(s.quantize(0.26f), 1);   // 0.52 -> 1
  EXPECT_EQ(s.quantize(-0.26f), -1);
  EXPECT_EQ(s.quantize(1000.0f), 127);
  EXPECT_EQ(s.quantize(-1000.0f), -128);
}

TEST(QuantScale, DequantizeInverts) {
  const QuantScale s{0.25f};
  EXPECT_FLOAT_EQ(s.dequantize(4), 1.0f);
  EXPECT_FLOAT_EQ(s.dequantize(-8), -2.0f);
}

TEST(QuantScale, RoundTripErrorBoundedByHalfStep) {
  Rng rng(31);
  const QuantScale s{0.1f};
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<float>(rng.uniform(-12.0, 12.0));
    const float back = s.dequantize(s.quantize(v));
    EXPECT_NEAR(back, v, 0.05f + 1e-6f);
  }
}

TEST(ChooseWeightScale, UsesMaxAbsOver127) {
  FloatTensor w(Shape{3});
  w(0) = -2.54f;
  w(1) = 1.0f;
  w(2) = 0.1f;
  const QuantScale s = choose_weight_scale(w);
  EXPECT_NEAR(s.scale, 2.54f / 127.0f, 1e-6f);
}

TEST(ChooseWeightScale, DegenerateZeroTensor) {
  const FloatTensor w(Shape{4}, 0.0f);
  EXPECT_FLOAT_EQ(choose_weight_scale(w).scale, 1.0f);
}

TEST(ChooseActivationScale, Basics) {
  EXPECT_NEAR(choose_activation_scale(12.7).scale, 0.1f, 1e-6f);
  EXPECT_FLOAT_EQ(choose_activation_scale(0.0).scale, 1.0f);
  EXPECT_THROW((void)choose_activation_scale(-1.0), PreconditionError);
}

TEST(QuantizeTensor, ElementwiseAndShapePreserving) {
  FloatTensor t(Shape{2, 2});
  t(0, 0) = 0.5f;
  t(0, 1) = -0.5f;
  t(1, 0) = 0.24f;
  t(1, 1) = 10.0f;
  const Int8Tensor q = quantize_tensor(t, QuantScale{0.5f});
  EXPECT_EQ(q.shape(), t.shape());
  EXPECT_EQ(q(0, 0), 1);
  EXPECT_EQ(q(0, 1), -1);
  EXPECT_EQ(q(1, 0), 0);
  EXPECT_EQ(q(1, 1), 20);
}

// --------------------------------------------------------------- folding ---

BatchNormParams random_bn(int channels, Rng& rng) {
  BatchNormParams bn;
  for (int c = 0; c < channels; ++c) {
    bn.gamma.push_back(static_cast<float>(rng.uniform(0.5, 1.5)));
    bn.beta.push_back(static_cast<float>(rng.normal(0.0, 0.2)));
    bn.mean.push_back(static_cast<float>(rng.normal(0.0, 0.3)));
    bn.var.push_back(static_cast<float>(rng.uniform(0.5, 2.0)));
  }
  return bn;
}

TEST(FoldNonConv, ProducesOneParamPerChannel) {
  Rng rng(41);
  const BatchNormParams bn = random_bn(16, rng);
  const NonConvParams p = fold_nonconv(QuantScale{0.02f}, QuantScale{0.01f},
                                       bn, QuantScale{0.03f});
  EXPECT_EQ(p.channel_count(), 16u);
  EXPECT_EQ(p.k_float.size(), 16u);
  EXPECT_EQ(p.b_float.size(), 16u);
}

TEST(FoldNonConv, FoldingMatchesFloatPipeline) {
  // For a random accumulator, k*acc+b must equal the explicit chain:
  // dequant -> BN -> (ReLU) -> requant, before rounding.
  Rng rng(43);
  const int C = 8;
  const QuantScale in{0.02f}, wt{0.015f}, out{0.05f};
  const BatchNormParams bn = random_bn(C, rng);
  const NonConvParams p = fold_nonconv(in, wt, bn, out);

  for (int c = 0; c < C; ++c) {
    for (int trial = 0; trial < 100; ++trial) {
      const auto acc = static_cast<std::int32_t>(rng.uniform_int(-80000,
                                                                 80000));
      const auto cc = static_cast<std::size_t>(c);
      // Explicit chain.
      const double real = static_cast<double>(in.scale) * wt.scale * acc;
      const double bn_out = bn.effective_scale(cc) * real +
                            bn.effective_shift(cc);
      const double requant = bn_out / out.scale;
      // Folded chain (float form).
      const double folded = static_cast<double>(p.k_float[cc]) * acc +
                            p.b_float[cc];
      EXPECT_NEAR(folded, requant, std::abs(requant) * 1e-4 + 1e-3);
    }
  }
}

TEST(FoldNonConv, RejectsNonPositiveScales) {
  Rng rng(47);
  const BatchNormParams bn = random_bn(2, rng);
  EXPECT_THROW((void)fold_nonconv(QuantScale{0.0f}, QuantScale{0.01f}, bn,
                                  QuantScale{0.01f}),
               PreconditionError);
}

TEST(FoldNonConv, KAndBFitQ816ForRealisticNetworks) {
  // The paper chose Q8.16 "to cover all possible ranges of k and b". For
  // realistic scales and BN statistics, |k| and |b| stay far below 128.
  Rng rng(53);
  for (int trial = 0; trial < 50; ++trial) {
    const BatchNormParams bn = random_bn(8, rng);
    // Realistic calibrated scales: activations peak between ~2.5 and ~13
    // (scale = max/127), weights below 1. Degenerate sub-0.02 output
    // scales would push |b| past 128 - fold_nonconv then throws, which a
    // separate test covers.
    const QuantScale in{static_cast<float>(rng.uniform(0.02, 0.1))};
    const QuantScale wt{static_cast<float>(rng.uniform(0.005, 0.05))};
    const QuantScale out{static_cast<float>(rng.uniform(0.02, 0.1))};
    const NonConvParams p = fold_nonconv(in, wt, bn, out);
    for (std::size_t c = 0; c < p.channel_count(); ++c) {
      EXPECT_LT(std::abs(p.k_float[c]), 128.0f);
      EXPECT_LT(std::abs(p.b_float[c]), 128.0f);
    }
  }
}

TEST(FoldNonConv, OutOfRangeBThrowsLoudly) {
  // A pathologically small output scale pushes |b| past the Q8.16 range;
  // the fold must fail loudly rather than silently saturate.
  BatchNormParams bn;
  bn.gamma = {1.0f};
  bn.beta = {2.0f};
  bn.mean = {0.0f};
  bn.var = {1.0f};
  EXPECT_THROW((void)fold_nonconv(QuantScale{0.02f}, QuantScale{0.02f}, bn,
                                  QuantScale{0.001f}),
               PreconditionError);
}

// ----------------------------------------------------------- apply stage ---

TEST(ApplyNonConv, FixedPointVersusFloatWithinOneLsb) {
  Rng rng(59);
  const int C = 8;
  const BatchNormParams bn = random_bn(C, rng);
  const NonConvParams p = fold_nonconv(QuantScale{0.02f}, QuantScale{0.01f},
                                       bn, QuantScale{0.04f});
  Int32Tensor acc(Shape{4, 4, C});
  for (auto& v : acc.storage()) {
    v = static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
  }
  const Int8Tensor fixed = apply_nonconv(acc, p);
  const Int8Tensor ref = apply_nonconv_float(acc, p);
  int worst = 0;
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<int>(fixed.storage()[i]) -
                                     static_cast<int>(ref.storage()[i])));
  }
  EXPECT_LE(worst, 1);
}

TEST(ApplyNonConv, OutputIsReluClamped) {
  Rng rng(61);
  const BatchNormParams bn = random_bn(4, rng);
  const NonConvParams p = fold_nonconv(QuantScale{0.02f}, QuantScale{0.01f},
                                       bn, QuantScale{0.04f});
  Int32Tensor acc(Shape{8, 8, 4});
  for (auto& v : acc.storage()) {
    v = static_cast<std::int32_t>(rng.uniform_int(-200000, 200000));
  }
  const Int8Tensor out = apply_nonconv(acc, p);
  for (const auto v : out.storage()) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 127);
  }
}

TEST(ApplyNonConv, ChannelCountMismatchThrows) {
  Rng rng(67);
  const BatchNormParams bn = random_bn(4, rng);
  const NonConvParams p = fold_nonconv(QuantScale{0.02f}, QuantScale{0.01f},
                                       bn, QuantScale{0.04f});
  Int32Tensor acc(Shape{2, 2, 8});
  EXPECT_THROW((void)apply_nonconv(acc, p), PreconditionError);
}

TEST(NonConvChannelParams, ApplyMatchesAffineHelper) {
  const NonConvChannelParams p{arch::Q8_16::from_double(0.5),
                               arch::Q8_16::from_double(2.0)};
  EXPECT_EQ(p.apply(10), 7);    // 0.5*10+2
  EXPECT_EQ(p.apply(-100), 0);  // ReLU
  EXPECT_EQ(p.apply(1000), 127);
}

}  // namespace
}  // namespace edea::nn
