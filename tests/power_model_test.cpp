// Tests for the calibrated power model (Figs. 9, 11, 12): anchor
// reproduction, per-layer inversion, and the published efficiency series.
#include <gtest/gtest.h>

#include "model/area_model.hpp"
#include "model/power_model.hpp"
#include "nn/mobilenet.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace edea::model {
namespace {

TEST(PaperData, PowerSeriesReproducesQuotedAnchors) {
  // Sec. IV-A quotes layer 1 = 117.7 mW (highest) and layer 12 = 67.7 mW
  // (lowest); these must drop out of throughput / efficiency.
  EXPECT_NEAR(paper_layer_power_mw(1), 117.7, 0.05);
  EXPECT_NEAR(paper_layer_power_mw(12), 67.7, 0.05);
  for (int i = 0; i < kPaperLayerCount; ++i) {
    EXPECT_LE(paper_layer_power_mw(i), paper_layer_power_mw(1) + 1e-9);
    EXPECT_GE(paper_layer_power_mw(i), paper_layer_power_mw(12) - 1e-9);
  }
}

TEST(PowerModel, CalibrationCoefficientsArePhysical) {
  const PowerModel m = PowerModel::paper_calibrated();
  EXPECT_GT(m.c_idle_mw(), 0.0);
  EXPECT_GT(m.c_dwc_mw(), 0.0);
  EXPECT_GT(m.c_pwc_mw(), 0.0);
  // Per-lane parity anchor: c_dwc / c_pwc == 288 / 512.
  EXPECT_NEAR(m.c_dwc_mw() / m.c_pwc_mw(), 288.0 / 512.0, 1e-9);
  // The idle floor dominates: most of the chip's power is
  // activity-independent (pipeline registers, buffers, clock) - that is
  // why layer 12 still draws 67.7 mW at ~96% input sparsity.
  EXPECT_GT(m.c_idle_mw(), 50.0);
  EXPECT_LT(m.c_idle_mw(), paper_layer_power_mw(12));
}

TEST(PowerModel, ReproducesAnchorLayersExactly) {
  const PowerModel m = PowerModel::paper_calibrated();
  const auto points = paper_calibrated_operating_points();
  // Layer 12 by construction with published zero percentages:
  EXPECT_NEAR(m.power_mw(points[12]), paper_layer_power_mw(12), 1e-6);
  // Layer 1 by the 0.55-activity anchor:
  EXPECT_NEAR(m.power_mw(points[1]), paper_layer_power_mw(1), 1e-6);
}

TEST(PowerModel, ReproducesAllThirteenLayersViaInversion) {
  const PowerModel m = PowerModel::paper_calibrated();
  const auto points = paper_calibrated_operating_points();
  for (int i = 0; i < kPaperLayerCount; ++i) {
    EXPECT_NEAR(m.power_mw(points[static_cast<std::size_t>(i)]),
                paper_layer_power_mw(i), 1e-6)
        << "layer " << i;
  }
}

TEST(PowerModel, InvertedActivitiesArePhysical) {
  const auto points = paper_calibrated_operating_points();
  for (int i = 0; i < kPaperLayerCount; ++i) {
    const auto& p = points[static_cast<std::size_t>(i)];
    EXPECT_GT(p.act_dwc, 0.0) << "layer " << i;
    EXPECT_LT(p.act_dwc, 1.0) << "layer " << i;
    EXPECT_GT(p.act_pwc, 0.0) << "layer " << i;
    EXPECT_LT(p.act_pwc, 1.0) << "layer " << i;
  }
  // Deep layers are sparser than early layers (Fig. 11's rising zero
  // percentage): compare layer 1 vs layer 10.
  EXPECT_GT(points[1].act_pwc, points[10].act_pwc);
}

TEST(PowerModel, EfficiencySeriesMatchesFig12) {
  // efficiency(layer) = ops / (P * t) must reproduce Fig. 12 exactly when
  // evaluated at the calibrated operating points.
  const PowerModel m = PowerModel::paper_calibrated();
  const auto points = paper_calibrated_operating_points();
  const core::TimingModel tm{core::EdeaConfig::paper()};
  const auto specs = nn::mobilenet_dsc_specs();
  for (int i = 0; i < kPaperLayerCount; ++i) {
    const auto& spec = specs[static_cast<std::size_t>(i)];
    const double t_ns = tm.layer_timing(spec).time_ns(1.0);
    const double p_mw = m.power_mw(points[static_cast<std::size_t>(i)]);
    const double eff = PowerModel::efficiency_tops_w(spec.total_ops(), t_ns,
                                                     p_mw);
    EXPECT_NEAR(eff, kPaperEfficiencyTopsW[static_cast<std::size_t>(i)],
                kPaperEfficiencyTopsW[static_cast<std::size_t>(i)] * 0.002)
        << "layer " << i;
  }
}

TEST(PowerModel, PeakEfficiencyIsLayer10At13_43) {
  const PowerModel m = PowerModel::paper_calibrated();
  const auto points = paper_calibrated_operating_points();
  const core::TimingModel tm{core::EdeaConfig::paper()};
  const auto specs = nn::mobilenet_dsc_specs();
  double peak = 0.0;
  int peak_layer = -1;
  for (int i = 0; i < kPaperLayerCount; ++i) {
    const auto& spec = specs[static_cast<std::size_t>(i)];
    const double eff = PowerModel::efficiency_tops_w(
        spec.total_ops(), tm.layer_timing(spec).time_ns(1.0),
        m.power_mw(points[static_cast<std::size_t>(i)]));
    if (eff > peak) {
      peak = eff;
      peak_layer = i;
    }
  }
  EXPECT_EQ(peak_layer, 10);
  EXPECT_NEAR(peak, kPaperPeakEfficiencyTopsW, 0.02);
}

TEST(PowerModel, AverageEfficiencyNearPaper11_13) {
  // Total ops / total energy across all layers. The paper quotes 11.13
  // TOPS/W; the energy-weighted value from its own per-layer series is
  // ~10.9, so accept 3%.
  const PowerModel m = PowerModel::paper_calibrated();
  const auto points = paper_calibrated_operating_points();
  const core::TimingModel tm{core::EdeaConfig::paper()};
  const auto specs = nn::mobilenet_dsc_specs();
  double ops = 0.0, pj = 0.0;
  for (int i = 0; i < kPaperLayerCount; ++i) {
    const auto& spec = specs[static_cast<std::size_t>(i)];
    const double t_ns = tm.layer_timing(spec).time_ns(1.0);
    ops += static_cast<double>(spec.total_ops());
    pj += m.power_mw(points[static_cast<std::size_t>(i)]) * t_ns;
  }
  EXPECT_NEAR(ops / pj, kPaperAvgEfficiencyTopsW,
              kPaperAvgEfficiencyTopsW * 0.03);
}

TEST(PowerModel, PowerRisesWithActivity) {
  const PowerModel m = PowerModel::paper_calibrated();
  OperatingPoint lo{0.03, 0.9, 0.05, 0.05};
  OperatingPoint hi{0.03, 0.9, 0.8, 0.8};
  EXPECT_GT(m.power_mw(hi), m.power_mw(lo));
}

TEST(PowerModel, InvertActivityRoundTrips) {
  const PowerModel m = PowerModel::paper_calibrated();
  const OperatingPoint op{0.05, 0.9, 0.3, 0.3};
  const double p = m.power_mw(op);
  EXPECT_NEAR(m.invert_activity(0.05, 0.9, p), 0.3, 1e-9);
}

TEST(PowerModel, InvertActivityRequiresPositiveDuty) {
  const PowerModel m = PowerModel::paper_calibrated();
  EXPECT_THROW((void)m.invert_activity(0.0, 0.0, 80.0), PreconditionError);
}

TEST(PowerModel, RejectsNegativeCoefficients) {
  EXPECT_THROW(PowerModel(-1.0, 1.0, 1.0), PreconditionError);
}

TEST(PowerModel, EfficiencyHelperUnits) {
  // 1000 ops in 1 ns at 1000 mW = 1000 ops / 1000 pJ = 1 TOPS/W.
  EXPECT_DOUBLE_EQ(PowerModel::efficiency_tops_w(1000, 1.0, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(PowerModel::efficiency_tops_w(100, 0.0, 50.0), 0.0);
}

// -------------------------------------------------------------- area ---

TEST(AreaModel, PaperTotalsAndBreakdown) {
  const AreaModel a = AreaModel::paper();
  EXPECT_NEAR(a.total_mm2(), 0.58, 1e-9);
  // Layout dimensions of Fig. 8 are consistent with the 0.58 mm^2 total.
  EXPECT_NEAR(kPaperDieWidthUm * kPaperDieHeightUm / 1e6, 0.577, 0.001);
  const AreaBreakdown& b = a.breakdown();
  EXPECT_NEAR(b.pwc_engine + b.dwc_engine + b.nonconv + b.buffers +
                  b.control + b.clock,
              1.0, 1e-6);
}

TEST(AreaModel, PwcToDwcAreaRatioNear1_7) {
  // Sec. IV: "The area ratio of PWC to DWC is approximately 1.7X, which
  // closely aligns with the PWC to DWC PE ratio of 1.8X."
  const AreaModel a = AreaModel::paper();
  EXPECT_NEAR(a.pwc_engine_mm2() / a.dwc_engine_mm2(), 1.7, 0.02);
}

TEST(AreaModel, PaperConfigEstimateRecoversPaperArea) {
  const AreaModel a = AreaModel::paper();
  EXPECT_NEAR(a.estimate_mm2(core::EdeaConfig::paper()), 0.58, 1e-6);
}

TEST(AreaModel, ScaledConfigGrows) {
  const AreaModel a = AreaModel::paper();
  core::EdeaConfig big = core::EdeaConfig::paper();
  big.td = 16;
  EXPECT_GT(a.estimate_mm2(big), a.total_mm2());
}

TEST(AreaModel, AreaEfficiencyHelper) {
  EXPECT_NEAR(AreaModel::area_efficiency(973.55, 0.58), 1678.53, 0.05);
  EXPECT_DOUBLE_EQ(AreaModel::area_efficiency(100.0, 0.0), 0.0);
}

TEST(PowerBreakdownData, SumsToOne) {
  const PowerBreakdown p{};
  EXPECT_NEAR(p.pwc_engine + p.dwc_engine + p.nonconv +
                  p.intermediate_buffer + p.weight_buffers + p.clock_tree +
                  p.offline_buffer,
              1.0, 0.001);
}

}  // namespace
}  // namespace edea::model
