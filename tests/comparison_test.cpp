// Tests for technology scaling and the Table III comparison builder.
#include <gtest/gtest.h>

#include "model/comparison.hpp"
#include "model/tech_scaling.hpp"
#include "util/check.hpp"

namespace edea::model {
namespace {

TEST(TechScaling, IdentityAtReferencePoint) {
  EXPECT_DOUBLE_EQ(
      scale_energy_efficiency(10.0, kReference22nm, kReference22nm), 10.0);
  EXPECT_DOUBLE_EQ(scale_area_efficiency(100.0, kReference22nm,
                                         kReference22nm),
                   100.0);
}

TEST(TechScaling, EnergyScalesWithTechAndVoltageSquared) {
  // 65 nm @ 1.08 V -> 22 nm @ 0.8 V: factor (65/22) * (1.08/0.8)^2.
  const TechPoint from{65.0, 1.08};
  const double factor = (65.0 / 22.0) * (1.08 / 0.8) * (1.08 / 0.8);
  EXPECT_NEAR(scale_energy_efficiency(0.92, from, kReference22nm),
              0.92 * factor, 1e-9);
}

TEST(TechScaling, AreaScalesQuadratically) {
  const TechPoint from{44.0, 0.8};
  EXPECT_NEAR(scale_area_efficiency(10.0, from, kReference22nm), 40.0, 1e-9);
}

TEST(TechScaling, PrecisionNormalization) {
  // Table III footnote: 16-bit metrics scale by (16/8)^2 = 4.
  EXPECT_DOUBLE_EQ(normalize_precision(38.8, 16), 155.2);
  EXPECT_DOUBLE_EQ(normalize_precision(51.2, 8), 51.2);
  EXPECT_THROW((void)normalize_precision(1.0, 0), PreconditionError);
}

TEST(TechScaling, RejectsNonPositivePoints) {
  EXPECT_THROW((void)scale_energy_efficiency(1.0, TechPoint{0.0, 1.0},
                                             kReference22nm),
               PreconditionError);
}

// ------------------------------------------------------------ Table III ---

SimulatedThisWork simulated_stub() {
  SimulatedThisWork s;
  s.peak_throughput_gops = 973.55;
  s.peak_energy_eff_tops_w = 13.43;
  s.avg_power_mw = 90.0;
  s.area_mm2 = 0.58;
  s.pe_count = 800;
  return s;
}

TEST(ComparisonTable, HasAllRows) {
  const auto table = build_comparison_table(simulated_stub());
  // 5 competitors + paper EDEA + simulated EDEA.
  ASSERT_EQ(table.size(), 7u);
  EXPECT_EQ(table[5].label, "EDEA (paper)");
  EXPECT_EQ(table[6].label, "This Work (simulated)");
}

TEST(ComparisonTable, PublishedValuesCarriedVerbatim) {
  const auto table = build_comparison_table(simulated_stub());
  EXPECT_EQ(table[0].technology_nm, 65);
  EXPECT_NEAR(table[0].energy_eff_tops_w, 0.92, 1e-9);
  EXPECT_NEAR(table[0].paper_norm_energy_eff, 7.73, 1e-9);
  EXPECT_EQ(table[1].precision_bits, 16);
  EXPECT_NEAR(table[3].area_eff_gops_mm2, 519.2, 1e-9);
  EXPECT_NEAR(table[5].energy_eff_tops_w, 13.43, 1e-9);
  EXPECT_NEAR(table[5].area_eff_gops_mm2, 1678.53, 1e-9);
}

TEST(ComparisonTable, OurNormalizationDirectionallyMatchesPaper) {
  // Our first-order scaling and the paper's [19] methodology must agree
  // within ~2.2x for every row (they differ in per-node empirical factors).
  const auto table = build_comparison_table(simulated_stub());
  for (std::size_t i = 0; i < 5; ++i) {
    const double ratio = table[i].norm_energy_eff /
                         table[i].paper_norm_energy_eff;
    EXPECT_GT(ratio, 0.45) << table[i].label;
    EXPECT_LT(ratio, 2.2) << table[i].label;
  }
}

TEST(ComparisonTable, ThisWorkLeadsNormalizedEfficiency) {
  // The paper's claim: EDEA outperforms every competitor after
  // normalization, in both energy and area efficiency.
  const auto table = build_comparison_table(simulated_stub());
  const auto& self = table[5];
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GT(self.energy_eff_tops_w, table[i].paper_norm_energy_eff)
        << table[i].label;
    EXPECT_GT(self.energy_eff_tops_w, table[i].norm_energy_eff)
        << table[i].label;
    EXPECT_GT(self.area_eff_gops_mm2, table[i].paper_norm_area_eff)
        << table[i].label;
  }
}

TEST(AdvantageFactors, ReproducesPaperMultipliers) {
  // "surpasses [16], [17], [18], [4] by 14.6X, 9.87X, 2.72X, 2.65X in
  // energy efficiency" (raw) and "1.74X, 3.11X, 1.37X, 2.65X" normalized.
  const auto table = build_comparison_table(simulated_stub());
  const auto factors = advantage_factors(table, 5);
  ASSERT_GE(factors.size(), 5u);
  EXPECT_NEAR(factors[0].raw_energy, 14.6, 0.05);       // vs ISVLSI'19
  EXPECT_NEAR(factors[1].raw_energy, 9.87, 0.05);       // vs TCCE-TW'21
  EXPECT_NEAR(factors[2].raw_energy, 2.72, 0.01);       // vs TCASI'24
  EXPECT_NEAR(factors[0].normalized_energy, 1.74, 0.01);
  EXPECT_NEAR(factors[1].normalized_energy, 3.11, 0.01);
  EXPECT_NEAR(factors[2].normalized_energy, 1.36, 0.02);  // paper: 1.37
  // Area-efficiency advantages: 6.29X, 5.79X (vs normalized 290.12),
  // 6.58X, 3.23X.
  EXPECT_NEAR(factors[0].normalized_area, 6.29, 0.01);
  EXPECT_NEAR(factors[2].normalized_area, 6.58, 0.01);
  EXPECT_NEAR(factors[3].normalized_area, 3.23, 0.01);
}

TEST(AdvantageFactors, IndexValidation) {
  const auto table = build_comparison_table(simulated_stub());
  EXPECT_THROW((void)advantage_factors(table, 99), PreconditionError);
}

TEST(PaperData, EfficiencySeriesConsistentWithHeadlines) {
  // Peak of Fig. 12 == abstract's 13.43 TOPS/W; Fig. 13 peak == 1024 GOPS.
  double peak_eff = 0.0, peak_tp = 0.0;
  for (int i = 0; i < kPaperLayerCount; ++i) {
    peak_eff = std::max(peak_eff,
                        kPaperEfficiencyTopsW[static_cast<std::size_t>(i)]);
    peak_tp = std::max(peak_tp,
                       kPaperThroughputGops[static_cast<std::size_t>(i)]);
  }
  EXPECT_DOUBLE_EQ(peak_eff, kPaperPeakEfficiencyTopsW);
  EXPECT_DOUBLE_EQ(peak_tp, kPaperPeakThroughputGops);
}

}  // namespace
}  // namespace edea::model
