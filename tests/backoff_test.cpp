// backoff_test - the shared jittered exponential backoff schedule
// (util/backoff.hpp). Every retry loop in the tree (pipelined-client busy
// retries, connect_socket, cluster-router failover) delegates here, so the
// properties pinned below - exponential growth to a cap, jitter bounds, and
// seed determinism - are the retry behavior of the whole service tier.
#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"

namespace edea {
namespace {

TEST(BackoffTest, NominalDelayDoublesPerAttemptUpToTheShiftCap) {
  // Pin the exponential shape with jitter disabled (min == max == 1).
  BackoffOptions options;
  options.jitter_min = 1.0;
  options.jitter_max = 1.0;
  Rng rng(1);
  std::vector<std::int64_t> delays;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    delays.push_back(jittered_backoff_ms(attempt, 100, rng, options));
  }
  EXPECT_EQ(delays, (std::vector<std::int64_t>{100, 200, 400, 800, 1600,
                                               3200, 3200, 3200}))
      << "delays double per attempt, then hold at base * 2^max_shift";
}

TEST(BackoffTest, JitterStaysInsideTheConfiguredRange) {
  // Default policy: uniform [0.5, 1.5) around the nominal delay. 1000
  // draws per attempt level must all stay inside the closed-open bound.
  Rng rng(42);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const std::int64_t nominal = std::int64_t{100} << (attempt - 1);
    for (int draw = 0; draw < 1000; ++draw) {
      const std::int64_t delay = jittered_backoff_ms(attempt, 100, rng);
      EXPECT_GE(delay, nominal / 2) << "attempt " << attempt;
      EXPECT_LT(delay, nominal + nominal / 2) << "attempt " << attempt;
    }
  }
}

TEST(BackoffTest, DelayIsAtLeastOneMillisecondEvenForZeroBase) {
  // A zero base (a worker's busy line may suggest retry_ms=0) must not
  // produce a zero-delay spin loop.
  Rng rng(7);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_GE(jittered_backoff_ms(attempt, 0, rng), 1);
  }
}

TEST(BackoffTest, SameSeedReplaysTheSameSchedule) {
  // Determinism is what makes router failover tests reproducible: the
  // whole delay sequence is a pure function of the seed.
  Rng rng_a(0xfeedull), rng_b(0xfeedull), rng_c(0xbeefull);
  bool any_difference = false;
  for (int attempt = 1; attempt <= 32; ++attempt) {
    const std::int64_t a = jittered_backoff_ms(attempt, 25, rng_a);
    const std::int64_t b = jittered_backoff_ms(attempt, 25, rng_b);
    const std::int64_t c = jittered_backoff_ms(attempt, 25, rng_c);
    EXPECT_EQ(a, b) << "attempt " << attempt;
    any_difference = any_difference || (a != c);
  }
  EXPECT_TRUE(any_difference)
      << "a different seed must yield a different jitter schedule";
}

TEST(BackoffTest, EqualJitterBoundsStillAdvanceTheRng) {
  // Disabling jitter must not desynchronize a shared Rng: both schedules
  // consume exactly one variate per call, so a consumer that toggles
  // jitter keeps every other draw aligned.
  BackoffOptions fixed;
  fixed.jitter_min = 1.0;
  fixed.jitter_max = 1.0;
  Rng rng_fixed(3), rng_default(3);
  (void)jittered_backoff_ms(1, 100, rng_fixed, fixed);
  (void)jittered_backoff_ms(1, 100, rng_default);
  EXPECT_EQ(rng_fixed(), rng_default())
      << "both variants must draw exactly one jitter variate";
}

TEST(BackoffTest, RejectsMalformedPolicies) {
  Rng rng(1);
  EXPECT_THROW((void)jittered_backoff_ms(0, 100, rng), PreconditionError);
  EXPECT_THROW((void)jittered_backoff_ms(1, -1, rng), PreconditionError);
  BackoffOptions inverted;
  inverted.jitter_min = 2.0;
  inverted.jitter_max = 1.0;
  EXPECT_THROW((void)jittered_backoff_ms(1, 100, rng, inverted),
               PreconditionError);
  BackoffOptions shift;
  shift.max_shift = 63;
  EXPECT_THROW((void)jittered_backoff_ms(1, 100, rng, shift),
               PreconditionError);
}

}  // namespace
}  // namespace edea
