// Tests for the MobileNetV1-CIFAR10 builder (src/nn/mobilenet.*): the layer
// table the whole paper evaluation rests on, calibration, and quantized
// end-to-end inference fidelity.
#include <gtest/gtest.h>

#include "nn/dataset.hpp"
#include "nn/metrics.hpp"
#include "nn/mobilenet.hpp"
#include "util/check.hpp"

namespace edea::nn {
namespace {

TEST(MobileNetSpecs, ThirteenLayers) {
  const auto specs = mobilenet_dsc_specs();
  EXPECT_EQ(specs.size(), 13u);
  for (int i = 0; i < kDscLayerCount; ++i) {
    EXPECT_EQ(specs[static_cast<std::size_t>(i)].index, i);
  }
}

TEST(MobileNetSpecs, StrideTwoAtLayers1_3_5_11) {
  // Sec. IV-A: "layers 1, 3, 5 and 11 exhibit a reduced number of MAC
  // operations due to the stride of 2".
  const auto specs = mobilenet_dsc_specs();
  for (int i = 0; i < kDscLayerCount; ++i) {
    const bool expect_stride2 = (i == 1 || i == 3 || i == 5 || i == 11);
    EXPECT_EQ(specs[static_cast<std::size_t>(i)].stride,
              expect_stride2 ? 2 : 1)
        << "layer " << i;
  }
}

TEST(MobileNetSpecs, ChannelProgression) {
  const auto specs = mobilenet_dsc_specs();
  EXPECT_EQ(specs[0].in_channels, 32);
  EXPECT_EQ(specs[0].out_channels, 64);
  EXPECT_EQ(specs[6].in_channels, 512);
  EXPECT_EQ(specs[12].in_channels, 1024);
  EXPECT_EQ(specs[12].out_channels, 1024);
}

TEST(MobileNetSpecs, LayersChainGeometrically) {
  // Each layer's output must equal the next layer's input.
  const auto specs = mobilenet_dsc_specs();
  for (std::size_t i = 0; i + 1 < specs.size(); ++i) {
    EXPECT_EQ(specs[i].out_rows(), specs[i + 1].in_rows) << "layer " << i;
    EXPECT_EQ(specs[i].out_cols(), specs[i + 1].in_cols) << "layer " << i;
    EXPECT_EQ(specs[i].out_channels, specs[i + 1].in_channels)
        << "layer " << i;
  }
}

TEST(MobileNetSpecs, LatersLayersHaveIfmapSizeTwo) {
  // Sec. II: "later layers such as layers 11 and 12 with an ifmap size
  // of 2" - layer 12's input and layer 11's output are 2x2.
  const auto specs = mobilenet_dsc_specs();
  EXPECT_EQ(specs[11].out_rows(), 2);
  EXPECT_EQ(specs[12].in_rows, 2);
}

TEST(MobileNetSpecs, ChannelsAreMultiplesOfTilingSizes) {
  // The 100% utilization claim requires D % 8 == 0 and K % 16 == 0.
  for (const auto& s : mobilenet_dsc_specs()) {
    EXPECT_EQ(s.in_channels % 8, 0) << s.to_string();
    EXPECT_EQ(s.out_channels % 16, 0) << s.to_string();
  }
}

TEST(FloatMobileNet, ForwardShapes) {
  const FloatMobileNet net(1234);
  SyntheticCifar data(1);
  const LabeledImage img = data.sample(0);
  const FloatTensor stem = net.forward_stem(img.image);
  EXPECT_EQ(stem.shape(), (Shape{32, 32, 32}));
  const FloatTensor features = net.forward_dsc(stem);
  EXPECT_EQ(features.shape(), (Shape{2, 2, 1024}));
  const FloatTensor logits = net.forward_head(features);
  EXPECT_EQ(logits.shape(), (Shape{10}));
}

TEST(FloatMobileNet, DeterministicInSeed) {
  const FloatMobileNet a(77), b(77);
  SyntheticCifar data(2);
  const LabeledImage img = data.sample(3);
  const FloatTensor la = a.forward(img.image);
  const FloatTensor lb = b.forward(img.image);
  EXPECT_EQ(la, lb);
}

TEST(FloatMobileNet, ParameterCountMatchesArchitecture) {
  // Hand-computed for the CIFAR10 variant:
  // stem: 32*3*3*3 + 4*32 = 992
  // DSC blocks: sum(9*D + D*K + 4*(D+K))
  // head: 10*1024 + 10 = 10250
  const FloatMobileNet net(5);
  std::int64_t expected = 32 * 3 * 3 * 3 + 4 * 32;
  for (const auto& s : mobilenet_dsc_specs()) {
    expected += 9LL * s.in_channels +
                std::int64_t{s.in_channels} * s.out_channels +
                4LL * (s.in_channels + s.out_channels);
  }
  expected += 10 * 1024 + 10;
  EXPECT_EQ(net.parameter_count(), expected);
  // Ballpark: MobileNetV1 at width 1.0 has ~3.2M conv parameters.
  EXPECT_GT(net.parameter_count(), 3000000);
  EXPECT_LT(net.parameter_count(), 3500000);
}

TEST(Calibrate, ProducesPositiveScales) {
  const FloatMobileNet net(42);
  SyntheticCifar data(3);
  std::vector<FloatTensor> images;
  for (int i = 0; i < 3; ++i) images.push_back(data.sample(i).image);
  const CalibrationResult cal = calibrate(net, images);
  ASSERT_EQ(cal.block_input_scales.size(), 14u);
  ASSERT_EQ(cal.intermediate_scales.size(), 13u);
  for (const auto& s : cal.block_input_scales) EXPECT_GT(s.scale, 0.0f);
  for (const auto& s : cal.intermediate_scales) EXPECT_GT(s.scale, 0.0f);
}

TEST(Calibrate, EmptyBatchThrows) {
  const FloatMobileNet net(42);
  EXPECT_THROW((void)calibrate(net, {}), PreconditionError);
}

class QuantMobileNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<FloatMobileNet>(2025);
    SyntheticCifar data(4);
    for (int i = 0; i < 4; ++i) {
      images_.push_back(data.sample(i % 10).image);
    }
    cal_ = calibrate(*net_, images_);
    qnet_ = std::make_unique<QuantMobileNet>(*net_, cal_);
  }

  std::unique_ptr<FloatMobileNet> net_;
  std::vector<FloatTensor> images_;
  CalibrationResult cal_;
  std::unique_ptr<QuantMobileNet> qnet_;
};

TEST_F(QuantMobileNetTest, ThirteenQuantizedBlocks) {
  EXPECT_EQ(qnet_->blocks().size(), 13u);
}

TEST_F(QuantMobileNetTest, EndToEndShapes) {
  const FloatTensor stem = net_->forward_stem(images_[0]);
  const Int8Tensor q_in = qnet_->quantize_input(stem);
  EXPECT_EQ(q_in.shape(), (Shape{32, 32, 32}));
  const Int8Tensor q_out = qnet_->forward_dsc(q_in);
  EXPECT_EQ(q_out.shape(), (Shape{2, 2, 1024}));
}

TEST_F(QuantMobileNetTest, QuantizedFeaturesTrackFloat) {
  const FloatTensor stem = net_->forward_stem(images_[0]);
  const FloatTensor float_features = net_->forward_dsc(stem);
  const Int8Tensor q_out = qnet_->forward_dsc(qnet_->quantize_input(stem));
  const FloatTensor deq = qnet_->dequantize_output(q_out);
  // 13 layers of int8 accumulate error, but direction must survive.
  EXPECT_GT(cosine_similarity(deq, float_features), 0.85);
}

TEST_F(QuantMobileNetTest, Int8StemShapesAndRange) {
  const Int8Tensor img_q = qnet_->quantize_image(images_[0]);
  EXPECT_EQ(img_q.shape(), (Shape{32, 32, 3}));
  const Int8Tensor stem_q = qnet_->forward_stem_q(img_q);
  EXPECT_EQ(stem_q.shape(), (Shape{32, 32, 32}));
  for (const auto v : stem_q.storage()) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 127);
  }
}

TEST_F(QuantMobileNetTest, Int8StemTracksFloatStem) {
  // The int8 stem (conv2d_q + folded Non-Conv) must land close to the
  // float stem quantized into the same domain: at most 1 LSB elementwise
  // beyond quantization noise, >90% exact.
  const Int8Tensor img_q = qnet_->quantize_image(images_[1]);
  const Int8Tensor stem_q = qnet_->forward_stem_q(img_q);
  const Int8Tensor stem_ref =
      qnet_->quantize_input(net_->forward_stem(images_[1]));
  EXPECT_LE(max_abs_diff(stem_q, stem_ref), 2);
  EXPECT_GT(exact_match_fraction(stem_q, stem_ref), 0.9);
}

TEST_F(QuantMobileNetTest, FullyIntegerInferencePath) {
  // image -> int8 stem -> int8 DSC stack: features must still track the
  // float network's direction.
  const Int8Tensor img_q = qnet_->quantize_image(images_[2]);
  const Int8Tensor features_q =
      qnet_->forward_dsc(qnet_->forward_stem_q(img_q));
  const FloatTensor features_f =
      net_->forward_dsc(net_->forward_stem(images_[2]));
  const FloatTensor deq = qnet_->dequantize_output(features_q);
  EXPECT_GT(cosine_similarity(deq, features_f), 0.8);
}

TEST_F(QuantMobileNetTest, ActivationStatsCollected) {
  const FloatTensor stem = net_->forward_stem(images_[0]);
  std::vector<LayerActivationStats> stats;
  (void)qnet_->forward_dsc(qnet_->quantize_input(stem), &stats);
  ASSERT_EQ(stats.size(), 13u);
  for (const auto& s : stats) {
    EXPECT_GE(s.dwc_input_zero_fraction, 0.0);
    EXPECT_LE(s.dwc_input_zero_fraction, 1.0);
    EXPECT_GE(s.pwc_input_zero_fraction, 0.0);
    EXPECT_LE(s.pwc_input_zero_fraction, 1.0);
  }
  // ReLU networks are sparse: the deep layers must show substantial zeros.
  EXPECT_GT(stats[12].dwc_input_zero_fraction, 0.2);
}

}  // namespace
}  // namespace edea::nn
