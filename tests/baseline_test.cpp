// Tests for the serialized baseline accelerator: identical arithmetic to
// EDEA, but with the external intermediate round-trip and without engine
// parallelism - the two properties the paper's design removes.
#include <gtest/gtest.h>

#include "baseline/serialized_accelerator.hpp"
#include "core/accelerator.hpp"
#include "nn/layers.hpp"
#include "util/random.hpp"

namespace edea::baseline {
namespace {

nn::DscLayerSpec spec_of(int rows, int ch, int stride, int out_ch) {
  nn::DscLayerSpec s;
  s.in_rows = rows;
  s.in_cols = rows;
  s.in_channels = ch;
  s.stride = stride;
  s.out_channels = out_ch;
  return s;
}

struct Fixture {
  nn::QuantDscLayer layer;
  nn::Int8Tensor input;
};

Fixture make_fixture(const nn::DscLayerSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  Fixture fx;
  fx.layer = nn::quantize_layer(fl, nn::QuantScale{0.02f},
                                nn::QuantScale{0.03f}, nn::QuantScale{0.03f});
  fx.input = nn::Int8Tensor(
      nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : fx.input.storage()) {
    v = rng.bernoulli(0.4)
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return fx;
}

TEST(SerializedBaseline, BitExactAgainstReferenceAndEdea) {
  const Fixture fx = make_fixture(spec_of(16, 16, 1, 32), 1);
  SerializedDscAccelerator baseline;
  core::EdeaAccelerator edea;
  const auto base = baseline.run_layer(fx.layer, fx.input);
  const auto fast = edea.run_layer(fx.layer, fx.input);
  const nn::Int8Tensor golden = fx.layer.forward(fx.input);
  EXPECT_EQ(base.common.output, golden);
  EXPECT_EQ(fast.output, golden);
}

TEST(SerializedBaseline, BitExactWithStride2AndRaggedShapes) {
  for (const auto& spec :
       {spec_of(16, 24, 2, 48), spec_of(7, 5, 1, 9), spec_of(9, 12, 2, 20)}) {
    const Fixture fx = make_fixture(spec, 2);
    SerializedDscAccelerator baseline;
    EXPECT_EQ(baseline.run_layer(fx.layer, fx.input).common.output,
              fx.layer.forward(fx.input));
  }
}

TEST(SerializedBaseline, IntermediateRoundTripsThroughExternalMemory) {
  // The Fig. 3 baseline: N*M*D written out and N*M*D read back.
  const auto spec = spec_of(16, 16, 1, 32);
  const Fixture fx = make_fixture(spec, 3);
  SerializedDscAccelerator baseline;
  const auto r = baseline.run_layer(fx.layer, fx.input);
  const std::int64_t nmd = 16LL * 16 * 16;
  EXPECT_EQ(r.intermediate_external_writes, nmd);
  EXPECT_EQ(r.intermediate_external_reads, nmd);
}

TEST(SerializedBaseline, EdeaEliminatesExactlyTheIntermediateTraffic) {
  const auto spec = spec_of(16, 16, 1, 32);
  const Fixture fx = make_fixture(spec, 4);
  SerializedDscAccelerator baseline;
  core::EdeaAccelerator edea;
  const auto base = baseline.run_layer(fx.layer, fx.input);
  const auto fast = edea.run_layer(fx.layer, fx.input);
  const auto base_act =
      base.common.external.accesses(arch::TrafficClass::kActivation);
  const auto fast_act =
      fast.external.accesses(arch::TrafficClass::kActivation);
  EXPECT_EQ(base_act - fast_act, base.intermediate_external_writes +
                                     base.intermediate_external_reads);
}

TEST(SerializedBaseline, SlowerThanEdeaByTheDwcPhase) {
  // EDEA overlaps DWC with PWC; the serialized design pays the DWC phase
  // on top. Its PWC phase alone equals EDEA's total (same Eq. 1/2 loop).
  const auto spec = spec_of(16, 32, 1, 64);
  const Fixture fx = make_fixture(spec, 5);
  SerializedDscAccelerator baseline;
  core::EdeaAccelerator edea;
  const auto base = baseline.run_layer(fx.layer, fx.input);
  const auto fast = edea.run_layer(fx.layer, fx.input);
  EXPECT_EQ(base.pwc_phase_cycles, fast.timing.total_cycles);
  EXPECT_EQ(base.common.timing.total_cycles,
            fast.timing.total_cycles + base.dwc_phase_cycles);
  EXPECT_GT(base.common.timing.total_cycles, fast.timing.total_cycles);
}

TEST(SerializedBaseline, SpeedupIsLargestForDwcHeavyLayers) {
  // Small K: DWC work is a large share, so serialization hurts more.
  SerializedDscAccelerator baseline;
  core::EdeaAccelerator edea;
  auto speedup = [&](const nn::DscLayerSpec& spec, std::uint64_t seed) {
    const Fixture fx = make_fixture(spec, seed);
    const auto base = baseline.run_layer(fx.layer, fx.input);
    const auto fast = edea.run_layer(fx.layer, fx.input);
    return static_cast<double>(base.common.timing.total_cycles) /
           static_cast<double>(fast.timing.total_cycles);
  };
  const double dwc_heavy = speedup(spec_of(16, 32, 1, 16), 6);
  const double pwc_heavy = speedup(spec_of(8, 32, 1, 256), 7);
  EXPECT_GT(dwc_heavy, pwc_heavy);
  EXPECT_GT(dwc_heavy, 1.0);
  EXPECT_GT(pwc_heavy, 1.0);
}

// ------------------------------------------------- unified-engine model ---

TEST(UnifiedEngineModel, UtilizationBelowOneForDscLayers) {
  // A unified engine ([2]-[4]) cannot keep all lanes busy during DWC:
  // EDEA's dual engines exist to fix exactly this.
  const UnifiedEngineModel unified{};
  const auto spec = spec_of(16, 128, 1, 128);
  const double util = unified.layer_utilization(spec);
  EXPECT_LT(util, 1.0);
  EXPECT_GT(util, 0.5);
}

TEST(UnifiedEngineModel, UtilizationDropsWithDwcShare) {
  const UnifiedEngineModel unified{};
  // Small K -> DWC share larger -> utilization lower.
  EXPECT_LT(unified.layer_utilization(spec_of(16, 128, 1, 16)),
            unified.layer_utilization(spec_of(16, 128, 1, 512)));
}

TEST(UnifiedEngineModel, PerfectArrayWouldReachOne) {
  UnifiedEngineModel ideal;
  ideal.array_macs = 288;
  ideal.dwc_usable_macs = 288;
  // When DWC can use the whole array, only the PWC phase is at full
  // utilization too - the model degenerates to 1.
  const auto spec = spec_of(8, 64, 1, 64);
  EXPECT_DOUBLE_EQ(ideal.layer_utilization(spec), 1.0);
}

}  // namespace
}  // namespace edea::baseline
