// sweep_runner_test - determinism and robustness of the parallel sweep
// runtime: parallel execution must be bit-identical to the serial
// reference, infeasible configurations must surface as per-job errors, and
// the Sec. II explorer must produce byte-identical results on every
// execution strategy.
#include "core/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dse/explorer.hpp"
#include "nn/mobilenet.hpp"
#include "nn/model_zoo.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::core {
namespace {

/// A small two-layer DSC network (fast enough to simulate many times).
std::vector<nn::DscLayerSpec> tiny_specs() {
  nn::DscLayerSpec a;
  a.index = 0;
  a.in_rows = 8;
  a.in_cols = 8;
  a.in_channels = 16;
  a.out_channels = 32;
  nn::DscLayerSpec b;
  b.index = 1;
  b.in_rows = 8;
  b.in_cols = 8;
  b.in_channels = 32;
  b.stride = 2;
  b.out_channels = 32;
  return {a, b};
}

nn::Int8Tensor tiny_input(std::uint64_t seed) {
  Rng rng(seed);
  nn::Int8Tensor input(nn::Shape{8, 8, 16});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-64, 64));
  }
  return input;
}

std::vector<SweepJob> make_jobs(const std::vector<nn::QuantDscLayer>& layers,
                                const nn::Int8Tensor& input) {
  const int tds[] = {8, 8, 16};
  const int tks[] = {16, 32, 16};
  std::vector<SweepJob> jobs;
  for (int i = 0; i < 3; ++i) {
    SweepJob job;
    job.name = "job" + std::to_string(i);
    job.config.td = tds[i];
    job.config.tk = tks[i];
    job.layers = &layers;
    job.input = &input;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void expect_identical(const std::vector<SweepOutcome>& a,
                      const std::vector<SweepOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("outcome " + std::to_string(i));
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].error, b[i].error);
    if (!a[i].ok) continue;
    ASSERT_EQ(a[i].result.layers.size(), b[i].result.layers.size());
    EXPECT_EQ(a[i].result.total_cycles(), b[i].result.total_cycles());
    // Byte-identical outputs, not just matching statistics.
    EXPECT_EQ(a[i].result.output.storage(), b[i].result.output.storage());
    for (std::size_t l = 0; l < a[i].result.layers.size(); ++l) {
      const LayerRunResult& la = a[i].result.layers[l];
      const LayerRunResult& lb = b[i].result.layers[l];
      EXPECT_EQ(la.output.storage(), lb.output.storage());
      EXPECT_EQ(la.timing.total_cycles, lb.timing.total_cycles);
      EXPECT_EQ(la.max_abs_psum, lb.max_abs_psum);
      EXPECT_EQ(la.dataflow.dwc_window_elements,
                lb.dataflow.dwc_window_elements);
      EXPECT_EQ(la.dataflow.pwc_activation_elements,
                lb.dataflow.pwc_activation_elements);
    }
  }
}

TEST(SweepRunnerTest, ParallelMatchesSerialBitExactly) {
  const auto layers = nn::make_random_quant_network(tiny_specs(), 77);
  const nn::Int8Tensor input = tiny_input(78);
  const auto jobs = make_jobs(layers, input);

  const auto serial = SweepRunner(SweepRunner::Options{1}).run(jobs);
  ASSERT_EQ(serial.size(), jobs.size());
  for (const SweepOutcome& o : serial) {
    EXPECT_TRUE(o.ok) << o.name << ": " << o.error;
  }

  // Shared pool and a dedicated 3-thread pool must both reproduce it.
  expect_identical(serial, SweepRunner().run(jobs));
  expect_identical(serial, SweepRunner(SweepRunner::Options{3}).run(jobs));
}

TEST(SweepRunnerTest, RepeatedParallelRunsAreStable) {
  const auto layers = nn::make_random_quant_network(tiny_specs(), 5);
  const nn::Int8Tensor input = tiny_input(6);
  const auto jobs = make_jobs(layers, input);

  const auto first = SweepRunner().run(jobs);
  for (int repeat = 0; repeat < 3; ++repeat) {
    expect_identical(first, SweepRunner().run(jobs));
  }
}

TEST(SweepRunnerTest, InfeasibleJobReportsErrorWithoutAbortingSweep) {
  const auto layers = nn::make_random_quant_network(tiny_specs(), 9);
  const nn::Int8Tensor input = tiny_input(10);

  auto jobs = make_jobs(layers, input);
  // 5x5 engines cannot map 3x3 layers: run_layer rejects the job.
  jobs[1].config.kernel = 5;

  const auto outcomes = SweepRunner().run(jobs);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("kernel"), std::string::npos);
  EXPECT_TRUE(outcomes[2].ok);
}

TEST(SweepRunnerTest, NegativeParallelismIsAPreconditionError) {
  // A negative thread count is caller arithmetic gone wrong; it must fail
  // loudly at construction, not be silently coerced into a policy.
  for (const int bad : {-1, -7, -1000000}) {
    SCOPED_TRACE("parallelism=" + std::to_string(bad));
    EXPECT_THROW(SweepRunner(SweepRunner::Options{bad}), PreconditionError);
    SweepOptions options;
    options.parallelism = bad;
    EXPECT_THROW(options.validate(), PreconditionError);
  }
  EXPECT_NO_THROW(SweepOptions{0}.validate());
  EXPECT_NO_THROW(SweepOptions{1}.validate());
  EXPECT_NO_THROW(SweepOptions{8}.validate());
}

TEST(ExplorerParallelTest, NegativeParallelismIsAPreconditionError) {
  const auto specs = nn::mobilenet_dsc_specs();
  const dse::Explorer explorer(
      std::vector<nn::DscLayerSpec>(specs.begin(), specs.end()));
  EXPECT_THROW((void)explorer.explore(-1), PreconditionError);
  EXPECT_THROW((void)explorer.explore(-64), PreconditionError);
}

TEST(SweepRunnerTest, NullNetworkIsAPreconditionError) {
  SweepJob job;
  job.name = "dangling";
  EXPECT_THROW(SweepRunner().run({job}), PreconditionError);
}

TEST(SweepRunnerTest, EmptyJobListYieldsEmptyOutcomes) {
  EXPECT_TRUE(SweepRunner().run({}).empty());
}

// --- Explorer determinism across execution strategies ----------------------

TEST(ExplorerParallelTest, ParallelExploreIsByteIdenticalToSerial) {
  const auto specs = nn::mobilenet_dsc_specs();
  const dse::Explorer explorer(
      std::vector<nn::DscLayerSpec>(specs.begin(), specs.end()));

  const dse::ExplorationResult serial = explorer.explore(/*parallelism=*/1);
  ASSERT_EQ(serial.points.size(), 24u);

  for (const int parallelism : {0, 2, 4}) {
    SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
    const dse::ExplorationResult parallel = explorer.explore(parallelism);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    EXPECT_EQ(parallel.best_index, serial.best_index);
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      const dse::DesignPoint& s = serial.points[i];
      const dse::DesignPoint& p = parallel.points[i];
      // Byte-level comparison of the POD payload: scheduling must not be
      // able to perturb even padding-adjacent state.
      EXPECT_EQ(std::memcmp(&s.pe, &p.pe, sizeof(s.pe)), 0);
      EXPECT_EQ(std::memcmp(&s.access, &p.access, sizeof(s.access)), 0);
      EXPECT_EQ(s.group.tn, p.group.tn);
      EXPECT_EQ(s.group.order, p.group.order);
      EXPECT_EQ(s.tcase.id, p.tcase.id);
      EXPECT_EQ(s.label(), p.label());
    }
  }
}

TEST(ExplorerParallelTest, SelectsThePaperDesignPointInParallel) {
  const auto specs = nn::mobilenet_dsc_specs();
  const dse::Explorer explorer(
      std::vector<nn::DscLayerSpec>(specs.begin(), specs.end()));
  const dse::ExplorationResult result = explorer.explore();
  const dse::DesignPoint& best = result.best();
  EXPECT_EQ(best.group.order, dse::LoopOrder::kLa);
  EXPECT_EQ(best.group.tn, 2);
  EXPECT_EQ(best.tcase.id, 6);
}

}  // namespace
}  // namespace edea::core
