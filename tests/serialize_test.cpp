// Tests for quantized-network serialization (src/nn/serialize.*):
// round-trip fidelity, format validation, corruption handling.
#include <gtest/gtest.h>

#include <sstream>

#include "nn/mobilenet.hpp"
#include "nn/model_zoo.hpp"
#include "nn/serialize.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::nn {
namespace {

std::vector<QuantDscLayer> small_network(std::uint64_t seed) {
  std::vector<DscLayerSpec> specs;
  DscLayerSpec a;
  a.index = 0;
  a.in_rows = a.in_cols = 8;
  a.in_channels = 16;
  a.out_channels = 32;
  specs.push_back(a);
  DscLayerSpec b;
  b.index = 1;
  b.in_rows = b.in_cols = 8;
  b.in_channels = 32;
  b.stride = 2;
  b.out_channels = 48;
  specs.push_back(b);
  return make_random_quant_network(specs, seed);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const auto original = small_network(1);
  std::stringstream ss;
  save_network(ss, original);
  const auto loaded = load_network(ss);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original[i];
    const auto& b = loaded[i];
    EXPECT_EQ(a.spec.index, b.spec.index);
    EXPECT_EQ(a.spec.in_rows, b.spec.in_rows);
    EXPECT_EQ(a.spec.in_channels, b.spec.in_channels);
    EXPECT_EQ(a.spec.stride, b.spec.stride);
    EXPECT_EQ(a.spec.out_channels, b.spec.out_channels);
    EXPECT_EQ(a.dwc_weights, b.dwc_weights);
    EXPECT_EQ(a.pwc_weights, b.pwc_weights);
    EXPECT_FLOAT_EQ(a.input_scale.scale, b.input_scale.scale);
    EXPECT_FLOAT_EQ(a.intermediate_scale.scale, b.intermediate_scale.scale);
    EXPECT_FLOAT_EQ(a.output_scale.scale, b.output_scale.scale);
    ASSERT_EQ(a.nonconv1.channel_count(), b.nonconv1.channel_count());
    for (std::size_t c = 0; c < a.nonconv1.channel_count(); ++c) {
      EXPECT_EQ(a.nonconv1.channels[c].k.raw(),
                b.nonconv1.channels[c].k.raw());
      EXPECT_EQ(a.nonconv1.channels[c].b.raw(),
                b.nonconv1.channels[c].b.raw());
      EXPECT_FLOAT_EQ(a.nonconv1.k_float[c], b.nonconv1.k_float[c]);
    }
  }
}

TEST(Serialize, RoundTripPreservesForwardBehaviour) {
  // The loaded network must compute bit-identical outputs - the property
  // that actually matters for deployment.
  const auto original = small_network(2);
  std::stringstream ss;
  save_network(ss, original);
  const auto loaded = load_network(ss);

  Rng rng(3);
  Int8Tensor input(Shape{8, 8, 16});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  const Int8Tensor ref = original[1].forward(original[0].forward(input));
  const Int8Tensor got = loaded[1].forward(loaded[0].forward(input));
  EXPECT_EQ(ref, got);
}

TEST(Serialize, SerializedSizeMatchesStream) {
  const auto net = small_network(4);
  std::stringstream ss;
  save_network(ss, net);
  EXPECT_EQ(static_cast<std::int64_t>(ss.str().size()),
            serialized_size(net));
}

TEST(Serialize, RejectsEmptyNetwork) {
  std::stringstream ss;
  EXPECT_THROW(save_network(ss, {}), PreconditionError);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss;
  ss.write("NOPE", 4);
  ss.write("\0\0\0\0\0\0\0\0", 8);
  EXPECT_THROW((void)load_network(ss), PreconditionError);
}

TEST(Serialize, RejectsTruncatedStream) {
  const auto net = small_network(5);
  std::stringstream ss;
  save_network(ss, net);
  const std::string full = ss.str();
  for (const std::size_t cut :
       {std::size_t{3}, std::size_t{11}, full.size() / 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW((void)load_network(truncated), PreconditionError)
        << "cut at " << cut;
  }
}

TEST(Serialize, RejectsCorruptedNonConvRaw) {
  // Flip a Non-Conv raw value past the 24-bit envelope: Q8_16::from_raw
  // must reject the stream.
  const auto net = small_network(6);
  std::stringstream ss;
  save_network(ss, net);
  std::string bytes = ss.str();
  // The first Non-Conv record sits after header + spec + scales + weights.
  const std::size_t nonconv_offset = 12 + 8 * 4 + 3 * 4 + 4 +
                                     net[0].dwc_weights.size() + 4 +
                                     net[0].pwc_weights.size() + 4;
  // Break the sign-extension byte of k's stored int32: any value there
  // other than 0x00/0xFF puts the raw pattern outside signed 24 bits.
  bytes[nonconv_offset + 3] = '\x01';
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)load_network(corrupted), PreconditionError);
}

TEST(Serialize, FileRoundTrip) {
  const auto net = small_network(7);
  const std::string path = "/tmp/edea_serialize_test.bin";
  save_network_file(path, net);
  const auto loaded = load_network_file(path);
  ASSERT_EQ(loaded.size(), net.size());
  EXPECT_EQ(loaded[0].dwc_weights, net[0].dwc_weights);
  EXPECT_THROW((void)load_network_file("/nonexistent/dir/x.bin"),
               PreconditionError);
}

TEST(Serialize, MobileNetSizeIsReasonable) {
  // ~3.2M int8 conv parameters + Non-Conv records: the blob must stay in
  // the low megabytes (it is what the silicon's external memory holds).
  const auto specs_arr = mobilenet_dsc_specs();
  const std::vector<DscLayerSpec> specs(specs_arr.begin(), specs_arr.end());
  const auto net = make_random_quant_network(specs, 8);
  const std::int64_t bytes = serialized_size(net);
  EXPECT_GT(bytes, 3'000'000);
  EXPECT_LT(bytes, 4'500'000);
}

}  // namespace
}  // namespace edea::nn
