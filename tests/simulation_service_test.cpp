// simulation_service_test - behaviour of the long-running simulation
// front end: memoization (identical resubmission is a hit and
// bit-identical), cache keying (config or workload change is a miss),
// exact counters under concurrent submission, LRU eviction, in-flight
// coalescing, and bit-identity of served batches against the serial
// core::SweepRunner reference.
#include "service/simulation_service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <latch>
#include <limits>
#include <thread>
#include <vector>

#include "core/sweep_runner.hpp"
#include "nn/model_zoo.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::service {
namespace {

/// Small two-layer DSC network (fast enough to simulate many times).
std::vector<nn::DscLayerSpec> tiny_specs() {
  nn::DscLayerSpec a;
  a.index = 0;
  a.in_rows = 8;
  a.in_cols = 8;
  a.in_channels = 16;
  a.out_channels = 32;
  nn::DscLayerSpec b;
  b.index = 1;
  b.in_rows = 8;
  b.in_cols = 8;
  b.in_channels = 32;
  b.stride = 2;
  b.out_channels = 32;
  return {a, b};
}

nn::Int8Tensor tiny_input(std::uint64_t seed) {
  Rng rng(seed);
  nn::Int8Tensor input(nn::Shape{8, 8, 16});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-64, 64));
  }
  return input;
}

/// One network + input, reusable across tests.
struct Fixture {
  std::vector<nn::QuantDscLayer> layers =
      nn::make_random_quant_network(tiny_specs(), 77);
  nn::Int8Tensor input = tiny_input(78);

  [[nodiscard]] core::SweepJob job(const std::string& name, int td = 8,
                                   int tk = 16) const {
    core::SweepJob j;
    j.name = name;
    j.config.td = td;
    j.config.tk = tk;
    j.layers = &layers;
    j.input = &input;
    return j;
  }
};

void expect_bit_identical(const core::SweepOutcome& a,
                          const core::SweepOutcome& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  if (!a.ok || !b.ok) return;
  EXPECT_EQ(a.result.total_cycles(), b.result.total_cycles());
  EXPECT_EQ(a.result.output.storage(), b.result.output.storage());
  EXPECT_EQ(a.result.summary(1.0), b.result.summary(1.0));
}

TEST(SimulationServiceTest, IdenticalResubmissionIsAHitAndBitIdentical) {
  Fixture fx;
  SimulationService svc;

  const core::SweepOutcome first = svc.submit(fx.job("first")).get();
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);

  const core::SweepOutcome second = svc.submit(fx.job("second")).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.name, "second");  // identity is per-request
  expect_bit_identical(first, second);

  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SimulationServiceTest, DifferingConfigIsAMiss) {
  Fixture fx;
  SimulationService svc;

  ASSERT_TRUE(svc.submit(fx.job("paper", 8, 16)).get().ok);
  const core::SweepOutcome scaled = svc.submit(fx.job("4x", 16, 32)).get();
  EXPECT_FALSE(scaled.cache_hit);

  // clock_ghz participates in the key too (it changes reported GOPS).
  core::SweepJob clocked = fx.job("clocked");
  clocked.config.clock_ghz = 0.8;
  EXPECT_FALSE(svc.submit(std::move(clocked)).get().cache_hit);

  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(SimulationServiceTest, DifferingWorkloadIsAMiss) {
  Fixture fx;
  SimulationService svc;
  ASSERT_TRUE(svc.submit(fx.job("a")).get().ok);

  // Same config, different weights -> different fingerprint.
  Fixture other;
  other.layers = nn::make_random_quant_network(tiny_specs(), 99);
  EXPECT_FALSE(svc.submit(other.job("b")).get().cache_hit);

  // Same weights, different input -> different fingerprint.
  Fixture shifted;
  shifted.input = tiny_input(1234);
  EXPECT_FALSE(svc.submit(shifted.job("c")).get().cache_hit);

  EXPECT_EQ(svc.cache_stats().misses, 3u);
  EXPECT_EQ(svc.cache_stats().hits, 0u);
}

TEST(SimulationServiceTest, BatchMatchesSerialSweepRunnerBitExactly) {
  Fixture fx;
  // >= 8 mixed requests including repeats and an infeasible point - the
  // acceptance shape of the service.
  std::vector<core::SweepJob> jobs;
  jobs.push_back(fx.job("j0", 8, 16));
  jobs.push_back(fx.job("j1", 16, 16));
  jobs.push_back(fx.job("j2", 8, 32));
  jobs.push_back(fx.job("j3", 8, 16));   // repeat of j0
  jobs.push_back(fx.job("j4", 16, 32));
  jobs.push_back(fx.job("j5", 16, 16));  // repeat of j1
  core::SweepJob infeasible = fx.job("j6");
  infeasible.config.kernel = 5;  // cannot map 3x3 layers
  jobs.push_back(infeasible);
  jobs.push_back(fx.job("j7", 8, 32));   // repeat of j2

  const std::vector<core::SweepOutcome> serial =
      core::SweepRunner(core::SweepRunner::Options{1}).run(jobs);

  SimulationService svc;
  const std::vector<core::SweepOutcome> served = svc.serve(jobs);

  ASSERT_EQ(served.size(), serial.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(served[i].name, serial[i].name);
    expect_bit_identical(served[i], serial[i]);
  }
  EXPECT_FALSE(served[6].ok);
  // Submission order is the request order, so the first occurrence is the
  // miss and every repeat is the hit - deterministically.
  EXPECT_FALSE(served[0].cache_hit);
  EXPECT_TRUE(served[3].cache_hit);
  EXPECT_TRUE(served[5].cache_hit);
  EXPECT_TRUE(served[7].cache_hit);

  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.misses, 5u);  // 4 feasible configs + 1 infeasible
  EXPECT_EQ(stats.hits, 3u);
}

TEST(SimulationServiceTest, StatsAreExactUnderConcurrentSubmission) {
  Fixture fx;
  SimulationService svc;

  // Many client threads hammer the same request plus a private one each.
  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::vector<core::SweepOutcome> shared_outcomes(kClients);
  std::vector<core::SweepOutcome> private_outcomes(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto shared = svc.submit(fx.job("shared-" + std::to_string(c)));
      auto mine =
          svc.submit(fx.job("mine-" + std::to_string(c), 8, 16 + 16 * (c + 1)));
      shared_outcomes[static_cast<std::size_t>(c)] = shared.get();
      private_outcomes[static_cast<std::size_t>(c)] = mine.get();
    });
  }
  for (std::thread& t : clients) t.join();

  // Exactly one simulation for the shared key (coalesced or cached, both
  // count as hits), one per private key.
  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.misses, 1u + kClients);
  EXPECT_EQ(stats.hits, kClients - 1u);
  EXPECT_EQ(stats.entries, 1u + kClients);

  // Every view of the shared request is bit-identical.
  for (int c = 1; c < kClients; ++c) {
    SCOPED_TRACE("client " + std::to_string(c));
    expect_bit_identical(shared_outcomes[0],
                         shared_outcomes[static_cast<std::size_t>(c)]);
  }
}

TEST(SimulationServiceTest, LruEvictionIsCountedAndBounded) {
  Fixture fx;
  ServiceOptions options;
  options.cache_capacity = 1;
  SimulationService svc(options);

  ASSERT_TRUE(svc.submit(fx.job("a", 8, 16)).get().ok);   // miss, resident
  ASSERT_TRUE(svc.submit(fx.job("b", 16, 16)).get().ok);  // miss, evicts a
  // "a" was evicted -> resubmission simulates again.
  EXPECT_FALSE(svc.submit(fx.job("a2", 8, 16)).get().cache_hit);

  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SimulationServiceTest, EvictionOrderIsLeastRecentlyUsedNotFifo) {
  Fixture fx;
  ServiceOptions options;
  options.cache_capacity = 2;
  SimulationService svc(options);

  ASSERT_TRUE(svc.submit(fx.job("a", 8, 16)).get().ok);   // cache: [a]
  ASSERT_TRUE(svc.submit(fx.job("b", 16, 16)).get().ok);  // cache: [b a]
  // Touch "a": it becomes most recently used, so the next insertion must
  // evict "b" - FIFO would (wrongly) evict "a" as the oldest insertion.
  EXPECT_TRUE(svc.submit(fx.job("a-touch", 8, 16)).get().cache_hit);
  ASSERT_TRUE(svc.submit(fx.job("c", 8, 32)).get().ok);   // evicts b

  EXPECT_TRUE(svc.submit(fx.job("a-again", 8, 16)).get().cache_hit)
      << "the recently used entry must have survived";
  EXPECT_FALSE(svc.submit(fx.job("b-again", 16, 16)).get().cache_hit)
      << "the least recently used entry must have been evicted";

  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.misses, 4u);  // a, b, c, b-again
  EXPECT_EQ(stats.hits, 2u);    // a-touch, a-again
  EXPECT_EQ(stats.evictions, 2u);  // b (by c), then a or c (by b-again)
  EXPECT_EQ(stats.entries, 2u);
}

TEST(SimulationServiceTest, HammeringOneDesignPointCostsExactlyOneMiss) {
  // N threads fire the *same* design point through one gate: whatever the
  // interleaving, the first submission simulates and every other one is a
  // hit - coalesced onto the in-flight simulation or served from the
  // completed entry, both accounted identically.
  Fixture fx;
  SimulationService svc;

  constexpr int kClients = 8;
  std::latch gate(kClients);
  std::vector<std::thread> clients;
  std::vector<core::SweepOutcome> outcomes(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto future = [&] {
        gate.arrive_and_wait();  // maximize racing submissions
        return svc.submit(fx.job("hammer-" + std::to_string(c)));
      }();
      outcomes[static_cast<std::size_t>(c)] = future.get();
    });
  }
  for (std::thread& t : clients) t.join();

  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kClients - 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.in_flight, 0u);

  int flagged_hits = 0;
  for (int c = 0; c < kClients; ++c) {
    SCOPED_TRACE("client " + std::to_string(c));
    flagged_hits += outcomes[static_cast<std::size_t>(c)].cache_hit ? 1 : 0;
    expect_bit_identical(outcomes[0], outcomes[static_cast<std::size_t>(c)]);
    EXPECT_EQ(outcomes[static_cast<std::size_t>(c)].name,
              "hammer-" + std::to_string(c));
  }
  EXPECT_EQ(flagged_hits, kClients - 1);
}

TEST(SimulationServiceTest, ZeroCapacityDisablesMemoization) {
  Fixture fx;
  ServiceOptions options;
  options.cache_capacity = 0;
  SimulationService svc(options);

  const core::SweepOutcome first = svc.submit(fx.job("a")).get();
  const core::SweepOutcome second = svc.submit(fx.job("b")).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  expect_bit_identical(first, second);  // still deterministic

  const CacheStats stats = svc.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(SimulationServiceTest, DedicatedPoolServesIdentically) {
  Fixture fx;
  ServiceOptions options;
  options.worker_threads = 3;
  SimulationService svc(options);

  const core::SweepOutcome served = svc.submit(fx.job("dedicated")).get();
  const core::SweepOutcome reference = core::evaluate_job(fx.job("dedicated"));
  expect_bit_identical(served, reference);
}

TEST(SimulationServiceTest, TileParallelServiceIsBitIdentical) {
  // A service running every request with tile-parallel layers must serve
  // outcomes bit-identical to the plain (serial-tile) service and to the
  // serial SweepRunner reference.
  Fixture fx;
  ServiceOptions options;
  options.tile_parallelism = 4;
  SimulationService svc(options);

  std::vector<core::SweepJob> jobs;
  jobs.push_back(fx.job("a", 8, 16));
  jobs.push_back(fx.job("b", 16, 32));
  jobs.push_back(fx.job("c", 4, 8));
  const auto served = svc.serve(jobs);

  core::SweepOptions serial;
  serial.parallelism = 1;  // tile_parallelism defaults to 1: fully serial
  const auto reference = core::SweepRunner(serial).run(jobs);
  ASSERT_EQ(served.size(), reference.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    SCOPED_TRACE("outcome " + std::to_string(i));
    expect_bit_identical(reference[i], served[i]);
  }
}

TEST(SimulationServiceTest, ZeroOrNegativeTileParallelismIsAPreconditionError) {
  // Mirrors the sweep-level negative-parallelism tests: the service must
  // reject a zero or negative tile width at construction, loudly, instead
  // of silently picking a policy.
  for (const int bad : {0, -1, -64}) {
    SCOPED_TRACE("tile_parallelism=" + std::to_string(bad));
    ServiceOptions options;
    options.tile_parallelism = bad;
    EXPECT_THROW(SimulationService{options}, PreconditionError);
  }
  ServiceOptions ok;
  ok.tile_parallelism = 4;
  EXPECT_NO_THROW(SimulationService{ok});
}

TEST(SimulationServiceTest, NullNetworkIsAPreconditionError) {
  SimulationService svc;
  core::SweepJob dangling;
  dangling.name = "dangling";
  EXPECT_THROW((void)svc.submit(std::move(dangling)), PreconditionError);
}

TEST(SimulationServiceTest, NonFiniteClockIsAPreconditionError) {
  // NaN never equals itself, so a NaN-keyed cache entry could never be
  // found again - the service rejects it at the boundary.
  Fixture fx;
  SimulationService svc;
  core::SweepJob poisoned = fx.job("poisoned");
  poisoned.config.clock_ghz = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)svc.submit(std::move(poisoned)), PreconditionError);
}

TEST(SimulationServiceTest, FingerprintIsOrderAndContentSensitive) {
  Fixture fx;
  const std::uint64_t base = core::network_fingerprint(fx.layers, fx.input);

  // Same data hashes the same.
  EXPECT_EQ(base, core::network_fingerprint(fx.layers, fx.input));

  // One flipped input byte changes it.
  nn::Int8Tensor tweaked = fx.input;
  tweaked.storage()[0] = static_cast<std::int8_t>(tweaked.storage()[0] + 1);
  EXPECT_NE(base, core::network_fingerprint(fx.layers, tweaked));

  // One flipped weight changes it.
  auto layers = fx.layers;
  layers[0].dwc_weights.storage()[0] = static_cast<std::int8_t>(
      layers[0].dwc_weights.storage()[0] + 1);
  EXPECT_NE(base, core::network_fingerprint(layers, fx.input));
}

}  // namespace
}  // namespace edea::service
