// Tests for the LSQ-substitute scale optimizer (src/nn/lsq.*).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dataset.hpp"
#include "nn/lsq.hpp"
#include "nn/metrics.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::nn {
namespace {

TEST(QuantizationMse, ZeroForExactlyRepresentableValues) {
  // Values that are integer multiples of the scale quantize losslessly.
  const std::vector<float> values{0.0f, 0.5f, 1.0f, 2.5f, 10.0f};
  EXPECT_DOUBLE_EQ(quantization_mse(values, QuantScale{0.5f}, 0, 127), 0.0);
}

TEST(QuantizationMse, CountsClippingError) {
  // With scale 1.0 and clamp [0,127], the value 200 clips to 127.
  const std::vector<float> values{200.0f};
  EXPECT_NEAR(quantization_mse(values, QuantScale{1.0f}, 0, 127),
              73.0 * 73.0, 1e-6);
}

TEST(QuantizationMse, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(quantization_mse({}, QuantScale{1.0f}, 0, 127), 0.0);
}

TEST(QuantizationMse, RejectsBadArguments) {
  EXPECT_THROW((void)quantization_mse({1.0f}, QuantScale{0.0f}, 0, 127),
               PreconditionError);
  EXPECT_THROW((void)quantization_mse({1.0f}, QuantScale{1.0f}, 5, 5),
               PreconditionError);
}

TEST(OptimizeScale, NeverWorseThanMaxCalibration) {
  Rng rng(100);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> values;
    for (int i = 0; i < 4000; ++i) {
      values.push_back(
          static_cast<float>(std::max(0.0, rng.normal(0.4, 0.6))));
    }
    // Heavy tail: a few large outliers.
    for (int i = 0; i < 8; ++i) {
      values.push_back(static_cast<float>(rng.uniform(6.0, 12.0)));
    }
    double mx = 0.0;
    for (const float v : values) mx = std::max(mx, std::abs(double{v}));
    const QuantScale naive{static_cast<float>(mx / 127.0)};
    const QuantScale opt = optimize_scale(values, 0, 127);
    EXPECT_LE(quantization_mse(values, opt, 0, 127),
              quantization_mse(values, naive, 0, 127) + 1e-12)
        << "trial " << trial;
  }
}

TEST(OptimizeScale, ShrinksStepOnHeavyTailedData) {
  // The LSQ behaviour: sacrifice the tail for resolution. A lognormal
  // distribution has genuine tail *mass* (a single extreme outlier is not
  // worth clipping - its squared error dominates - and the optimizer
  // correctly keeps the max-based scale there). Uses the aggressive
  // bracket; the conservative default deliberately clips less.
  Rng rng(200);
  std::vector<float> values;
  double max_v = 0.0;
  for (int i = 0; i < 8000; ++i) {
    const double v = std::exp(rng.normal(0.0, 1.5));
    values.push_back(static_cast<float>(v));
    max_v = std::max(max_v, v);
  }
  const QuantScale naive{static_cast<float>(max_v / 127.0)};
  const QuantScale opt =
      optimize_scale(values, 0, 127, LsqOptions::aggressive());
  // MSE optima sit *below* the max-based scale, but not dramatically so:
  // squared error punishes clipping hard, so even a lognormal tail only
  // buys a few percent of step shrink. (Trained LSQ shrinks much harder
  // because it optimizes task loss with weight adaptation - an honest
  // limitation of any post-hoc substitute, recorded in EXPERIMENTS.md.)
  EXPECT_LT(opt.scale, naive.scale);
  EXPECT_LT(quantization_mse(values, opt, 0, 127),
            quantization_mse(values, naive, 0, 127));
}

TEST(OptimizeScale, SingleExtremeOutlierIsNotClipped) {
  // The counterpart: one 200-sigma outlier among 8000 samples carries
  // more squared error than the resolution gain from clipping it, so the
  // optimizer stays near the max-based scale even with a wide bracket.
  Rng rng(300);
  std::vector<float> values;
  for (int i = 0; i < 8000; ++i) {
    values.push_back(static_cast<float>(std::abs(rng.normal(0.0, 0.5))));
  }
  values.push_back(100.0f);
  const QuantScale opt =
      optimize_scale(values, 0, 127, LsqOptions::aggressive());
  EXPECT_GT(opt.scale, 0.6f * (100.0f / 127.0f));
}

TEST(OptimizeScale, HandlesDegenerateInputs) {
  EXPECT_FLOAT_EQ(optimize_scale({}, 0, 127).scale, 1.0f);
  EXPECT_FLOAT_EQ(optimize_scale({0.0f, 0.0f}, 0, 127).scale, 1.0f);
}

TEST(OptimizeScale, UniformDataKeepsNearMaxScale) {
  // With no tail, max-calibration is already near optimal; the optimizer
  // must not wander far from it.
  std::vector<float> values;
  for (int i = 0; i <= 1000; ++i) {
    values.push_back(static_cast<float>(i) / 1000.0f);
  }
  const QuantScale opt = optimize_scale(values, 0, 127);
  EXPECT_GT(opt.scale, 0.5f / 127.0f);
  EXPECT_LT(opt.scale, 1.3f / 127.0f);
}

TEST(Subsample, CapsAndStridesDeterministically) {
  FloatTensor t(Shape{100});
  for (int i = 0; i < 100; ++i) t(i) = static_cast<float>(i);
  const auto all = subsample(t, 200);
  EXPECT_EQ(all.size(), 100u);
  const auto some = subsample(t, 10);
  EXPECT_LE(some.size(), 10u);
  EXPECT_FLOAT_EQ(some[0], 0.0f);
  EXPECT_FLOAT_EQ(some[1], 10.0f);  // stride 10
  EXPECT_THROW((void)subsample(t, 0), PreconditionError);
}

TEST(LsqCalibrate, ProducesCompleteScaleSet) {
  const FloatMobileNet net(42);
  SyntheticCifar data(1);
  std::vector<FloatTensor> images;
  for (int i = 0; i < 2; ++i) images.push_back(data.sample(i).image);
  const CalibrationResult cal = lsq_calibrate(net, images);
  EXPECT_EQ(cal.block_input_scales.size(), 14u);
  EXPECT_EQ(cal.intermediate_scales.size(), 13u);
  EXPECT_GT(cal.image_scale.scale, 0.0f);
  for (const auto& s : cal.block_input_scales) EXPECT_GT(s.scale, 0.0f);
}

TEST(LsqCalibrate, FidelityAtLeastAsGoodAsNaiveCalibration) {
  // End-to-end: the LSQ-substitute scales must not degrade (and typically
  // improve) the quantized network's agreement with the float network.
  const FloatMobileNet net(777);
  SyntheticCifar data(3);
  std::vector<FloatTensor> images;
  for (int i = 0; i < 3; ++i) images.push_back(data.sample(i).image);

  const CalibrationResult naive = calibrate(net, images);
  const CalibrationResult lsq = lsq_calibrate(net, images);
  const QuantMobileNet qnet_naive(net, naive);
  const QuantMobileNet qnet_lsq(net, lsq);

  const FloatTensor probe = data.sample(5).image;
  const FloatTensor stem = net.forward_stem(probe);
  const FloatTensor float_feats = net.forward_dsc(stem);

  const FloatTensor feats_naive = qnet_naive.dequantize_output(
      qnet_naive.forward_dsc(qnet_naive.quantize_input(stem)));
  const FloatTensor feats_lsq = qnet_lsq.dequantize_output(
      qnet_lsq.forward_dsc(qnet_lsq.quantize_input(stem)));

  const double cos_naive = cosine_similarity(feats_naive, float_feats);
  const double cos_lsq = cosine_similarity(feats_lsq, float_feats);
  // Allow a hair of slack: scales are optimized per layer on calibration
  // data, not end-to-end on the probe.
  EXPECT_GE(cos_lsq, cos_naive - 0.005);
  EXPECT_GT(cos_lsq, 0.85);
}

TEST(LsqCalibrate, DeterministicGivenSameInputs) {
  const FloatMobileNet net(99);
  SyntheticCifar data(9);
  std::vector<FloatTensor> images{data.sample(0).image};
  const CalibrationResult a = lsq_calibrate(net, images);
  const CalibrationResult b = lsq_calibrate(net, images);
  for (std::size_t i = 0; i < a.block_input_scales.size(); ++i) {
    EXPECT_FLOAT_EQ(a.block_input_scales[i].scale,
                    b.block_input_scales[i].scale);
  }
}

}  // namespace
}  // namespace edea::nn
