// Integration tests for the cycle-accurate EDEA accelerator: bit-exactness
// against the golden quantized reference, cycle-exactness against Eq. 1/2,
// utilization, dataflow counters against Table II, and resource limits.
#include <gtest/gtest.h>

#include <cmath>

#include "core/accelerator.hpp"
#include "nn/mobilenet.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::core {
namespace {

nn::DscLayerSpec spec_of(int rows, int ch, int stride, int out_ch,
                         int index = 0) {
  nn::DscLayerSpec s;
  s.index = index;
  s.in_rows = rows;
  s.in_cols = rows;
  s.in_channels = ch;
  s.stride = stride;
  s.out_channels = out_ch;
  return s;
}

/// Builds a quantized layer with realistic scales plus a random int8 input
/// in the post-ReLU domain.
struct Fixture {
  nn::QuantDscLayer layer;
  nn::Int8Tensor input;
};

Fixture make_fixture(const nn::DscLayerSpec& spec, std::uint64_t seed,
                     double sparsity = 0.4) {
  Rng rng(seed);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  Fixture fx;
  fx.layer = nn::quantize_layer(fl, nn::QuantScale{0.02f},
                                nn::QuantScale{0.03f}, nn::QuantScale{0.03f});
  fx.input = nn::Int8Tensor(
      nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : fx.input.storage()) {
    v = rng.bernoulli(sparsity)
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return fx;
}

TEST(Accelerator, BitExactOnSingleTileLayer) {
  const Fixture fx = make_fixture(spec_of(8, 16, 1, 32), 1);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  EXPECT_EQ(r.output, fx.layer.forward(fx.input));
}

TEST(Accelerator, BitExactOnMultiTileLayer) {
  const Fixture fx = make_fixture(spec_of(32, 16, 1, 32), 2);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  EXPECT_EQ(r.output, fx.layer.forward(fx.input));
}

TEST(Accelerator, BitExactWithStride2) {
  const Fixture fx = make_fixture(spec_of(16, 24, 2, 48), 3);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  EXPECT_EQ(r.output, fx.layer.forward(fx.input));
}

TEST(Accelerator, BitExactWithRaggedChannelsAndKernels) {
  // D = 20 (not a multiple of Td), K = 23 (not a multiple of Tk).
  const Fixture fx = make_fixture(spec_of(8, 20, 1, 23), 4);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  EXPECT_EQ(r.output, fx.layer.forward(fx.input));
}

TEST(Accelerator, BitExactWithRaggedSpatialTiles) {
  // 12x12 output: edge tiles of 4 rows/cols; plus odd output extent 7.
  const Fixture fx12 = make_fixture(spec_of(12, 8, 1, 16), 5);
  EdeaAccelerator accel;
  EXPECT_EQ(accel.run_layer(fx12.layer, fx12.input).output,
            fx12.layer.forward(fx12.input));

  const Fixture fx7 = make_fixture(spec_of(7, 8, 1, 16), 6);
  EXPECT_EQ(accel.run_layer(fx7.layer, fx7.input).output,
            fx7.layer.forward(fx7.input));
}

TEST(Accelerator, BitExactOddSpatialWithStride2) {
  const Fixture fx = make_fixture(spec_of(9, 8, 2, 16), 7);
  EdeaAccelerator accel;
  EXPECT_EQ(accel.run_layer(fx.layer, fx.input).output,
            fx.layer.forward(fx.input));
}

TEST(Accelerator, CycleCountsMatchEq1Eq2) {
  EdeaAccelerator accel;
  const TimingModel tm(accel.config());
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const auto spec = spec_of(16, 16, (seed % 2) ? 1 : 2, 32);
    const Fixture fx = make_fixture(spec, seed);
    const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
    const LayerTiming expected = tm.layer_timing(spec);
    EXPECT_EQ(r.timing.total_cycles, expected.total_cycles);
    EXPECT_EQ(r.timing.init_cycles, expected.init_cycles);
    EXPECT_EQ(r.timing.compute_cycles, expected.compute_cycles);
    EXPECT_EQ(r.timing.dwc_active_cycles, expected.dwc_active_cycles);
    EXPECT_EQ(r.timing.pwc_active_cycles, expected.pwc_active_cycles);
  }
}

TEST(Accelerator, HundredPercentLaneUtilizationOnAlignedLayers) {
  // The paper's headline claim: every MobileNetV1 layer keeps both engines
  // at 100% lane utilization (D % 8 == 0, K % 16 == 0, even outputs).
  const Fixture fx = make_fixture(spec_of(8, 32, 1, 64), 20);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  EXPECT_DOUBLE_EQ(r.dwc_lane_utilization(), 1.0);
  EXPECT_DOUBLE_EQ(r.pwc_lane_utilization(), 1.0);
}

TEST(Accelerator, UtilizationDropsOnMisalignedChannels) {
  const Fixture fx = make_fixture(spec_of(8, 12, 1, 24), 21);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  EXPECT_LT(r.dwc_lane_utilization(), 1.0);
  EXPECT_LT(r.pwc_lane_utilization(), 1.0);
}

TEST(Accelerator, DataflowCountersMatchTableII) {
  // Table II (La, Tn=Tm=2) on an aligned single-tile layer:
  //   DWC activation = Tr*Tc*D*N*M/4, DWC weight = 9*D,
  //   PWC activation = N*M*D*K/16,    PWC weight = D*K.
  const auto spec = spec_of(8, 16, 1, 32);
  const Fixture fx = make_fixture(spec, 22);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);

  const std::int64_t N = 8, M = 8, D = 16, K = 32;
  EXPECT_EQ(r.dataflow.dwc_window_elements, 4 * 4 * D * (N * M / 4));
  EXPECT_EQ(r.dataflow.dwc_weight_elements, 9 * D);
  EXPECT_EQ(r.dataflow.pwc_activation_elements, N * M * D * (K / 16));
  EXPECT_EQ(r.dataflow.pwc_weight_elements, D * K);
}

TEST(Accelerator, DataflowCountersStride2WindowIs5x5) {
  const auto spec = spec_of(16, 8, 2, 16);  // output 8x8, single tile
  const Fixture fx = make_fixture(spec, 23);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  EXPECT_EQ(r.dataflow.dwc_window_elements, 5 * 5 * 8 * (8 * 8 / 4));
}

TEST(Accelerator, ExternalOutputWritesEqualOfmapSize) {
  const auto spec = spec_of(16, 16, 1, 32);
  const Fixture fx = make_fixture(spec, 24);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  EXPECT_EQ(r.external.counter(arch::TrafficClass::kActivation).writes,
            16 * 16 * 32);
}

TEST(Accelerator, NoIntermediateExternalTraffic) {
  // The direct-transfer property: external activation traffic is ifmap
  // reads + ofmap writes only; the N*M*D intermediate never leaves chip.
  const auto spec = spec_of(8, 16, 1, 32);
  const Fixture fx = make_fixture(spec, 25);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  const auto& act = r.external.counter(arch::TrafficClass::kActivation);
  // Reads: per (tile, slice) the valid halo region; here 10x10 region
  // clipped to 8x8 image (9x9 corner tiles...) - just assert it is below
  // the padded footprint + one intermediate round trip.
  const std::int64_t ifmap_upper = 10 * 10 * 16;
  EXPECT_LE(act.reads, ifmap_upper);
  // And the intermediate (8*8*16 = 1024 each way) was never written out:
  EXPECT_EQ(act.writes, 8 * 8 * 32);  // ofmap only
}

TEST(Accelerator, IntermediateBufferCarriesAllTransfers) {
  const auto spec = spec_of(8, 16, 1, 32);
  const Fixture fx = make_fixture(spec, 26);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  // Every intermediate element written once per (step, slice):
  EXPECT_EQ(r.buffers.intermediate.writes, 8 * 8 * 16);
  // ... and read back once per kernel group (K/16 = 2):
  EXPECT_EQ(r.buffers.intermediate.reads, 8 * 8 * 16 * 2);
}

TEST(Accelerator, NonConvOpCounts) {
  const auto spec = spec_of(8, 16, 1, 32);
  const Fixture fx = make_fixture(spec, 27);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  EXPECT_EQ(r.nonconv_transfer_ops, 8 * 8 * 16);   // N*M*D
  EXPECT_EQ(r.nonconv_writeback_ops, 8 * 8 * 32);  // N*M*K
}

TEST(Accelerator, PwcInputZeroFractionMatchesReference) {
  const auto spec = spec_of(8, 16, 1, 32);
  const Fixture fx = make_fixture(spec, 28);
  EdeaAccelerator accel;
  const LayerRunResult r = accel.run_layer(fx.layer, fx.input);
  nn::Int8Tensor intermediate;
  (void)fx.layer.forward(fx.input, &intermediate);
  EXPECT_NEAR(r.pwc_input_zero_fraction, intermediate.zero_fraction(), 1e-12);
  EXPECT_NEAR(r.dwc_input_zero_fraction, fx.input.zero_fraction(), 1e-12);
}

TEST(Accelerator, RunNetworkChainsLayers) {
  EdeaAccelerator accel;
  Rng rng(30);
  std::vector<nn::QuantDscLayer> layers;
  nn::DscLayerSpec s1 = spec_of(16, 16, 1, 32, 0);
  nn::DscLayerSpec s2 = spec_of(16, 32, 2, 64, 1);
  for (const auto& s : {s1, s2}) {
    const nn::FloatDscLayer fl = nn::make_random_float_layer(s, rng);
    layers.push_back(nn::quantize_layer(fl, nn::QuantScale{0.02f},
                                        nn::QuantScale{0.03f},
                                        nn::QuantScale{0.03f}));
  }
  nn::Int8Tensor input(nn::Shape{16, 16, 16});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  const NetworkRunResult net = accel.run_network(layers, input);
  ASSERT_EQ(net.layers.size(), 2u);
  EXPECT_EQ(net.output.shape(), (nn::Shape{8, 8, 64}));
  // Chaining must equal the reference chain.
  const nn::Int8Tensor ref = layers[1].forward(layers[0].forward(input));
  EXPECT_EQ(net.output, ref);
  EXPECT_EQ(net.total_cycles(), net.layers[0].timing.total_cycles +
                                    net.layers[1].timing.total_cycles);
}

TEST(Accelerator, InputShapeMismatchThrows) {
  const Fixture fx = make_fixture(spec_of(8, 16, 1, 32), 31);
  EdeaAccelerator accel;
  nn::Int8Tensor wrong(nn::Shape{8, 8, 8});
  EXPECT_THROW((void)accel.run_layer(fx.layer, wrong), PreconditionError);
}

TEST(Accelerator, MismatchedKernelExtentThrows) {
  // A 5x5 depthwise layer cannot be mapped onto the 3x3-wired engine.
  nn::DscLayerSpec spec = spec_of(8, 8, 1, 16);
  spec.kernel = 5;
  spec.padding = 2;
  Rng rng(99);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{8, 8, 8});
  EdeaAccelerator accel;
  EXPECT_THROW((void)accel.run_layer(layer, input), PreconditionError);
}

TEST(Accelerator, OversizedKernelCountIsAResourceError) {
  // K = 2048 exceeds the modeled PWC weight buffer (8 KiB = Td * 1024).
  const Fixture fx = make_fixture(spec_of(4, 8, 1, 2048), 32);
  EdeaAccelerator accel;
  EXPECT_THROW((void)accel.run_layer(fx.layer, fx.input), ResourceError);
}

TEST(Accelerator, TraceRecordsFig7Stages) {
  const Fixture fx = make_fixture(spec_of(8, 16, 1, 32), 33);
  EdeaAccelerator accel;
  PipelineTrace trace;
  accel.set_trace(&trace);
  (void)accel.run_layer(fx.layer, fx.input);
  accel.set_trace(nullptr);
  ASSERT_FALSE(trace.events.empty());
  // All Fig. 7 stage labels must appear in the first pass.
  const std::array<const char*, 6> stages{
      "DWC Input Ifmap & Weight", "DWC Input offline Data",
      "DWC Engine Process",       "Non-Conv Unit Process",
      "Write Intermediate Buffer", "PWC Engine Process"};
  for (const char* stage : stages) {
    bool found = false;
    for (const auto& e : trace.events) {
      if (e.stage == stage) found = true;
    }
    EXPECT_TRUE(found) << "missing stage " << stage;
  }
}

TEST(Accelerator, AccumulatorsStayWithin24Bits) {
  // Sec. III-C models 24-bit accumulators; realistic post-ReLU data must
  // keep every PWC partial sum inside that envelope. Stress with dense,
  // large-magnitude inputs on the deepest layer shape.
  const Fixture fx = make_fixture(spec_of(4, 512, 1, 512), 34,
                                  /*sparsity=*/0.0);
  nn::Int8Tensor intermediate;
  (void)fx.layer.forward(fx.input, &intermediate);
  const nn::Int32Tensor acc = nn::pointwise_conv2d_q(intermediate,
                                                     fx.layer.pwc_weights);
  EXPECT_TRUE(arch::fits_signed_bits(nn::max_abs_acc(acc), 24));
}

}  // namespace
}  // namespace edea::core
