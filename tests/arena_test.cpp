// arena_test - properties of the static memory planner (src/nn/arena.hpp):
// no two live blobs ever share bytes, offsets are deterministic, the
// batched activation plan's peak grows monotonically with batch size, and
// liveness-based reuse genuinely shrinks the arena versus the naive
// no-reuse layout on a real zoo network.
#include "nn/arena.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "nn/model_zoo.hpp"
#include "util/random.hpp"

namespace edea::nn {
namespace {

// Indexed blob names built by append (the obvious `"b" + to_string(i)`
// trips a GCC 12 -Wrestrict false positive in optimized builds).
std::string blob_name(int i) {
  std::string name = "b";
  name += std::to_string(i);
  return name;
}

bool liveness_intersects(const BlobSpec& a, const BlobSpec& b) {
  return a.first_step <= b.last_step && b.first_step <= a.last_step;
}

bool bytes_overlap(const PlannedBlob& a, const PlannedBlob& b) {
  if (a.spec.bytes == 0 || b.spec.bytes == 0) return false;
  return a.offset < b.offset + b.spec.bytes &&
         b.offset < a.offset + a.spec.bytes;
}

/// Zoo layers with only the geometry filled in - the planner reads specs,
/// not weights, so tests need not materialize random networks.
std::vector<QuantDscLayer> spec_only_layers(const std::string& zoo_name) {
  std::vector<QuantDscLayer> layers;
  for (const DscLayerSpec& spec : zoo_specs(zoo_name)) {
    QuantDscLayer layer;
    layer.spec = spec;
    layers.push_back(std::move(layer));
  }
  return layers;
}

Shape input_shape_of(const std::vector<QuantDscLayer>& layers) {
  const DscLayerSpec& first = layers.front().spec;
  return Shape{first.in_rows, first.in_cols, first.in_channels};
}

TEST(MemoryPlannerTest, LiveBlobsNeverShareBytes) {
  // Property test over randomized blob populations: any two blobs whose
  // liveness intervals intersect must occupy disjoint byte ranges.
  Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    MemoryPlanner planner;
    const int blobs = 2 + static_cast<int>(rng.uniform_int(0, 30));
    for (int i = 0; i < blobs; ++i) {
      const auto first = static_cast<std::size_t>(rng.uniform_int(0, 12));
      const auto last = first + static_cast<std::size_t>(rng.uniform_int(0, 4));
      const auto bytes = static_cast<std::size_t>(rng.uniform_int(0, 4096));
      planner.add_blob(blob_name(i), bytes, first, last);
    }
    const ArenaPlan plan = planner.plan();
    ASSERT_EQ(plan.blobs.size(), static_cast<std::size_t>(blobs));
    for (std::size_t a = 0; a < plan.blobs.size(); ++a) {
      for (std::size_t b = a + 1; b < plan.blobs.size(); ++b) {
        if (liveness_intersects(plan.blobs[a].spec, plan.blobs[b].spec)) {
          EXPECT_FALSE(bytes_overlap(plan.blobs[a], plan.blobs[b]))
              << "trial " << trial << ": live blobs " << a << " and " << b
              << " overlap";
        }
      }
    }
    EXPECT_LE(plan.peak_bytes, plan.unreused_bytes);
    for (const PlannedBlob& blob : plan.blobs) {
      EXPECT_EQ(blob.offset % MemoryPlanner::kAlignment, 0u);
      EXPECT_LE(blob.offset + blob.spec.bytes, plan.peak_bytes);
    }
  }
}

TEST(MemoryPlannerTest, OffsetsAreDeterministicAcrossRuns) {
  const auto build = [] {
    MemoryPlanner planner;
    Rng rng(99);
    for (int i = 0; i < 40; ++i) {
      const auto first = static_cast<std::size_t>(rng.uniform_int(0, 8));
      planner.add_blob(blob_name(i),
                       static_cast<std::size_t>(rng.uniform_int(1, 2000)),
                       first,
                       first + static_cast<std::size_t>(rng.uniform_int(0, 3)));
    }
    return planner.plan();
  };
  const ArenaPlan a = build();
  const ArenaPlan b = build();
  ASSERT_EQ(a.blobs.size(), b.blobs.size());
  for (std::size_t i = 0; i < a.blobs.size(); ++i) {
    EXPECT_EQ(a.blobs[i].offset, b.blobs[i].offset) << "blob " << i;
  }
  EXPECT_EQ(a.peak_bytes, b.peak_bytes);
  EXPECT_EQ(a.unreused_bytes, b.unreused_bytes);
}

TEST(MemoryPlannerTest, DisjointLivenessPingPongsAndAdjacentLiveStack) {
  MemoryPlanner planner;
  const BlobId in = planner.add_blob("input", 100, 0, 0);
  const BlobId a0 = planner.add_blob("act0", 100, 0, 1);
  const BlobId a1 = planner.add_blob("act1", 100, 1, 2);
  const BlobId a2 = planner.add_blob("act2", 100, 2, 3);
  const ArenaPlan plan = planner.plan();
  // act0 conflicts with the input (both live at step 0) so it stacks; act1
  // conflicts with act0 but NOT the input, so it reuses the input's bytes.
  EXPECT_NE(plan.blobs[in].offset, plan.blobs[a0].offset);
  EXPECT_EQ(plan.blobs[a1].offset, plan.blobs[in].offset);
  EXPECT_EQ(plan.blobs[a2].offset, plan.blobs[a0].offset);
  EXPECT_LT(plan.peak_bytes, plan.unreused_bytes);
}

TEST(MemoryPlannerTest, NetworkActivationPeakIsMonotoneInBatch) {
  const std::vector<QuantDscLayer> layers = spec_only_layers("edeanet-64");
  const Shape input = input_shape_of(layers);
  std::size_t previous = 0;
  for (const int batch : {1, 2, 3, 4, 8, 16}) {
    MemoryPlanner planner;
    plan_network_activations(planner, layers, input, batch);
    const ArenaPlan plan = planner.plan();
    EXPECT_GT(plan.peak_bytes, previous) << "batch " << batch;
    previous = plan.peak_bytes;
  }
}

TEST(MemoryPlannerTest, ReuseShrinksPeakOnEveryZooNetwork) {
  // The acceptance bar: planned peak strictly below the naive sum of all
  // blob sizes on every network the zoo can name.
  for (const std::string& name : zoo_network_names()) {
    SCOPED_TRACE(name);
    const std::vector<QuantDscLayer> layers = spec_only_layers(name);
    MemoryPlanner planner;
    plan_network_activations(planner, layers, input_shape_of(layers), 1);
    const ArenaPlan plan = planner.plan();
    EXPECT_LT(plan.peak_bytes, plan.unreused_bytes);

    // And the no-reuse planner really is the naive layout.
    MemoryPlanner naive(/*reuse=*/false);
    plan_network_activations(naive, layers, input_shape_of(layers), 1);
    const ArenaPlan naive_plan = naive.plan();
    EXPECT_EQ(naive_plan.peak_bytes, naive_plan.unreused_bytes);
    EXPECT_EQ(naive_plan.unreused_bytes, plan.unreused_bytes);
  }
}

TEST(ArenaTest, SlicesAreZeroedDisjointAndClearable) {
  MemoryPlanner planner;
  const BlobId a = planner.add_blob("a", 64, 0, 0);
  const BlobId b = planner.add_blob("b", 64, 0, 0);
  Arena arena(planner.plan());
  EXPECT_EQ(arena.size_bytes(), 128u);
  std::int8_t* pa = arena.slice<std::int8_t>(a, 64);
  std::int8_t* pb = arena.slice<std::int8_t>(b, 64);
  ASSERT_NE(pa, pb);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(pa[i], 0);
  pa[0] = 5;
  pb[0] = 9;
  EXPECT_EQ(pa[0], 5);  // no aliasing between live blobs
  arena.clear(a);
  EXPECT_EQ(pa[0], 0);
  EXPECT_EQ(pb[0], 9);
  EXPECT_THROW((void)arena.slice<std::int32_t>(a, 64), PreconditionError);
}

TEST(ArenaTest, TensorViewsOverActivationPlanChainCorrectly) {
  const std::vector<QuantDscLayer> layers = spec_only_layers("edeanet-64");
  const Shape input = input_shape_of(layers);
  MemoryPlanner planner;
  const NetworkActivationPlan acts =
      plan_network_activations(planner, layers, input, 2);
  Arena arena(planner.plan());
  ASSERT_EQ(acts.inputs.size(), 2u);
  ASSERT_EQ(acts.outputs.size(), 2u);
  for (int b = 0; b < 2; ++b) {
    Int8Tensor in_view = Int8Tensor::view(
        input, arena.slice<std::int8_t>(acts.inputs[b], input.volume()));
    EXPECT_TRUE(in_view.is_view());
    EXPECT_EQ(in_view.size(), input.volume());
    ASSERT_EQ(acts.outputs[b].size(), layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
      const DscLayerSpec& spec = layers[i].spec;
      const Shape shape{spec.out_rows(), spec.out_cols(), spec.out_channels};
      EXPECT_EQ(arena.bytes_of(acts.outputs[b][i]), shape.volume());
    }
  }
}

}  // namespace
}  // namespace edea::nn
