// hash_ring_test - the consistent-hash ring the cluster router shards on
// (service/hash_ring.hpp). Two properties carry the router's correctness
// and its failover cost model, and both are pinned here: *balance* (with
// enough virtual nodes every worker owns a comparable keyspace share) and
// *minimal remapping* (removing one of N nodes reassigns only the dead
// node's keys - roughly 1/N of the keyspace - while every surviving
// node keeps exactly the keys it had, which is what keeps shard caches
// warm through a failover).
#include "service/hash_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::service {
namespace {

/// A deterministic spray of keys across the full 64-bit space.
std::vector<std::uint64_t> sample_keys(std::size_t count) {
  Rng rng(0x5eedull);
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) keys.push_back(rng());
  return keys;
}

TEST(HashRingTest, OwnerIsDeterministicAndAmongTheNodes) {
  HashRing ring;
  ring.add_node("shard0");
  ring.add_node("shard1");
  ring.add_node("shard2");
  EXPECT_EQ(ring.node_count(), 3u);
  for (const std::uint64_t key : sample_keys(256)) {
    const std::string& owner = ring.owner(key);
    EXPECT_TRUE(ring.contains(owner));
    EXPECT_EQ(ring.owner(key), owner) << "same key, same owner";
  }
}

TEST(HashRingTest, DefaultReplicasBalanceTheKeyspace) {
  // With >= 64 virtual nodes per worker, no worker's share of a large
  // random key sample strays past 2x the fair share - the bound the
  // router's throughput scaling (bench_cluster_throughput) relies on.
  ASSERT_GE(HashRing::kDefaultReplicas, 64);
  for (const std::size_t nodes : {2u, 3u, 5u, 8u}) {
    HashRing ring;
    for (std::size_t n = 0; n < nodes; ++n) {
      ring.add_node("shard" + std::to_string(n));
    }
    std::map<std::string, std::size_t> owned;
    const std::vector<std::uint64_t> keys = sample_keys(20000);
    for (const std::uint64_t key : keys) ++owned[ring.owner(key)];

    const double fair = static_cast<double>(keys.size()) /
                        static_cast<double>(nodes);
    for (const auto& [node, count] : owned) {
      EXPECT_GT(static_cast<double>(count), fair * 0.5)
          << node << " of " << nodes << " owns too little";
      EXPECT_LT(static_cast<double>(count), fair * 2.0)
          << node << " of " << nodes << " owns too much";
    }
  }
}

TEST(HashRingTest, RemovingANodeRemapsOnlyItsOwnKeys) {
  // The failover property: when shard1 of 4 dies, survivors keep every
  // key they owned (warm caches stay warm), and exactly the dead node's
  // keys - about 1/4 of the space - move, landing on survivors.
  HashRing ring;
  for (int n = 0; n < 4; ++n) ring.add_node("shard" + std::to_string(n));

  const std::vector<std::uint64_t> keys = sample_keys(20000);
  std::vector<std::string> before;
  before.reserve(keys.size());
  for (const std::uint64_t key : keys) before.push_back(ring.owner(key));

  ASSERT_TRUE(ring.remove_node("shard1"));
  std::size_t remapped = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string& now = ring.owner(keys[i]);
    if (before[i] == "shard1") {
      EXPECT_NE(now, "shard1");
      ++remapped;
    } else {
      EXPECT_EQ(now, before[i])
          << "a survivor's key moved - failover would cold-start it";
    }
  }
  // The dead node owned ~1/4 of the sample (balance gives +/- slack).
  EXPECT_GT(remapped, keys.size() / 8);
  EXPECT_LT(remapped, keys.size() / 2);
}

TEST(HashRingTest, AddingANodeStealsOnlyTheKeysItNowOwns) {
  // The converse direction, same invariant: growth only moves keys onto
  // the new node, never between old nodes.
  HashRing ring;
  for (int n = 0; n < 3; ++n) ring.add_node("shard" + std::to_string(n));
  const std::vector<std::uint64_t> keys = sample_keys(20000);
  std::vector<std::string> before;
  before.reserve(keys.size());
  for (const std::uint64_t key : keys) before.push_back(ring.owner(key));

  ring.add_node("shard3");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string& now = ring.owner(keys[i]);
    if (now != before[i]) {
      EXPECT_EQ(now, "shard3")
          << "keys may move only onto the newly added node";
    }
  }
}

TEST(HashRingTest, RemovalIsInsensitiveToInsertionOrder) {
  // Ring placement depends only on the (id, replica) hashes, so the same
  // membership reached by different histories routes identically - this
  // is what makes ring ids stable across router restarts.
  HashRing forward, reverse;
  const std::vector<std::string> ids = {"alpha", "beta", "gamma", "delta"};
  for (const std::string& id : ids) forward.add_node(id);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) reverse.add_node(*it);
  ASSERT_TRUE(forward.remove_node("beta"));
  ASSERT_TRUE(reverse.remove_node("beta"));
  for (const std::uint64_t key : sample_keys(4096)) {
    EXPECT_EQ(forward.owner(key), reverse.owner(key));
  }
}

TEST(HashRingTest, MembershipEdgeCasesAreStrict) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW((void)ring.owner(1), PreconditionError)
      << "an empty ring has no owner to return";
  EXPECT_THROW(ring.add_node(""), PreconditionError);

  ring.add_node("only");
  EXPECT_THROW(ring.add_node("only"), PreconditionError);
  EXPECT_EQ(ring.owner(0), "only");
  EXPECT_EQ(ring.owner(~std::uint64_t{0}), "only")
      << "wrap-around past the last point lands on the first";

  EXPECT_FALSE(ring.remove_node("never-added"));
  EXPECT_TRUE(ring.remove_node("only"));
  EXPECT_FALSE(ring.remove_node("only")) << "second removal reports absent";
  EXPECT_TRUE(ring.empty());
}

TEST(HashRingTest, ReplicaCountIsValidated) {
  EXPECT_THROW(HashRing(0), PreconditionError);
  EXPECT_THROW(HashRing(-3), PreconditionError);
  HashRing small(1);
  small.add_node("a");
  small.add_node("b");
  EXPECT_EQ(small.node_count(), 2u);
  EXPECT_EQ(small.replicas(), 1);
}

}  // namespace
}  // namespace edea::service
