// Tests for the tiler (src/core/tiler.*): buffer-tile geometry, channel
// slices, kernel groups, and buffer-capacity guarantees for every
// MobileNetV1 layer.
#include <gtest/gtest.h>

#include "core/tiler.hpp"
#include "nn/mobilenet.hpp"
#include "util/check.hpp"

namespace edea::core {
namespace {

nn::DscLayerSpec spec_of(int rows, int ch, int stride, int out_ch) {
  nn::DscLayerSpec s;
  s.in_rows = rows;
  s.in_cols = rows;
  s.in_channels = ch;
  s.stride = stride;
  s.out_channels = out_ch;
  return s;
}

TEST(Tiler, SingleTileWhenOutputFitsBuffer) {
  const Tiler t(EdeaConfig::paper(), spec_of(8, 16, 1, 32));
  EXPECT_EQ(t.tiles().size(), 1u);
  EXPECT_EQ(t.tiles()[0].out_rows, 8);
  EXPECT_EQ(t.tiles()[0].out_cols, 8);
}

TEST(Tiler, LargeLayerSplitsInto8x8OutputTiles) {
  // Layer 0: 32x32 output -> 16 tiles of 8x8 (the Eq. 2 N_tiles factor
  // that produces exactly 1024 GOPS on layers 0-4).
  const Tiler t(EdeaConfig::paper(), spec_of(32, 32, 1, 64));
  EXPECT_EQ(t.tiles().size(), 16u);
  for (const BufferTile& tile : t.tiles()) {
    EXPECT_EQ(tile.out_rows, 8);
    EXPECT_EQ(tile.out_cols, 8);
  }
}

TEST(Tiler, RaggedOutputProducesEdgeTiles) {
  const Tiler t(EdeaConfig::paper(), spec_of(12, 8, 1, 16));
  // 12 = 8 + 4 per dimension -> 4 tiles: 8x8, 8x4, 4x8, 4x4.
  ASSERT_EQ(t.tiles().size(), 4u);
  EXPECT_EQ(t.tiles()[0].out_rows, 8);
  EXPECT_EQ(t.tiles()[0].out_cols, 8);
  EXPECT_EQ(t.tiles()[3].out_rows, 4);
  EXPECT_EQ(t.tiles()[3].out_cols, 4);
}

TEST(Tiler, InputRegionsCoverHalo) {
  const Tiler t(EdeaConfig::paper(), spec_of(16, 8, 1, 16));
  const BufferTile& first = t.tiles()[0];
  EXPECT_EQ(first.in_row0, -1);  // padding halo
  EXPECT_EQ(first.in_rows, 10);  // 8 outputs + 2 halo at stride 1
  const Tiler t2(EdeaConfig::paper(), spec_of(32, 8, 2, 16));
  EXPECT_EQ(t2.tiles()[0].in_rows, 17);  // (8-1)*2 + 3 at stride 2
}

TEST(Tiler, ChannelSlicesOfTd) {
  const Tiler t(EdeaConfig::paper(), spec_of(8, 20, 1, 16));
  ASSERT_EQ(t.slices().size(), 3u);  // 8 + 8 + 4
  EXPECT_EQ(t.slices()[0].channels, 8);
  EXPECT_EQ(t.slices()[2].channel0, 16);
  EXPECT_EQ(t.slices()[2].channels, 4);
}

TEST(Tiler, KernelGroupsOfTk) {
  const Tiler t(EdeaConfig::paper(), spec_of(8, 8, 1, 40));
  ASSERT_EQ(t.kernel_groups().size(), 3u);  // 16 + 16 + 8
  EXPECT_EQ(t.kernel_groups()[2].kernel0, 32);
  EXPECT_EQ(t.kernel_groups()[2].kernels, 8);
}

TEST(Tiler, SpatialStepsCeilOverTnTm) {
  const EdeaConfig cfg = EdeaConfig::paper();
  BufferTile tile;
  tile.out_rows = 7;
  tile.out_cols = 8;
  EXPECT_EQ(tile.spatial_steps(cfg), 4 * 4);  // ceil(7/2) * ceil(8/2)
}

TEST(Tiler, ValidInputElementsClipsToImage) {
  BufferTile tile;
  tile.in_row0 = -1;
  tile.in_col0 = -1;
  tile.in_rows = 10;
  tile.in_cols = 10;
  // 16x16 image: rows -1..8 clip to 0..8 (9 rows), same for cols.
  EXPECT_EQ(tile.valid_input_elements(16, 16), 81);
  // Fully inside.
  tile.in_row0 = 2;
  tile.in_col0 = 2;
  EXPECT_EQ(tile.valid_input_elements(16, 16), 100);
  // Degenerate: fully outside.
  tile.in_row0 = 100;
  EXPECT_EQ(tile.valid_input_elements(16, 16), 0);
}

TEST(Tiler, EveryMobileNetLayerFitsTheModeledBuffers) {
  // The hardware guarantee behind Fig. 4's buffer sizing: for all 13
  // layers, the worst tile input region fits the DWC ifmap buffer and the
  // worst output tile fits the PWC accumulator.
  const EdeaConfig cfg = EdeaConfig::paper();
  for (const auto& spec : nn::mobilenet_dsc_specs()) {
    const Tiler t(cfg, spec);
    EXPECT_LE(t.max_tile_input_bytes(), cfg.dwc_ifmap_buffer_bytes())
        << spec.to_string();
    EXPECT_LE(t.max_tile_psum_entries() * 4, cfg.accumulator_buffer_bytes())
        << spec.to_string();
    EXPECT_LE(std::int64_t{spec.out_channels} * cfg.td,
              cfg.pwc_weight_buffer_bytes())
        << spec.to_string();
  }
}

TEST(Tiler, MobileNetTileCountsMatchEq2) {
  // N_tiles per layer: 16,4,4,1,1,... (ceil(out/8)^2).
  const EdeaConfig cfg = EdeaConfig::paper();
  const auto specs = nn::mobilenet_dsc_specs();
  const std::array<std::size_t, 13> expected{16, 4, 4, 1, 1, 1, 1,
                                             1,  1, 1, 1, 1, 1};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Tiler t(cfg, specs[i]);
    EXPECT_EQ(t.tiles().size(), expected[i]) << "layer " << i;
  }
}

TEST(Tiler, RejectsEmptyOutput) {
  nn::DscLayerSpec bad = spec_of(8, 8, 1, 8);
  bad.in_rows = 0;
  EXPECT_THROW(Tiler(EdeaConfig::paper(), bad), PreconditionError);
}

TEST(EdeaConfig, BufferCapacitiesMatchPaperGeometry) {
  const EdeaConfig cfg = EdeaConfig::paper();
  EXPECT_EQ(cfg.dwc_ifmap_buffer_bytes(), 17 * 17 * 8);
  EXPECT_EQ(cfg.dwc_weight_buffer_bytes(), 2 * 9 * 8);
  EXPECT_EQ(cfg.offline_buffer_bytes(), 2 * 8 * 6);
  EXPECT_EQ(cfg.intermediate_buffer_bytes(), 2 * 2 * 2 * 8);
  EXPECT_EQ(cfg.pwc_weight_buffer_bytes(), 8 * 1024);
  EXPECT_EQ(cfg.accumulator_buffer_bytes(), 4 * 16384);
}

TEST(EdeaConfig, ValidationCatchesBadConfigs) {
  EdeaConfig cfg = EdeaConfig::paper();
  cfg.kernel = 4;  // even kernels unsupported
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = EdeaConfig::paper();
  cfg.max_tile_out = 7;  // not a multiple of Tn
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = EdeaConfig::paper();
  cfg.tn = 0;
  EXPECT_THROW(cfg.validate(), PreconditionError);
}

}  // namespace
}  // namespace edea::core
