// Tests for the Q8.16 fixed-point arithmetic of the Non-Conv unit
// (Sec. III-C: 24-bit k/b, 8 integer + 16 fractional bits).
#include <gtest/gtest.h>

#include <cmath>

#include "arch/fixed_point.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::arch {
namespace {

TEST(Q8_16, EncodesExactValues) {
  EXPECT_EQ(Q8_16::from_double(1.0).raw(), 65536);
  EXPECT_EQ(Q8_16::from_double(0.5).raw(), 32768);
  EXPECT_EQ(Q8_16::from_double(-1.0).raw(), -65536);
  EXPECT_EQ(Q8_16::from_double(0.0).raw(), 0);
}

TEST(Q8_16, RangeIsPlusMinus128) {
  EXPECT_NO_THROW(Q8_16::from_double(127.9999));
  EXPECT_NO_THROW(Q8_16::from_double(-128.0));
  EXPECT_THROW(Q8_16::from_double(128.0), PreconditionError);
  EXPECT_THROW(Q8_16::from_double(-128.001), PreconditionError);
}

TEST(Q8_16, SaturatingEncodeClampsInsteadOfThrowing) {
  EXPECT_EQ(Q8_16::from_double_saturating(500.0).raw(), Q8_16::kMaxRaw);
  EXPECT_EQ(Q8_16::from_double_saturating(-500.0).raw(), Q8_16::kMinRaw);
  EXPECT_EQ(Q8_16::from_double_saturating(1.0).raw(), 65536);
}

TEST(Q8_16, RoundTripErrorBounded) {
  Rng rng(101);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-127.9, 127.9);
    const double back = Q8_16::from_double(v).to_double();
    EXPECT_NEAR(back, v, Q8_16::quantization_step() / 2.0 + 1e-12);
  }
}

TEST(Q8_16, RawRangeValidation) {
  EXPECT_NO_THROW(Q8_16::from_raw(Q8_16::kMaxRaw));
  EXPECT_NO_THROW(Q8_16::from_raw(Q8_16::kMinRaw));
  EXPECT_THROW(Q8_16::from_raw(Q8_16::kMaxRaw + 1), PreconditionError);
  EXPECT_THROW(Q8_16::from_raw(Q8_16::kMinRaw - 1), PreconditionError);
}

TEST(Q8_16, TwentyFourBitEnvelope) {
  // 24 bits total: raw must fit signed 24-bit.
  EXPECT_TRUE(fits_signed_bits(Q8_16::kMaxRaw, 24));
  EXPECT_TRUE(fits_signed_bits(Q8_16::kMinRaw, 24));
  EXPECT_FALSE(fits_signed_bits(Q8_16::kMaxRaw + 1, 24));
}

// ------------------------------------------------------- nonconv_affine ---

TEST(NonConvAffine, IdentityOnUnitScale) {
  const Q8_16 k = Q8_16::from_double(1.0);
  const Q8_16 b = Q8_16::from_double(0.0);
  for (int acc = 0; acc <= 127; ++acc) {
    EXPECT_EQ(nonconv_affine(acc, k, b), acc);
  }
}

TEST(NonConvAffine, ReluClampsNegative) {
  const Q8_16 k = Q8_16::from_double(1.0);
  const Q8_16 b = Q8_16::from_double(0.0);
  EXPECT_EQ(nonconv_affine(-5, k, b), 0);
  EXPECT_EQ(nonconv_affine(-100000, k, b), 0);
}

TEST(NonConvAffine, SaturatesAtInt8Max) {
  const Q8_16 k = Q8_16::from_double(1.0);
  const Q8_16 b = Q8_16::from_double(0.0);
  EXPECT_EQ(nonconv_affine(128, k, b), 127);
  EXPECT_EQ(nonconv_affine(1 << 20, k, b), 127);
}

TEST(NonConvAffine, AppliesScaleAndBias) {
  const Q8_16 k = Q8_16::from_double(0.5);
  const Q8_16 b = Q8_16::from_double(3.0);
  EXPECT_EQ(nonconv_affine(10, k, b), 8);   // 0.5*10 + 3
  EXPECT_EQ(nonconv_affine(100, k, b), 53); // 0.5*100 + 3
}

TEST(NonConvAffine, RoundsHalfUp) {
  const Q8_16 k = Q8_16::from_double(0.25);
  const Q8_16 b = Q8_16::from_double(0.0);
  // 0.25 * 2 = 0.5 -> rounds up to 1 (hardware add-then-truncate).
  EXPECT_EQ(nonconv_affine(2, k, b), 1);
  // 0.25 * 1 = 0.25 -> 0.
  EXPECT_EQ(nonconv_affine(1, k, b), 0);
  // Negative halves floor toward zero after the +0.5 offset:
  // 0.25 * -2 = -0.5 -> -0.5+0.5 = 0 -> clamped 0 anyway with ReLU.
  EXPECT_EQ(nonconv_affine(-2, k, b), 0);
}

TEST(NonConvAffine, CustomClampRange) {
  const Q8_16 k = Q8_16::from_double(1.0);
  const Q8_16 b = Q8_16::from_double(0.0);
  // Without ReLU (symmetric clamp), negatives survive.
  EXPECT_EQ(nonconv_affine(-5, k, b, -128, 127), -5);
  EXPECT_EQ(nonconv_affine(-1000, k, b, -128, 127), -128);
}

TEST(NonConvAffine, MatchesFloatReferenceWithinOneLsb) {
  Rng rng(202);
  int exact = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double kf = rng.uniform(-2.0, 2.0);
    const double bf = rng.uniform(-8.0, 8.0);
    const auto acc = static_cast<std::int32_t>(rng.uniform_int(-150000,
                                                               150000));
    const Q8_16 k = Q8_16::from_double(kf);
    const Q8_16 b = Q8_16::from_double(bf);
    const std::int32_t fixed = nonconv_affine(acc, k, b);
    const double yf = kf * acc + bf;
    const auto ref = static_cast<std::int32_t>(
        std::clamp(std::nearbyint(yf), 0.0, 127.0));
    EXPECT_LE(std::abs(fixed - ref), 1) << "k=" << kf << " b=" << bf
                                        << " acc=" << acc;
    if (fixed == ref) ++exact;
  }
  // The fixed-point path should agree exactly almost always; the <=1 LSB
  // cases come from k's encoding error amplified by large accumulators.
  EXPECT_GT(exact, trials * 95 / 100);
}

TEST(FitsSignedBits, Boundaries) {
  EXPECT_TRUE(fits_signed_bits(8388607, 24));
  EXPECT_FALSE(fits_signed_bits(8388608, 24));
  EXPECT_TRUE(fits_signed_bits(-8388608, 24));
  EXPECT_FALSE(fits_signed_bits(-8388609, 24));
}

}  // namespace
}  // namespace edea::arch
