// differential_test - the seeded cross-backend differential harness for
// the dilated + depth-multiplier operator surface.
//
// A generator derives a few hundred random-but-valid layer stacks from one
// seed, sweeping every operator dimension at once (spatial shape x input
// channels x stride x dilation x depth multiplier x output channels x
// batch x tile parallelism), and pins four contracts on every one of them:
//   (1) bit-exact outputs across the "edea" and "serialized" backends -
//       per layer, final tensor, and summary content hash,
//   (2) the Fig. 3 ordering: the serialized round-trip dataflow moves
//       strictly more data through external memory and is never faster,
//   (3) summary purity: a run's RunSummary (peak_arena_bytes included) is
//       a pure function of (specs, input shape, batch) - tile parallelism
//       and weight values never move the peak,
//   (4) batch-vs-sequential identity: run_network_batch is bit-identical
//       per image to standalone run_network calls,
//   (5) kernel-dispatch identity: every spec runs once through the
//       shape-specialized fast-path kernels (KernelPolicy::kAuto) and
//       once forced onto the generic reference loops
//       (KernelPolicy::kForceGeneric), and everything observable -
//       outputs, timing, MAC activity, buffer/dataflow/external
//       counters, summaries - must be bit-identical.
// Every failure names its case as a reproducible one-liner (the generator
// seed plus the full spec list), so a red run can be replayed standalone.
//
// The seed defaults to a fixed value and can be overridden through the
// EDEA_DIFF_SEED environment variable - CI runs the harness twice, once
// pinned and once with a per-run seed, so the pinned leg stays
// reproducible while the drifting leg keeps exploring.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/sweep_runner.hpp"
#include "nn/layers.hpp"
#include "nn/model_zoo.hpp"
#include "service/session.hpp"
#include "service/simulation_service.hpp"
#include "service/transport.hpp"
#include "util/random.hpp"

namespace edea::core {
namespace {

/// The harness seed: EDEA_DIFF_SEED when set (decimal), else pinned.
std::uint64_t harness_seed() {
  const char* env = std::getenv("EDEA_DIFF_SEED");
  if (env == nullptr || *env == '\0') return 20250807ull;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  EXPECT_TRUE(end != nullptr && *end == '\0')
      << "EDEA_DIFF_SEED must be a decimal integer, got '" << env << "'";
  return parsed;
}

/// One generated case: a layer stack plus the execution knobs swept with
/// it. Weight/input seeds are derived from the harness seed per case.
struct GeneratedCase {
  std::vector<nn::DscLayerSpec> specs;
  std::uint64_t weight_seed = 0;
  std::uint64_t input_seed = 0;
  int batch = 1;
  int tile_parallelism = 1;
};

std::string spec_one_liner(const nn::DscLayerSpec& s) {
  std::ostringstream line;
  line << "in=" << s.in_rows << "x" << s.in_cols << "x" << s.in_channels
       << ",k=" << s.kernel << ",s=" << s.stride << ",p=" << s.padding
       << ",d=" << s.dilation << ",m=" << s.depth_multiplier
       << ",K=" << s.out_channels;
  return line.str();
}

/// The reproducible one-liner a failing case prints: everything needed to
/// rebuild the exact workload without rerunning the generator.
std::string case_one_liner(const GeneratedCase& c, std::uint64_t seed,
                           std::size_t index) {
  std::ostringstream line;
  line << "differential case seed=" << seed << " index=" << index
       << " weight_seed=" << c.weight_seed << " input_seed=" << c.input_seed
       << " batch=" << c.batch << " tile_parallelism=" << c.tile_parallelism
       << " layers=[";
  for (std::size_t i = 0; i < c.specs.size(); ++i) {
    if (i != 0) line << "; ";
    line << spec_one_liner(c.specs[i]);
  }
  line << "]";
  return line.str();
}

/// One random valid layer on top of the given input shape. Dilation is
/// clamped so the (possibly unpadded) input still yields a non-empty
/// output, mirroring the Tiler's own feasibility rule.
nn::DscLayerSpec random_layer(Rng& rng, int index, int in_rows, int in_cols,
                              int in_channels) {
  nn::DscLayerSpec spec;
  spec.index = index;
  spec.in_rows = in_rows;
  spec.in_cols = in_cols;
  spec.in_channels = in_channels;
  spec.kernel = 3;
  spec.stride = rng.bernoulli(0.4) ? 2 : 1;
  spec.dilation = static_cast<int>(rng.uniform_int(1, 3));
  spec.depth_multiplier = static_cast<int>(rng.uniform_int(1, 3));
  spec.out_channels = static_cast<int>(rng.uniform_int(1, 20));
  const int padding_choice = static_cast<int>(rng.uniform_int(0, 2));
  spec.padding = padding_choice == 2 ? spec.dilation : padding_choice;
  // Non-empty output: in + 2p must cover one dilated kernel footprint.
  const int in_min = std::min(in_rows, in_cols);
  while (spec.dilation > 1 &&
         (spec.kernel - 1) * spec.dilation + 1 > in_min + 2 * spec.padding) {
    --spec.dilation;
  }
  return spec;
}

GeneratedCase random_case(Rng& rng) {
  GeneratedCase c;
  c.weight_seed = rng();
  c.input_seed = rng();
  c.batch = static_cast<int>(rng.uniform_int(1, 3));
  const int tp_choice = static_cast<int>(rng.uniform_int(0, 2));
  c.tile_parallelism = tp_choice == 0 ? 1 : (tp_choice == 1 ? 2 : 4);

  int rows = static_cast<int>(rng.uniform_int(5, 14));
  int cols = static_cast<int>(rng.uniform_int(5, 14));
  int channels = static_cast<int>(rng.uniform_int(1, 12));
  const int depth = static_cast<int>(rng.uniform_int(1, 3));
  for (int l = 0; l < depth; ++l) {
    nn::DscLayerSpec spec = random_layer(rng, l, rows, cols, channels);
    if (spec.out_rows() < 1 || spec.out_cols() < 1) break;  // chain shrank out
    c.specs.push_back(spec);
    rows = spec.out_rows();
    cols = spec.out_cols();
    channels = spec.out_channels;
    if (rows < 3 || cols < 3) break;  // too small to stack another 3x3
  }
  return c;
}

nn::Int8Tensor random_input(const nn::DscLayerSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  nn::Int8Tensor input(
      nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return input;
}

std::int64_t total_external_accesses(const NetworkRunResult& result) {
  std::int64_t total = 0;
  for (const auto& layer : result.layers) {
    total += layer.external.total_accesses();
  }
  return total;
}

/// The generated corpus, built once per process: enough cases that the
/// swept layer specs number in the hundreds (the floor is asserted by
/// GeneratorCoversTheOperatorSurface below).
const std::vector<GeneratedCase>& corpus() {
  static const std::vector<GeneratedCase> cases = [] {
    const std::uint64_t seed = harness_seed();
    Rng rng(seed);
    std::vector<GeneratedCase> generated;
    std::size_t total_specs = 0;
    while (total_specs < 220 && generated.size() < 400) {
      GeneratedCase c = random_case(rng);
      if (c.specs.empty()) continue;
      total_specs += c.specs.size();
      generated.push_back(std::move(c));
    }
    return generated;
  }();
  return cases;
}

TEST(DifferentialTest, GeneratorCoversTheOperatorSurface) {
  // The acceptance floor: at least 200 generated layer specs, and every
  // swept dimension actually exercised at a non-default value (a generator
  // regression that silently pins stride or dilation to 1 must go red
  // here, not quietly weaken the other tests).
  std::size_t total_specs = 0;
  bool strided = false, dilated = false, multiplied = false;
  bool batched = false, tiled = false, padless = false, stacked = false;
  for (const GeneratedCase& c : corpus()) {
    total_specs += c.specs.size();
    batched = batched || c.batch > 1;
    tiled = tiled || c.tile_parallelism > 1;
    stacked = stacked || c.specs.size() > 1;
    for (const nn::DscLayerSpec& s : c.specs) {
      strided = strided || s.stride > 1;
      dilated = dilated || s.dilation > 1;
      multiplied = multiplied || s.depth_multiplier > 1;
      padless = padless || s.padding == 0;
    }
  }
  EXPECT_GE(total_specs, 200u);
  EXPECT_TRUE(strided);
  EXPECT_TRUE(dilated);
  EXPECT_TRUE(multiplied);
  EXPECT_TRUE(batched);
  EXPECT_TRUE(tiled);
  EXPECT_TRUE(padless);
  EXPECT_TRUE(stacked);
}

TEST(DifferentialTest, GeneratedCasesAreBitExactAcrossBackendsWithOrdering) {
  const std::uint64_t seed = harness_seed();
  for (std::size_t i = 0; i < corpus().size(); ++i) {
    const GeneratedCase& c = corpus()[i];
    SCOPED_TRACE(case_one_liner(c, seed, i));
    const auto layers = nn::make_random_quant_network(c.specs, c.weight_seed);
    const nn::Int8Tensor input = random_input(c.specs.front(), c.input_seed);

    std::unique_ptr<AcceleratorBackend> edea = make_backend("edea");
    std::unique_ptr<AcceleratorBackend> serialized =
        make_backend("serialized");
    edea->set_tile_parallelism(c.tile_parallelism);
    serialized->set_tile_parallelism(c.tile_parallelism);
    const NetworkRunResult fast = edea->run_network(layers, input);
    const NetworkRunResult slow = serialized->run_network(layers, input);

    // (1) bit-exact outputs: per layer, final tensor, summary hash.
    ASSERT_EQ(fast.layers.size(), slow.layers.size());
    ASSERT_EQ(fast.output.storage(), slow.output.storage());
    for (std::size_t l = 0; l < fast.layers.size(); ++l) {
      SCOPED_TRACE("layer " + std::to_string(l));
      EXPECT_EQ(fast.layers[l].output.storage(),
                slow.layers[l].output.storage());
    }
    const RunSummary fast_summary = fast.summary(1.0);
    const RunSummary slow_summary = slow.summary(1.0);
    EXPECT_EQ(fast_summary.output_hash, slow_summary.output_hash);
    EXPECT_EQ(fast_summary.total_ops, slow_summary.total_ops);

    // (2) Fig. 3 ordering on every generated point, not just the zoo.
    EXPECT_GT(total_external_accesses(slow), total_external_accesses(fast));
    EXPECT_GE(slow_summary.total_cycles, fast_summary.total_cycles);
  }
}

TEST(DifferentialTest, SummaryIsAPureFunctionOfSpecsAndBatch) {
  const std::uint64_t seed = harness_seed();
  // A spread across the corpus is enough: purity failures are systematic,
  // not per-case.
  for (std::size_t i = 0; i < corpus().size(); i += 7) {
    const GeneratedCase& c = corpus()[i];
    SCOPED_TRACE(case_one_liner(c, seed, i));
    const auto layers = nn::make_random_quant_network(c.specs, c.weight_seed);
    const nn::Int8Tensor input = random_input(c.specs.front(), c.input_seed);

    for (const char* backend_id : {"edea", "serialized"}) {
      SCOPED_TRACE(std::string("backend ") + backend_id);
      // (3a) tile parallelism never moves any summary field.
      std::unique_ptr<AcceleratorBackend> serial = make_backend(backend_id);
      std::unique_ptr<AcceleratorBackend> wide = make_backend(backend_id);
      wide->set_tile_parallelism(4);
      const RunSummary reference = serial->run_network(layers, input).summary(1.0);
      EXPECT_EQ(wide->run_network(layers, input).summary(1.0), reference);

      // (3b) re-running the identical job is deterministic.
      EXPECT_EQ(serial->run_network(layers, input).summary(1.0), reference);

      // (3c) the arena peak depends on geometry only: the same specs with
      // different weights plan the same arena.
      const auto other_weights =
          nn::make_random_quant_network(c.specs, c.weight_seed ^ 1);
      const RunSummary reweighted =
          make_backend(backend_id)->run_network(other_weights, input).summary(
              1.0);
      EXPECT_EQ(reweighted.peak_arena_bytes, reference.peak_arena_bytes);
      EXPECT_EQ(reweighted.total_cycles, reference.total_cycles);
    }
  }
}

TEST(DifferentialTest, BatchedRunsAreBitIdenticalToSequential) {
  const std::uint64_t seed = harness_seed();
  for (std::size_t i = 0; i < corpus().size(); i += 5) {
    const GeneratedCase& c = corpus()[i];
    if (c.batch < 2) continue;
    SCOPED_TRACE(case_one_liner(c, seed, i));
    const auto layers = nn::make_random_quant_network(c.specs, c.weight_seed);
    const nn::Int8Tensor input = random_input(c.specs.front(), c.input_seed);

    for (const char* backend_id : {"edea", "serialized"}) {
      SCOPED_TRACE(std::string("backend ") + backend_id);
      std::unique_ptr<AcceleratorBackend> backend = make_backend(backend_id);
      backend->set_tile_parallelism(c.tile_parallelism);
      const NetworkRunResult standalone = backend->run_network(layers, input);
      const std::vector<NetworkRunResult> batched =
          backend->run_network_batch(layers, input, c.batch);
      ASSERT_EQ(batched.size(), static_cast<std::size_t>(c.batch));
      for (int image = 0; image < c.batch; ++image) {
        SCOPED_TRACE("image " + std::to_string(image));
        const NetworkRunResult& r = batched[image];
        // (4) per-image arithmetic and measurements are bit-identical to
        // the standalone run; only the arena peak may reflect the batched
        // plan - and identically so for every image of the batch.
        EXPECT_EQ(r.output.storage(), standalone.output.storage());
        EXPECT_EQ(r.total_cycles(), standalone.total_cycles());
        EXPECT_EQ(total_external_accesses(r),
                  total_external_accesses(standalone));
        EXPECT_EQ(r.peak_arena_bytes, batched.front().peak_arena_bytes);
      }
    }
  }
}

TEST(DifferentialTest, SpecializedKernelsAreBitIdenticalToGeneric) {
  // The kernel-dispatch axis: every generated spec - strided, dilated,
  // multiplied, padless, stacked - runs through the specialized fast-path
  // kernels and through the forced-generic reference loops, on both
  // backends. "Bit-identical" here is total: not just tensors, but every
  // per-layer measurement the simulator emits. A specialized kernel that
  // tallies MacActivity differently from the per-multiply reference -
  // even while computing the right numbers - must go red here.
  const std::uint64_t seed = harness_seed();
  for (std::size_t i = 0; i < corpus().size(); ++i) {
    const GeneratedCase& c = corpus()[i];
    SCOPED_TRACE(case_one_liner(c, seed, i));
    const auto layers = nn::make_random_quant_network(c.specs, c.weight_seed);
    const nn::Int8Tensor input = random_input(c.specs.front(), c.input_seed);

    for (const char* backend_id : {"edea", "serialized"}) {
      SCOPED_TRACE(std::string("backend ") + backend_id);
      std::unique_ptr<AcceleratorBackend> fast = make_backend(backend_id);
      std::unique_ptr<AcceleratorBackend> generic = make_backend(backend_id);
      fast->set_tile_parallelism(c.tile_parallelism);
      generic->set_tile_parallelism(c.tile_parallelism);
      fast->set_kernel_policy(KernelPolicy::kAuto);
      generic->set_kernel_policy(KernelPolicy::kForceGeneric);
      const NetworkRunResult specialized = fast->run_network(layers, input);
      const NetworkRunResult reference = generic->run_network(layers, input);

      ASSERT_EQ(specialized.layers.size(), reference.layers.size());
      ASSERT_EQ(specialized.output.storage(), reference.output.storage());
      EXPECT_EQ(specialized.peak_arena_bytes, reference.peak_arena_bytes);
      EXPECT_EQ(specialized.summary(1.0), reference.summary(1.0));
      for (std::size_t l = 0; l < specialized.layers.size(); ++l) {
        SCOPED_TRACE("layer " + std::to_string(l));
        const LayerRunResult& s = specialized.layers[l];
        const LayerRunResult& r = reference.layers[l];
        EXPECT_EQ(s.output.storage(), r.output.storage());
        EXPECT_EQ(s.timing, r.timing);
        EXPECT_EQ(s.dwc_activity, r.dwc_activity);
        EXPECT_EQ(s.pwc_activity, r.pwc_activity);
        EXPECT_EQ(s.nonconv_transfer_ops, r.nonconv_transfer_ops);
        EXPECT_EQ(s.nonconv_writeback_ops, r.nonconv_writeback_ops);
        EXPECT_EQ(s.buffers, r.buffers);
        EXPECT_EQ(s.dataflow, r.dataflow);
        EXPECT_EQ(s.external, r.external);
        EXPECT_EQ(s.dwc_input_zero_fraction, r.dwc_input_zero_fraction);
        EXPECT_EQ(s.pwc_input_zero_fraction, r.pwc_input_zero_fraction);
        EXPECT_EQ(s.max_abs_psum, r.max_abs_psum);
      }
    }
  }
}

TEST(DifferentialTest, WiderKernelConfigsAgreeAcrossBackends) {
  // The kernel dimension of the sweep: a 5x5 datapath configuration. Both
  // backends must agree on each point's feasibility, and on every feasible
  // point the usual bit-exactness + ordering contract holds.
  const std::uint64_t seed = harness_seed();
  Rng rng(seed ^ 0xD1FFE6E2ull);
  for (int i = 0; i < 12; ++i) {
    EdeaConfig config;
    config.kernel = 5;
    nn::DscLayerSpec spec;
    spec.kernel = 5;
    spec.in_rows = static_cast<int>(rng.uniform_int(7, 14));
    spec.in_cols = static_cast<int>(rng.uniform_int(7, 14));
    spec.in_channels = static_cast<int>(rng.uniform_int(1, 10));
    spec.stride = rng.bernoulli(0.5) ? 2 : 1;
    spec.dilation = static_cast<int>(rng.uniform_int(1, 2));
    spec.depth_multiplier = static_cast<int>(rng.uniform_int(1, 2));
    spec.out_channels = static_cast<int>(rng.uniform_int(1, 12));
    spec.padding = 2 * spec.dilation;  // 'same'-style for the 5x5 footprint
    SCOPED_TRACE("5x5 case " + std::to_string(i) + ": " +
                 spec_one_liner(spec));

    const std::vector<nn::DscLayerSpec> specs{spec};
    const auto layers = nn::make_random_quant_network(specs, rng());
    const nn::Int8Tensor input = random_input(spec, rng());

    SweepJob job;
    job.name = "k5-" + std::to_string(i);
    job.config = config;
    job.layers = &layers;
    job.input = &input;
    job.backend = "edea";
    const SweepOutcome fast = evaluate_job(job);
    job.backend = "serialized";
    const SweepOutcome slow = evaluate_job(job);

    ASSERT_EQ(fast.ok, slow.ok) << "edea: " << fast.error
                                << " / serialized: " << slow.error;
    if (!fast.ok) continue;  // infeasible on both - agreement is the claim
    EXPECT_EQ(fast.result.output.storage(), slow.result.output.storage());
    EXPECT_GT(total_external_accesses(slow.result),
              total_external_accesses(fast.result));
    EXPECT_GE(slow.result.total_cycles(), fast.result.total_cycles());
  }
}

}  // namespace
}  // namespace edea::core

// --- the new zoo networks end to end through protocol + persisted cache ----

namespace edea::service {
namespace {

/// The scripted stream: both inverted-residual networks, the dilation and
/// depth-multiplier request keys (each a distinct cache key), a repeat
/// that must hit, and a serialized-backend point.
std::vector<std::string> inverted_residual_stream() {
  return {
      "# dilated/multiplied inverted-residual session",
      "run mobilenet-v2 seed=7 td=16",
      "run mobilenet-v2 seed=7 td=16 dilation=2",
      "run mobilenet-v2 seed=7 td=16 depth_multiplier=2",
      "run mobilenet-v2 seed=7 td=16 dilation=2",  // repeat -> hit
      "run efficientnet-b0 seed=7 td=16 dilation=2",
      "run efficientnet-b0 seed=7 td=16 dilation=2 backend=serialized",
      "stats",
  };
}

std::vector<std::string> serve_stdio(SimulationService& svc,
                                     const std::vector<std::string>& lines) {
  std::ostringstream joined;
  for (const std::string& line : lines) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;
  StdioStream stream(in, out);
  WorkloadCatalog catalog;
  (void)Session(svc, catalog).serve(stream);

  std::vector<std::string> responses;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) responses.push_back(line);
  return responses;
}

std::string token_of(const std::string& line, const std::string& key) {
  const std::size_t at = line.find(" " + key + "=");
  if (at == std::string::npos) return "";
  const std::size_t begin = at + key.size() + 2;
  const std::size_t end = line.find(' ', begin);
  return line.substr(begin, end == std::string::npos ? end : end - begin);
}

TEST(DifferentialServiceTest, NewZooNetworksFlowThroughProtocolAndCache) {
  const std::string path =
      testing::TempDir() + "edea_differential_replay.cache";
  std::remove(path.c_str());

  // First life: every distinct (network, dilation, depth_multiplier,
  // backend) key simulates once; the repeat hits.
  std::vector<std::string> first;
  {
    SimulationService svc;
    first = serve_stdio(svc, inverted_residual_stream());
    ASSERT_EQ(first.size(), 7u);
    // The transform knobs are echoed only when non-default...
    EXPECT_EQ(token_of(first[0], "dilation"), "");
    EXPECT_EQ(token_of(first[1], "dilation"), "2");
    EXPECT_EQ(token_of(first[2], "depth_multiplier"), "2");
    // ...and each transform computes something else entirely.
    EXPECT_NE(token_of(first[0], "out"), token_of(first[1], "out"));
    EXPECT_NE(token_of(first[0], "out"), token_of(first[2], "out"));
    EXPECT_NE(token_of(first[1], "out"), token_of(first[2], "out"));
    // Distinct keys miss; the repeated dilated request hits.
    EXPECT_EQ(token_of(first[1], "cache"), "miss");
    EXPECT_EQ(token_of(first[3], "cache"), "hit");
    EXPECT_EQ(token_of(first[3], "out"), token_of(first[1], "out"));
    // The cross-backend contract holds through the whole service stack.
    EXPECT_EQ(token_of(first[4], "out"), token_of(first[5], "out"));
    EXPECT_NE(token_of(first[4], "cycles"), token_of(first[5], "cycles"));
    EXPECT_EQ(first[6],
              "stats hits=1 misses=5 evictions=0 entries=5 inflight=0");
    EXPECT_EQ(svc.save_cache(path), 5u);
  }

  // Second life: a restarted service replays every run request
  // summary-only from the persisted (format v4) entries - the dilation and
  // depth-multiplier key fields survive the file round trip.
  SimulationService svc;
  EXPECT_EQ(svc.load_cache(path), 5u);
  const std::vector<std::string> replay =
      serve_stdio(svc, inverted_residual_stream());
  ASSERT_EQ(replay.size(), first.size());
  for (std::size_t i = 0; i + 1 < replay.size(); ++i) {
    SCOPED_TRACE("response " + std::to_string(i));
    if (token_of(first[i], "cache").empty()) {
      EXPECT_EQ(replay[i], first[i]);
      continue;
    }
    EXPECT_EQ(token_of(replay[i], "cache"), "hit") << replay[i];
    std::string expected_line = first[i];
    const std::size_t at = expected_line.find("cache=miss");
    if (at != std::string::npos) expected_line.replace(at, 10, "cache=hit");
    EXPECT_EQ(replay[i], expected_line);
  }
  EXPECT_EQ(replay.back(),
            "stats hits=6 misses=0 evictions=0 entries=5 inflight=0");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edea::service
