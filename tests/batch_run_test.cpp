// batch_run_test - the batched-execution contract of
// AcceleratorBackend::run_network_batch: every per-image result of a
// batch=N run is bit-identical to N standalone run_network calls (batching
// amortizes planning/setup, never arithmetic), the batched arena peak
// grows with batch while staying tile-parallelism-invariant, and every
// planner-backed backend reports a non-zero peak_arena_bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "nn/model_zoo.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::core {
namespace {

constexpr double kClockGhz = 1.0;

nn::Int8Tensor random_input(const nn::DscLayerSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  nn::Int8Tensor input(
      nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return input;
}

std::vector<nn::QuantDscLayer> test_network() {
  return nn::make_random_quant_network(nn::zoo_specs("edeanet-64"), 7);
}

/// Everything except peak_arena_bytes, which legitimately reflects the
/// batched plan rather than the single-image one.
void expect_same_measurements(const NetworkRunResult& got,
                              const NetworkRunResult& want) {
  const RunSummary g = got.summary(kClockGhz);
  const RunSummary w = want.summary(kClockGhz);
  EXPECT_EQ(g.layer_count, w.layer_count);
  EXPECT_EQ(g.total_cycles, w.total_cycles);
  EXPECT_EQ(g.total_ops, w.total_ops);
  EXPECT_EQ(g.average_gops, w.average_gops);
  EXPECT_EQ(g.output_hash, w.output_hash);
  EXPECT_EQ(got.output.storage(), want.output.storage());
  ASSERT_EQ(got.layers.size(), want.layers.size());
  for (std::size_t l = 0; l < got.layers.size(); ++l) {
    SCOPED_TRACE("layer " + std::to_string(l));
    EXPECT_EQ(got.layers[l].output.storage(), want.layers[l].output.storage());
    EXPECT_EQ(got.layers[l].timing, want.layers[l].timing);
    EXPECT_EQ(got.layers[l].buffers, want.layers[l].buffers);
    EXPECT_EQ(got.layers[l].dataflow, want.layers[l].dataflow);
    EXPECT_EQ(got.layers[l].external, want.layers[l].external);
    EXPECT_EQ(got.layers[l].max_abs_psum, want.layers[l].max_abs_psum);
    EXPECT_EQ(got.layers[l].dwc_input_zero_fraction,
              want.layers[l].dwc_input_zero_fraction);
    EXPECT_EQ(got.layers[l].pwc_input_zero_fraction,
              want.layers[l].pwc_input_zero_fraction);
  }
}

TEST(BatchRun, EveryBackendMatchesSequentialRuns) {
  const std::vector<nn::QuantDscLayer> layers = test_network();
  const nn::Int8Tensor input = random_input(layers.front().spec, 21);
  for (const std::string& id : backend_ids()) {
    SCOPED_TRACE("backend " + id);
    const NetworkRunResult reference =
        make_backend(id)->run_network(layers, input);
    const std::vector<NetworkRunResult> batched =
        make_backend(id)->run_network_batch(layers, input, 3);
    ASSERT_EQ(batched.size(), 3u);
    for (std::size_t b = 0; b < batched.size(); ++b) {
      SCOPED_TRACE("image " + std::to_string(b));
      expect_same_measurements(batched[b], reference);
    }
  }
}

TEST(BatchRun, BatchedRunIsTileParallelismInvariant) {
  const std::vector<nn::QuantDscLayer> layers = test_network();
  const nn::Int8Tensor input = random_input(layers.front().spec, 5);
  auto serial = make_backend("edea");
  auto parallel = make_backend("edea");
  parallel->set_tile_parallelism(4);
  const auto a = serial->run_network_batch(layers, input, 2);
  const auto b = parallel->run_network_batch(layers, input, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("image " + std::to_string(i));
    // Full summary equality INCLUDING peak_arena_bytes: the activation
    // plan is a pure function of (network, batch), never of worker count.
    EXPECT_EQ(a[i].summary(kClockGhz), b[i].summary(kClockGhz));
    EXPECT_EQ(a[i].output.storage(), b[i].output.storage());
  }
}

TEST(BatchRun, PeakArenaBytesIsReportedAndGrowsWithBatch) {
  const std::vector<nn::QuantDscLayer> layers = test_network();
  const nn::Int8Tensor input = random_input(layers.front().spec, 9);
  for (const std::string& id : backend_ids()) {
    SCOPED_TRACE("backend " + id);
    const NetworkRunResult single =
        make_backend(id)->run_network(layers, input);
    EXPECT_GT(single.peak_arena_bytes, 0u);
    EXPECT_EQ(single.summary(kClockGhz).peak_arena_bytes,
              static_cast<std::uint64_t>(single.peak_arena_bytes));
  }
  // The edea backend plans the whole batch into one arena, so a larger
  // batch means more simultaneously-live activations.
  const auto b1 = make_backend("edea")->run_network_batch(layers, input, 1);
  const auto b4 = make_backend("edea")->run_network_batch(layers, input, 4);
  EXPECT_GT(b4.front().peak_arena_bytes, b1.front().peak_arena_bytes);
  EXPECT_EQ(b1.front().peak_arena_bytes,
            make_backend("edea")->run_network(layers, input).peak_arena_bytes);
}

TEST(BatchRun, RejectsNonPositiveBatch) {
  const std::vector<nn::QuantDscLayer> layers = test_network();
  const nn::Int8Tensor input = random_input(layers.front().spec, 3);
  for (const std::string& id : backend_ids()) {
    SCOPED_TRACE("backend " + id);
    auto backend = make_backend(id);
    EXPECT_THROW((void)backend->run_network_batch(layers, input, 0),
                 PreconditionError);
    EXPECT_THROW((void)backend->run_network_batch(layers, input, -2),
                 PreconditionError);
  }
}

}  // namespace
}  // namespace edea::core
