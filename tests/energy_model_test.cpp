// Tests for the event-level energy model (src/model/energy_model.*).
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "model/energy_model.hpp"
#include "nn/model_zoo.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::model {
namespace {

core::LayerRunResult run_sample_layer(double sparsity, std::uint64_t seed) {
  nn::DscLayerSpec spec;
  spec.in_rows = spec.in_cols = 8;
  spec.in_channels = 32;
  spec.out_channels = 64;
  Rng rng(seed);
  const nn::FloatDscLayer fl = nn::make_random_float_layer(spec, rng);
  const nn::QuantDscLayer layer = nn::quantize_layer(
      fl, nn::QuantScale{0.02f}, nn::QuantScale{0.03f},
      nn::QuantScale{0.03f});
  nn::Int8Tensor input(nn::Shape{8, 8, 32});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(sparsity)
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(1, 127));
  }
  core::EdeaAccelerator accel;
  return accel.run_layer(layer, input);
}

TEST(EnergyModel, DefaultParamsAreOrdered) {
  const EnergyParams p{};
  // Memory-hierarchy sanity: external >> SRAM, gated MAC << active MAC.
  EXPECT_GT(p.external_access_pj, 10 * p.sram_access_pj);
  EXPECT_LT(p.mac_gated_pj, p.mac_pj / 2);
}

TEST(EnergyModel, RejectsInvalidParams) {
  EnergyParams p;
  p.mac_pj = -1.0;
  EXPECT_THROW(EnergyModel{p}, PreconditionError);
  EnergyParams q;
  q.mac_gated_pj = q.mac_pj * 2;
  EXPECT_THROW(EnergyModel{q}, PreconditionError);
}

TEST(EnergyModel, AccountsAllComponents) {
  const auto r = run_sample_layer(0.4, 1);
  const EnergyModel m;
  const EnergyBreakdown e = m.account(r);
  EXPECT_GT(e.dwc_mac_pj, 0.0);
  EXPECT_GT(e.pwc_mac_pj, 0.0);
  EXPECT_GT(e.nonconv_pj, 0.0);
  EXPECT_GT(e.sram_pj, 0.0);
  EXPECT_GT(e.external_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.total_pj(), e.on_chip_pj() + e.external_pj);
}

TEST(EnergyModel, SparserInputsCostLess) {
  // Zero-operand gating: the same layer at higher input sparsity must burn
  // less MAC energy (Fig. 11's mechanism, bottom-up).
  const auto dense = run_sample_layer(0.0, 2);
  const auto sparse = run_sample_layer(0.9, 2);
  const EnergyModel m;
  EXPECT_GT(m.account(dense).dwc_mac_pj, m.account(sparse).dwc_mac_pj);
  EXPECT_GT(m.account(dense).pwc_mac_pj, m.account(sparse).pwc_mac_pj);
}

TEST(EnergyModel, PwcDominatesMacEnergy) {
  // The PWC engine does ~8x the MACs of the DWC engine on this layer
  // (K=64 vs 9 taps) - its energy share must reflect that.
  const auto r = run_sample_layer(0.3, 3);
  const EnergyModel m;
  const EnergyBreakdown e = m.account(r);
  EXPECT_GT(e.pwc_mac_pj, 3.0 * e.dwc_mac_pj);
}

TEST(EnergyModel, OnChipPowerIsFiniteAndPositive) {
  const auto r = run_sample_layer(0.4, 4);
  const EnergyModel m;
  const double mw = m.on_chip_power_mw(r, 1.0);
  EXPECT_GT(mw, 0.0);
  EXPECT_LT(mw, 10000.0);
}

TEST(EnergyModel, CalibrationHitsTheTarget) {
  const auto r = run_sample_layer(0.4, 5);
  const EnergyModel base;
  const double target = 2.0 * base.account(r).on_chip_pj();
  const EnergyModel cal = base.calibrated_to(r, target);
  EXPECT_NEAR(cal.account(r).on_chip_pj(), target, target * 1e-9);
  // External energy must be untouched by calibration.
  EXPECT_DOUBLE_EQ(cal.account(r).external_pj, base.account(r).external_pj);
}

TEST(EnergyModel, CalibrationRejectsBadTargets) {
  const auto r = run_sample_layer(0.4, 6);
  const EnergyModel m;
  EXPECT_THROW((void)m.calibrated_to(r, 0.0), PreconditionError);
  EXPECT_THROW((void)m.calibrated_to(r, -5.0), PreconditionError);
}

TEST(EnergyModel, BreakdownAccumulates) {
  EnergyBreakdown a;
  a.sram_pj = 1.0;
  a.external_pj = 2.0;
  EnergyBreakdown b;
  b.sram_pj = 3.0;
  b.pwc_mac_pj = 4.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.sram_pj, 4.0);
  EXPECT_DOUBLE_EQ(a.pwc_mac_pj, 4.0);
  EXPECT_DOUBLE_EQ(a.total_pj(), 10.0);
}

TEST(EnergyModel, ExternalDominatesWithoutStreaming) {
  // With default event energies, the external round trip the paper
  // eliminates would be a first-order energy item: external pJ per element
  // is ~170x an SRAM access.
  const auto r = run_sample_layer(0.4, 7);
  const EnergyModel m;
  const EnergyBreakdown e = m.account(r);
  // Even in streaming mode, external traffic (ifmap + weights + ofmap) is
  // a visible share:
  EXPECT_GT(e.external_pj, 0.1 * e.total_pj());
}

}  // namespace
}  // namespace edea::model
