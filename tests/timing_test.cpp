// Tests for the analytic timing model (Eq. 1 / Eq. 2) - including the
// paper's exact published per-layer latency and throughput series
// (Fig. 10 and Fig. 13).
#include <gtest/gtest.h>

#include "core/timing.hpp"
#include "nn/mobilenet.hpp"
#include "util/check.hpp"

namespace edea::core {
namespace {

nn::DscLayerSpec spec_of(int rows, int ch, int stride, int out_ch) {
  nn::DscLayerSpec s;
  s.in_rows = rows;
  s.in_cols = rows;
  s.in_channels = ch;
  s.stride = stride;
  s.out_channels = out_ch;
  return s;
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 2), 5);
  EXPECT_EQ(ceil_div(11, 2), 6);
  EXPECT_EQ(ceil_div(1, 16), 1);
  EXPECT_EQ(ceil_div(16, 16), 1);
  EXPECT_EQ(ceil_div(17, 16), 2);
}

TEST(TimingModel, TilePassCyclesEq1) {
  const TimingModel tm{EdeaConfig::paper()};
  // Eq. 1: 9 + ceil(N/2)*ceil(M/2)*ceil(K/16).
  EXPECT_EQ(tm.tile_pass_cycles(8, 8, 512), 9 + 16 * 32);
  EXPECT_EQ(tm.tile_pass_cycles(2, 2, 1024), 9 + 1 * 64);
  EXPECT_EQ(tm.tile_pass_cycles(4, 4, 512), 9 + 4 * 32);
  EXPECT_EQ(tm.tile_pass_cycles(3, 3, 8), 9 + 4 * 1);  // ragged + small K
}

TEST(TimingModel, LayerTimingEq2) {
  const TimingModel tm{EdeaConfig::paper()};
  // Layer 6 (4x4x512 -> 512): one tile, 64 slices, pass = 137 cycles.
  const LayerTiming t = tm.layer_timing(spec_of(4, 512, 1, 512));
  EXPECT_EQ(t.passes, 64);
  EXPECT_EQ(t.init_cycles, 64 * 9);
  EXPECT_EQ(t.compute_cycles, 64 * 128);
  EXPECT_EQ(t.total_cycles, 64 * 137);
  EXPECT_EQ(t.dwc_active_cycles, 64 * 4);
  EXPECT_EQ(t.pwc_active_cycles, 64 * 128);
}

TEST(TimingModel, BufferTileCount) {
  const TimingModel tm{EdeaConfig::paper()};
  EXPECT_EQ(tm.buffer_tile_count(spec_of(32, 32, 1, 64)), 16);
  EXPECT_EQ(tm.buffer_tile_count(spec_of(32, 64, 2, 128)), 4);
  EXPECT_EQ(tm.buffer_tile_count(spec_of(4, 512, 1, 512)), 1);
}

TEST(TimingModel, TimeNsAtOneGigahertz) {
  const TimingModel tm{EdeaConfig::paper()};
  const LayerTiming t = tm.layer_timing(spec_of(4, 512, 1, 512));
  EXPECT_DOUBLE_EQ(t.time_ns(1.0), 8768.0);
  EXPECT_DOUBLE_EQ(t.time_ns(2.0), 4384.0);
}

// ----------------------- published series (Fig. 10 latency, Fig. 13) ---

TEST(TimingModel, MobileNetLatenciesMatchPaperFig10) {
  const TimingModel tm{EdeaConfig::paper()};
  const auto specs = nn::mobilenet_dsc_specs();
  // Cycle counts derived in DESIGN.md sec. 4 from Eq. 1/2; at 1 GHz these
  // are the nanosecond latencies of Fig. 10.
  const std::array<std::int64_t, 13> expected{
      4672, 4384, 8768, 4240, 8480, 4384, 8768,
      8768, 8768, 8768, 8768, 4672, 9344};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(tm.layer_timing(specs[i]).total_cycles, expected[i])
        << "layer " << i;
  }
}

TEST(TimingModel, MobileNetThroughputMatchesPaperFig13) {
  const TimingModel tm{EdeaConfig::paper()};
  const auto specs = nn::mobilenet_dsc_specs();
  // Fig. 13: 1024 GOPS for layers 0-4, 973.5 for 5-10, 905.6 for 11-12.
  for (int i = 0; i <= 4; ++i) {
    EXPECT_NEAR(tm.layer_throughput_gops(specs[static_cast<std::size_t>(i)]),
                1024.0, 0.05)
        << "layer " << i;
  }
  for (int i = 5; i <= 10; ++i) {
    EXPECT_NEAR(tm.layer_throughput_gops(specs[static_cast<std::size_t>(i)]),
                973.5, 0.1)
        << "layer " << i;
  }
  for (int i = 11; i <= 12; ++i) {
    EXPECT_NEAR(tm.layer_throughput_gops(specs[static_cast<std::size_t>(i)]),
                905.6, 0.1)
        << "layer " << i;
  }
}

TEST(TimingModel, PeakThroughputIs1024Gops) {
  // 512 PWC MACs * 2 ops at 1 GHz = 1024 GOPS: the initiation overhead is
  // exactly compensated by the DWC engine's extra 288*S MACs when S = 16,
  // i.e. the paper's "peak throughput of 1024 GOPS".
  const TimingModel tm{EdeaConfig::paper()};
  double peak = 0.0;
  for (const auto& spec : nn::mobilenet_dsc_specs()) {
    peak = std::max(peak, tm.layer_throughput_gops(spec));
  }
  EXPECT_NEAR(peak, 1024.0, 0.05);
}

TEST(TimingModel, AverageThroughputMatchesPaper) {
  // Paper abstract: average throughput 981.42 GOPS. Our layer table gives
  // 979.9; assert within 0.5%.
  const TimingModel tm{EdeaConfig::paper()};
  std::int64_t ops = 0, cycles = 0;
  for (const auto& spec : nn::mobilenet_dsc_specs()) {
    ops += spec.total_ops();
    cycles += tm.layer_timing(spec).total_cycles;
  }
  const double avg = static_cast<double>(ops) / static_cast<double>(cycles);
  EXPECT_NEAR(avg, 981.42, 981.42 * 0.005);
}

TEST(TimingModel, StrideTwoLayersHaveFewerMacs) {
  // Fig. 10's dips at layers 1, 3, 5, 11.
  const auto specs = nn::mobilenet_dsc_specs();
  EXPECT_LT(specs[1].total_macs(), specs[2].total_macs());
  EXPECT_LT(specs[3].total_macs(), specs[4].total_macs());
  EXPECT_LT(specs[5].total_macs(), specs[6].total_macs());
  EXPECT_LT(specs[11].total_macs(), specs[12].total_macs());
}

TEST(TimingModel, InitiationShareGrowsForSmallLayers) {
  // Sec. IV-A: the 9 initiation cycles account for a larger share on later
  // (smaller) layers - layer 12's throughput is the lowest.
  const TimingModel tm{EdeaConfig::paper()};
  const auto specs = nn::mobilenet_dsc_specs();
  // Layers 6-10 amortize the 9 cycles over 128 compute cycles per pass;
  // layers 11-12 only over 64 - hence Fig. 13's drop to 905.6 GOPS.
  const LayerTiming t6 = tm.layer_timing(specs[6]);
  const LayerTiming t12 = tm.layer_timing(specs[12]);
  const double share6 = static_cast<double>(t6.init_cycles) /
                        static_cast<double>(t6.total_cycles);
  const double share12 = static_cast<double>(t12.init_cycles) /
                         static_cast<double>(t12.total_cycles);
  EXPECT_LT(share6, share12);
}

TEST(TimingModel, DwcIdlesMoreWhenKernelCountGrows) {
  // Sec. III-D: "DWC PE arrays encounter more idle time due to fewer MAC
  // operations in DWC compared to PWC".
  const TimingModel tm{EdeaConfig::paper()};
  const LayerTiming small_k = tm.layer_timing(spec_of(8, 64, 1, 16));
  const LayerTiming large_k = tm.layer_timing(spec_of(8, 64, 1, 1024));
  const double duty_small = static_cast<double>(small_k.dwc_active_cycles) /
                            static_cast<double>(small_k.total_cycles);
  const double duty_large = static_cast<double>(large_k.dwc_active_cycles) /
                            static_cast<double>(large_k.total_cycles);
  EXPECT_GT(duty_small, duty_large);
}

TEST(TimingModel, RaggedLayersCountExactly) {
  // 12x12 output: tiles 8x8, 8x4, 4x8, 4x4 -> per-slice passes of
  // 9 + 16g, 9 + 8g, 9 + 8g, 9 + 4g with g = ceil(K/16).
  const TimingModel tm{EdeaConfig::paper()};
  const nn::DscLayerSpec spec = spec_of(12, 8, 1, 32);
  const std::int64_t g = 2;
  const std::int64_t expected = (9 + 16 * g) + 2 * (9 + 8 * g) + (9 + 4 * g);
  EXPECT_EQ(tm.layer_timing(spec).total_cycles, expected);
}

TEST(TimingModel, ScalingTkReducesCycles) {
  // Doubling Tk halves the kernel-group count: direct latency win,
  // utilization preserved (the paper's scaling argument).
  EdeaConfig big = EdeaConfig::paper();
  big.tk = 32;
  const TimingModel base{EdeaConfig::paper()};
  const TimingModel scaled{big};
  const nn::DscLayerSpec spec = spec_of(4, 512, 1, 512);
  EXPECT_EQ(base.layer_timing(spec).compute_cycles,
            2 * scaled.layer_timing(spec).compute_cycles);
}

}  // namespace
}  // namespace edea::core
