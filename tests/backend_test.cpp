// backend_test - the cross-backend contract of the pluggable accelerator
// seam (core/backend.hpp), pinned by the acceptance criteria of the
// backend refactor:
//   (a) for every zoo network, the "edea" and "serialized" backends
//       produce bit-identical output tensors (and so identical summary
//       output hashes) - the arithmetic is shared,
//   (b) the serialized backend reports strictly more external-memory
//       traffic and at least as many cycles as "edea" (the Fig. 3 /
//       Table III claim),
//   (c) a mixed-backend request stream served over a real socket is
//       byte-identical to the stdio reference, including persisted-cache
//       hits keyed per backend.
// Plus the registry mechanics themselves (lookup, registration rules,
// sweep plumbing).
#include "core/backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/serialized_accelerator.hpp"
#include "core/accelerator.hpp"
#include "core/sweep_runner.hpp"
#include "nn/model_zoo.hpp"
#include "service/session.hpp"
#include "service/simulation_service.hpp"
#include "service/transport.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::core {
namespace {

nn::Int8Tensor random_input(const nn::DscLayerSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  nn::Int8Tensor input(
      nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return input;
}

std::int64_t total_external_accesses(const NetworkRunResult& result) {
  std::int64_t total = 0;
  for (const auto& layer : result.layers) {
    total += layer.external.total_accesses();
  }
  return total;
}

// --- registry mechanics -----------------------------------------------------

TEST(BackendRegistryTest, InTreeBackendsAreRegistered) {
  EXPECT_TRUE(backend_known("edea"));
  EXPECT_TRUE(backend_known("serialized"));
  EXPECT_FALSE(backend_known(""));
  EXPECT_FALSE(backend_known("warp-drive"));

  const std::vector<std::string> ids = backend_ids();
  EXPECT_NE(std::find(ids.begin(), ids.end(), "edea"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "serialized"), ids.end());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));

  const std::string known = known_backends_string();
  EXPECT_NE(known.find("edea"), std::string::npos);
  EXPECT_NE(known.find("serialized"), std::string::npos);
}

TEST(BackendRegistryTest, MakeBackendInstantiatesTheRequestedDataflow) {
  const std::unique_ptr<AcceleratorBackend> edea = make_backend("edea");
  ASSERT_NE(edea, nullptr);
  EXPECT_EQ(edea->backend_id(), "edea");
  EXPECT_NE(dynamic_cast<EdeaAccelerator*>(edea.get()), nullptr);

  EdeaConfig config;
  config.td = 16;
  const std::unique_ptr<AcceleratorBackend> serialized =
      make_backend("serialized", config);
  ASSERT_NE(serialized, nullptr);
  EXPECT_EQ(serialized->backend_id(), "serialized");
  EXPECT_EQ(serialized->config().td, 16);
  EXPECT_NE(dynamic_cast<baseline::SerializedDscAccelerator*>(
                serialized.get()),
            nullptr);
}

TEST(BackendRegistryTest, UnknownIdThrowsNamingTheVocabulary) {
  try {
    (void)make_backend("warp-drive");
    FAIL() << "unknown backend id must throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp-drive"), std::string::npos) << what;
    EXPECT_NE(what.find("edea"), std::string::npos) << what;
    EXPECT_NE(what.find("serialized"), std::string::npos) << what;
  }
}

TEST(BackendRegistryTest, RegistrationRejectsUnusableIds) {
  const BackendFactory factory = [](const EdeaConfig& config) {
    return std::make_unique<EdeaAccelerator>(config);
  };
  EXPECT_THROW((void)register_backend("", factory), PreconditionError);
  EXPECT_THROW((void)register_backend("two words", factory),
               PreconditionError);
  EXPECT_THROW((void)register_backend("x", nullptr), PreconditionError);
}

TEST(BackendRegistryTest, EmbedderBackendsResolveEverywhere) {
  // A registered third dataflow is immediately reachable through the
  // whole plumbing - here via evaluate_job, the narrow waist.
  const bool fresh = register_backend(
      "test-alias", [](const EdeaConfig& config) {
        return std::make_unique<EdeaAccelerator>(config);
      });
  EXPECT_TRUE(fresh || backend_known("test-alias"));

  const auto specs = nn::zoo_specs("edeanet-64");
  const auto layers = nn::make_random_quant_network(specs, 11);
  const nn::Int8Tensor input = random_input(specs.front(), 12);
  SweepJob job;
  job.name = "aliased";
  job.backend = "test-alias";
  job.layers = &layers;
  job.input = &input;
  const SweepOutcome outcome = evaluate_job(job);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.backend, "test-alias");
}

// --- sweep plumbing ---------------------------------------------------------

TEST(BackendSweepTest, EvaluateJobResolvesEmptyBackendToDefault) {
  const auto specs = nn::zoo_specs("edeanet-64");
  const auto layers = nn::make_random_quant_network(specs, 21);
  const nn::Int8Tensor input = random_input(specs.front(), 22);
  SweepJob job;
  job.name = "default";
  job.layers = &layers;
  job.input = &input;
  const SweepOutcome outcome = evaluate_job(job);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.backend, std::string(kDefaultBackendId));
}

TEST(BackendSweepTest, UnknownJobBackendIsAPreconditionError) {
  const auto specs = nn::zoo_specs("edeanet-64");
  const auto layers = nn::make_random_quant_network(specs, 21);
  const nn::Int8Tensor input = random_input(specs.front(), 22);
  SweepJob job;
  job.name = "typo";
  job.backend = "serializd";  // the typo the hard error exists for
  job.layers = &layers;
  job.input = &input;
  EXPECT_THROW((void)evaluate_job(job), PreconditionError);

  SweepOptions options;
  options.backend = "serializd";
  EXPECT_THROW(options.validate(), PreconditionError);
  EXPECT_THROW((void)SweepRunner{options}, PreconditionError);
}

TEST(BackendSweepTest, RunnerDefaultBackendAppliesOnlyToUnsetJobs) {
  const auto specs = nn::zoo_specs("edeanet-64");
  const auto layers = nn::make_random_quant_network(specs, 31);
  const nn::Int8Tensor input = random_input(specs.front(), 32);

  SweepJob unset;
  unset.name = "unset";
  unset.layers = &layers;
  unset.input = &input;
  SweepJob pinned = unset;
  pinned.name = "pinned";
  pinned.backend = "edea";

  SweepOptions options;
  options.parallelism = 1;
  options.backend = "serialized";
  const std::vector<SweepOutcome> outcomes =
      SweepRunner(options).run({unset, pinned});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].backend, "serialized");
  EXPECT_EQ(outcomes[1].backend, "edea");
  // Both simulated the same workload: identical outputs, divergent cycles.
  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
  ASSERT_TRUE(outcomes[1].ok) << outcomes[1].error;
  EXPECT_EQ(outcomes[0].summary.output_hash, outcomes[1].summary.output_hash);
  EXPECT_GT(outcomes[0].summary.total_cycles,
            outcomes[1].summary.total_cycles);
}

TEST(BackendContractTest, SerializedBackendValidatesTileParallelism) {
  baseline::SerializedDscAccelerator accel;
  EXPECT_THROW(accel.set_tile_parallelism(0), PreconditionError);
  EXPECT_THROW(accel.set_tile_parallelism(-2), PreconditionError);
  accel.set_tile_parallelism(4);  // accepted; execution stays serial
  EXPECT_EQ(accel.tile_parallelism(), 4);
}

// --- (a) + (b): the cross-backend contract on every zoo network ------------

TEST(BackendContractTest, EveryZooNetworkBitExactOutputsAndFig3Ordering) {
  for (const std::string& name : nn::zoo_network_names()) {
    SCOPED_TRACE("network " + name);
    EdeaConfig config;  // paper defaults
    if (name == "mobilenet-imagenet") {
      // Same accommodation as the tile-parallel suite: the paper
      // accumulator cannot hold K=512 kernels under 8x8 output tiles.
      config.max_tile_out = 4;
    }
    const auto specs = nn::zoo_specs(name);
    const auto layers = nn::make_random_quant_network(specs, 2025);
    const nn::Int8Tensor input = random_input(specs.front(), 5252);

    std::unique_ptr<AcceleratorBackend> edea = make_backend("edea", config);
    std::unique_ptr<AcceleratorBackend> serialized =
        make_backend("serialized", config);
    const NetworkRunResult fast = edea->run_network(layers, input);
    const NetworkRunResult slow = serialized->run_network(layers, input);

    // (a) bit-exact outputs: the final tensor, every per-layer tensor,
    // and the summaries' content hashes.
    ASSERT_EQ(fast.layers.size(), slow.layers.size());
    EXPECT_EQ(fast.output.storage(), slow.output.storage());
    for (std::size_t l = 0; l < fast.layers.size(); ++l) {
      SCOPED_TRACE("layer " + std::to_string(l));
      EXPECT_EQ(fast.layers[l].output.storage(),
                slow.layers[l].output.storage());
    }
    const RunSummary fast_summary = fast.summary(config.clock_ghz);
    const RunSummary slow_summary = slow.summary(config.clock_ghz);
    EXPECT_EQ(fast_summary.output_hash, slow_summary.output_hash);
    EXPECT_EQ(fast_summary.total_ops, slow_summary.total_ops);
    EXPECT_EQ(fast_summary.layer_count, slow_summary.layer_count);

    // (b) the Fig. 3 ordering: the round-trip dataflow moves strictly
    // more data through external memory and can never be faster.
    EXPECT_GT(total_external_accesses(slow), total_external_accesses(fast));
    EXPECT_GE(slow_summary.total_cycles, fast_summary.total_cycles);
    for (std::size_t l = 0; l < fast.layers.size(); ++l) {
      SCOPED_TRACE("layer " + std::to_string(l));
      EXPECT_GT(slow.layers[l].external.total_accesses(),
                fast.layers[l].external.total_accesses());
      EXPECT_GE(slow.layers[l].timing.total_cycles,
                fast.layers[l].timing.total_cycles);
    }
  }
}

}  // namespace
}  // namespace edea::core

// --- (c): mixed-backend request stream over the wire ------------------------

namespace edea::service {
namespace {

/// The mixed-backend scripted stream: both dataflows, explicit and
/// defaulted ids, repeats that must hit per-backend cache keys, an
/// infeasible point on the baseline, and an unknown id that must answer
/// protocol-error. mobilenet-0.25x td=16 is the cheapest zoo simulation.
std::vector<std::string> mixed_backend_stream() {
  return {
      "# mixed-backend session",
      "run mobilenet-0.25x seed=3 td=16",
      "run mobilenet-0.25x seed=3 td=16 backend=serialized",
      "run mobilenet-0.25x seed=3 td=16 backend=edea",  // repeat of 1 -> hit
      "run mobilenet-0.25x seed=3 td=16 backend=serialized",  // repeat -> hit
      "run mobilenet-0.25x seed=3 kernel=5 backend=serialized",  // infeasible
      "run mobilenet-0.25x seed=3 backend=warp-drive",  // protocol error
      "stats",
  };
}

std::vector<std::string> serve_stdio(SimulationService& svc,
                                     const std::vector<std::string>& lines) {
  std::ostringstream joined;
  for (const std::string& line : lines) joined << line << "\n";
  std::istringstream in(joined.str());
  std::ostringstream out;
  StdioStream stream(in, out);
  WorkloadCatalog catalog;
  (void)Session(svc, catalog).serve(stream);

  std::vector<std::string> responses;
  std::istringstream replay(out.str());
  std::string line;
  while (std::getline(replay, line)) responses.push_back(line);
  return responses;
}

/// Extracts "key=value" from a response line ("" when absent).
std::string token_of(const std::string& line, const std::string& key) {
  const std::size_t at = line.find(" " + key + "=");
  if (at == std::string::npos) return "";
  const std::size_t begin = at + key.size() + 2;
  const std::size_t end = line.find(' ', begin);
  return line.substr(begin, end == std::string::npos ? end : end - begin);
}

TEST(BackendServiceTest, MixedBackendSocketStreamMatchesStdioByteForByte) {
  // Reference: the stdio code path on a fresh service.
  SimulationService stdio_svc;
  const std::vector<std::string> expected =
      serve_stdio(stdio_svc, mixed_backend_stream());

  // Same stream over a real loopback socket against another fresh service.
  SimulationService socket_svc;
  WorkloadCatalog socket_catalog;
  SocketTransportOptions options;
  options.max_sessions = 1;
  SocketTransport transport(options);
  std::thread server([&] {
    transport.serve([&](Stream& stream) {
      Session(socket_svc, socket_catalog).serve(stream);
    });
  });
  std::vector<std::string> responses;
  {
    std::unique_ptr<Stream> client =
        connect_socket("127.0.0.1", transport.port(), /*retry_ms=*/5000);
    for (const std::string& line : mixed_backend_stream()) {
      ASSERT_TRUE(client->write_line(line));
    }
    client->close_write();
    std::string line;
    while (client->read_line(line)) responses.push_back(line);
  }
  server.join();

  EXPECT_EQ(responses, expected);

  // The stream's semantic shape, pinned once on the reference bytes:
  // 5 run replies + 1 protocol error + 1 stats line.
  ASSERT_EQ(expected.size(), 7u);
  EXPECT_EQ(token_of(expected[0], "backend"), "edea");
  EXPECT_EQ(token_of(expected[1], "backend"), "serialized");
  EXPECT_EQ(token_of(expected[0], "cache"), "miss");
  EXPECT_EQ(token_of(expected[1], "cache"), "miss");  // distinct key!
  EXPECT_EQ(token_of(expected[2], "cache"), "hit");
  EXPECT_EQ(token_of(expected[3], "cache"), "hit");
  // Bit-exact across dataflows, divergent measurements.
  EXPECT_EQ(token_of(expected[0], "out"), token_of(expected[1], "out"));
  EXPECT_NE(token_of(expected[0], "cycles"),
            token_of(expected[1], "cycles"));
  EXPECT_EQ(expected[4].rfind("error ", 0), 0u) << expected[4];
  EXPECT_EQ(expected[5].rfind("protocol-error ", 0), 0u) << expected[5];
  EXPECT_NE(expected[5].find("warp-drive"), std::string::npos);
  // 2 misses (one per backend) + infeasible miss; repeats hit.
  EXPECT_EQ(expected[6], "stats hits=2 misses=3 evictions=0 entries=3 "
                         "inflight=0");
}

TEST(BackendServiceTest, PersistedCacheReplayIsKeyedPerBackend) {
  // First life: serve the mixed stream and persist the summaries.
  const std::string path = testing::TempDir() + "edea_backend_replay.cache";
  std::vector<std::string> first;
  {
    SimulationService svc;
    first = serve_stdio(svc, mixed_backend_stream());
    EXPECT_EQ(svc.save_cache(path), 3u);  // edea + serialized + infeasible
  }

  // Second life: every run request is served summary-only from the
  // per-backend persisted entries - same content, cache=hit everywhere.
  SimulationService svc;
  EXPECT_EQ(svc.load_cache(path), 3u);
  const std::vector<std::string> replay =
      serve_stdio(svc, mixed_backend_stream());
  ASSERT_EQ(replay.size(), first.size());
  for (std::size_t i = 0; i + 1 < replay.size(); ++i) {
    SCOPED_TRACE("response " + std::to_string(i));
    if (token_of(first[i], "cache").empty()) {
      EXPECT_EQ(replay[i], first[i]);  // protocol-error line, unchanged
      continue;
    }
    EXPECT_EQ(token_of(replay[i], "cache"), "hit") << replay[i];
    // Content identical up to the cache flag: replace and compare.
    std::string expected_line = first[i];
    const std::size_t at = expected_line.find("cache=miss");
    if (at != std::string::npos) {
      expected_line.replace(at, 10, "cache=hit");
    }
    EXPECT_EQ(replay[i], expected_line);
  }
  EXPECT_EQ(replay.back(), "stats hits=5 misses=0 evictions=0 entries=3 "
                           "inflight=0");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edea::service
