// Tests for the dual engines (Fig. 5): structural constants published in
// the paper and functional equivalence with the golden integer operators.
#include <gtest/gtest.h>

#include <thread>

#include "core/dwc_engine.hpp"
#include "core/pwc_engine.hpp"
#include "nn/ops.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::core {
namespace {

// ------------------------------------------------ structural (Fig. 5) ---

TEST(DwcEngineStructure, PaperConstants) {
  const DwcEngine engine{EdeaConfig::paper()};
  EXPECT_EQ(engine.mac_count(), 288);         // Sec. III-B: 288 MACs
  EXPECT_EQ(engine.pe_count(), 8);            // 8 DWC PEs (one per channel)
  EXPECT_EQ(engine.adder_tree_fan_in(), 9);   // 3x3 window per tree
  EXPECT_EQ(engine.adder_tree_depth(), 4);
}

TEST(PwcEngineStructure, PaperConstants) {
  const PwcEngine engine{EdeaConfig::paper()};
  EXPECT_EQ(engine.mac_count(), 512);          // Sec. III-B: 512 MACs
  EXPECT_EQ(engine.pe_count(), 128);           // 128 PEs x 4 multipliers
  EXPECT_EQ(engine.adder_tree_fan_in(), 8);    // Td-deep dot products
  EXPECT_EQ(engine.adder_tree_depth(), 3);
  EXPECT_EQ(engine.dot_products_per_cycle(), 64);  // 2x2x16 outputs
}

TEST(EngineStructure, PwcToDwcRatios) {
  // Sec. IV: "PWC to DWC PE ratio of 1.8X (512 and 288)".
  const EdeaConfig cfg = EdeaConfig::paper();
  EXPECT_EQ(cfg.total_mac_count(), 800);  // Table III PE count
  EXPECT_NEAR(static_cast<double>(cfg.pwc_mac_count()) /
                  cfg.dwc_mac_count(),
              1.8, 0.03);
}

TEST(DwcEngineStructure, WindowExtents) {
  const EdeaConfig cfg = EdeaConfig::paper();
  EXPECT_EQ(cfg.dwc_window_extent(1), 4);  // 4x4 ifmap at stride 1
  EXPECT_EQ(cfg.dwc_window_extent(2), 5);  // 5x5 ifmap at stride 2
}

// ------------------------------------------------------ DWC functional ---

/// Runs the engine over a full small feature map and compares against the
/// golden depthwise operator.
void check_dwc_engine_matches_reference(int rows, int channels, int stride,
                                        std::uint64_t seed) {
  const EdeaConfig cfg = EdeaConfig::paper();
  DwcEngine engine(cfg);
  edea::Rng rng(seed);

  nn::Int8Tensor input(nn::Shape{rows, rows, channels});
  for (auto& v : input.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  nn::Int8Tensor weights(nn::Shape{3, 3, channels});
  for (auto& v : weights.storage()) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }

  const nn::Conv2dGeometry geom{3, stride, 1};
  const nn::Int32Tensor golden = nn::depthwise_conv2d_q(input, weights, geom);

  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * channels));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int c = 0; c < channels; ++c) {
        w[static_cast<std::size_t>((i * 3 + j) * channels + c)] =
            weights(i, j, c);
      }
    }
  }
  engine.load_weights(w, channels);

  const int out_extent = geom.out_extent(rows);
  const int extent = cfg.dwc_window_extent(stride);
  for (int oy = 0; oy < out_extent; oy += cfg.tn) {
    for (int ox = 0; ox < out_extent; ox += cfg.tm) {
      DwcWindow window;
      window.extent = extent;
      window.channels = channels;
      window.values.assign(
          static_cast<std::size_t>(extent * extent * channels), 0);
      for (int r = 0; r < extent; ++r) {
        for (int c = 0; c < extent; ++c) {
          const int gr = oy * stride + r - 1;
          const int gc = ox * stride + c - 1;
          if (gr < 0 || gr >= rows || gc < 0 || gc >= rows) continue;
          for (int ch = 0; ch < channels; ++ch) {
            window.values[static_cast<std::size_t>(
                (r * extent + c) * channels + ch)] = input(gr, gc, ch);
          }
        }
      }
      const DwcStepOutput out = engine.step(window, stride);
      for (int r = 0; r < out.rows && oy + r < out_extent; ++r) {
        for (int c = 0; c < out.cols && ox + c < out_extent; ++c) {
          for (int ch = 0; ch < channels; ++ch) {
            EXPECT_EQ(out.at(r, c, ch), golden(oy + r, ox + c, ch))
                << "at (" << oy + r << "," << ox + c << "," << ch << ")";
          }
        }
      }
    }
  }
}

TEST(DwcEngine, MatchesReferenceStride1) {
  check_dwc_engine_matches_reference(8, 8, 1, 1001);
}

TEST(DwcEngine, MatchesReferenceStride2) {
  check_dwc_engine_matches_reference(8, 8, 2, 1002);
}

TEST(DwcEngine, MatchesReferencePartialSlice) {
  // Channels < Td exercises the idle-lane path.
  check_dwc_engine_matches_reference(6, 5, 1, 1003);
}

TEST(DwcEngine, FullSliceHas100PercentLaneUtilization) {
  const EdeaConfig cfg = EdeaConfig::paper();
  DwcEngine engine(cfg);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * cfg.td), 1);
  engine.load_weights(w, cfg.td);
  DwcWindow window;
  window.extent = 4;
  window.channels = cfg.td;
  window.values.assign(static_cast<std::size_t>(16 * cfg.td), 1);
  (void)engine.step(window, 1);
  EXPECT_EQ(engine.activity().lane_cycles, 288);
  EXPECT_EQ(engine.activity().useful_macs, 288);
  EXPECT_DOUBLE_EQ(engine.activity().utilization(), 1.0);
}

TEST(DwcEngine, PartialSliceLanesIdle) {
  const EdeaConfig cfg = EdeaConfig::paper();
  DwcEngine engine(cfg);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * 5), 1);
  engine.load_weights(w, 5);
  DwcWindow window;
  window.extent = 4;
  window.channels = 5;
  window.values.assign(static_cast<std::size_t>(16 * 5), 1);
  (void)engine.step(window, 1);
  EXPECT_EQ(engine.activity().lane_cycles, 288);
  EXPECT_EQ(engine.activity().useful_macs, 5 * 36);
  EXPECT_LT(engine.activity().utilization(), 1.0);
}

TEST(DwcEngine, TracksZeroActivations) {
  const EdeaConfig cfg = EdeaConfig::paper();
  DwcEngine engine(cfg);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * cfg.td), 1);
  engine.load_weights(w, cfg.td);
  DwcWindow window;
  window.extent = 4;
  window.channels = cfg.td;
  window.values.assign(static_cast<std::size_t>(16 * cfg.td), 0);  // all zero
  (void)engine.step(window, 1);
  EXPECT_EQ(engine.activity().zero_operand_macs, 288);
}

TEST(DwcEngine, RequiresLoadedWeights) {
  DwcEngine engine{EdeaConfig::paper()};
  DwcWindow window;
  window.extent = 4;
  window.channels = 8;
  window.values.assign(16 * 8, 0);
  EXPECT_THROW((void)engine.step(window, 1), PreconditionError);
}

TEST(DwcEngine, RejectsWrongWindowExtent) {
  const EdeaConfig cfg = EdeaConfig::paper();
  DwcEngine engine(cfg);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * 8), 1);
  engine.load_weights(w, 8);
  DwcWindow window;
  window.extent = 5;  // stride-2 extent ...
  window.channels = 8;
  window.values.assign(25 * 8, 0);
  EXPECT_THROW((void)engine.step(window, 1), PreconditionError);  // ... s=1
  EXPECT_NO_THROW((void)engine.step(window, 2));
}

// ------------------------------------------------------ PWC functional ---

TEST(PwcEngine, MatchesReferenceDotProducts) {
  const EdeaConfig cfg = EdeaConfig::paper();
  PwcEngine engine(cfg);
  edea::Rng rng(2001);

  PwcStepInput pin;
  pin.rows = 2;
  pin.cols = 2;
  pin.channels = 8;
  pin.kernels = 16;
  pin.activations.resize(2 * 2 * 8);
  pin.weights.resize(16 * 8);
  for (auto& v : pin.activations) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto& v : pin.weights) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }

  const PwcStepOutput out = engine.step(pin);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      for (int k = 0; k < 16; ++k) {
        std::int32_t expected = 0;
        for (int ch = 0; ch < 8; ++ch) {
          expected += static_cast<std::int32_t>(pin.act(r, c, ch)) *
                      static_cast<std::int32_t>(pin.wt(k, ch));
        }
        EXPECT_EQ(out.at(r, c, k), expected);
      }
    }
  }
}

TEST(PwcEngine, FullGroupHas100PercentLaneUtilization) {
  PwcEngine engine{EdeaConfig::paper()};
  PwcStepInput pin;
  pin.rows = 2;
  pin.cols = 2;
  pin.channels = 8;
  pin.kernels = 16;
  pin.activations.assign(2 * 2 * 8, 1);
  pin.weights.assign(16 * 8, 1);
  (void)engine.step(pin);
  EXPECT_EQ(engine.activity().lane_cycles, 512);
  EXPECT_EQ(engine.activity().useful_macs, 512);
  EXPECT_DOUBLE_EQ(engine.activity().utilization(), 1.0);
}

TEST(PwcEngine, PartialKernelGroupIdlesLanes) {
  PwcEngine engine{EdeaConfig::paper()};
  PwcStepInput pin;
  pin.rows = 2;
  pin.cols = 2;
  pin.channels = 8;
  pin.kernels = 10;  // < Tk = 16
  pin.activations.assign(2 * 2 * 8, 1);
  pin.weights.assign(10 * 8, 1);
  (void)engine.step(pin);
  EXPECT_EQ(engine.activity().lane_cycles, 512);
  EXPECT_EQ(engine.activity().useful_macs, 10 * 4 * 8);
}

TEST(PwcEngine, PartialChannelSliceIdlesLanes) {
  PwcEngine engine{EdeaConfig::paper()};
  PwcStepInput pin;
  pin.rows = 2;
  pin.cols = 2;
  pin.channels = 3;  // < Td = 8
  pin.kernels = 16;
  pin.activations.assign(2 * 2 * 3, 2);
  pin.weights.assign(16 * 3, 3);
  const PwcStepOutput out = engine.step(pin);
  EXPECT_EQ(engine.activity().lane_cycles, 512);
  EXPECT_EQ(engine.activity().useful_macs, 16 * 4 * 3);
  EXPECT_EQ(out.at(0, 0, 0), 18);  // 3 channels x (2*3)
}

TEST(PwcEngine, RejectsMalformedInput) {
  PwcEngine engine{EdeaConfig::paper()};
  PwcStepInput pin;
  pin.rows = 2;
  pin.cols = 2;
  pin.channels = 8;
  pin.kernels = 17;  // > Tk
  pin.activations.assign(2 * 2 * 8, 0);
  pin.weights.assign(17 * 8, 0);
  EXPECT_THROW((void)engine.step(pin), PreconditionError);
}

// --------------------------------------------------------- reentrancy ---
//
// Regression: DwcEngine::step used to write into a member scratch buffer
// (`products_`), so two concurrent steps on one engine silently corrupted
// each other's accumulators. Kernels now keep all scratch on the stack and
// the const step overload tallies into a caller-owned MacActivity, so one
// engine can serve many threads. Each test hammers a shared engine from
// several threads and checks every output and every activity tally against
// the serial reference - under TSan/ASan this is also a data-race probe.

TEST(DwcEngine, ConstStepIsReentrant) {
  const EdeaConfig cfg = EdeaConfig::paper();
  DwcEngine engine(cfg);
  edea::Rng rng(3001);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * cfg.td));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  engine.load_weights(w, cfg.td);

  constexpr int kWindows = 16;
  constexpr int kRepeats = 50;
  std::vector<DwcWindow> windows(kWindows);
  for (DwcWindow& window : windows) {
    window.extent = 4;
    window.channels = cfg.td;
    window.values.resize(static_cast<std::size_t>(16 * cfg.td));
    for (auto& v : window.values) {
      v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    }
  }

  // Serial reference: outputs and the activity of one pass over all
  // windows, through the same const overload.
  std::vector<DwcStepOutput> expected;
  arch::MacActivity serial;
  for (const DwcWindow& window : windows) {
    expected.push_back(engine.step(window, 1, 1, 1, serial));
  }

  constexpr int kThreads = 4;
  std::vector<arch::MacActivity> sinks(kThreads);
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kRepeats; ++rep) {
        for (int i = 0; i < kWindows; ++i) {
          const DwcStepOutput out =
              engine.step(windows[static_cast<std::size_t>(i)], 1, 1, 1,
                          sinks[static_cast<std::size_t>(t)]);
          if (out.acc != expected[static_cast<std::size_t>(i)].acc) {
            ++mismatches[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
    // Every thread's tally equals kRepeats serial passes.
    EXPECT_EQ(sinks[static_cast<std::size_t>(t)].lane_cycles,
              serial.lane_cycles * kRepeats);
    EXPECT_EQ(sinks[static_cast<std::size_t>(t)].useful_macs,
              serial.useful_macs * kRepeats);
    EXPECT_EQ(sinks[static_cast<std::size_t>(t)].zero_operand_macs,
              serial.zero_operand_macs * kRepeats);
  }
  // The engine's own counter never moved: const steps leave no trace.
  EXPECT_EQ(engine.activity(), arch::MacActivity{});
}

TEST(PwcEngine, ConstStepIsReentrant) {
  const EdeaConfig cfg = EdeaConfig::paper();
  PwcEngine engine(cfg);
  edea::Rng rng(3002);

  constexpr int kInputs = 16;
  constexpr int kRepeats = 50;
  std::vector<PwcStepInput> inputs(kInputs);
  for (PwcStepInput& pin : inputs) {
    pin.rows = cfg.tn;
    pin.cols = cfg.tm;
    pin.channels = cfg.td;
    pin.kernels = cfg.tk;
    pin.activations.resize(
        static_cast<std::size_t>(pin.rows * pin.cols * pin.channels));
    pin.weights.resize(static_cast<std::size_t>(pin.kernels * pin.channels));
    for (auto& v : pin.activations) {
      v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    }
    for (auto& v : pin.weights) {
      v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    }
  }

  std::vector<PwcStepOutput> expected;
  arch::MacActivity serial;
  for (const PwcStepInput& pin : inputs) {
    expected.push_back(engine.step(pin, 1, serial));
  }

  constexpr int kThreads = 4;
  std::vector<arch::MacActivity> sinks(kThreads);
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kRepeats; ++rep) {
        for (int i = 0; i < kInputs; ++i) {
          const PwcStepOutput out =
              engine.step(inputs[static_cast<std::size_t>(i)], 1,
                          sinks[static_cast<std::size_t>(t)]);
          if (out.psum != expected[static_cast<std::size_t>(i)].psum) {
            ++mismatches[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
    EXPECT_EQ(sinks[static_cast<std::size_t>(t)].useful_macs,
              serial.useful_macs * kRepeats);
    EXPECT_EQ(sinks[static_cast<std::size_t>(t)].lane_cycles,
              serial.lane_cycles * kRepeats);
  }
  EXPECT_EQ(engine.activity(), arch::MacActivity{});
}

TEST(DwcEngine, ForcedGenericConstStepIsAlsoReentrant) {
  // The generic path's old member scratch was the original bug; pin the
  // fix on that path specifically (kForceGeneric routes around the
  // specialized kernels).
  const EdeaConfig cfg = EdeaConfig::paper();
  DwcEngine engine(cfg);
  engine.set_kernel_policy(KernelPolicy::kForceGeneric);
  edea::Rng rng(3003);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * cfg.td));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  engine.load_weights(w, cfg.td);

  DwcWindow window;
  window.extent = 4;
  window.channels = cfg.td;
  window.values.resize(static_cast<std::size_t>(16 * cfg.td));
  for (auto& v : window.values) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }

  arch::MacActivity ref_sink;
  const DwcStepOutput reference = engine.step(window, 1, 1, 1, ref_sink);

  constexpr int kThreads = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<arch::MacActivity> sinks(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 100; ++rep) {
        const DwcStepOutput out =
            engine.step(window, 1, 1, 1, sinks[static_cast<std::size_t>(t)]);
        if (out.acc != reference.acc) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (const int m : mismatches) EXPECT_EQ(m, 0);
}

// ----------------------------------------------------- scaled configs ---

TEST(EngineScaling, MacCountsScaleWithTdAndTk) {
  // Sec. III-B: "in DWC, the number of channels can be scaled, while in
  // PWC, both the number of channels and kernels can be scaled."
  EdeaConfig cfg = EdeaConfig::paper();
  cfg.td = 16;
  EXPECT_EQ(cfg.dwc_mac_count(), 576);
  EXPECT_EQ(cfg.pwc_mac_count(), 1024);
  cfg.tk = 32;
  EXPECT_EQ(cfg.pwc_mac_count(), 2048);
  const DwcEngine dwc(cfg);
  const PwcEngine pwc(cfg);
  EXPECT_EQ(dwc.mac_count(), 576);
  EXPECT_EQ(pwc.mac_count(), 2048);
}

}  // namespace
}  // namespace edea::core
