// Tests for src/util: error handling, PRNG, statistics, table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace edea {
namespace {

// ---------------------------------------------------------------- check ---

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(EDEA_REQUIRE(1 + 1 == 2, "arithmetic works"));
}

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(EDEA_REQUIRE(false, "must fail"), PreconditionError);
}

TEST(Check, AssertThrowsInvariantError) {
  EXPECT_THROW(EDEA_ASSERT(false, "broken invariant"), InvariantError);
}

TEST(Check, MessagesCarryExpressionAndContext) {
  try {
    EDEA_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Check, InvariantErrorIsLogicError) {
  EXPECT_THROW(EDEA_ASSERT(false, ""), std::logic_error);
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng(17);
  EXPECT_THROW((void)rng.uniform_int(2, 1), PreconditionError);
}

TEST(Rng, NormalHasApproximatelyUnitMoments) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.fork();
  // The child stream should not simply replay the parent stream.
  Rng parent2(29);
  (void)parent2();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (child() == parent2()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------- stats ---

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptySampleThrows) {
  RunningStats s;
  EXPECT_THROW((void)s.mean(), PreconditionError);
  EXPECT_THROW((void)s.variance(), PreconditionError);
  EXPECT_THROW((void)s.min(), PreconditionError);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(100.0, 100.0), 0.0);
  EXPECT_GT(relative_error(1.0, 0.0), 1e9);  // guarded by eps
}

// ---------------------------------------------------------------- table ---

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"layer", "value"});
  t.add_row({"L0", "1.50"});
  t.add_row({"L1", "2.25"});
  std::ostringstream os;
  t.render(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("layer"), std::string::npos);
  EXPECT_NE(s.find("L1"), std::string::npos);
  EXPECT_NE(s.find("2.25"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(TextTable, ShortRowsPadToColumnCount) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.render(os));
}

TEST(TextTable, OverlongRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), PreconditionError);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::int64_t{1234567}), "1,234,567");
  EXPECT_EQ(TextTable::num(std::int64_t{-1000}), "-1,000");
  EXPECT_EQ(TextTable::num(std::int64_t{999}), "999");
  EXPECT_EQ(TextTable::percent(0.4689, 1), "46.9%");
}

TEST(TextTable, EmptyHeaderListThrows) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

// -------------------------------------------------------------- logging ---

TEST(Logging, LevelRoundTrip) {
  const log::Level before = log::level();
  log::set_level(log::Level::kWarn);
  EXPECT_EQ(log::level(), log::Level::kWarn);
  log::set_level(before);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log::level_name(log::Level::kDebug), "DEBUG");
  EXPECT_EQ(log::level_name(log::Level::kError), "ERROR");
}

TEST(Logging, MacroRespectsThreshold) {
  // With the level at kError, an INFO emitter must not evaluate its
  // stream arguments at all (the macro short-circuits).
  const log::Level before = log::level();
  log::set_level(log::Level::kError);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "x";
  };
  EDEA_LOG_INFO << count();
  EXPECT_EQ(evaluations, 0);
  log::set_level(before);
}

}  // namespace
}  // namespace edea
