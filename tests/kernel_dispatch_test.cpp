// kernel_dispatch_test - the shape-specialized kernel registry: built-in
// coverage, lookup precedence (exact > wildcard > generic), the
// force-generic escape hatch, and the bit-identity contract every
// specialized kernel must honor (outputs AND MacActivity tallies equal to
// the generic reference, across full/partial slices, strides, and
// all-zero inputs).
#include "core/kernel_dispatch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/dwc_engine.hpp"
#include "core/pwc_engine.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::core {
namespace {

KernelShapeKey dwc_key(int kernel, int stride, int dilation, int mult) {
  KernelShapeKey key;
  key.family = OpFamily::kDwc;
  key.kernel = kernel;
  key.stride = stride;
  key.dilation = dilation;
  key.depth_multiplier = mult;
  return key;
}

KernelShapeKey pwc_key(int mult) {
  KernelShapeKey key;
  key.family = OpFamily::kPwc;
  key.kernel = 1;
  key.stride = 1;
  key.dilation = 1;
  key.depth_multiplier = mult;
  return key;
}

// ----------------------------------------------------------- registry ---

TEST(KernelDispatch, BuiltInShapesAreRegistered) {
  KernelDispatch& d = KernelDispatch::instance();
  // The ISSUE's minimum set: 3x3/s1/d1, 3x3/s2/d1 DWC, 1x1 PWC - all
  // wildcarded over the depth multiplier.
  EXPECT_TRUE(d.has_specialization(dwc_key(3, 1, 1, 1)));
  EXPECT_TRUE(d.has_specialization(dwc_key(3, 2, 1, 1)));
  EXPECT_TRUE(d.has_specialization(dwc_key(3, 1, 1, 4)));  // wildcard mult
  EXPECT_TRUE(d.has_specialization(pwc_key(1)));
  EXPECT_TRUE(d.has_specialization(pwc_key(7)));
  // Shapes with no fast path resolve to the generic implementation.
  EXPECT_FALSE(d.has_specialization(dwc_key(3, 1, 2, 1)));  // dilated
  EXPECT_FALSE(d.has_specialization(dwc_key(5, 1, 1, 1)));  // 5x5
  EXPECT_EQ(d.find_dwc(dwc_key(5, 1, 1, 1)), &generic_dwc_kernel);
  EXPECT_NE(d.find_dwc(dwc_key(3, 1, 1, 1)), &generic_dwc_kernel);
  EXPECT_NE(d.find_pwc(pwc_key(1)), &generic_pwc_kernel);
}

TEST(KernelDispatch, RegisteredShapesAreListable) {
  const std::vector<std::string> shapes =
      KernelDispatch::instance().registered_shapes();
  ASSERT_GE(shapes.size(), 3u);
  bool saw_s1 = false, saw_s2 = false, saw_pwc = false;
  for (const std::string& s : shapes) {
    if (s.find("dwc k=3 s=1 d=1 m=any") != std::string::npos) saw_s1 = true;
    if (s.find("dwc k=3 s=2 d=1 m=any") != std::string::npos) saw_s2 = true;
    if (s.find("pwc k=1 s=1 d=1 m=any") != std::string::npos) saw_pwc = true;
    EXPECT_NE(s.find(" -> "), std::string::npos) << s;  // "<key> -> <label>"
  }
  EXPECT_TRUE(saw_s1);
  EXPECT_TRUE(saw_s2);
  EXPECT_TRUE(saw_pwc);
}

TEST(KernelDispatch, ExactMultiplierBeatsWildcard) {
  KernelDispatch& d = KernelDispatch::instance();
  // Register an exact-multiplier entry on a shape nothing else uses
  // (kernel 7 never dispatches from the engines in these tests).
  const KernelShapeKey exact = dwc_key(7, 1, 1, 3);
  const KernelShapeKey wild = dwc_key(7, 1, 1, 0);
  d.register_dwc(wild, &generic_dwc_kernel, "wild7");
  ASSERT_EQ(d.find_dwc(dwc_key(7, 1, 1, 3)), &generic_dwc_kernel);

  // A distinct function for the exact entry: the generic kernel wrapped.
  static const DwcKernelFn exact_fn = [](const DwcKernelArgs& a) {
    generic_dwc_kernel(a);
  };
  d.register_dwc(exact, exact_fn, "exact7m3");
  EXPECT_EQ(d.find_dwc(dwc_key(7, 1, 1, 3)), exact_fn);   // exact wins
  EXPECT_EQ(d.find_dwc(dwc_key(7, 1, 1, 2)), &generic_dwc_kernel);  // wild
}

TEST(KernelDispatch, RejectsMalformedRegistrations) {
  KernelDispatch& d = KernelDispatch::instance();
  EXPECT_THROW(d.register_dwc(dwc_key(4, 1, 1, 0), &generic_dwc_kernel, "x"),
               PreconditionError);  // even kernel
  EXPECT_THROW(d.register_dwc(dwc_key(3, 3, 1, 0), &generic_dwc_kernel, "x"),
               PreconditionError);  // stride 3
  EXPECT_THROW(d.register_dwc(dwc_key(3, 1, 0, 0), &generic_dwc_kernel, "x"),
               PreconditionError);  // dilation 0
  EXPECT_THROW(d.register_dwc(dwc_key(3, 1, 1, -1), &generic_dwc_kernel, "x"),
               PreconditionError);  // negative multiplier
  EXPECT_THROW(d.register_dwc(pwc_key(0), &generic_dwc_kernel, "x"),
               PreconditionError);  // family mismatch
  EXPECT_THROW(d.register_pwc(pwc_key(0), nullptr, "x"),
               PreconditionError);  // null kernel
  KernelShapeKey big_pwc = pwc_key(0);
  big_pwc.kernel = 3;
  EXPECT_THROW(d.register_pwc(big_pwc, &generic_pwc_kernel, "x"),
               PreconditionError);  // PWC is 1x1 by definition
}

TEST(KernelDispatch, KeyToStringNamesEveryComponent) {
  EXPECT_EQ(dwc_key(3, 2, 1, 0).to_string(), "dwc k=3 s=2 d=1 m=any");
  EXPECT_EQ(dwc_key(3, 1, 2, 4).to_string(), "dwc k=3 s=1 d=2 m=4");
  EXPECT_EQ(pwc_key(0).to_string(), "pwc k=1 s=1 d=1 m=any");
}

// ----------------------------------------------- engine-level routing ---

TEST(KernelDispatch, ForceGenericPolicyRoutesAroundSpecializations) {
  // Identical engines, one pinned generic: outputs and activity must be
  // bit-identical - that IS the escape hatch's contract.
  const EdeaConfig cfg = EdeaConfig::paper();
  DwcEngine fast(cfg);
  DwcEngine slow(cfg);
  slow.set_kernel_policy(KernelPolicy::kForceGeneric);
  EXPECT_EQ(fast.kernel_policy(), KernelPolicy::kAuto);
  EXPECT_EQ(slow.kernel_policy(), KernelPolicy::kForceGeneric);

  edea::Rng rng(4001);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * cfg.td));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  fast.load_weights(w, cfg.td);
  slow.load_weights(w, cfg.td);

  DwcWindow window;
  window.extent = 4;
  window.channels = cfg.td;
  window.values.resize(static_cast<std::size_t>(16 * cfg.td));
  for (auto& v : window.values) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }

  const DwcStepOutput a = fast.step(window, 1);
  const DwcStepOutput b = slow.step(window, 1);
  EXPECT_EQ(a.acc, b.acc);
  EXPECT_EQ(fast.activity(), slow.activity());
}

// ------------------------------------------------- bit-identity sweep ---
//
// The dispatch contract, checked per shape at the engine seam: for
// randomized operands (dense, sparse, all-zero; full and partial slices)
// the auto-dispatched engine and a force-generic twin produce bit-equal
// accumulators and bit-equal MacActivity tallies.

void check_dwc_bit_identity(int stride, int dilation, int channels,
                            double zero_fraction, std::uint64_t seed) {
  const EdeaConfig cfg = EdeaConfig::paper();
  DwcEngine fast(cfg);
  DwcEngine slow(cfg);
  slow.set_kernel_policy(KernelPolicy::kForceGeneric);

  edea::Rng rng(seed);
  std::vector<std::int8_t> w(static_cast<std::size_t>(9 * channels));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  fast.load_weights(w, channels);
  slow.load_weights(w, channels);

  const int extent = cfg.dwc_window_extent(stride, dilation);
  for (int rep = 0; rep < 25; ++rep) {
    DwcWindow window;
    window.extent = extent;
    window.channels = channels;
    window.values.resize(
        static_cast<std::size_t>(extent * extent * channels));
    for (auto& v : window.values) {
      v = rng.uniform() < zero_fraction
              ? std::int8_t{0}
              : static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    }
    const DwcStepOutput a = fast.step(window, stride, dilation);
    const DwcStepOutput b = slow.step(window, stride, dilation);
    ASSERT_EQ(a.acc, b.acc) << "stride=" << stride << " dilation=" << dilation
                            << " channels=" << channels << " rep=" << rep;
  }
  EXPECT_EQ(fast.activity(), slow.activity())
      << "stride=" << stride << " dilation=" << dilation
      << " channels=" << channels;
}

TEST(KernelDispatchBitIdentity, Dwc3x3Stride1) {
  check_dwc_bit_identity(1, 1, 8, 0.0, 5001);
}

TEST(KernelDispatchBitIdentity, Dwc3x3Stride2) {
  check_dwc_bit_identity(2, 1, 8, 0.0, 5002);
}

TEST(KernelDispatchBitIdentity, Dwc3x3PartialSlices) {
  for (int channels = 1; channels <= 7; ++channels) {
    check_dwc_bit_identity(1, 1, channels, 0.3,
                           5100 + static_cast<std::uint64_t>(channels));
    check_dwc_bit_identity(2, 1, channels, 0.3,
                           5200 + static_cast<std::uint64_t>(channels));
  }
}

TEST(KernelDispatchBitIdentity, Dwc3x3SparseAndAllZero) {
  check_dwc_bit_identity(1, 1, 8, 0.7, 5003);  // realistic post-ReLU
  check_dwc_bit_identity(1, 1, 8, 1.0, 5004);  // all-zero window
  check_dwc_bit_identity(2, 1, 8, 1.0, 5005);
}

TEST(KernelDispatchBitIdentity, DilatedShapesTakeTheGenericPathIdentically) {
  // No specialization is registered at dilation 2 - both engines run
  // generic, which must also be self-consistent through dispatch.
  check_dwc_bit_identity(1, 2, 8, 0.3, 5006);
  check_dwc_bit_identity(2, 2, 5, 0.3, 5007);
}

void check_pwc_bit_identity(int channels, int kernels, double zero_fraction,
                            std::uint64_t seed) {
  const EdeaConfig cfg = EdeaConfig::paper();
  PwcEngine fast(cfg);
  PwcEngine slow(cfg);
  slow.set_kernel_policy(KernelPolicy::kForceGeneric);

  edea::Rng rng(seed);
  for (int rep = 0; rep < 25; ++rep) {
    PwcStepInput pin;
    pin.rows = cfg.tn;
    pin.cols = cfg.tm;
    pin.channels = channels;
    pin.kernels = kernels;
    pin.activations.resize(
        static_cast<std::size_t>(pin.rows * pin.cols * channels));
    pin.weights.resize(static_cast<std::size_t>(kernels * channels));
    for (auto& v : pin.activations) {
      v = rng.uniform() < zero_fraction
              ? std::int8_t{0}
              : static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    }
    for (auto& v : pin.weights) {
      v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    }
    const PwcStepOutput a = fast.step(pin);
    const PwcStepOutput b = slow.step(pin);
    ASSERT_EQ(a.psum, b.psum) << "channels=" << channels
                              << " kernels=" << kernels << " rep=" << rep;
  }
  EXPECT_EQ(fast.activity(), slow.activity())
      << "channels=" << channels << " kernels=" << kernels;
}

TEST(KernelDispatchBitIdentity, Pwc1x1FullSlice) {
  check_pwc_bit_identity(8, 16, 0.0, 6001);
}

TEST(KernelDispatchBitIdentity, Pwc1x1PartialSlicesAndGroups) {
  for (int channels = 1; channels <= 8; channels += 2) {
    for (int kernels = 1; kernels <= 16; kernels += 5) {
      check_pwc_bit_identity(channels, kernels, 0.4,
                             6100 +
                                 static_cast<std::uint64_t>(channels * 100 +
                                                            kernels));
    }
  }
}

TEST(KernelDispatchBitIdentity, Pwc1x1SparseAndAllZero) {
  check_pwc_bit_identity(8, 16, 0.7, 6002);
  check_pwc_bit_identity(8, 16, 1.0, 6003);
  check_pwc_bit_identity(3, 10, 1.0, 6004);
}

// The process-default policy helper: cheap sanity that the environment
// lever resolves to a policy (its value is pinned at first use, so the
// test only asserts it is one of the two states).
TEST(KernelDispatch, DefaultPolicyIsAutoOrForced) {
  const KernelPolicy p = KernelDispatch::default_policy();
  EXPECT_TRUE(p == KernelPolicy::kAuto || p == KernelPolicy::kForceGeneric);
}

}  // namespace
}  // namespace edea::core
