// Tests for the dense tensor substrate (src/nn/tensor.hpp).
#include <gtest/gtest.h>

#include "nn/tensor.hpp"
#include "util/check.hpp"

namespace edea::nn {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{4, 5, 6};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 4);
  EXPECT_EQ(s[1], 5);
  EXPECT_EQ(s[2], 6);
  EXPECT_EQ(s.volume(), 120u);
  EXPECT_EQ(s.to_string(), "[4x5x6]");
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(Shape, Rank0VolumeIsZeroByContract) {
  // Pinned semantics (see tensor.hpp): rank 0 means "no tensor", so its
  // volume is 0, not the mathematical empty product 1 - Tensor(Shape{})
  // must allocate nothing and the memory planner sizes it at zero bytes.
  const Shape none;
  EXPECT_EQ(none.rank(), 0u);
  EXPECT_EQ(none.volume(), 0u);
  EXPECT_TRUE(Int8Tensor(none).empty());
  // Since rank >= 1 extents are strictly positive, volume() == 0 uniquely
  // identifies the rank-0 shape.
  EXPECT_GT((Shape{1}).volume(), 0u);
}

TEST(Shape, Rank4VolumeAndEquality) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.volume(), 120u);
  EXPECT_EQ(s, (Shape{2, 3, 4, 5}));
  EXPECT_NE(s, (Shape{2, 3, 4}));
  EXPECT_NE(s, (Shape{5, 4, 3, 2}));
  // Rank-0 equals itself and differs from every ranked shape.
  EXPECT_EQ(Shape{}, Shape{});
  EXPECT_NE(Shape{}, (Shape{1}));
}

TEST(Shape, RejectsInvalidExtents) {
  EXPECT_THROW(Shape({0, 1}), PreconditionError);
  EXPECT_THROW(Shape({-1}), PreconditionError);
}

TEST(Shape, AxisOutOfRangeThrows) {
  const Shape s{2, 2};
  EXPECT_THROW((void)s[2], PreconditionError);
}

TEST(Tensor, DefaultIsEmpty) {
  const FloatTensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  const Int8Tensor t(Shape{3, 3, 3});
  for (const auto v : t.storage()) EXPECT_EQ(v, 0);
}

TEST(Tensor, FillValueConstructor) {
  const FloatTensor t(Shape{2, 2}, 1.5f);
  for (const auto v : t.storage()) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(Tensor, RowMajorIndexing3D) {
  Int32Tensor t(Shape{2, 3, 4});
  std::int32_t counter = 0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 4; ++k) {
        t(i, j, k) = counter++;
      }
    }
  }
  // Row-major means storage order equals iteration order above.
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.storage()[i], static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(t(1, 2, 3), 23);
  EXPECT_EQ(t.offset(1, 0, 0), 12u);
}

TEST(Tensor, RowMajorIndexing4D) {
  FloatTensor t(Shape{2, 2, 2, 2});
  t(1, 1, 1, 1) = 7.0f;
  EXPECT_FLOAT_EQ(t.storage()[15], 7.0f);
  t(0, 1, 0, 1) = 3.0f;
  EXPECT_FLOAT_EQ(t.storage()[5], 3.0f);
}

TEST(Tensor, CheckedAccessThrows) {
  Int8Tensor t(Shape{2, 2, 2});
  EXPECT_NO_THROW((void)t.at(1, 1, 1));
  EXPECT_THROW((void)t.at(2, 0, 0), PreconditionError);
  EXPECT_THROW((void)t.at(0, -1, 0), PreconditionError);
}

TEST(Tensor, TransformAppliesElementwise) {
  FloatTensor t(Shape{4}, 2.0f);
  t.transform([](float v) { return v * v; });
  for (const auto v : t.storage()) EXPECT_FLOAT_EQ(v, 4.0f);
}

TEST(Tensor, ZeroFraction) {
  Int8Tensor t(Shape{10});
  for (int i = 0; i < 4; ++i) t(i) = 1;
  EXPECT_DOUBLE_EQ(t.zero_fraction(), 0.6);
  const Int8Tensor empty;
  EXPECT_DOUBLE_EQ(empty.zero_fraction(), 0.0);
}

TEST(Tensor, EqualityComparesShapeAndData) {
  Int8Tensor a(Shape{2, 2, 1});
  Int8Tensor b(Shape{2, 2, 1});
  EXPECT_EQ(a, b);
  b(0, 0, 0) = 1;
  EXPECT_NE(a, b);
  const Int8Tensor c(Shape{4, 1, 1});
  EXPECT_NE(a, c);
}

TEST(TensorView, SharesStorageAndIndexesLikeOwning) {
  std::vector<std::int8_t> backing(24, 0);
  Int8Tensor v = Int8Tensor::view(Shape{2, 3, 4}, backing.data());
  EXPECT_TRUE(v.is_view());
  EXPECT_EQ(v.size(), 24u);
  EXPECT_EQ(v.data(), backing.data());
  v(1, 2, 3) = 42;
  EXPECT_EQ(backing[23], 42);
  backing[0] = 7;
  EXPECT_EQ(v(0, 0, 0), 7);
  // Equality ignores storage mode: a view equals an owning tensor holding
  // the same shape and elements.
  Int8Tensor owned(Shape{2, 3, 4});
  owned(1, 2, 3) = 42;
  owned(0, 0, 0) = 7;
  EXPECT_EQ(v, owned);
}

TEST(TensorView, CopyDeepCopiesToOwningMode) {
  std::vector<std::int8_t> backing(6, 3);
  const Int8Tensor v = Int8Tensor::view(Shape{2, 3}, backing.data());
  Int8Tensor copy = v;  // NOLINT: the copy is the point
  EXPECT_FALSE(copy.is_view());
  EXPECT_NE(copy.data(), backing.data());
  backing[0] = 99;  // mutating the arena must not reach the copy
  EXPECT_EQ(copy(0, 0), 3);
  EXPECT_EQ(v(0, 0), 99);

  Int8Tensor assigned;
  assigned = v;
  EXPECT_FALSE(assigned.is_view());
  EXPECT_EQ(assigned(0, 0), 99);
}

TEST(TensorView, MovePreservesMode) {
  std::vector<std::int8_t> backing(4, 1);
  Int8Tensor v = Int8Tensor::view(Shape{4}, backing.data());
  Int8Tensor moved = std::move(v);
  EXPECT_TRUE(moved.is_view());
  EXPECT_EQ(moved.data(), backing.data());

  Int8Tensor owned(Shape{4}, 5);
  const std::int8_t* before = owned.data();
  Int8Tensor moved_owned = std::move(owned);
  EXPECT_FALSE(moved_owned.is_view());
  EXPECT_EQ(moved_owned.data(), before);  // vector buffer survived the move
  EXPECT_EQ(moved_owned(2), 5);
}

TEST(TensorView, StorageIsOwningModeOnly) {
  std::vector<std::int8_t> backing(4, 0);
  Int8Tensor v = Int8Tensor::view(Shape{4}, backing.data());
  EXPECT_THROW((void)v.storage(), PreconditionError);
  Int8Tensor owned(Shape{4});
  EXPECT_NO_THROW((void)owned.storage());
  EXPECT_THROW((void)Int8Tensor::view(Shape{4}, nullptr), PreconditionError);
}

TEST(TensorView, FillTransformZeroFractionOperateOnTheSlice) {
  std::vector<std::int8_t> backing(10, 0);
  Int8Tensor v = Int8Tensor::view(Shape{10}, backing.data());
  v.fill(2);
  EXPECT_EQ(backing[9], 2);
  v.transform([](std::int8_t x) { return static_cast<std::int8_t>(x * 3); });
  EXPECT_EQ(backing[0], 6);
  for (int i = 0; i < 4; ++i) v(i) = 0;
  EXPECT_DOUBLE_EQ(v.zero_fraction(), 0.4);
  EXPECT_DOUBLE_EQ(max_abs(v), 6.0);
}

TEST(Tensor, MaxAbs) {
  FloatTensor t(Shape{3});
  t(0) = -5.0f;
  t(1) = 2.0f;
  t(2) = 4.5f;
  EXPECT_DOUBLE_EQ(max_abs(t), 5.0);
  const FloatTensor empty;
  EXPECT_DOUBLE_EQ(max_abs(empty), 0.0);
}

}  // namespace
}  // namespace edea::nn
