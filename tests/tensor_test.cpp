// Tests for the dense tensor substrate (src/nn/tensor.hpp).
#include <gtest/gtest.h>

#include "nn/tensor.hpp"
#include "util/check.hpp"

namespace edea::nn {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{4, 5, 6};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 4);
  EXPECT_EQ(s[1], 5);
  EXPECT_EQ(s[2], 6);
  EXPECT_EQ(s.volume(), 120u);
  EXPECT_EQ(s.to_string(), "[4x5x6]");
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(Shape, RejectsInvalidExtents) {
  EXPECT_THROW(Shape({0, 1}), PreconditionError);
  EXPECT_THROW(Shape({-1}), PreconditionError);
}

TEST(Shape, AxisOutOfRangeThrows) {
  const Shape s{2, 2};
  EXPECT_THROW((void)s[2], PreconditionError);
}

TEST(Tensor, DefaultIsEmpty) {
  const FloatTensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  const Int8Tensor t(Shape{3, 3, 3});
  for (const auto v : t.storage()) EXPECT_EQ(v, 0);
}

TEST(Tensor, FillValueConstructor) {
  const FloatTensor t(Shape{2, 2}, 1.5f);
  for (const auto v : t.storage()) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(Tensor, RowMajorIndexing3D) {
  Int32Tensor t(Shape{2, 3, 4});
  std::int32_t counter = 0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 4; ++k) {
        t(i, j, k) = counter++;
      }
    }
  }
  // Row-major means storage order equals iteration order above.
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.storage()[i], static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(t(1, 2, 3), 23);
  EXPECT_EQ(t.offset(1, 0, 0), 12u);
}

TEST(Tensor, RowMajorIndexing4D) {
  FloatTensor t(Shape{2, 2, 2, 2});
  t(1, 1, 1, 1) = 7.0f;
  EXPECT_FLOAT_EQ(t.storage()[15], 7.0f);
  t(0, 1, 0, 1) = 3.0f;
  EXPECT_FLOAT_EQ(t.storage()[5], 3.0f);
}

TEST(Tensor, CheckedAccessThrows) {
  Int8Tensor t(Shape{2, 2, 2});
  EXPECT_NO_THROW((void)t.at(1, 1, 1));
  EXPECT_THROW((void)t.at(2, 0, 0), PreconditionError);
  EXPECT_THROW((void)t.at(0, -1, 0), PreconditionError);
}

TEST(Tensor, TransformAppliesElementwise) {
  FloatTensor t(Shape{4}, 2.0f);
  t.transform([](float v) { return v * v; });
  for (const auto v : t.storage()) EXPECT_FLOAT_EQ(v, 4.0f);
}

TEST(Tensor, ZeroFraction) {
  Int8Tensor t(Shape{10});
  for (int i = 0; i < 4; ++i) t(i) = 1;
  EXPECT_DOUBLE_EQ(t.zero_fraction(), 0.6);
  const Int8Tensor empty;
  EXPECT_DOUBLE_EQ(empty.zero_fraction(), 0.0);
}

TEST(Tensor, EqualityComparesShapeAndData) {
  Int8Tensor a(Shape{2, 2, 1});
  Int8Tensor b(Shape{2, 2, 1});
  EXPECT_EQ(a, b);
  b(0, 0, 0) = 1;
  EXPECT_NE(a, b);
  const Int8Tensor c(Shape{4, 1, 1});
  EXPECT_NE(a, c);
}

TEST(Tensor, MaxAbs) {
  FloatTensor t(Shape{3});
  t(0) = -5.0f;
  t(1) = 2.0f;
  t(2) = 4.5f;
  EXPECT_DOUBLE_EQ(max_abs(t), 5.0);
  const FloatTensor empty;
  EXPECT_DOUBLE_EQ(max_abs(empty), 0.0);
}

}  // namespace
}  // namespace edea::nn
