// Tests for DSC layer types (src/nn/layers.*): geometry arithmetic, random
// initialization, quantized forward correctness vs the float reference.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "nn/metrics.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::nn {
namespace {

DscLayerSpec small_spec(int rows, int channels, int stride, int out_ch) {
  DscLayerSpec s;
  s.in_rows = rows;
  s.in_cols = rows;
  s.in_channels = channels;
  s.stride = stride;
  s.out_channels = out_ch;
  return s;
}

TEST(DscLayerSpec, OutputGeometryStride1) {
  const DscLayerSpec s = small_spec(32, 32, 1, 64);
  EXPECT_EQ(s.out_rows(), 32);
  EXPECT_EQ(s.out_cols(), 32);
}

TEST(DscLayerSpec, OutputGeometryStride2) {
  const DscLayerSpec s = small_spec(32, 64, 2, 128);
  EXPECT_EQ(s.out_rows(), 16);
  const DscLayerSpec odd = small_spec(5, 8, 2, 8);
  EXPECT_EQ(odd.out_rows(), 3);  // ceil(5/2) with pad 1, kernel 3
}

TEST(DscLayerSpec, MacCounts) {
  const DscLayerSpec s = small_spec(4, 512, 1, 512);
  // DWC: 4*4*512*9 ; PWC: 4*4*512*512.
  EXPECT_EQ(s.dwc_macs(), 73728);
  EXPECT_EQ(s.pwc_macs(), 4194304);
  EXPECT_EQ(s.total_macs(), 73728 + 4194304);
  EXPECT_EQ(s.total_ops(), 2 * (73728 + 4194304));
}

TEST(DscLayerSpec, ToStringMentionsGeometry) {
  const DscLayerSpec s = small_spec(8, 16, 2, 32);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("8x8x16"), std::string::npos);
  EXPECT_NE(str.find("s2"), std::string::npos);
}

TEST(MakeRandomFloatLayer, ShapesAndDeterminism) {
  const DscLayerSpec spec = small_spec(8, 16, 1, 24);
  Rng rng1(99), rng2(99);
  const FloatDscLayer a = make_random_float_layer(spec, rng1);
  const FloatDscLayer b = make_random_float_layer(spec, rng2);
  EXPECT_EQ(a.dwc_weights.shape(), (Shape{3, 3, 16}));
  EXPECT_EQ(a.pwc_weights.shape(), (Shape{24, 16}));
  EXPECT_EQ(a.bn1.channels(), 16u);
  EXPECT_EQ(a.bn2.channels(), 24u);
  EXPECT_EQ(a.dwc_weights, b.dwc_weights);
  EXPECT_EQ(a.pwc_weights, b.pwc_weights);
}

TEST(MakeRandomFloatLayer, RejectsBadStride) {
  DscLayerSpec spec = small_spec(8, 8, 3, 8);
  Rng rng(1);
  EXPECT_THROW((void)make_random_float_layer(spec, rng), PreconditionError);
}

TEST(FloatDscLayer, ForwardShapesAndIntermediate) {
  const DscLayerSpec spec = small_spec(8, 8, 2, 16);
  Rng rng(7);
  const FloatDscLayer layer = make_random_float_layer(spec, rng);
  FloatTensor input(Shape{8, 8, 8});
  for (auto& v : input.storage()) {
    v = static_cast<float>(std::abs(rng.normal(0.0, 1.0)));
  }
  FloatTensor intermediate;
  const FloatTensor out = layer.forward(input, &intermediate);
  EXPECT_EQ(out.shape(), (Shape{4, 4, 16}));
  EXPECT_EQ(intermediate.shape(), (Shape{4, 4, 8}));
  // Post-ReLU outputs are non-negative.
  for (const float v : out.storage()) EXPECT_GE(v, 0.0f);
  for (const float v : intermediate.storage()) EXPECT_GE(v, 0.0f);
}

/// Builds a quantized layer with scales calibrated on one input, then
/// returns (layer, input, float reference output).
struct QuantFixture {
  QuantDscLayer layer;
  Int8Tensor input_q;
  FloatTensor float_out;
  QuantScale in_scale, mid_scale, out_scale;
};

QuantFixture make_quant_fixture(const DscLayerSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  const FloatDscLayer fl = make_random_float_layer(spec, rng);
  FloatTensor input(Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : input.storage()) {
    v = static_cast<float>(std::max(0.0, rng.normal(0.5, 0.5)));
  }
  FloatTensor intermediate;
  const FloatTensor out = fl.forward(input, &intermediate);

  QuantFixture fx;
  fx.in_scale = choose_activation_scale(max_abs(input));
  fx.mid_scale = choose_activation_scale(max_abs(intermediate));
  fx.out_scale = choose_activation_scale(max_abs(out));
  fx.layer = quantize_layer(fl, fx.in_scale, fx.mid_scale, fx.out_scale);
  fx.input_q = quantize_tensor(input, fx.in_scale);
  fx.float_out = out;
  return fx;
}

TEST(QuantDscLayer, ForwardProducesReluClampedInt8) {
  const QuantFixture fx = make_quant_fixture(small_spec(8, 16, 1, 16), 11);
  const Int8Tensor out = fx.layer.forward(fx.input_q);
  for (const auto v : out.storage()) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 127);
  }
}

TEST(QuantDscLayer, QuantizedTracksFloatReference) {
  // The int8 network must approximate the float network: high cosine
  // similarity between dequantized int8 output and the float output.
  const QuantFixture fx = make_quant_fixture(small_spec(16, 16, 1, 32), 13);
  const Int8Tensor out_q = fx.layer.forward(fx.input_q);
  const FloatTensor out_deq = dequantize_tensor(out_q, fx.out_scale);
  const double cos = cosine_similarity(out_deq, fx.float_out);
  EXPECT_GT(cos, 0.98) << "quantization destroyed the layer output";
}

TEST(QuantDscLayer, IntermediateExposedAndConsistent) {
  const QuantFixture fx = make_quant_fixture(small_spec(8, 8, 2, 16), 17);
  Int8Tensor intermediate;
  const Int8Tensor out_a = fx.layer.forward(fx.input_q, &intermediate);
  EXPECT_EQ(intermediate.shape(),
            (Shape{fx.layer.spec.out_rows(), fx.layer.spec.out_cols(),
                   fx.layer.spec.in_channels}));
  // Running again without the intermediate must give identical output.
  const Int8Tensor out_b = fx.layer.forward(fx.input_q);
  EXPECT_EQ(out_a, out_b);
}

TEST(QuantDscLayer, InputChannelMismatchThrows) {
  const QuantFixture fx = make_quant_fixture(small_spec(8, 8, 1, 8), 19);
  Int8Tensor wrong(Shape{8, 8, 16});
  EXPECT_THROW((void)fx.layer.forward(wrong), PreconditionError);
}

TEST(QuantDscLayer, DeterministicForward) {
  const QuantFixture fx = make_quant_fixture(small_spec(8, 24, 1, 40), 23);
  EXPECT_EQ(fx.layer.forward(fx.input_q), fx.layer.forward(fx.input_q));
}

TEST(LayerActivationStats, DefaultsToZero) {
  const LayerActivationStats s{};
  EXPECT_DOUBLE_EQ(s.dwc_input_zero_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.pwc_input_zero_fraction, 0.0);
}

}  // namespace
}  // namespace edea::nn
