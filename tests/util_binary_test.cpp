// util_binary_test - direct coverage of the binary encoding substrate
// (util/binary.hpp) the persisted result cache is built on: ByteWriter /
// ByteReader round trips over pods and length-prefixed strings, exact
// buffer layout, and loud rejection of every out-of-bounds read - the
// guarantees cache_persistence_test only exercises indirectly.
#include "util/binary.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/check.hpp"

namespace edea::util {
namespace {

TEST(ByteWriterTest, PodsAppendTheirExactObjectRepresentation) {
  ByteWriter w;
  w.pod(std::uint8_t{0xAB});
  EXPECT_EQ(w.buffer().size(), 1u);
  w.pod(std::int32_t{-2});
  EXPECT_EQ(w.buffer().size(), 1u + sizeof(std::int32_t));
  w.pod(3.5);
  EXPECT_EQ(w.buffer().size(), 1u + sizeof(std::int32_t) + sizeof(double));
  EXPECT_EQ(static_cast<unsigned char>(w.buffer()[0]), 0xABu);
}

TEST(ByteWriterTest, StringsAreLengthPrefixedAndMayContainNuls) {
  ByteWriter w;
  const std::string payload("a\0b", 3);
  w.str(payload);
  // 64-bit size prefix + the raw bytes, NULs preserved.
  ASSERT_EQ(w.buffer().size(), sizeof(std::uint64_t) + 3u);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.str(), payload);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteRoundTripTest, MixedSequenceDecodesFieldForField) {
  ByteWriter w;
  w.pod(std::uint64_t{0x1122334455667788ull});
  w.str("");
  w.pod(std::int64_t{-42});
  w.str("hello world");
  w.pod(1.25);
  w.pod(std::uint8_t{7});

  ByteReader r(w.buffer());
  EXPECT_EQ(r.pod<std::uint64_t>(), 0x1122334455667788ull);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.pod<std::int64_t>(), -42);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.pod<double>(), 1.25);
  EXPECT_EQ(r.pod<std::uint8_t>(), 7u);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReaderTest, TracksRemainingAndExhaustion) {
  ByteWriter w;
  w.pod(std::uint32_t{1});
  w.pod(std::uint32_t{2});
  ByteReader r(w.buffer());
  EXPECT_FALSE(r.exhausted());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.pod<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.exhausted());
  (void)r.pod<std::uint32_t>();
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReaderTest, PodPastTheEndThrowsWithoutAdvancing) {
  ByteWriter w;
  w.pod(std::uint16_t{0xBEEF});
  ByteReader r(w.buffer());
  // A wider read than what remains must throw ...
  EXPECT_THROW((void)r.pod<std::uint64_t>(), PreconditionError);
  // ... and leave the reader usable: the two bytes are still there.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.pod<std::uint16_t>(), 0xBEEF);
  // Reading from an exhausted reader throws too.
  EXPECT_THROW((void)r.pod<std::uint8_t>(), PreconditionError);
}

TEST(ByteReaderTest, EmptyBufferRejectsEveryRead) {
  ByteReader r(std::string_view{});
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW((void)r.pod<std::uint8_t>(), PreconditionError);
  EXPECT_THROW((void)r.str(), PreconditionError);
}

TEST(ByteReaderTest, TruncatedSizePrefixIsRejected) {
  // Fewer than the 8 prefix bytes: str() must not read a partial length.
  ByteReader r(std::string_view("\x03\x00\x00", 3));
  EXPECT_THROW((void)r.str(), PreconditionError);
}

TEST(ByteReaderTest, SizePrefixBeyondRemainingIsRejected) {
  // A valid 8-byte prefix announcing more payload than the buffer holds -
  // the shape a truncated cache file produces.
  ByteWriter w;
  w.pod(std::uint64_t{100});  // claims 100 bytes follow
  std::string bytes = w.buffer();
  bytes += "short";
  ByteReader r(bytes);
  EXPECT_THROW((void)r.str(), PreconditionError);
}

TEST(ByteReaderTest, HugeSizePrefixCannotOverflowTheBoundsCheck) {
  // 2^64-1 would wrap any naive pos+length arithmetic; the check compares
  // against remaining() and must reject cleanly.
  ByteWriter w;
  w.pod(std::numeric_limits<std::uint64_t>::max());
  w.pod(std::uint8_t{1});
  ByteReader r(w.buffer());
  EXPECT_THROW((void)r.str(), PreconditionError);
}

TEST(ByteRoundTripTest, ZeroLengthStringAtTheExactEndIsFine) {
  ByteWriter w;
  w.pod(std::uint64_t{0});
  ByteReader r(w.buffer());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteRoundTripTest, WriterBufferIsAppendOnlyAcrossReads) {
  // Reading never mutates the writer's buffer; two readers over the same
  // buffer decode independently.
  ByteWriter w;
  w.str("stable");
  ByteReader a(w.buffer());
  ByteReader b(w.buffer());
  EXPECT_EQ(a.str(), "stable");
  EXPECT_EQ(b.str(), "stable");
}

}  // namespace
}  // namespace edea::util
