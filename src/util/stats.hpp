// stats.hpp - streaming summary statistics (Welford) used by the fidelity
// metrics, the power-model calibration, and several property tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace edea {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  [[nodiscard]] double mean() const {
    EDEA_REQUIRE(n_ > 0, "mean of empty sample");
    return mean_;
  }

  /// Population variance (divides by n).
  [[nodiscard]] double variance() const {
    EDEA_REQUIRE(n_ > 0, "variance of empty sample");
    return m2_ / static_cast<double>(n_);
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  [[nodiscard]] double min() const {
    EDEA_REQUIRE(n_ > 0, "min of empty sample");
    return min_;
  }

  [[nodiscard]] double max() const {
    EDEA_REQUIRE(n_ > 0, "max of empty sample");
    return max_;
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Relative error |a-b| / max(|b|, eps). Used when comparing simulator
/// output against the paper's published figures.
inline double relative_error(double measured, double reference,
                             double eps = 1e-12) noexcept {
  const double denom = std::max(std::abs(reference), eps);
  return std::abs(measured - reference) / denom;
}

}  // namespace edea
