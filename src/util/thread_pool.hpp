// thread_pool.hpp - the parallel simulation runtime.
//
// A fixed-size pool of worker threads plus a `parallel_for` helper used by
// the DSE explorer and the sweep runner. Design constraints, in order:
//   1. determinism: callers write results by index, so scheduling order can
//      never change an outcome - parallel runs are bit-identical to serial,
//   2. no deadlock under nesting: `parallel_for` makes the calling thread
//      participate in its own range, so a task running on the pool may
//      itself issue a `parallel_for` (or submit) and still make progress
//      even when every worker is busy,
//   3. exception transparency: the first exception thrown by an iteration
//      cancels the remaining range and is rethrown on the caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace edea::util {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a callable; returns a future for its result. Safe to call
  /// from inside a pool task (the task is queued, never run inline), but a
  /// task that *blocks* on a nested future can starve a fully busy pool -
  /// prefer `parallel_for`, whose caller helps drain its own range.
  template <typename F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task(std::forward<F>(f));
    std::future<R> future = task.get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      EDEA_REQUIRE(!stop_, "submit on a stopped ThreadPool");
      queue_.emplace_back(std::move(task));
    }
    cv_.notify_one();
    return future;
  }

  /// The lazily constructed process-wide pool (hardware concurrency).
  [[nodiscard]] static ThreadPool& shared() {
    static ThreadPool pool;
    return pool;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::packaged_task<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ && drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

namespace detail {

/// Shared state of one parallel_for: an index dispenser plus completion
/// accounting. Iterations claim indices from `next`; `done` counts
/// completed iterations so the caller can wait for stragglers it did not
/// execute itself.
struct ParallelForState {
  std::atomic<std::int64_t> next{0};
  std::int64_t end = 0;
  std::atomic<std::int64_t> done{0};
  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr error;  // first failure, guarded by `mutex`

  void finish(std::int64_t count) {
    if (done.fetch_add(count, std::memory_order_acq_rel) + count >= end) {
      const std::lock_guard<std::mutex> lock(mutex);
      all_done.notify_all();
    }
  }

  void record_error(std::exception_ptr e) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!error) error = e;
  }
};

/// Claims and runs iterations until the range (or an error) exhausts it.
/// Returns the number of iterations this thread accounted for: ones it ran
/// (a failed iteration still counts as finished work) plus, on error, the
/// unclaimed tail it cancelled - every index in [0, end) is accounted for
/// exactly once, so the caller's completion wait always terminates.
template <typename Fn>
std::int64_t drain_parallel_for(ParallelForState& state, const Fn& fn) {
  std::int64_t finished = 0;
  for (;;) {
    const std::int64_t i =
        state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state.end) break;
    try {
      fn(i);
    } catch (...) {
      state.record_error(std::current_exception());
      // Cancel the rest of the range. The exchange atomically claims the
      // unclaimed tail [prev, end), which this thread credits as finished;
      // iterations other threads already claimed are credited by them.
      const std::int64_t prev =
          state.next.exchange(state.end, std::memory_order_relaxed);
      if (prev < state.end) finished += state.end - prev;
    }
    ++finished;
  }
  return finished;
}

}  // namespace detail

/// Runs fn(i) for every i in [begin, end), distributing iterations over
/// `pool` (default: ThreadPool::shared()). The calling thread participates,
/// so nested use from inside a pool task cannot deadlock. Iterations must
/// be independent; any determinism must come from writing results by index.
/// The first exception thrown by an iteration is rethrown here after every
/// claimed iteration has finished; remaining iterations are cancelled.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, const Fn& fn,
                  ThreadPool* pool = nullptr) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;  // empty (or inverted) range: no-op, touch nothing
  if (n == 1) {
    fn(begin);
    return;
  }

  if (pool == nullptr) pool = &ThreadPool::shared();
  auto state = std::make_shared<detail::ParallelForState>();
  state->end = n;
  const auto indexed = [&fn, begin](std::int64_t i) { fn(begin + i); };

  // One helper task per worker, at most one per iteration beyond the one
  // the caller will run. Futures are intentionally dropped: completion is
  // tracked through the state's `done` counter, and tasks own the state
  // via shared_ptr, so returning early is safe.
  const std::int64_t helpers =
      std::min<std::int64_t>(pool->size(), n - 1);
  for (std::int64_t h = 0; h < helpers; ++h) {
    auto future = pool->submit([state, indexed] {
      state->finish(detail::drain_parallel_for(*state, indexed));
    });
    (void)future;
  }

  state->finish(detail::drain_parallel_for(*state, indexed));

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) >= state->end;
  });
  if (state->error) std::rethrow_exception(state->error);
}

/// Runs fn(i) for i in [0, n) under a parallelism policy shared by the
/// sweep-style APIs: 0 = the shared pool, 1 = strictly serial on the
/// calling thread (the reference path), k > 1 = a dedicated k-thread pool.
/// Serial and parallel strategies are interchangeable for any fn that
/// writes results only by index.
template <typename Fn>
void run_indexed(int parallelism, std::int64_t n, const Fn& fn) {
  EDEA_REQUIRE(parallelism >= 0,
               "parallelism must be 0 (auto), 1 (serial), or a thread count");
  if (parallelism == 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (parallelism > 1) {
    ThreadPool pool(static_cast<unsigned>(parallelism));
    parallel_for(0, n, fn, &pool);
    return;
  }
  parallel_for(0, n, fn);
}

}  // namespace edea::util
