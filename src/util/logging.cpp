#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace edea::log {

namespace {
std::atomic<Level> g_level{Level::kInfo};
}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_level(Level lvl) noexcept {
  g_level.store(lvl, std::memory_order_relaxed);
}

std::string_view level_name(Level lvl) noexcept {
  switch (lvl) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}

void write(Level lvl, std::string_view msg) {
  if (lvl < level()) return;
  std::fprintf(stderr, "[edea %.*s] %.*s\n",
               static_cast<int>(level_name(lvl).size()), level_name(lvl).data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace edea::log
