// binary.hpp - bounds-checked binary encoding for persisted artifacts.
//
// The simulation service persists its result cache across restarts; this
// header provides the byte-level substrate: an append-only ByteWriter and
// a bounds-checked ByteReader over trivially copyable values and
// length-prefixed strings. Values are stored in native byte order - a
// cache file is a host-local artifact, not an interchange format - and
// every file carries a magic/version header plus a trailing content
// digest (see SimulationService::save_cache), so a file from a
// different-endian host fails validation instead of decoding garbage.
//
// ByteReader throws PreconditionError on any attempt to read past the end
// of the buffer: a truncated or corrupted file must be rejected loudly,
// never silently decoded into a partial cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

#include "util/check.hpp"

namespace edea::util {

/// Append-only binary encoder. Feed trivially copyable values and
/// length-prefixed strings; read the accumulated bytes with `buffer()`.
class ByteWriter {
 public:
  /// Appends the object representation of a trivially copyable value.
  /// Like Fnv1a64::pod, only feed types without internal padding.
  template <typename T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pod() requires a trivially copyable type");
    const auto* p = reinterpret_cast<const char*>(&value);
    buffer_.append(p, sizeof(T));
  }

  /// Appends a string as a 64-bit length prefix followed by the bytes.
  void str(std::string_view s) {
    pod(static_cast<std::uint64_t>(s.size()));
    buffer_.append(s.data(), s.size());
  }

  [[nodiscard]] const std::string& buffer() const noexcept { return buffer_; }

 private:
  std::string buffer_;
};

/// Sequential binary decoder over a fixed buffer. Every read is bounds
/// checked; reading past the end throws PreconditionError.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  template <typename T>
  [[nodiscard]] T pod() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pod() requires a trivially copyable type");
    EDEA_REQUIRE(remaining() >= sizeof(T),
                 "binary buffer truncated: value extends past the end");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[nodiscard]] std::string str() {
    const auto length = pod<std::uint64_t>();
    EDEA_REQUIRE(length <= remaining(),
                 "binary buffer truncated: string extends past the end");
    std::string value(data_.substr(pos_, static_cast<std::size_t>(length)));
    pos_ += static_cast<std::size_t>(length);
    return value;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace edea::util
