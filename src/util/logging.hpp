// logging.hpp - minimal leveled logger used by simulators and benches.
//
// The logger is deliberately tiny: a global level, timestamped lines to
// stderr, and a stream-style macro front end. Benchmarks set the level to
// kWarn so figure output stays clean; tests may raise it to kDebug.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace edea::log {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the current global log level.
Level level() noexcept;

/// Sets the global log level. Thread-compatible (not thread-safe): the
/// simulators are single-threaded by design, mirroring the single clock
/// domain of the silicon.
void set_level(Level lvl) noexcept;

/// Converts a level to its fixed-width display name ("DEBUG", "INFO ", ...).
std::string_view level_name(Level lvl) noexcept;

/// Emits one log line (no trailing newline required) if lvl >= level().
void write(Level lvl, std::string_view msg);

namespace detail {

/// RAII line builder: collects stream output, emits on destruction.
class LineEmitter {
 public:
  explicit LineEmitter(Level lvl) : lvl_(lvl) {}
  LineEmitter(const LineEmitter&) = delete;
  LineEmitter& operator=(const LineEmitter&) = delete;
  ~LineEmitter() { write(lvl_, os_.str()); }

  template <typename T>
  LineEmitter& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace edea::log

#define EDEA_LOG(lvl)                                      \
  if (::edea::log::level() <= (lvl))                       \
  ::edea::log::detail::LineEmitter(lvl)

#define EDEA_LOG_DEBUG EDEA_LOG(::edea::log::Level::kDebug)
#define EDEA_LOG_INFO EDEA_LOG(::edea::log::Level::kInfo)
#define EDEA_LOG_WARN EDEA_LOG(::edea::log::Level::kWarn)
#define EDEA_LOG_ERROR EDEA_LOG(::edea::log::Level::kError)
