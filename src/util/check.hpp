// check.hpp - error-handling primitives for the EDEA library.
//
// Follows the C++ Core Guidelines (E.*): exceptions for violated
// preconditions on public APIs, assert-like checks that cannot be disabled
// for invariants whose violation would silently corrupt simulation results.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace edea {

/// Exception thrown when a precondition of a public EDEA API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when an internal invariant of the simulator is violated.
/// Seeing this exception always indicates a bug in the library itself.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Exception thrown when a modeled hardware resource is exceeded
/// (e.g. writing past an SRAM buffer's capacity or overflowing the 24-bit
/// accumulator range the silicon provides).
class ResourceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(std::string_view expr,
                                            std::string_view msg,
                                            const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": precondition failed: ("
     << expr << ')';
  if (!msg.empty()) os << " - " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(std::string_view expr,
                                         std::string_view msg,
                                         const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": invariant violated: ("
     << expr << ')';
  if (!msg.empty()) os << " - " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail

}  // namespace edea

/// Validates a precondition of a public API. Throws edea::PreconditionError.
#define EDEA_REQUIRE(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::edea::detail::throw_precondition(#expr, (msg),                \
                                         std::source_location::current()); \
    }                                                                 \
  } while (false)

/// Validates an internal invariant. Throws edea::InvariantError.
/// Never compiled out: a wrong simulation result is worse than a slow one.
#define EDEA_ASSERT(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::edea::detail::throw_invariant(#expr, (msg),                   \
                                      std::source_location::current()); \
    }                                                                 \
  } while (false)
