// random.hpp - deterministic pseudo-random generation for synthetic data.
//
// Everything in this repository that consumes randomness (weights, images,
// property-test inputs) goes through Rng so runs are reproducible from a
// single seed. Rng wraps a SplitMix64-seeded xoshiro256** generator - small,
// fast, and adequate for synthetic-data purposes (no cryptographic claims).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace edea {

/// Deterministic PRNG with convenience samplers. Satisfies
/// UniformRandomBitGenerator so it also plugs into <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the xoshiro state, per the
    // generator authors' recommendation (avoids all-zero states).
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    EDEA_REQUIRE(lo <= hi, "uniform_int bounds inverted");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
      return static_cast<std::int64_t>((*this)());
    }
    // Rejection sampling to kill modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = 0;
    do {
      draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    cached_ = mag * std::sin(kTwoPi * u2);
    has_cached_ = true;
    return mag * std::cos(kTwoPi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derives an independent child generator (for per-layer weight streams).
  Rng fork() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace edea
