#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace edea {

namespace {

/// Heuristic: cells that parse as numbers are right-aligned.
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = 0;
  if (cell[i] == '-' || cell[i] == '+') ++i;
  bool saw_digit = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      saw_digit = true;
    } else if (c != '.' && c != ',' && c != '%' && c != 'e' && c != 'E' &&
               c != '-' && c != '+' && c != 'x' && c != 'X') {
      return false;
    }
  }
  return saw_digit;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  EDEA_REQUIRE(!headers_.empty(), "a table needs at least one column");
  widths_.reserve(headers_.size());
  for (const auto& h : headers_) widths_.push_back(h.size());
}

void TextTable::add_row(std::vector<std::string> cells) {
  EDEA_REQUIRE(cells.size() <= headers_.size(),
               "row has more cells than the table has columns");
  cells.resize(headers_.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    widths_[i] = std::max(widths_[i], cells[i].size());
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::num(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TextTable::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void TextTable::render(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& cells, bool header) {
    os << '|';
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      const auto width = static_cast<int>(widths_[i]);
      const bool right = !header && looks_numeric(cell);
      os << ' ' << (right ? std::right : std::left) << std::setw(width) << cell
         << " |";
    }
    os << '\n';
  };

  emit_row(headers_, /*header=*/true);
  os << '|';
  for (const std::size_t w : widths_) {
    os << std::string(w + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, /*header=*/false);
}

void TextTable::render(std::ostream& os, const std::string& caption) const {
  os << caption << '\n';
  render(os);
}

}  // namespace edea
