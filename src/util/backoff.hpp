// backoff.hpp - jittered exponential backoff for retry loops.
//
// Every retry path in the repository (pipelined-client busy retries, socket
// connect retries, cluster-router failover resends) computes its delay here
// so the policy is uniform and testable in one place: the nominal delay
// doubles per attempt up to a cap, and a multiplicative jitter drawn from a
// caller-owned Rng decorrelates concurrent retriers so they do not stampede
// a recovering server in lockstep. Determinism follows from the Rng: a
// seeded generator replays the exact same delay sequence.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/check.hpp"
#include "util/random.hpp"

namespace edea {

/// Shape of a jittered_backoff_ms schedule. The defaults reproduce the
/// pipelined client's busy-retry policy: delays double per attempt up to
/// base * 2^5, each scaled by uniform [0.5, 1.5) jitter.
struct BackoffOptions {
  /// Exponent cap: attempts beyond max_shift + 1 keep the capped nominal
  /// delay (base_ms * 2^max_shift) instead of growing without bound.
  int max_shift = 5;
  /// Multiplicative jitter range [jitter_min, jitter_max) applied to the
  /// nominal delay. jitter_min == jitter_max disables jitter (the Rng is
  /// still advanced exactly once, keeping delay sequences aligned).
  double jitter_min = 0.5;
  double jitter_max = 1.5;
};

/// Delay in milliseconds before retry number `attempt` (1-based: attempt 1
/// is the wait before the first retry). Draws exactly one jitter variate
/// from `rng`; the result is always >= 1 so callers can sleep on it
/// directly without a zero-delay spin. `base_ms` is the server-suggested or
/// policy base delay (>= 0; 0 still yields the 1ms floor).
[[nodiscard]] inline std::int64_t jittered_backoff_ms(
    int attempt, std::int64_t base_ms, Rng& rng,
    const BackoffOptions& options = {}) {
  EDEA_REQUIRE(attempt >= 1, "backoff attempt is 1-based");
  EDEA_REQUIRE(base_ms >= 0, "backoff base_ms must be >= 0");
  EDEA_REQUIRE(options.max_shift >= 0 && options.max_shift < 63,
               "backoff max_shift out of range");
  EDEA_REQUIRE(options.jitter_min >= 0.0 &&
                   options.jitter_min <= options.jitter_max,
               "backoff jitter range inverted");
  const int shift = std::min(attempt - 1, options.max_shift);
  const double nominal =
      static_cast<double>(base_ms) * static_cast<double>(std::int64_t{1} << shift);
  const double jitter =
      options.jitter_min == options.jitter_max
          ? (static_cast<void>(rng.uniform()), options.jitter_min)
          : rng.uniform(options.jitter_min, options.jitter_max);
  return std::max<std::int64_t>(1,
                                static_cast<std::int64_t>(nominal * jitter));
}

}  // namespace edea
