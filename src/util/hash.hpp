// hash.hpp - deterministic 64-bit content hashing (FNV-1a).
//
// Used wherever the library needs a stable identity for simulation inputs
// or outputs: the simulation service memoizes results under a
// (network fingerprint, config hash) key, and run summaries carry an
// output hash so two runs can be compared bit-for-bit from one integer.
// FNV-1a is not cryptographic; collisions are guarded against by also
// comparing the full key where correctness depends on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

namespace edea::util {

/// Incremental FNV-1a 64-bit hasher. Feed bytes / trivially copyable
/// values / vectors, then read `digest()`. Every `span` feed mixes the
/// element count first, so adjacent containers cannot alias each other's
/// byte streams.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  Fnv1a64& bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state_ ^= static_cast<std::uint64_t>(p[i]);
      state_ *= kPrime;
    }
    return *this;
  }

  /// Hashes the object representation of a trivially copyable value.
  /// Only feed types without internal padding (ints, floats, packed PODs);
  /// padding bytes would make the digest indeterminate.
  template <typename T>
  Fnv1a64& pod(const T& value) noexcept {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pod() requires a trivially copyable type");
    return bytes(&value, sizeof(T));
  }

  /// Hashes a vector of trivially copyable elements, length-prefixed.
  template <typename T>
  Fnv1a64& span(const std::vector<T>& values) noexcept {
    static_assert(std::is_trivially_copyable_v<T>,
                  "span() requires trivially copyable elements");
    pod(static_cast<std::uint64_t>(values.size()));
    if (!values.empty()) bytes(values.data(), values.size() * sizeof(T));
    return *this;
  }

  /// Hashes a string's characters, length-prefixed.
  Fnv1a64& str(std::string_view s) noexcept {
    pod(static_cast<std::uint64_t>(s.size()));
    return bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

}  // namespace edea::util
