// table.hpp - fixed-width ASCII table printer used by the bench harnesses.
//
// Every bench binary regenerates one table or figure of the paper; this
// printer gives them a uniform, diffable plain-text output format. Numeric
// cells are right-aligned, text cells left-aligned, and a caption line ties
// the output back to the paper artifact it reproduces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace edea {

/// Column-oriented ASCII table. Rows are added as pre-formatted strings or
/// through the typed helpers; width bookkeeping is automatic.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row. The row may have fewer cells than there are headers;
  /// missing cells render empty. Extra cells are a precondition violation.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (fixed notation).
  static std::string num(double value, int precision = 2);

  /// Formats an integer with thousands separators ("1,234,567").
  static std::string num(std::int64_t value);

  /// Formats a ratio as a percentage string ("12.34%").
  static std::string percent(double fraction, int precision = 2);

  /// Renders the table (header, separator, rows) to the stream.
  void render(std::ostream& os) const;

  /// Renders with a caption line above the table.
  void render(std::ostream& os, const std::string& caption) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

}  // namespace edea
