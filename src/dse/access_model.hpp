// access_model.hpp - analytic PE-size and access-count models of Sec. II.
//
// For loop order La with Tn=Tm=2 the equations are the paper's Table II
// verbatim; the Lb column uses the symmetric input-stationary model
// (weights re-fetched per spatial tile, activations fetched once per
// kernel group residency) - see DESIGN.md item 7.6 for the derivation and
// the documented deviation of absolute Lb magnitudes from Fig. 2b.
#pragma once

#include <cstdint>

#include "dse/loop_order.hpp"
#include "nn/layers.hpp"

namespace edea::dse {

/// PE-array (multiplier) requirements of a configuration (Fig. 2a; the
/// equations are the "PE Array" column of Table II).
struct PeArraySize {
  std::int64_t dwc = 0;  ///< Td x H x W x Tn x Tm
  std::int64_t pwc = 0;  ///< Td x Tk x Tn x Tm
  [[nodiscard]] std::int64_t total() const noexcept { return dwc + pwc; }
};

[[nodiscard]] PeArraySize pe_array_size(const TilingCase& tcase, int tn,
                                        int tm, int kernel = 3);

/// Access counts for one layer under one configuration (Fig. 2b bars).
struct AccessCount {
  std::int64_t dwc_activation = 0;
  std::int64_t dwc_weight = 0;
  std::int64_t pwc_activation = 0;
  std::int64_t pwc_weight = 0;

  [[nodiscard]] std::int64_t activation() const noexcept {
    return dwc_activation + pwc_activation;
  }
  [[nodiscard]] std::int64_t weight() const noexcept {
    return dwc_weight + pwc_weight;
  }
  [[nodiscard]] std::int64_t total() const noexcept {
    return activation() + weight();
  }

  AccessCount& operator+=(const AccessCount& o) noexcept {
    dwc_activation += o.dwc_activation;
    dwc_weight += o.dwc_weight;
    pwc_activation += o.pwc_activation;
    pwc_weight += o.pwc_weight;
    return *this;
  }
};

/// Access counts of one DSC layer under (order, Tn=Tm, Td, Tk).
[[nodiscard]] AccessCount layer_access(const nn::DscLayerSpec& spec,
                                       LoopOrder order, int tn, int tm,
                                       const TilingCase& tcase);

/// Sum of layer_access over a network.
[[nodiscard]] AccessCount network_access(
    const std::vector<nn::DscLayerSpec>& specs, LoopOrder order, int tn,
    int tm, const TilingCase& tcase);

// ---------------------------------------------------------------------------
// Fig. 3: intermediate-activation access elimination.
// ---------------------------------------------------------------------------

/// Per-layer activation memory-access analysis with and without streaming
/// the DWC output directly into the PWC. The baseline counts the padded
/// DWC input footprint, both sides of the intermediate map, and the PWC
/// output; streaming removes the two intermediate terms.
struct IntermediateAccessAnalysis {
  std::int64_t dwc_input = 0;      ///< (R+2p) * (C+2p) * D
  std::int64_t intermediate = 0;   ///< 2 * N * M * D (write + read)
  std::int64_t pwc_output = 0;     ///< N * M * K

  [[nodiscard]] std::int64_t baseline_total() const noexcept {
    return dwc_input + intermediate + pwc_output;
  }
  [[nodiscard]] std::int64_t streaming_total() const noexcept {
    return dwc_input + pwc_output;
  }
  /// Fraction of baseline accesses eliminated (paper: 15.4% .. 46.9%).
  [[nodiscard]] double reduction() const noexcept {
    return baseline_total() == 0
               ? 0.0
               : static_cast<double>(intermediate) /
                     static_cast<double>(baseline_total());
  }
};

[[nodiscard]] IntermediateAccessAnalysis intermediate_access(
    const nn::DscLayerSpec& spec);

/// Network-level totals (paper: 34.7% overall reduction).
struct IntermediateAccessTotals {
  std::int64_t baseline = 0;
  std::int64_t streaming = 0;
  [[nodiscard]] double reduction() const noexcept {
    return baseline == 0 ? 0.0
                         : 1.0 - static_cast<double>(streaming) /
                                     static_cast<double>(baseline);
  }
};

[[nodiscard]] IntermediateAccessTotals intermediate_access_totals(
    const std::vector<nn::DscLayerSpec>& specs);

}  // namespace edea::dse
