// explorer.hpp - the design space exploration of Sec. II: sweeps the four
// (loop order x Tn=Tm) groups over the six Table I tiling cases, evaluates
// PE-array size and total access count on a network, and selects the
// configuration the paper selected (La, Tn=Tm=2, Case 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/sweep_runner.hpp"
#include "dse/access_model.hpp"
#include "dse/loop_order.hpp"
#include "nn/layers.hpp"

namespace edea::dse {

/// One evaluated design point.
struct DesignPoint {
  ExplorationGroup group;
  TilingCase tcase;
  PeArraySize pe;
  AccessCount access;

  [[nodiscard]] std::string label() const;
};

/// Ranking policy, mirroring the paper's narrative: minimize total access
/// count; break ties toward higher compute parallelism (larger PE array),
/// which is how Case 6 (Td=8) wins over the access-equivalent Case 3
/// (Td=4) - more parallelism at equal traffic means lower latency.
struct ExplorationResult {
  std::vector<DesignPoint> points;  ///< all 24 design points, sweep order
  std::size_t best_index = 0;

  [[nodiscard]] const DesignPoint& best() const { return points[best_index]; }
};

/// Result of a simulated cross-backend sweep (see
/// Explorer::explore_backends): one outcome per requested backend, in
/// request order, plus the winner by simulated latency.
struct BackendSweepResult {
  /// outcomes[i].backend is the i-th requested id; infeasible or failing
  /// runs come back ok == false with the reason, like any sweep.
  std::vector<core::SweepOutcome> outcomes;
  /// Index of the ok outcome with the fewest total cycles (first wins
  /// ties - deterministic in the requested order). Meaningless when no
  /// outcome is ok; check outcomes[fastest_index].ok.
  std::size_t fastest_index = 0;
};

class Explorer {
 public:
  explicit Explorer(std::vector<nn::DscLayerSpec> specs);

  /// Evaluates all groups x cases on the configured network.
  ///
  /// `parallelism` selects the execution strategy: 0 (default) evaluates
  /// the design points on the shared thread pool, 1 runs strictly serially
  /// on the calling thread, n > 1 uses n pool threads. Every strategy
  /// produces the identical ExplorationResult: points are written by index
  /// in sweep order and the best-point selection runs serially after the
  /// sweep, so scheduling can never influence the outcome.
  [[nodiscard]] ExplorationResult explore(int parallelism = 0) const;

  /// The *simulated* half of the exploration: materializes the configured
  /// network (random quantized weights and input, deterministic in
  /// `seed`) and runs it through every backend in `backends` at `config`
  /// via core::SweepRunner - the dataflow dimension of the design space
  /// (EDEA vs the serialized baseline, cf. Fig. 3 / Table III). Outputs
  /// are bit-exact across backends (the backend contract), so the result
  /// isolates cycles and traffic. Pass core::backend_ids() to sweep every
  /// registered dataflow. `parallelism` is the sweep-level policy, as in
  /// explore(); results are deterministic at every setting. Unknown ids
  /// and an empty backend list are PreconditionErrors.
  [[nodiscard]] BackendSweepResult explore_backends(
      const std::vector<std::string>& backends,
      const core::EdeaConfig& config = core::EdeaConfig::paper(),
      std::uint64_t seed = 1, int parallelism = 0) const;

  [[nodiscard]] const std::vector<nn::DscLayerSpec>& specs() const noexcept {
    return specs_;
  }

 private:
  std::vector<nn::DscLayerSpec> specs_;
};

}  // namespace edea::dse
