// explorer.hpp - the design space exploration of Sec. II: sweeps the four
// (loop order x Tn=Tm) groups over the six Table I tiling cases, evaluates
// PE-array size and total access count on a network, and selects the
// configuration the paper selected (La, Tn=Tm=2, Case 6).
#pragma once

#include <string>
#include <vector>

#include "dse/access_model.hpp"
#include "dse/loop_order.hpp"
#include "nn/layers.hpp"

namespace edea::dse {

/// One evaluated design point.
struct DesignPoint {
  ExplorationGroup group;
  TilingCase tcase;
  PeArraySize pe;
  AccessCount access;

  [[nodiscard]] std::string label() const;
};

/// Ranking policy, mirroring the paper's narrative: minimize total access
/// count; break ties toward higher compute parallelism (larger PE array),
/// which is how Case 6 (Td=8) wins over the access-equivalent Case 3
/// (Td=4) - more parallelism at equal traffic means lower latency.
struct ExplorationResult {
  std::vector<DesignPoint> points;  ///< all 24 design points, sweep order
  std::size_t best_index = 0;

  [[nodiscard]] const DesignPoint& best() const { return points[best_index]; }
};

class Explorer {
 public:
  explicit Explorer(std::vector<nn::DscLayerSpec> specs);

  /// Evaluates all groups x cases on the configured network.
  [[nodiscard]] ExplorationResult explore() const;

  [[nodiscard]] const std::vector<nn::DscLayerSpec>& specs() const noexcept {
    return specs_;
  }

 private:
  std::vector<nn::DscLayerSpec> specs_;
};

}  // namespace edea::dse
