// explorer.hpp - the design space exploration of Sec. II: sweeps the four
// (loop order x Tn=Tm) groups over the six Table I tiling cases, evaluates
// PE-array size and total access count on a network, and selects the
// configuration the paper selected (La, Tn=Tm=2, Case 6).
#pragma once

#include <string>
#include <vector>

#include "dse/access_model.hpp"
#include "dse/loop_order.hpp"
#include "nn/layers.hpp"

namespace edea::dse {

/// One evaluated design point.
struct DesignPoint {
  ExplorationGroup group;
  TilingCase tcase;
  PeArraySize pe;
  AccessCount access;

  [[nodiscard]] std::string label() const;
};

/// Ranking policy, mirroring the paper's narrative: minimize total access
/// count; break ties toward higher compute parallelism (larger PE array),
/// which is how Case 6 (Td=8) wins over the access-equivalent Case 3
/// (Td=4) - more parallelism at equal traffic means lower latency.
struct ExplorationResult {
  std::vector<DesignPoint> points;  ///< all 24 design points, sweep order
  std::size_t best_index = 0;

  [[nodiscard]] const DesignPoint& best() const { return points[best_index]; }
};

class Explorer {
 public:
  explicit Explorer(std::vector<nn::DscLayerSpec> specs);

  /// Evaluates all groups x cases on the configured network.
  ///
  /// `parallelism` selects the execution strategy: 0 (default) evaluates
  /// the design points on the shared thread pool, 1 runs strictly serially
  /// on the calling thread, n > 1 uses n pool threads. Every strategy
  /// produces the identical ExplorationResult: points are written by index
  /// in sweep order and the best-point selection runs serially after the
  /// sweep, so scheduling can never influence the outcome.
  [[nodiscard]] ExplorationResult explore(int parallelism = 0) const;

  [[nodiscard]] const std::vector<nn::DscLayerSpec>& specs() const noexcept {
    return specs_;
  }

 private:
  std::vector<nn::DscLayerSpec> specs_;
};

}  // namespace edea::dse
