#include "dse/explorer.hpp"

#include <sstream>

#include "util/check.hpp"

namespace edea::dse {

std::string DesignPoint::label() const {
  std::ostringstream os;
  os << loop_order_name(group.order) << ", Tn=Tm=" << group.tn << ", Case"
     << tcase.id << " (Td=" << tcase.td << ", Tk=" << tcase.tk << ")";
  return os.str();
}

Explorer::Explorer(std::vector<nn::DscLayerSpec> specs)
    : specs_(std::move(specs)) {
  EDEA_REQUIRE(!specs_.empty(), "explorer needs at least one layer");
}

ExplorationResult Explorer::explore() const {
  ExplorationResult result;
  result.points.reserve(kExplorationGroups.size() * kTableICases.size());

  for (const ExplorationGroup& group : kExplorationGroups) {
    for (const TilingCase& tcase : kTableICases) {
      DesignPoint p;
      p.group = group;
      p.tcase = tcase;
      p.pe = pe_array_size(tcase, group.tn, group.tn);
      p.access = network_access(specs_, group.order, group.tn, group.tn,
                                tcase);
      result.points.push_back(p);
    }
  }

  for (std::size_t i = 1; i < result.points.size(); ++i) {
    const DesignPoint& cand = result.points[i];
    const DesignPoint& best = result.points[result.best_index];
    const bool better_access = cand.access.total() < best.access.total();
    const bool tied_access = cand.access.total() == best.access.total();
    // Tie-break toward parallelism (see ExplorationResult doc comment).
    if (better_access || (tied_access && cand.pe.total() > best.pe.total())) {
      result.best_index = i;
    }
  }
  return result;
}

}  // namespace edea::dse
