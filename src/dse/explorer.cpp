#include "dse/explorer.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace edea::dse {

std::string DesignPoint::label() const {
  std::ostringstream os;
  os << loop_order_name(group.order) << ", Tn=Tm=" << group.tn << ", Case"
     << tcase.id << " (Td=" << tcase.td << ", Tk=" << tcase.tk << ")";
  return os.str();
}

Explorer::Explorer(std::vector<nn::DscLayerSpec> specs)
    : specs_(std::move(specs)) {
  EDEA_REQUIRE(!specs_.empty(), "explorer needs at least one layer");
}

ExplorationResult Explorer::explore(int parallelism) const {
  ExplorationResult result;
  const std::size_t n = kExplorationGroups.size() * kTableICases.size();
  result.points.resize(n);

  // Each design point is a pure function of (specs, group, case); writing
  // by flat sweep index keeps parallel output bit-identical to serial.
  const auto evaluate = [this, &result](std::int64_t i) {
    const ExplorationGroup& group =
        kExplorationGroups[static_cast<std::size_t>(i) / kTableICases.size()];
    const TilingCase& tcase =
        kTableICases[static_cast<std::size_t>(i) % kTableICases.size()];
    DesignPoint& p = result.points[static_cast<std::size_t>(i)];
    p.group = group;
    p.tcase = tcase;
    p.pe = pe_array_size(tcase, group.tn, group.tn);
    p.access = network_access(specs_, group.order, group.tn, group.tn, tcase);
  };

  util::run_indexed(parallelism, static_cast<std::int64_t>(n), evaluate);

  for (std::size_t i = 1; i < result.points.size(); ++i) {
    const DesignPoint& cand = result.points[i];
    const DesignPoint& best = result.points[result.best_index];
    const bool better_access = cand.access.total() < best.access.total();
    const bool tied_access = cand.access.total() == best.access.total();
    // Tie-break toward parallelism (see ExplorationResult doc comment).
    if (better_access || (tied_access && cand.pe.total() > best.pe.total())) {
      result.best_index = i;
    }
  }
  return result;
}

}  // namespace edea::dse
