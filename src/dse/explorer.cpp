#include "dse/explorer.hpp"

#include <sstream>

#include "core/backend.hpp"
#include "nn/model_zoo.hpp"
#include "util/check.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace edea::dse {

std::string DesignPoint::label() const {
  std::ostringstream os;
  os << loop_order_name(group.order) << ", Tn=Tm=" << group.tn << ", Case"
     << tcase.id << " (Td=" << tcase.td << ", Tk=" << tcase.tk << ")";
  return os.str();
}

Explorer::Explorer(std::vector<nn::DscLayerSpec> specs)
    : specs_(std::move(specs)) {
  EDEA_REQUIRE(!specs_.empty(), "explorer needs at least one layer");
}

ExplorationResult Explorer::explore(int parallelism) const {
  ExplorationResult result;
  const std::size_t n = kExplorationGroups.size() * kTableICases.size();
  result.points.resize(n);

  // Each design point is a pure function of (specs, group, case); writing
  // by flat sweep index keeps parallel output bit-identical to serial.
  const auto evaluate = [this, &result](std::int64_t i) {
    const ExplorationGroup& group =
        kExplorationGroups[static_cast<std::size_t>(i) / kTableICases.size()];
    const TilingCase& tcase =
        kTableICases[static_cast<std::size_t>(i) % kTableICases.size()];
    DesignPoint& p = result.points[static_cast<std::size_t>(i)];
    p.group = group;
    p.tcase = tcase;
    p.pe = pe_array_size(tcase, group.tn, group.tn);
    p.access = network_access(specs_, group.order, group.tn, group.tn, tcase);
  };

  util::run_indexed(parallelism, static_cast<std::int64_t>(n), evaluate);

  for (std::size_t i = 1; i < result.points.size(); ++i) {
    const DesignPoint& cand = result.points[i];
    const DesignPoint& best = result.points[result.best_index];
    const bool better_access = cand.access.total() < best.access.total();
    const bool tied_access = cand.access.total() == best.access.total();
    // Tie-break toward parallelism (see ExplorationResult doc comment).
    if (better_access || (tied_access && cand.pe.total() > best.pe.total())) {
      result.best_index = i;
    }
  }
  return result;
}

BackendSweepResult Explorer::explore_backends(
    const std::vector<std::string>& backends, const core::EdeaConfig& config,
    std::uint64_t seed, int parallelism) const {
  EDEA_REQUIRE(!backends.empty(),
               "explore_backends needs at least one backend id");
  for (const std::string& id : backends) {
    EDEA_REQUIRE(core::backend_known(id),
                 "explore_backends: unknown backend '" + id + "' (known: " +
                     core::known_backends_string() + ")");
  }

  // Materialize the workload once; every backend consumes the identical
  // quantized layers and input (that is what makes the sweep controlled).
  const std::vector<nn::QuantDscLayer> layers =
      nn::make_random_quant_network(specs_, seed);
  Rng rng(seed ^ 0xD5E0B4CEu);
  nn::Int8Tensor input(nn::Shape{specs_.front().in_rows,
                                 specs_.front().in_cols,
                                 specs_.front().in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }

  std::vector<core::SweepJob> jobs;
  jobs.reserve(backends.size());
  for (const std::string& id : backends) {
    core::SweepJob job;
    job.name = id;
    job.config = config;
    job.backend = id;
    job.layers = &layers;
    job.input = &input;
    jobs.push_back(std::move(job));
  }

  core::SweepOptions options;
  options.parallelism = parallelism;
  BackendSweepResult result;
  result.outcomes = core::SweepRunner(options).run(jobs);

  for (std::size_t i = 1; i < result.outcomes.size(); ++i) {
    const core::SweepOutcome& cand = result.outcomes[i];
    const core::SweepOutcome& best = result.outcomes[result.fastest_index];
    if (!cand.ok) continue;
    if (!best.ok ||
        cand.summary.total_cycles < best.summary.total_cycles) {
      result.fastest_index = i;
    }
  }
  return result;
}

}  // namespace edea::dse
