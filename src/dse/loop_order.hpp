// loop_order.hpp - dataflow nomenclature of Sec. II.
//
// Five convolution loops (Fig. 1): Loop1 = MACs inside one window,
// Loop2 = the Td channels of a slice, Loop3 = spatial scan, Loop4 = the
// D/Td channel slices, Loop5 = the K/Tk kernel groups (PWC only). The two
// admissible orders swap Loop3 and Loop4:
//   La: Loop1 -> Loop2 -> Loop3 -> Loop4 -> Loop5   (spatial inner)
//   Lb: Loop1 -> Loop2 -> Loop4 -> Loop3 -> Loop5   (channel-slice inner)
#pragma once

#include <array>
#include <string_view>

namespace edea::dse {

enum class LoopOrder {
  kLa,  ///< spatial scan inside the channel-slice loop (weight stationary)
  kLb,  ///< channel-slice loop inside the spatial scan (input stationary)
};

[[nodiscard]] constexpr std::string_view loop_order_name(
    LoopOrder o) noexcept {
  return o == LoopOrder::kLa ? "La" : "Lb";
}

/// One tiling configuration candidate (Table I uses six (Td, Tk) cases,
/// crossed with Tn = Tm in {1, 2} and the two loop orders).
struct TilingCase {
  int id = 0;  ///< 1-based case number as in Table I
  int td = 4;
  int tk = 4;
};

/// Table I verbatim.
inline constexpr std::array<TilingCase, 6> kTableICases{{
    {1, 4, 4},
    {2, 4, 8},
    {3, 4, 16},
    {4, 8, 4},
    {5, 8, 8},
    {6, 8, 16},
}};

/// One exploration group: loop order x output-tile size.
struct ExplorationGroup {
  LoopOrder order = LoopOrder::kLa;
  int tn = 1;  ///< Tn = Tm constrained equal in the paper's sweep
};

inline constexpr std::array<ExplorationGroup, 4> kExplorationGroups{{
    {LoopOrder::kLa, 1},
    {LoopOrder::kLb, 1},
    {LoopOrder::kLa, 2},
    {LoopOrder::kLb, 2},
}};

}  // namespace edea::dse
