#include "dse/access_model.hpp"

#include "util/check.hpp"

namespace edea::dse {

namespace {

[[nodiscard]] std::int64_t ceil_div_i64(std::int64_t a,
                                        std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace

PeArraySize pe_array_size(const TilingCase& tcase, int tn, int tm,
                          int kernel) {
  EDEA_REQUIRE(tn > 0 && tm > 0 && kernel > 0, "tile sizes must be positive");
  PeArraySize size;
  size.dwc = std::int64_t{tcase.td} * kernel * kernel * tn * tm;
  size.pwc = std::int64_t{tcase.td} * tcase.tk * tn * tm;
  return size;
}

AccessCount layer_access(const nn::DscLayerSpec& spec, LoopOrder order,
                         int tn, int tm, const TilingCase& tcase) {
  EDEA_REQUIRE(tn > 0 && tm > 0, "tile sizes must be positive");
  const std::int64_t N = spec.out_rows();
  const std::int64_t M = spec.out_cols();
  const std::int64_t D = spec.in_channels;
  const std::int64_t K = spec.out_channels;
  const std::int64_t HW = std::int64_t{spec.kernel} * spec.kernel;

  // DWC engine window extents for this stride (Fig. 1's Tr x Tc).
  const std::int64_t tr = (tn - 1) * spec.stride + spec.kernel;
  const std::int64_t tc = (tm - 1) * spec.stride + spec.kernel;

  // Spatial engine-step count (the N*M / (Tn*Tm) factor of Table II,
  // exact for ragged edges).
  const std::int64_t spatial = ceil_div_i64(N, tn) * ceil_div_i64(M, tm);
  const std::int64_t kernel_groups = ceil_div_i64(K, tcase.tk);

  AccessCount a;
  // The DWC side is identical for both orders: every spatial step consumes
  // a Tr x Tc window across all D channels (Table II row 1).
  a.dwc_activation = tr * tc * spatial * D;

  if (order == LoopOrder::kLa) {
    // Weight stationary (Table II verbatim): kernels fetched once, PWC
    // activations re-fetched once per kernel-group residency.
    a.dwc_weight = HW * D;
    a.pwc_activation = N * M * D * kernel_groups;
    a.pwc_weight = D * K;
  } else {
    // Input stationary (symmetric model): activations fetched once, both
    // engines' weights re-fetched for every spatial tile.
    a.dwc_weight = HW * D * spatial;
    a.pwc_activation = N * M * D;
    a.pwc_weight = D * K * spatial;
  }
  return a;
}

AccessCount network_access(const std::vector<nn::DscLayerSpec>& specs,
                           LoopOrder order, int tn, int tm,
                           const TilingCase& tcase) {
  AccessCount total;
  for (const auto& spec : specs) {
    total += layer_access(spec, order, tn, tm, tcase);
  }
  return total;
}

IntermediateAccessAnalysis intermediate_access(const nn::DscLayerSpec& spec) {
  IntermediateAccessAnalysis a;
  const std::int64_t padded_rows = spec.in_rows + 2 * spec.padding;
  const std::int64_t padded_cols = spec.in_cols + 2 * spec.padding;
  a.dwc_input = padded_rows * padded_cols * spec.in_channels;
  a.intermediate = std::int64_t{2} * spec.out_rows() * spec.out_cols() *
                   spec.in_channels;
  a.pwc_output =
      std::int64_t{1} * spec.out_rows() * spec.out_cols() * spec.out_channels;
  return a;
}

IntermediateAccessTotals intermediate_access_totals(
    const std::vector<nn::DscLayerSpec>& specs) {
  IntermediateAccessTotals t;
  for (const auto& spec : specs) {
    const IntermediateAccessAnalysis a = intermediate_access(spec);
    t.baseline += a.baseline_total();
    t.streaming += a.streaming_total();
  }
  return t;
}

}  // namespace edea::dse
