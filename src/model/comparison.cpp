#include "model/comparison.hpp"

#include "model/area_model.hpp"
#include "model/tech_scaling.hpp"
#include "util/check.hpp"

namespace edea::model {

namespace {

ComparisonEntry from_paper_row(const PaperComparisonRow& row) {
  ComparisonEntry e;
  e.label = row.label;
  e.technology_nm = row.technology_nm;
  e.precision_bits = row.precision_bits;
  e.voltage_v = row.voltage_v;
  e.pe_count = row.pe_count;
  e.conv_type = row.conv_type;
  e.power_mw = row.power_mw;
  e.frequency_mhz = row.frequency_mhz;
  e.area_mm2 = row.area_mm2;
  e.throughput_gops = row.throughput_gops;
  e.energy_eff_tops_w = row.energy_eff_tops_w;
  e.area_eff_gops_mm2 = row.area_eff_gops_mm2;
  e.paper_norm_energy_eff = row.paper_norm_energy_eff;
  e.paper_norm_area_eff = row.paper_norm_area_eff;

  // Our analytic normalization: precision adjustment (Table III footnote),
  // then first-order technology/voltage scaling to 22 nm / 0.8 V.
  const TechPoint from{static_cast<double>(row.technology_nm), row.voltage_v};
  e.norm_energy_eff = scale_energy_efficiency(
      normalize_precision(row.energy_eff_tops_w, row.precision_bits), from,
      kReference22nm);
  e.norm_area_eff = scale_area_efficiency(
      normalize_precision(row.area_eff_gops_mm2, row.precision_bits), from,
      kReference22nm);
  return e;
}

}  // namespace

std::vector<ComparisonEntry> build_comparison_table(
    const SimulatedThisWork& simulated) {
  std::vector<ComparisonEntry> table;
  table.reserve(kPaperComparisonRows.size() + 2);
  for (const PaperComparisonRow& row : kPaperComparisonRows) {
    table.push_back(from_paper_row(row));
  }

  // The paper's own EDEA row (published silicon numbers).
  table.push_back(from_paper_row(kPaperThisWork));

  // The row derived from this repository's simulator + models. Already at
  // the reference node, so normalized == raw.
  ComparisonEntry e;
  e.label = "This Work (simulated)";
  e.technology_nm = 22;
  e.precision_bits = 8;
  e.voltage_v = 0.8;
  e.pe_count = simulated.pe_count;
  e.conv_type = "DWC+PWC";
  e.power_mw = simulated.avg_power_mw;
  e.frequency_mhz = 1000.0;
  e.area_mm2 = simulated.area_mm2;
  e.throughput_gops = simulated.peak_throughput_gops;
  e.energy_eff_tops_w = simulated.peak_energy_eff_tops_w;
  e.area_eff_gops_mm2 = AreaModel::area_efficiency(
      simulated.peak_throughput_gops, simulated.area_mm2);
  e.norm_energy_eff = e.energy_eff_tops_w;
  e.norm_area_eff = e.area_eff_gops_mm2;
  e.paper_norm_energy_eff = e.energy_eff_tops_w;
  e.paper_norm_area_eff = e.area_eff_gops_mm2;
  table.push_back(e);
  return table;
}

std::vector<AdvantageFactors> advantage_factors(
    const std::vector<ComparisonEntry>& table, std::size_t this_work_index) {
  EDEA_REQUIRE(this_work_index < table.size(), "index out of range");
  const ComparisonEntry& self = table[this_work_index];
  std::vector<AdvantageFactors> out;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (i == this_work_index) continue;
    const ComparisonEntry& other = table[i];
    AdvantageFactors f;
    f.versus = other.label;
    // "Raw" advantage compares 8-bit-equivalent ops (the paper's
    // double-dagger footnote), so 16-bit rows get the (16/8)^2 adjustment.
    const double other_ee_8bit =
        normalize_precision(other.energy_eff_tops_w, other.precision_bits);
    f.raw_energy =
        other_ee_8bit > 0 ? self.energy_eff_tops_w / other_ee_8bit : 0.0;
    f.normalized_energy = other.paper_norm_energy_eff > 0
                              ? self.energy_eff_tops_w /
                                    other.paper_norm_energy_eff
                              : 0.0;
    f.normalized_area =
        other.paper_norm_area_eff > 0
            ? self.area_eff_gops_mm2 / other.paper_norm_area_eff
            : 0.0;
    out.push_back(f);
  }
  return out;
}

}  // namespace edea::model
