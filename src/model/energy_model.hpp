// energy_model.hpp - event-level (bottom-up) energy accounting.
//
// Complements the calibrated top-down power model (power_model.hpp): each
// counted event of an accelerator run - MAC operations (gated by operand
// zeros), on-chip SRAM accesses, Non-Conv affines, external transfers -
// carries a per-event energy. Defaults are 22 nm-class estimates with the
// usual memory-hierarchy ordering (external >> SRAM >> MAC); a single
// calibration factor scales the MAC/SRAM/Non-Conv ("on-chip dynamic")
// energies so that the bottom-up total matches the top-down calibrated
// model at the paper's operating point, after which the *breakdown* is a
// genuine prediction.
#pragma once

#include <cstdint>

#include "core/run_result.hpp"

namespace edea::model {

/// Per-event energies in picojoules.
struct EnergyParams {
  double mac_pj = 0.10;            ///< int8 MAC, operand switching
  double mac_gated_pj = 0.01;      ///< int8 MAC with a zero activation
  double sram_access_pj = 0.06;    ///< on-chip buffer element access
  double nonconv_pj = 0.25;        ///< 24-bit fixed-point affine
  double external_access_pj = 10.0;  ///< off-chip element transfer
  double idle_pw_per_cycle_pj = 0.0; ///< leakage/clock per cycle (optional)
};

/// Energy of one layer run, by component.
struct EnergyBreakdown {
  double dwc_mac_pj = 0.0;
  double pwc_mac_pj = 0.0;
  double nonconv_pj = 0.0;
  double sram_pj = 0.0;
  double external_pj = 0.0;
  double idle_pj = 0.0;

  [[nodiscard]] double on_chip_pj() const noexcept {
    return dwc_mac_pj + pwc_mac_pj + nonconv_pj + sram_pj + idle_pj;
  }
  [[nodiscard]] double total_pj() const noexcept {
    return on_chip_pj() + external_pj;
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o) noexcept {
    dwc_mac_pj += o.dwc_mac_pj;
    pwc_mac_pj += o.pwc_mac_pj;
    nonconv_pj += o.nonconv_pj;
    sram_pj += o.sram_pj;
    external_pj += o.external_pj;
    idle_pj += o.idle_pj;
    return *this;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = EnergyParams{});

  [[nodiscard]] const EnergyParams& params() const noexcept {
    return params_;
  }

  /// Accounts every counted event of a layer run.
  [[nodiscard]] EnergyBreakdown account(const core::LayerRunResult& r) const;

  /// Average on-chip power (mW) implied by this model for a layer run.
  [[nodiscard]] double on_chip_power_mw(const core::LayerRunResult& r,
                                        double clock_ghz) const;

  /// Returns a copy whose on-chip event energies are scaled so that the
  /// bottom-up on-chip energy of `r` equals `target_on_chip_pj` (derived
  /// from the calibrated top-down model). External energy is untouched -
  /// the top-down model only covers the chip.
  [[nodiscard]] EnergyModel calibrated_to(const core::LayerRunResult& r,
                                          double target_on_chip_pj) const;

 private:
  EnergyParams params_;
};

}  // namespace edea::model
