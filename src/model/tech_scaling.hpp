// tech_scaling.hpp - technology/voltage normalization for Table III.
//
// The paper normalizes competitors to 22 nm / 0.8 V "following the
// methodology in [19]" (Latotzke & Gemmeke, IEEE Access 2021). We implement
// the standard first-order model:
//
//   energy/op      ~ C * V^2,  C ~ feature size
//     -> energy efficiency scales by (t_from / t_to) * (V_from / V_to)^2
//   area           ~ t^2
//     -> area efficiency scales by (t_from / t_to)^2
//   precision      -> 16-bit designs are normalized to 8-bit ops by
//                     (precision / 8)^2 (the paper's footnote)
//
// The paper's own normalized numbers (computed with [19]'s empirical
// per-node factors) are preserved in paper_data.hpp; Table III benches
// print both so the difference in methodology is visible.
#pragma once

#include "util/check.hpp"

namespace edea::model {

struct TechPoint {
  double technology_nm = 22.0;
  double voltage_v = 0.8;
};

inline constexpr TechPoint kReference22nm{22.0, 0.8};

/// Scales an energy efficiency (TOPS/W) measured at `from` to `to`.
[[nodiscard]] inline double scale_energy_efficiency(double tops_w,
                                                    TechPoint from,
                                                    TechPoint to) {
  EDEA_REQUIRE(from.technology_nm > 0 && to.technology_nm > 0 &&
                   from.voltage_v > 0 && to.voltage_v > 0,
               "technology points must be positive");
  const double tech = from.technology_nm / to.technology_nm;
  const double volt = from.voltage_v / to.voltage_v;
  return tops_w * tech * volt * volt;
}

/// Scales an area efficiency (GOPS/mm^2) measured at `from` to `to`.
[[nodiscard]] inline double scale_area_efficiency(double gops_mm2,
                                                  TechPoint from,
                                                  TechPoint to) {
  EDEA_REQUIRE(from.technology_nm > 0 && to.technology_nm > 0,
               "technology points must be positive");
  const double tech = from.technology_nm / to.technology_nm;
  return gops_mm2 * tech * tech;
}

/// Normalizes a throughput/efficiency figure quoted at `bits`-bit precision
/// to 8-bit-equivalent ops: (bits / 8)^2 (Table III footnote).
[[nodiscard]] inline double normalize_precision(double value, int bits) {
  EDEA_REQUIRE(bits > 0, "precision must be positive");
  const double f = static_cast<double>(bits) / 8.0;
  return value * f * f;
}

}  // namespace edea::model
