// report.hpp - human-readable profiling reports for accelerator runs.
//
// Ties the whole evaluation stack together: given a NetworkRunResult (from
// the cycle-accurate simulator) plus the calibrated power and energy
// models, renders the profile a performance engineer would want - per-layer
// timing/throughput/utilization/sparsity, power and energy, traffic by
// class, and network totals. Used by the profile_network example and
// available to downstream users as a library call.
#pragma once

#include <iosfwd>
#include <string>

#include "core/run_result.hpp"
#include "model/energy_model.hpp"
#include "model/power_model.hpp"

namespace edea::model {

/// Options controlling which report sections are rendered.
struct ReportOptions {
  bool per_layer = true;
  bool traffic = true;
  bool power = true;
  bool totals = true;
  double clock_ghz = 1.0;
};

/// Aggregated network-level metrics (also useful programmatically).
struct NetworkSummary {
  std::int64_t total_macs = 0;
  std::int64_t total_cycles = 0;
  double total_time_us = 0.0;
  double average_gops = 0.0;
  double average_power_mw = 0.0;       ///< top-down model, measured sparsity
  double average_efficiency_tops_w = 0.0;
  double on_chip_energy_uj = 0.0;      ///< bottom-up event model
  double external_energy_uj = 0.0;
  std::int64_t external_accesses = 0;
  bool all_layers_bit_envelope_ok = true;  ///< 24-bit accumulator check
};

/// Computes the summary without rendering.
[[nodiscard]] NetworkSummary summarize(const core::NetworkRunResult& run,
                                       const PowerModel& power,
                                       const EnergyModel& energy,
                                       double clock_ghz = 1.0);

/// Renders the full report to `os`.
void render_network_report(std::ostream& os,
                           const core::NetworkRunResult& run,
                           const PowerModel& power,
                           const EnergyModel& energy,
                           const ReportOptions& options = ReportOptions{});

}  // namespace edea::model
