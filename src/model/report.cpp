#include "model/report.hpp"

#include <ostream>

#include "util/check.hpp"
#include "util/table.hpp"

namespace edea::model {

namespace {

OperatingPoint operating_point(const core::LayerRunResult& r) {
  OperatingPoint op;
  op.duty_dwc = r.dwc_duty();
  op.duty_pwc = r.pwc_duty();
  op.act_dwc = 1.0 - r.dwc_input_zero_fraction;
  op.act_pwc = 1.0 - r.pwc_input_zero_fraction;
  return op;
}

}  // namespace

NetworkSummary summarize(const core::NetworkRunResult& run,
                         const PowerModel& power, const EnergyModel& energy,
                         double clock_ghz) {
  EDEA_REQUIRE(!run.layers.empty(), "cannot summarize an empty run");
  EDEA_REQUIRE(clock_ghz > 0.0, "clock must be positive");

  NetworkSummary s;
  double energy_pj_topdown = 0.0;
  for (const auto& r : run.layers) {
    s.total_macs += r.spec.total_macs();
    s.total_cycles += r.timing.total_cycles;
    const double t_ns = r.time_ns(clock_ghz);
    energy_pj_topdown += power.power_mw(operating_point(r)) * t_ns;
    const EnergyBreakdown e = energy.account(r);
    s.on_chip_energy_uj += e.on_chip_pj() / 1e6;
    s.external_energy_uj += e.external_pj / 1e6;
    s.external_accesses += r.external.total_accesses();
    s.all_layers_bit_envelope_ok =
        s.all_layers_bit_envelope_ok && r.within_24bit_accumulator();
  }
  s.total_time_us =
      static_cast<double>(s.total_cycles) / clock_ghz / 1000.0;
  s.average_gops = run.average_throughput_gops(clock_ghz);
  s.average_power_mw =
      energy_pj_topdown / (static_cast<double>(s.total_cycles) / clock_ghz);
  s.average_efficiency_tops_w =
      static_cast<double>(run.total_ops()) / energy_pj_topdown;
  return s;
}

void render_network_report(std::ostream& os,
                           const core::NetworkRunResult& run,
                           const PowerModel& power, const EnergyModel& energy,
                           const ReportOptions& options) {
  const NetworkSummary s = summarize(run, power, energy, options.clock_ghz);

  if (options.per_layer) {
    os << "--- per-layer profile ---\n";
    TextTable t({"layer", "shape", "cycles", "GOPS", "DWC duty", "PWC duty",
                 "util", "PWC in zero%", "P (mW)"});
    for (const auto& r : run.layers) {
      const double p = power.power_mw(operating_point(r));
      const bool full_util = r.dwc_lane_utilization() >= 1.0 &&
                             r.pwc_lane_utilization() >= 1.0;
      t.add_row({std::to_string(r.spec.index), r.spec.to_string(),
                 TextTable::num(r.timing.total_cycles),
                 TextTable::num(r.throughput_gops(options.clock_ghz), 1),
                 TextTable::percent(r.dwc_duty(), 1),
                 TextTable::percent(r.pwc_duty(), 1),
                 full_util ? "100%" : "<100%",
                 TextTable::percent(r.pwc_input_zero_fraction, 1),
                 TextTable::num(p, 1)});
    }
    t.render(os);
  }

  if (options.traffic) {
    os << "\n--- external traffic (elements) ---\n";
    TextTable t({"layer", "act reads", "act writes", "weights", "params"});
    for (const auto& r : run.layers) {
      t.add_row({std::to_string(r.spec.index),
                 TextTable::num(r.external
                                    .counter(arch::TrafficClass::kActivation)
                                    .reads),
                 TextTable::num(r.external
                                    .counter(arch::TrafficClass::kActivation)
                                    .writes),
                 TextTable::num(
                     r.external.accesses(arch::TrafficClass::kWeight)),
                 TextTable::num(
                     r.external.accesses(arch::TrafficClass::kParameter))});
    }
    t.render(os);
  }

  if (options.power) {
    os << "\n--- energy (bottom-up event model) ---\n";
    TextTable t({"layer", "on-chip (nJ)", "external (nJ)", "psum max",
                 "24-bit OK"});
    for (const auto& r : run.layers) {
      const EnergyBreakdown e = energy.account(r);
      t.add_row({std::to_string(r.spec.index),
                 TextTable::num(e.on_chip_pj() / 1000.0, 2),
                 TextTable::num(e.external_pj / 1000.0, 2),
                 TextTable::num(r.max_abs_psum),
                 r.within_24bit_accumulator() ? "yes" : "NO"});
    }
    t.render(os);
  }

  if (options.totals) {
    os << "\n--- network totals ---\n";
    TextTable t({"metric", "value"});
    t.add_row({"MACs", TextTable::num(s.total_macs)});
    t.add_row({"cycles", TextTable::num(s.total_cycles)});
    t.add_row({"time (us)", TextTable::num(s.total_time_us, 2)});
    t.add_row({"average throughput (GOPS)",
               TextTable::num(s.average_gops, 1)});
    t.add_row({"average power (mW, top-down)",
               TextTable::num(s.average_power_mw, 1)});
    t.add_row({"efficiency (TOPS/W)",
               TextTable::num(s.average_efficiency_tops_w, 2)});
    t.add_row({"on-chip energy (uJ)",
               TextTable::num(s.on_chip_energy_uj, 3)});
    t.add_row({"external energy (uJ)",
               TextTable::num(s.external_energy_uj, 3)});
    t.add_row({"external accesses", TextTable::num(s.external_accesses)});
    t.add_row({"24-bit accumulator envelope",
               s.all_layers_bit_envelope_ok ? "respected" : "VIOLATED"});
    t.render(os);
  }
}

}  // namespace edea::model
