// paper_data.hpp - the published EDEA measurements (SOCC 2024) used as
// calibration anchors and as reference columns in the reproduction benches.
// Everything here is transcribed from the paper; provenance is noted per
// item. These are *data*, not model output.
#pragma once

#include <array>
#include <cstdint>

namespace edea::model {

inline constexpr int kPaperLayerCount = 13;

/// Fig. 12: per-layer energy efficiency in TOPS/W.
inline constexpr std::array<double, kPaperLayerCount> kPaperEfficiencyTopsW{
    10.89, 8.70, 9.07, 9.36, 9.69, 9.81, 9.74,
    11.99, 12.51, 12.50, 13.43, 10.77, 13.38};

/// Fig. 13: per-layer throughput in GOPS (1 GHz clock).
inline constexpr std::array<double, kPaperLayerCount> kPaperThroughputGops{
    1024.0, 1024.0, 1024.0, 1024.0, 1024.0, 973.5, 973.5,
    973.5,  973.5,  973.5,  973.5,  905.6,  905.6};

/// Derived per-layer power in mW (throughput / efficiency; Sec. IV-A quotes
/// layer 1 = 117.7 mW and layer 12 = 67.7 mW, which this reproduces).
[[nodiscard]] constexpr double paper_layer_power_mw(int layer) {
  return kPaperThroughputGops[static_cast<std::size_t>(layer)] /
         kPaperEfficiencyTopsW[static_cast<std::size_t>(layer)];
}

/// Fig. 11 (text): layer 12 zero percentages for the two engine inputs.
inline constexpr double kPaperLayer12DwcZero = 0.974;
inline constexpr double kPaperLayer12PwcZero = 0.953;

/// Headline numbers (abstract / Sec. IV).
inline constexpr double kPaperPeakEfficiencyTopsW = 13.43;
inline constexpr double kPaperPeakThroughputGops = 1024.0;
inline constexpr double kPaperAvgEfficiencyTopsW = 11.13;
inline constexpr double kPaperAvgThroughputGops = 981.42;
inline constexpr double kPaperClockGhz = 1.0;

/// Fig. 8: layout dimensions and total area.
inline constexpr double kPaperDieWidthUm = 825.032;
inline constexpr double kPaperDieHeightUm = 699.52;
inline constexpr double kPaperAreaMm2 = 0.58;

/// Fig. 9 left: area breakdown (fractions sum to 1).
struct AreaBreakdown {
  double pwc_engine = 0.4790;
  double dwc_engine = 0.2837;
  double nonconv = 0.1487;
  double buffers = 0.0538;    // interpretation: on-chip SRAM macros
  double control = 0.0248;    // interpretation: control/interconnect
  double clock = 0.0100;      // interpretation: clock distribution
};

/// Fig. 9 right: power breakdown (fractions sum to 1). The paper states
/// the "others" slice is clock-tree power.
struct PowerBreakdown {
  double pwc_engine = 0.6623;
  double dwc_engine = 0.1570;
  double nonconv = 0.0614;
  double intermediate_buffer = 0.0420;
  double weight_buffers = 0.0349;
  double clock_tree = 0.0348;
  double offline_buffer = 0.0075;
};

/// Table III: comparison rows as published (pre-normalization).
struct PaperComparisonRow {
  const char* label;
  int technology_nm;
  int precision_bits;
  double voltage_v;
  int pe_count;
  const char* benchmark;
  const char* conv_type;
  double power_mw;
  double frequency_mhz;
  double area_mm2;
  double throughput_gops;
  double energy_eff_tops_w;
  double area_eff_gops_mm2;
  // The paper's own normalized values (its [19] methodology), kept for
  // side-by-side comparison with our analytic normalization.
  double paper_norm_energy_eff;
  double paper_norm_area_eff;
};

inline constexpr std::array<PaperComparisonRow, 5> kPaperComparisonRows{{
    {"ISVLSI'19 [16]", 65, 8, 1.08, 256, "MobileNetV1", "DWC+PWC", 55.4,
     100.0, 3.24, 51.2, 0.92, 15.8, 7.73, 266.86},
    // 16-bit design: raw values as published; the (16/8)^2 precision
    // normalization (Table III's double-dagger) is applied by the builder.
    {"TCCE-TW'21 [17]", 40, 16, 0.9, 128, "MobileNetV1", "DWC+PWC", 112.5,
     200.0, 2.168, 38.8, 0.34, 17.9, 4.32, 290.12},
    {"TCASI'24 [18]", 28, 8, 0.9, 288, "DTN", "SC+DSC", 43.6, 200.0, 1.485,
     215.6, 4.94, 145.28, 9.9, 255.0},
    {"VLSI-SoC'23 [4] DWC", 22, 8, 0.8, 72, "MobileNetV1", "DWC", 25.6,
     1000.0, 0.25, 129.8, 5.07, 519.2, 5.07, 519.2},
    {"VLSI-SoC'23 [4] PWC", 22, 8, 0.8, 72, "MobileNetV1", "PWC", 29.16,
     1000.0, 0.25, 115.38, 3.96, 461.52, 3.96, 461.52},
}};

/// "This Work" row as published.
inline constexpr PaperComparisonRow kPaperThisWork{
    "EDEA (paper)", 22, 8, 0.8, 800, "MobileNetV1", "DWC+PWC", 72.5,
    1000.0, 0.58, 973.55, 13.43, 1678.53, 13.43, 1678.53};

}  // namespace edea::model
