#include "model/power_model.hpp"

#include <cmath>

#include "nn/mobilenet.hpp"
#include "util/check.hpp"

namespace edea::model {

namespace {

/// Early-layer activity assumption used by anchor A2 (45% zeros).
constexpr double kLayer1ActivityAssumption = 0.55;

}  // namespace

PowerModel::PowerModel(double c_idle_mw, double c_dwc_mw, double c_pwc_mw)
    : c_idle_(c_idle_mw), c_dwc_(c_dwc_mw), c_pwc_(c_pwc_mw) {
  EDEA_REQUIRE(c_idle_mw >= 0.0 && c_dwc_mw >= 0.0 && c_pwc_mw >= 0.0,
               "power coefficients must be non-negative");
}

std::array<OperatingPoint, kPaperLayerCount> paper_layer_duties(
    const core::EdeaConfig& config) {
  const core::TimingModel timing(config);
  const auto specs = nn::mobilenet_dsc_specs();
  std::array<OperatingPoint, kPaperLayerCount> points{};
  for (int i = 0; i < kPaperLayerCount; ++i) {
    const core::LayerTiming t =
        timing.layer_timing(specs[static_cast<std::size_t>(i)]);
    OperatingPoint& op = points[static_cast<std::size_t>(i)];
    op.duty_dwc = static_cast<double>(t.dwc_active_cycles) /
                  static_cast<double>(t.total_cycles);
    op.duty_pwc = static_cast<double>(t.pwc_active_cycles) /
                  static_cast<double>(t.total_cycles);
  }
  return points;
}

PowerModel PowerModel::paper_calibrated(const core::EdeaConfig& config) {
  const auto duties = paper_layer_duties(config);

  // Anchor A3: per-lane parity ties the two switching coefficients.
  const double lane_ratio = static_cast<double>(config.dwc_mac_count()) /
                            static_cast<double>(config.pwc_mac_count());

  // Anchor A1 (layer 12, published zero percentages):
  //   c_idle + c_pwc * (lane_ratio*d12_dwc*a12_dwc + d12_pwc*a12_pwc) = P12
  const OperatingPoint& d12 = duties[12];
  const double a12_dwc = 1.0 - kPaperLayer12DwcZero;
  const double a12_pwc = 1.0 - kPaperLayer12PwcZero;
  const double w12 =
      lane_ratio * d12.duty_dwc * a12_dwc + d12.duty_pwc * a12_pwc;
  const double p12 = paper_layer_power_mw(12);

  // Anchor A2 (layer 1, assumed activity):
  const OperatingPoint& d1 = duties[1];
  const double w1 =
      (lane_ratio * d1.duty_dwc + d1.duty_pwc) * kLayer1ActivityAssumption;
  const double p1 = paper_layer_power_mw(1);

  // Two equations in (c_idle, c_pwc):
  //   c_idle + w12 * c_pwc = p12
  //   c_idle + w1  * c_pwc = p1
  const double c_pwc = (p1 - p12) / (w1 - w12);
  const double c_idle = p12 - w12 * c_pwc;
  const double c_dwc = lane_ratio * c_pwc;
  EDEA_ASSERT(c_pwc > 0.0 && c_idle > 0.0,
              "power-model calibration produced non-physical coefficients");
  return PowerModel(c_idle, c_dwc, c_pwc);
}

double PowerModel::invert_activity(double duty_dwc, double duty_pwc,
                                   double target_power_mw) const {
  const double denom = c_dwc_ * duty_dwc + c_pwc_ * duty_pwc;
  EDEA_REQUIRE(denom > 0.0, "cannot invert activity with zero duty");
  const double a = (target_power_mw - c_idle_) / denom;
  return a;
}

std::array<OperatingPoint, kPaperLayerCount>
paper_calibrated_operating_points(const core::EdeaConfig& config) {
  const PowerModel model = PowerModel::paper_calibrated(config);
  auto points = paper_layer_duties(config);
  for (int i = 0; i < kPaperLayerCount; ++i) {
    OperatingPoint& op = points[static_cast<std::size_t>(i)];
    if (i == 12) {
      // Layer 12 keeps its two published zero percentages.
      op.act_dwc = 1.0 - kPaperLayer12DwcZero;
      op.act_pwc = 1.0 - kPaperLayer12PwcZero;
    } else {
      const double a = model.invert_activity(op.duty_dwc, op.duty_pwc,
                                             paper_layer_power_mw(i));
      op.act_dwc = a;
      op.act_pwc = a;
    }
  }
  return points;
}

}  // namespace edea::model
