// comparison.hpp - Table III: comparison with state-of-the-art works.
//
// Builds the full comparison table: the five published competitor rows,
// the paper's own EDEA row, and a "This Work (simulated)" row derived live
// from this repository's timing + power models, with both the paper's and
// our analytic normalization to 22 nm / 0.8 V.
#pragma once

#include <string>
#include <vector>

#include "model/paper_data.hpp"

namespace edea::model {

/// A fully-populated comparison row ready for printing.
struct ComparisonEntry {
  std::string label;
  int technology_nm = 0;
  int precision_bits = 0;
  double voltage_v = 0.0;
  int pe_count = 0;
  std::string conv_type;
  double power_mw = 0.0;
  double frequency_mhz = 0.0;
  double area_mm2 = 0.0;
  double throughput_gops = 0.0;
  double energy_eff_tops_w = 0.0;
  double area_eff_gops_mm2 = 0.0;
  double norm_energy_eff = 0.0;       ///< our analytic normalization
  double norm_area_eff = 0.0;
  double paper_norm_energy_eff = 0.0; ///< the paper's published normalization
  double paper_norm_area_eff = 0.0;
};

/// Simulated "This Work" figures supplied by the caller (from the cycle
/// simulator and calibrated power model).
struct SimulatedThisWork {
  double peak_throughput_gops = 0.0;
  double peak_energy_eff_tops_w = 0.0;
  double avg_power_mw = 0.0;
  double area_mm2 = 0.0;
  int pe_count = 0;
};

/// Builds the table. Normalized columns are already precision-adjusted
/// (16-bit rows scaled by (16/8)^2, matching the paper's footnote).
[[nodiscard]] std::vector<ComparisonEntry> build_comparison_table(
    const SimulatedThisWork& simulated);

/// Energy-efficiency advantage factors of this work over each competitor,
/// pre- and post-normalization (the paper quotes 14.6x/9.87x/2.72x/2.65x
/// raw and 1.74x/3.11x/1.37x/2.65x normalized).
struct AdvantageFactors {
  std::string versus;
  double raw_energy = 0.0;
  double normalized_energy = 0.0;
  double normalized_area = 0.0;
};

[[nodiscard]] std::vector<AdvantageFactors> advantage_factors(
    const std::vector<ComparisonEntry>& table, std::size_t this_work_index);

}  // namespace edea::model
