// area_model.hpp - silicon area model (Fig. 8 layout, Fig. 9 breakdown).
//
// The published total (0.58 mm^2 in GF 22FDX) and component percentages are
// anchors; from them the model derives per-MAC area constants so that
// scaled configurations (more channels / kernels, Sec. III-B) get a
// first-order area estimate for the scaling-study benches.
#pragma once

#include "core/config.hpp"
#include "model/paper_data.hpp"

namespace edea::model {

class AreaModel {
 public:
  [[nodiscard]] static AreaModel paper() { return AreaModel{}; }

  [[nodiscard]] double total_mm2() const noexcept { return kPaperAreaMm2; }
  [[nodiscard]] const AreaBreakdown& breakdown() const noexcept {
    return breakdown_;
  }

  [[nodiscard]] double pwc_engine_mm2() const noexcept {
    return total_mm2() * breakdown_.pwc_engine;
  }
  [[nodiscard]] double dwc_engine_mm2() const noexcept {
    return total_mm2() * breakdown_.dwc_engine;
  }
  [[nodiscard]] double nonconv_mm2() const noexcept {
    return total_mm2() * breakdown_.nonconv;
  }

  /// Area per PWC multiplier lane, derived from the paper point (512 lanes).
  [[nodiscard]] double pwc_area_per_mac_mm2() const noexcept {
    return pwc_engine_mm2() / 512.0;
  }
  /// Area per DWC multiplier lane (288 lanes; larger than a PWC lane
  /// because of the deeper 9-input adder trees).
  [[nodiscard]] double dwc_area_per_mac_mm2() const noexcept {
    return dwc_engine_mm2() / 288.0;
  }

  /// First-order area estimate for a scaled configuration: engine areas
  /// scale with MAC count, the Non-Conv unit with Td, and the remaining
  /// components are carried over unchanged.
  [[nodiscard]] double estimate_mm2(const core::EdeaConfig& config) const {
    const double fixed = total_mm2() * (breakdown_.buffers +
                                        breakdown_.control + breakdown_.clock);
    const double nc = nonconv_mm2() * static_cast<double>(config.td) / 8.0;
    return fixed + nc +
           dwc_area_per_mac_mm2() * config.dwc_mac_count() +
           pwc_area_per_mac_mm2() * config.pwc_mac_count();
  }

  /// Area efficiency in GOPS/mm^2.
  [[nodiscard]] static double area_efficiency(double gops,
                                              double mm2) noexcept {
    return mm2 <= 0.0 ? 0.0 : gops / mm2;
  }

 private:
  AreaBreakdown breakdown_{};
};

}  // namespace edea::model
