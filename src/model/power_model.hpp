// power_model.hpp - activity-proportional power model (Figs. 9, 11, 12).
//
// Model (DESIGN.md item 7.4):
//
//   P(layer) = c_idle + c_dwc * duty_dwc * act_dwc + c_pwc * duty_pwc * act_pwc
//
// where duty_* is each engine's temporal occupancy (from the cycle-exact
// timing model), act_* = 1 - zero_fraction of the engine's input operands
// (zero activations gate multiplier switching), and c_idle lumps every
// activity-independent consumer (clock tree, pipeline registers, buffer
// transactions - which occur every cycle regardless of data values).
//
// Calibration solves the three coefficients from three published anchors:
//   (A1) layer 12 power = 67.68 mW at its published zero percentages
//        (97.4% DWC / 95.3% PWC, Fig. 11),
//   (A2) layer 1 power = 117.70 mW at an assumed early-layer activity of
//        0.55 (45% zeros - typical for a trained MobileNet's early layers),
//   (A3) per-lane switching parity: c_dwc / 288 = c_pwc / 512 (both engines
//        are int8 MAC arrays in the same process).
//
// Given the coefficients, the paper's remaining per-layer powers invert to
// an activity table ("paper-calibrated activities") that reproduces
// Figs. 11/12 exactly; the same coefficients applied to the *simulated*
// sparsity of the synthetic network give the "measured" series.
#pragma once

#include <array>
#include <cstdint>

#include "core/timing.hpp"
#include "model/paper_data.hpp"
#include "nn/layers.hpp"

namespace edea::model {

/// Engine operating point for one layer.
struct OperatingPoint {
  double duty_dwc = 0.0;  ///< DWC active cycles / total cycles
  double duty_pwc = 0.0;  ///< PWC active cycles / total cycles
  double act_dwc = 1.0;   ///< 1 - zero fraction of DWC input activations
  double act_pwc = 1.0;   ///< 1 - zero fraction of PWC input activations
};

class PowerModel {
 public:
  /// Calibrates against the paper anchors (see header comment).
  [[nodiscard]] static PowerModel paper_calibrated(
      const core::EdeaConfig& config = core::EdeaConfig::paper());

  /// Directly parameterized model (for ablations / sensitivity benches).
  PowerModel(double c_idle_mw, double c_dwc_mw, double c_pwc_mw);

  [[nodiscard]] double c_idle_mw() const noexcept { return c_idle_; }
  [[nodiscard]] double c_dwc_mw() const noexcept { return c_dwc_; }
  [[nodiscard]] double c_pwc_mw() const noexcept { return c_pwc_; }

  /// Power in mW at an operating point.
  [[nodiscard]] double power_mw(const OperatingPoint& op) const noexcept {
    return c_idle_ + c_dwc_ * op.duty_dwc * op.act_dwc +
           c_pwc_ * op.duty_pwc * op.act_pwc;
  }

  /// Energy efficiency in TOPS/W for `ops` executed over `time_ns` at
  /// `power_mw` (1 TOPS/W = 1 op/pJ; mW * ns = pJ).
  [[nodiscard]] static double efficiency_tops_w(std::int64_t ops,
                                                double time_ns,
                                                double power_mw) noexcept {
    const double pj = power_mw * time_ns;
    return pj <= 0.0 ? 0.0 : static_cast<double>(ops) / pj;
  }

  /// Inverts the model: the activity (assumed equal on both engines) that
  /// reproduces `target_power_mw` at the given duties.
  [[nodiscard]] double invert_activity(double duty_dwc, double duty_pwc,
                                       double target_power_mw) const;

 private:
  double c_idle_;
  double c_dwc_;
  double c_pwc_;
};

/// Per-layer operating-point duties of the paper configuration, computed
/// from the Eq. 1/2 timing model for the MobileNetV1 layer table.
[[nodiscard]] std::array<OperatingPoint, kPaperLayerCount>
paper_layer_duties(const core::EdeaConfig& config = core::EdeaConfig::paper());

/// The paper-calibrated activity table: activities inverted from the
/// published per-layer power so that the model reproduces Figs. 11/12
/// exactly. Returned as OperatingPoints with act_dwc == act_pwc except
/// layer 12, which uses the two published zero percentages.
[[nodiscard]] std::array<OperatingPoint, kPaperLayerCount>
paper_calibrated_operating_points(
    const core::EdeaConfig& config = core::EdeaConfig::paper());

}  // namespace edea::model
