#include "model/energy_model.hpp"

#include "util/check.hpp"

namespace edea::model {

EnergyModel::EnergyModel(EnergyParams params) : params_(params) {
  EDEA_REQUIRE(params_.mac_pj >= 0 && params_.mac_gated_pj >= 0 &&
                   params_.sram_access_pj >= 0 && params_.nonconv_pj >= 0 &&
                   params_.external_access_pj >= 0 &&
                   params_.idle_pw_per_cycle_pj >= 0,
               "event energies must be non-negative");
  EDEA_REQUIRE(params_.mac_gated_pj <= params_.mac_pj,
               "a gated MAC cannot cost more than an active one");
}

namespace {

double mac_energy(const arch::MacActivity& a, const EnergyParams& p) {
  const std::int64_t active = a.useful_macs - a.zero_operand_macs;
  return static_cast<double>(active) * p.mac_pj +
         static_cast<double>(a.zero_operand_macs) * p.mac_gated_pj;
}

std::int64_t sram_accesses(const core::BufferAccessSnapshot& b) {
  return b.dwc_ifmap.total_accesses() + b.dwc_weight.total_accesses() +
         b.offline.total_accesses() + b.intermediate.total_accesses() +
         b.pwc_weight.total_accesses() + b.accumulator.total_accesses();
}

}  // namespace

EnergyBreakdown EnergyModel::account(const core::LayerRunResult& r) const {
  EnergyBreakdown e;
  e.dwc_mac_pj = mac_energy(r.dwc_activity, params_);
  e.pwc_mac_pj = mac_energy(r.pwc_activity, params_);
  e.nonconv_pj = static_cast<double>(r.nonconv_transfer_ops +
                                     r.nonconv_writeback_ops) *
                 params_.nonconv_pj;
  e.sram_pj = static_cast<double>(sram_accesses(r.buffers)) *
              params_.sram_access_pj;
  e.external_pj = static_cast<double>(r.external.total_accesses()) *
                  params_.external_access_pj;
  e.idle_pj = static_cast<double>(r.timing.total_cycles) *
              params_.idle_pw_per_cycle_pj;
  return e;
}

double EnergyModel::on_chip_power_mw(const core::LayerRunResult& r,
                                     double clock_ghz) const {
  EDEA_REQUIRE(clock_ghz > 0.0, "clock must be positive");
  const double t_ns = r.timing.time_ns(clock_ghz);
  EDEA_REQUIRE(t_ns > 0.0, "layer run has zero duration");
  return account(r).on_chip_pj() / t_ns;  // pJ / ns == mW
}

EnergyModel EnergyModel::calibrated_to(const core::LayerRunResult& r,
                                       double target_on_chip_pj) const {
  EDEA_REQUIRE(target_on_chip_pj > 0.0, "target energy must be positive");
  const double current = account(r).on_chip_pj();
  EDEA_REQUIRE(current > 0.0, "cannot calibrate against a zero-energy run");
  const double scale = target_on_chip_pj / current;
  EnergyParams p = params_;
  p.mac_pj *= scale;
  p.mac_gated_pj *= scale;
  p.sram_access_pj *= scale;
  p.nonconv_pj *= scale;
  p.idle_pw_per_cycle_pj *= scale;
  return EnergyModel(p);
}

}  // namespace edea::model
