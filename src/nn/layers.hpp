// layers.hpp - depthwise-separable-convolution layer types: geometry,
// float parameters, quantized parameters, and the golden forward passes the
// accelerator simulator is validated against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"
#include "util/random.hpp"

namespace edea::nn {

/// Static geometry of one DSC layer (Fig. 1 nomenclature): ifmap R x C x D,
/// DWC kernel H x W x D with stride s, DWC/PWC intermediate N x M x D, PWC
/// kernels 1 x 1 x D x K, ofmap N x M x K.
struct DscLayerSpec {
  int index = 0;        ///< position in the network (paper: 0..12)
  int in_rows = 32;     ///< R
  int in_cols = 32;     ///< C
  int in_channels = 8;  ///< D
  int stride = 1;       ///< DWC stride (1 or 2)
  int out_channels = 8; ///< K
  int kernel = 3;       ///< H = W (paper uses 3x3 exclusively)
  int padding = 1;      ///< zero padding
  int dilation = 1;     ///< DWC tap spacing (1 = the paper's dense kernels)
  int depth_multiplier = 1;  ///< DWC output channels per input channel

  /// Channels of the DWC->PWC intermediate tensor: D * depth_multiplier.
  [[nodiscard]] int intermediate_channels() const noexcept {
    return in_channels * depth_multiplier;
  }

  [[nodiscard]] Conv2dGeometry dwc_geometry() const noexcept {
    return Conv2dGeometry{kernel, stride, padding, dilation};
  }

  [[nodiscard]] int out_rows() const noexcept {  ///< N
    return dwc_geometry().out_extent(in_rows);
  }
  [[nodiscard]] int out_cols() const noexcept {  ///< M
    return dwc_geometry().out_extent(in_cols);
  }

  /// Multiply-accumulate counts (Fig. 10 x-axis).
  [[nodiscard]] std::int64_t dwc_macs() const noexcept {
    return std::int64_t{1} * out_rows() * out_cols() *
           intermediate_channels() * kernel * kernel;
  }
  [[nodiscard]] std::int64_t pwc_macs() const noexcept {
    return std::int64_t{1} * out_rows() * out_cols() *
           intermediate_channels() * out_channels;
  }
  [[nodiscard]] std::int64_t total_macs() const noexcept {
    return dwc_macs() + pwc_macs();
  }
  /// Operation count: the paper counts one MAC as two operations.
  [[nodiscard]] std::int64_t total_ops() const noexcept {
    return 2 * total_macs();
  }

  [[nodiscard]] std::string to_string() const;
};

/// Float parameters of one DSC layer: DWC kernel + BN, PWC kernel + BN.
struct FloatDscLayer {
  DscLayerSpec spec;
  FloatTensor dwc_weights;  ///< [kh][kw][D*mult]
  BatchNormParams bn1;      ///< after DWC (D*mult channels)
  FloatTensor pwc_weights;  ///< [K][D*mult]
  BatchNormParams bn2;      ///< after PWC (K channels)

  /// Forward pass: DWC -> BN -> ReLU -> PWC -> BN -> ReLU.
  [[nodiscard]] FloatTensor forward(const FloatTensor& input) const;

  /// Forward pass that also returns the post-ReLU intermediate (PWC input),
  /// needed for activation-scale calibration.
  [[nodiscard]] FloatTensor forward(const FloatTensor& input,
                                    FloatTensor* intermediate_out) const;
};

/// Quantized parameters of one DSC layer. The three activation scales are
/// input (DWC ifmap), intermediate (PWC ifmap) and output (next layer's
/// ifmap); nonconv1/nonconv2 fold everything between the two convolutions
/// and after the PWC respectively.
struct QuantDscLayer {
  DscLayerSpec spec;
  Int8Tensor dwc_weights;  ///< [kh][kw][D*mult]
  Int8Tensor pwc_weights;  ///< [K][D*mult]
  QuantScale input_scale;
  QuantScale intermediate_scale;
  QuantScale output_scale;
  NonConvParams nonconv1;  ///< DWC accumulator -> PWC int8 input (D*mult ch.)
  NonConvParams nonconv2;  ///< PWC accumulator -> layer int8 output (K chan.)

  /// Golden quantized forward pass using exactly the accelerator's
  /// fixed-point semantics. Returns the int8 layer output.
  [[nodiscard]] Int8Tensor forward(const Int8Tensor& input) const;

  /// As forward(), also exposing the int8 intermediate (PWC input) so tests
  /// and sparsity probes can inspect it.
  [[nodiscard]] Int8Tensor forward(const Int8Tensor& input,
                                   Int8Tensor* intermediate_out) const;
};

/// Observed activation statistics for one layer of one inference - feeds the
/// power model (Fig. 11 reports input zero percentages for both engines).
struct LayerActivationStats {
  double dwc_input_zero_fraction = 0.0;  ///< zeros in the DWC ifmap
  double pwc_input_zero_fraction = 0.0;  ///< zeros in the PWC ifmap
};

/// Randomly initializes a float DSC layer (He-style fan-in scaling for
/// weights; BN parameters drawn near identity). Deterministic given rng.
[[nodiscard]] FloatDscLayer make_random_float_layer(const DscLayerSpec& spec,
                                                    Rng& rng);

/// Quantizes a float layer given calibrated activation scales.
[[nodiscard]] QuantDscLayer quantize_layer(const FloatDscLayer& layer,
                                           QuantScale input_scale,
                                           QuantScale intermediate_scale,
                                           QuantScale output_scale);

}  // namespace edea::nn
