#include "nn/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace edea::nn {

namespace {

/// Reads input(y, x, c) treating out-of-range coordinates as zero padding.
template <typename T>
inline T padded_read(const Tensor<T>& t, int y, int x, int c) noexcept {
  if (y < 0 || x < 0 || y >= t.dim(0) || x >= t.dim(1)) return T{};
  return t(y, x, c);
}

void require_hwc(const Shape& s, const char* what) {
  EDEA_REQUIRE(s.rank() == 3, std::string(what) + " must be rank-3 (HWC)");
}

}  // namespace

float BatchNormParams::effective_scale(std::size_t c) const {
  EDEA_REQUIRE(c < channels(), "BN channel out of range");
  return gamma[c] / std::sqrt(var[c] + epsilon);
}

float BatchNormParams::effective_shift(std::size_t c) const {
  EDEA_REQUIRE(c < channels(), "BN channel out of range");
  return beta[c] - gamma[c] * mean[c] / std::sqrt(var[c] + epsilon);
}

FloatTensor conv2d(const FloatTensor& input, const FloatTensor& weights,
                   const Conv2dGeometry& geom) {
  require_hwc(input.shape(), "conv2d input");
  EDEA_REQUIRE(weights.rank() == 4, "conv2d weights must be [K][kh][kw][D]");
  EDEA_REQUIRE(weights.dim(3) == input.dim(2),
               "conv2d weight depth must match input channels");
  EDEA_REQUIRE(weights.dim(1) == geom.kernel && weights.dim(2) == geom.kernel,
               "conv2d weight extent must match geometry");

  const int R = input.dim(0), C = input.dim(1), D = input.dim(2);
  const int K = weights.dim(0);
  const int N = geom.out_extent(R), M = geom.out_extent(C);
  EDEA_REQUIRE(N > 0 && M > 0, "conv2d output would be empty");

  FloatTensor out(Shape{N, M, K});
  for (int n = 0; n < N; ++n) {
    for (int m = 0; m < M; ++m) {
      for (int k = 0; k < K; ++k) {
        float acc = 0.0f;
        for (int i = 0; i < geom.kernel; ++i) {
          for (int j = 0; j < geom.kernel; ++j) {
            const int y = n * geom.stride + i * geom.dilation - geom.padding;
            const int x = m * geom.stride + j * geom.dilation - geom.padding;
            if (y < 0 || x < 0 || y >= R || x >= C) continue;
            for (int d = 0; d < D; ++d) {
              acc += input(y, x, d) * weights(k, i, j, d);
            }
          }
        }
        out(n, m, k) = acc;
      }
    }
  }
  return out;
}

FloatTensor depthwise_conv2d(const FloatTensor& input,
                             const FloatTensor& weights,
                             const Conv2dGeometry& geom) {
  require_hwc(input.shape(), "depthwise input");
  EDEA_REQUIRE(weights.rank() == 3,
               "depthwise weights must be [kh][kw][D*mult]");
  EDEA_REQUIRE(weights.dim(2) % input.dim(2) == 0,
               "depthwise weight depth must be a multiple of input channels");
  EDEA_REQUIRE(weights.dim(0) == geom.kernel && weights.dim(1) == geom.kernel,
               "depthwise weight extent must match geometry");

  const int R = input.dim(0), C = input.dim(1);
  const int DM = weights.dim(2);  // D * depth multiplier
  const int mult = DM / input.dim(2);
  const int N = geom.out_extent(R), M = geom.out_extent(C);
  EDEA_REQUIRE(N > 0 && M > 0, "depthwise output would be empty");

  FloatTensor out(Shape{N, M, DM});
  for (int n = 0; n < N; ++n) {
    for (int m = 0; m < M; ++m) {
      for (int d = 0; d < DM; ++d) {
        float acc = 0.0f;
        for (int i = 0; i < geom.kernel; ++i) {
          for (int j = 0; j < geom.kernel; ++j) {
            const int y = n * geom.stride + i * geom.dilation - geom.padding;
            const int x = m * geom.stride + j * geom.dilation - geom.padding;
            acc += padded_read(input, y, x, d / mult) * weights(i, j, d);
          }
        }
        out(n, m, d) = acc;
      }
    }
  }
  return out;
}

FloatTensor pointwise_conv2d(const FloatTensor& input,
                             const FloatTensor& weights) {
  require_hwc(input.shape(), "pointwise input");
  EDEA_REQUIRE(weights.rank() == 2, "pointwise weights must be [K][D]");
  EDEA_REQUIRE(weights.dim(1) == input.dim(2),
               "pointwise weight depth must match input channels");

  const int N = input.dim(0), M = input.dim(1), D = input.dim(2);
  const int K = weights.dim(0);
  FloatTensor out(Shape{N, M, K});
  for (int n = 0; n < N; ++n) {
    for (int m = 0; m < M; ++m) {
      for (int k = 0; k < K; ++k) {
        float acc = 0.0f;
        for (int d = 0; d < D; ++d) {
          acc += input(n, m, d) * weights(k, d);
        }
        out(n, m, k) = acc;
      }
    }
  }
  return out;
}

FloatTensor batch_norm(const FloatTensor& input, const BatchNormParams& bn) {
  require_hwc(input.shape(), "batch_norm input");
  EDEA_REQUIRE(bn.channels() == static_cast<std::size_t>(input.dim(2)),
               "BN parameter count must match channels");
  FloatTensor out(input.shape());
  const int N = input.dim(0), M = input.dim(1), D = input.dim(2);
  for (int d = 0; d < D; ++d) {
    const float scale = bn.effective_scale(static_cast<std::size_t>(d));
    const float shift = bn.effective_shift(static_cast<std::size_t>(d));
    for (int n = 0; n < N; ++n) {
      for (int m = 0; m < M; ++m) {
        out(n, m, d) = scale * input(n, m, d) + shift;
      }
    }
  }
  return out;
}

FloatTensor relu(const FloatTensor& input) {
  FloatTensor out = input;
  out.transform([](float v) { return v > 0.0f ? v : 0.0f; });
  return out;
}

FloatTensor global_avg_pool(const FloatTensor& input) {
  require_hwc(input.shape(), "global_avg_pool input");
  const int N = input.dim(0), M = input.dim(1), D = input.dim(2);
  FloatTensor out(Shape{D});
  const float inv = 1.0f / static_cast<float>(N * M);
  for (int d = 0; d < D; ++d) {
    float acc = 0.0f;
    for (int n = 0; n < N; ++n) {
      for (int m = 0; m < M; ++m) {
        acc += input(n, m, d);
      }
    }
    out(d) = acc * inv;
  }
  return out;
}

FloatTensor linear(const FloatTensor& input, const FloatTensor& weights,
                   const FloatTensor& bias) {
  EDEA_REQUIRE(input.rank() == 1, "linear input must be rank-1");
  EDEA_REQUIRE(weights.rank() == 2, "linear weights must be [K][C]");
  EDEA_REQUIRE(weights.dim(1) == input.dim(0),
               "linear weight width must match input length");
  EDEA_REQUIRE(bias.rank() == 1 && bias.dim(0) == weights.dim(0),
               "linear bias length must match output length");
  const int K = weights.dim(0), C = weights.dim(1);
  FloatTensor out(Shape{K});
  for (int k = 0; k < K; ++k) {
    float acc = bias(k);
    for (int c = 0; c < C; ++c) {
      acc += weights(k, c) * input(c);
    }
    out(k) = acc;
  }
  return out;
}

FloatTensor softmax(const FloatTensor& logits) {
  EDEA_REQUIRE(logits.rank() == 1, "softmax input must be rank-1");
  FloatTensor out(logits.shape());
  float mx = logits(0);
  for (int i = 1; i < logits.dim(0); ++i) mx = std::max(mx, logits(i));
  float denom = 0.0f;
  for (int i = 0; i < logits.dim(0); ++i) {
    out(i) = std::exp(logits(i) - mx);
    denom += out(i);
  }
  for (int i = 0; i < logits.dim(0); ++i) out(i) /= denom;
  return out;
}

int argmax(const FloatTensor& logits) {
  EDEA_REQUIRE(logits.rank() == 1 && logits.dim(0) > 0,
               "argmax input must be non-empty rank-1");
  int best = 0;
  for (int i = 1; i < logits.dim(0); ++i) {
    if (logits(i) > logits(best)) best = i;
  }
  return best;
}

Int32Tensor depthwise_conv2d_q(const Int8Tensor& input,
                               const Int8Tensor& weights,
                               const Conv2dGeometry& geom) {
  require_hwc(input.shape(), "depthwise_q input");
  EDEA_REQUIRE(weights.rank() == 3,
               "depthwise_q weights must be [kh][kw][D*mult]");
  EDEA_REQUIRE(weights.dim(2) % input.dim(2) == 0,
               "depthwise_q weight depth must be a multiple of input channels");

  const int R = input.dim(0), C = input.dim(1);
  const int DM = weights.dim(2);  // D * depth multiplier
  const int mult = DM / input.dim(2);
  const int N = geom.out_extent(R), M = geom.out_extent(C);
  EDEA_REQUIRE(N > 0 && M > 0, "depthwise_q output would be empty");

  Int32Tensor out(Shape{N, M, DM});
  for (int n = 0; n < N; ++n) {
    for (int m = 0; m < M; ++m) {
      for (int d = 0; d < DM; ++d) {
        std::int32_t acc = 0;
        for (int i = 0; i < geom.kernel; ++i) {
          for (int j = 0; j < geom.kernel; ++j) {
            const int y = n * geom.stride + i * geom.dilation - geom.padding;
            const int x = m * geom.stride + j * geom.dilation - geom.padding;
            const std::int32_t a = padded_read(input, y, x, d / mult);
            acc += a * static_cast<std::int32_t>(weights(i, j, d));
          }
        }
        out(n, m, d) = acc;
      }
    }
  }
  return out;
}

Int32Tensor pointwise_conv2d_q(const Int8Tensor& input,
                               const Int8Tensor& weights) {
  require_hwc(input.shape(), "pointwise_q input");
  EDEA_REQUIRE(weights.rank() == 2, "pointwise_q weights must be [K][D]");
  EDEA_REQUIRE(weights.dim(1) == input.dim(2),
               "pointwise_q weight depth must match input channels");
  const int N = input.dim(0), M = input.dim(1), D = input.dim(2);
  const int K = weights.dim(0);
  Int32Tensor out(Shape{N, M, K});
  for (int n = 0; n < N; ++n) {
    for (int m = 0; m < M; ++m) {
      for (int k = 0; k < K; ++k) {
        std::int32_t acc = 0;
        for (int d = 0; d < D; ++d) {
          acc += static_cast<std::int32_t>(input(n, m, d)) *
                 static_cast<std::int32_t>(weights(k, d));
        }
        out(n, m, k) = acc;
      }
    }
  }
  return out;
}

Int32Tensor conv2d_q(const Int8Tensor& input, const Int8Tensor& weights,
                     const Conv2dGeometry& geom) {
  require_hwc(input.shape(), "conv2d_q input");
  EDEA_REQUIRE(weights.rank() == 4, "conv2d_q weights must be [K][kh][kw][D]");
  EDEA_REQUIRE(weights.dim(3) == input.dim(2),
               "conv2d_q weight depth must match input channels");

  const int R = input.dim(0), C = input.dim(1), D = input.dim(2);
  const int K = weights.dim(0);
  const int N = geom.out_extent(R), M = geom.out_extent(C);
  Int32Tensor out(Shape{N, M, K});
  for (int n = 0; n < N; ++n) {
    for (int m = 0; m < M; ++m) {
      for (int k = 0; k < K; ++k) {
        std::int32_t acc = 0;
        for (int i = 0; i < geom.kernel; ++i) {
          for (int j = 0; j < geom.kernel; ++j) {
            const int y = n * geom.stride + i * geom.dilation - geom.padding;
            const int x = m * geom.stride + j * geom.dilation - geom.padding;
            if (y < 0 || x < 0 || y >= R || x >= C) continue;
            for (int d = 0; d < D; ++d) {
              acc += static_cast<std::int32_t>(input(y, x, d)) *
                     static_cast<std::int32_t>(weights(k, i, j, d));
            }
          }
        }
        out(n, m, k) = acc;
      }
    }
  }
  return out;
}

std::int64_t max_abs_acc(const Int32Tensor& acc) {
  std::int64_t m = 0;
  for (const std::int32_t v : acc.storage()) {
    const std::int64_t a = std::abs(static_cast<std::int64_t>(v));
    if (a > m) m = a;
  }
  return m;
}

}  // namespace edea::nn
