#include "nn/mobilenet.hpp"

#include <cmath>

#include "util/check.hpp"

namespace edea::nn {

std::array<DscLayerSpec, kDscLayerCount> mobilenet_dsc_specs() {
  // {index, R, C, D, stride, K}. Stride 2 at layers 1, 3, 5, 11 - this is
  // what produces the paper's "reduced MAC operations due to the stride of
  // 2" at exactly those layers (Fig. 10) and the 2x2 ifmaps at layers 11/12.
  std::array<DscLayerSpec, kDscLayerCount> specs{};
  struct Row {
    int r, d, s, k;
  };
  constexpr std::array<Row, kDscLayerCount> rows{{
      {32, 32, 1, 64},     // 0
      {32, 64, 2, 128},    // 1
      {16, 128, 1, 128},   // 2
      {16, 128, 2, 256},   // 3
      {8, 256, 1, 256},    // 4
      {8, 256, 2, 512},    // 5
      {4, 512, 1, 512},    // 6
      {4, 512, 1, 512},    // 7
      {4, 512, 1, 512},    // 8
      {4, 512, 1, 512},    // 9
      {4, 512, 1, 512},    // 10
      {4, 512, 2, 1024},   // 11
      {2, 1024, 1, 1024},  // 12
  }};
  for (int i = 0; i < kDscLayerCount; ++i) {
    const Row& row = rows[static_cast<std::size_t>(i)];
    DscLayerSpec s;
    s.index = i;
    s.in_rows = row.r;
    s.in_cols = row.r;
    s.in_channels = row.d;
    s.stride = row.s;
    s.out_channels = row.k;
    specs[static_cast<std::size_t>(i)] = s;
  }
  return specs;
}

FloatMobileNet::FloatMobileNet(std::uint64_t seed) {
  Rng rng(seed);

  // Stem: 3x3x3 -> 32 channels, stride 1 (CIFAR variant keeps resolution).
  stem_weights_ = FloatTensor(Shape{32, 3, 3, kCifarChannels});
  const double stem_std = std::sqrt(2.0 / (3.0 * 3.0 * kCifarChannels));
  for (auto& w : stem_weights_.storage()) {
    w = static_cast<float>(rng.normal(0.0, stem_std));
  }
  stem_bn_.gamma.assign(32, 1.0f);
  stem_bn_.beta.assign(32, 0.0f);
  stem_bn_.mean.assign(32, 0.0f);
  stem_bn_.var.assign(32, 1.0f);
  for (std::size_t c = 0; c < 32; ++c) {
    stem_bn_.gamma[c] = static_cast<float>(rng.normal(1.0, 0.1));
    stem_bn_.beta[c] = static_cast<float>(rng.normal(0.0, 0.1));
  }

  blocks_.reserve(kDscLayerCount);
  for (const DscLayerSpec& spec : mobilenet_dsc_specs()) {
    Rng layer_rng = rng.fork();
    blocks_.push_back(make_random_float_layer(spec, layer_rng));
  }

  fc_weights_ = FloatTensor(Shape{kCifarClasses, 1024});
  const double fc_std = std::sqrt(2.0 / 1024.0);
  for (auto& w : fc_weights_.storage()) {
    w = static_cast<float>(rng.normal(0.0, fc_std));
  }
  fc_bias_ = FloatTensor(Shape{kCifarClasses}, 0.0f);
}

FloatTensor FloatMobileNet::forward_stem(const FloatTensor& image) const {
  EDEA_REQUIRE(image.rank() == 3 && image.dim(0) == kCifarSize &&
                   image.dim(1) == kCifarSize &&
                   image.dim(2) == kCifarChannels,
               "stem expects a 32x32x3 image");
  const Conv2dGeometry geom{3, 1, 1};
  return relu(batch_norm(conv2d(image, stem_weights_, geom), stem_bn_));
}

FloatTensor FloatMobileNet::forward_dsc(
    const FloatTensor& stem_out, std::vector<FloatTensor>* block_inputs,
    std::vector<FloatTensor>* block_intermediates) const {
  FloatTensor x = stem_out;
  for (const FloatDscLayer& block : blocks_) {
    if (block_inputs != nullptr) block_inputs->push_back(x);
    FloatTensor intermediate;
    x = block.forward(x, &intermediate);
    if (block_intermediates != nullptr) {
      block_intermediates->push_back(std::move(intermediate));
    }
  }
  if (block_inputs != nullptr) block_inputs->push_back(x);  // final output
  return x;
}

FloatTensor FloatMobileNet::forward_head(const FloatTensor& features) const {
  const FloatTensor pooled = global_avg_pool(features);
  return linear(pooled, fc_weights_, fc_bias_);
}

FloatTensor FloatMobileNet::forward(const FloatTensor& image) const {
  return forward_head(forward_dsc(forward_stem(image)));
}

std::int64_t FloatMobileNet::parameter_count() const noexcept {
  std::int64_t count = static_cast<std::int64_t>(stem_weights_.size()) +
                       4 * 32;  // stem conv + BN
  for (const FloatDscLayer& b : blocks_) {
    count += static_cast<std::int64_t>(b.dwc_weights.size());
    count += static_cast<std::int64_t>(b.pwc_weights.size());
    count += 4 * (b.spec.in_channels + b.spec.out_channels);  // two BNs
  }
  count += static_cast<std::int64_t>(fc_weights_.size()) +
           static_cast<std::int64_t>(fc_bias_.size());
  return count;
}

CalibrationResult calibrate(const FloatMobileNet& net,
                            const std::vector<FloatTensor>& images) {
  EDEA_REQUIRE(!images.empty(), "calibration needs at least one image");

  std::vector<double> input_max(kDscLayerCount + 1, 0.0);
  std::vector<double> intermediate_max(kDscLayerCount, 0.0);
  double image_max = 0.0;

  for (const FloatTensor& image : images) {
    image_max = std::max(image_max, max_abs(image));
    std::vector<FloatTensor> inputs;
    std::vector<FloatTensor> intermediates;
    (void)net.forward_dsc(net.forward_stem(image), &inputs, &intermediates);
    EDEA_ASSERT(inputs.size() == kDscLayerCount + 1 &&
                    intermediates.size() == kDscLayerCount,
                "calibration capture size mismatch");
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      input_max[i] = std::max(input_max[i], max_abs(inputs[i]));
    }
    for (std::size_t i = 0; i < intermediates.size(); ++i) {
      intermediate_max[i] =
          std::max(intermediate_max[i], max_abs(intermediates[i]));
    }
  }

  CalibrationResult cal;
  cal.image_scale = choose_activation_scale(image_max);
  cal.block_input_scales.reserve(input_max.size());
  for (const double m : input_max) {
    cal.block_input_scales.push_back(choose_activation_scale(m));
  }
  cal.intermediate_scales.reserve(intermediate_max.size());
  for (const double m : intermediate_max) {
    cal.intermediate_scales.push_back(choose_activation_scale(m));
  }
  return cal;
}

QuantMobileNet::QuantMobileNet(const FloatMobileNet& net,
                               const CalibrationResult& cal) {
  EDEA_REQUIRE(cal.block_input_scales.size() == kDscLayerCount + 1,
               "calibration must provide 14 input scales");
  EDEA_REQUIRE(cal.intermediate_scales.size() == kDscLayerCount,
               "calibration must provide 13 intermediate scales");
  input_scale_ = cal.block_input_scales.front();
  output_scale_ = cal.block_input_scales.back();
  image_scale_ = cal.image_scale;

  // int8 stem: quantize the standard-conv weights and fold the stem BN +
  // ReLU + requantization into per-channel Non-Conv parameters (the same
  // Fig. 6 arithmetic the DSC blocks use).
  const QuantScale stem_w_scale = choose_weight_scale(net.stem_weights());
  stem_weights_q_ = quantize_tensor(net.stem_weights(), stem_w_scale);
  stem_nonconv_ =
      fold_nonconv(image_scale_, stem_w_scale, net.stem_bn(), input_scale_);

  blocks_.reserve(kDscLayerCount);
  for (std::size_t i = 0; i < kDscLayerCount; ++i) {
    blocks_.push_back(quantize_layer(net.blocks()[i],
                                     cal.block_input_scales[i],
                                     cal.intermediate_scales[i],
                                     cal.block_input_scales[i + 1]));
  }
}

Int8Tensor QuantMobileNet::quantize_input(const FloatTensor& stem_out) const {
  return quantize_tensor(stem_out, input_scale_);
}

Int8Tensor QuantMobileNet::quantize_image(const FloatTensor& image) const {
  EDEA_REQUIRE(image.rank() == 3 && image.dim(2) == kCifarChannels,
               "expected an HWC image with 3 channels");
  return quantize_tensor(image, image_scale_);
}

Int8Tensor QuantMobileNet::forward_stem_q(const Int8Tensor& image_q) const {
  EDEA_REQUIRE(image_q.rank() == 3 && image_q.dim(2) == kCifarChannels,
               "expected an int8 HWC image with 3 channels");
  const Conv2dGeometry geom{3, 1, 1};
  const Int32Tensor acc = conv2d_q(image_q, stem_weights_q_, geom);
  return apply_nonconv(acc, stem_nonconv_);
}

Int8Tensor QuantMobileNet::forward_dsc(
    const Int8Tensor& block0_input,
    std::vector<LayerActivationStats>* stats) const {
  Int8Tensor x = block0_input;
  for (const QuantDscLayer& block : blocks_) {
    Int8Tensor intermediate;
    Int8Tensor next = block.forward(x, &intermediate);
    if (stats != nullptr) {
      stats->push_back(LayerActivationStats{x.zero_fraction(),
                                            intermediate.zero_fraction()});
    }
    x = std::move(next);
  }
  return x;
}

FloatTensor QuantMobileNet::dequantize_output(const Int8Tensor& out) const {
  return dequantize_tensor(out, output_scale_);
}

}  // namespace edea::nn
