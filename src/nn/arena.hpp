// arena.hpp - static memory planning for network runs (FeatherCNN-style
// shared memory pool, planned ahead of time instead of grown on demand).
//
// A network run touches a predictable set of buffers: the input image, one
// activation tensor per layer, and per-worker scratch. Instead of each of
// those being a private heap allocation, the runtime describes them to a
// MemoryPlanner as *blobs* - (bytes, liveness interval) pairs - and the
// planner assigns every blob an offset inside ONE contiguous allocation,
// reusing the bytes of blobs whose liveness has ended. The resulting
// ArenaPlan is deterministic (same blobs in, same offsets out), and its
// peak_bytes is the run's whole working-set ceiling - the observability
// hook surfaced as NetworkRunResult::peak_arena_bytes.
//
// Liveness is expressed in abstract *steps*: blob A may share bytes with
// blob B iff their [first_step, last_step] intervals do not intersect.
// For a batched network run the step axis is the layer index (layer-major
// execution: all images run layer i before any image runs layer i+1), so
// image b's layer-i output is live over [i, i+1] and the familiar
// ping-pong activation reuse falls out of interval non-intersection.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "util/check.hpp"

namespace edea::nn {

/// Index of a blob inside its planner/plan/arena (dense, in add order).
using BlobId = std::size_t;

/// One planned buffer: size plus the inclusive liveness interval
/// [first_step, last_step] over the run's abstract step axis.
struct BlobSpec {
  std::string name;
  std::size_t bytes = 0;
  std::size_t first_step = 0;
  std::size_t last_step = 0;
};

struct PlannedBlob {
  BlobSpec spec;
  std::size_t offset = 0;  ///< byte offset inside the arena allocation
};

/// Result of planning: every blob with its offset, the size of the single
/// contiguous allocation that holds them all (peak_bytes), and the size a
/// naive no-reuse layout would have needed (unreused_bytes) so planning
/// quality is checkable: peak_bytes <= unreused_bytes always, and strictly
/// less whenever any two blobs' liveness intervals are disjoint.
struct ArenaPlan {
  std::vector<PlannedBlob> blobs;
  std::size_t peak_bytes = 0;
  std::size_t unreused_bytes = 0;
  bool reuse = true;
};

/// Collects blob descriptions, then assigns offsets in one deterministic
/// pass. Offsets are 64-byte aligned so typed slices of any element type
/// the runtime uses (int8/int32/float) are safely aligned and adjacent
/// blobs do not share cache lines across workers.
class MemoryPlanner {
 public:
  static constexpr std::size_t kAlignment = 64;

  /// reuse=false plans every blob at a distinct offset (the naive layout);
  /// it exists so tests and benchmarks can quantify what reuse saves.
  explicit MemoryPlanner(bool reuse = true) : reuse_(reuse) {}

  /// Registers a blob; returns its id (dense, in registration order).
  BlobId add_blob(std::string name, std::size_t bytes,
                  std::size_t first_step, std::size_t last_step) {
    EDEA_REQUIRE(first_step <= last_step,
                 "blob liveness interval must not be inverted");
    blobs_.push_back(BlobSpec{std::move(name), bytes, first_step, last_step});
    return blobs_.size() - 1;
  }

  [[nodiscard]] std::size_t blob_count() const noexcept {
    return blobs_.size();
  }

  /// First-fit offset assignment in registration order: each blob takes the
  /// lowest aligned offset that does not overlap any already-placed blob
  /// with an intersecting liveness interval. Deterministic by construction
  /// (no hashing, no address-dependent ordering).
  [[nodiscard]] ArenaPlan plan() const;

 private:
  std::vector<BlobSpec> blobs_;
  bool reuse_;
};

/// The single allocation a plan describes, zero-initialized (matching the
/// zero-init of owning Tensor construction so arena-backed views observe
/// the same initial contents). Hands out raw byte slices and typed
/// pointers for Tensor<T>::view.
class Arena {
 public:
  explicit Arena(ArenaPlan plan)
      : plan_(std::move(plan)), storage_(plan_.peak_bytes, std::uint8_t{0}) {}

  [[nodiscard]] const ArenaPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return storage_.size();
  }

  [[nodiscard]] std::uint8_t* bytes(BlobId id) {
    EDEA_REQUIRE(id < plan_.blobs.size(), "arena blob id out of range");
    return storage_.data() + plan_.blobs[id].offset;
  }

  [[nodiscard]] std::size_t bytes_of(BlobId id) const {
    EDEA_REQUIRE(id < plan_.blobs.size(), "arena blob id out of range");
    return plan_.blobs[id].spec.bytes;
  }

  /// Typed base pointer of a blob (the blob must be at least
  /// count*sizeof(T) bytes; 64-byte offsets keep any T aligned).
  template <typename T>
  [[nodiscard]] T* slice(BlobId id, std::size_t count) {
    EDEA_REQUIRE(count * sizeof(T) <= bytes_of(id),
                 "typed arena slice exceeds its blob");
    return reinterpret_cast<T*>(bytes(id));
  }

  /// Zero-fills one blob (a fresh-tensor guarantee when a blob's bytes are
  /// reused across liveness intervals).
  void clear(BlobId id) {
    std::uint8_t* p = bytes(id);
    std::fill(p, p + bytes_of(id), std::uint8_t{0});
  }

 private:
  ArenaPlan plan_;
  std::vector<std::uint8_t> storage_;
};

/// Blob ids of a planned batched activation chain: inputs[b] is image b's
/// network input, outputs[b][i] image b's layer-i output.
struct NetworkActivationPlan {
  std::vector<BlobId> inputs;
  std::vector<std::vector<BlobId>> outputs;
};

/// Registers the activation blobs of running `batch` images through
/// `layers` (layer-major execution order) with `planner`. The step axis is
/// the layer index: inputs are live at step 0 only, layer i's outputs over
/// [i, i+1] (clamped to the last layer), so consecutive layers ping-pong
/// and anything older is reused. Callers add their scratch blobs (live
/// over the whole [0, layer_count-1] range) to the same planner before
/// calling plan().
NetworkActivationPlan plan_network_activations(
    MemoryPlanner& planner, const std::vector<QuantDscLayer>& layers,
    const Shape& input_shape, int batch);

}  // namespace edea::nn
