// lsq.hpp - learned-step-size quantization calibration (LSQ substitute).
//
// The paper quantizes MobileNetV1 with LSQ (Esser et al., its ref. [14]),
// which *learns* each quantization step size during training. Without a
// training loop, the closest functional substitute is to optimize each
// step size directly against calibration data: choose the scale that
// minimizes the mean squared reconstruction error of the
// quantize->dequantize round trip, instead of naively using max/127.
// On heavy-tailed activation distributions the optimized step is smaller
// than the max-based one (it sacrifices rare outliers for resolution),
// which is exactly the behaviour LSQ converges to.
//
// The optimizer is a golden-section search over a bracketed scale range -
// the MSE is smooth and unimodal in the scale for all practical
// distributions, and the search needs no gradients.
#pragma once

#include <vector>

#include "nn/mobilenet.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"

namespace edea::nn {

struct LsqOptions {
  int iterations = 48;        ///< golden-section refinement steps
  /// Search bracket as multiples of the max/127 baseline. The default is
  /// deliberately conservative (clip-averse): minimizing *per-tensor* MSE
  /// with an unconstrained bracket can clip informative outliers and hurt
  /// *end-to-end* fidelity - trained LSQ escapes that by adapting the
  /// weights, which a post-hoc optimizer cannot (quantified in
  /// bench_lsq_calibration and EXPERIMENTS.md).
  double bracket_lo = 0.40;   ///< search lower bound, x (max/127)
  double bracket_hi = 1.20;   ///< search upper bound, x (max/127)
  /// Per-layer sample cap: calibration tensors are subsampled to at most
  /// this many elements (deterministic striding) to bound optimizer cost.
  std::size_t max_samples = 65536;

  /// An aggressive configuration for studying the clipping trade-off.
  [[nodiscard]] static LsqOptions aggressive() {
    LsqOptions o;
    o.iterations = 64;
    o.bracket_lo = 0.02;
    return o;
  }
};

/// Mean squared quantize->dequantize error of `values` under `scale`.
/// `lo`/`hi` are the integer clamp bounds (0/127 for post-ReLU
/// activations, -128/127 for signed tensors).
[[nodiscard]] double quantization_mse(const std::vector<float>& values,
                                      QuantScale scale, int lo, int hi);

/// Finds the MSE-minimizing scale for `values` within
/// [bracket_lo, bracket_hi] x (max|v|/127). Returns the max-based scale
/// unchanged if `values` is empty or all zero.
[[nodiscard]] QuantScale optimize_scale(const std::vector<float>& values,
                                        int lo, int hi,
                                        const LsqOptions& options = {});

/// Deterministically subsamples a tensor into a value vector of at most
/// `max_samples` elements (uniform striding).
[[nodiscard]] std::vector<float> subsample(const FloatTensor& t,
                                           std::size_t max_samples);

/// LSQ-substitute calibration of a float MobileNet: captures the same
/// activations as nn::calibrate, then optimizes every activation scale
/// (block inputs, intermediates, image) against reconstruction MSE.
[[nodiscard]] CalibrationResult lsq_calibrate(
    const FloatMobileNet& net, const std::vector<FloatTensor>& images,
    const LsqOptions& options = {});

}  // namespace edea::nn
