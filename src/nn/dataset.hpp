// dataset.hpp - synthetic CIFAR10-like image generator.
//
// The paper evaluates on CIFAR10, which we cannot ship. This generator
// produces 32x32x3 images from 10 procedurally-defined classes with
// distinct oriented-grating + color signatures plus per-image noise and
// phase jitter. The classes are linearly separable enough that a classifier
// head trained on frozen random MobileNet features reaches well above
// chance, which makes the end-to-end example meaningful while exercising
// exactly the code paths (shapes, ranges, sparsity) CIFAR10 would.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"
#include "util/random.hpp"

namespace edea::nn {

/// One labeled synthetic example.
struct LabeledImage {
  FloatTensor image;  ///< [32][32][3], values in [0, 1]
  int label = 0;      ///< class id in [0, 10)
};

/// Deterministic synthetic dataset.
class SyntheticCifar {
 public:
  explicit SyntheticCifar(std::uint64_t seed) : rng_(seed) {}

  /// Generates one image of the given class (0..9).
  [[nodiscard]] LabeledImage sample(int label);

  /// Generates one image with a random class.
  [[nodiscard]] LabeledImage sample();

  /// Generates a batch with (approximately) balanced classes.
  [[nodiscard]] std::vector<LabeledImage> batch(int count);

  static constexpr int kClasses = 10;

 private:
  Rng rng_;
};

}  // namespace edea::nn
