// tensor.hpp - dense row-major tensors (rank 1..4) for the NN substrate.
//
// Feature maps use HWC layout ([row][col][channel]), depthwise kernels
// [kh][kw][channel], pointwise kernels [out_channel][in_channel], and
// standard-conv kernels [out_channel][kh][kw][in_channel]. Rank is bounded
// at 4 so indexing stays branch-light in convolution inner loops.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <ostream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace edea::nn {

/// Shape of a tensor: up to 4 extents. Value type, comparable, printable.
class Shape {
 public:
  Shape() = default;

  Shape(std::initializer_list<int> dims) {
    EDEA_REQUIRE(dims.size() >= 1 && dims.size() <= 4,
                 "tensor rank must be in [1, 4]");
    rank_ = dims.size();
    std::size_t i = 0;
    for (const int d : dims) {
      EDEA_REQUIRE(d > 0, "tensor extents must be positive");
      dims_[i++] = d;
    }
  }

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  [[nodiscard]] int operator[](std::size_t axis) const {
    EDEA_REQUIRE(axis < rank_, "shape axis out of range");
    return dims_[axis];
  }

  /// Total number of elements.
  [[nodiscard]] std::size_t volume() const noexcept {
    std::size_t v = 1;
    for (std::size_t i = 0; i < rank_; ++i) {
      v *= static_cast<std::size_t>(dims_[i]);
    }
    return rank_ == 0 ? 0 : v;
  }

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) noexcept {
    return !(a == b);
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i != 0) s += "x";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  std::array<int, 4> dims_ = {0, 0, 0, 0};
  std::size_t rank_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.to_string();
}

/// Dense row-major tensor. T is float (reference model), std::int8_t
/// (quantized operands) or std::int32_t (accumulators).
template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape)
      : shape_(shape), data_(shape.volume(), T{}) {
    compute_strides();
  }

  Tensor(Shape shape, T fill_value)
      : shape_(shape), data_(shape.volume(), fill_value) {
    compute_strides();
  }

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.rank(); }
  [[nodiscard]] int dim(std::size_t axis) const { return shape_[axis]; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::vector<T>& storage() noexcept { return data_; }
  [[nodiscard]] const std::vector<T>& storage() const noexcept {
    return data_;
  }

  // Unchecked fast-path indexing (used by inner loops). Callers are expected
  // to iterate within the shape; the checked at() variants validate.
  [[nodiscard]] T& operator()(int i) noexcept {
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const T& operator()(int i) const noexcept {
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] T& operator()(int i, int j) noexcept {
    return data_[offset(i, j)];
  }
  [[nodiscard]] const T& operator()(int i, int j) const noexcept {
    return data_[offset(i, j)];
  }
  [[nodiscard]] T& operator()(int i, int j, int k) noexcept {
    return data_[offset(i, j, k)];
  }
  [[nodiscard]] const T& operator()(int i, int j, int k) const noexcept {
    return data_[offset(i, j, k)];
  }
  [[nodiscard]] T& operator()(int i, int j, int k, int l) noexcept {
    return data_[offset(i, j, k, l)];
  }
  [[nodiscard]] const T& operator()(int i, int j, int k, int l) const noexcept {
    return data_[offset(i, j, k, l)];
  }

  /// Bounds-checked element access (throws PreconditionError).
  [[nodiscard]] T& at(int i, int j, int k) {
    check_index(0, i);
    check_index(1, j);
    check_index(2, k);
    return (*this)(i, j, k);
  }
  [[nodiscard]] const T& at(int i, int j, int k) const {
    check_index(0, i);
    check_index(1, j);
    check_index(2, k);
    return (*this)(i, j, k);
  }

  [[nodiscard]] std::size_t offset(int i, int j) const noexcept {
    return static_cast<std::size_t>(i) * strides_[0] +
           static_cast<std::size_t>(j);
  }
  [[nodiscard]] std::size_t offset(int i, int j, int k) const noexcept {
    return static_cast<std::size_t>(i) * strides_[0] +
           static_cast<std::size_t>(j) * strides_[1] +
           static_cast<std::size_t>(k);
  }
  [[nodiscard]] std::size_t offset(int i, int j, int k, int l) const noexcept {
    return static_cast<std::size_t>(i) * strides_[0] +
           static_cast<std::size_t>(j) * strides_[1] +
           static_cast<std::size_t>(k) * strides_[2] +
           static_cast<std::size_t>(l);
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Applies fn to every element in place.
  template <typename Fn>
  void transform(Fn&& fn) {
    for (auto& v : data_) v = fn(v);
  }

  /// Fraction of elements equal to zero. Core metric for Fig. 11.
  [[nodiscard]] double zero_fraction() const {
    if (data_.empty()) return 0.0;
    std::size_t zeros = 0;
    for (const auto& v : data_) {
      if (v == T{}) ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(data_.size());
  }

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }
  friend bool operator!=(const Tensor& a, const Tensor& b) {
    return !(a == b);
  }

 private:
  void compute_strides() {
    const std::size_t r = shape_.rank();
    std::size_t acc = 1;
    for (std::size_t axis = r; axis-- > 1;) {
      acc *= static_cast<std::size_t>(shape_[axis]);
      strides_[axis - 1] = acc;
    }
  }

  void check_index(std::size_t axis, int idx) const {
    EDEA_REQUIRE(axis < shape_.rank() && idx >= 0 && idx < shape_[axis],
                 "tensor index out of bounds");
  }

  Shape shape_;
  std::array<std::size_t, 3> strides_ = {0, 0, 0};
  std::vector<T> data_;
};

using FloatTensor = Tensor<float>;
using Int8Tensor = Tensor<std::int8_t>;
using Int32Tensor = Tensor<std::int32_t>;

/// Maximum absolute value of a tensor (0 for empty tensors).
template <typename T>
[[nodiscard]] double max_abs(const Tensor<T>& t) {
  double m = 0.0;
  for (const auto& v : t.storage()) {
    const double a = std::abs(static_cast<double>(v));
    if (a > m) m = a;
  }
  return m;
}

}  // namespace edea::nn
