// tensor.hpp - dense row-major tensors (rank 1..4) for the NN substrate.
//
// Feature maps use HWC layout ([row][col][channel]), depthwise kernels
// [kh][kw][channel], pointwise kernels [out_channel][in_channel], and
// standard-conv kernels [out_channel][kh][kw][in_channel]. Rank is bounded
// at 4 so indexing stays branch-light in convolution inner loops.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace edea::nn {

/// Shape of a tensor: up to 4 extents. Value type, comparable, printable.
class Shape {
 public:
  Shape() = default;

  Shape(std::initializer_list<int> dims) {
    EDEA_REQUIRE(dims.size() >= 1 && dims.size() <= 4,
                 "tensor rank must be in [1, 4]");
    rank_ = dims.size();
    std::size_t i = 0;
    for (const int d : dims) {
      EDEA_REQUIRE(d > 0, "tensor extents must be positive");
      dims_[i++] = d;
    }
  }

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  [[nodiscard]] int operator[](std::size_t axis) const {
    EDEA_REQUIRE(axis < rank_, "shape axis out of range");
    return dims_[axis];
  }

  /// Total number of elements.
  ///
  /// Rank-0 semantics (pinned, do not change casually): a
  /// default-constructed Shape has rank 0 and volume() == 0, NOT the
  /// mathematical empty product 1. Throughout the codebase a rank-0 shape
  /// means "no tensor" - Tensor(Shape{}) must allocate nothing, empty()
  /// must be true, and the memory planner (nn/arena.hpp) must size a
  /// rank-0 blob at zero bytes. Since rank >= 1 shapes require strictly
  /// positive extents, volume() == 0 holds exactly for the rank-0 shape.
  [[nodiscard]] std::size_t volume() const noexcept {
    std::size_t v = 1;
    for (std::size_t i = 0; i < rank_; ++i) {
      v *= static_cast<std::size_t>(dims_[i]);
    }
    return rank_ == 0 ? 0 : v;
  }

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) noexcept {
    return !(a == b);
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i != 0) s += "x";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  std::array<int, 4> dims_ = {0, 0, 0, 0};
  std::size_t rank_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.to_string();
}

/// Dense row-major tensor. T is float (reference model), std::int8_t
/// (quantized operands) or std::int32_t (accumulators).
///
/// Storage modes. A tensor either *owns* its elements (the default: a
/// private heap allocation sized by the shape) or is a non-owning *view*
/// over externally managed storage - an arena slice handed out by the
/// memory planner (nn/arena.hpp). Views index, fill and compare exactly
/// like owning tensors; only storage() is owning-mode-only because it
/// exposes the backing std::vector. Value semantics are lifetime-safe by
/// construction: copying any tensor (including a view) produces an
/// *owning* deep copy, so a view can never outlive its arena through an
/// innocent-looking copy. Moving preserves the mode.
template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape)
      : shape_(shape), data_(shape.volume(), T{}) {
    adopt_owned();
  }

  Tensor(Shape shape, T fill_value)
      : shape_(shape), data_(shape.volume(), fill_value) {
    adopt_owned();
  }

  /// Non-owning view over `shape.volume()` elements at `data`. The caller
  /// guarantees the storage outlives the view (and every other view of
  /// it); the planner's liveness intervals are what make that guarantee
  /// checkable. `data` may be null only for the empty rank-0 shape.
  [[nodiscard]] static Tensor view(Shape shape, T* data) {
    EDEA_REQUIRE(data != nullptr || shape.volume() == 0,
                 "tensor view needs backing storage");
    Tensor t;
    t.shape_ = shape;
    t.ptr_ = data;
    t.size_ = shape.volume();
    t.is_view_ = true;
    t.compute_strides();
    return t;
  }

  // Copying deep-copies into owning mode regardless of the source's mode:
  // a member-wise copy of a view would silently alias storage whose
  // lifetime the copy knows nothing about.
  Tensor(const Tensor& other) : shape_(other.shape_) {
    strides_ = other.strides_;
    if (other.size_ != 0) data_.assign(other.ptr_, other.ptr_ + other.size_);
    adopt_owned();
  }

  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      shape_ = other.shape_;
      strides_ = other.strides_;
      if (other.size_ != 0) {
        data_.assign(other.ptr_, other.ptr_ + other.size_);
      } else {
        data_.clear();
      }
      adopt_owned();
    }
    return *this;
  }

  // Moves transfer the mode: an owning tensor keeps owning (the vector's
  // buffer survives the move, but rebind ptr_ explicitly), a view stays a
  // view of the same external storage.
  Tensor(Tensor&& other) noexcept
      : shape_(other.shape_),
        strides_(other.strides_),
        data_(std::move(other.data_)),
        ptr_(other.ptr_),
        size_(other.size_),
        is_view_(other.is_view_) {
    if (!is_view_) ptr_ = data_.data();
    other.shape_ = Shape{};
    other.strides_ = {0, 0, 0};
    other.ptr_ = nullptr;
    other.size_ = 0;
    other.is_view_ = false;
  }

  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      shape_ = other.shape_;
      strides_ = other.strides_;
      data_ = std::move(other.data_);
      ptr_ = other.ptr_;
      size_ = other.size_;
      is_view_ = other.is_view_;
      if (!is_view_) ptr_ = data_.data();
      other.shape_ = Shape{};
      other.strides_ = {0, 0, 0};
      other.ptr_ = nullptr;
      other.size_ = 0;
      other.is_view_ = false;
    }
    return *this;
  }

  ~Tensor() = default;

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.rank(); }
  [[nodiscard]] int dim(std::size_t axis) const { return shape_[axis]; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// True for non-owning arena-backed views.
  [[nodiscard]] bool is_view() const noexcept { return is_view_; }

  [[nodiscard]] T* data() noexcept { return ptr_; }
  [[nodiscard]] const T* data() const noexcept { return ptr_; }

  /// The backing vector - owning mode only (a view has none; use data()).
  [[nodiscard]] std::vector<T>& storage() {
    EDEA_REQUIRE(!is_view_, "storage() requires an owning tensor");
    return data_;
  }
  [[nodiscard]] const std::vector<T>& storage() const {
    EDEA_REQUIRE(!is_view_, "storage() requires an owning tensor");
    return data_;
  }

  // Unchecked fast-path indexing (used by inner loops). Callers are expected
  // to iterate within the shape; the checked at() variants validate.
  [[nodiscard]] T& operator()(int i) noexcept {
    return ptr_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const T& operator()(int i) const noexcept {
    return ptr_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] T& operator()(int i, int j) noexcept {
    return ptr_[offset(i, j)];
  }
  [[nodiscard]] const T& operator()(int i, int j) const noexcept {
    return ptr_[offset(i, j)];
  }
  [[nodiscard]] T& operator()(int i, int j, int k) noexcept {
    return ptr_[offset(i, j, k)];
  }
  [[nodiscard]] const T& operator()(int i, int j, int k) const noexcept {
    return ptr_[offset(i, j, k)];
  }
  [[nodiscard]] T& operator()(int i, int j, int k, int l) noexcept {
    return ptr_[offset(i, j, k, l)];
  }
  [[nodiscard]] const T& operator()(int i, int j, int k, int l) const noexcept {
    return ptr_[offset(i, j, k, l)];
  }

  /// Bounds-checked element access (throws PreconditionError).
  [[nodiscard]] T& at(int i, int j, int k) {
    check_index(0, i);
    check_index(1, j);
    check_index(2, k);
    return (*this)(i, j, k);
  }
  [[nodiscard]] const T& at(int i, int j, int k) const {
    check_index(0, i);
    check_index(1, j);
    check_index(2, k);
    return (*this)(i, j, k);
  }

  [[nodiscard]] std::size_t offset(int i, int j) const noexcept {
    return static_cast<std::size_t>(i) * strides_[0] +
           static_cast<std::size_t>(j);
  }
  [[nodiscard]] std::size_t offset(int i, int j, int k) const noexcept {
    return static_cast<std::size_t>(i) * strides_[0] +
           static_cast<std::size_t>(j) * strides_[1] +
           static_cast<std::size_t>(k);
  }
  [[nodiscard]] std::size_t offset(int i, int j, int k, int l) const noexcept {
    return static_cast<std::size_t>(i) * strides_[0] +
           static_cast<std::size_t>(j) * strides_[1] +
           static_cast<std::size_t>(k) * strides_[2] +
           static_cast<std::size_t>(l);
  }

  void fill(T value) { std::fill(ptr_, ptr_ + size_, value); }

  /// Applies fn to every element in place.
  template <typename Fn>
  void transform(Fn&& fn) {
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] = fn(ptr_[i]);
  }

  /// Fraction of elements equal to zero. Core metric for Fig. 11.
  [[nodiscard]] double zero_fraction() const {
    if (size_ == 0) return 0.0;
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      if (ptr_[i] == T{}) ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(size_);
  }

  // Equality compares shape and elements; storage mode is not observable
  // (a view equals the owning tensor it mirrors).
  friend bool operator==(const Tensor& a, const Tensor& b) {
    if (a.shape_ != b.shape_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.ptr_[i] != b.ptr_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Tensor& a, const Tensor& b) {
    return !(a == b);
  }

 private:
  void compute_strides() {
    const std::size_t r = shape_.rank();
    std::size_t acc = 1;
    for (std::size_t axis = r; axis-- > 1;) {
      acc *= static_cast<std::size_t>(shape_[axis]);
      strides_[axis - 1] = acc;
    }
  }

  /// Enters owning mode over whatever data_ currently holds.
  void adopt_owned() {
    ptr_ = data_.data();
    size_ = data_.size();
    is_view_ = false;
    compute_strides();
  }

  void check_index(std::size_t axis, int idx) const {
    EDEA_REQUIRE(axis < shape_.rank() && idx >= 0 && idx < shape_[axis],
                 "tensor index out of bounds");
  }

  Shape shape_;
  std::array<std::size_t, 3> strides_ = {0, 0, 0};
  std::vector<T> data_;  ///< backing storage in owning mode; empty for views
  T* ptr_ = nullptr;     ///< element base: data_.data() or the arena slice
  std::size_t size_ = 0;
  bool is_view_ = false;
};

using FloatTensor = Tensor<float>;
using Int8Tensor = Tensor<std::int8_t>;
using Int32Tensor = Tensor<std::int32_t>;

/// Maximum absolute value of a tensor (0 for empty tensors).
template <typename T>
[[nodiscard]] double max_abs(const Tensor<T>& t) {
  double m = 0.0;
  const T* p = t.data();
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double a = std::abs(static_cast<double>(p[i]));
    if (a > m) m = a;
  }
  return m;
}

}  // namespace edea::nn
