// metrics.hpp - fidelity metrics between the float reference network and
// the quantized/accelerated network, plus simple classification metrics.
#pragma once

#include <cstdint>

#include "nn/tensor.hpp"

namespace edea::nn {

/// Cosine similarity of two same-shape tensors (1.0 for identical
/// directions; 0 when either tensor is all-zero).
[[nodiscard]] double cosine_similarity(const FloatTensor& a,
                                       const FloatTensor& b);

/// Mean absolute error between two same-shape tensors.
[[nodiscard]] double mean_abs_error(const FloatTensor& a,
                                    const FloatTensor& b);

/// Largest elementwise absolute difference between two int8 tensors of the
/// same shape. Tolerance metric for float-vs-fixed-point comparisons.
[[nodiscard]] int max_abs_diff(const Int8Tensor& a, const Int8Tensor& b);

/// Fraction of elements that are exactly equal in two int8 tensors.
[[nodiscard]] double exact_match_fraction(const Int8Tensor& a,
                                          const Int8Tensor& b);

/// Tracks top-1 agreement between two classifiers over a stream of samples.
class AgreementMeter {
 public:
  void add(int prediction_a, int prediction_b) {
    ++total_;
    if (prediction_a == prediction_b) ++agree_;
  }

  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] double agreement() const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(agree_) /
                             static_cast<double>(total_);
  }

 private:
  std::int64_t agree_ = 0;
  std::int64_t total_ = 0;
};

/// Tracks classification accuracy.
class AccuracyMeter {
 public:
  void add(int prediction, int label) {
    ++total_;
    if (prediction == label) ++correct_;
  }

  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] double accuracy() const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(correct_) /
                             static_cast<double>(total_);
  }

 private:
  std::int64_t correct_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace edea::nn
