#include "nn/arena.hpp"

#include <algorithm>
#include <utility>

namespace edea::nn {
namespace {

constexpr std::size_t align_up(std::size_t bytes) {
  constexpr std::size_t a = MemoryPlanner::kAlignment;
  return (bytes + a - 1) / a * a;
}

bool liveness_intersects(const BlobSpec& a, const BlobSpec& b) {
  return a.first_step <= b.last_step && b.first_step <= a.last_step;
}

}  // namespace

ArenaPlan MemoryPlanner::plan() const {
  ArenaPlan out;
  out.reuse = reuse_;
  out.blobs.reserve(blobs_.size());

  std::size_t peak = 0;
  std::size_t sum = 0;
  // Reused between blobs to avoid re-allocating per placement.
  std::vector<std::pair<std::size_t, std::size_t>> busy;

  for (const BlobSpec& spec : blobs_) {
    const std::size_t aligned = align_up(spec.bytes);
    std::size_t offset = 0;
    if (!reuse_) {
      offset = sum;  // bump allocation: every blob distinct
    } else if (aligned != 0) {
      // Collect the address ranges of already-placed blobs whose liveness
      // intersects this one; the new blob must avoid exactly those.
      busy.clear();
      for (const PlannedBlob& placed : out.blobs) {
        const std::size_t placed_bytes = align_up(placed.spec.bytes);
        if (placed_bytes != 0 && liveness_intersects(placed.spec, spec)) {
          busy.emplace_back(placed.offset, placed.offset + placed_bytes);
        }
      }
      std::sort(busy.begin(), busy.end());
      // First fit: walk the busy ranges in address order, keeping the
      // lowest candidate offset that leaves a large-enough gap. Ranges may
      // overlap each other (two blobs that both conflict with the new one
      // need not conflict with one another), hence the max().
      for (const auto& [begin, end] : busy) {
        if (offset + aligned <= begin) break;
        offset = std::max(offset, end);
      }
    }
    sum += aligned;
    peak = std::max(peak, offset + aligned);
    out.blobs.push_back(PlannedBlob{spec, offset});
  }

  out.peak_bytes = reuse_ ? peak : sum;
  out.unreused_bytes = sum;
  return out;
}

NetworkActivationPlan plan_network_activations(
    MemoryPlanner& planner, const std::vector<QuantDscLayer>& layers,
    const Shape& input_shape, int batch) {
  EDEA_REQUIRE(!layers.empty(), "cannot plan an empty network");
  EDEA_REQUIRE(batch >= 1, "batch must be >= 1");

  const std::size_t last = layers.size() - 1;
  NetworkActivationPlan out;
  out.inputs.reserve(static_cast<std::size_t>(batch));
  out.outputs.reserve(static_cast<std::size_t>(batch));

  for (int b = 0; b < batch; ++b) {
    const std::string tag = "img" + std::to_string(b);
    // The input is only read while layer 0 runs; afterwards its bytes are
    // fair game for later activations.
    out.inputs.push_back(planner.add_blob(tag + ".input",
                                          input_shape.volume() *
                                              sizeof(std::int8_t),
                                          /*first_step=*/0,
                                          /*last_step=*/0));
    std::vector<BlobId> chain;
    chain.reserve(layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
      const DscLayerSpec& spec = layers[i].spec;
      const Shape shape{spec.out_rows(), spec.out_cols(), spec.out_channels};
      // Written while layer i runs, read while layer i+1 runs (the final
      // output is copied into an owning tensor before the arena dies).
      chain.push_back(planner.add_blob(
          tag + ".act" + std::to_string(i),
          shape.volume() * sizeof(std::int8_t),
          /*first_step=*/i,
          /*last_step=*/std::min(i + 1, last)));
    }
    out.outputs.push_back(std::move(chain));
  }
  return out;
}

}  // namespace edea::nn
