#include "nn/model_zoo.hpp"

#include <array>
#include <cmath>
#include <sstream>

#include "nn/mobilenet.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::nn {

namespace {

/// MobileNetV1 block table (base channel counts at width multiplier 1.0):
/// {input channels, output channels, stride}. Thirteen DSC blocks.
struct BlockRow {
  int in_ch;
  int out_ch;
  int stride;
};

constexpr std::array<BlockRow, 13> kMobileNetBlocks{{
    {32, 64, 1},
    {64, 128, 2},
    {128, 128, 1},
    {128, 256, 2},
    {256, 256, 1},
    {256, 512, 2},
    {512, 512, 1},
    {512, 512, 1},
    {512, 512, 1},
    {512, 512, 1},
    {512, 512, 1},
    {512, 1024, 2},
    {1024, 1024, 1},
}};

int scaled_channels(int base, double alpha, int round_to) {
  const double scaled = static_cast<double>(base) * alpha;
  const int rounded =
      std::max(round_to,
               static_cast<int>(std::lround(scaled / round_to)) * round_to);
  return rounded;
}

}  // namespace

std::string MobileNetVariant::name() const {
  std::ostringstream os;
  os << "MobileNetV1-" << width_multiplier << "x @" << input_resolution;
  return os.str();
}

std::vector<DscLayerSpec> mobilenet_variant_specs(
    const MobileNetVariant& variant, int channel_round) {
  EDEA_REQUIRE(variant.width_multiplier > 0.0,
               "width multiplier must be positive");
  EDEA_REQUIRE(variant.input_resolution >= 4,
               "input resolution too small for 13 DSC blocks");
  EDEA_REQUIRE(channel_round >= 1, "channel rounding must be >= 1");

  std::vector<DscLayerSpec> specs;
  specs.reserve(kMobileNetBlocks.size());
  int rows = variant.input_resolution;
  for (std::size_t i = 0; i < kMobileNetBlocks.size(); ++i) {
    const BlockRow& row = kMobileNetBlocks[i];
    DscLayerSpec s;
    s.index = static_cast<int>(i);
    s.in_rows = rows;
    s.in_cols = rows;
    s.in_channels =
        scaled_channels(row.in_ch, variant.width_multiplier, channel_round);
    s.out_channels =
        scaled_channels(row.out_ch, variant.width_multiplier, channel_round);
    s.stride = row.stride;
    // Spatial extents cannot shrink below 1; clamp strides once the map
    // is already 1x1 (matches how small-input variants are deployed).
    if (rows == 1) s.stride = 1;
    EDEA_REQUIRE(s.out_rows() >= 1, "network shrinks to nothing");
    specs.push_back(s);
    rows = s.out_rows();
  }
  return specs;
}

std::vector<DscLayerSpec> mobilenet_imagenet_specs(double width_multiplier) {
  // ImageNet stem: 224x224x3, stride-2 conv -> 112x112x32.
  MobileNetVariant v;
  v.width_multiplier = width_multiplier;
  v.input_resolution = 112;
  return mobilenet_variant_specs(v);
}

namespace {

/// One inverted-residual stage: `reps` blocks of expansion factor `t`,
/// `out_ch` output channels, the first block at `stride`. Shared by the
/// MobileNetV2 / EfficientNet-B0 builders below.
struct InvertedResidualStage {
  int t;       ///< expansion factor (folded into depth_multiplier)
  int out_ch;  ///< stage output channels
  int reps;    ///< blocks in the stage
  int stride;  ///< stride of the first block
};

/// Expands a (t, c, n, s) stage table into DSC layer specs. Each inverted
/// residual block is modeled as one DSC layer whose depthwise stage runs
/// at depth multiplier t: the expansion 1x1 conv is approximated by the
/// multiplier (every input channel fans out to t intermediate channels)
/// and the projection 1x1 conv is the DSC's pointwise stage. Residual
/// shortcuts are elementwise adds outside the accelerator's DSC datapath
/// and are not modeled.
template <std::size_t N>
std::vector<DscLayerSpec> inverted_residual_specs(
    const std::array<InvertedResidualStage, N>& stages, int stem_channels,
    int input_resolution) {
  std::vector<DscLayerSpec> specs;
  int rows = input_resolution;
  int in_ch = stem_channels;
  int index = 0;
  for (const InvertedResidualStage& stage : stages) {
    for (int rep = 0; rep < stage.reps; ++rep) {
      DscLayerSpec s;
      s.index = index++;
      s.in_rows = rows;
      s.in_cols = rows;
      s.in_channels = in_ch;
      s.out_channels = stage.out_ch;
      s.stride = rep == 0 ? stage.stride : 1;
      s.depth_multiplier = stage.t;
      if (rows == 1) s.stride = 1;  // clamp once the map is 1x1
      EDEA_REQUIRE(s.out_rows() >= 1, "network shrinks to nothing");
      specs.push_back(s);
      rows = s.out_rows();
      in_ch = stage.out_ch;
    }
  }
  return specs;
}

}  // namespace

std::vector<DscLayerSpec> mobilenet_v2_specs(int input_resolution) {
  EDEA_REQUIRE(input_resolution >= 4,
               "input resolution too small for the MobileNetV2 stages");
  // The (t, c, n, s) bottleneck table of the MobileNetV2 paper, with the
  // first downsampling stride moved into later stages as deployed on
  // 32x32 inputs (the CIFAR convention: stem and stage 2 keep stride 1).
  constexpr std::array<InvertedResidualStage, 7> stages{{
      {1, 16, 1, 1},
      {6, 24, 2, 1},
      {6, 32, 3, 2},
      {6, 64, 4, 2},
      {6, 96, 3, 1},
      {6, 160, 3, 2},
      {6, 320, 1, 1},
  }};
  return inverted_residual_specs(stages, /*stem_channels=*/32,
                                 input_resolution);
}

std::vector<DscLayerSpec> efficientnet_b0_specs(int input_resolution) {
  EDEA_REQUIRE(input_resolution >= 4,
               "input resolution too small for the EfficientNet-B0 stages");
  // The MBConv stage table of the EfficientNet paper at the B0 scaling,
  // clamped to the accelerator's 3x3 depthwise datapath (the 5x5 stages
  // run as 3x3 - a documented geometry approximation, the channel/stride
  // schedule is exact). Squeeze-excite blocks sit outside the DSC
  // datapath and are not modeled.
  constexpr std::array<InvertedResidualStage, 7> stages{{
      {1, 16, 1, 1},
      {6, 24, 2, 2},
      {6, 40, 2, 2},
      {6, 80, 3, 2},
      {6, 112, 3, 1},
      {6, 192, 4, 2},
      {6, 320, 1, 1},
  }};
  return inverted_residual_specs(stages, /*stem_channels=*/32,
                                 input_resolution);
}

std::vector<DscLayerSpec> edeanet_specs() {
  // 64x64 input stem -> 64x64x16; six DSC blocks tapering to 4x4x256.
  struct Row {
    int rows, in_ch, out_ch, stride;
  };
  constexpr std::array<Row, 6> rows{{
      {64, 16, 32, 2},   // -> 32x32x32
      {32, 32, 64, 1},   // -> 32x32x64
      {32, 64, 128, 2},  // -> 16x16x128
      {16, 128, 128, 1}, // -> 16x16x128
      {16, 128, 256, 2}, // -> 8x8x256
      {8, 256, 256, 2},  // -> 4x4x256
  }};
  std::vector<DscLayerSpec> specs;
  specs.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    DscLayerSpec s;
    s.index = static_cast<int>(i);
    s.in_rows = rows[i].rows;
    s.in_cols = rows[i].rows;
    s.in_channels = rows[i].in_ch;
    s.out_channels = rows[i].out_ch;
    s.stride = rows[i].stride;
    specs.push_back(s);
  }
  return specs;
}

namespace {

/// The name registry: one row per servable network. Builders are plain
/// function pointers so the table stays constexpr-friendly and additions
/// are one line.
struct ZooRow {
  const char* name;
  std::vector<DscLayerSpec> (*build)();
};

std::vector<DscLayerSpec> build_mobilenet_cifar() {
  const auto specs = mobilenet_dsc_specs();
  return std::vector<DscLayerSpec>(specs.begin(), specs.end());
}

std::vector<DscLayerSpec> build_mobilenet_half() {
  return mobilenet_variant_specs(MobileNetVariant{0.5, 32, 32});
}

std::vector<DscLayerSpec> build_mobilenet_quarter() {
  return mobilenet_variant_specs(MobileNetVariant{0.25, 32, 32});
}

std::vector<DscLayerSpec> build_mobilenet_imagenet() {
  return mobilenet_imagenet_specs();
}

std::vector<DscLayerSpec> build_mobilenet_v2() {
  return mobilenet_v2_specs();
}

std::vector<DscLayerSpec> build_efficientnet_b0() {
  return efficientnet_b0_specs();
}

constexpr std::array<ZooRow, 7> kZoo{{
    {"mobilenet-cifar", &build_mobilenet_cifar},
    {"mobilenet-0.5x", &build_mobilenet_half},
    {"mobilenet-0.25x", &build_mobilenet_quarter},
    {"mobilenet-imagenet", &build_mobilenet_imagenet},
    {"mobilenet-v2", &build_mobilenet_v2},
    {"efficientnet-b0", &build_efficientnet_b0},
    {"edeanet-64", &edeanet_specs},
}};

}  // namespace

std::vector<std::string> zoo_network_names() {
  std::vector<std::string> names;
  names.reserve(kZoo.size());
  for (const ZooRow& row : kZoo) names.emplace_back(row.name);
  return names;
}

std::vector<DscLayerSpec> zoo_specs(const std::string& name) {
  for (const ZooRow& row : kZoo) {
    if (name == row.name) return row.build();
  }
  std::string known;
  for (const ZooRow& row : kZoo) {
    if (!known.empty()) known += ", ";
    known += row.name;
  }
  EDEA_REQUIRE(false, "unknown zoo network '" + name + "' (known: " + known +
                          ")");
  return {};  // unreachable
}

std::vector<QuantDscLayer> make_random_quant_network(
    const std::vector<DscLayerSpec>& specs, std::uint64_t seed) {
  EDEA_REQUIRE(!specs.empty(), "network needs at least one layer");
  Rng rng(seed);
  std::vector<QuantDscLayer> layers;
  layers.reserve(specs.size());
  for (const DscLayerSpec& spec : specs) {
    Rng layer_rng = rng.fork();
    const FloatDscLayer fl = make_random_float_layer(spec, layer_rng);
    // Fixed demo scales: chained layers share the activation domain so
    // layer i's output scale equals layer i+1's input scale.
    layers.push_back(quantize_layer(fl, QuantScale{0.03f},
                                    QuantScale{0.03f}, QuantScale{0.03f}));
  }
  return layers;
}

}  // namespace edea::nn
