#include "nn/metrics.hpp"

#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace edea::nn {

double cosine_similarity(const FloatTensor& a, const FloatTensor& b) {
  EDEA_REQUIRE(a.shape() == b.shape(), "cosine_similarity shape mismatch");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a.data()[i];
    const double y = b.data()[i];
    dot += x * y;
    na += x * x;
    nb += y * y;
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double mean_abs_error(const FloatTensor& a, const FloatTensor& b) {
  EDEA_REQUIRE(a.shape() == b.shape(), "mean_abs_error shape mismatch");
  EDEA_REQUIRE(a.size() > 0, "mean_abs_error of empty tensors");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(static_cast<double>(a.data()[i]) - b.data()[i]);
  }
  return sum / static_cast<double>(a.size());
}

int max_abs_diff(const Int8Tensor& a, const Int8Tensor& b) {
  EDEA_REQUIRE(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  int m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int d = std::abs(static_cast<int>(a.data()[i]) -
                           static_cast<int>(b.data()[i]));
    if (d > m) m = d;
  }
  return m;
}

double exact_match_fraction(const Int8Tensor& a, const Int8Tensor& b) {
  EDEA_REQUIRE(a.shape() == b.shape(), "exact_match_fraction shape mismatch");
  EDEA_REQUIRE(a.size() > 0, "exact_match_fraction of empty tensors");
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] == b.data()[i]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(a.size());
}

}  // namespace edea::nn
