// serialize.hpp - binary serialization of quantized DSC networks.
//
// Deployment path for the library: a quantized network (weights, scales,
// folded Non-Conv parameters) is frozen once and shipped to the
// accelerator as a flat parameter blob - mirroring how the silicon's
// offline buffer contents are produced. The format is a simple
// little-endian TLV container with a magic/version header and per-layer
// records; integrity is guarded by explicit length checks (a truncated or
// corrupted stream throws, never yields a half-loaded network).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace edea::nn {

inline constexpr std::uint32_t kModelMagic = 0x45444541;  // "EDEA"
inline constexpr std::uint32_t kModelVersion = 1;

/// Writes a stack of quantized DSC layers to a binary stream.
void save_network(std::ostream& os, const std::vector<QuantDscLayer>& layers);

/// Reads a stack of quantized DSC layers from a binary stream. Throws
/// PreconditionError on malformed input (bad magic, version, truncation,
/// or out-of-range parameters).
[[nodiscard]] std::vector<QuantDscLayer> load_network(std::istream& is);

/// Convenience file-path wrappers.
void save_network_file(const std::string& path,
                       const std::vector<QuantDscLayer>& layers);
[[nodiscard]] std::vector<QuantDscLayer> load_network_file(
    const std::string& path);

/// Size in bytes the serialized form of `layers` will occupy.
[[nodiscard]] std::int64_t serialized_size(
    const std::vector<QuantDscLayer>& layers);

}  // namespace edea::nn
