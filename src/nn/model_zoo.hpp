// model_zoo.hpp - generalized DSC network geometries beyond the paper's
// MobileNetV1-CIFAR10 workload.
//
// The paper closes with "this dataflow is applicable to other datasets,
// and the accelerator is also suitable for other DSC-based networks".
// This module substantiates that: parametric MobileNetV1 variants (width
// multiplier, input resolution - including the ImageNet-224 geometry of
// the original MobileNets paper) plus a compact custom DSC stack, all
// expressed as DscLayerSpec vectors that the tiler/accelerator/DSE consume
// unchanged.
#pragma once

#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace edea::nn {

/// Parameters of a MobileNetV1 variant.
struct MobileNetVariant {
  double width_multiplier = 1.0;  ///< alpha in the MobileNets paper
  int input_resolution = 32;      ///< input spatial extent (square)
  int input_channels = 32;        ///< stem output channels before scaling

  [[nodiscard]] std::string name() const;
};

/// Builds the 13-layer DSC spec list of a MobileNetV1 variant. Channel
/// counts are scaled by the width multiplier and rounded to multiples of
/// `channel_round` (8 keeps the Td-alignment that gives 100 % utilization;
/// pass 1 to study misaligned networks).
[[nodiscard]] std::vector<DscLayerSpec> mobilenet_variant_specs(
    const MobileNetVariant& variant, int channel_round = 8);

/// The original ImageNet MobileNetV1 geometry (224x224 input, stem stride
/// 2 -> 112x112x32 entering the first DSC block).
[[nodiscard]] std::vector<DscLayerSpec> mobilenet_imagenet_specs(
    double width_multiplier = 1.0);

/// The 17-block MobileNetV2 inverted-residual geometry at CIFAR scale
/// (32x32 stem, stride-1 entry stages). Each bottleneck block maps to one
/// DSC layer whose depthwise stage runs at depth multiplier t (the
/// expansion factor): the 1x1 expansion is folded into the multiplier and
/// the 1x1 projection is the DSC's pointwise stage. Residual adds are not
/// modeled.
[[nodiscard]] std::vector<DscLayerSpec> mobilenet_v2_specs(
    int input_resolution = 32);

/// The 16-block EfficientNet-B0 MBConv geometry at 32x32, with the same
/// expansion-as-depth-multiplier modeling as mobilenet_v2_specs. The 5x5
/// stages are clamped to the accelerator's 3x3 datapath; squeeze-excite
/// blocks are outside the DSC datapath and not modeled.
[[nodiscard]] std::vector<DscLayerSpec> efficientnet_b0_specs(
    int input_resolution = 32);

/// A compact 6-layer DSC network for 64x64 inputs (an "EdeaNet" of the
/// kind an embedded user would deploy) - used by examples and tests as a
/// non-MobileNet workload.
[[nodiscard]] std::vector<DscLayerSpec> edeanet_specs();

/// Builds random quantized layers for an arbitrary spec list (He-init
/// float parameters, fixed demo calibration scales). Deterministic in
/// `seed`.
[[nodiscard]] std::vector<QuantDscLayer> make_random_quant_network(
    const std::vector<DscLayerSpec>& specs, std::uint64_t seed);

// --- lookup by name --------------------------------------------------------
//
// The simulation service's text protocol names workloads; these functions
// are the registry behind those names. Every entry resolves to the same
// spec list the direct builders above produce.

/// Stable list of every network name the zoo can resolve.
[[nodiscard]] std::vector<std::string> zoo_network_names();

/// Resolves a zoo network by name (e.g. "mobilenet-cifar", "edeanet-64",
/// "mobilenet-0.5x"). Throws PreconditionError for unknown names, listing
/// the valid ones in the message.
[[nodiscard]] std::vector<DscLayerSpec> zoo_specs(const std::string& name);

}  // namespace edea::nn
