#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace edea::nn {

std::int8_t QuantScale::quantize(float real) const {
  EDEA_REQUIRE(scale > 0.0f, "quantization scale must be positive");
  const float scaled = real / scale;
  const float rounded = std::nearbyint(scaled);
  const float clamped =
      std::clamp(rounded, static_cast<float>(kInt8Min),
                 static_cast<float>(kInt8Max));
  return static_cast<std::int8_t>(clamped);
}

QuantScale choose_weight_scale(const FloatTensor& weights) {
  const double m = max_abs(weights);
  // Degenerate all-zero tensors get scale 1 so quantize() stays total.
  const float scale = m > 0.0 ? static_cast<float>(m / 127.0) : 1.0f;
  return QuantScale{scale};
}

QuantScale choose_activation_scale(double max_observed) {
  EDEA_REQUIRE(max_observed >= 0.0,
               "activation calibration maximum must be non-negative");
  const float scale =
      max_observed > 0.0 ? static_cast<float>(max_observed / 127.0) : 1.0f;
  return QuantScale{scale};
}

Int8Tensor quantize_tensor(const FloatTensor& t, QuantScale s) {
  Int8Tensor out(t.shape());
  const float* src = t.data();
  std::int8_t* dst = out.data();
  for (std::size_t i = 0; i < t.size(); ++i) {
    dst[i] = s.quantize(src[i]);
  }
  return out;
}

FloatTensor dequantize_tensor(const Int8Tensor& t, QuantScale s) {
  FloatTensor out(t.shape());
  const std::int8_t* src = t.data();
  float* dst = out.data();
  for (std::size_t i = 0; i < t.size(); ++i) {
    dst[i] = s.dequantize(src[i]);
  }
  return out;
}

NonConvParams fold_nonconv(QuantScale input_scale, QuantScale weight_scale,
                           const BatchNormParams& bn,
                           QuantScale output_scale) {
  EDEA_REQUIRE(input_scale.scale > 0.0f && weight_scale.scale > 0.0f &&
                   output_scale.scale > 0.0f,
               "all scales must be positive");
  EDEA_REQUIRE(bn.channels() > 0, "BN must have at least one channel");

  NonConvParams params;
  params.channels.reserve(bn.channels());
  params.k_float.reserve(bn.channels());
  params.b_float.reserve(bn.channels());

  for (std::size_t c = 0; c < bn.channels(); ++c) {
    const double bn_scale = bn.effective_scale(c);
    const double bn_shift = bn.effective_shift(c);
    const double k = static_cast<double>(input_scale.scale) *
                     static_cast<double>(weight_scale.scale) * bn_scale /
                     static_cast<double>(output_scale.scale);
    const double b = bn_shift / static_cast<double>(output_scale.scale);
    params.k_float.push_back(static_cast<float>(k));
    params.b_float.push_back(static_cast<float>(b));
    params.channels.push_back(NonConvChannelParams{
        arch::Q8_16::from_double(k), arch::Q8_16::from_double(b)});
  }
  return params;
}

Int8Tensor apply_nonconv(const Int32Tensor& acc, const NonConvParams& params) {
  EDEA_REQUIRE(acc.rank() == 3, "apply_nonconv expects [N][M][C]");
  EDEA_REQUIRE(params.channel_count() ==
                   static_cast<std::size_t>(acc.dim(2)),
               "Non-Conv parameter count must match accumulator channels");
  Int8Tensor out(acc.shape());
  const int N = acc.dim(0), M = acc.dim(1), C = acc.dim(2);
  for (int n = 0; n < N; ++n) {
    for (int m = 0; m < M; ++m) {
      for (int c = 0; c < C; ++c) {
        out(n, m, c) =
            params.channels[static_cast<std::size_t>(c)].apply(acc(n, m, c));
      }
    }
  }
  return out;
}

Int8Tensor apply_nonconv_float(const Int32Tensor& acc,
                               const NonConvParams& params) {
  EDEA_REQUIRE(acc.rank() == 3, "apply_nonconv_float expects [N][M][C]");
  EDEA_REQUIRE(params.channel_count() ==
                   static_cast<std::size_t>(acc.dim(2)),
               "Non-Conv parameter count must match accumulator channels");
  Int8Tensor out(acc.shape());
  const int N = acc.dim(0), M = acc.dim(1), C = acc.dim(2);
  for (int n = 0; n < N; ++n) {
    for (int m = 0; m < M; ++m) {
      for (int c = 0; c < C; ++c) {
        const auto cc = static_cast<std::size_t>(c);
        const double y =
            static_cast<double>(params.k_float[cc]) * acc(n, m, c) +
            static_cast<double>(params.b_float[cc]);
        const double rounded = std::nearbyint(y);
        const double clamped =
            std::clamp(rounded, static_cast<double>(kActMin),
                       static_cast<double>(kActMax));
        out(n, m, c) = static_cast<std::int8_t>(clamped);
      }
    }
  }
  return out;
}

}  // namespace edea::nn
