#include "nn/dataset.hpp"

#include <cmath>

#include "util/check.hpp"

namespace edea::nn {

namespace {

/// Class signature: orientation, spatial frequency and RGB tint of the
/// dominant grating. Ten visually-distinct combinations.
struct ClassSignature {
  double angle;      ///< grating orientation in radians
  double frequency;  ///< cycles across the image
  float r, g, b;     ///< color tint
};

constexpr std::array<ClassSignature, SyntheticCifar::kClasses> kSignatures{{
    {0.00, 2.0, 0.9f, 0.2f, 0.2f},
    {0.35, 3.0, 0.2f, 0.9f, 0.2f},
    {0.70, 4.0, 0.2f, 0.2f, 0.9f},
    {1.05, 5.0, 0.9f, 0.9f, 0.2f},
    {1.40, 6.0, 0.9f, 0.2f, 0.9f},
    {1.75, 2.5, 0.2f, 0.9f, 0.9f},
    {2.10, 3.5, 0.8f, 0.5f, 0.2f},
    {2.45, 4.5, 0.5f, 0.2f, 0.8f},
    {2.80, 5.5, 0.2f, 0.8f, 0.5f},
    {3.10, 6.5, 0.7f, 0.7f, 0.7f},
}};

}  // namespace

LabeledImage SyntheticCifar::sample(int label) {
  EDEA_REQUIRE(label >= 0 && label < kClasses, "class label out of range");
  const ClassSignature& sig = kSignatures[static_cast<std::size_t>(label)];

  // Per-image jitter: phase shift, small angle perturbation, noise level.
  const double phase = rng_.uniform(0.0, 6.28318530717958647692);
  const double angle = sig.angle + rng_.normal(0.0, 0.05);
  const double freq = sig.frequency * (1.0 + rng_.normal(0.0, 0.05));
  const double noise_level = rng_.uniform(0.05, 0.15);

  const double kx = std::cos(angle) * freq * 2.0 * M_PI / 32.0;
  const double ky = std::sin(angle) * freq * 2.0 * M_PI / 32.0;

  LabeledImage out;
  out.label = label;
  out.image = FloatTensor(Shape{32, 32, 3});
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      const double wave =
          0.5 + 0.5 * std::sin(kx * x + ky * y + phase);  // in [0, 1]
      const std::array<float, 3> tint{sig.r, sig.g, sig.b};
      for (int c = 0; c < 3; ++c) {
        const double noise = rng_.normal(0.0, noise_level);
        double v = wave * tint[static_cast<std::size_t>(c)] + noise;
        if (v < 0.0) v = 0.0;
        if (v > 1.0) v = 1.0;
        out.image(y, x, c) = static_cast<float>(v);
      }
    }
  }
  return out;
}

LabeledImage SyntheticCifar::sample() {
  return sample(static_cast<int>(rng_.uniform_int(0, kClasses - 1)));
}

std::vector<LabeledImage> SyntheticCifar::batch(int count) {
  EDEA_REQUIRE(count > 0, "batch size must be positive");
  std::vector<LabeledImage> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(sample(i % kClasses));
  }
  return out;
}

}  // namespace edea::nn
