#include "nn/lsq.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace edea::nn {

double quantization_mse(const std::vector<float>& values, QuantScale scale,
                        int lo, int hi) {
  EDEA_REQUIRE(scale.scale > 0.0f, "scale must be positive");
  EDEA_REQUIRE(lo < hi, "clamp bounds inverted");
  if (values.empty()) return 0.0;
  double sum = 0.0;
  const double s = static_cast<double>(scale.scale);
  for (const float v : values) {
    double q = std::nearbyint(static_cast<double>(v) / s);
    q = std::clamp(q, static_cast<double>(lo), static_cast<double>(hi));
    const double err = static_cast<double>(v) - s * q;
    sum += err * err;
  }
  return sum / static_cast<double>(values.size());
}

QuantScale optimize_scale(const std::vector<float>& values, int lo, int hi,
                          const LsqOptions& options) {
  EDEA_REQUIRE(options.bracket_lo > 0.0 &&
                   options.bracket_hi > options.bracket_lo,
               "invalid search bracket");
  EDEA_REQUIRE(options.iterations > 0, "iterations must be positive");

  double max_abs_v = 0.0;
  for (const float v : values) {
    max_abs_v = std::max(max_abs_v, std::abs(static_cast<double>(v)));
  }
  const int range = std::max(std::abs(lo), std::abs(hi));
  if (max_abs_v == 0.0) return QuantScale{1.0f};
  const double base = max_abs_v / static_cast<double>(range);

  // Golden-section search for the MSE minimum over [a, b].
  constexpr double kInvPhi = 0.61803398874989484820;
  double a = options.bracket_lo * base;
  double b = options.bracket_hi * base;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = quantization_mse(values, QuantScale{static_cast<float>(x1)},
                               lo, hi);
  double f2 = quantization_mse(values, QuantScale{static_cast<float>(x2)},
                               lo, hi);
  for (int i = 0; i < options.iterations; ++i) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = quantization_mse(values, QuantScale{static_cast<float>(x1)}, lo,
                            hi);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = quantization_mse(values, QuantScale{static_cast<float>(x2)}, lo,
                            hi);
    }
  }
  const double best = 0.5 * (a + b);

  // Never return something worse than the plain max-based scale - the
  // bracket could exclude the optimum for degenerate distributions.
  const QuantScale candidate{static_cast<float>(best)};
  const QuantScale fallback{static_cast<float>(base)};
  if (quantization_mse(values, candidate, lo, hi) <=
      quantization_mse(values, fallback, lo, hi)) {
    return candidate;
  }
  return fallback;
}

std::vector<float> subsample(const FloatTensor& t, std::size_t max_samples) {
  EDEA_REQUIRE(max_samples > 0, "sample cap must be positive");
  std::vector<float> out;
  if (t.size() <= max_samples) {
    out.assign(t.data(), t.data() + t.size());
    return out;
  }
  const std::size_t stride = (t.size() + max_samples - 1) / max_samples;
  out.reserve(t.size() / stride + 1);
  for (std::size_t i = 0; i < t.size(); i += stride) {
    out.push_back(t.data()[i]);
  }
  return out;
}

CalibrationResult lsq_calibrate(const FloatMobileNet& net,
                                const std::vector<FloatTensor>& images,
                                const LsqOptions& options) {
  EDEA_REQUIRE(!images.empty(), "calibration needs at least one image");

  // Capture per-layer samples across all calibration images.
  std::vector<std::vector<float>> input_samples(kDscLayerCount + 1);
  std::vector<std::vector<float>> intermediate_samples(kDscLayerCount);
  std::vector<float> image_samples;

  const std::size_t per_image_cap =
      std::max<std::size_t>(1, options.max_samples / images.size());
  for (const FloatTensor& image : images) {
    {
      const auto s = subsample(image, per_image_cap);
      image_samples.insert(image_samples.end(), s.begin(), s.end());
    }
    std::vector<FloatTensor> inputs;
    std::vector<FloatTensor> intermediates;
    (void)net.forward_dsc(net.forward_stem(image), &inputs, &intermediates);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const auto s = subsample(inputs[i], per_image_cap);
      input_samples[i].insert(input_samples[i].end(), s.begin(), s.end());
    }
    for (std::size_t i = 0; i < intermediates.size(); ++i) {
      const auto s = subsample(intermediates[i], per_image_cap);
      intermediate_samples[i].insert(intermediate_samples[i].end(),
                                     s.begin(), s.end());
    }
  }

  CalibrationResult cal;
  // Images are in [0, 1] (non-negative) but quantized into the signed
  // symmetric domain like every other tensor.
  cal.image_scale = optimize_scale(image_samples, 0, 127, options);
  cal.block_input_scales.reserve(input_samples.size());
  for (const auto& samples : input_samples) {
    cal.block_input_scales.push_back(
        optimize_scale(samples, kActMin, kActMax, options));
  }
  cal.intermediate_scales.reserve(intermediate_samples.size());
  for (const auto& samples : intermediate_samples) {
    cal.intermediate_scales.push_back(
        optimize_scale(samples, kActMin, kActMax, options));
  }
  return cal;
}

}  // namespace edea::nn
