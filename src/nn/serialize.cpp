#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace edea::nn {

namespace {

// --- little-endian primitive IO -------------------------------------------

void write_u32(std::ostream& os, std::uint32_t v) {
  unsigned char b[4] = {static_cast<unsigned char>(v & 0xFF),
                        static_cast<unsigned char>((v >> 8) & 0xFF),
                        static_cast<unsigned char>((v >> 16) & 0xFF),
                        static_cast<unsigned char>((v >> 24) & 0xFF)};
  os.write(reinterpret_cast<const char*>(b), 4);
}

void write_i32(std::ostream& os, std::int32_t v) {
  write_u32(os, static_cast<std::uint32_t>(v));
}

void write_f32(std::ostream& os, float v) {
  static_assert(sizeof(float) == 4);
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  write_u32(os, bits);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  EDEA_REQUIRE(is.good(), "truncated model stream");
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::int32_t read_i32(std::istream& is) {
  return static_cast<std::int32_t>(read_u32(is));
}

float read_f32(std::istream& is) {
  const std::uint32_t bits = read_u32(is);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

void write_int8_block(std::ostream& os, const Int8Tensor& t) {
  write_u32(os, static_cast<std::uint32_t>(t.size()));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size()));
}

void read_int8_block(std::istream& is, Int8Tensor& t) {
  const std::uint32_t n = read_u32(is);
  EDEA_REQUIRE(n == t.size(), "weight block size mismatch in model stream");
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(n));
  EDEA_REQUIRE(is.good(), "truncated weight block in model stream");
}

void write_nonconv(std::ostream& os, const NonConvParams& p) {
  write_u32(os, static_cast<std::uint32_t>(p.channel_count()));
  for (std::size_t c = 0; c < p.channel_count(); ++c) {
    write_i32(os, p.channels[c].k.raw());
    write_i32(os, p.channels[c].b.raw());
    write_f32(os, p.k_float[c]);
    write_f32(os, p.b_float[c]);
  }
}

NonConvParams read_nonconv(std::istream& is, int expected_channels) {
  const std::uint32_t n = read_u32(is);
  EDEA_REQUIRE(n == static_cast<std::uint32_t>(expected_channels),
               "Non-Conv channel count mismatch in model stream");
  NonConvParams p;
  p.channels.reserve(n);
  p.k_float.reserve(n);
  p.b_float.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    // from_raw validates the 24-bit envelope - corrupt streams throw here.
    const arch::Q8_16 k = arch::Q8_16::from_raw(read_i32(is));
    const arch::Q8_16 b = arch::Q8_16::from_raw(read_i32(is));
    p.channels.push_back(NonConvChannelParams{k, b});
    p.k_float.push_back(read_f32(is));
    p.b_float.push_back(read_f32(is));
  }
  return p;
}

}  // namespace

void save_network(std::ostream& os,
                  const std::vector<QuantDscLayer>& layers) {
  EDEA_REQUIRE(!layers.empty(), "cannot serialize an empty network");
  write_u32(os, kModelMagic);
  write_u32(os, kModelVersion);
  write_u32(os, static_cast<std::uint32_t>(layers.size()));
  for (const QuantDscLayer& l : layers) {
    const DscLayerSpec& s = l.spec;
    write_i32(os, s.index);
    write_i32(os, s.in_rows);
    write_i32(os, s.in_cols);
    write_i32(os, s.in_channels);
    write_i32(os, s.stride);
    write_i32(os, s.out_channels);
    write_i32(os, s.kernel);
    write_i32(os, s.padding);
    write_f32(os, l.input_scale.scale);
    write_f32(os, l.intermediate_scale.scale);
    write_f32(os, l.output_scale.scale);
    write_int8_block(os, l.dwc_weights);
    write_int8_block(os, l.pwc_weights);
    write_nonconv(os, l.nonconv1);
    write_nonconv(os, l.nonconv2);
  }
  EDEA_REQUIRE(os.good(), "stream error while writing model");
}

std::vector<QuantDscLayer> load_network(std::istream& is) {
  EDEA_REQUIRE(read_u32(is) == kModelMagic, "not an EDEA model stream");
  EDEA_REQUIRE(read_u32(is) == kModelVersion,
               "unsupported EDEA model version");
  const std::uint32_t count = read_u32(is);
  EDEA_REQUIRE(count > 0 && count < 4096,
               "implausible layer count in model stream");

  std::vector<QuantDscLayer> layers;
  layers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    QuantDscLayer l;
    DscLayerSpec& s = l.spec;
    s.index = read_i32(is);
    s.in_rows = read_i32(is);
    s.in_cols = read_i32(is);
    s.in_channels = read_i32(is);
    s.stride = read_i32(is);
    s.out_channels = read_i32(is);
    s.kernel = read_i32(is);
    s.padding = read_i32(is);
    EDEA_REQUIRE(s.in_rows > 0 && s.in_cols > 0 && s.in_channels > 0 &&
                     s.out_channels > 0 && (s.stride == 1 || s.stride == 2) &&
                     s.kernel > 0 && s.padding >= 0,
                 "invalid layer geometry in model stream");
    l.input_scale.scale = read_f32(is);
    l.intermediate_scale.scale = read_f32(is);
    l.output_scale.scale = read_f32(is);
    EDEA_REQUIRE(l.input_scale.scale > 0 && l.intermediate_scale.scale > 0 &&
                     l.output_scale.scale > 0,
                 "non-positive scale in model stream");
    l.dwc_weights = Int8Tensor(Shape{s.kernel, s.kernel, s.in_channels});
    l.pwc_weights = Int8Tensor(Shape{s.out_channels, s.in_channels});
    read_int8_block(is, l.dwc_weights);
    read_int8_block(is, l.pwc_weights);
    l.nonconv1 = read_nonconv(is, s.in_channels);
    l.nonconv2 = read_nonconv(is, s.out_channels);
    layers.push_back(std::move(l));
  }
  return layers;
}

void save_network_file(const std::string& path,
                       const std::vector<QuantDscLayer>& layers) {
  std::ofstream os(path, std::ios::binary);
  EDEA_REQUIRE(os.is_open(), "cannot open '" + path + "' for writing");
  save_network(os, layers);
}

std::vector<QuantDscLayer> load_network_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EDEA_REQUIRE(is.is_open(), "cannot open '" + path + "' for reading");
  return load_network(is);
}

std::int64_t serialized_size(const std::vector<QuantDscLayer>& layers) {
  std::int64_t bytes = 12;  // magic + version + count
  for (const QuantDscLayer& l : layers) {
    bytes += 8 * 4 + 3 * 4;  // spec fields + scales
    bytes += 4 + static_cast<std::int64_t>(l.dwc_weights.size());
    bytes += 4 + static_cast<std::int64_t>(l.pwc_weights.size());
    bytes += 4 + 16 * static_cast<std::int64_t>(l.nonconv1.channel_count());
    bytes += 4 + 16 * static_cast<std::int64_t>(l.nonconv2.channel_count());
  }
  return bytes;
}

}  // namespace edea::nn
