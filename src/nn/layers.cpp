#include "nn/layers.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace edea::nn {

std::string DscLayerSpec::to_string() const {
  std::ostringstream os;
  os << "DSC" << index << " ifmap " << in_rows << "x" << in_cols << "x"
     << in_channels << " s" << stride;
  // Default-valued dimensions stay silent so pre-existing strings (and
  // everything pinned against them) are byte-identical.
  if (dilation != 1) os << " d" << dilation;
  if (depth_multiplier != 1) os << " m" << depth_multiplier;
  os << " -> " << out_rows() << "x" << out_cols() << "x" << out_channels;
  return os.str();
}

FloatTensor FloatDscLayer::forward(const FloatTensor& input) const {
  return forward(input, nullptr);
}

FloatTensor FloatDscLayer::forward(const FloatTensor& input,
                                   FloatTensor* intermediate_out) const {
  EDEA_REQUIRE(input.rank() == 3 && input.dim(2) == spec.in_channels,
               "layer input channel mismatch");
  const FloatTensor dwc_out =
      depthwise_conv2d(input, dwc_weights, spec.dwc_geometry());
  const FloatTensor intermediate = relu(batch_norm(dwc_out, bn1));
  if (intermediate_out != nullptr) *intermediate_out = intermediate;
  const FloatTensor pwc_out = pointwise_conv2d(intermediate, pwc_weights);
  return relu(batch_norm(pwc_out, bn2));
}

Int8Tensor QuantDscLayer::forward(const Int8Tensor& input) const {
  return forward(input, nullptr);
}

Int8Tensor QuantDscLayer::forward(const Int8Tensor& input,
                                  Int8Tensor* intermediate_out) const {
  EDEA_REQUIRE(input.rank() == 3 && input.dim(2) == spec.in_channels,
               "layer input channel mismatch");
  const Int32Tensor acc1 =
      depthwise_conv2d_q(input, dwc_weights, spec.dwc_geometry());
  const Int8Tensor intermediate = apply_nonconv(acc1, nonconv1);
  if (intermediate_out != nullptr) *intermediate_out = intermediate;
  const Int32Tensor acc2 = pointwise_conv2d_q(intermediate, pwc_weights);
  return apply_nonconv(acc2, nonconv2);
}

namespace {

BatchNormParams make_random_bn(int channels, Rng& rng, float beta_shift,
                               float gamma_gain) {
  BatchNormParams bn;
  const auto n = static_cast<std::size_t>(channels);
  bn.gamma.resize(n);
  bn.beta.resize(n);
  bn.mean.resize(n);
  bn.var.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    // Near-identity BN, as observed in trained networks: gamma around 1,
    // small beta/mean, variance spread around 1. beta_shift moves the
    // pre-ReLU distribution negative (controls post-ReLU sparsity);
    // gamma_gain counteracts the variance loss the shift would otherwise
    // compound through depth, keeping activation magnitudes O(1).
    bn.gamma[c] = static_cast<float>(rng.normal(gamma_gain, 0.15));
    bn.beta[c] = static_cast<float>(rng.normal(-beta_shift, 0.10));
    bn.mean[c] = static_cast<float>(rng.normal(0.0, 0.20));
    bn.var[c] = static_cast<float>(std::abs(rng.normal(1.0, 0.25)) + 0.05);
  }
  return bn;
}

}  // namespace

FloatDscLayer make_random_float_layer(const DscLayerSpec& spec, Rng& rng) {
  EDEA_REQUIRE(spec.in_channels > 0 && spec.out_channels > 0,
               "layer channel counts must be positive");
  EDEA_REQUIRE(spec.stride == 1 || spec.stride == 2,
               "MobileNetV1 DSC layers use stride 1 or 2");
  EDEA_REQUIRE(spec.dilation >= 1, "DWC dilation must be >= 1");
  EDEA_REQUIRE(spec.depth_multiplier >= 1, "depth multiplier must be >= 1");

  FloatDscLayer layer;
  layer.spec = spec;

  // He/Kaiming fan-in initialization keeps activation magnitudes stable
  // through the (untrained) network, which matters for realistic
  // quantization ranges and sparsity statistics. Each DWC output channel
  // still reads a single input channel, so its fan-in stays kernel^2
  // regardless of the depth multiplier; the PWC fan-in is the
  // (multiplied) intermediate depth. At depth_multiplier = 1 every draw
  // below happens in the pre-multiplier order, bit for bit.
  const double dwc_std =
      std::sqrt(2.0 / static_cast<double>(spec.kernel * spec.kernel));
  layer.dwc_weights = FloatTensor(
      Shape{spec.kernel, spec.kernel, spec.intermediate_channels()});
  for (auto& w : layer.dwc_weights.storage()) {
    w = static_cast<float>(rng.normal(0.0, dwc_std));
  }

  const double pwc_std =
      std::sqrt(2.0 / static_cast<double>(spec.intermediate_channels()));
  layer.pwc_weights =
      FloatTensor(Shape{spec.out_channels, spec.intermediate_channels()});
  for (auto& w : layer.pwc_weights.storage()) {
    w = static_cast<float>(rng.normal(0.0, pwc_std));
  }

  // Trained MobileNets show rising post-ReLU sparsity with depth (the
  // paper's Fig. 11 reaches ~97% zeros at layer 12). The synthetic
  // substitute reproduces that trend by shifting deep layers' pre-ReLU
  // distributions negative via the BN beta (see DESIGN.md sec. 2).
  const float depth = static_cast<float>(spec.index) / 12.0f;
  const float beta_shift = 0.55f * depth;
  const float gamma_gain = 1.0f + 0.9f * depth;
  layer.bn1 = make_random_bn(spec.intermediate_channels(), rng, beta_shift,
                             gamma_gain);
  layer.bn2 = make_random_bn(spec.out_channels, rng, beta_shift, gamma_gain);
  return layer;
}

QuantDscLayer quantize_layer(const FloatDscLayer& layer,
                             QuantScale input_scale,
                             QuantScale intermediate_scale,
                             QuantScale output_scale) {
  QuantDscLayer q;
  q.spec = layer.spec;
  q.input_scale = input_scale;
  q.intermediate_scale = intermediate_scale;
  q.output_scale = output_scale;

  const QuantScale dwc_w_scale = choose_weight_scale(layer.dwc_weights);
  const QuantScale pwc_w_scale = choose_weight_scale(layer.pwc_weights);
  q.dwc_weights = quantize_tensor(layer.dwc_weights, dwc_w_scale);
  q.pwc_weights = quantize_tensor(layer.pwc_weights, pwc_w_scale);

  q.nonconv1 =
      fold_nonconv(input_scale, dwc_w_scale, layer.bn1, intermediate_scale);
  q.nonconv2 =
      fold_nonconv(intermediate_scale, pwc_w_scale, layer.bn2, output_scale);
  return q;
}

}  // namespace edea::nn
