// mobilenet.hpp - MobileNetV1 for CIFAR10-sized inputs (32x32x3), the
// workload of the paper's entire evaluation.
//
// Architecture (Sec. II / Sec. IV of the paper, width multiplier 1.0):
//   stem : 3x3x3x32 standard conv, stride 1, BN, ReLU      (host-side)
//   DSC 0..12 : thirteen depthwise-separable blocks         (accelerated)
//               stride 2 at blocks 1, 3, 5, 11
//   head : global average pool + FC(1024 -> 10)             (host-side)
//
// The class exposes a float reference network, an activation-scale
// calibration pass, and a quantized network whose DSC blocks run the exact
// Non-Conv fixed-point math of the accelerator.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "util/random.hpp"

namespace edea::nn {

inline constexpr int kDscLayerCount = 13;
inline constexpr int kCifarClasses = 10;
inline constexpr int kCifarSize = 32;
inline constexpr int kCifarChannels = 3;

/// The 13 DSC layer geometries of MobileNetV1-CIFAR10 (DESIGN.md Sec. 5).
[[nodiscard]] std::array<DscLayerSpec, kDscLayerCount> mobilenet_dsc_specs();

/// Float MobileNetV1: stem + 13 DSC blocks + head.
class FloatMobileNet {
 public:
  /// Builds a randomly initialized network (deterministic in `seed`).
  explicit FloatMobileNet(std::uint64_t seed);

  /// Full forward pass: [32][32][3] image -> [10] logits.
  [[nodiscard]] FloatTensor forward(const FloatTensor& image) const;

  /// Runs the stem only: image -> [32][32][32] post-ReLU activations.
  [[nodiscard]] FloatTensor forward_stem(const FloatTensor& image) const;

  /// Runs DSC blocks, recording each block's input and intermediate
  /// activations (for calibration). Returns the final block output.
  [[nodiscard]] FloatTensor forward_dsc(
      const FloatTensor& stem_out,
      std::vector<FloatTensor>* block_inputs = nullptr,
      std::vector<FloatTensor>* block_intermediates = nullptr) const;

  /// Head: [2][2][1024] features -> [10] logits.
  [[nodiscard]] FloatTensor forward_head(const FloatTensor& features) const;

  [[nodiscard]] const std::vector<FloatDscLayer>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const FloatTensor& stem_weights() const noexcept {
    return stem_weights_;
  }
  [[nodiscard]] const BatchNormParams& stem_bn() const noexcept {
    return stem_bn_;
  }
  [[nodiscard]] FloatTensor& fc_weights() noexcept { return fc_weights_; }
  [[nodiscard]] FloatTensor& fc_bias() noexcept { return fc_bias_; }

  /// Total parameter count (stem + DSC blocks + head), for sanity tests.
  [[nodiscard]] std::int64_t parameter_count() const noexcept;

 private:
  FloatTensor stem_weights_;  ///< [32][3][3][3]
  BatchNormParams stem_bn_;
  std::vector<FloatDscLayer> blocks_;
  FloatTensor fc_weights_;  ///< [10][1024]
  FloatTensor fc_bias_;     ///< [10]
};

/// Calibrated per-layer activation scales: scale of each DSC block input
/// (14 entries: block 0..12 inputs plus the final block output) and of each
/// intermediate (13 entries).
struct CalibrationResult {
  QuantScale image_scale;                       ///< raw image domain
  std::vector<QuantScale> block_input_scales;   ///< size 14
  std::vector<QuantScale> intermediate_scales;  ///< size 13
};

/// Runs `images` through the float network and derives activation scales
/// from the observed maxima (post-training calibration; LSQ substitute).
[[nodiscard]] CalibrationResult calibrate(const FloatMobileNet& net,
                                          const std::vector<FloatTensor>&
                                              images);

/// Quantized MobileNetV1. The 13 DSC blocks are int8 (the accelerator's
/// workload); the stem is additionally available as an int8 standard conv
/// with folded BN+ReLU+requant (same Fig. 6 arithmetic, host-side), so the
/// only float stage left in inference is the classifier head.
class QuantMobileNet {
 public:
  QuantMobileNet(const FloatMobileNet& net, const CalibrationResult& cal);

  /// Quantizes a stem output into block 0's int8 input domain.
  [[nodiscard]] Int8Tensor quantize_input(const FloatTensor& stem_out) const;

  /// Quantizes a raw [0,1] image into the int8 image domain.
  [[nodiscard]] Int8Tensor quantize_image(const FloatTensor& image) const;

  /// int8 stem: 3x3 standard conv + folded BN/ReLU/requant. Produces the
  /// block-0 input directly (an alternative to the float stem +
  /// quantize_input path; fidelity is asserted in tests).
  [[nodiscard]] Int8Tensor forward_stem_q(const Int8Tensor& image_q) const;

  /// Runs all DSC blocks in int8. If `stats` is non-null it receives one
  /// LayerActivationStats entry per block (zero fractions of both engine
  /// inputs - the Fig. 11 quantities).
  [[nodiscard]] Int8Tensor forward_dsc(
      const Int8Tensor& block0_input,
      std::vector<LayerActivationStats>* stats = nullptr) const;

  /// Dequantizes the final block output back to float for the host head.
  [[nodiscard]] FloatTensor dequantize_output(const Int8Tensor& out) const;

  [[nodiscard]] const std::vector<QuantDscLayer>& blocks() const noexcept {
    return blocks_;
  }

 private:
  std::vector<QuantDscLayer> blocks_;
  QuantScale input_scale_;
  QuantScale output_scale_;
  QuantScale image_scale_;
  Int8Tensor stem_weights_q_;      ///< [32][3][3][3]
  NonConvParams stem_nonconv_;     ///< folded stem BN/ReLU/requant
};

}  // namespace edea::nn
