// ops.hpp - reference implementations of every operator the paper's stack
// needs: standard / depthwise / pointwise convolution (float and int8),
// batch normalization, ReLU, pooling, fully-connected and softmax.
//
// These are the golden models. They are written for clarity and
// bit-reproducibility, not speed; the accelerator simulator in src/core is
// validated against them element by element.
#pragma once

#include <cstdint>

#include "nn/tensor.hpp"

namespace edea::nn {

/// Convolution geometry shared by the float and integer paths.
struct Conv2dGeometry {
  int kernel = 3;    ///< square kernel extent (paper uses 3x3 DWC kernels)
  int stride = 1;    ///< 1 or 2 in MobileNetV1
  int padding = 1;   ///< symmetric zero padding
  int dilation = 1;  ///< spacing between kernel taps (1 = dense)

  /// Spatial footprint of the dilated kernel: (kernel-1)*dilation + 1.
  [[nodiscard]] int effective_kernel() const noexcept {
    return (kernel - 1) * dilation + 1;
  }

  /// Output spatial extent for an input extent `in`.
  [[nodiscard]] int out_extent(int in) const noexcept {
    return (in + 2 * padding - effective_kernel()) / stride + 1;
  }
};

// ---------------------------------------------------------------------------
// Float reference path (pre-quantization model).
// ---------------------------------------------------------------------------

/// Standard convolution. input: [R][C][D], weights: [K][kh][kw][D],
/// output: [N][M][K].
[[nodiscard]] FloatTensor conv2d(const FloatTensor& input,
                                 const FloatTensor& weights,
                                 const Conv2dGeometry& geom);

/// Depthwise convolution with the standard DepthwiseConv2d surface:
/// input [R][C][D], weights [kh][kw][D*mult] (the depth multiplier is
/// inferred as weights.dim(2) / D, which must divide exactly), output
/// [N][M][D*mult] where output channel c reads input channel c / mult.
/// Kernel taps honor `geom.dilation`.
[[nodiscard]] FloatTensor depthwise_conv2d(const FloatTensor& input,
                                           const FloatTensor& weights,
                                           const Conv2dGeometry& geom);

/// Pointwise (1x1) convolution. input: [N][M][D], weights: [K][D],
/// output: [N][M][K].
[[nodiscard]] FloatTensor pointwise_conv2d(const FloatTensor& input,
                                           const FloatTensor& weights);

/// Per-channel batch-normalization parameters (inference form).
struct BatchNormParams {
  std::vector<float> gamma;  ///< scale
  std::vector<float> beta;   ///< shift
  std::vector<float> mean;   ///< running mean (mu)
  std::vector<float> var;    ///< running variance (sigma^2)
  float epsilon = 1e-5f;

  [[nodiscard]] std::size_t channels() const noexcept { return gamma.size(); }

  /// Effective affine form: y = scale[c]*x + shift[c].
  [[nodiscard]] float effective_scale(std::size_t c) const;
  [[nodiscard]] float effective_shift(std::size_t c) const;
};

/// BatchNorm over the channel (last) axis of an HWC tensor.
[[nodiscard]] FloatTensor batch_norm(const FloatTensor& input,
                                     const BatchNormParams& bn);

/// Elementwise max(0, x).
[[nodiscard]] FloatTensor relu(const FloatTensor& input);

/// Global average pooling: [N][M][C] -> [C].
[[nodiscard]] FloatTensor global_avg_pool(const FloatTensor& input);

/// Fully connected layer: input [C], weights [K][C], bias [K] -> [K].
[[nodiscard]] FloatTensor linear(const FloatTensor& input,
                                 const FloatTensor& weights,
                                 const FloatTensor& bias);

/// Numerically stable softmax over a rank-1 tensor.
[[nodiscard]] FloatTensor softmax(const FloatTensor& logits);

/// Index of the maximum logit.
[[nodiscard]] int argmax(const FloatTensor& logits);

// ---------------------------------------------------------------------------
// Integer path (quantized operands, int32 accumulators).
// ---------------------------------------------------------------------------

/// Depthwise convolution over int8 operands producing raw int32 accumulators
/// (pre Non-Conv). Zero padding pads with the integer 0, which represents
/// real value 0 under symmetric quantization. Same dilation / depth-
/// multiplier surface as the float path: weights [kh][kw][D*mult] yield
/// [N][M][D*mult] with output channel c reading input channel c / mult.
[[nodiscard]] Int32Tensor depthwise_conv2d_q(const Int8Tensor& input,
                                             const Int8Tensor& weights,
                                             const Conv2dGeometry& geom);

/// Pointwise convolution over int8 operands producing int32 accumulators.
[[nodiscard]] Int32Tensor pointwise_conv2d_q(const Int8Tensor& input,
                                             const Int8Tensor& weights);

/// Standard convolution over int8 operands (used by the host-side stem).
[[nodiscard]] Int32Tensor conv2d_q(const Int8Tensor& input,
                                   const Int8Tensor& weights,
                                   const Conv2dGeometry& geom);

/// Largest |accumulator| in a tensor - used to validate the paper's 24-bit
/// accumulator envelope on realistic data.
[[nodiscard]] std::int64_t max_abs_acc(const Int32Tensor& acc);

}  // namespace edea::nn
