// quant.hpp - 8-bit symmetric quantization and Non-Conv folding math.
//
// The paper trains MobileNetV1 with LSQ (learned step size quantization) to
// 8 bits. Training infrastructure is out of scope for this reproduction, so
// we substitute calibration-based post-training quantization with the same
// *data path*: per-tensor symmetric scales, int8 operands, integer
// accumulation, and a folded y = k*x + b rescale stage (dequant + BN + ReLU
// + requant) with k, b in Q8.16 - exactly the arithmetic of Fig. 6. The
// substitution is documented in DESIGN.md section 2.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/fixed_point.hpp"
#include "nn/ops.hpp"
#include "nn/tensor.hpp"

namespace edea::nn {

/// int8 quantization limits. Activations are post-ReLU, so their integer
/// range is [0, 127]; weights use the full symmetric range.
inline constexpr std::int32_t kInt8Min = -128;
inline constexpr std::int32_t kInt8Max = 127;
inline constexpr std::int32_t kActMin = 0;
inline constexpr std::int32_t kActMax = 127;

/// Per-tensor symmetric quantization parameter: real = scale * integer.
struct QuantScale {
  float scale = 1.0f;

  /// Quantizes a real value to int8 with round-to-nearest and saturation.
  [[nodiscard]] std::int8_t quantize(float real) const;

  /// Reconstructs the real value of an integer code.
  [[nodiscard]] float dequantize(std::int32_t q) const {
    return scale * static_cast<float>(q);
  }
};

/// Chooses a weight scale: max|w| / 127 (symmetric, full range).
[[nodiscard]] QuantScale choose_weight_scale(const FloatTensor& weights);

/// Chooses an activation scale from calibration data: max(v) / 127 where v
/// is the post-ReLU activation (non-negative). `max_observed` is the largest
/// value seen over the calibration batch.
[[nodiscard]] QuantScale choose_activation_scale(double max_observed);

/// Quantizes a float tensor to int8 under the given scale.
[[nodiscard]] Int8Tensor quantize_tensor(const FloatTensor& t, QuantScale s);

/// Dequantizes an int8 tensor to float under the given scale.
[[nodiscard]] FloatTensor dequantize_tensor(const Int8Tensor& t, QuantScale s);

/// Folded Non-Conv parameters for one output channel (Fig. 6):
///   y_int8 = clamp(round(k * acc + b), 0, 127)
/// where acc is the raw convolution accumulator. Folding:
///   k = s_in * s_w * gamma / sqrt(var + eps) / s_out
///   b = (beta - gamma * mean / sqrt(var + eps)) / s_out
struct NonConvChannelParams {
  arch::Q8_16 k;
  arch::Q8_16 b;

  /// Applies the fixed-point datapath (shared with the accelerator).
  [[nodiscard]] std::int8_t apply(std::int32_t acc) const noexcept {
    return static_cast<std::int8_t>(arch::nonconv_affine(acc, k, b));
  }

  /// The exact real-valued affine this fixed-point pair approximates.
  [[nodiscard]] float apply_float(float acc) const noexcept {
    const float y = static_cast<float>(k.to_double()) * acc +
                    static_cast<float>(b.to_double());
    return y;
  }
};

/// Per-layer Non-Conv parameter vector (one k/b pair per channel), plus the
/// float-domain values they encode (retained for error analysis).
struct NonConvParams {
  std::vector<NonConvChannelParams> channels;
  std::vector<float> k_float;  ///< pre-encoding real k values
  std::vector<float> b_float;  ///< pre-encoding real b values

  [[nodiscard]] std::size_t channel_count() const noexcept {
    return channels.size();
  }
};

/// Folds (input scale, weight scale, BN, output scale) into per-channel
/// Non-Conv parameters. Throws PreconditionError if any k or b falls outside
/// the Q8.16 range - the paper chose 8 integer bits precisely so this never
/// happens for realistic networks, and we keep it a hard error so violations
/// are visible.
[[nodiscard]] NonConvParams fold_nonconv(QuantScale input_scale,
                                         QuantScale weight_scale,
                                         const BatchNormParams& bn,
                                         QuantScale output_scale);

/// Applies a folded Non-Conv stage to a whole accumulator tensor
/// ([N][M][C], channel-last), producing the next stage's int8 activations.
[[nodiscard]] Int8Tensor apply_nonconv(const Int32Tensor& acc,
                                       const NonConvParams& params);

/// Reference float computation of the same stage (dequant + BN + ReLU +
/// requant, no fixed-point rounding). Used by tolerance tests.
[[nodiscard]] Int8Tensor apply_nonconv_float(const Int32Tensor& acc,
                                             const NonConvParams& params);

}  // namespace edea::nn
