#include "baseline/serialized_accelerator.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "nn/arena.hpp"
#include "util/check.hpp"

namespace edea::baseline {

using arch::TrafficClass;
using core::BufferTile;
using core::ChannelSlice;
using core::KernelGroup;
using core::Tiler;

SerializedDscAccelerator::SerializedDscAccelerator(core::EdeaConfig config)
    : config_(config), dwc_(config), pwc_(config), nonconv_(config) {
  config_.validate();
}

void SerializedDscAccelerator::set_tile_parallelism(int parallelism) {
  EDEA_REQUIRE(parallelism >= 1,
               "tile_parallelism must be >= 1 (the serialized baseline "
               "executes tiles serially at every accepted width)");
  tile_parallelism_ = parallelism;
}

namespace {

/// Indexed blob names built by append (the obvious `"l" + to_string(i)`
/// trips a GCC 12 -Wrestrict false positive in optimized builds).
std::string layer_blob_name(std::size_t i, const char* what) {
  std::string name = "l";
  name += std::to_string(i);
  name += '.';
  name += what;
  return name;
}

}  // namespace

core::NetworkRunResult SerializedDscAccelerator::run_network(
    const std::vector<nn::QuantDscLayer>& layers,
    const nn::Int8Tensor& input) {
  EDEA_REQUIRE(!layers.empty(), "network must have at least one layer");

  // One plan for the whole run: the activation chain (same planner the
  // "edea" backend uses - cross-backend bit-exactness keeps holding), plus
  // this baseline's per-layer scratch: the externally round-tripped
  // intermediate map and the per-tile psum accumulator, each live only at
  // its own layer step so the planner folds them into the reuse.
  nn::MemoryPlanner planner;
  const nn::NetworkActivationPlan acts =
      nn::plan_network_activations(planner, layers, input.shape(), 1);
  std::vector<nn::BlobId> inter_ids;
  std::vector<nn::BlobId> psum_ids;
  std::vector<std::size_t> psum_entries;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const nn::DscLayerSpec& spec = layers[i].spec;
    const auto inter_bytes =
        static_cast<std::size_t>(spec.out_rows()) *
        static_cast<std::size_t>(spec.out_cols()) *
        static_cast<std::size_t>(spec.intermediate_channels());
    inter_ids.push_back(
        planner.add_blob(layer_blob_name(i, "intermediate"), inter_bytes, i, i));
    const Tiler tiler(config_, spec);
    const auto entries =
        static_cast<std::size_t>(tiler.max_tile_psum_entries());
    psum_entries.push_back(entries);
    psum_ids.push_back(planner.add_blob(layer_blob_name(i, "psum"),
                                        entries * sizeof(std::int32_t), i, i));
  }
  nn::Arena arena(planner.plan());

  std::int8_t* in0 = arena.slice<std::int8_t>(acts.inputs[0], input.size());
  std::copy(input.data(), input.data() + input.size(), in0);

  core::NetworkRunResult net;
  net.layers.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const nn::DscLayerSpec& spec = layers[i].spec;
    const nn::Shape in_shape =
        i == 0 ? input.shape()
               : nn::Shape{layers[i - 1].spec.out_rows(),
                           layers[i - 1].spec.out_cols(),
                           layers[i - 1].spec.out_channels};
    const nn::BlobId in_id = i == 0 ? acts.inputs[0] : acts.outputs[0][i - 1];
    const nn::Int8Tensor in_view = nn::Int8Tensor::view(
        in_shape, arena.slice<std::int8_t>(in_id, in_shape.volume()));

    const nn::Shape out_shape{spec.out_rows(), spec.out_cols(),
                              spec.out_channels};
    arena.clear(acts.outputs[0][i]);
    nn::Int8Tensor out_view = nn::Int8Tensor::view(
        out_shape,
        arena.slice<std::int8_t>(acts.outputs[0][i], out_shape.volume()));

    const nn::Shape inter_shape{spec.out_rows(), spec.out_cols(),
                                spec.intermediate_channels()};
    arena.clear(inter_ids[i]);
    nn::Int8Tensor inter_view = nn::Int8Tensor::view(
        inter_shape,
        arena.slice<std::int8_t>(inter_ids[i], inter_shape.volume()));

    std::int32_t* psum =
        arena.slice<std::int32_t>(psum_ids[i], psum_entries[i]);

    SerializedLayerResult r = run_layer_into(layers[i], in_view, out_view,
                                             inter_view, psum,
                                             psum_entries[i]);
    r.common.output = out_view;  // deep copy: results outlive the arena
    net.layers.push_back(std::move(r.common));
  }
  net.output = net.layers.back().output;
  net.peak_arena_bytes = arena.plan().peak_bytes;
  return net;
}

SerializedLayerResult SerializedDscAccelerator::run_layer(
    const nn::QuantDscLayer& layer, const nn::Int8Tensor& input) {
  const nn::DscLayerSpec& spec = layer.spec;
  nn::Int8Tensor output(
      nn::Shape{spec.out_rows(), spec.out_cols(), spec.out_channels});
  nn::Int8Tensor intermediate(nn::Shape{spec.out_rows(), spec.out_cols(),
                                        spec.intermediate_channels()});
  const Tiler tiler(config_, spec);
  std::vector<std::int32_t> psum_store(
      static_cast<std::size_t>(tiler.max_tile_psum_entries()));
  SerializedLayerResult result =
      run_layer_into(layer, input, output, intermediate, psum_store.data(),
                     psum_store.size());
  result.common.output = std::move(output);
  return result;
}

SerializedLayerResult SerializedDscAccelerator::run_layer_into(
    const nn::QuantDscLayer& layer, const nn::Int8Tensor& input,
    nn::Int8Tensor& output, nn::Int8Tensor& intermediate, std::int32_t* psum,
    std::size_t psum_capacity) {
  const nn::DscLayerSpec& spec = layer.spec;
  EDEA_REQUIRE(input.rank() == 3 && input.dim(0) == spec.in_rows &&
                   input.dim(1) == spec.in_cols &&
                   input.dim(2) == spec.in_channels,
               "layer input shape mismatch");
  // Same mapping preconditions as the EDEA backend: the engines are wired
  // for the configured kernel extent, and a mismatched layer must fail
  // loudly here - indexing a 3x3 weight tensor with a 5x5 kernel would
  // read out of bounds, not simulate a different design.
  EDEA_REQUIRE(spec.kernel == config_.kernel,
               "layer kernel " + std::to_string(spec.kernel) +
                   " does not match the engine's " +
                   std::to_string(config_.kernel) + "x" +
                   std::to_string(config_.kernel) + " datapath");
  EDEA_REQUIRE(spec.stride == 1 || spec.stride == 2,
               "the DWC engine supports strides 1 and 2");

  Tiler tiler(config_, spec);
  dwc_.reset_activity();
  pwc_.reset_activity();
  nonconv_.reset_counters();

  const int N = spec.out_rows();
  const int M = spec.out_cols();
  const int K = spec.out_channels;
  // `output` receives the ofmap; `intermediate` is the externally-stored
  // DWC result (the round-trip EDEA removes). Both may be arena views.
  EDEA_REQUIRE(output.shape() == (nn::Shape{N, M, K}),
               "layer output shape mismatch: got " +
                   output.shape().to_string());
  EDEA_REQUIRE(
      intermediate.shape() == (nn::Shape{N, M, spec.intermediate_channels()}),
      "intermediate map shape mismatch: got " +
          intermediate.shape().to_string());
  EDEA_REQUIRE(psum != nullptr, "psum scratch must be provided");

  SerializedLayerResult result;
  result.common.spec = spec;
  result.common.dwc_input_zero_fraction = input.zero_fraction();

  const int image_rows = input.dim(0);
  const int image_cols = input.dim(1);
  const int mult = spec.depth_multiplier;

  // ---- Phase 1: depthwise convolution over the whole layer. ----
  for (const BufferTile& tile : tiler.tiles()) {
    for (const ChannelSlice& slice : tiler.slices()) {
      // Ifmap + weight load (counted identically to EDEA's pass loads):
      // only the *distinct* input channels behind the slice's intermediate
      // channels are fetched when the depth multiplier folds lanes.
      const int in_count =
          (slice.channel0 + slice.channels - 1) / mult -
          slice.channel0 / mult + 1;
      result.common.external.record_read(
          TrafficClass::kActivation,
          tile.valid_input_elements(image_rows, image_cols) * in_count);
      const auto w_elems =
          std::int64_t{1} * config_.kernel * config_.kernel * slice.channels;
      result.common.external.record_read(TrafficClass::kWeight, w_elems);
      result.common.external.record_read(TrafficClass::kParameter,
                                         std::int64_t{2} * slice.channels);

      std::vector<std::int8_t> w(static_cast<std::size_t>(w_elems));
      for (int i = 0; i < config_.kernel; ++i) {
        for (int j = 0; j < config_.kernel; ++j) {
          for (int ch = 0; ch < slice.channels; ++ch) {
            w[static_cast<std::size_t>(
                (i * config_.kernel + j) * slice.channels + ch)] =
                layer.dwc_weights(i, j, slice.channel0 + ch);
          }
        }
      }
      dwc_.load_weights(w, slice.channels);

      result.dwc_phase_cycles += config_.init_cycles;
      const int steps_r = (tile.out_rows + config_.tn - 1) / config_.tn;
      const int steps_c = (tile.out_cols + config_.tm - 1) / config_.tm;
      std::vector<std::int8_t> tile_int8(
          static_cast<std::size_t>(config_.tn * config_.tm * slice.channels));
      std::vector<nn::NonConvChannelParams> params;
      for (int ch = 0; ch < slice.channels; ++ch) {
        params.push_back(layer.nonconv1.channels[static_cast<std::size_t>(
            slice.channel0 + ch)]);
      }

      for (int sy = 0; sy < steps_r; ++sy) {
        for (int sx = 0; sx < steps_c; ++sx) {
          const int out_r0 = tile.out_row0 + sy * config_.tn;
          const int out_c0 = tile.out_col0 + sx * config_.tm;

          core::DwcWindow window;
          window.extent =
              config_.dwc_window_extent(spec.stride, spec.dilation);
          window.channels = slice.channels;
          window.values.assign(static_cast<std::size_t>(
                                   window.extent * window.extent *
                                   window.channels),
                               0);
          const int gr0 = out_r0 * spec.stride - spec.padding;
          const int gc0 = out_c0 * spec.stride - spec.padding;
          for (int r = 0; r < window.extent; ++r) {
            for (int c = 0; c < window.extent; ++c) {
              const int gr = gr0 + r;
              const int gc = gc0 + c;
              if (gr < 0 || gr >= image_rows || gc < 0 || gc >= image_cols) {
                continue;
              }
              for (int ch = 0; ch < window.channels; ++ch) {
                // Lane ch carries intermediate channel slice.channel0 + ch,
                // whose data is input channel (slice.channel0 + ch) / mult.
                window.values[static_cast<std::size_t>(
                    (r * window.extent + c) * window.channels + ch)] =
                    input(gr, gc, (slice.channel0 + ch) / mult);
              }
            }
          }

          const core::DwcStepOutput out =
              dwc_.step(window, spec.stride, spec.dilation,
                        spec.depth_multiplier);
          result.dwc_phase_cycles += 1;
          result.common.timing.dwc_active_cycles += 1;

          nonconv_.set_writeback_mode(false);
          nonconv_.apply_block(out.acc, params, slice.channels, tile_int8);

          // Round-trip: write the valid outputs to external memory.
          for (int r = 0; r < out.rows; ++r) {
            const int gr = out_r0 + r;
            if (gr >= tile.out_row0 + tile.out_rows || gr >= N) continue;
            for (int c = 0; c < out.cols; ++c) {
              const int gc = out_c0 + c;
              if (gc >= tile.out_col0 + tile.out_cols || gc >= M) continue;
              for (int ch = 0; ch < slice.channels; ++ch) {
                intermediate(gr, gc, slice.channel0 + ch) =
                    tile_int8[static_cast<std::size_t>(
                        (r * out.cols + c) * slice.channels + ch)];
                ++result.intermediate_external_writes;
              }
            }
          }
        }
      }
    }
  }
  result.common.external.record_write(TrafficClass::kActivation,
                                      result.intermediate_external_writes);
  result.common.pwc_input_zero_fraction = intermediate.zero_fraction();

  // ---- Phase 2: pointwise convolution, reading the intermediate back. ----
  for (const BufferTile& tile : tiler.tiles()) {
    const auto tile_entries =
        static_cast<std::size_t>(tile.out_rows) *
        static_cast<std::size_t>(tile.out_cols) * static_cast<std::size_t>(K);
    EDEA_ASSERT(tile_entries <= psum_capacity,
                "psum scratch smaller than the tiler's largest tile");
    std::fill(psum, psum + tile_entries, std::int32_t{0});

    for (const ChannelSlice& slice : tiler.slices()) {
      result.pwc_phase_cycles += config_.init_cycles;
      result.common.external.record_read(
          TrafficClass::kWeight, std::int64_t{K} * slice.channels);

      const int steps_r = (tile.out_rows + config_.tn - 1) / config_.tn;
      const int steps_c = (tile.out_cols + config_.tm - 1) / config_.tm;
      for (int sy = 0; sy < steps_r; ++sy) {
        for (int sx = 0; sx < steps_c; ++sx) {
          const int out_r0 = tile.out_row0 + sy * config_.tn;
          const int out_c0 = tile.out_col0 + sx * config_.tm;

          // Fetch the step's intermediate tile once (held in registers
          // across kernel groups), counting the external reads.
          std::vector<std::int8_t> acts(static_cast<std::size_t>(
              config_.tn * config_.tm * slice.channels));
          for (int r = 0; r < config_.tn; ++r) {
            for (int c = 0; c < config_.tm; ++c) {
              const int gr = out_r0 + r;
              const int gc = out_c0 + c;
              for (int ch = 0; ch < slice.channels; ++ch) {
                std::int8_t v = 0;
                if (gr < N && gc < M) {
                  v = intermediate(gr, gc, slice.channel0 + ch);
                  ++result.intermediate_external_reads;
                }
                acts[static_cast<std::size_t>(
                    (r * config_.tm + c) * slice.channels + ch)] = v;
              }
            }
          }

          for (const KernelGroup& group : tiler.kernel_groups()) {
            core::PwcStepInput pin;
            pin.rows = config_.tn;
            pin.cols = config_.tm;
            pin.channels = slice.channels;
            pin.kernels = group.kernels;
            pin.activations = acts;
            pin.weights.resize(
                static_cast<std::size_t>(group.kernels * slice.channels));
            for (int kk = 0; kk < group.kernels; ++kk) {
              for (int ch = 0; ch < slice.channels; ++ch) {
                pin.weights[static_cast<std::size_t>(kk * slice.channels +
                                                     ch)] =
                    layer.pwc_weights(group.kernel0 + kk,
                                      slice.channel0 + ch);
              }
            }
            const core::PwcStepOutput pout =
                pwc_.step(pin, spec.depth_multiplier);
            result.pwc_phase_cycles += 1;
            result.common.timing.pwc_active_cycles += 1;

            for (int r = 0; r < pout.rows; ++r) {
              const int tr = sy * config_.tn + r;
              if (tr >= tile.out_rows) continue;
              for (int c = 0; c < pout.cols; ++c) {
                const int tc = sx * config_.tm + c;
                if (tc >= tile.out_cols) continue;
                for (int kk = 0; kk < pout.kernels; ++kk) {
                  psum[static_cast<std::size_t>(
                      (tr * tile.out_cols + tc) * K + group.kernel0 + kk)] +=
                      pout.at(r, c, kk);
                }
              }
            }
          }
        }
      }
    }

    // Write-back through the Non-Conv array (per-K parameters).
    nonconv_.set_writeback_mode(true);
    result.common.external.record_read(TrafficClass::kParameter,
                                       std::int64_t{2} * K);
    std::vector<std::int8_t> out_row(static_cast<std::size_t>(K));
    std::vector<std::int32_t> acc_row(static_cast<std::size_t>(K));
    for (int r = 0; r < tile.out_rows; ++r) {
      for (int c = 0; c < tile.out_cols; ++c) {
        for (int k = 0; k < K; ++k) {
          acc_row[static_cast<std::size_t>(k)] = psum[static_cast<std::size_t>(
              (r * tile.out_cols + c) * K + k)];
        }
        nonconv_.apply_block(acc_row, layer.nonconv2.channels, K, out_row);
        for (int k = 0; k < K; ++k) {
          output(tile.out_row0 + r, tile.out_col0 + c, k) =
              out_row[static_cast<std::size_t>(k)];
        }
        result.common.external.record_write(TrafficClass::kActivation, K);
      }
    }
  }
  result.common.external.record_read(TrafficClass::kActivation,
                                     result.intermediate_external_reads);

  result.common.timing.total_cycles =
      result.dwc_phase_cycles + result.pwc_phase_cycles;
  result.common.timing.init_cycles = 0;  // split across the two phases
  result.common.timing.compute_cycles = result.common.timing.total_cycles;
  result.common.dwc_activity = dwc_.activity();
  result.common.pwc_activity = pwc_.activity();
  result.common.nonconv_transfer_ops = nonconv_.transfer_ops();
  result.common.nonconv_writeback_ops = nonconv_.writeback_ops();
  return result;
}

}  // namespace edea::baseline
