// serialized_accelerator.hpp - the comparison architecture EDEA improves on.
//
// Two baseline behaviours from the paper's Sec. I/II narrative:
//   1. no direct transfer: the DWC output round-trips through external
//      memory (write N*M*D, read N*M*D back) - the Fig. 3 "baseline";
//   2. no parallel engines: DWC and PWC phases execute serially per
//      (tile, slice) pass, each paying its own initiation - the [6]-style
//      "separate engine without parallel operation".
//
// The arithmetic is identical to EDEA (same engines, same Non-Conv math),
// so outputs remain bit-exact; only traffic and latency differ. That makes
// the streaming/latency ablation a controlled experiment.
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/ext_memory.hpp"
#include "core/backend.hpp"
#include "core/config.hpp"
#include "core/dwc_engine.hpp"
#include "core/nonconv_unit.hpp"
#include "core/pwc_engine.hpp"
#include "core/run_result.hpp"
#include "core/tiler.hpp"
#include "nn/layers.hpp"

namespace edea::baseline {

/// Extra measurements the serialized baseline produces on top of the
/// common LayerRunResult.
struct SerializedLayerResult {
  core::LayerRunResult common;
  std::int64_t dwc_phase_cycles = 0;
  std::int64_t pwc_phase_cycles = 0;
  std::int64_t intermediate_external_writes = 0;  ///< N*M*(D*mult)
  std::int64_t intermediate_external_reads = 0;   ///< N*M*(D*mult)
};

/// The "serialized" entry of the backend registry (core/backend.hpp):
/// a full-network accelerator model of the comparison architecture.
/// run_layer remains available for single-layer studies that want the
/// phase-split extras of SerializedLayerResult.
class SerializedDscAccelerator final : public core::AcceleratorBackend {
 public:
  explicit SerializedDscAccelerator(
      core::EdeaConfig config = core::EdeaConfig::paper());

  [[nodiscard]] SerializedLayerResult run_layer(
      const nn::QuantDscLayer& layer, const nn::Int8Tensor& input);

  /// Runs a stack of DSC layers back to back, chaining outputs - the
  /// promoted full-network entry point sweeps/DSE/service consume. Output
  /// tensors are bit-exact with the "edea" backend (shared arithmetic);
  /// cycles and external traffic differ as the paper predicts. The whole
  /// run is planned through nn::MemoryPlanner: the activation chain, each
  /// layer's externally round-tripped intermediate map, and the per-tile
  /// psum scratch all live at offsets of one arena, and the plan's peak
  /// lands in NetworkRunResult::peak_arena_bytes.
  [[nodiscard]] core::NetworkRunResult run_network(
      const std::vector<nn::QuantDscLayer>& layers,
      const nn::Int8Tensor& input) override;

  /// Accepted for backend-interface parity and validated (>= 1), but the
  /// serialized baseline always executes its tiles serially: its two
  /// whole-layer phases share the externally-stored intermediate map, so
  /// there is no host-parallel implementation. Results are trivially
  /// bit-identical at every accepted width, which is all the backend
  /// contract requires.
  void set_tile_parallelism(int parallelism) override;
  [[nodiscard]] int tile_parallelism() const noexcept override {
    return tile_parallelism_;
  }

  /// Pins both engines' kernel selection (KernelDispatch A/B lever);
  /// results and counters are bit-identical either way.
  void set_kernel_policy(core::KernelPolicy policy) override {
    dwc_.set_kernel_policy(policy);
    pwc_.set_kernel_policy(policy);
  }

  [[nodiscard]] const core::EdeaConfig& config() const noexcept override {
    return config_;
  }

  [[nodiscard]] std::string_view backend_id() const noexcept override {
    return "serialized";
  }

 private:
  /// run_layer minus buffer ownership: executes the layer writing the
  /// ofmap into `output` and the round-tripped DWC result into
  /// `intermediate` (both shape-checked; either may be an arena-backed
  /// view), accumulating partial sums in `psum` (capacity
  /// `psum_capacity` entries, >= the tiler's max tile). The returned
  /// result carries every measurement but an empty output tensor.
  [[nodiscard]] SerializedLayerResult run_layer_into(
      const nn::QuantDscLayer& layer, const nn::Int8Tensor& input,
      nn::Int8Tensor& output, nn::Int8Tensor& intermediate,
      std::int32_t* psum, std::size_t psum_capacity);

  core::EdeaConfig config_;
  core::DwcEngine dwc_;
  core::PwcEngine pwc_;
  core::NonConvUnitArray nonconv_;
  int tile_parallelism_ = 1;
};

/// Analytic utilization model of a *unified* convolution engine ([2]-[4]):
/// one PE array sized for the PWC dataflow executes both convolution types.
/// During DWC phases only the lanes matching the depthwise pattern
/// contribute, so average utilization drops - the imbalance EDEA's dual
/// engines remove.
struct UnifiedEngineModel {
  int array_macs = 512;      ///< PE array size (PWC-shaped)
  int dwc_usable_macs = 288; ///< lanes a depthwise pass can keep busy

  /// Average lane utilization over one DSC layer (cycle-weighted).
  [[nodiscard]] double layer_utilization(const nn::DscLayerSpec& spec) const {
    const double dwc_cycles =
        static_cast<double>(spec.dwc_macs()) / dwc_usable_macs;
    const double pwc_cycles =
        static_cast<double>(spec.pwc_macs()) / array_macs;
    const double useful =
        static_cast<double>(spec.dwc_macs() + spec.pwc_macs());
    const double offered = (dwc_cycles + pwc_cycles) * array_macs;
    return offered <= 0.0 ? 0.0 : useful / offered;
  }
};

}  // namespace edea::baseline
