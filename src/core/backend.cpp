#include "core/backend.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>
#include <utility>

#include "baseline/serialized_accelerator.hpp"
#include "core/accelerator.hpp"
#include "util/check.hpp"

namespace edea::core {

namespace {

struct Registry {
  std::mutex mutex;
  /// std::map keeps ids sorted, so backend_ids() needs no extra sort.
  std::map<std::string, BackendFactory> factories;
};

/// The process-wide registry, seeded with the two in-tree backends on
/// first use. Seeding here (not via static registrar objects) means a
/// static-library link can never silently drop a backend, and there is no
/// static-initialization-order dependency between translation units.
Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    reg->factories.emplace(
        std::string(kDefaultBackendId),
        [](const EdeaConfig& config) -> std::unique_ptr<AcceleratorBackend> {
          return std::make_unique<EdeaAccelerator>(config);
        });
    reg->factories.emplace(
        "serialized",
        [](const EdeaConfig& config) -> std::unique_ptr<AcceleratorBackend> {
          return std::make_unique<baseline::SerializedDscAccelerator>(config);
        });
    return reg;
  }();
  return *r;
}

}  // namespace

std::vector<NetworkRunResult> AcceleratorBackend::run_network_batch(
    const std::vector<nn::QuantDscLayer>& layers, const nn::Int8Tensor& input,
    int batch) {
  EDEA_REQUIRE(batch >= 1, "batch must be >= 1");
  std::vector<NetworkRunResult> results;
  results.reserve(static_cast<std::size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    results.push_back(run_network(layers, input));
  }
  return results;
}

bool backend_known(const std::string& id) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.factories.find(id) != r.factories.end();
}

std::vector<std::string> backend_ids() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> ids;
  ids.reserve(r.factories.size());
  for (const auto& [id, factory] : r.factories) ids.push_back(id);
  return ids;
}

std::string known_backends_string() {
  std::string out;
  for (const std::string& id : backend_ids()) {
    if (!out.empty()) out += ", ";
    out += id;
  }
  return out;
}

std::unique_ptr<AcceleratorBackend> make_backend(const std::string& id,
                                                 const EdeaConfig& config) {
  BackendFactory factory;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.factories.find(id);
    if (it != r.factories.end()) factory = it->second;
  }
  EDEA_REQUIRE(factory != nullptr, "unknown backend '" + id + "' (known: " +
                                       known_backends_string() + ")");
  std::unique_ptr<AcceleratorBackend> backend = factory(config);
  EDEA_ASSERT(backend != nullptr,
              "backend factory for '" + id + "' returned null");
  return backend;
}

bool register_backend(const std::string& id, BackendFactory factory) {
  EDEA_REQUIRE(!id.empty(), "backend id must be non-empty");
  EDEA_REQUIRE(std::none_of(id.begin(), id.end(),
                            [](unsigned char c) { return std::isspace(c); }),
               "backend id '" + id +
                   "' must not contain whitespace (ids travel through the "
                   "key=value line protocol)");
  EDEA_REQUIRE(factory != nullptr, "backend factory must be callable");
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.factories.insert_or_assign(id, std::move(factory)).second;
}

}  // namespace edea::core
