// accelerator.hpp - the cycle-accurate EDEA accelerator model (Fig. 4).
//
// Composition:
//   - five on-chip SRAM buffers (DWC ifmap, DWC weight, offline, PWC
//     weight, intermediate) plus the PWC partial-sum accumulator,
//   - the 288-MAC DWC engine and 512-MAC PWC engine,
//   - the 8-unit Non-Conv array between them (and on the write-back path),
//   - a tiler implementing the La dataflow with 8x8-output buffer tiles.
//
// Contract, enforced by tests:
//   1. bit-exactness: run_layer output == nn::QuantDscLayer::forward,
//   2. cycle-exactness: measured cycles == TimingModel (Eq. 1/2),
//   3. resource-exactness: no buffer access beyond modeled capacity.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "arch/ext_memory.hpp"
#include "arch/sram.hpp"
#include "core/config.hpp"
#include "core/dwc_engine.hpp"
#include "core/nonconv_unit.hpp"
#include "core/pwc_engine.hpp"
#include "core/run_result.hpp"
#include "core/tiler.hpp"
#include "core/timing.hpp"
#include "nn/layers.hpp"
#include "nn/mobilenet.hpp"

namespace edea::core {

class EdeaAccelerator {
 public:
  explicit EdeaAccelerator(EdeaConfig config = EdeaConfig::paper());

  /// Runs one quantized DSC layer. `input` is the int8 ifmap [R][C][D].
  [[nodiscard]] LayerRunResult run_layer(const nn::QuantDscLayer& layer,
                                         const nn::Int8Tensor& input);

  /// Runs a stack of DSC layers back to back (e.g. all of MobileNetV1).
  [[nodiscard]] NetworkRunResult run_network(
      const std::vector<nn::QuantDscLayer>& layers,
      const nn::Int8Tensor& input);

  /// Attaches a pipeline trace sink; the next run_layer records its first
  /// pass (Fig. 7 diagram). Pass nullptr to detach.
  void set_trace(PipelineTrace* trace) noexcept { trace_ = trace; }

  [[nodiscard]] const EdeaConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DwcEngine& dwc_engine() const noexcept { return dwc_; }
  [[nodiscard]] const PwcEngine& pwc_engine() const noexcept { return pwc_; }

 private:
  /// Executes one (buffer tile, channel slice) pass; returns cycles spent.
  std::int64_t run_pass(const nn::QuantDscLayer& layer,
                        const nn::Int8Tensor& input, const BufferTile& tile,
                        const ChannelSlice& slice, bool first_slice,
                        const std::vector<KernelGroup>& groups,
                        LayerRunResult& result);

  /// Write-back: accumulator -> Non-Conv (per-K params) -> output tensor.
  void write_back_tile(const nn::QuantDscLayer& layer, const BufferTile& tile,
                       LayerRunResult& result);

  /// Loads the valid part of the tile's input region into the ifmap buffer.
  void load_ifmap_tile(const nn::Int8Tensor& input, const BufferTile& tile,
                       const ChannelSlice& slice, LayerRunResult& result);

  /// Reads one DWC window from the ifmap buffer (zeros outside the image).
  DwcWindow fetch_window(const BufferTile& tile, const ChannelSlice& slice,
                         int image_rows, int image_cols, int out_row0,
                         int out_col0, int stride, int padding,
                         LayerRunResult& result);

  EdeaConfig config_;
  DwcEngine dwc_;
  PwcEngine pwc_;
  NonConvUnitArray nonconv_;

  arch::SramBuffer ifmap_buffer_;
  arch::SramBuffer dwc_weight_buffer_;
  arch::SramBuffer offline_buffer_;
  arch::SramBuffer intermediate_buffer_;
  arch::SramBuffer pwc_weight_buffer_;
  arch::SramBuffer accumulator_;

  PipelineTrace* trace_ = nullptr;

  // Per-layer PWC-input sparsity tally (reset by run_layer).
  std::int64_t pwc_input_zeros_ = 0;
  std::int64_t pwc_input_total_ = 0;
};

}  // namespace edea::core
