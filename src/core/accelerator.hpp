// accelerator.hpp - the cycle-accurate EDEA accelerator model (Fig. 4).
//
// Composition:
//   - five on-chip SRAM buffers (DWC ifmap, DWC weight, offline, PWC
//     weight, intermediate) plus the PWC partial-sum accumulator,
//   - the 288-MAC DWC engine and 512-MAC PWC engine,
//   - the 8-unit Non-Conv array between them (and on the write-back path),
//   - a tiler implementing the La dataflow with 8x8-output buffer tiles.
//
// Contract, enforced by tests:
//   1. bit-exactness: run_layer output == nn::QuantDscLayer::forward,
//   2. cycle-exactness: measured cycles == TimingModel (Eq. 1/2),
//   3. resource-exactness: no buffer access beyond modeled capacity.
//
// Tile parallelism: the buffer tiles of one layer are independent (each
// owns a disjoint output region and reads only shared immutable inputs),
// so run_layer can execute them on several host threads. Every worker
// carries a private full complement of engines, SRAM buffers, and
// counters (detail::TileWorker), processes a contiguous chunk of the tile
// list, and its measurement partial (core::LayerPartial) is merged back
// in tile order - results are bit-identical to the serial reference at
// every parallelism (tests/tile_parallel_test.cpp).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "arch/ext_memory.hpp"
#include "arch/sram.hpp"
#include "core/backend.hpp"
#include "core/config.hpp"
#include "core/dwc_engine.hpp"
#include "core/nonconv_unit.hpp"
#include "core/pwc_engine.hpp"
#include "core/run_result.hpp"
#include "core/tiler.hpp"
#include "core/timing.hpp"
#include "nn/layers.hpp"
#include "nn/mobilenet.hpp"

namespace edea::core {

namespace detail {
class TileWorker;  // per-worker engine/buffer/counter state (accelerator.cpp)
}

/// The "edea" entry of the backend registry (core/backend.hpp).
class EdeaAccelerator final : public AcceleratorBackend {
 public:
  explicit EdeaAccelerator(EdeaConfig config = EdeaConfig::paper());
  ~EdeaAccelerator() override;

  EdeaAccelerator(const EdeaAccelerator&) = delete;
  EdeaAccelerator& operator=(const EdeaAccelerator&) = delete;

  /// Runs one quantized DSC layer. `input` is the int8 ifmap [R][C][D].
  [[nodiscard]] LayerRunResult run_layer(const nn::QuantDscLayer& layer,
                                         const nn::Int8Tensor& input);

  /// Runs a stack of DSC layers back to back (e.g. all of MobileNetV1).
  /// Equivalent to run_network_batch(layers, input, 1).front(): the single
  /// image runs through a planned activation arena (nn::MemoryPlanner)
  /// whose peak lands in NetworkRunResult::peak_arena_bytes.
  [[nodiscard]] NetworkRunResult run_network(
      const std::vector<nn::QuantDscLayer>& layers,
      const nn::Int8Tensor& input) override;

  /// Planned batched execution: all `batch` images share ONE activation
  /// arena plan and worker set, executing layer-major (every image runs
  /// layer i before any image runs layer i+1) so consecutive layers'
  /// activations ping-pong inside the arena. Per-image results are
  /// bit-identical to `batch` standalone run_network calls; only
  /// peak_arena_bytes reflects the batched plan.
  [[nodiscard]] std::vector<NetworkRunResult> run_network_batch(
      const std::vector<nn::QuantDscLayer>& layers,
      const nn::Int8Tensor& input, int batch) override;

  /// Attaches a pipeline trace sink; the next run_layer records its first
  /// pass (Fig. 7 diagram). Pass nullptr to detach. While a trace is
  /// attached, layers run on the serial reference path regardless of
  /// tile_parallelism - "the first pass" is only well defined in tile
  /// order on one thread.
  void set_trace(PipelineTrace* trace) noexcept { trace_ = trace; }

  /// Sets the tile-level parallelism of run_layer: 1 (the default) is the
  /// strictly serial reference path; p > 1 splits each layer's buffer
  /// tiles over at most p workers sharing util::ThreadPool::shared() (at
  /// most p-1 helper tasks are queued; the calling thread is worker 0).
  /// Results are bit-identical for every p. Zero and negative values are
  /// a PreconditionError: there is no "auto" policy at this level - tile
  /// workers compete with sweep-level jobs for the same pool, so callers
  /// must state the per-layer width explicitly.
  void set_tile_parallelism(int parallelism) override;
  [[nodiscard]] int tile_parallelism() const noexcept override {
    return tile_parallelism_;
  }

  /// Pins every worker's engines (current and future) to `policy`.
  /// Results and counters are bit-identical either way; this is the
  /// specialized-vs-generic A/B lever (tests/differential_test.cpp).
  void set_kernel_policy(KernelPolicy policy) override;

  [[nodiscard]] const EdeaConfig& config() const noexcept override {
    return config_;
  }

  [[nodiscard]] std::string_view backend_id() const noexcept override {
    return kDefaultBackendId;  // "edea"
  }

  /// Structural views of the engines (worker 0's instances; all workers
  /// are identically configured).
  [[nodiscard]] const DwcEngine& dwc_engine() const noexcept;
  [[nodiscard]] const PwcEngine& pwc_engine() const noexcept;

 private:
  /// Returns worker `index`, growing the pool as needed. Never call from
  /// inside the tile-parallel region: workers are materialized up front on
  /// the calling thread, then only indexed concurrently.
  detail::TileWorker& worker(std::size_t index);

  /// run_layer minus output allocation: executes the layer writing into
  /// `output` (shape must match the layer's ofmap; may be an arena-backed
  /// view). The returned result carries every measurement but an empty
  /// output tensor - callers own the output placement policy.
  [[nodiscard]] LayerRunResult run_layer_into(const nn::QuantDscLayer& layer,
                                              const nn::Int8Tensor& input,
                                              nn::Int8Tensor& output);

  EdeaConfig config_;
  int tile_parallelism_ = 1;
  KernelPolicy kernel_policy_ = KernelDispatch::default_policy();
  std::vector<std::unique_ptr<detail::TileWorker>> workers_;
  PipelineTrace* trace_ = nullptr;
};

}  // namespace edea::core
