// pwc_engine.hpp - the pointwise-convolution engine of Fig. 5b.
//
// Structure (paper configuration): 128 PWC PEs of 4 multipliers each
// (512 MACs). Two PEs feed one 8-input adder tree, so the engine computes
// 64 output dot products per cycle: Tn x Tm = 4 spatial positions x
// Tk = 16 kernels, each a dot product across the Td = 8 channels of the
// current slice. Partial sums across slices are accumulated by the caller
// in the accumulator buffer (the engine is combinational plus a pipeline
// register, like the silicon).
//
// The dot-product inner loop is resolved through core::KernelDispatch:
// 1x1 PWC runs a hand-specialized contiguous dot-product kernel, with the
// generic reference path as fallback and kForceGeneric as the A/B pin.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/counters.hpp"
#include "arch/pe.hpp"
#include "core/config.hpp"
#include "core/kernel_dispatch.hpp"

namespace edea::core {

/// One PWC engine step's operands: an intermediate tile [Tn][Tm][channels]
/// and a kernel-group weight block [kernels][channels].
struct PwcStepInput {
  int rows = 0;
  int cols = 0;
  int channels = 0;  ///< active channels this slice (<= Td)
  int kernels = 0;   ///< active kernels this group (<= Tk)
  std::vector<std::int8_t> activations;  ///< [row][col][channel]
  std::vector<std::int8_t> weights;      ///< [kernel][channel]

  [[nodiscard]] std::int8_t act(int r, int c, int ch) const noexcept {
    return activations[static_cast<std::size_t>((r * cols + c) * channels +
                                                ch)];
  }
  [[nodiscard]] std::int8_t wt(int kk, int ch) const noexcept {
    return weights[static_cast<std::size_t>(kk * channels + ch)];
  }
};

/// Per-step partial sums: [row][col][kernel].
struct PwcStepOutput {
  int rows = 0;
  int cols = 0;
  int kernels = 0;
  std::vector<std::int32_t> psum;

  [[nodiscard]] std::int32_t at(int r, int c, int kk) const noexcept {
    return psum[static_cast<std::size_t>((r * cols + c) * kernels + kk)];
  }
};

class PwcEngine {
 public:
  explicit PwcEngine(const EdeaConfig& config);

  /// One engine cycle: 64 dot products over the slice channels.
  /// `depth_multiplier` is a dispatch-key component only (the arithmetic
  /// is multiplier-invariant).
  [[nodiscard]] PwcStepOutput step(const PwcStepInput& input,
                                   int depth_multiplier = 1);

  /// Reentrant step: activity tallies into the caller-supplied sink and
  /// the kernel lookup bypasses the engine-local cache. Safe to call
  /// concurrently from multiple threads on one engine.
  [[nodiscard]] PwcStepOutput step(const PwcStepInput& input,
                                   int depth_multiplier,
                                   arch::MacActivity& activity) const;

  /// One idle cycle (pipeline bubble during initiation).
  void idle_cycle();

  /// Pins (or unpins) the generic reference kernels; resets the cached
  /// dispatch resolution. Default is KernelDispatch::default_policy().
  void set_kernel_policy(KernelPolicy policy) noexcept;
  [[nodiscard]] KernelPolicy kernel_policy() const noexcept { return policy_; }

  [[nodiscard]] const arch::MacActivity& activity() const noexcept {
    return activity_;
  }
  void reset_activity() noexcept { activity_.reset(); }

  /// Structural constants (asserted against the paper in tests).
  [[nodiscard]] int mac_count() const noexcept {
    return config_.pwc_mac_count();
  }
  [[nodiscard]] int pe_count() const noexcept {
    // 4 multipliers per PE (Fig. 5b) -> 128 PEs in the paper configuration.
    return config_.pwc_mac_count() / kMulsPerPe;
  }
  [[nodiscard]] int adder_tree_fan_in() const noexcept {
    return config_.td;
  }
  [[nodiscard]] int adder_tree_depth() const noexcept { return tree_.depth(); }
  [[nodiscard]] int dot_products_per_cycle() const noexcept {
    return config_.tn * config_.tm * config_.tk;
  }

  static constexpr int kMulsPerPe = 4;

 private:
  [[nodiscard]] KernelShapeKey shape_key(int depth_multiplier) const noexcept;
  [[nodiscard]] PwcStepOutput run_step(const PwcStepInput& input,
                                       PwcKernelFn fn,
                                       arch::MacActivity& activity) const;

  EdeaConfig config_;
  arch::MacLane lane_;
  arch::AdderTree tree_;
  arch::MacActivity activity_;
  KernelPolicy policy_ = KernelDispatch::default_policy();
  KernelShapeKey cached_key_;
  PwcKernelFn cached_fn_ = nullptr;  ///< resolved for cached_key_, or null
};

}  // namespace edea::core
