// tiler.hpp - decomposes a DSC layer into the loop nest the accelerator
// executes (Sec. II dataflow, loop order La, specialized to the silicon's
// Tn=Tm=2 / Td=8 / Tk=16 / 8x8-output buffer tiles):
//
//   for each buffer tile (ifmap region producing <= 8x8 outputs)   [Eq. 2]
//     for each Td-channel slice                                    [Eq. 2]
//       pass: 9 initiation cycles, then                            [Eq. 1]
//       for each Tn x Tm spatial step                              [Loop 3]
//         for each Tk kernel group                                 [Loop 5]
//           one cycle
//
// The tiler is pure geometry: it yields coordinate ranges; the accelerator
// moves the data. Keeping it separate makes the Eq. 1/2 equivalence and the
// buffer-capacity proofs unit-testable without running convolutions.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "nn/layers.hpp"

namespace edea::core {

/// One ifmap-buffer tile: an output region and the input region backing it.
struct BufferTile {
  // Output coordinates (rows x cols within the layer ofmap).
  int out_row0 = 0;
  int out_col0 = 0;
  int out_rows = 0;
  int out_cols = 0;

  // Input region (unclipped, in unpadded input coordinates; may extend
  // past the image by the padding amount).
  int in_row0 = 0;  ///< top-left including halo (can be negative)
  int in_col0 = 0;
  int in_rows = 0;  ///< full extent including halo
  int in_cols = 0;

  /// Spatial engine steps this tile requires (ceil over Tn x Tm).
  [[nodiscard]] std::int64_t spatial_steps(const EdeaConfig& cfg) const {
    return ((out_rows + cfg.tn - 1) / cfg.tn) *
           ((out_cols + cfg.tm - 1) / cfg.tm);
  }

  /// Elements of the *valid* (in-image) part of the input region for one
  /// channel - what actually gets fetched from external memory.
  [[nodiscard]] std::int64_t valid_input_elements(int image_rows,
                                                  int image_cols) const;
};

/// One Td-channel slice.
struct ChannelSlice {
  int channel0 = 0;
  int channels = 0;  ///< <= Td
};

/// One Tk kernel group.
struct KernelGroup {
  int kernel0 = 0;
  int kernels = 0;  ///< <= Tk
};

class Tiler {
 public:
  Tiler(const EdeaConfig& config, const nn::DscLayerSpec& spec);

  [[nodiscard]] const std::vector<BufferTile>& tiles() const noexcept {
    return tiles_;
  }
  [[nodiscard]] const std::vector<ChannelSlice>& slices() const noexcept {
    return slices_;
  }
  [[nodiscard]] const std::vector<KernelGroup>& kernel_groups()
      const noexcept {
    return groups_;
  }

  /// Largest input-region byte footprint over all tiles (one slice of Td
  /// channels) - must fit the DWC ifmap buffer; validated in tests.
  [[nodiscard]] std::int64_t max_tile_input_bytes() const;

  /// Largest output-tile partial-sum entry count - must fit the
  /// accumulator buffer.
  [[nodiscard]] std::int64_t max_tile_psum_entries() const;

  /// Deterministic partition of the tile list for tile-parallel execution:
  /// chunk `chunk` of `chunks` covers tiles() indices [first, second).
  /// Chunks are contiguous in tile order and balanced to within one tile,
  /// and the partition is a pure function of (tile count, chunks) - never
  /// of scheduling - so per-chunk measurement partials merge back in tile
  /// order regardless of which thread ran which chunk. Chunks beyond the
  /// tile count come back empty.
  [[nodiscard]] std::pair<std::size_t, std::size_t> tile_chunk(
      int chunks, int chunk) const;

  [[nodiscard]] const nn::DscLayerSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const EdeaConfig& config() const noexcept { return config_; }

 private:
  EdeaConfig config_;
  nn::DscLayerSpec spec_;
  std::vector<BufferTile> tiles_;
  std::vector<ChannelSlice> slices_;
  std::vector<KernelGroup> groups_;
};

}  // namespace edea::core
