#include "core/nonconv_unit.hpp"

#include "util/check.hpp"

namespace edea::core {

void NonConvUnitArray::apply_block(
    std::span<const std::int32_t> acc,
    std::span<const nn::NonConvChannelParams> params, int channels,
    std::span<std::int8_t> out) {
  EDEA_REQUIRE(channels > 0, "channel count must be positive");
  EDEA_REQUIRE(acc.size() == out.size(), "accumulator/output size mismatch");
  EDEA_REQUIRE(acc.size() % static_cast<std::size_t>(channels) == 0,
               "block size must be a whole number of channel groups");
  EDEA_REQUIRE(params.size() >= static_cast<std::size_t>(channels),
               "missing Non-Conv parameters for some channels");

  for (std::size_t i = 0; i < acc.size(); ++i) {
    const auto ch = static_cast<std::size_t>(
        static_cast<std::int64_t>(i) % channels);
    out[i] = params[ch].apply(acc[i]);
  }

  const auto ops = static_cast<std::int64_t>(acc.size());
  if (writeback_) {
    writeback_ops_ += ops;
  } else {
    transfer_ops_ += ops;
  }
}

}  // namespace edea::core
