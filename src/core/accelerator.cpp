#include "core/accelerator.hpp"

#include <algorithm>

#include "nn/arena.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace edea::core {

namespace {

using arch::TrafficClass;

/// 24-bit little-endian packing for the offline buffer: the silicon stores
/// Non-Conv k/b as 24-bit words (Sec. III-C), so the model does too.
void pack24(arch::SramBuffer& buf, std::int64_t byte_addr, std::int32_t v) {
  std::uint8_t bytes[3] = {
      static_cast<std::uint8_t>(v & 0xFF),
      static_cast<std::uint8_t>((v >> 8) & 0xFF),
      static_cast<std::uint8_t>((v >> 16) & 0xFF),
  };
  buf.write(byte_addr, bytes, 3);
}

std::int32_t unpack24(arch::SramBuffer& buf, std::int64_t byte_addr) {
  std::uint8_t bytes[3];
  buf.read(byte_addr, bytes, 3);
  std::int32_t v = static_cast<std::int32_t>(bytes[0]) |
                   (static_cast<std::int32_t>(bytes[1]) << 8) |
                   (static_cast<std::int32_t>(bytes[2]) << 16);
  // Sign-extend from bit 23.
  if ((v & 0x800000) != 0) v |= static_cast<std::int32_t>(0xFF000000u);
  return v;
}

}  // namespace

namespace detail {

/// One tile worker: a full private complement of engines, SRAM buffers,
/// and counters, executing a contiguous chunk of a layer's buffer tiles.
/// Workers model the same silicon executing different tiles; this is
/// sound because tiles share nothing mutable - each owns a disjoint
/// output region, and the layer/input operands are read-only. Everything
/// a worker measures lands in its LayerPartial, merged by the accelerator
/// in tile order once all chunks finish.
class TileWorker {
 public:
  /// Scratch blob ids inside the worker's arena; add order below fixes them.
  enum ScratchBlob : nn::BlobId {
    kIfmap = 0,
    kDwcWeight,
    kOffline,
    kIntermediate,
    kPwcWeight,
    kAccumulator,
  };

  /// All six SRAM models are live for the whole of every layer, so the
  /// planner stacks them; what it buys is ONE contiguous allocation per
  /// worker (64-byte-aligned slices, no per-buffer heap blocks) and the
  /// same planned-offset discipline the activation arena uses.
  static nn::Arena plan_scratch(const EdeaConfig& config) {
    nn::MemoryPlanner planner;
    const auto blob = [&](const char* name, std::int64_t bytes) {
      return planner.add_blob(name, static_cast<std::size_t>(bytes), 0, 0);
    };
    blob("dwc_ifmap", config.dwc_ifmap_buffer_bytes());
    blob("dwc_weight", config.dwc_weight_buffer_bytes());
    blob("offline", config.offline_buffer_bytes());
    blob("intermediate", config.intermediate_buffer_bytes());
    blob("pwc_weight", config.pwc_weight_buffer_bytes());
    blob("accumulator", config.accumulator_buffer_bytes());
    return nn::Arena(planner.plan());
  }

  explicit TileWorker(const EdeaConfig& config)
      : config_(config),
        dwc_(config),
        pwc_(config),
        nonconv_(config),
        scratch_(plan_scratch(config)),
        ifmap_buffer_("dwc_ifmap", scratch_.bytes(kIfmap),
                      config.dwc_ifmap_buffer_bytes()),
        dwc_weight_buffer_("dwc_weight", scratch_.bytes(kDwcWeight),
                           config.dwc_weight_buffer_bytes()),
        offline_buffer_("offline", scratch_.bytes(kOffline),
                        config.offline_buffer_bytes()),
        intermediate_buffer_("intermediate", scratch_.bytes(kIntermediate),
                             config.intermediate_buffer_bytes()),
        pwc_weight_buffer_("pwc_weight", scratch_.bytes(kPwcWeight),
                           config.pwc_weight_buffer_bytes()),
        accumulator_("accumulator", scratch_.bytes(kAccumulator),
                     config.accumulator_buffer_bytes()) {
    config_.validate();
  }

  /// Resets every per-layer tally. Called for each participating worker
  /// before the tile chunks are dispatched.
  void begin_layer() {
    partial_ = LayerPartial{};
    dwc_.reset_activity();
    pwc_.reset_activity();
    nonconv_.reset_counters();
  }

  /// Executes one buffer tile end to end: every channel-slice pass, then
  /// the write-back of the tile's output region. `trace` must be non-null
  /// only for the globally first tile of a serially executed layer.
  void run_tile(const nn::QuantDscLayer& layer, const nn::Int8Tensor& input,
                const BufferTile& tile,
                const std::vector<ChannelSlice>& slices,
                const std::vector<KernelGroup>& groups,
                nn::Int8Tensor& output, PipelineTrace* trace) {
    bool first_slice = true;
    for (const ChannelSlice& slice : slices) {
      // Only the very first pass of the traced tile records (Fig. 7).
      if (trace != nullptr) trace->armed = first_slice;
      run_pass(layer, input, tile, slice, first_slice, groups, trace);
      if (trace != nullptr) trace->armed = false;
      first_slice = false;
    }
    write_back_tile(layer, tile, output);
  }

  /// Folds the engines' activity into the partial and returns it.
  [[nodiscard]] const LayerPartial& finish_layer() {
    partial_.dwc_activity = dwc_.activity();
    partial_.pwc_activity = pwc_.activity();
    partial_.nonconv_transfer_ops = nonconv_.transfer_ops();
    partial_.nonconv_writeback_ops = nonconv_.writeback_ops();
    return partial_;
  }

  [[nodiscard]] const DwcEngine& dwc() const noexcept { return dwc_; }
  [[nodiscard]] const PwcEngine& pwc() const noexcept { return pwc_; }

  /// Pins both engines' kernel selection (KernelDispatch A/B lever).
  void set_kernel_policy(KernelPolicy policy) noexcept {
    dwc_.set_kernel_policy(policy);
    pwc_.set_kernel_policy(policy);
  }

 private:
  /// Loads the valid part of the tile's input region into the ifmap buffer.
  /// Only *distinct* input channels are staged: with depth multiplier m the
  /// slice's intermediate channels [c0, c0+n) all read input channels
  /// [c0/m, (c0+n-1)/m], so that smaller range is what the SRAM holds and
  /// what external activation traffic pays for.
  void load_ifmap_tile(const nn::Int8Tensor& input, const BufferTile& tile,
                       const ChannelSlice& slice, int mult) {
    const int image_rows = input.dim(0);
    const int image_cols = input.dim(1);
    const int in0 = slice.channel0 / mult;
    const int in_count =
        (slice.channel0 + slice.channels - 1) / mult - in0 + 1;
    // The buffer is cleared so halo positions beyond the image read as the
    // zero padding value; only valid elements are fetched (and counted).
    ifmap_buffer_.clear_contents();
    ifmap_buffer_.reset_counters();  // per-pass fills are tallied via partial

    std::int64_t fetched = 0;
    for (int r = 0; r < tile.in_rows; ++r) {
      const int gr = tile.in_row0 + r;
      if (gr < 0 || gr >= image_rows) continue;
      for (int c = 0; c < tile.in_cols; ++c) {
        const int gc = tile.in_col0 + c;
        if (gc < 0 || gc >= image_cols) continue;
        for (int ch = 0; ch < in_count; ++ch) {
          const std::int8_t v = input(gr, gc, in0 + ch);
          const std::int64_t addr =
              (std::int64_t{r} * tile.in_cols + c) * in_count + ch;
          ifmap_buffer_.store<std::int8_t>(addr, v);
          ++fetched;
        }
      }
    }
    partial_.external.record_read(TrafficClass::kActivation, fetched);
    partial_.buffers.dwc_ifmap.record_write(fetched, fetched);
  }

  /// Reads one DWC window from the ifmap buffer (zeros outside the image).
  /// Window lane `ch` carries intermediate channel slice.channel0 + ch,
  /// whose data lives at staged input channel (slice.channel0 + ch) / mult.
  DwcWindow fetch_window(const BufferTile& tile, const ChannelSlice& slice,
                         int image_rows, int image_cols, int out_row0,
                         int out_col0, int stride, int padding, int dilation,
                         int mult) {
    DwcWindow window;
    window.extent = config_.dwc_window_extent(stride, dilation);
    window.channels = slice.channels;
    window.values.assign(
        static_cast<std::size_t>(window.extent * window.extent *
                                 window.channels),
        0);

    const int in0 = slice.channel0 / mult;
    const int in_count =
        (slice.channel0 + slice.channels - 1) / mult - in0 + 1;

    // Window origin in unpadded image coordinates (the first kernel tap).
    const int grow0 = out_row0 * stride - padding;
    const int gcol0 = out_col0 * stride - padding;

    std::int64_t sram_reads = 0;
    for (int r = 0; r < window.extent; ++r) {
      const int gr = grow0 + r;
      for (int c = 0; c < window.extent; ++c) {
        const int gc = gcol0 + c;
        const bool in_image =
            gr >= 0 && gr < image_rows && gc >= 0 && gc < image_cols;
        const int br = gr - tile.in_row0;  // buffer-region coordinates
        const int bc = gc - tile.in_col0;
        const bool in_region = br >= 0 && br < tile.in_rows && bc >= 0 &&
                               bc < tile.in_cols;
        for (int ch = 0; ch < window.channels; ++ch) {
          std::int8_t v = 0;
          if (in_image && in_region) {
            const int src = (slice.channel0 + ch) / mult;
            const std::int64_t addr =
                (std::int64_t{br} * tile.in_cols + bc) * in_count +
                (src - in0);
            v = ifmap_buffer_.load<std::int8_t>(addr);
            ++sram_reads;
          }
          window.values[static_cast<std::size_t>(
              (r * window.extent + c) * window.channels + ch)] = v;
        }
      }
    }
    partial_.buffers.dwc_ifmap.record_read(sram_reads, sram_reads);
    partial_.dataflow.dwc_window_elements +=
        std::int64_t{1} * window.extent * window.extent * window.channels;
    return window;
  }

  /// Executes one (buffer tile, channel slice) pass.
  void run_pass(const nn::QuantDscLayer& layer, const nn::Int8Tensor& input,
                const BufferTile& tile, const ChannelSlice& slice,
                bool first_slice, const std::vector<KernelGroup>& groups,
                PipelineTrace* trace) {
    const nn::DscLayerSpec& spec = layer.spec;
    const int stride = spec.stride;
    const int K = spec.out_channels;
    std::int64_t cycle = 0;

    // ---- initiation (Fig. 7): fills buffers and the pipeline. ----
    if (trace != nullptr) {
      trace->emit(cycle, "DWC Input Ifmap & Weight",
                  "tile(" + std::to_string(tile.out_row0) + "," +
                      std::to_string(tile.out_col0) + ") slice " +
                      std::to_string(slice.channel0 / config_.td));
      trace->emit(cycle, "PWC Input Weight",
                  "slice weights for " + std::to_string(K) + " kernels");
    }

    // Ifmap region for this (tile, slice): distinct input channels only.
    load_ifmap_tile(input, tile, slice, spec.depth_multiplier);

    // DWC kernel slice -> weight buffer -> engine registers.
    {
      std::vector<std::int8_t> w(static_cast<std::size_t>(
          config_.kernel * config_.kernel * slice.channels));
      for (int i = 0; i < config_.kernel; ++i) {
        for (int j = 0; j < config_.kernel; ++j) {
          for (int ch = 0; ch < slice.channels; ++ch) {
            const std::int8_t v =
                layer.dwc_weights(i, j, slice.channel0 + ch);
            const std::int64_t idx =
                (std::int64_t{i} * config_.kernel + j) * slice.channels + ch;
            dwc_weight_buffer_.store<std::int8_t>(idx, v);
            w[static_cast<std::size_t>(idx)] = v;
          }
        }
      }
      const auto elements =
          std::int64_t{1} * config_.kernel * config_.kernel * slice.channels;
      partial_.external.record_read(TrafficClass::kWeight, elements);
      partial_.buffers.dwc_weight.record_write(elements, elements);
      partial_.buffers.dwc_weight.record_read(elements, elements);
      partial_.dataflow.dwc_weight_elements += elements;
      dwc_.load_weights(w, slice.channels);
    }

    // Non-Conv (k, b) pairs for the slice channels -> offline buffer.
    if (trace != nullptr) {
      trace->emit(2, "DWC Input offline Data",
                  std::to_string(slice.channels) + " (k,b) pairs");
    }
    for (int ch = 0; ch < slice.channels; ++ch) {
      const auto& p =
          layer.nonconv1.channels[static_cast<std::size_t>(slice.channel0 +
                                                           ch)];
      pack24(offline_buffer_, std::int64_t{ch} * 6, p.k.raw());
      pack24(offline_buffer_, std::int64_t{ch} * 6 + 3, p.b.raw());
    }
    partial_.external.record_read(TrafficClass::kParameter,
                                  std::int64_t{2} * slice.channels);

    // PWC weights for (slice, all kernels) -> PWC weight buffer.
    for (int k = 0; k < K; ++k) {
      for (int ch = 0; ch < slice.channels; ++ch) {
        pwc_weight_buffer_.store<std::int8_t>(
            std::int64_t{k} * slice.channels + ch,
            layer.pwc_weights(k, slice.channel0 + ch));
      }
    }
    {
      const auto elements = std::int64_t{1} * K * slice.channels;
      partial_.external.record_read(TrafficClass::kWeight, elements);
      partial_.buffers.pwc_weight.record_write(elements, elements);
      partial_.dataflow.pwc_weight_elements += elements;
    }

    cycle += config_.init_cycles;

    // Re-read the slice's Non-Conv parameters once per pass (they sit in
    // unit-local registers during compute, as in the silicon).
    std::vector<nn::NonConvChannelParams> slice_params;
    slice_params.reserve(static_cast<std::size_t>(slice.channels));
    for (int ch = 0; ch < slice.channels; ++ch) {
      const std::int32_t kraw =
          unpack24(offline_buffer_, std::int64_t{ch} * 6);
      const std::int32_t braw =
          unpack24(offline_buffer_, std::int64_t{ch} * 6 + 3);
      slice_params.push_back(nn::NonConvChannelParams{
          arch::Q8_16::from_raw(kraw), arch::Q8_16::from_raw(braw)});
    }

    // ---- steady state: one (spatial step, kernel group) per cycle. ----
    const int image_rows = input.dim(0);
    const int image_cols = input.dim(1);
    const int steps_r = (tile.out_rows + config_.tn - 1) / config_.tn;
    const int steps_c = (tile.out_cols + config_.tm - 1) / config_.tm;

    std::vector<std::int8_t> intermediate(
        static_cast<std::size_t>(config_.tn * config_.tm * slice.channels));
    int step_index = 0;

    for (int sy = 0; sy < steps_r; ++sy) {
      for (int sx = 0; sx < steps_c; ++sx, ++step_index) {
        const int out_r0 = tile.out_row0 + sy * config_.tn;  // global coords
        const int out_c0 = tile.out_col0 + sx * config_.tm;

        // DWC engine fires once for this spatial step.
        const DwcWindow window =
            fetch_window(tile, slice, image_rows, image_cols, out_r0, out_c0,
                         stride, spec.padding, spec.dilation,
                         spec.depth_multiplier);
        const DwcStepOutput dwc_out = dwc_.step(window, stride, spec.dilation,
                                                spec.depth_multiplier);
        partial_.timing.dwc_active_cycles += 1;
        if (trace != nullptr && step_index < 4) {
          trace->emit(cycle, "DWC Engine Process",
                      "step (" + std::to_string(sy) + "," +
                          std::to_string(sx) + ")");
        }

        // Non-Conv transfer: DWC accumulators -> int8 PWC inputs.
        nonconv_.set_writeback_mode(false);
        nonconv_.apply_block(dwc_out.acc, slice_params, slice.channels,
                             intermediate);
        partial_.buffers.offline.record_read(std::int64_t{2} * slice.channels,
                                             std::int64_t{2} * slice.channels);
        if (trace != nullptr && step_index < 4) {
          trace->emit(cycle, "Non-Conv Unit Process",
                      std::to_string(intermediate.size()) + " values");
        }

        // Direct transfer into the (double-buffered) intermediate buffer.
        const std::int64_t half =
            (step_index % 2) * (config_.intermediate_buffer_bytes() / 2);
        for (std::size_t i = 0; i < intermediate.size(); ++i) {
          intermediate_buffer_.store<std::int8_t>(
              half + static_cast<std::int64_t>(i), intermediate[i]);
        }
        {
          const auto n = static_cast<std::int64_t>(intermediate.size());
          partial_.buffers.intermediate.record_write(n, n);
          // PWC-input sparsity statistics (Fig. 11): collected at the point
          // the intermediate tile is produced. Only spatial positions that
          // belong to the real ofmap count (edge tiles compute dummy lanes).
          for (int r = 0; r < dwc_out.rows; ++r) {
            for (int c = 0; c < dwc_out.cols; ++c) {
              if (out_r0 + r >= tile.out_row0 + tile.out_rows ||
                  out_c0 + c >= tile.out_col0 + tile.out_cols) {
                continue;
              }
              for (int ch = 0; ch < slice.channels; ++ch) {
                ++partial_.pwc_input_total;
                if (intermediate[static_cast<std::size_t>(
                        (r * dwc_out.cols + c) * slice.channels + ch)] == 0) {
                  ++partial_.pwc_input_zeros;
                }
              }
            }
          }
        }
        if (trace != nullptr && step_index < 4) {
          trace->emit(cycle, "Write Intermediate Buffer",
                      "half " + std::to_string(step_index % 2));
        }

        // PWC engine drains the kernel groups; one group per cycle.
        for (const KernelGroup& group : groups) {
          PwcStepInput pin;
          pin.rows = config_.tn;
          pin.cols = config_.tm;
          pin.channels = slice.channels;
          pin.kernels = group.kernels;
          pin.activations.resize(
              static_cast<std::size_t>(pin.rows * pin.cols * pin.channels));
          for (std::size_t i = 0; i < pin.activations.size(); ++i) {
            pin.activations[i] = intermediate_buffer_.load<std::int8_t>(
                half + static_cast<std::int64_t>(i));
          }
          {
            const auto n = static_cast<std::int64_t>(pin.activations.size());
            partial_.buffers.intermediate.record_read(n, n);
            partial_.dataflow.pwc_activation_elements += n;
          }
          pin.weights.resize(
              static_cast<std::size_t>(group.kernels * pin.channels));
          for (int kk = 0; kk < group.kernels; ++kk) {
            for (int ch = 0; ch < pin.channels; ++ch) {
              pin.weights[static_cast<std::size_t>(kk * pin.channels + ch)] =
                  pwc_weight_buffer_.load<std::int8_t>(
                      (std::int64_t{group.kernel0} + kk) * pin.channels + ch);
            }
          }
          {
            const auto n = std::int64_t{1} * group.kernels * pin.channels;
            partial_.buffers.pwc_weight.record_read(n, n);
          }

          const PwcStepOutput pout = pwc_.step(pin, spec.depth_multiplier);
          partial_.timing.pwc_active_cycles += 1;
          if (trace != nullptr && step_index < 2 && group.kernel0 == 0) {
            trace->emit(cycle, "PWC Engine Process",
                        "group k0=" + std::to_string(group.kernel0));
          }

          // Accumulate valid partial sums for this tile.
          for (int r = 0; r < pout.rows; ++r) {
            const int tr = sy * config_.tn + r;  // tile-relative output row
            if (tr >= tile.out_rows) continue;
            for (int c = 0; c < pout.cols; ++c) {
              const int tc = sx * config_.tm + c;
              if (tc >= tile.out_cols) continue;
              for (int kk = 0; kk < pout.kernels; ++kk) {
                const std::int64_t addr =
                    (std::int64_t{tr} * tile.out_cols + tc) * K +
                    group.kernel0 + kk;
                std::int32_t psum = pout.at(r, c, kk);
                if (!first_slice) {
                  psum += accumulator_.load<std::int32_t>(addr);
                  partial_.buffers.accumulator.record_read(4);
                }
                accumulator_.store<std::int32_t>(addr, psum);
                partial_.buffers.accumulator.record_write(4);
                const std::int64_t mag =
                    std::abs(static_cast<std::int64_t>(psum));
                if (mag > partial_.max_abs_psum) partial_.max_abs_psum = mag;
              }
            }
          }
          cycle += 1;
        }
      }
    }

    partial_.timing.passes += 1;
    partial_.timing.init_cycles += config_.init_cycles;
    partial_.timing.compute_cycles += cycle - config_.init_cycles;
    partial_.timing.total_cycles += cycle;
  }

  /// Write-back: accumulator -> Non-Conv (per-K params) -> output tensor.
  /// Touches only this tile's (disjoint) output region, so concurrent
  /// write-backs from different workers never alias.
  void write_back_tile(const nn::QuantDscLayer& layer, const BufferTile& tile,
                       nn::Int8Tensor& output) {
    const int K = layer.spec.out_channels;
    nonconv_.set_writeback_mode(true);

    // Per-output-channel parameters stream from external memory (counted as
    // parameter traffic once per tile).
    partial_.external.record_read(arch::TrafficClass::kParameter,
                                  std::int64_t{2} * K);

    std::vector<std::int32_t> acc_row(static_cast<std::size_t>(K));
    std::vector<std::int8_t> out_row(static_cast<std::size_t>(K));
    for (int r = 0; r < tile.out_rows; ++r) {
      for (int c = 0; c < tile.out_cols; ++c) {
        for (int k = 0; k < K; ++k) {
          const std::int64_t addr =
              (std::int64_t{r} * tile.out_cols + c) * K + k;
          acc_row[static_cast<std::size_t>(k)] =
              accumulator_.load<std::int32_t>(addr);
        }
        partial_.buffers.accumulator.record_read(std::int64_t{4} * K, K);
        nonconv_.apply_block(acc_row, layer.nonconv2.channels, K, out_row);
        for (int k = 0; k < K; ++k) {
          output(tile.out_row0 + r, tile.out_col0 + c, k) =
              out_row[static_cast<std::size_t>(k)];
        }
        partial_.external.record_write(arch::TrafficClass::kActivation, K);
      }
    }
  }

  EdeaConfig config_;
  DwcEngine dwc_;
  PwcEngine pwc_;
  NonConvUnitArray nonconv_;

  /// One contiguous planned allocation backing the six span-mode SRAM
  /// buffers below (declared first: the buffers slice into it).
  nn::Arena scratch_;

  arch::SramBuffer ifmap_buffer_;
  arch::SramBuffer dwc_weight_buffer_;
  arch::SramBuffer offline_buffer_;
  arch::SramBuffer intermediate_buffer_;
  arch::SramBuffer pwc_weight_buffer_;
  arch::SramBuffer accumulator_;

  LayerPartial partial_;
};

}  // namespace detail

EdeaAccelerator::EdeaAccelerator(EdeaConfig config) : config_(config) {
  config_.validate();
  // Worker 0 exists eagerly: it is the serial path and the structural
  // reference behind dwc_engine()/pwc_engine().
  workers_.push_back(std::make_unique<detail::TileWorker>(config_));
}

EdeaAccelerator::~EdeaAccelerator() = default;

const DwcEngine& EdeaAccelerator::dwc_engine() const noexcept {
  return workers_.front()->dwc();
}

const PwcEngine& EdeaAccelerator::pwc_engine() const noexcept {
  return workers_.front()->pwc();
}

void EdeaAccelerator::set_tile_parallelism(int parallelism) {
  EDEA_REQUIRE(parallelism >= 1,
               "tile_parallelism must be >= 1 (1 = the serial reference "
               "path); got " +
                   std::to_string(parallelism));
  tile_parallelism_ = parallelism;
}

void EdeaAccelerator::set_kernel_policy(KernelPolicy policy) {
  kernel_policy_ = policy;
  for (auto& w : workers_) w->set_kernel_policy(policy);
}

detail::TileWorker& EdeaAccelerator::worker(std::size_t index) {
  while (workers_.size() <= index) {
    workers_.push_back(std::make_unique<detail::TileWorker>(config_));
    workers_.back()->set_kernel_policy(kernel_policy_);
  }
  return *workers_[index];
}

LayerRunResult EdeaAccelerator::run_layer(const nn::QuantDscLayer& layer,
                                          const nn::Int8Tensor& input) {
  const nn::DscLayerSpec& spec = layer.spec;
  nn::Int8Tensor output(
      nn::Shape{spec.out_rows(), spec.out_cols(), spec.out_channels});
  LayerRunResult result = run_layer_into(layer, input, output);
  result.output = std::move(output);
  return result;
}

LayerRunResult EdeaAccelerator::run_layer_into(const nn::QuantDscLayer& layer,
                                               const nn::Int8Tensor& input,
                                               nn::Int8Tensor& output) {
  const nn::DscLayerSpec& spec = layer.spec;
  EDEA_REQUIRE(input.rank() == 3, "layer input must be [R][C][D]");
  EDEA_REQUIRE(input.dim(0) == spec.in_rows && input.dim(1) == spec.in_cols &&
                   input.dim(2) == spec.in_channels,
               "layer input shape mismatch: got " + input.shape().to_string());
  // The engines are wired for the configured kernel extent (the silicon's
  // multiplier/tree topology is fixed); a mismatched layer cannot be mapped.
  EDEA_REQUIRE(spec.kernel == config_.kernel,
               "layer kernel " + std::to_string(spec.kernel) +
                   " does not match the engine's " +
                   std::to_string(config_.kernel) + "x" +
                   std::to_string(config_.kernel) + " datapath");
  EDEA_REQUIRE(spec.stride == 1 || spec.stride == 2,
               "the DWC engine supports strides 1 and 2");

  Tiler tiler(config_, spec);
  // Hardware capacity checks: the tiler must have produced tiles that fit.
  // (Every worker's buffers are built from config_, so checking the
  // configured capacities covers all of them.)
  EDEA_ASSERT(tiler.max_tile_input_bytes() <= config_.dwc_ifmap_buffer_bytes(),
              "ifmap tile exceeds buffer capacity");
  if (tiler.max_tile_psum_entries() * 4 > config_.accumulator_buffer_bytes()) {
    throw ResourceError(
        "PWC accumulator cannot hold a " +
        std::to_string(tiler.max_tile_psum_entries()) +
        "-entry output tile; layer " + spec.to_string() +
        " is outside the modeled configuration");
  }
  if (std::int64_t{spec.out_channels} * config_.td >
      config_.pwc_weight_buffer_bytes()) {
    throw ResourceError("PWC weight buffer cannot hold K=" +
                        std::to_string(spec.out_channels) + " kernel slices");
  }

  const nn::Shape out_shape{spec.out_rows(), spec.out_cols(),
                            spec.out_channels};
  EDEA_REQUIRE(output.shape() == out_shape,
               "layer output shape mismatch: got " +
                   output.shape().to_string() + ", want " +
                   out_shape.to_string());

  LayerRunResult result;
  result.spec = spec;
  result.dwc_input_zero_fraction = input.zero_fraction();

  const std::vector<BufferTile>& tiles = tiler.tiles();
  // A trace pins the layer to the serial path: "the first pass" is only
  // well defined when tiles run in order on one thread.
  const int want = trace_ != nullptr ? 1 : tile_parallelism_;
  const int chunks = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(want), tiles.size()));

  // Workers are materialized and reset on the calling thread; the parallel
  // region below only indexes them.
  for (int w = 0; w < chunks; ++w) worker(static_cast<std::size_t>(w)).begin_layer();

  // One chunk of contiguous tiles per worker, dispatched over the shared
  // pool: at most chunks-1 helper tasks are queued and the calling thread
  // participates, so a sweep-level job running tile-parallel layers
  // borrows at most its stated tile budget from the process-wide pool.
  util::parallel_for(0, chunks, [&](std::int64_t w) {
    detail::TileWorker& tw = *workers_[static_cast<std::size_t>(w)];
    const auto [first, last] = tiler.tile_chunk(chunks, static_cast<int>(w));
    for (std::size_t t = first; t < last; ++t) {
      tw.run_tile(layer, input, tiles[t], tiler.slices(),
                  tiler.kernel_groups(), output,
                  (w == 0 && t == 0) ? trace_ : nullptr);
    }
  });

  // Fixed reduction order: chunk w covers the w-th contiguous run of
  // tiles, so merging partials by ascending w reproduces the serial tile
  // order exactly. (Every field is an integer sum or max, so the merged
  // tally is bit-identical to the serial one - the invariant the
  // tile_parallel property tests pin down.)
  LayerPartial merged;
  for (int w = 0; w < chunks; ++w) {
    merged += workers_[static_cast<std::size_t>(w)]->finish_layer();
  }

  result.timing = merged.timing;
  result.buffers = merged.buffers;
  result.dataflow = merged.dataflow;
  result.external = merged.external;
  result.dwc_activity = merged.dwc_activity;
  result.pwc_activity = merged.pwc_activity;
  result.nonconv_transfer_ops = merged.nonconv_transfer_ops;
  result.nonconv_writeback_ops = merged.nonconv_writeback_ops;
  result.max_abs_psum = merged.max_abs_psum;
  result.pwc_input_zero_fraction =
      merged.pwc_input_total == 0
          ? 0.0
          : static_cast<double>(merged.pwc_input_zeros) /
                static_cast<double>(merged.pwc_input_total);

  // Cross-check against the analytic model (Eq. 1/2) - a wrong cycle count
  // is a simulator bug, never a tolerable approximation.
  const TimingModel analytic(config_);
  const LayerTiming expected = analytic.layer_timing(spec);
  EDEA_ASSERT(result.timing.total_cycles == expected.total_cycles,
              "cycle-accurate simulation diverged from Eq. 1/2 for layer " +
                  spec.to_string());
  return result;
}

NetworkRunResult EdeaAccelerator::run_network(
    const std::vector<nn::QuantDscLayer>& layers,
    const nn::Int8Tensor& input) {
  return std::move(run_network_batch(layers, input, 1).front());
}

std::vector<NetworkRunResult> EdeaAccelerator::run_network_batch(
    const std::vector<nn::QuantDscLayer>& layers, const nn::Int8Tensor& input,
    int batch) {
  EDEA_REQUIRE(!layers.empty(), "network must have at least one layer");
  EDEA_REQUIRE(batch >= 1, "batch must be >= 1");

  // One plan up front: every image's input plus every layer activation gets
  // an offset inside a single allocation, consecutive layers ping-ponging
  // via liveness-based reuse (see nn/arena.hpp for the step axis).
  nn::MemoryPlanner planner;
  const nn::NetworkActivationPlan acts =
      nn::plan_network_activations(planner, layers, input.shape(), batch);
  nn::Arena arena(planner.plan());

  std::vector<NetworkRunResult> results(static_cast<std::size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    std::int8_t* dst = arena.slice<std::int8_t>(
        acts.inputs[static_cast<std::size_t>(b)], input.size());
    std::copy(input.data(), input.data() + input.size(), dst);
  }

  // Layer-major execution (the order the liveness intervals encode): every
  // image runs layer i before any image runs layer i+1.
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const nn::DscLayerSpec& spec = layers[i].spec;
    const nn::Shape out_shape{spec.out_rows(), spec.out_cols(),
                              spec.out_channels};
    for (std::size_t b = 0; b < static_cast<std::size_t>(batch); ++b) {
      const nn::Shape in_shape =
          i == 0 ? input.shape()
                 : nn::Shape{layers[i - 1].spec.out_rows(),
                             layers[i - 1].spec.out_cols(),
                             layers[i - 1].spec.out_channels};
      const nn::BlobId in_id =
          i == 0 ? acts.inputs[b] : acts.outputs[b][i - 1];
      const nn::Int8Tensor in_view = nn::Int8Tensor::view(
          in_shape, arena.slice<std::int8_t>(in_id, in_shape.volume()));
      // Blob bytes may be reused from an expired activation; restore the
      // fresh-tensor zero state the standalone run_layer allocates.
      arena.clear(acts.outputs[b][i]);
      nn::Int8Tensor out_view = nn::Int8Tensor::view(
          out_shape,
          arena.slice<std::int8_t>(acts.outputs[b][i], out_shape.volume()));
      LayerRunResult r = run_layer_into(layers[i], in_view, out_view);
      r.output = out_view;  // deep copy: results outlive the arena
      results[b].layers.push_back(std::move(r));
    }
  }

  const std::size_t peak = arena.plan().peak_bytes;
  for (NetworkRunResult& net : results) {
    net.output = net.layers.back().output;
    net.peak_arena_bytes = peak;
  }
  return results;
}

}  // namespace edea::core
