#include "core/timing.hpp"

#include "util/check.hpp"

namespace edea::core {

std::int64_t TimingModel::tile_pass_cycles(int tile_rows, int tile_cols,
                                           int out_channels) const {
  EDEA_REQUIRE(tile_rows > 0 && tile_cols > 0 && out_channels > 0,
               "tile extents must be positive");
  const std::int64_t spatial_steps =
      ceil_div(tile_rows, config_.tn) * ceil_div(tile_cols, config_.tm);
  const std::int64_t kernel_groups = ceil_div(out_channels, config_.tk);
  return config_.init_cycles + spatial_steps * kernel_groups;
}

std::int64_t TimingModel::buffer_tile_count(
    const nn::DscLayerSpec& spec) const {
  const int tile_out =
      config_.effective_max_tile_out(spec.stride, spec.dilation);
  EDEA_REQUIRE(tile_out > 0, "dilation overflows the DWC ifmap buffer");
  return ceil_div(spec.out_rows(), tile_out) *
         ceil_div(spec.out_cols(), tile_out);
}

LayerTiming TimingModel::layer_timing(const nn::DscLayerSpec& spec) const {
  const int N = spec.out_rows();
  const int M = spec.out_cols();
  EDEA_REQUIRE(N > 0 && M > 0, "layer output must be non-empty");

  // Same tile extent the Tiler walks: shrunk below max_tile_out when
  // dilation inflates the input halo past the ifmap buffer.
  const int tile_out =
      config_.effective_max_tile_out(spec.stride, spec.dilation);
  EDEA_REQUIRE(tile_out > 0, "dilation overflows the DWC ifmap buffer");
  // Slices cover the intermediate (post-depth-multiplier) channel axis.
  const std::int64_t slices =
      ceil_div(spec.intermediate_channels(), config_.td);
  const std::int64_t kernel_groups = ceil_div(spec.out_channels, config_.tk);

  LayerTiming t;
  // Iterate buffer tiles explicitly so ragged edges (output extents that
  // are not multiples of the tile extent) are counted exactly; MobileNetV1
  // always tiles evenly but the accelerator itself is general.
  for (int row0 = 0; row0 < N; row0 += tile_out) {
    const int tile_rows = std::min(tile_out, N - row0);
    for (int col0 = 0; col0 < M; col0 += tile_out) {
      const int tile_cols = std::min(tile_out, M - col0);
      const std::int64_t spatial_steps =
          ceil_div(tile_rows, config_.tn) * ceil_div(tile_cols, config_.tm);
      t.passes += slices;
      t.init_cycles += slices * config_.init_cycles;
      t.compute_cycles += slices * spatial_steps * kernel_groups;
      t.dwc_active_cycles += slices * spatial_steps;
      t.pwc_active_cycles += slices * spatial_steps * kernel_groups;
    }
  }
  t.total_cycles = t.init_cycles + t.compute_cycles;
  return t;
}

double TimingModel::layer_throughput_gops(const nn::DscLayerSpec& spec) const {
  const LayerTiming t = layer_timing(spec);
  const double ops = static_cast<double>(spec.total_ops());
  // ops / ns = GOPS when the clock is in GHz (cycles / GHz = ns).
  return ops / t.time_ns(config_.clock_ghz);
}

}  // namespace edea::core
