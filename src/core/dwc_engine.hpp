// dwc_engine.hpp - the depthwise-convolution engine of Fig. 5a.
//
// Structure (paper configuration): 8 DWC PEs, one per channel of the
// current Td-slice. Each PE holds 36 multipliers - a 3x3 window for each of
// the 2x2 output positions - and four 9-input adder trees. One engine step
// consumes a (Tn-1)*s+3 square input window over Td channels plus a 3x3xTd
// kernel slice and produces a Tn x Tm x Td block of raw accumulators in a
// single cycle (the adder tree is pipelined; latency is absorbed in the
// 9-cycle initiation of Fig. 7).
//
// The arithmetic inner loop is resolved through core::KernelDispatch: hot
// shapes (3x3 stride-1/2 at dilation 1) run hand-specialized kernels,
// everything else the generic reference path. Both are bit-identical in
// outputs and MacActivity; set_kernel_policy(kForceGeneric) or the
// EDEA_FORCE_GENERIC_KERNELS env var pin the generic path for A/B runs.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/counters.hpp"
#include "arch/pe.hpp"
#include "core/config.hpp"
#include "core/kernel_dispatch.hpp"

namespace edea::core {

/// Input window for one DWC engine step: extent x extent x channels int8
/// values, already padded (callers materialize zero padding).
struct DwcWindow {
  int extent = 0;    ///< square spatial extent ((Tn-1)*stride + kernel)
  int channels = 0;  ///< active channels in this slice (<= Td)
  std::vector<std::int8_t> values;  ///< [row][col][channel]

  [[nodiscard]] std::int8_t at(int r, int c, int ch) const noexcept {
    return values[static_cast<std::size_t>((r * extent + c) * channels + ch)];
  }
};

/// Raw DWC accumulators for one step: [Tn][Tm][channels].
struct DwcStepOutput {
  int rows = 0;
  int cols = 0;
  int channels = 0;
  std::vector<std::int32_t> acc;  ///< [row][col][channel]

  [[nodiscard]] std::int32_t at(int r, int c, int ch) const noexcept {
    return acc[static_cast<std::size_t>((r * cols + c) * channels + ch)];
  }
};

class DwcEngine {
 public:
  explicit DwcEngine(const EdeaConfig& config);

  /// Loads one kernel slice ([kh][kw][channels], channels <= Td). Retained
  /// until the next load; reused across every spatial step of a pass.
  void load_weights(const std::vector<std::int8_t>& weights, int channels);

  /// One engine cycle: computes Tn x Tm outputs for every loaded channel.
  /// `stride` and `dilation` select the window geometry ((Tn-1)*stride +
  /// (kernel-1)*dilation + 1 square): 4x4 at s=1/d=1, 5x5 at s=2/d=1,
  /// wider for dilated kernels whose taps sit `dilation` apart.
  /// `depth_multiplier` does not change the arithmetic (window builders
  /// fold the multiplier); it is a dispatch-key component only, letting a
  /// registered exact-multiplier kernel win over the wildcard.
  [[nodiscard]] DwcStepOutput step(const DwcWindow& window, int stride,
                                   int dilation = 1, int depth_multiplier = 1);

  /// Reentrant step: same arithmetic, but activity is tallied into the
  /// caller-supplied sink instead of the engine's own counter and the
  /// kernel lookup bypasses the engine-local cache. Safe to call
  /// concurrently from multiple threads on one engine (each caller owns
  /// its sink; kernels keep all scratch on the stack).
  [[nodiscard]] DwcStepOutput step(const DwcWindow& window, int stride,
                                   int dilation, int depth_multiplier,
                                   arch::MacActivity& activity) const;

  /// One idle cycle (engine clocked, no work) - happens while the PWC
  /// engine drains kernel groups; feeds the duty factor of the power model.
  void idle_cycle();

  /// Pins (or unpins) the generic reference kernels; resets the cached
  /// dispatch resolution. Default is KernelDispatch::default_policy().
  void set_kernel_policy(KernelPolicy policy) noexcept;
  [[nodiscard]] KernelPolicy kernel_policy() const noexcept { return policy_; }

  [[nodiscard]] const arch::MacActivity& activity() const noexcept {
    return activity_;
  }
  void reset_activity() noexcept { activity_.reset(); }

  /// Structural constants (asserted against the paper in tests).
  [[nodiscard]] int mac_count() const noexcept {
    return config_.dwc_mac_count();
  }
  [[nodiscard]] int adder_tree_fan_in() const noexcept {
    return config_.kernel * config_.kernel;
  }
  [[nodiscard]] int adder_tree_depth() const noexcept { return tree_.depth(); }
  [[nodiscard]] int pe_count() const noexcept { return config_.td; }

 private:
  [[nodiscard]] KernelShapeKey shape_key(int stride, int dilation,
                                         int depth_multiplier) const noexcept;
  [[nodiscard]] DwcStepOutput run_step(const DwcWindow& window, int stride,
                                       int dilation, DwcKernelFn fn,
                                       arch::MacActivity& activity) const;

  EdeaConfig config_;
  arch::MacLane lane_;
  arch::AdderTree tree_;
  std::vector<std::int8_t> weights_;  ///< [kh][kw][channel]
  int weight_channels_ = 0;
  arch::MacActivity activity_;
  KernelPolicy policy_ = KernelDispatch::default_policy();
  KernelShapeKey cached_key_;
  DwcKernelFn cached_fn_ = nullptr;  ///< resolved for cached_key_, or null
};

}  // namespace edea::core
