// run_result.hpp - measurement records produced by accelerator runs.
// Shared by the EDEA accelerator (src/core) and the serialized baseline
// (src/baseline) so benches can tabulate them uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/counters.hpp"
#include "arch/ext_memory.hpp"
#include "core/timing.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "util/binary.hpp"
#include "util/hash.hpp"

namespace edea::core {

/// Access counters of the five on-chip buffers of Fig. 4 plus the PWC
/// accumulator. Element-granular (one count per int8/int32 element moved).
struct BufferAccessSnapshot {
  arch::AccessCounter dwc_ifmap;
  arch::AccessCounter dwc_weight;
  arch::AccessCounter offline;
  arch::AccessCounter intermediate;
  arch::AccessCounter pwc_weight;
  arch::AccessCounter accumulator;

  BufferAccessSnapshot& operator+=(const BufferAccessSnapshot& o) noexcept {
    dwc_ifmap += o.dwc_ifmap;
    dwc_weight += o.dwc_weight;
    offline += o.offline;
    intermediate += o.intermediate;
    pwc_weight += o.pwc_weight;
    accumulator += o.accumulator;
    return *this;
  }

  friend bool operator==(const BufferAccessSnapshot&,
                         const BufferAccessSnapshot&) = default;
};

/// Dataflow-level counters used to validate the Table II equations: these
/// count operand *consumptions* by the engines (a padded window position
/// counts even though the SRAM never stores padding).
struct DataflowCounters {
  std::int64_t dwc_window_elements = 0;  ///< Tr*Tc*Td per DWC step
  std::int64_t dwc_weight_elements = 0;  ///< kernel slice loads into engine
  std::int64_t pwc_activation_elements = 0;  ///< intermediate reads per group
  std::int64_t pwc_weight_elements = 0;      ///< external weight loads

  DataflowCounters& operator+=(const DataflowCounters& o) noexcept {
    dwc_window_elements += o.dwc_window_elements;
    dwc_weight_elements += o.dwc_weight_elements;
    pwc_activation_elements += o.pwc_activation_elements;
    pwc_weight_elements += o.pwc_weight_elements;
    return *this;
  }

  friend bool operator==(const DataflowCounters&, const DataflowCounters&) =
      default;
};

/// Everything one tile worker measures while executing its share of a
/// layer's buffer tiles - the mergeable half of a LayerRunResult. Workers
/// write output elements straight into the shared (disjointly partitioned)
/// output tensor; every *counter* lands here instead, privately, and the
/// partials are reduced in tile order once all workers finish. Every field
/// is either an integer sum over passes or a max, so the reduction is
/// exact: a merged partial is bit-identical to the serial tally.
struct LayerPartial {
  LayerTiming timing;
  BufferAccessSnapshot buffers;
  DataflowCounters dataflow;
  arch::ExternalMemory external;

  arch::MacActivity dwc_activity;
  arch::MacActivity pwc_activity;
  std::int64_t nonconv_transfer_ops = 0;
  std::int64_t nonconv_writeback_ops = 0;

  /// PWC-input sparsity tally (Fig. 11 numerator/denominator).
  std::int64_t pwc_input_zeros = 0;
  std::int64_t pwc_input_total = 0;

  std::int64_t max_abs_psum = 0;

  LayerPartial& operator+=(const LayerPartial& o) noexcept {
    timing += o.timing;
    buffers += o.buffers;
    dataflow += o.dataflow;
    external += o.external;
    dwc_activity += o.dwc_activity;
    pwc_activity += o.pwc_activity;
    nonconv_transfer_ops += o.nonconv_transfer_ops;
    nonconv_writeback_ops += o.nonconv_writeback_ops;
    pwc_input_zeros += o.pwc_input_zeros;
    pwc_input_total += o.pwc_input_total;
    if (o.max_abs_psum > max_abs_psum) max_abs_psum = o.max_abs_psum;
    return *this;
  }

  friend bool operator==(const LayerPartial&, const LayerPartial&) = default;
};

/// Everything measured while running one DSC layer.
struct LayerRunResult {
  nn::DscLayerSpec spec;
  nn::Int8Tensor output;

  LayerTiming timing;  ///< measured cycle counts (asserted == Eq. 1/2)

  arch::MacActivity dwc_activity;
  arch::MacActivity pwc_activity;
  std::int64_t nonconv_transfer_ops = 0;
  std::int64_t nonconv_writeback_ops = 0;

  BufferAccessSnapshot buffers;
  DataflowCounters dataflow;
  arch::ExternalMemory external;

  /// Tensor-level input-activation zero fractions (Fig. 11 quantities).
  double dwc_input_zero_fraction = 0.0;
  double pwc_input_zero_fraction = 0.0;

  /// Largest |partial sum| observed in the PWC accumulator across the
  /// whole layer. The silicon carries 24-bit accumulators (Fig. 6); this
  /// statistic validates that envelope on real data.
  std::int64_t max_abs_psum = 0;

  /// True iff every partial sum stayed within the signed 24-bit envelope.
  [[nodiscard]] bool within_24bit_accumulator() const noexcept {
    return max_abs_psum <= ((std::int64_t{1} << 23) - 1);
  }

  // --- derived metrics ---

  [[nodiscard]] double time_ns(double clock_ghz) const noexcept {
    return timing.time_ns(clock_ghz);
  }

  /// Layer throughput in GOPS (2 ops per MAC over the layer's nominal work).
  [[nodiscard]] double throughput_gops(double clock_ghz) const noexcept {
    return static_cast<double>(spec.total_ops()) / time_ns(clock_ghz);
  }

  /// Lane utilization of each engine over its *active* cycles; the paper's
  /// "100% PE utilization" claim is about exactly this quantity.
  [[nodiscard]] double dwc_lane_utilization() const noexcept {
    const auto active_lanes = dwc_activity.useful_macs;
    const auto offered =
        timing.dwc_active_cycles == 0
            ? std::int64_t{0}
            : dwc_activity.lane_cycles;
    return offered == 0 ? 0.0
                        : static_cast<double>(active_lanes) /
                              static_cast<double>(offered);
  }
  [[nodiscard]] double pwc_lane_utilization() const noexcept {
    return pwc_activity.lane_cycles == 0
               ? 0.0
               : static_cast<double>(pwc_activity.useful_macs) /
                     static_cast<double>(pwc_activity.lane_cycles);
  }

  /// Temporal occupancy (active cycles / total cycles) of each engine.
  [[nodiscard]] double dwc_duty() const noexcept {
    return timing.total_cycles == 0
               ? 0.0
               : static_cast<double>(timing.dwc_active_cycles) /
                     static_cast<double>(timing.total_cycles);
  }
  [[nodiscard]] double pwc_duty() const noexcept {
    return timing.total_cycles == 0
               ? 0.0
               : static_cast<double>(timing.pwc_active_cycles) /
                     static_cast<double>(timing.total_cycles);
  }
};

/// Compact digest of a network run - what a simulation client needs to
/// display or compare without shipping per-layer tensors: headline
/// counters plus a content hash of the final output, so two runs can be
/// checked for bit-identity from one line of text.
struct RunSummary {
  std::size_t layer_count = 0;
  std::int64_t total_cycles = 0;
  std::int64_t total_ops = 0;
  double average_gops = 0.0;
  std::uint64_t output_hash = 0;  ///< FNV-1a over the final int8 output

  /// Peak bytes of the run's planned activation arena (nn::MemoryPlanner).
  /// A pure function of (network, input shape, batch): host-side execution
  /// knobs - tile parallelism, worker count, backend scratch - never move
  /// it, so summaries stay comparable across those dimensions (the
  /// tile-parallel bit-identity suite compares whole summaries).
  std::uint64_t peak_arena_bytes = 0;

  friend bool operator==(const RunSummary&, const RunSummary&) = default;

  /// Binary encoding used by the simulation service's persisted result
  /// cache. Fields are written individually (never the whole struct) so
  /// padding can't leak into the file, and `layer_count` is pinned to 64
  /// bits so the layout doesn't depend on the host's size_t.
  void encode(util::ByteWriter& w) const {
    w.pod(static_cast<std::uint64_t>(layer_count));
    w.pod(total_cycles);
    w.pod(total_ops);
    w.pod(average_gops);
    w.pod(output_hash);
    w.pod(peak_arena_bytes);
  }
  [[nodiscard]] static RunSummary decode(util::ByteReader& r) {
    RunSummary s;
    s.layer_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
    s.total_cycles = r.pod<std::int64_t>();
    s.total_ops = r.pod<std::int64_t>();
    s.average_gops = r.pod<double>();
    s.output_hash = r.pod<std::uint64_t>();
    s.peak_arena_bytes = r.pod<std::uint64_t>();
    return s;
  }
};

/// Aggregate over a whole network run.
struct NetworkRunResult {
  std::vector<LayerRunResult> layers;
  nn::Int8Tensor output;

  /// Peak bytes of the activation arena the run was planned into (see
  /// RunSummary::peak_arena_bytes for the invariance contract). Zero for
  /// hand-assembled results that never went through a planner.
  std::size_t peak_arena_bytes = 0;

  [[nodiscard]] std::int64_t total_cycles() const noexcept {
    std::int64_t c = 0;
    for (const auto& l : layers) c += l.timing.total_cycles;
    return c;
  }
  [[nodiscard]] std::int64_t total_ops() const noexcept {
    std::int64_t o = 0;
    for (const auto& l : layers) o += l.spec.total_ops();
    return o;
  }
  /// Average throughput = total ops / total time (the paper's 981.42 GOPS).
  [[nodiscard]] double average_throughput_gops(double clock_ghz) const {
    const double ns = static_cast<double>(total_cycles()) / clock_ghz;
    return ns == 0.0 ? 0.0 : static_cast<double>(total_ops()) / ns;
  }

  /// Digests the run into a RunSummary (see above).
  [[nodiscard]] RunSummary summary(double clock_ghz) const {
    RunSummary s;
    s.layer_count = layers.size();
    s.total_cycles = total_cycles();
    s.total_ops = total_ops();
    s.average_gops = average_throughput_gops(clock_ghz);
    s.output_hash = util::Fnv1a64().span(output.storage()).digest();
    s.peak_arena_bytes = static_cast<std::uint64_t>(peak_arena_bytes);
    return s;
  }
};

/// Pipeline trace event for the Fig. 7 timing-diagram bench.
struct TraceEvent {
  std::int64_t cycle = 0;
  std::string stage;
  std::string detail;
};

struct PipelineTrace {
  std::vector<TraceEvent> events;
  bool armed = false;  ///< record only the first pass of the first tile

  void emit(std::int64_t cycle, std::string stage, std::string detail) {
    if (armed) {
      events.push_back(TraceEvent{cycle, std::move(stage), std::move(detail)});
    }
  }
};

}  // namespace edea::core
