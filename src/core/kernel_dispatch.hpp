// kernel_dispatch.hpp - shape-specialized fast-path kernels for the two
// engine inner loops, behind a registry with the generic path as fallback.
//
// The simulator's arithmetic hot path is the five nested loops of
// DwcEngine::step (ch x ty x tx x k x k) and the four of PwcEngine::step -
// fully generic, one virtual-free but heavily abstracted MAC at a time
// (MacLane call, member scratch write, AdderTree pairwise sum). For every
// sweep, DSE run, and service cache miss those loops are the wall clock.
// This registry lets a hot (op family, kernel, stride, dilation,
// depth_multiplier) shape select a hand-specialized implementation with
// unrolled, compiler-vectorizable accumulator loops, while every other
// shape falls back to the generic reference implementation.
//
// The contract every registered kernel must honor (pinned by
// tests/kernel_dispatch_test.cpp and the differential harness's
// specialized-vs-forced-generic axis):
//   1. bit-identical accumulators to the generic path. All sums are int32
//     with |product| <= 128*128 and at most a few dozen terms, so integer
//     addition is associative in range - any summation order is exact.
//   2. bit-identical MacActivity accounting: one lane_cycle and one
//     useful_mac per modeled multiply, one zero_operand_mac per multiply
//     whose activation operand is zero. Specialized kernels may tally in
//     bulk; the totals must match the generic per-multiply tallies.
// Cycle/energy/access counters live above the kernel boundary (in the
// engines and tile workers) and are untouched by dispatch, so a
// specialized run's every counter stays bit-identical to generic.
//
// Escape hatch: KernelPolicy::kForceGeneric (per engine / accelerator,
// reachable through AcceleratorBackend::set_kernel_policy) pins the
// generic path for A/B tests, and the EDEA_FORCE_GENERIC_KERNELS
// environment variable flips the process-wide default - the lever the
// micro-bench matrix and bit-identity suites use.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/counters.hpp"

namespace edea::core {

/// Which engine inner loop a kernel implements.
enum class OpFamily : int { kDwc = 0, kPwc = 1 };

/// Kernel implementation policy of an engine (or a whole accelerator):
/// kAuto consults the KernelDispatch registry, kForceGeneric pins the
/// generic reference path (the A/B escape hatch). The process default is
/// kAuto unless EDEA_FORCE_GENERIC_KERNELS is set in the environment.
enum class KernelPolicy : int { kAuto = 0, kForceGeneric = 1 };

/// Registry key: the loop-shape parameters a specialization is allowed to
/// assume. `depth_multiplier` 0 is the "any multiplier" wildcard - the
/// engine-level arithmetic is multiplier-invariant (the window/weight
/// builders fold the multiplier before the engines run), so the built-in
/// kernels register wildcarded; an exact-multiplier entry, when present,
/// wins over the wildcard.
struct KernelShapeKey {
  OpFamily family = OpFamily::kDwc;
  int kernel = 3;            ///< kernel extent (1 for PWC)
  int stride = 1;            ///< spatial stride (1 for PWC)
  int dilation = 1;          ///< kernel tap pitch (1 for PWC)
  int depth_multiplier = 0;  ///< exact multiplier, or 0 = any

  friend auto operator<=>(const KernelShapeKey&,
                          const KernelShapeKey&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// Operands of one DWC engine step, as raw spans: everything the inner
/// loop reads and the accumulator block it writes. Kernels own no scratch
/// and touch nothing else - in particular no engine member state, so a
/// kernel invocation is reentrant by construction.
struct DwcKernelArgs {
  const std::int8_t* window = nullptr;   ///< [extent][extent][channels]
  int extent = 0;                        ///< square spatial extent
  int channels = 0;                      ///< active channels (<= Td)
  const std::int8_t* weights = nullptr;  ///< [kh][kw][channels]
  int tn = 0;                            ///< output tile rows
  int tm = 0;                            ///< output tile cols
  int kernel = 0;                        ///< kernel extent
  int stride = 0;
  int dilation = 0;
  std::int32_t* acc = nullptr;           ///< out: [tn][tm][channels]
  arch::MacActivity* activity = nullptr;
};
using DwcKernelFn = void (*)(const DwcKernelArgs&);

/// Operands of one PWC engine step. `td` is the configured adder-tree
/// fan-in: lanes for channels in [channels, td) are modeled idle, and a
/// kernel must account their lane_cycles exactly like the generic path.
struct PwcKernelArgs {
  const std::int8_t* activations = nullptr;  ///< [rows][cols][channels]
  const std::int8_t* weights = nullptr;      ///< [kernels][channels]
  int rows = 0;
  int cols = 0;
  int channels = 0;  ///< active channels (<= td)
  int kernels = 0;   ///< active kernels this group
  int td = 0;        ///< configured channel lanes per dot product
  std::int32_t* psum = nullptr;              ///< out: [rows][cols][kernels]
  arch::MacActivity* activity = nullptr;
};
using PwcKernelFn = void (*)(const PwcKernelArgs&);

/// The generic reference implementations: the exact loops the engines ran
/// before dispatch existed (per-multiply MacLane accounting, pairwise
/// AdderTree summation) with caller-local scratch. Every shape not in the
/// registry - and every shape under kForceGeneric - runs these.
void generic_dwc_kernel(const DwcKernelArgs& args);
void generic_pwc_kernel(const PwcKernelArgs& args);

/// The process-wide kernel registry. Thread-safe; the built-in
/// specializations (3x3/stride-1, 3x3/stride-2 DWC, 1x1 PWC, all at
/// dilation 1 and any depth multiplier) are registered in-registry at
/// construction so static-library link order can never drop them.
class KernelDispatch {
 public:
  /// The singleton the engines consult.
  [[nodiscard]] static KernelDispatch& instance();

  /// Registers (or replaces) a kernel for a shape. Keys are validated:
  /// positive odd kernel extent for DWC (extent 1 for PWC), stride 1 or 2,
  /// dilation >= 1, depth_multiplier >= 0 (0 = wildcard). `label` names
  /// the implementation in registered_shapes().
  void register_dwc(const KernelShapeKey& key, DwcKernelFn fn,
                    std::string label);
  void register_pwc(const KernelShapeKey& key, PwcKernelFn fn,
                    std::string label);

  /// Lookup: exact key first, then the depth_multiplier wildcard (0).
  /// Returns the generic implementation when no specialization matches -
  /// callers can invoke the result unconditionally.
  [[nodiscard]] DwcKernelFn find_dwc(const KernelShapeKey& key) const;
  [[nodiscard]] PwcKernelFn find_pwc(const KernelShapeKey& key) const;

  /// True when `key` would resolve to a specialized (non-generic) kernel.
  [[nodiscard]] bool has_specialization(const KernelShapeKey& key) const;

  /// "<key> -> <label>" lines for every registered entry, in key order
  /// (docs, tests, and the micro-bench matrix enumerate these).
  [[nodiscard]] std::vector<std::string> registered_shapes() const;

  /// Process-wide default policy: kForceGeneric when the
  /// EDEA_FORCE_GENERIC_KERNELS environment variable is set non-empty and
  /// not "0" at first use, else kAuto. Engines read this at construction.
  [[nodiscard]] static KernelPolicy default_policy();

 private:
  KernelDispatch();

  struct Impl;
  Impl* impl_;  // never freed: the registry lives for the process
};

}  // namespace edea::core
